// Healthcare: the paper's Table A.1 "Data-centric Personalized Healthcare"
// scenario end to end — a wearable heart monitor decides what to compute
// on-sensor and what to ship to the cloud, under battery and harvested
// power, then the cloud side aggregates across a patient fleet.
//
//	go run ./examples/healthcare
package main

import (
	"fmt"

	"repro/internal/edge"
	"repro/internal/sensor"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	fmt.Println("== Personalized healthcare: sensor -> cloud pipeline ==")

	// 1. On-sensor anomaly detection quality on a synthetic biometric
	//    stream with ground-truth anomalies.
	cfg := workload.DefaultStreamConfig()
	r := stats.NewRNG(7)
	stream := workload.GenerateStream(cfg, int(cfg.SampleHz)*600, r)
	det := workload.NewEWMADetector(0.05, 6)
	score := workload.ScoreDetector(det, stream)
	fmt.Printf("detector: recall %.0f%%, precision %.0f%%, flags %.2f%% of samples\n",
		100*score.Recall(), 100*score.Precision(), 100*score.FlaggedFraction())

	// 2. Energy: raw streaming vs on-sensor filtering.
	node := sensor.StandardNode()
	node.FlaggedFraction = score.FlaggedFraction()
	raw := node.DayBudget(sensor.RawTransmit)
	filt := node.DayBudget(sensor.OnSensorFilter)
	fmt.Printf("raw streaming:  %.1f J/day (battery %.1f days)\n", raw.TotalJ, raw.LifetimeDays)
	fmt.Printf("on-sensor filter: %.2f J/day (battery %.0f days) — %.0fx win\n",
		filt.TotalJ, filt.LifetimeDays, node.FilterWinFactor())

	// 3. Harvested operation: can the filtered node run on body heat +
	//    ambient light alone?
	h := sensor.Harvester{PeakPower: 5 * units.Milliwatt, Kind: "solar"}
	up := sensor.SimulateIntermittent(h, filt.MeanPower, 20, 1)
	fmt.Printf("harvested (5mW peak solar): %.0f%% uptime, %d outages/day\n",
		100*up.UptimeFrac, up.Outages)

	// 4. When an anomaly fires, the follow-up analysis pipeline splits
	//    between the phone and the cloud depending on connectivity.
	stages := []edge.Stage{
		{Name: "ecg-window", Ops: 1e6, OutBytes: 30e3},
		{Name: "beat-features", Ops: 5e7, OutBytes: 2e3},
		{Name: "arrhythmia-model", Ops: 5e9, OutBytes: 100},
		{Name: "alert", Ops: 1e5, OutBytes: 100},
	}
	d, c := edge.StandardDevice(), edge.StandardCloud()
	fmt.Println("follow-up analysis placement (energy-optimal under 500ms):")
	for _, st := range edge.UplinkStates() {
		k, lat, e := edge.BestSplit(stages, d, c, st.Link, edge.MinEnergyUnderLatency, 0.5)
		fmt.Printf("  %-9s stages on device: %d, latency %.0fms, device energy %.2fmJ\n",
			st.Name, k, lat*1000, e*1000)
	}
}
