// Datacenter: design an "energy-first" warehouse computer toward the
// paper's exa-op / 10 MW target — pick the memory/storage stack, allocate
// dark silicon between cores and accelerators, and check how far
// specialization closes the efficiency ladder's gap.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/nvm"
	"repro/internal/units"
)

func main() {
	fmt.Println("== Designing toward the exa-op, 10MW datacenter ==")

	// 1. The gap today.
	for _, p := range energy.Ladder() {
		if p.Name != "datacenter" {
			continue
		}
		fmt.Printf("target: %s/s in %s = %s; today %s -> gap %.0fx\n",
			p.TargetOpsPerSec, p.PowerBudget,
			units.SI(p.TargetOpsPerWatt(), "op/W"),
			units.SI(p.TodayOpsPerWatt, "op/W"), p.Gap())
	}

	// 2. Fill each server's power budget with the most efficient mix.
	cands := []accel.Candidate{
		{Name: "big-core", AreaBCE: 16, PowerW: 8, Throughput: 4e10, MaxInstances: 4},
		{Name: "little-core", AreaBCE: 1, PowerW: 0.6, Throughput: 6e9},
		{Name: "stream-accel", AreaBCE: 6, PowerW: 2, Throughput: 4e11, MaxInstances: 8},
		{Name: "crypto-accel", AreaBCE: 2, PowerW: 0.5, Throughput: 8e10, MaxInstances: 2},
	}
	alloc := accel.AllocateDarkSilicon(cands, 256, 100)
	fmt.Printf("per-server allocation under 100W / 256 BCE: %v\n", alloc.Counts)
	fmt.Printf("  throughput %s/s, power %.0fW, dark fraction %.0f%%\n",
		units.Ops(alloc.Throughput), alloc.PowerUsed, alloc.DarkFraction(256)*100)

	// 3. Memory/storage: what the NVM stack buys at the facility level.
	w := nvm.TxnWorkload{ReadsPerTxn: 20, PersistsPerTxn: 2}
	legacy, single := nvm.LegacyStack(), nvm.NVMStack()
	fmt.Printf("persist-bound txn: %s on %s vs %s on %s (%.0fx)\n",
		legacy.TxnLatency(w), legacy.Name, single.TxnLatency(w), single.Name,
		float64(legacy.TxnLatency(w))/float64(single.TxnLatency(w)))
	fmt.Printf("idle power 64GB+1TB per server: %s vs %s\n",
		legacy.IdlePower(64, 1000), single.IdlePower(64, 1000))

	// 4. Facility roll-up: machines that fit in 10MW and what they deliver.
	server := cluster.Warehouse{
		MachineWatts:  alloc.PowerUsed + 50, // + memory/network/fans
		PUE:           1.15,
		OpsPerMachine: alloc.Throughput,
	}
	server.Machines = server.MachinesForPower(10e6)
	fmt.Printf("10MW facility: %d machines, %s/s aggregate, %s\n",
		server.Machines, units.Ops(server.TotalOps()),
		units.SI(server.OpsPerWatt(), "op/W"))
	fmt.Printf("ladder target is 1e11 op/W: specialization closes the gap to %.1fx\n",
		1e11/server.OpsPerWatt())
}
