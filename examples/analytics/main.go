// Analytics: the paper's Table A.1 "Human Network Analytics" scenario — an
// interactive graph query fans out over a warehouse cluster; tail latency,
// hedging, and QoS against colocated batch analytics decide whether the
// product feels interactive.
//
//	go run ./examples/analytics
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/qos"
	"repro/internal/stats"
)

func main() {
	fmt.Println("== Human network analytics: interactive queries on a warehouse cluster ==")

	// 1. A query touches 100 graph shards; every shard must answer.
	leaf := cluster.DefaultLeafLatency()
	r := stats.NewRNG(99)
	plain := cluster.SimulateForkJoin(cluster.ForkJoinConfig{
		Fanout: 100, Leaf: leaf, Trials: 30000}, r)
	fmt.Printf("100-shard query: p50 %.0fms, p99 %.0fms — %.0f%% of queries see a shard's p99\n",
		plain.P50*1000, plain.P99*1000, plain.FracAboveLeafP99*100)

	// 2. Hedged requests (Dean's mitigation).
	rh := stats.NewRNG(99)
	hedged := cluster.SimulateForkJoin(cluster.ForkJoinConfig{
		Fanout: 100, Leaf: leaf, Trials: 30000,
		Policy: cluster.Hedged, HedgeQuantile: 0.95}, rh)
	fmt.Printf("with p95 hedging:  p99 %.0fms (%.1fx better) for %.1f%% extra shard load\n",
		hedged.P99*1000, plain.P99/hedged.P99, hedged.ExtraLoad*100)

	// 3. Shard servers are colocated with batch graph indexing: QoS.
	base := qos.Config{
		LCRate:           100,
		LCService:        stats.Exponential{Rate: 1000},
		BatchOutstanding: 4,
		BatchService:     stats.Constant{V: 0.050},
		Duration:         300,
		Seed:             7,
	}
	for _, pol := range []qos.Policy{qos.SharedFIFO, qos.PriorityLC} {
		cfg := base
		cfg.Policy = pol
		res := qos.Simulate(cfg)
		fmt.Printf("shard + indexing, %-12s: query p99 %.1fms, indexing %.1f jobs/s\n",
			pol.String(), res.LCP99*1000, res.BatchThroughput)
	}
	rate, ctl := qos.SLOController(base, 0.020, 8)
	fmt.Printf("SLO controller at 20ms: bucket rate %.2f/s, query p99 %.1fms, indexing %.1f jobs/s\n",
		rate, ctl.LCP99*1000, ctl.BatchThroughput)

	// 4. Load-dependence: the same cluster at higher utilization.
	for _, load := range []float64{100, 500, 700} {
		res := cluster.SimulateQueueing(cluster.QueueingConfig{
			Leaves: 20, RootRate: load,
			LeafService: stats.Exponential{Rate: 1000},
			Requests:    4000, Seed: 11})
		fmt.Printf("queueing at %.0f%% leaf utilization: join p99 %.1fms\n",
			res.MeanLeafUtilization*100, res.P99*1000)
	}

	// 5. Data placement: the hottest shard sets the join latency, so
	//    balance and resharding cost matter.
	mod := cluster.MeasureLoad(cluster.ModuloSharder{N: 100}, 200000, 0, stats.NewRNG(13))
	ch := cluster.MeasureLoad(cluster.NewConsistentHash(100, 128), 200000, 0, stats.NewRNG(13))
	fmt.Printf("placement balance (max/mean): modulo %.2f, consistent-hash(128 vnodes) %.2f\n",
		mod.MaxOverMean, ch.MaxOverMean)
	fmt.Printf("scale-out 100->101 servers moves: modulo %.0f%% of keys, consistent hash %.1f%%\n",
		100*cluster.MovedFraction(cluster.ModuloSharder{N: 100}, cluster.ModuloSharder{N: 101}, 100000),
		100*cluster.MovedFraction(cluster.NewConsistentHash(100, 128), cluster.NewConsistentHash(101, 128), 100000))
}
