// Quickstart: run one headline experiment from each of the paper's three
// Table 2 shifts and print the findings.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"repro/internal/core"
)

func main() {
	fmt.Println("arch21 quickstart — three headline reproductions")
	fmt.Println()
	for _, id := range []string{"E3", "E4", "E9"} {
		e, ok := core.ByID(id)
		if !ok {
			panic("experiment missing: " + id)
		}
		res := e.Run(context.Background())
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		fmt.Printf("paper claim: %s\n\n", e.PaperClaim)
		fmt.Println(res.Render())
	}
	fmt.Println("Run `go run ./cmd/arch21 list` to see all twenty experiments.")
}
