// Package repro's root benchmark harness regenerates every paper
// table/figure (one benchmark per experiment ID, matching DESIGN.md's
// per-experiment index) and runs the ablation benchmarks for the design
// choices DESIGN.md calls out. Run:
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/multicore"
	"repro/internal/noc"
	"repro/internal/nvm"
	"repro/internal/qos"
	"repro/internal/reliability"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/tm"
	"repro/internal/workload"
)

// benchExperiment runs one registered experiment per iteration and keeps
// its output alive.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := core.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var sink int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.Run(context.Background())
		sink += len(res.Render())
	}
	if sink == 0 {
		b.Fatal("experiment produced no output")
	}
}

// One benchmark per paper table/figure/claim (see DESIGN.md §2).

func BenchmarkE1TechnologyScaling(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2ArchitectureDividend(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkE3TailAtScale(b *testing.B)          { benchExperiment(b, "E3") }
func BenchmarkE4Specialization(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE5OperandFetchEnergy(b *testing.B)   { benchExperiment(b, "E5") }
func BenchmarkE6EfficiencyLadder(b *testing.B)     { benchExperiment(b, "E6") }
func BenchmarkE7MulticoreScaling(b *testing.B)     { benchExperiment(b, "E7") }
func BenchmarkE8NearThreshold(b *testing.B)        { benchExperiment(b, "E8") }
func BenchmarkE9MemoryStorage(b *testing.B)        { benchExperiment(b, "E9") }
func BenchmarkE10CommCrossover(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11SensorFilter(b *testing.B)        { benchExperiment(b, "E11") }
func BenchmarkE12Approximate(b *testing.B)         { benchExperiment(b, "E12") }
func BenchmarkE13Reliability(b *testing.B)         { benchExperiment(b, "E13") }
func BenchmarkE14InfoFlow(b *testing.B)            { benchExperiment(b, "E14") }
func BenchmarkE15QoSColocation(b *testing.B)       { benchExperiment(b, "E15") }
func BenchmarkE16OffloadSplit(b *testing.B)        { benchExperiment(b, "E16") }
func BenchmarkE17Availability(b *testing.B)        { benchExperiment(b, "E17") }
func BenchmarkE18BigDataPlacement(b *testing.B)    { benchExperiment(b, "E18") }
func BenchmarkE19TransactionalMemory(b *testing.B) { benchExperiment(b, "E19") }
func BenchmarkE20LocalityBlocking(b *testing.B)    { benchExperiment(b, "E20") }
func BenchmarkE21NoCContention(b *testing.B)       { benchExperiment(b, "E21") }
func BenchmarkE22CheckpointScale(b *testing.B)     { benchExperiment(b, "E22") }
func BenchmarkE23IntentDVFS(b *testing.B)          { benchExperiment(b, "E23") }
func BenchmarkT1Table1(b *testing.B)               { benchExperiment(b, "T1") }
func BenchmarkT2Table2(b *testing.B)               { benchExperiment(b, "T2") }

// --- Ablations (DESIGN.md §3) ---

// BenchmarkAblationClosedFormVsMonteCarlo contrasts the two E3 evaluation
// paths: order-statistics arithmetic vs simulation.
func BenchmarkAblationClosedFormVsMonteCarlo(b *testing.B) {
	b.Run("closed-form", func(b *testing.B) {
		s := 0.0
		for i := 0; i < b.N; i++ {
			s += cluster.FractionAboveQuantile(100, 0.99)
		}
		_ = s
	})
	b.Run("monte-carlo-5k", func(b *testing.B) {
		leaf := stats.Exponential{Rate: 100}
		for i := 0; i < b.N; i++ {
			r := stats.NewRNG(uint64(i))
			cluster.SimulateForkJoin(cluster.ForkJoinConfig{
				Fanout: 100, Leaf: leaf, Trials: 5000}, r)
		}
	})
}

// BenchmarkAblationHedging quantifies the simulation cost and benefit of
// hedged requests at fanout 100.
func BenchmarkAblationHedging(b *testing.B) {
	leaf := cluster.DefaultLeafLatency()
	for _, pol := range []cluster.HedgePolicy{cluster.NoHedge, cluster.Hedged} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			var p99 float64
			for i := 0; i < b.N; i++ {
				r := stats.NewRNG(uint64(i) + 7)
				res := cluster.SimulateForkJoin(cluster.ForkJoinConfig{
					Fanout: 100, Leaf: leaf, Trials: 5000,
					Policy: pol, HedgeQuantile: 0.95}, r)
				p99 = res.P99
			}
			b.ReportMetric(p99*1000, "p99-ms")
		})
	}
}

// BenchmarkAblationStealingVsStatic runs the real parallel runtime both
// ways on a skewed fork workload.
func BenchmarkAblationStealingVsStatic(b *testing.B) {
	r := stats.NewRNG(13)
	d := workload.Fork(256, stats.Bimodal{
		Base:   stats.Constant{V: 5e3},
		Heavy:  stats.Constant{V: 2e5},
		PHeavy: 0.1}, r)
	for _, steal := range []bool{true, false} {
		steal := steal
		name := "static"
		if steal {
			name = "stealing"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				multicore.Runner{Workers: 4, Steal: steal}.Run(d, multicore.SpinWork)
			}
		})
	}
}

// BenchmarkAblationWearLeveling compares PCM lifetime machinery overhead
// per mapped write.
func BenchmarkAblationWearLeveling(b *testing.B) {
	const n = 1024
	patterns := stats.NewZipf(n, 1.2)
	mk := map[string]func() nvm.Mapper{
		"none":        func() nvm.Mapper { return nvm.DirectMapper{N: n} },
		"start-gap":   func() nvm.Mapper { return nvm.NewStartGap(n, 16) },
		"random-swap": func() nvm.Mapper { return nvm.NewRandomSwap(n, 16, 3) },
	}
	for name, f := range mk {
		f := f
		b.Run(name, func(b *testing.B) {
			m := f()
			r := stats.NewRNG(11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l := patterns.Rank(r) - 1
				_ = m.Map(l)
				m.OnWrite(l)
			}
		})
	}
}

// BenchmarkAblationCachePolicy compares replacement policies on a Zipf
// stream.
func BenchmarkAblationCachePolicy(b *testing.B) {
	z := stats.NewZipf(1<<14, 0.9)
	for _, pol := range []mem.Policy{mem.LRU, mem.FIFO, mem.Random} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			c := mem.NewCache("bench", 64<<10, 64, 8, pol)
			r := stats.NewRNG(5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Access(uint64(z.Rank(r))*64, false)
			}
			b.ReportMetric(c.MissRate()*100, "miss%")
		})
	}
}

// BenchmarkAblationQoSPolicies measures simulation throughput per policy.
func BenchmarkAblationQoSPolicies(b *testing.B) {
	for _, pol := range []qos.Policy{qos.SharedFIFO, qos.PriorityLC, qos.TokenBucket} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				qos.Simulate(qos.Config{
					LCRate:           100,
					LCService:        stats.Exponential{Rate: 1000},
					BatchOutstanding: 4,
					BatchService:     stats.Constant{V: 0.050},
					Duration:         50,
					Policy:           pol,
					BucketRate:       5,
					BucketDepth:      1,
					Seed:             uint64(i),
				})
			}
		})
	}
}

// --- Serving-engine benchmarks (DESIGN.md §4) ---

// serveBenchID is a representative mid-weight experiment for the serving
// benchmarks (E11's sensor-filter simulation, ~20ms cold — heavy enough
// that the cold/hit gap is unambiguous, light enough to iterate).
const serveBenchID = "E11"

// BenchmarkServeColdRun measures an uncached serve: full experiment
// execution plus encode plus memoization. Contrast with
// BenchmarkServeCacheHit — the acceptance bar is a >= 10x gap.
func BenchmarkServeColdRun(b *testing.B) {
	e := serve.NewEngine(serve.Config{Workers: 2})
	defer e.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		if _, err := e.Serve(serveBenchID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeCacheHit measures a memoized serve: shard lookup, hit-count
// bump, and payload decode.
func BenchmarkServeCacheHit(b *testing.B) {
	e := serve.NewEngine(serve.Config{Workers: 2})
	defer e.Close()
	if _, err := e.Serve(serveBenchID); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := e.Serve(serveBenchID)
		if err != nil {
			b.Fatal(err)
		}
		if !r.CacheHit {
			b.Fatal("expected a cache hit")
		}
	}
}

// BenchmarkServeEncodedCacheHit measures the zero-copy warm path: shard
// lookup, in-place hit-count bump, and the encoded payload returned
// straight from the slab — no decode. The allocs/op column is the
// tentpole's acceptance metric (near-zero per warm hit).
func BenchmarkServeEncodedCacheHit(b *testing.B) {
	e := serve.NewEngine(serve.Config{Workers: 2})
	defer e.Close()
	if _, err := e.Serve(serveBenchID); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := e.ServeEncoded(ctx, serveBenchID, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !r.CacheHit {
			b.Fatal("expected a cache hit")
		}
	}
}

// BenchmarkServeConcurrentSingleflight sends 16 simultaneous requests for
// one uncached experiment per iteration and reports how many underlying
// executions happened per iteration (singleflight should hold it at ~1).
func BenchmarkServeConcurrentSingleflight(b *testing.B) {
	const clients = 16
	e := serve.NewEngine(serve.Config{Workers: 4})
	defer e.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := e.Serve(serveBenchID); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.ReportMetric(float64(e.Executions())/float64(b.N), "execs/op")
}

// BenchmarkServeContentionCacheHot measures hot-cache serve throughput
// under GOMAXPROCS-parallel clients hammering one key — the shard-mutex
// contention path.
func BenchmarkServeContentionCacheHot(b *testing.B) {
	e := serve.NewEngine(serve.Config{Workers: 2})
	defer e.Close()
	if _, err := e.Serve(serveBenchID); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Serve(serveBenchID); err != nil {
				b.Error(err)
			}
		}
	})
}

// --- Sweep benchmarks (DESIGN.md §5) ---

// sweepBenchSpec is an 8-point E7 grid (pure closed-form math, so the
// benchmark measures the sweep machinery, not simulation weight).
func sweepBenchSpec(b *testing.B) sweep.Spec {
	b.Helper()
	sp, err := sweep.ParseSpec("E7", []string{"f=0.9:0.99:0.03", "bces=64,256"})
	if err != nil {
		b.Fatal(err)
	}
	return sp
}

// BenchmarkSweepColdGrid measures a fully-cold 8-point sweep per
// iteration: grid expansion, fan-out, 8 executions, aggregation.
func BenchmarkSweepColdGrid(b *testing.B) {
	e := serve.NewEngine(serve.Config{Workers: 4})
	defer e.Close()
	sp := sweepBenchSpec(b)
	for i := 0; i < b.N; i++ {
		e.Reset()
		if _, err := sweep.Run(context.Background(), e, sp, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(e.Executions())/float64(b.N), "execs/op")
}

// BenchmarkSweepWarmGrid measures the same sweep fully memoized — pure
// fan-out, cache-hit, and aggregation overhead. Each unique grid point
// executes exactly once across the whole benchmark (execs/op -> 0).
func BenchmarkSweepWarmGrid(b *testing.B) {
	e := serve.NewEngine(serve.Config{Workers: 4})
	defer e.Close()
	sp := sweepBenchSpec(b)
	if _, err := sweep.Run(context.Background(), e, sp, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := sweep.Run(context.Background(), e, sp, nil)
		if err != nil {
			b.Fatal(err)
		}
		if sum.CacheHits != sum.Points {
			b.Fatalf("warm sweep missed the cache: %d/%d", sum.CacheHits, sum.Points)
		}
	}
	b.ReportMetric(float64(e.Executions())/float64(b.N), "execs/op")
}

// BenchmarkSweepGridExpansion measures axis parsing plus cross-product
// expansion for a 3-axis, 125-point grid (no execution).
func BenchmarkSweepGridExpansion(b *testing.B) {
	axes := []string{"a=1:5:1", "b=1:5:1", "c=1:5:1"}
	for i := 0; i < b.N; i++ {
		sp, err := sweep.ParseSpec("E7", axes)
		if err != nil {
			b.Fatal(err)
		}
		if g := sp.Grid(); len(g) != 125 {
			b.Fatalf("grid size %d", len(g))
		}
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkDESEventThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := des.New()
		for j := 0; j < 1000; j++ {
			sim.Schedule(float64(j%97), func() {})
		}
		sim.Run()
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := mem.NewCache("bench", 32<<10, 64, 8, mem.LRU)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%1024)*64, i%3 == 0)
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := mem.StandardHierarchy(energy.Table45())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i%100000)*64, false)
	}
}

func BenchmarkSECDEDEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reliability.Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkSECDEDDecodeWithError(b *testing.B) {
	cw := reliability.Encode(0xdeadbeefcafebabe)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cw
		c.FlipBit(i % 72)
		reliability.Decode(c)
	}
}

func BenchmarkVMExecution(b *testing.B) {
	prog := []isa.Instr{
		{Op: isa.Li, Rd: 1, Imm: 0},
		{Op: isa.Li, Rd: 2, Imm: 10000},
		{Op: isa.Li, Rd: 3, Imm: 1},
		{Op: isa.Add, Rd: 1, Rs1: 1, Rs2: 3},
		{Op: isa.Blt, Rs1: 1, Rs2: 2, Imm: 3},
		{Op: isa.Halt},
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := isa.New(prog, 4)
			if err := m.Run(1 << 20); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ift", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := isa.New(prog, 4)
			m.TrackTaint = true
			if err := m.Run(1 << 20); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkRNG(b *testing.B) {
	r := stats.NewRNG(1)
	var s uint64
	for i := 0; i < b.N; i++ {
		s += r.Uint64()
	}
	_ = s
}

func BenchmarkZipfRank(b *testing.B) {
	z := stats.NewZipf(1<<16, 1.0)
	r := stats.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Rank(r)
	}
}

func BenchmarkSTMTransfer(b *testing.B) {
	a, c := tm.NewVar(1<<40), tm.NewVar(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tm.Transfer(a, c, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlitSim8x8(b *testing.B) {
	m := noc.NewMesh2D(8, 8)
	for i := 0; i < b.N; i++ {
		noc.FlitSim{
			Mesh:          m,
			InjectionRate: 0.2,
			WarmupCycles:  500,
			MeasureCycles: 2000,
			Seed:          uint64(i),
		}.Run()
	}
}

func BenchmarkWorkStealingRuntime(b *testing.B) {
	r := stats.NewRNG(3)
	d := workload.GenerateDAG(workload.DAGConfig{
		Layers: 8, Width: 32, EdgeProb: 0.2,
		Work: stats.Constant{V: 2000}}, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		multicore.Runner{Workers: 4, Steal: true}.Run(d, multicore.SpinWork)
	}
}
