// Command arch21d serves the toolkit's experiments over HTTP through the
// concurrent serving engine: sharded memoizing result cache, singleflight
// deduplication, a bounded worker pool, and self-reported tail latency.
//
// Usage:
//
//	arch21d [-addr :8021] [-shards 16] [-ttl 0] [-workers 4]
//
// Endpoints:
//
//	GET /healthz              liveness probe
//	GET /experiments          registered experiments with their claims
//	GET /run/{id}             serve one experiment (add ?format=text|csv)
//	GET /stats                request counters, cache stats, p50/p99
//
// Example:
//
//	arch21d &
//	curl localhost:8021/run/E3
//	curl localhost:8021/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8021", "listen address")
	shards := flag.Int("shards", 16, "cache shard count (rounded up to a power of two)")
	ttl := flag.Duration("ttl", 0, "cache entry TTL (0 = never expire)")
	workers := flag.Int("workers", 4, "max concurrent cold experiment runs")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "arch21d: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	engine := serve.NewEngine(serve.Config{
		Shards:  *shards,
		TTL:     *ttl,
		Workers: *workers,
	})
	defer engine.Close()

	srv := &http.Server{
		Addr:         *addr,
		Handler:      engine.Handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 5 * time.Minute, // cold "run all"-class requests are slow
	}
	log.Printf("arch21d: serving %d experiments on %s (shards=%d ttl=%v workers=%d)",
		len(core.Registry()), *addr, *shards, *ttl, *workers)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("arch21d: %v", err)
	}
}
