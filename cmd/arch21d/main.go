// Command arch21d serves the toolkit's experiments over HTTP through the
// concurrent serving engine: sharded memoizing result cache (parameter
// assignments folded into cache keys), singleflight deduplication, a
// bounded worker pool, and self-reported tail latency. Parameter sweeps
// fan grids out over the same engine and stream NDJSON.
//
// Usage:
//
//	arch21d [-addr :8021] [-shards 16] [-ttl 0] [-workers 4]
//
// Endpoints:
//
//	GET  /healthz              liveness probe
//	GET  /experiments          registered experiments: claims + param schemas
//	GET  /run/{id}             serve one experiment (add ?format=text|csv)
//	GET  /run/{id}?param=n=v   override declared parameters (repeatable)
//	POST /sweep                parameter-grid sweep, streamed as NDJSON
//	GET  /stats                request counters, cache stats, p50/p99
//
// Example:
//
//	arch21d &
//	curl localhost:8021/run/E3
//	curl "localhost:8021/run/E7?param=f=0.99&param=bces=1024"
//	curl -d '{"id":"E7","params":["f=0.9:0.99:0.03","bces=64,256"]}' localhost:8021/sweep
//	curl localhost:8021/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/sweep"
)

func main() {
	addr := flag.String("addr", ":8021", "listen address")
	shards := flag.Int("shards", 16, "cache shard count (rounded up to a power of two)")
	ttl := flag.Duration("ttl", 0, "cache entry TTL (0 = never expire)")
	workers := flag.Int("workers", 4, "max concurrent cold experiment runs")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "arch21d: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	engine := serve.NewEngine(serve.Config{
		Shards:  *shards,
		TTL:     *ttl,
		Workers: *workers,
	})
	defer engine.Close()

	mux := http.NewServeMux()
	mux.Handle("/", engine.Handler())
	mux.Handle("POST /sweep", sweep.Handler(engine))

	srv := &http.Server{
		Addr:         *addr,
		Handler:      mux,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 5 * time.Minute, // cold "run all"-class requests and sweeps are slow
	}
	log.Printf("arch21d: serving %d experiments on %s (shards=%d ttl=%v workers=%d)",
		len(core.Registry()), *addr, *shards, *ttl, *workers)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("arch21d: %v", err)
	}
}
