// Command arch21d serves the toolkit's experiments over HTTP through the
// concurrent serving engine: sharded memoizing result cache (parameter
// assignments folded into cache keys), singleflight deduplication, a
// class-based QoS admission scheduler (interactive /run traffic served
// strictly ahead of batch sweep points, with a token-bucket batch
// throttle and deadline-aware shedding), and self-reported per-class
// tail latency. Parameter sweeps fan grids out over the same engine as
// batch class and stream NDJSON; a dropped stream cancels queued AND
// in-flight grid points.
//
// With -peers, arch21d runs as a consistent-hash routing front-end
// instead: requests (and every sweep grid point) route to the replica
// owning their cache key — class and remaining deadline budget propagate
// in the X-Arch21-Class / X-Arch21-Deadline-MS headers — with
// health-checked ejection and bounded failover. With -snapshot, the
// engine persists its cache to disk (tier 2) and warm-starts from it on
// boot. With -lc-slo, a feedback controller retunes the batch throttle
// every second to hold the live interactive p99 at the SLO.
//
// Usage:
//
//	arch21d [-addr :8021] [-shards 16] [-ttl 0] [-workers 4]
//	        [-snapshot cache.snap] [-snapshot-every 30s]
//	        [-batch-rate 0] [-lc-slo 0] [-events-log events.ndjson]
//	arch21d -peers :8022,:8023,:8024 [-addr :8021] [-events-log events.ndjson]
//
// Endpoints:
//
//	GET  /healthz              liveness probe
//	GET  /experiments          registered experiments: claims + param schemas
//	GET  /run/{id}             serve one experiment (add ?format=text|csv)
//	GET  /run/{id}?param=n=v   override declared parameters (repeatable)
//	POST /sweep                parameter-grid sweep, streamed as NDJSON
//	GET  /stats                request counters, cache stats, per-class
//	                           p50/p99, scheduler + shed counters
//	                           (router mode: routing counters + backend health)
//	GET  /metrics              Prometheus text exposition — both modes
//	GET  /events?since=N       structured control-plane events after cursor N
//	POST /control              live retune: batch_rate, slo_ms, policy;
//	                           the front-end fans it out to every replica
//	                           and reports per-replica acks
//
// Every endpoint is also served under the versioned /v1 prefix
// (GET /v1/run/{id}, POST /v1/sweep, ...); the unversioned paths remain
// as legacy aliases. Error responses on both surfaces are one JSON
// envelope: {"error":{"code","message","retry_after_ms"}}.
//
// Example:
//
//	arch21d -lc-slo 50ms &
//	curl localhost:8021/run/E3
//	curl "localhost:8021/run/E7?param=f=0.99&param=bces=1024"
//	curl -H 'X-Arch21-Class: batch' -H 'X-Arch21-Deadline-MS: 2000' localhost:8021/run/E9
//	curl -d '{"id":"E7","params":["f=0.9:0.99:0.03","bces=64,256"]}' localhost:8021/sweep
//	curl localhost:8021/stats
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/qos"
	"repro/internal/router"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// openEventsLog opens (appending) the -events-log NDJSON sink; a file
// that cannot be opened is fatal at boot, not silently dropped.
func openEventsLog(path string) *os.File {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		log.Fatalf("arch21d: -events-log: %v", err)
	}
	return f
}

func main() {
	addr := flag.String("addr", ":8021", "listen address")
	shards := flag.Int("shards", 16, "cache shard count (rounded up to a power of two)")
	ttl := flag.Duration("ttl", 0, "cache entry TTL (0 = never expire)")
	workers := flag.Int("workers", 4, "max concurrent cold experiment runs")
	cacheBytes := flag.Int64("cache-bytes", 0, "tier-1 cache byte budget across shards (0 = unbounded; bounded shards evict per -cache-policy)")
	cachePolicy := flag.String("cache-policy", "lru", "eviction policy for a bounded cache: lru (keep recently-read entries) or cost (keep entries that earn hits)")
	snapshot := flag.String("snapshot", "", "tier-2 cache snapshot file: warm-start from it on boot, persist to it while serving")
	snapshotEvery := flag.Duration("snapshot-every", 30*time.Second, "background snapshot save interval (0 = only on shutdown)")
	batchRate := flag.Float64("batch-rate", 0, "token-bucket rate for batch-class admissions (grid points/s; 0 = unthrottled)")
	lcSLO := flag.Duration("lc-slo", 0, "interactive p99 SLO: a feedback controller retunes -batch-rate every second to hold it (0 = static rate)")
	eventsLog := flag.String("events-log", "", "append every control-plane event to this file as NDJSON (the in-memory ring serves /events regardless)")
	tenants := flag.String("tenants", "", "comma-separated tenant vocabulary: keep per-tenant books and /metrics families; requests with an unlisted (or no) X-Arch21-Tenant header fold into \"other\"")
	peers := flag.String("peers", "", "comma-separated replica addresses: run as a consistent-hash routing front-end instead of serving locally")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "arch21d: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	mux := http.NewServeMux()
	var onShutdown func()

	if *peers != "" {
		// A routing front-end has no local engine: accepting and silently
		// dropping engine flags would let an operator believe they
		// configured a cache that does not exist.
		engineOnly := map[string]bool{"shards": true, "ttl": true, "workers": true,
			"cache-bytes": true, "cache-policy": true,
			"snapshot": true, "snapshot-every": true, "batch-rate": true, "lc-slo": true,
			"tenants": true}
		flag.Visit(func(f *flag.Flag) {
			if engineOnly[f.Name] {
				fmt.Fprintf(os.Stderr, "arch21d: -%s configures the local engine and has no effect with -peers\n", f.Name)
				os.Exit(2)
			}
		})
		var backends []router.Backend
		for _, p := range strings.Split(*peers, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			backends = append(backends, router.NewHTTPBackend(p))
		}
		rt, err := router.New(backends, router.Config{})
		if err != nil {
			log.Fatalf("arch21d: %v", err)
		}
		if *eventsLog != "" {
			rt.Events().SetSink(openEventsLog(*eventsLog))
		}
		mux.Handle("/", rt.Handler())
		httpapi.Mount(mux, "POST /sweep", sweep.Handler(rt))
		log.Printf("arch21d: routing front-end for %d replicas on %s (peers=%s)",
			len(backends), *addr, *peers)
	} else {
		var vocab []string
		for _, name := range strings.Split(*tenants, ",") {
			if name = strings.TrimSpace(name); name != "" {
				vocab = append(vocab, name)
			}
		}
		policy, err := serve.ParseEvictionPolicy(*cachePolicy)
		if err != nil {
			log.Fatalf("arch21d: -cache-policy: %v", err)
		}
		engine := serve.NewEngine(serve.Config{
			Shards:       *shards,
			TTL:          *ttl,
			Workers:      *workers,
			CacheBytes:   *cacheBytes,
			CachePolicy:  policy,
			BatchRate:    *batchRate,
			SnapshotPath: *snapshot,
			Tenants:      vocab,
		})
		defer engine.Close()
		if *eventsLog != "" {
			engine.Events().SetSink(openEventsLog(*eventsLog))
		}
		mux.Handle("/", engine.Handler())
		httpapi.Mount(mux, "POST /sweep", sweep.Handler(engine))
		if *lcSLO > 0 {
			// The §2.4 feedback loop, live: every second, read the
			// interactive class's p99 over the *last window* (the
			// lifetime reservoir in /stats barely moves once mature, so
			// it would mask both fresh violations and recoveries) and
			// retune the batch token-bucket toward the highest rate that
			// still meets the SLO. Starting rate: the static -batch-rate
			// if given, else an optimistic 256 points/s for the
			// controller to walk down. Every decision lands in the event
			// ring (GET /events) and, with -events-log, the NDJSON file.
			initial := *batchRate
			if initial <= 0 {
				initial = 256
			}
			sup := &qos.Supervisor{
				Ctrl:   qos.NewRateController(lcSLO.Seconds(), initial, 0.1, 1e6),
				Window: func() stats.LatencySnapshot { return engine.TakeClassWindow(admit.Interactive) },
				Apply:  engine.SetBatchRate,
				Events: engine.Events(),
			}
			engine.SetBatchRate(sup.Ctrl.Rate())
			// POST /control's slo_ms knob retunes this controller live.
			engine.OnSLOChange(sup.SetSLO)
			go sup.Run(context.Background())
		}
		if *snapshot != "" {
			if loaded := engine.Metrics().Snapshot.Loaded; loaded > 0 {
				log.Printf("arch21d: warm start: %d entries loaded from %s", loaded, *snapshot)
			}
			if *snapshotEvery > 0 {
				go func() {
					for range time.Tick(*snapshotEvery) {
						if err := engine.SaveSnapshot(); err != nil {
							log.Printf("arch21d: snapshot save: %v", err)
						}
					}
				}()
			}
			onShutdown = func() {
				if err := engine.SaveSnapshot(); err != nil {
					log.Printf("arch21d: final snapshot save: %v", err)
				}
			}
		}
		log.Printf("arch21d: serving %d experiments on %s (shards=%d ttl=%v workers=%d snapshot=%q)",
			len(core.Registry()), *addr, *shards, *ttl, *workers, *snapshot)
	}

	srv := &http.Server{
		Addr:         *addr,
		Handler:      mux,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 5 * time.Minute, // cold "run all"-class requests and sweeps are slow
	}
	// On SIGINT/SIGTERM, drain in-flight requests first (long sweeps get
	// up to the write timeout to finish streaming), then take the final
	// snapshot — saving after the drain, not during it, so results
	// memoized by the last requests make it into the file the next boot
	// warm-starts from.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-sig
		// A second signal during the (up to WriteTimeout-long) drain
		// forces an immediate exit — the operator must keep a way out
		// short of SIGKILL.
		go func() {
			<-sig
			log.Printf("arch21d: second signal, exiting without draining")
			os.Exit(1)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), srv.WriteTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("arch21d: shutdown: %v", err)
		}
		if onShutdown != nil {
			onShutdown()
		}
	}()
	err := srv.ListenAndServe()
	if err != nil && err != http.ErrServerClosed {
		log.Fatalf("arch21d: %v", err)
	}
	if err == http.ErrServerClosed {
		<-done // let the drain + final snapshot finish before exiting
	}
}
