// Command asmrun assembles and executes a program on the toolkit's tagged
// RISC VM, optionally with information-flow tracking — a workbench for the
// security experiments.
//
// Usage:
//
//	asmrun [-ift] [-enforce] [-mem 64] [-in "1,2,3"] prog.s
//	asmrun -demo            # run the built-in overflow victim + exploit
//
// Input words (comma-separated, -in) are fed to port 0, which is marked
// tainted under -ift. Output ports are printed at exit; port 1 is marked
// public (tainted writes violate policy under -ift -enforce).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/security"
)

func main() {
	ift := flag.Bool("ift", false, "enable information-flow tracking")
	enforce := flag.Bool("enforce", false, "abort on policy violations (with -ift)")
	memWords := flag.Int("mem", 64, "data memory size in words")
	inputs := flag.String("in", "", "comma-separated int64 inputs for port 0")
	maxCycles := flag.Uint64("cycles", 1000000, "cycle budget")
	demo := flag.Bool("demo", false, "run the built-in buffer-overflow demo")
	dis := flag.Bool("d", false, "print disassembly before running")
	flag.Parse()

	if *demo {
		runDemo()
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asmrun [flags] prog.s  (or -demo)")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := isa.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	if *dis {
		fmt.Print(isa.Disassemble(prog))
	}
	m := isa.New(prog, *memWords)
	m.TrackTaint = *ift
	m.EnforcePolicy = *enforce
	m.TaintedPorts[0] = true
	m.PublicPorts[1] = true
	if *inputs != "" {
		for _, tok := range strings.Split(*inputs, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(tok), 0, 64)
			if err != nil {
				fatal(fmt.Errorf("bad input %q: %v", tok, err))
			}
			m.Inputs[0] = append(m.Inputs[0], v)
		}
	}
	runErr := m.Run(*maxCycles)
	fmt.Printf("cycles: %d  instructions: %d\n", m.Cycles, m.Instructions())
	for port, vals := range m.Outputs {
		fmt.Printf("port %d out: %v\n", port, vals)
	}
	for _, v := range m.Violations {
		fmt.Printf("VIOLATION: %s at pc=%d\n", v.Kind, v.PC)
	}
	if runErr != nil {
		fatal(runErr)
	}
}

func runDemo() {
	s := security.BuildOverflowVictim(8)
	fmt.Println("victim program:")
	fmt.Print(isa.Disassemble(s.Prog))
	fmt.Println("\n1) benign input, no IFT:")
	report(s.Run(s.BenignPayload(8), false, false))
	fmt.Println("2) exploit, no IFT (hijack succeeds):")
	report(s.Run(s.ExploitPayload(), false, false))
	fmt.Println("3) exploit, IFT enforcing (blocked):")
	report(s.Run(s.ExploitPayload(), true, true))
}

func report(r security.RunResult) {
	fmt.Printf("   cycles=%d hijacked=%v detected=%v err=%v\n\n",
		r.Cycles, r.Hijacked, r.Detected, r.Err)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asmrun:", err)
	os.Exit(1)
}
