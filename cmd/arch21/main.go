// Command arch21 runs the toolkit's paper-claim experiments.
//
// Usage:
//
//	arch21 list             # list experiments with their paper claims
//	arch21 run E3           # run one experiment
//	arch21 run all          # run every experiment
//	arch21 run E3 -csv      # emit the experiment's table as CSV
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range core.Registry() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.PaperClaim)
		}
	case "run":
		if len(os.Args) < 3 {
			usage()
			os.Exit(2)
		}
		id := os.Args[2]
		csv := len(os.Args) > 3 && os.Args[3] == "-csv"
		if id == "all" {
			for _, out := range core.RunAll() {
				fmt.Println(out)
			}
			return
		}
		e, ok := core.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "arch21: unknown experiment %q (try 'arch21 list')\n", id)
			os.Exit(1)
		}
		res := e.Run()
		fmt.Printf("=== %s: %s\nclaim: %s\n", e.ID, e.Title, e.PaperClaim)
		if csv {
			switch {
			case res.Table != nil:
				fmt.Print(res.Table.CSV())
			case res.Figure != nil:
				fmt.Print(res.Figure.CSV())
			}
			return
		}
		fmt.Print(res.Render())
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  arch21 list
  arch21 run <id|all> [-csv]`)
}
