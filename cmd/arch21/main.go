// Command arch21 runs the toolkit's paper-claim experiments, singly or as
// parameter sweeps.
//
// Usage:
//
//	arch21 list                                # experiments with their claims and knobs
//	arch21 params E7                           # one experiment's parameter schema
//	arch21 run E3                              # run one experiment at defaults
//	arch21 run E3 -param fanout=400            # override declared parameters
//	arch21 run E3 -csv                         # emit the table as CSV
//	arch21 run all                             # run every experiment
//	arch21 sweep -id E7 -param f=0.9:0.99:0.03 # sweep a parameter grid
//	arch21 sweep -id E7 -param f=0.9,0.99 -param bces=64,256 -v
//	arch21 loadtest -scenario warm-hammer -duration 2s -json bench.json
//	arch21 benchcmp -tolerance 0.25 BENCH_baseline.json bench.json
//	arch21 ctl -addr :8021 -batch-rate 64    # live retune a running arch21d
//	arch21 ctl -addr :8021 -slo 50ms -policy strict-priority
//	arch21 metricslint -addr :8021            # promlint-style check of a live /metrics
//
// Sweeps fan the grid out over the same memoizing engine arch21d serves
// from: every unique grid point executes once, repeats come from cache,
// and the output is a combined table (plus a figure for 1- and 2-axis
// sweeps). loadtest replays catalog load scenarios against that engine
// (or a live arch21d) and emits the BENCH JSON perf artifact; benchcmp
// gates a new artifact against a baseline (what CI's bench-smoke job
// does).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/sweep"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		cmdList()
	case "params":
		cmdParams(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "sweep":
		cmdSweep(os.Args[2:])
	case "loadtest":
		cmdLoadtest(os.Args[2:])
	case "benchcmp":
		cmdBenchcmp(os.Args[2:])
	case "ctl":
		cmdCtl(os.Args[2:])
	case "metricslint":
		cmdMetricsLint(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

// paramFlags collects repeated -param assignments in order.
type paramFlags []string

func (p *paramFlags) String() string { return strings.Join(*p, " ") }

func (p *paramFlags) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func cmdList() {
	for _, e := range core.Registry() {
		fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.PaperClaim)
		if len(e.Params) > 0 {
			fmt.Printf("     params: %s\n", e.SchemaString())
		}
	}
}

func cmdParams(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: arch21 params <id>")
		os.Exit(2)
	}
	e, ok := core.ByID(args[0])
	if !ok {
		fatalf("unknown experiment %q (try 'arch21 list')", args[0])
	}
	if len(e.Params) == 0 {
		fmt.Printf("%s takes no parameters\n", e.ID)
		return
	}
	for _, s := range e.Params {
		fmt.Printf("%-10s %-5s default=%-8s range=[%s, %s]",
			s.Name, s.Kind, core.FormatParamValue(s.Default),
			core.FormatParamValue(s.Min), core.FormatParamValue(s.Max))
		if s.Step > 0 {
			fmt.Printf(" step=%s", core.FormatParamValue(s.Step))
		}
		if s.Doc != "" {
			fmt.Printf("  %s", s.Doc)
		}
		fmt.Println()
	}
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	csv := fs.Bool("csv", false, "emit the experiment's table/figure as CSV")
	var params paramFlags
	fs.Var(&params, "param", "parameter override name=value (repeatable)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: arch21 run <id|all> [-param name=value ...] [-csv]")
		fs.PrintDefaults()
	}
	// Keep the historical "arch21 run E3 -csv" argument order working:
	// the ID comes first, flags after.
	if len(args) < 1 || strings.HasPrefix(args[0], "-") {
		fs.Usage()
		os.Exit(2)
	}
	id := args[0]
	_ = fs.Parse(args[1:])

	if id == "all" {
		if len(params) > 0 {
			fatalf("-param applies to a single experiment, not 'all'")
		}
		for _, out := range core.RunAll(context.Background()) {
			fmt.Println(out)
		}
		return
	}
	e, ok := core.ByID(id)
	if !ok {
		fatalf("unknown experiment %q (try 'arch21 list')", id)
	}
	p, err := core.ParseParams(params)
	if err != nil {
		fatalf("%v", err)
	}
	res, resolved, err := e.RunWith(context.Background(), p)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("=== %s: %s\nclaim: %s\n", e.ID, e.Title, e.PaperClaim)
	if len(resolved) > 0 {
		parts := make([]string, 0, len(e.Params))
		for _, s := range e.Params {
			parts = append(parts, s.Name+"="+core.FormatParamValue(resolved[s.Name]))
		}
		fmt.Printf("params: %s\n", strings.Join(parts, " "))
	}
	if *csv {
		switch {
		case res.Table != nil:
			fmt.Print(res.Table.CSV())
		case res.Figure != nil:
			fmt.Print(res.Figure.CSV())
		}
		return
	}
	fmt.Print(res.Render())
}

func cmdSweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	id := fs.String("id", "", "experiment to sweep")
	csv := fs.Bool("csv", false, "emit the aggregated table as CSV")
	verbose := fs.Bool("v", false, "print each grid point as it completes")
	workers := fs.Int("workers", 4, "max concurrent cold experiment runs")
	parallel := fs.Int("parallel", 0, "max in-flight grid points (default 8)")
	var params paramFlags
	fs.Var(&params, "param",
		"sweep axis name=lo:hi:step, name=a,b,c, or name=value (repeatable, order = grid order)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr,
			"usage: arch21 sweep -id <id> -param name=lo:hi:step [-param ...] [-csv] [-v]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if *id == "" || len(params) == 0 {
		fs.Usage()
		os.Exit(2)
	}

	sp, err := sweep.ParseSpec(*id, params)
	if err != nil {
		fatalf("%v", err)
	}
	sp.Parallelism = *parallel
	eng := serve.NewEngine(serve.Config{Workers: *workers})
	defer eng.Close()

	var emit func(sweep.Point) error
	if *verbose {
		emit = func(pt sweep.Point) error {
			first := ""
			if len(pt.Result.Findings) > 0 {
				first = pt.Result.Findings[0]
			}
			fmt.Printf("[%d] %s (%.1fms) %s\n",
				pt.Index, pt.Key, pt.Latency.Seconds()*1e3, first)
			return nil
		}
	}
	sum, err := sweep.Run(context.Background(), eng, sp, emit)
	if err != nil {
		fatalf("%v", err)
	}
	if *csv {
		fmt.Print(sum.Aggregate.Table.CSV())
		return
	}
	fmt.Print(sum.Aggregate.Render())
	fmt.Printf("(%d points, %d from cache, %.1fms)\n",
		sum.Points, sum.CacheHits, sum.Elapsed.Seconds()*1e3)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "arch21: "+format+"\n", args...)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  arch21 list
  arch21 params <id>
  arch21 run <id|all> [-param name=value ...] [-csv]
  arch21 sweep -id <id> -param name=lo:hi:step [-param ...] [-csv] [-v]
  arch21 loadtest -scenario <name> [-duration 5s] [-clients N] [-rate R] [-class interactive|batch] [-http addr] [-json out.json [-append]]
  arch21 benchcmp [-tolerance 0.25] old.json new.json [more-new.json ...]
  arch21 ctl -addr :8021 [-batch-rate R] [-slo 50ms] [-policy strict-priority|shared-fifo]
  arch21 metricslint [-addr :8021] [FILE]`)
}
