package main

// arch21 metricslint: scrape a live daemon's /metrics (or read an
// already-captured exposition file / stdin) and run the promlint-style
// checks obs.Lint enforces. Exits nonzero on any problem — the check
// `make metrics-smoke` and CI's mid-load scrape run.

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
)

func cmdMetricsLint(args []string) {
	fs := flag.NewFlagSet("metricslint", flag.ExitOnError)
	addr := fs.String("addr", "", "scrape a live daemon's /metrics at this address (default: read FILE or stdin)")
	timeout := fs.Duration("timeout", 10*time.Second, "scrape timeout")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: arch21 metricslint [-addr :8021] [FILE]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	var in io.Reader
	var src string
	switch {
	case *addr != "":
		base := strings.TrimSuffix(*addr, "/")
		if strings.HasPrefix(base, ":") {
			base = "localhost" + base
		}
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		src = base + "/metrics"
		client := &http.Client{Timeout: *timeout}
		resp, err := client.Get(src)
		if err != nil {
			fatalf("%v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatalf("%s: HTTP %d", src, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			fatalf("%s: unexpected Content-Type %q", src, ct)
		}
		in = resp.Body
	case fs.NArg() == 1:
		src = fs.Arg(0)
		f, err := os.Open(src)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
	case fs.NArg() == 0:
		src, in = "stdin", os.Stdin
	default:
		fs.Usage()
		os.Exit(2)
	}

	problems := obs.Lint(in)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "%s: %s\n", src, p)
		}
		fatalf("%s: %d exposition problem(s)", src, len(problems))
	}
	fmt.Printf("%s: exposition is promlint-clean\n", src)
}
