package main

// arch21 loadtest / benchcmp: the CLI face of internal/load. loadtest
// runs one catalog scenario against the in-process engine (or a live
// arch21d via -http) and emits the versioned BENCH JSON report; benchcmp
// diffs two report files with load.Compare and exits nonzero on a gated
// regression — the check CI's bench-smoke job runs against the committed
// BENCH_baseline.json.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"repro/internal/admit"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/router"
	"repro/internal/serve"
	"repro/internal/stats"
)

func cmdLoadtest(args []string) {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	scenario := fs.String("scenario", "", "catalog scenario to run (see -list)")
	list := fs.Bool("list", false, "list catalog scenarios and exit")
	duration := fs.Duration("duration", 0, "measured window (default 5s)")
	clients := fs.Int("clients", 0, "closed-loop concurrency (default: scenario)")
	rate := fs.Float64("rate", 0, "open-loop arrival rate req/s (default: scenario)")
	httpAddr := fs.String("http", "", "load a live arch21d at this address instead of the in-process engine")
	replicas := fs.Int("replicas", 0, "front N in-process engine replicas with a consistent-hash router and load that (0 = single engine)")
	degrade := fs.Duration("degrade", 0, "with -replicas: inject this much service latency into replica 0 — the degraded-replica scenario's straggler the hedging scoreboard must route around (0 = all healthy)")
	jsonOut := fs.String("json", "", "write the BENCH report JSON to this file")
	appendOut := fs.Bool("append", false, "with -json: merge into an existing BENCH file (replacing a same-scenario report) instead of overwriting — how multi-scenario baselines are assembled")
	class := fs.String("class", "", "force the class of the scenario's primary request stream: interactive or batch (default: the catalog's per-variant classes)")
	seed := fs.Uint64("seed", 0, "override the scenario seed")
	workers := fs.Int("workers", 4, "in-process engine worker-pool size")
	lcSLO := fs.Duration("lc-slo", 0, "attach the QoS feedback controller to the in-process engine at this interactive p99 SLO; its decisions land in the report's events timeline (0 = off)")
	maxprocs := fs.Int("maxprocs", 0, "pin GOMAXPROCS for the run (0 = leave alone; CI pins 1 so baselines compare across machines)")
	chaos := fs.Bool("chaos", false, "run a chaos soak instead of a catalog scenario: replica kills, hangs, and error bursts under live load, asserting conservation, goroutine, and heap invariants (exit 1 on any violation)")
	soakDuration := fs.Duration("soak-duration", 30*time.Second, "with -chaos: the soak length")
	eventsLog := fs.String("events-log", "", "with -chaos: append the router's control-plane events (ejections, re-admissions) to this file as NDJSON")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr,
			"usage: arch21 loadtest -scenario <name> [-duration 5s] [-clients N] [-rate R] [-http addr] [-json out.json]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	if *list {
		for _, sc := range load.Scenarios() {
			nv := len(sc.Variants)
			for _, tm := range sc.Tenants {
				nv += len(tm.Variants)
			}
			fmt.Printf("%-12s %s-loop, %d variants  %s\n", sc.Name, sc.Mode, nv, sc.Doc)
		}
		return
	}
	if *chaos {
		if *maxprocs > 0 {
			runtime.GOMAXPROCS(*maxprocs)
		}
		runChaos(*soakDuration, *replicas, *clients, *workers, *seed, *eventsLog, *jsonOut)
		return
	}
	if *scenario == "" {
		fs.Usage()
		os.Exit(2)
	}
	sc, ok := load.ScenarioByName(*scenario)
	if !ok {
		fatalf("unknown scenario %q (try 'arch21 loadtest -list')", *scenario)
	}
	if *maxprocs > 0 {
		runtime.GOMAXPROCS(*maxprocs)
	} else if sc.Cores > 0 {
		// Core-pinned scenarios (warm-hammer-4c) fix their own
		// parallelism so reports are comparable across machines; an
		// explicit -maxprocs still wins.
		runtime.GOMAXPROCS(sc.Cores)
	}

	if *httpAddr != "" && *replicas > 0 {
		fatalf("-http and -replicas are mutually exclusive (a live daemon vs an in-process replica set)")
	}
	if *degrade > 0 && *replicas == 0 {
		fatalf("-degrade needs -replicas: the straggler is one replica of an in-process cluster")
	}
	var tgt load.Target
	switch {
	case *httpAddr != "":
		tgt = load.NewHTTPTarget(*httpAddr)
	case *replicas > 0:
		// An in-process replica set: N engines behind the consistent-hash
		// router, so the BENCH harness measures routed serving (placement,
		// health accounting, per-replica caches) like any single engine.
		engines := make([]*serve.Engine, *replicas)
		backends := make([]router.Backend, *replicas)
		for i := range engines {
			engines[i] = serve.NewEngine(serve.Config{Workers: *workers})
			defer engines[i].Close()
			backends[i] = router.NewEngineBackend(engines[i], fmt.Sprintf("engine[%d]", i))
		}
		if *degrade > 0 {
			// One slow replica, injected through the same fault harness the
			// chaos soak uses: it still answers correctly and passes health
			// checks, so only the latency scoreboard (hedging, demotion) can
			// route around it.
			fb := router.NewFaultBackend(backends[0])
			fb.Degrade(*degrade)
			backends[0] = fb
		}
		rt, err := router.New(backends, router.Config{})
		if err != nil {
			fatalf("%v", err)
		}
		tgt = load.NewServerTarget(rt, "router").WithReset(func() {
			for _, eng := range engines {
				eng.Reset()
			}
		})
	default:
		eng := serve.NewEngine(serve.Config{Workers: *workers})
		defer eng.Close()
		if *lcSLO > 0 {
			// The same feedback loop arch21d -lc-slo runs, attached to the
			// measured engine: its halve/reclaim decisions are recorded into
			// the engine's event ring, which load.Run captures into the
			// report — the controller-decision timeline the colocation
			// artifact carries.
			sup := &qos.Supervisor{
				Ctrl:     qos.NewRateController(lcSLO.Seconds(), 256, 0.1, 1e6),
				Window:   func() stats.LatencySnapshot { return eng.TakeClassWindow(admit.Interactive) },
				Apply:    eng.SetBatchRate,
				Events:   eng.Events(),
				Interval: 100 * time.Millisecond,
			}
			eng.SetBatchRate(sup.Ctrl.Rate())
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go sup.Run(ctx)
		}
		tgt = load.NewEngineTarget(eng)
	}

	opts := load.Options{
		Duration: *duration,
		Clients:  *clients,
		Rate:     *rate,
		Seed:     *seed,
	}
	if *class != "" {
		c, err := admit.ParseClass(*class)
		if err != nil {
			fatalf("%v", err)
		}
		opts.Class = &c
	}
	rep, err := load.Run(tgt, sc, opts)
	if err != nil {
		fatalf("%v", err)
	}
	rep.Git = gitDescribe()
	if err := rep.Validate(); err != nil {
		fatalf("measured report is not schema-valid: %v", err)
	}
	if sc.Reset && !rep.Config.Reset {
		fmt.Fprintf(os.Stderr,
			"arch21: note: scenario %s wants a cold cache but the %s target cannot reset — measuring as-is (report records reset=false)\n",
			sc.Name, rep.Config.Target)
	}

	m := rep.Metrics
	fmt.Printf("scenario %s (%s loop, target %s): %d requests in %.2fs\n",
		rep.Scenario, rep.Config.Mode, rep.Config.Target, m.Requests, m.DurationSeconds)
	fmt.Printf("  throughput  %.1f req/s   errors %d (%.2f%%)\n",
		m.ThroughputRPS, m.Errors, m.ErrorRate*100)
	fmt.Printf("  latency     p50 %s  p95 %s  p99 %s  p999 %s  max %s\n",
		fmtLatency(m.Latency.P50), fmtLatency(m.Latency.P95),
		fmtLatency(m.Latency.P99), fmtLatency(m.Latency.P999), fmtLatency(m.Latency.Max))
	fmt.Printf("  cache       hit ratio %.3f  dedup ratio %.3f\n",
		m.CacheHitRatio, m.DedupRatio)
	// A colocation run's headline is the per-class split.
	for _, cls := range []string{"interactive", "batch"} {
		cm, ok := m.PerClass[cls]
		if !ok || len(m.PerClass) < 2 {
			continue
		}
		fmt.Printf("  [%s] %d req  %.1f req/s  p50 %s  p99 %s  errors %d\n",
			cls, cm.Requests, cm.ThroughputRPS,
			fmtLatency(cm.Latency.P50), fmtLatency(cm.Latency.P99), cm.Errors)
	}
	fmt.Printf("  calibration %.3g hash-bytes/s\n", rep.CalibrationBPS)
	if n := len(rep.Events); n > 0 {
		byType := map[string]int{}
		for _, ev := range rep.Events {
			byType[ev.Type]++
		}
		fmt.Printf("  events      %d captured (", n)
		first := true
		for _, t := range obs.EventTypes() {
			if byType[t] == 0 {
				continue
			}
			if !first {
				fmt.Print(", ")
			}
			fmt.Printf("%s %d", t, byType[t])
			first = false
		}
		fmt.Println(")")
	}

	if *jsonOut != "" {
		write := func() error { return load.WriteFile(*jsonOut, rep) }
		if *appendOut {
			write = func() error { return load.MergeFile(*jsonOut, rep) }
		}
		if err := write(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

func cmdBenchcmp(args []string) {
	fs := flag.NewFlagSet("benchcmp", flag.ExitOnError)
	tolerance := fs.Float64("tolerance", 0.25, "fractional regression tolerance on gated metrics")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: arch21 benchcmp [-tolerance 0.25] old.json new.json [more-new.json ...]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() < 2 {
		fs.Usage()
		os.Exit(2)
	}
	old, err := load.ReadReports(fs.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	// Every file after the first contributes new-side reports, so a
	// multi-scenario baseline can be checked against per-scenario
	// measurement files in one invocation.
	var cur []load.Report
	for _, path := range fs.Args()[1:] {
		reps, err := load.ReadReports(path)
		if err != nil {
			fatalf("%v", err)
		}
		cur = append(cur, reps...)
	}
	cmp, err := load.Compare(old, cur, *tolerance)
	if err != nil {
		fatalf("%v", err)
	}
	for _, s := range cmp.Skipped {
		fmt.Fprintf(os.Stderr, "arch21: benchcmp: warning: skipped %s\n", s)
	}
	for _, d := range cmp.Deltas {
		gate := "info "
		if d.Gated {
			gate = "gated"
		}
		status := "ok"
		if d.Regression {
			status = "REGRESSION"
		}
		fmt.Printf("%-12s %-16s %-5s old=%-12.6g new=%-12.6g %+6.1f%%  %s\n",
			d.Scenario, d.Metric, gate, d.Old, d.New, d.Change*100, status)
		if d.Note != "" {
			fmt.Printf("             %s\n", d.Note)
		}
	}
	if cmp.Regressed() {
		fmt.Fprintf(os.Stderr, "arch21: benchcmp: %d gated metric(s) regressed past %.0f%% tolerance\n",
			len(cmp.Regressions()), *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("no gated regressions (tolerance %.0f%%)\n", *tolerance*100)
}

// runChaos runs the soak/chaos mode and exits nonzero on any failed
// invariant check.
func runChaos(duration time.Duration, replicas, clients, workers int, seed uint64, eventsLog, jsonOut string) {
	opt := load.ChaosOptions{
		Duration: duration,
		Seed:     seed,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "arch21: "+format+"\n", args...)
		},
	}
	if replicas > 0 {
		opt.Replicas = replicas
	}
	if clients > 0 {
		opt.Clients = clients
	}
	if workers != 4 { // 4 is the flag default; 0 keeps the chaos default
		opt.Workers = workers
	}
	if eventsLog != "" {
		f, err := os.OpenFile(eventsLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		opt.EventsSink = f
	}
	res, err := load.RunChaos(opt)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("chaos soak: %.0fs, %d replicas, %d clients: %d requests (%d errors), %d kills, %d hangs, %d bursts\n",
		res.DurationSeconds, res.Replicas, res.Clients,
		res.Requests, res.Errors, res.Kills, res.Hangs, res.Bursts)
	failed := 0
	for _, c := range res.Checks {
		status := "ok"
		if !c.Passed {
			status = "FAILED"
			failed++
		}
		fmt.Printf("  %-24s %-6s %s\n", c.Name, status, c.Detail)
	}
	if jsonOut != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(jsonOut, append(buf, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "arch21: chaos: %d invariant check(s) failed\n", failed)
		os.Exit(1)
	}
}

// fmtLatency renders a latency in seconds human-readably.
func fmtLatency(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

// gitDescribe stamps reports with the working tree's `git describe
// --always --dirty` (empty when git or the repo is unavailable).
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
