package main

// arch21 ctl — the live control channel's CLI face: POST a retune to a
// running arch21d (engine or routing front-end). Against a front-end the
// request fans out to every replica and the per-replica acks are
// printed, so a partial application is visible at the terminal, not just
// in the event log.
//
//	arch21 ctl -addr :8021 -batch-rate 64
//	arch21 ctl -addr :8021 -slo 50ms
//	arch21 ctl -addr :8021 -policy shared-fifo

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/admit"
	"repro/internal/serve"
)

func cmdCtl(args []string) {
	fs := flag.NewFlagSet("ctl", flag.ExitOnError)
	addr := fs.String("addr", ":8021", "arch21d address (engine or -peers front-end)")
	batchRate := fs.Float64("batch-rate", -1, "retune the batch token-bucket rate (tokens/s; 0 removes the throttle; negative = leave alone)")
	slo := fs.Duration("slo", 0, "retune the feedback controller's interactive p99 target (0 = leave alone)")
	policy := fs.String("policy", "", "switch the admission policy: strict-priority or shared-fifo (empty = leave alone)")
	timeout := fs.Duration("timeout", 10*time.Second, "request timeout")
	_ = fs.Parse(args)

	var req serve.ControlRequest
	if *batchRate >= 0 {
		req.BatchRate = batchRate
	}
	if *slo > 0 {
		ms := slo.Seconds() * 1e3
		req.SLOMS = &ms
	}
	if *policy != "" {
		if _, err := admit.ParsePolicy(*policy); err != nil {
			fmt.Fprintf(os.Stderr, "arch21 ctl: %v\n", err)
			os.Exit(2)
		}
		req.Policy = policy
	}
	if req.Empty() {
		fmt.Fprintln(os.Stderr, "arch21 ctl: nothing to retune (pass -batch-rate, -slo, and/or -policy)")
		os.Exit(2)
	}

	base := strings.TrimSuffix(*addr, "/")
	if strings.HasPrefix(base, ":") {
		base = "localhost" + base
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	body, _ := json.Marshal(req)
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Post(base+"/control", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "arch21 ctl: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))

	switch resp.StatusCode {
	case http.StatusOK, http.StatusMultiStatus:
		printCtlAck(out)
		if resp.StatusCode == http.StatusMultiStatus {
			fmt.Fprintln(os.Stderr, "arch21 ctl: at least one replica did not apply the retune")
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "arch21 ctl: HTTP %d: %s\n", resp.StatusCode, strings.TrimSpace(string(out)))
		os.Exit(1)
	}
}

// printCtlAck renders either response shape: a single engine's
// {"applied": {...}} or a front-end's {"replicas": [...]} fan-out.
func printCtlAck(body []byte) {
	var fanout struct {
		Replicas []struct {
			Backend string `json:"backend"`
			OK      bool   `json:"ok"`
			Ack     string `json:"ack"`
			Error   string `json:"error"`
		} `json:"replicas"`
	}
	if err := json.Unmarshal(body, &fanout); err == nil && len(fanout.Replicas) > 0 {
		for _, r := range fanout.Replicas {
			if r.OK {
				fmt.Printf("%-30s ok   %s\n", r.Backend, strings.TrimSpace(r.Ack))
			} else {
				fmt.Printf("%-30s FAIL %s\n", r.Backend, r.Error)
			}
		}
		return
	}
	var ack serve.ControlAck
	if err := json.Unmarshal(body, &ack); err == nil && len(ack.Applied) > 0 {
		for k, v := range ack.Applied {
			fmt.Printf("applied %s=%s\n", k, v)
		}
		return
	}
	fmt.Println(strings.TrimSpace(string(body)))
}
