// Command scaling explores the technology models: Dennard vs post-Dennard
// trajectories, the process-node library, and near-threshold operating
// points.
//
// Example:
//
//	scaling -gens 8
//	scaling -nodes
//	scaling -ntv 45nm
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tech"
)

func main() {
	gens := flag.Int("gens", 6, "generations to project")
	nodes := flag.Bool("nodes", false, "print the process-node library")
	ntv := flag.String("ntv", "", "print the NTV energy curve for a node (e.g. 45nm)")
	flag.Parse()

	switch {
	case *nodes:
		fmt.Println("node    year  vdd    vth    MTr/mm2  leak   FIT/Mb")
		for _, n := range tech.Nodes() {
			fmt.Printf("%-7s %d  %.2fV  %.2fV  %7.1f  %4.0f%%  %6.0f\n",
				n.Name, n.Year, n.Vdd, n.Vth, n.DensityMTrPerMM2,
				n.LeakageFrac*100, n.SoftErrorFITPerMb)
		}
	case *ntv != "":
		node, ok := tech.NodeByName(*ntv)
		if !ok {
			fmt.Fprintf(os.Stderr, "scaling: unknown node %q\n", *ntv)
			os.Exit(1)
		}
		m := tech.NewNTVModel(node, 100e-12)
		vMin, eMin := m.MinEnergyPoint()
		fmt.Printf("node %s: Vdd=%.2fV Vth=%.2fV\n", node.Name, node.Vdd, node.Vth)
		fmt.Printf("minimum energy point: %.3fV at %.3gJ/op (%.1fx below nominal)\n",
			vMin, eMin, m.EnergyPerOp(node.Vdd)/eMin)
		fmt.Println("vdd     E/op(pJ)  E/correct-op(pJ)  err-rate      rel-speed")
		for v := node.Vth + 0.04; v <= node.Vdd+0.001; v += 0.05 {
			fmt.Printf("%.2fV  %8.2f  %16.2f  %.2e  %9.3f\n",
				v, m.EnergyPerOp(v)/1e-12, m.EffectiveEnergyPerOp(v)/1e-12,
				m.ErrorRate(v), m.ThroughputRel(v))
		}
	default:
		den := tech.Trajectory(tech.Dennard, *gens)
		post := tech.Trajectory(tech.PostDennard, *gens)
		fmt.Println("gen  transistors  freq   dennard-P  post-dennard-P  dark")
		for g := 0; g <= *gens; g++ {
			fmt.Printf("%3d  %11.0f  %5.2f  %9.2f  %14.2f  %3.0f%%\n",
				g, den[g].Transistors, den[g].Freq, den[g].PowerChip,
				post[g].PowerChip, post[g].DarkFrac*100)
		}
		fmt.Printf("\npower gap at gen %d: %.1fx (the post-Dennard wall)\n",
			*gens, tech.PowerGapAtGen(*gens))
	}
}
