// Command tailsim explores tail latency at scale: fork-join fan-out over a
// configurable leaf latency distribution, with optional hedged requests.
//
// Example:
//
//	tailsim -fanout 100 -trials 50000 -hedge -hedgeq 0.95
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/stats"
)

func main() {
	fanout := flag.Int("fanout", 100, "number of leaves per request")
	trials := flag.Int("trials", 20000, "simulated requests")
	hedge := flag.Bool("hedge", false, "enable hedged requests")
	hedgeQ := flag.Float64("hedgeq", 0.95, "leaf quantile after which a hedge fires")
	dist := flag.String("dist", "prod", "leaf latency: prod|exp|lognormal|pareto")
	seed := flag.Uint64("seed", 2014, "rng seed")
	sweep := flag.Bool("sweep", false, "sweep fanout 1..1000 and print the 63% curve")
	flag.Parse()

	leaf := leafDist(*dist)
	if *sweep {
		fmt.Println("fanout  closed-form  simulated")
		for _, n := range []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000} {
			r := stats.NewRNG(*seed + uint64(n))
			res := cluster.SimulateForkJoin(cluster.ForkJoinConfig{
				Fanout: n, Leaf: leaf, Trials: *trials}, r)
			fmt.Printf("%6d  %10.4f  %9.4f\n", n,
				cluster.FractionAboveQuantile(n, 0.99), res.FracAboveLeafP99)
		}
		return
	}
	cfg := cluster.ForkJoinConfig{Fanout: *fanout, Leaf: leaf, Trials: *trials}
	if *hedge {
		cfg.Policy = cluster.Hedged
		cfg.HedgeQuantile = *hedgeQ
	}
	res := cluster.SimulateForkJoin(cfg, stats.NewRNG(*seed))
	fmt.Printf("leaf p99:            %.4gs\n", res.LeafP99)
	fmt.Printf("request mean:        %.4gs\n", res.Mean)
	fmt.Printf("request p50:         %.4gs\n", res.P50)
	fmt.Printf("request p99:         %.4gs\n", res.P99)
	fmt.Printf("frac above leaf p99: %.2f%%\n", res.FracAboveLeafP99*100)
	if *hedge {
		fmt.Printf("hedge extra load:    %.2f%%\n", res.ExtraLoad*100)
	}
}

func leafDist(name string) stats.Dist {
	switch name {
	case "prod":
		return cluster.DefaultLeafLatency()
	case "exp":
		return stats.Exponential{Rate: 100}
	case "lognormal":
		return stats.LogNormal{Mu: -5, Sigma: 0.7}
	case "pareto":
		return stats.Pareto{Xm: 0.001, Alpha: 2}
	default:
		fmt.Fprintf(os.Stderr, "tailsim: unknown distribution %q\n", name)
		os.Exit(2)
		return nil
	}
}
