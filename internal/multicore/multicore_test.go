package multicore

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/workload"
)

func TestSymmetricLimits(t *testing.T) {
	// f=1, r=1: perfect linear speedup.
	if s := SymmetricSpeedup(1, 256, 1); math.Abs(s-256) > 1e-9 {
		t.Fatalf("fully parallel symmetric = %v, want 256", s)
	}
	// f=0: speedup = perf(r) = sqrt(r).
	if s := SymmetricSpeedup(0, 256, 64); math.Abs(s-8) > 1e-9 {
		t.Fatalf("serial symmetric = %v, want 8", s)
	}
}

func TestHillMartyFigureShape(t *testing.T) {
	// The published result: for f=0.975, n=256, symmetric peaks at an
	// intermediate r (neither 1 nor n).
	bestR, bestS := OptimalSymmetricR(0.975, 256)
	if bestR <= 1 || bestR >= 256 {
		t.Fatalf("optimal r = %v, want interior optimum", bestR)
	}
	if bestS <= SymmetricSpeedup(0.975, 256, 1) {
		t.Fatal("interior optimum should beat r=1")
	}
	// Low f pushes optimum to big cores.
	lowR, _ := OptimalSymmetricR(0.5, 256)
	if lowR != 256 {
		t.Fatalf("f=0.5 optimal r = %v, want 256 (one big core)", lowR)
	}
}

func TestAsymmetricBeatsSymmetric(t *testing.T) {
	// Hill-Marty's headline: asymmetric >= symmetric at the same (f,n,r).
	for _, f := range []float64{0.5, 0.9, 0.975, 0.99} {
		for _, r := range []float64{4, 16, 64} {
			a := AsymmetricSpeedup(f, 256, r)
			s := SymmetricSpeedup(f, 256, r)
			if a < s-1e-9 {
				t.Fatalf("asymmetric %v < symmetric %v at f=%v r=%v", a, s, f, r)
			}
		}
	}
}

func TestDynamicBeatsAsymmetric(t *testing.T) {
	for _, f := range []float64{0.5, 0.9, 0.975, 0.99} {
		for _, r := range []float64{4, 16, 64} {
			dy := DynamicSpeedup(f, 256, r)
			a := AsymmetricSpeedup(f, 256, r)
			if dy < a-1e-9 {
				t.Fatalf("dynamic %v < asymmetric %v at f=%v r=%v", dy, a, f, r)
			}
		}
	}
}

func TestSpeedupPanics(t *testing.T) {
	cases := []func(){
		func() { SymmetricSpeedup(-0.1, 16, 1) },
		func() { SymmetricSpeedup(0.5, 16, 32) },
		func() { AsymmetricSpeedup(0.5, 0, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: all three models are bounded by n and by the dynamic model.
func TestQuickModelOrdering(t *testing.T) {
	f := func(fRaw, rRaw uint8) bool {
		fr := float64(fRaw) / 255
		n := 256.0
		r := 1 + float64(int(rRaw)%255)
		if r > n {
			r = n
		}
		s := SymmetricSpeedup(fr, n, r)
		a := AsymmetricSpeedup(fr, n, r)
		dy := DynamicSpeedup(fr, n, r)
		return s <= a+1e-9 && a <= dy+1e-9 && dy <= n+1e-9 && s > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommModelDegradesPerfPerWatt(t *testing.T) {
	c := CommModel{OpEnergy: 1e-12, CommEnergyPerHop: 2e-13, CommFrac: 0.2}
	if c.PerfPerWatt(1024) >= c.PerfPerWatt(4) {
		t.Fatal("perf/W should degrade as communication grows with cores")
	}
	// Without communication, perf/W is flat.
	flat := CommModel{OpEnergy: 1e-12}
	if math.Abs(flat.PerfPerWatt(1024)-flat.PerfPerWatt(4)) > 1e-9*flat.PerfPerWatt(4) {
		t.Fatal("no-comm perf/W should be flat")
	}
}

func TestEffectiveSpeedupPowerCapped(t *testing.T) {
	c := CommModel{OpEnergy: 1e-12, CommEnergyPerHop: 1e-13, CommFrac: 0.3}
	// Unlimited power: near-linear for f=1.
	uncapped := c.EffectiveSpeedup(1.0, 1024, 1e12, 1)
	if uncapped < 1000 {
		t.Fatalf("uncapped speedup = %v", uncapped)
	}
	// 100W budget with 1W nominal cores: far fewer than 1024 usable.
	capped := c.EffectiveSpeedup(1.0, 1024, 100, 1)
	if capped >= uncapped/2 {
		t.Fatalf("power cap should bite: capped=%v uncapped=%v", capped, uncapped)
	}
	if capped < 1 {
		t.Fatal("speedup below 1")
	}
}

func TestRunnerExecutesAllTasksOnce(t *testing.T) {
	r := stats.NewRNG(3)
	d := workload.GenerateDAG(workload.DAGConfig{
		Layers: 6, Width: 10, EdgeProb: 0.3,
		Work: stats.Uniform{Lo: 100, Hi: 1000}}, r)
	var ran atomic.Uint64
	st := Runner{Workers: 4, Steal: true}.Run(d, func(w float64) {
		ran.Add(1)
		SpinWork(w)
	})
	if st.TasksRun != uint64(len(d.Tasks)) {
		t.Fatalf("tasks run = %d, want %d", st.TasksRun, len(d.Tasks))
	}
	if ran.Load() != uint64(len(d.Tasks)) {
		t.Fatalf("grain invocations = %d, want %d", ran.Load(), len(d.Tasks))
	}
}

func TestRunnerRespectsDependencies(t *testing.T) {
	r := stats.NewRNG(5)
	d := workload.GenerateDAG(workload.DAGConfig{
		Layers: 5, Width: 8, EdgeProb: 0.5,
		Work: stats.Constant{V: 200}}, r)
	var order atomic.Int64
	started := make([]int64, len(d.Tasks))
	finished := make([]int64, len(d.Tasks))
	var mu sync.Mutex
	idx := 0
	// Identify tasks by execution order: grain is called once per task but
	// we don't know which; instead reimplement via per-task closure by
	// wrapping work values with unique increments. Simpler: use a custom
	// DAG where work value encodes task ID.
	for i := range d.Tasks {
		d.Tasks[i].Work = float64(i)
	}
	Runner{Workers: 8, Steal: true}.Run(d, func(w float64) {
		id := int(w)
		mu.Lock()
		started[id] = order.Add(1)
		idx++
		mu.Unlock()
		SpinWork(500)
		mu.Lock()
		finished[id] = order.Add(1)
		mu.Unlock()
	})
	for i, task := range d.Tasks {
		for _, dep := range task.Deps {
			if finished[dep] == 0 || started[i] == 0 {
				t.Fatalf("task %d or dep %d never ran", i, dep)
			}
			if finished[dep] > started[i] {
				t.Fatalf("task %d started before dep %d finished", i, dep)
			}
		}
	}
}

func TestRunnerSingleWorkerDeterministicCount(t *testing.T) {
	r := stats.NewRNG(7)
	d := workload.Fork(100, stats.Constant{V: 50}, r)
	st := Runner{Workers: 1, Steal: false}.Run(d, SpinWork)
	if st.TasksRun != 100 {
		t.Fatalf("tasks = %d", st.TasksRun)
	}
	if st.Steals != 0 {
		t.Fatal("single worker cannot steal")
	}
}

func TestRunnerEmptyDAG(t *testing.T) {
	st := Runner{Workers: 4, Steal: true}.Run(&workload.DAG{}, SpinWork)
	if st.TasksRun != 0 {
		t.Fatal("empty DAG should run nothing")
	}
}

func TestRunnerPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("0 workers did not panic")
		}
	}()
	Runner{Workers: 0}.Run(&workload.DAG{}, SpinWork)
}

func TestParallelSpeedupReal(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("needs >= 2 CPUs")
	}
	r := stats.NewRNG(11)
	d := workload.Fork(64, stats.Constant{V: 2e5}, r)
	s := MeasureSpeedup(d, 2, true, SpinWork)
	if s < 1.25 {
		t.Fatalf("2-worker speedup = %v, want >= 1.25", s)
	}
}

func TestStealingBalancesSkewedWork(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skip("needs >= 4 CPUs")
	}
	r := stats.NewRNG(13)
	// Heavily skewed fork: a few huge tasks among many small ones.
	d := workload.Fork(64, stats.Bimodal{
		Base:   stats.Constant{V: 1e4},
		Heavy:  stats.Constant{V: 1e6},
		PHeavy: 0.1}, r)
	// Compare executed-work balance, which is robust to wall-clock noise
	// from concurrent test packages: demand-driven stealing must spread
	// the heavy tasks at least as evenly as blind round-robin placement.
	var stealImb, staticImb float64
	for i := 0; i < 3; i++ {
		stealImb += Runner{Workers: 4, Steal: true}.Run(d, SpinWork).Imbalance()
		staticImb += Runner{Workers: 4, Steal: false}.Run(d, SpinWork).Imbalance()
	}
	if stealImb > staticImb*1.1 {
		t.Fatalf("stealing imbalance (%v) should not exceed static (%v)",
			stealImb/3, staticImb/3)
	}
}

func TestImbalanceMetric(t *testing.T) {
	if (RunStats{}).Imbalance() != 0 {
		t.Fatal("empty stats imbalance should be 0")
	}
	s := RunStats{WorkPerWorker: []float64{1, 1, 1, 1}}
	if s.Imbalance() != 1 {
		t.Fatalf("uniform imbalance = %v", s.Imbalance())
	}
	s = RunStats{WorkPerWorker: []float64{4, 0, 0, 0}}
	if s.Imbalance() != 4 {
		t.Fatalf("concentrated imbalance = %v", s.Imbalance())
	}
}
