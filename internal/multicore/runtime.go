package multicore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Runner executes a workload.DAG on real goroutine workers, measuring
// wall-clock speedup. Two scheduling modes support the ablation the paper's
// parallelism agenda motivates: work stealing (dynamic load balance) versus
// static partitioning.
type Runner struct {
	// Workers is the number of worker goroutines (>= 1).
	Workers int
	// Steal enables work stealing; when false, tasks are statically
	// assigned round-robin at readiness time.
	Steal bool
}

// RunStats reports one execution.
type RunStats struct {
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
	// Steals counts successful steals.
	Steals uint64
	// TasksRun counts executed tasks (must equal len(dag.Tasks)).
	TasksRun uint64
	// WorkPerWorker is the total task work each worker executed; its
	// max/mean ratio measures load balance independent of wall-clock
	// noise.
	WorkPerWorker []float64
}

// Imbalance returns max/mean of WorkPerWorker (1.0 = perfect balance; 0
// when no work ran).
func (s RunStats) Imbalance() float64 {
	if len(s.WorkPerWorker) == 0 {
		return 0
	}
	mean, maxW := 0.0, 0.0
	for _, w := range s.WorkPerWorker {
		mean += w
		if w > maxW {
			maxW = w
		}
	}
	mean /= float64(len(s.WorkPerWorker))
	if mean == 0 {
		return 0
	}
	return maxW / mean
}

// deque is a mutex-guarded work queue. Owners pop LIFO (cache locality),
// thieves steal FIFO (largest remaining subtrees first) — the classic
// work-stealing discipline.
type deque struct {
	mu    sync.Mutex
	tasks []int
}

func (d *deque) push(t int) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *deque) popBack() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.tasks)
	if n == 0 {
		return 0, false
	}
	t := d.tasks[n-1]
	d.tasks = d.tasks[:n-1]
	return t, true
}

func (d *deque) stealFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return 0, false
	}
	t := d.tasks[0]
	d.tasks = d.tasks[1:]
	return t, true
}

// Run executes the DAG; grain is invoked once per task with the task's
// work amount and must perform the actual computation. It returns execution
// statistics. Run panics if the DAG fails validation.
func (r Runner) Run(d *workload.DAG, grain func(work float64)) RunStats {
	if r.Workers < 1 {
		panic("multicore: need at least one worker")
	}
	if err := d.Validate(); err != nil {
		panic(fmt.Sprintf("multicore: %v", err))
	}
	n := len(d.Tasks)
	if n == 0 {
		return RunStats{}
	}

	// Dependency bookkeeping.
	remaining := make([]int32, n)
	dependents := make([][]int, n)
	for i, t := range d.Tasks {
		remaining[i] = int32(len(t.Deps))
		for _, dep := range t.Deps {
			dependents[dep] = append(dependents[dep], i)
		}
	}

	queues := make([]*deque, r.Workers)
	for i := range queues {
		queues[i] = &deque{}
	}
	var tasksDone atomic.Uint64
	var steals atomic.Uint64
	var rrCounter atomic.Uint64 // round-robin target for ready tasks

	enqueue := func(task, worker int) {
		if r.Steal {
			queues[worker].push(task)
		} else {
			queues[int(rrCounter.Add(1))%r.Workers].push(task)
		}
	}
	// Seed initial ready tasks round-robin in both modes.
	seedRR := 0
	for i := range d.Tasks {
		if remaining[i] == 0 {
			queues[seedRR%r.Workers].push(i)
			seedRR++
		}
	}

	start := time.Now()
	workPer := make([]float64, r.Workers)
	var wg sync.WaitGroup
	for w := 0; w < r.Workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(self)*2654435761 + 1)
			for tasksDone.Load() < uint64(n) {
				task, ok := queues[self].popBack()
				if !ok && r.Steal {
					// Try a few random victims.
					for attempt := 0; attempt < r.Workers; attempt++ {
						victim := rng.Intn(r.Workers)
						if victim == self {
							continue
						}
						if task, ok = queues[victim].stealFront(); ok {
							steals.Add(1)
							break
						}
					}
				}
				if !ok {
					runtime.Gosched()
					continue
				}
				grain(d.Tasks[task].Work)
				workPer[self] += d.Tasks[task].Work
				for _, dep := range dependents[task] {
					if atomic.AddInt32(&remaining[dep], -1) == 0 {
						enqueue(dep, self)
					}
				}
				tasksDone.Add(1)
			}
		}(w)
	}
	wg.Wait()
	return RunStats{
		Elapsed:       time.Since(start),
		Steals:        steals.Load(),
		TasksRun:      tasksDone.Load(),
		WorkPerWorker: workPer,
	}
}

// SpinWork is a grain function performing `work` iterations of integer
// arithmetic; the sink defeats dead-code elimination.
var spinSink atomic.Uint64

// SpinWork burns approximately `work` arithmetic operations of CPU time.
func SpinWork(work float64) {
	var x uint64 = 88172645463325252
	for i := 0; i < int(work); i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	spinSink.Add(x)
}

// MeasureSpeedup runs the DAG on 1 and on p workers and returns
// T1/Tp. The grain must be CPU-bound for the ratio to be meaningful.
func MeasureSpeedup(d *workload.DAG, p int, steal bool, grain func(float64)) float64 {
	t1 := Runner{Workers: 1, Steal: steal}.Run(d, grain).Elapsed
	tp := Runner{Workers: p, Steal: steal}.Run(d, grain).Elapsed
	if tp <= 0 {
		return 0
	}
	return float64(t1) / float64(tp)
}
