package multicore_test

import (
	"fmt"

	"repro/internal/multicore"
)

// Hill-Marty on a 256-BCE chip with 97.5% parallel code: the asymmetric
// organization beats the best symmetric one.
func ExampleAsymmetricSpeedup() {
	f, n := 0.975, 256.0
	_, sym := multicore.OptimalSymmetricR(f, n)
	asym := multicore.AsymmetricSpeedup(f, n, 64)
	fmt.Printf("symmetric best %.0fx, asymmetric(r=64) %.0fx\n", sym, asym)
	// Output: symmetric best 51x, asymmetric(r=64) 125x
}
