// Package multicore models and measures on-chip parallelism: the
// Hill-Marty "Amdahl's law in the multicore era" speedup models for
// symmetric, asymmetric and dynamic chips, an energy-extended variant that
// charges communication against the shared energy tables, and a real
// work-stealing parallel runtime used to measure (not just model) speedups
// on task DAGs.
//
// This is the substrate for the paper's "rethinking how we design for
// 1,000-way parallelism" (§1.2) and its Table 2 shift from ILP to
// energy-first parallelism.
package multicore

import (
	"math"
)

// Perf returns the Hill-Marty single-core performance of a core built from
// r base-core equivalents (BCEs): perf(r) = √r, the canonical diminishing-
// returns assumption.
func Perf(r float64) float64 { return math.Sqrt(r) }

// SymmetricSpeedup is the speedup of a chip of n BCEs organized as n/r
// cores of r BCEs each, on a workload with parallel fraction f.
func SymmetricSpeedup(f float64, n, r float64) float64 {
	checkFNR(f, n, r)
	serial := (1 - f) / Perf(r)
	parallel := f * r / (Perf(r) * n)
	return 1 / (serial + parallel)
}

// AsymmetricSpeedup is the speedup of one big core of r BCEs plus n-r base
// cores: serial code runs on the big core, parallel code on everything.
func AsymmetricSpeedup(f float64, n, r float64) float64 {
	checkFNR(f, n, r)
	serial := (1 - f) / Perf(r)
	parallel := f / (Perf(r) + (n - r))
	return 1 / (serial + parallel)
}

// DynamicSpeedup is the speedup of a chip that can fuse all n BCEs into one
// big core of r effective BCEs for serial code and split into n base cores
// for parallel code (the ideal reconfigurable chip).
func DynamicSpeedup(f float64, n, r float64) float64 {
	checkFNR(f, n, r)
	serial := (1 - f) / Perf(r)
	parallel := f / n
	return 1 / (serial + parallel)
}

func checkFNR(f, n, r float64) {
	if f < 0 || f > 1 {
		panic("multicore: parallel fraction outside [0,1]")
	}
	if n < 1 || r < 1 || r > n {
		panic("multicore: need 1 <= r <= n")
	}
}

// OptimalSymmetricR searches integer r in [1, n] maximizing symmetric
// speedup.
func OptimalSymmetricR(f float64, n float64) (bestR, bestSpeedup float64) {
	for r := 1.0; r <= n; r++ {
		if s := SymmetricSpeedup(f, n, r); s > bestSpeedup {
			bestSpeedup, bestR = s, r
		}
	}
	return bestR, bestSpeedup
}

// CommModel extends the Hill-Marty speedup with an energy model in which
// each unit of parallel work performs some communication whose energy grows
// with core count (mean mesh distance ∝ √cores) — the paper's point that
// "communication energy will outgrow computation energy".
type CommModel struct {
	// OpEnergy is compute energy per unit of work (joules).
	OpEnergy float64
	// CommEnergyPerHop is communication energy per unit of work per mesh
	// hop (joules).
	CommEnergyPerHop float64
	// CommFrac is the fraction of work units that communicate.
	CommFrac float64
}

// EnergyPerWork returns mean energy per unit of parallel work on a chip
// with cores cores: compute + communication over √cores mean hops.
func (c CommModel) EnergyPerWork(cores float64) float64 {
	meanHops := (2.0 / 3.0) * math.Sqrt(cores) // mesh mean distance
	return c.OpEnergy + c.CommFrac*c.CommEnergyPerHop*meanHops
}

// PerfPerWatt returns relative performance per watt at a given core count
// for a fully parallel workload: throughput ∝ cores, power ∝ cores ×
// energy-per-work — so perf/W degrades as communication grows.
func (c CommModel) PerfPerWatt(cores float64) float64 {
	return 1 / c.EnergyPerWork(cores)
}

// EffectiveSpeedup returns speedup under a fixed chip power budget
// powerBudget (watts) with each core consuming energy-per-work × workRate
// watts: beyond the budget, cores must be throttled (dark silicon), capping
// speedup.
func (c CommModel) EffectiveSpeedup(f float64, cores, powerBudget, corePowerNominal float64) float64 {
	checkFNR(f, cores, 1)
	perCore := corePowerNominal * c.EnergyPerWork(cores) / c.EnergyPerWork(1)
	usable := cores
	if perCore*cores > powerBudget {
		usable = powerBudget / perCore
		if usable < 1 {
			usable = 1
		}
	}
	serial := 1 - f
	parallel := f / usable
	return 1 / (serial + parallel)
}
