package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta", "22")
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "name") || !strings.Contains(out, "value") {
		t.Error("missing headers")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "22") {
		t.Error("missing cells")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, sep, 2 rows -> 5? title+header+sep+2 = 5
		if len(lines) != 5 {
			t.Errorf("unexpected line count %d: %q", len(lines), out)
		}
	}
}

func TestTableNote(t *testing.T) {
	tb := NewTable("T", "a")
	tb.Note = "hello"
	if !strings.Contains(tb.String(), "note: hello") {
		t.Error("missing note")
	}
}

func TestAddRowfFormats(t *testing.T) {
	tb := NewTable("T", "a", "b", "c", "d")
	tb.AddRowf("s", 3.14159, 42, 1e-9)
	row := tb.Rows[0]
	if row[0] != "s" {
		t.Errorf("string cell = %q", row[0])
	}
	if row[1] != "3.142" {
		t.Errorf("float cell = %q", row[1])
	}
	if row[2] != "42" {
		t.Errorf("int cell = %q", row[2])
	}
	if row[3] != "1e-09" {
		t.Errorf("small float cell = %q", row[3])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{5, "5"},
		{-5, "-5"},
		{3.14159, "3.142"},
		{1e10, "1e+10"},
		{0.0001, "0.0001"},
		{1234567, "1234567"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow("x,y", "say \"hi\"")
	csv := tb.CSV()
	if !strings.Contains(csv, "\"x,y\"") {
		t.Errorf("comma cell not quoted: %q", csv)
	}
	if !strings.Contains(csv, "\"say \"\"hi\"\"\"") {
		t.Errorf("quote cell not escaped: %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("csv header wrong: %q", csv)
	}
}

func TestFigureTableMergesX(t *testing.T) {
	f := NewFigure("F", "x", "y")
	s1 := f.AddSeries("one")
	s2 := f.AddSeries("two")
	s1.Add(1, 10)
	s1.Add(2, 20)
	s2.Add(2, 200)
	s2.Add(3, 300)
	tb := f.Table()
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (x=1,2,3)", len(tb.Rows))
	}
	// x=2 row has both values.
	found := false
	for _, r := range tb.Rows {
		if r[0] == "2" {
			found = true
			if r[1] != "20" || r[2] != "200" {
				t.Errorf("x=2 row = %v", r)
			}
		}
	}
	if !found {
		t.Error("x=2 row missing")
	}
}

func TestFigureString(t *testing.T) {
	f := NewFigure("Fig", "n", "speedup")
	s := f.AddSeries("sym")
	s.Add(1, 1)
	s.Add(16, 8)
	out := f.String()
	if !strings.Contains(out, "Fig") || !strings.Contains(out, "sym") {
		t.Errorf("figure render missing pieces: %q", out)
	}
}

func TestChart(t *testing.T) {
	f := NewFigure("C", "x", "y")
	s := f.AddSeries("s")
	for i := 0; i <= 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	out := f.Chart(40, 10)
	if !strings.Contains(out, "*") {
		t.Error("chart has no marks")
	}
	if !strings.Contains(out, "s") {
		t.Error("chart legend missing")
	}
	// Degenerate cases do not panic.
	if empty := NewFigure("E", "x", "y").Chart(40, 10); empty != "" {
		t.Error("empty figure should render empty chart")
	}
}

func TestChartConstantSeries(t *testing.T) {
	f := NewFigure("C", "x", "y")
	s := f.AddSeries("flat")
	s.Add(1, 5)
	s.Add(2, 5)
	if out := f.Chart(20, 5); out == "" {
		t.Error("constant series should still render")
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("T", "a", "b", "c")
	tb.AddRow("only-one")
	out := tb.String()
	if !strings.Contains(out, "only-one") {
		t.Error("short row lost")
	}
}
