package report

import (
	"math"
	"reflect"
	"testing"
)

func TestTableCodecRoundTrip(t *testing.T) {
	tb := NewTable("title with spaces", "a", "b", "c")
	tb.Note = "a note, with punctuation\nand a newline"
	tb.AddRow("1", "2", "3")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "z", "extra-cell")
	tb.AddRow()

	got, err := DecodeTable(tb.Encode())
	if err != nil {
		t.Fatalf("DecodeTable: %v", err)
	}
	if got.Title != tb.Title || got.Note != tb.Note {
		t.Fatalf("title/note mismatch: %+v vs %+v", got, tb)
	}
	if !reflect.DeepEqual(got.Headers, tb.Headers) {
		t.Fatalf("headers: got %v want %v", got.Headers, tb.Headers)
	}
	if len(got.Rows) != len(tb.Rows) {
		t.Fatalf("rows: got %d want %d", len(got.Rows), len(tb.Rows))
	}
	for i := range tb.Rows {
		if len(tb.Rows[i]) == 0 {
			if len(got.Rows[i]) != 0 {
				t.Fatalf("row %d: got %v want empty", i, got.Rows[i])
			}
			continue
		}
		if !reflect.DeepEqual(got.Rows[i], tb.Rows[i]) {
			t.Fatalf("row %d: got %v want %v", i, got.Rows[i], tb.Rows[i])
		}
	}
	if got.String() != tb.String() {
		t.Fatal("rendered output changed across the codec round trip")
	}
}

func TestEmptyTableRoundTrip(t *testing.T) {
	tb := &Table{}
	got, err := DecodeTable(tb.Encode())
	if err != nil {
		t.Fatalf("DecodeTable: %v", err)
	}
	if got.Title != "" || len(got.Headers) != 0 || len(got.Rows) != 0 {
		t.Fatalf("expected empty table, got %+v", got)
	}
}

func TestFigureCodecRoundTrip(t *testing.T) {
	f := NewFigure("scaling", "cores", "speedup")
	f.Note = "amdahl"
	s1 := f.AddSeries("f=0.9")
	s1.Add(1, 1)
	s1.Add(2, 1.81)
	s1.Add(0.5, math.Inf(1))
	s2 := f.AddSeries("f=0.99")
	s2.Add(1, 1)
	s2.Add(-3, 1e-300)
	f.AddSeries("empty")

	got, err := DecodeFigure(f.Encode())
	if err != nil {
		t.Fatalf("DecodeFigure: %v", err)
	}
	if got.Title != f.Title || got.XLabel != f.XLabel || got.YLabel != f.YLabel || got.Note != f.Note {
		t.Fatalf("metadata mismatch: %+v vs %+v", got, f)
	}
	if len(got.Series) != len(f.Series) {
		t.Fatalf("series: got %d want %d", len(got.Series), len(f.Series))
	}
	for i, s := range f.Series {
		if got.Series[i].Name != s.Name {
			t.Fatalf("series %d name: got %q want %q", i, got.Series[i].Name, s.Name)
		}
		if !reflect.DeepEqual(got.Series[i].Points, s.Points) && len(s.Points) > 0 {
			t.Fatalf("series %d points: got %v want %v", i, got.Series[i].Points, s.Points)
		}
	}
	if got.String() != f.String() {
		t.Fatal("rendered output changed across the codec round trip")
	}
}

func TestFloatBitExactness(t *testing.T) {
	f := NewFigure("edge", "x", "y")
	s := f.AddSeries("s")
	specials := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1),
		math.MaxFloat64, math.SmallestNonzeroFloat64, 1.0 / 3.0}
	for i, v := range specials {
		s.Add(float64(i), v)
	}
	got, err := DecodeFigure(f.Encode())
	if err != nil {
		t.Fatalf("DecodeFigure: %v", err)
	}
	for i, v := range specials {
		gv := got.Series[0].Points[i].Y
		if math.Float64bits(gv) != math.Float64bits(v) {
			t.Fatalf("point %d: got %x want %x", i, math.Float64bits(gv), math.Float64bits(v))
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeTable(nil); err == nil {
		t.Fatal("DecodeTable(nil) should fail")
	}
	if _, err := DecodeFigure([]byte{kindTable, 0}); err == nil {
		t.Fatal("DecodeFigure of a table payload should fail")
	}
	tb := NewTable("t", "h")
	tb.AddRow("v")
	enc := tb.Encode()
	for _, cut := range []int{1, 2, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeTable(enc[:cut]); err == nil {
			t.Fatalf("truncated payload (%d bytes) should fail", cut)
		}
	}
}

// A row's declared cell count must never drive allocation on its own: a
// ~20-byte payload declaring a multi-billion-cell row once OOMed the
// decoder (found by FuzzDecodeResult). The payload must fail cleanly —
// and fast — instead.
func TestDecodeTableHugeCellCountIsCorruptNotOOM(t *testing.T) {
	e := &encoder{}
	e.buf = append(e.buf, kindTable)
	e.str("t")   // title
	e.str("")    // note
	e.uvarint(1) // one header
	e.str("h")
	e.uvarint(1)       // one row...
	e.uvarint(1 << 40) // ...claiming 2^40 cells
	if _, err := DecodeTable(e.buf); err == nil {
		t.Fatal("huge declared cell count should be corrupt")
	}
}
