package report

// Binary codec for tables and figures so experiment outputs can live in
// byte-oriented stores (the serve subsystem's memoizing cache, files, the
// wire). The format is a compact varint encoding: strings are
// length-prefixed, floats are IEEE-754 bits written as fixed 8-byte
// little-endian words, and every collection is count-prefixed. There is no
// self-describing framing beyond a one-byte kind tag — both ends are this
// package.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Codec kind tags (first byte of every encoded payload).
const (
	kindTable  = 0x01
	kindFigure = 0x02
)

// ErrCorrupt reports a payload that cannot be decoded.
var ErrCorrupt = errors.New("report: corrupt payload")

type encoder struct {
	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.tmp[:], v)
	e.buf = append(e.buf, e.tmp[:n]...)
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) float(f float64) {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], math.Float64bits(f))
	e.buf = append(e.buf, w[:]...)
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	d.off += n
	return v, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.buf)-d.off) {
		return "", ErrCorrupt
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) float() (float64, error) {
	if len(d.buf)-d.off < 8 {
		return 0, ErrCorrupt
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v, nil
}

// Encode serializes the table.
func (t *Table) Encode() []byte {
	e := &encoder{buf: make([]byte, 0, 64)}
	e.buf = append(e.buf, kindTable)
	e.str(t.Title)
	e.str(t.Note)
	e.uvarint(uint64(len(t.Headers)))
	for _, h := range t.Headers {
		e.str(h)
	}
	e.uvarint(uint64(len(t.Rows)))
	for _, r := range t.Rows {
		e.uvarint(uint64(len(r)))
		for _, c := range r {
			e.str(c)
		}
	}
	return e.buf
}

// DecodeTable parses a payload produced by Table.Encode.
func DecodeTable(buf []byte) (*Table, error) {
	if len(buf) == 0 || buf[0] != kindTable {
		return nil, fmt.Errorf("%w: not a table payload", ErrCorrupt)
	}
	d := &decoder{buf: buf, off: 1}
	t := &Table{}
	var err error
	if t.Title, err = d.str(); err != nil {
		return nil, err
	}
	if t.Note, err = d.str(); err != nil {
		return nil, err
	}
	nh, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nh; i++ {
		h, err := d.str()
		if err != nil {
			return nil, err
		}
		t.Headers = append(t.Headers, h)
	}
	nr, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nr; i++ {
		nc, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		// Never pre-allocate on the declared count alone: every cell costs
		// at least one buffer byte, so a count past the remaining bytes is
		// corrupt and would otherwise turn a ~20-byte payload into a
		// multi-GB make() (found by FuzzDecodeResult).
		capHint := nc
		if rem := uint64(len(d.buf) - d.off); capHint > rem {
			capHint = rem
		}
		row := make([]string, 0, capHint)
		for j := uint64(0); j < nc; j++ {
			c, err := d.str()
			if err != nil {
				return nil, err
			}
			row = append(row, c)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Encode serializes the figure.
func (f *Figure) Encode() []byte {
	e := &encoder{buf: make([]byte, 0, 64)}
	e.buf = append(e.buf, kindFigure)
	e.str(f.Title)
	e.str(f.XLabel)
	e.str(f.YLabel)
	e.str(f.Note)
	e.uvarint(uint64(len(f.Series)))
	for _, s := range f.Series {
		e.str(s.Name)
		e.uvarint(uint64(len(s.Points)))
		for _, p := range s.Points {
			e.float(p.X)
			e.float(p.Y)
		}
	}
	return e.buf
}

// DecodeFigure parses a payload produced by Figure.Encode.
func DecodeFigure(buf []byte) (*Figure, error) {
	if len(buf) == 0 || buf[0] != kindFigure {
		return nil, fmt.Errorf("%w: not a figure payload", ErrCorrupt)
	}
	d := &decoder{buf: buf, off: 1}
	f := &Figure{}
	var err error
	if f.Title, err = d.str(); err != nil {
		return nil, err
	}
	if f.XLabel, err = d.str(); err != nil {
		return nil, err
	}
	if f.YLabel, err = d.str(); err != nil {
		return nil, err
	}
	if f.Note, err = d.str(); err != nil {
		return nil, err
	}
	ns, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ns; i++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		s := f.AddSeries(name)
		np, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < np; j++ {
			x, err := d.float()
			if err != nil {
				return nil, err
			}
			y, err := d.float()
			if err != nil {
				return nil, err
			}
			s.Add(x, y)
		}
	}
	return f, nil
}
