// Package report renders experiment outputs as aligned ASCII tables,
// multi-series figures (printed as columnar data plus an optional ASCII
// chart), and CSV. Every arch21 experiment produces a report.Table or
// report.Figure so that cmd/arch21, the examples, and the benchmark harness
// all share one presentation path.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of string cells with a header row.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. Cells beyond len(Headers) are kept; short rows are
// padded when rendering.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row formatting each cell with %v.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes in scientific notation, others with 4 significant digits.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 1e7 || av < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case v == float64(int64(v)) && av < 1e7:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

func (t *Table) widths() []int {
	n := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	for i, h := range t.Headers {
		if len(h) > w[i] {
			w[i] = len(h)
		}
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// String renders the table as aligned ASCII.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	w := t.widths()
	line := func(cells []string) {
		for i := 0; i < len(w); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(w))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Note != "" {
		b.WriteString("note: " + t.Note + "\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values with quoted cells where
// needed.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Point is one (x, y) observation in a figure series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a titled set of series sharing x/y axes. It renders as a
// columnar data table (x followed by one column per series) and can also
// render a coarse ASCII chart.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Note   string
	Series []*Series
}

// NewFigure creates a figure with axis labels.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries registers a new named series and returns it for appending.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Add appends a point to the series.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Table converts the figure to a columnar table, merging series on exact x
// values in first-series order (then any x unique to later series, in
// encounter order).
func (f *Figure) Table() *Table {
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	t := NewTable(f.Title, headers...)
	t.Note = f.Note

	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for _, x := range xs {
		row := []string{FormatFloat(x)}
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = FormatFloat(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t
}

// String renders the figure's data table.
func (f *Figure) String() string {
	return f.Table().String()
}

// CSV renders the figure's data table as CSV.
func (f *Figure) CSV() string {
	return f.Table().CSV()
}

// Chart renders a coarse ASCII scatter of the first series (width x height
// characters), useful for eyeballing shapes in terminal output.
func (f *Figure) Chart(width, height int) string {
	if len(f.Series) == 0 || len(f.Series[0].Points) == 0 || width < 2 || height < 2 {
		return ""
	}
	minX, maxX := f.Series[0].Points[0].X, f.Series[0].Points[0].X
	minY, maxY := f.Series[0].Points[0].Y, f.Series[0].Points[0].Y
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "*o+x#@"
	for si, s := range f.Series {
		m := marks[si%len(marks)]
		for _, p := range s.Points {
			cx := int((p.X - minX) / (maxX - minX) * float64(width-1))
			cy := int((p.Y - minY) / (maxY - minY) * float64(height-1))
			grid[height-1-cy][cx] = m
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%s vs %s]\n", f.Title, f.YLabel, f.XLabel)
	for _, row := range grid {
		b.WriteString("|" + string(row) + "\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c = %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}
