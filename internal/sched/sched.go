// Package sched implements heterogeneous task scheduling onto mixes of big
// cores, little cores, and accelerators under power caps — the paper's
// "heterogeneous clusters, with simple computational cores and custom,
// high-performance functional units that work together in concert" (§2.2).
//
// It provides three policies (performance-greedy, energy-aware, round-robin
// baseline) over an event-driven executor, and reports makespan, energy,
// and deadline misses.
package sched

import (
	"fmt"
	"math"
)

// Proc is one execution unit of a heterogeneous chip.
type Proc struct {
	// Name identifies the unit.
	Name string
	// Rate maps kernel name to ops/s on this unit. Kernels absent from the
	// map run at DefaultRate (0 = cannot run here).
	Rate map[string]float64
	// DefaultRate is ops/s for unlisted kernels.
	DefaultRate float64
	// ActivePower is watts while busy.
	ActivePower float64
	// IdlePower is watts while idle.
	IdlePower float64
}

// RateFor returns this unit's throughput for the kernel (0 if unsupported).
func (p Proc) RateFor(kernel string) float64 {
	if r, ok := p.Rate[kernel]; ok {
		return r
	}
	return p.DefaultRate
}

// Task is one schedulable unit of work.
type Task struct {
	// Kernel selects which rates apply.
	Kernel string
	// Ops is the work amount.
	Ops float64
	// Deadline is the absolute completion deadline in seconds (0 = none).
	Deadline float64
}

// Policy selects a scheduling strategy.
type Policy int

// The implemented policies.
const (
	// GreedyPerf assigns each task to the unit minimizing its finish time.
	GreedyPerf Policy = iota
	// EnergyAware assigns each task to the unit minimizing energy among
	// those that can still meet the task's deadline (falling back to
	// fastest when none can).
	EnergyAware
	// RoundRobin is the locality/heterogeneity-oblivious baseline.
	RoundRobin
)

func (p Policy) String() string {
	switch p {
	case GreedyPerf:
		return "greedy-perf"
	case EnergyAware:
		return "energy-aware"
	default:
		return "round-robin"
	}
}

// Result reports one scheduling run.
type Result struct {
	// Makespan is when the last task finishes.
	Makespan float64
	// EnergyJ is total energy: active execution plus idle power of every
	// unit until the makespan.
	EnergyJ float64
	// Missed counts tasks finishing after their deadline.
	Missed int
	// PerProcBusy maps unit name to busy seconds.
	PerProcBusy map[string]float64
}

// Schedule runs the task list (released at time 0, processed in order)
// against the units under the policy.
func Schedule(tasks []Task, procs []Proc, policy Policy) Result {
	if len(procs) == 0 {
		panic("sched: no processors")
	}
	free := make([]float64, len(procs)) // next-free time per proc
	busy := make([]float64, len(procs))
	energy := 0.0
	res := Result{PerProcBusy: make(map[string]float64)}
	rr := 0

	for _, t := range tasks {
		best := -1
		bestKey := math.Inf(1)
		switch policy {
		case RoundRobin:
			// Next unit that can run the kernel at all.
			for k := 0; k < len(procs); k++ {
				cand := (rr + k) % len(procs)
				if procs[cand].RateFor(t.Kernel) > 0 {
					best = cand
					rr = cand + 1
					break
				}
			}
		case GreedyPerf:
			for i, p := range procs {
				rate := p.RateFor(t.Kernel)
				if rate <= 0 {
					continue
				}
				finish := free[i] + t.Ops/rate
				if finish < bestKey {
					bestKey, best = finish, i
				}
			}
		case EnergyAware:
			// Minimize energy among deadline-feasible units.
			bestFeasible, bestFeasibleE := -1, math.Inf(1)
			bestFinish, bestFinishT := -1, math.Inf(1)
			for i, p := range procs {
				rate := p.RateFor(t.Kernel)
				if rate <= 0 {
					continue
				}
				dur := t.Ops / rate
				finish := free[i] + dur
				e := dur * p.ActivePower
				if finish < bestFinishT {
					bestFinishT, bestFinish = finish, i
				}
				if (t.Deadline == 0 || finish <= t.Deadline) && e < bestFeasibleE {
					bestFeasibleE, bestFeasible = e, i
				}
			}
			if bestFeasible >= 0 {
				best = bestFeasible
			} else {
				best = bestFinish
			}
		}
		if best < 0 {
			panic(fmt.Sprintf("sched: no unit can run kernel %q", t.Kernel))
		}
		p := procs[best]
		dur := t.Ops / p.RateFor(t.Kernel)
		start := free[best]
		finish := start + dur
		free[best] = finish
		busy[best] += dur
		energy += dur * p.ActivePower
		if t.Deadline > 0 && finish > t.Deadline {
			res.Missed++
		}
	}
	for i, f := range free {
		if f > res.Makespan {
			res.Makespan = f
		}
		res.PerProcBusy[procs[i].Name] += busy[i]
	}
	// Idle energy until makespan.
	for i, p := range procs {
		idle := res.Makespan - busy[i]
		if idle > 0 {
			energy += idle * p.IdlePower
		}
	}
	res.EnergyJ = energy
	return res
}

// StandardHeteroChip returns a representative iPad-class chip (the paper's
// example of half the die spent on specialized units): two big cores, four
// little cores, and conv/crypto accelerators.
func StandardHeteroChip() []Proc {
	return []Proc{
		{Name: "big0", DefaultRate: 4e9, ActivePower: 2.0, IdlePower: 0.05},
		{Name: "big1", DefaultRate: 4e9, ActivePower: 2.0, IdlePower: 0.05},
		{Name: "lil0", DefaultRate: 1e9, ActivePower: 0.3, IdlePower: 0.01},
		{Name: "lil1", DefaultRate: 1e9, ActivePower: 0.3, IdlePower: 0.01},
		{Name: "lil2", DefaultRate: 1e9, ActivePower: 0.3, IdlePower: 0.01},
		{Name: "lil3", DefaultRate: 1e9, ActivePower: 0.3, IdlePower: 0.01},
		{Name: "conv-npu", Rate: map[string]float64{"conv": 4e10}, ActivePower: 1.0, IdlePower: 0.02},
		{Name: "crypto-eng", Rate: map[string]float64{"crypto": 2e10}, ActivePower: 0.5, IdlePower: 0.01},
	}
}
