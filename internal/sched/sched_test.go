package sched

import (
	"testing"
	"testing/quick"
)

func twoProcChip() []Proc {
	return []Proc{
		{Name: "big", DefaultRate: 4e9, ActivePower: 2.0, IdlePower: 0.05},
		{Name: "lil", DefaultRate: 1e9, ActivePower: 0.3, IdlePower: 0.01},
	}
}

func TestGreedyPerfUsesFastUnit(t *testing.T) {
	tasks := []Task{{Kernel: "any", Ops: 4e9}}
	r := Schedule(tasks, twoProcChip(), GreedyPerf)
	if r.PerProcBusy["big"] == 0 {
		t.Fatal("greedy-perf should use the big core for a lone task")
	}
	if r.Makespan != 1.0 {
		t.Fatalf("makespan = %v, want 1.0", r.Makespan)
	}
}

func TestEnergyAwarePrefersLittleWhenSlack(t *testing.T) {
	// Deadline is loose: the little core (4s, 1.2J) beats big (1s, 2J).
	tasks := []Task{{Kernel: "any", Ops: 4e9, Deadline: 10}}
	r := Schedule(tasks, twoProcChip(), EnergyAware)
	if r.PerProcBusy["lil"] == 0 {
		t.Fatal("energy-aware should pick the little core with slack")
	}
	if r.Missed != 0 {
		t.Fatal("deadline should be met")
	}
}

func TestEnergyAwareFallsBackUnderTightDeadline(t *testing.T) {
	tasks := []Task{{Kernel: "any", Ops: 4e9, Deadline: 1.5}}
	r := Schedule(tasks, twoProcChip(), EnergyAware)
	if r.PerProcBusy["big"] == 0 {
		t.Fatal("tight deadline should force the big core")
	}
	if r.Missed != 0 {
		t.Fatal("big core meets the deadline")
	}
}

func TestEnergyAwareBeatsGreedyOnEnergy(t *testing.T) {
	var tasks []Task
	for i := 0; i < 20; i++ {
		tasks = append(tasks, Task{Kernel: "any", Ops: 1e9, Deadline: 100})
	}
	greedy := Schedule(tasks, twoProcChip(), GreedyPerf)
	ea := Schedule(tasks, twoProcChip(), EnergyAware)
	if ea.EnergyJ >= greedy.EnergyJ {
		t.Fatalf("energy-aware %vJ should beat greedy %vJ", ea.EnergyJ, greedy.EnergyJ)
	}
	if ea.Missed > 0 {
		t.Fatal("energy-aware missed deadlines it had slack for")
	}
}

func TestAcceleratorAttractsItsKernel(t *testing.T) {
	chip := StandardHeteroChip()
	tasks := []Task{
		{Kernel: "conv", Ops: 4e10},
		{Kernel: "crypto", Ops: 2e10},
	}
	r := Schedule(tasks, chip, GreedyPerf)
	if r.PerProcBusy["conv-npu"] == 0 {
		t.Fatal("conv task should land on the NPU")
	}
	if r.PerProcBusy["crypto-eng"] == 0 {
		t.Fatal("crypto task should land on the crypto engine")
	}
	if r.Makespan > 1.01 {
		t.Fatalf("accelerated makespan = %v, want ~1s", r.Makespan)
	}
}

func TestRoundRobinSkipsIncapableUnits(t *testing.T) {
	chip := []Proc{
		{Name: "gp", DefaultRate: 1e9, ActivePower: 1},
		{Name: "npu", Rate: map[string]float64{"conv": 1e10}, ActivePower: 1},
	}
	tasks := []Task{
		{Kernel: "sort", Ops: 1e9},
		{Kernel: "sort", Ops: 1e9},
	}
	r := Schedule(tasks, chip, RoundRobin)
	if r.PerProcBusy["npu"] != 0 {
		t.Fatal("round-robin must not send sort to the NPU")
	}
	if r.PerProcBusy["gp"] == 0 {
		t.Fatal("gp should have run both tasks")
	}
}

func TestUnrunnableKernelPanics(t *testing.T) {
	chip := []Proc{{Name: "npu", Rate: map[string]float64{"conv": 1e10}}}
	defer func() {
		if recover() == nil {
			t.Fatal("unrunnable kernel did not panic")
		}
	}()
	Schedule([]Task{{Kernel: "sort", Ops: 1}}, chip, GreedyPerf)
}

func TestNoProcsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no procs did not panic")
		}
	}()
	Schedule(nil, nil, GreedyPerf)
}

func TestDeadlineMissCounted(t *testing.T) {
	chip := []Proc{{Name: "slow", DefaultRate: 1e6, ActivePower: 1}}
	r := Schedule([]Task{{Kernel: "any", Ops: 1e9, Deadline: 1}}, chip, GreedyPerf)
	if r.Missed != 1 {
		t.Fatalf("missed = %d, want 1", r.Missed)
	}
}

// Property: makespan is at least the largest single-task duration on the
// fastest capable unit, and energy is positive when work exists.
func TestQuickScheduleSanity(t *testing.T) {
	chip := StandardHeteroChip()
	f := func(opsRaw []uint16) bool {
		if len(opsRaw) == 0 {
			return true
		}
		if len(opsRaw) > 30 {
			opsRaw = opsRaw[:30]
		}
		var tasks []Task
		for _, o := range opsRaw {
			tasks = append(tasks, Task{Kernel: "any", Ops: float64(o) + 1})
		}
		for _, pol := range []Policy{GreedyPerf, EnergyAware, RoundRobin} {
			r := Schedule(tasks, chip, pol)
			if r.Makespan <= 0 || r.EnergyJ <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyStrings(t *testing.T) {
	if GreedyPerf.String() != "greedy-perf" || EnergyAware.String() != "energy-aware" ||
		RoundRobin.String() != "round-robin" {
		t.Fatal("policy strings wrong")
	}
}
