// Package energy provides the shared energy-accounting substrate of the
// arch21 toolkit: pJ-level per-operation and per-access energy tables
// (calibrated to the 45 nm figures of Keckler's Micro 2011 keynote, which
// the paper cites), communication energy models spanning on-chip wires to
// radios, the paper's sensor→datacenter efficiency ladder, and composable
// energy meters.
//
// Having one table shared by every experiment keeps cross-experiment
// comparisons consistent: the specialization factor of E4, the operand-fetch
// gap of E5, and the sensor compute-vs-communicate tradeoff of E11 all read
// the same constants.
package energy

import (
	"repro/internal/tech"
	"repro/internal/units"
)

// Table holds per-event energy costs for one process node. All per-access
// values are for one 64-bit word unless noted.
type Table struct {
	// Node is the process generation the table describes.
	Node tech.Node

	// IntOp is a 64-bit integer ALU operation (datapath only).
	IntOp units.Energy
	// FPOp is a 64-bit floating-point fused multiply-add (datapath only).
	FPOp units.Energy
	// InstrOverhead is the general-purpose pipeline's per-instruction
	// overhead: fetch, decode, rename, schedule, commit. This — not the
	// datapath — is what specialization strips away.
	InstrOverhead units.Energy
	// RegFile is one 64-bit register-file read or write.
	RegFile units.Energy

	// SRAM reads per 64-bit word, by array capacity.
	SRAM8KB   units.Energy
	SRAM32KB  units.Energy
	SRAM256KB units.Energy
	SRAM1MB   units.Energy
	// DRAM is one 64-bit off-chip DRAM access (activate+IO amortized).
	DRAM units.Energy

	// WirePerBitMM is on-chip wire transport energy per bit per millimetre.
	WirePerBitMM units.Energy
	// ChipToChip is board-level interconnect energy per bit.
	ChipToChip units.Energy
	// PhotonicPerBit is silicon-photonic link energy per bit (largely
	// distance-independent once the laser/modulator is paid).
	PhotonicPerBit units.Energy
	// TSVPerBit is a 3D through-silicon-via hop per bit.
	TSVPerBit units.Energy
	// NetworkPerBit is datacenter-network transport per bit (NIC+switches).
	NetworkPerBit units.Energy
	// RadioPerBit is a low-power wireless (BLE/Zigbee-class) radio per bit,
	// the sensor uplink of E11.
	RadioPerBit units.Energy
}

// Table45 returns the reference table at 45 nm. Sources are the widely
// published figures from Keckler (Micro 2011 keynote) and Horowitz (ISSCC
// 2014): a 64-bit FMA costs tens of pJ while a DRAM operand fetch costs
// nJ-class energy — the 1–2 orders-of-magnitude gap the paper quotes.
func Table45() Table {
	return Table{
		Node:           tech.Node45(),
		IntOp:          1 * units.Picojoule,
		FPOp:           50 * units.Picojoule,
		InstrOverhead:  125 * units.Picojoule,
		RegFile:        5 * units.Picojoule,
		SRAM8KB:        10 * units.Picojoule,
		SRAM32KB:       20 * units.Picojoule,
		SRAM256KB:      50 * units.Picojoule,
		SRAM1MB:        100 * units.Picojoule,
		DRAM:           2000 * units.Picojoule,
		WirePerBitMM:   0.2 * units.Picojoule,
		ChipToChip:     10 * units.Picojoule,
		PhotonicPerBit: 1 * units.Picojoule,
		TSVPerBit:      0.05 * units.Picojoule,
		NetworkPerBit:  50 * units.Picojoule,
		RadioPerBit:    50 * units.Nanojoule,
	}
}

// ForNode scales the 45 nm table's switching energies to another node via
// the C·V² relation. Off-chip costs (DRAM interface, chip-to-chip, network,
// radio) scale much more slowly; we apply half the logic scaling to them,
// which is the first-order reason communication is "more expensive than
// computation" in the paper's Table 1 — logic rides scaling, wires and pads
// do not.
func ForNode(n tech.Node) Table {
	base := Table45()
	logic := n.DynamicEnergyRel(n.Vdd) // relative to 45nm
	comm := (1 + logic) / 2            // communication scales half as fast
	t := Table{
		Node:           n,
		IntOp:          base.IntOp * units.Energy(logic),
		FPOp:           base.FPOp * units.Energy(logic),
		InstrOverhead:  base.InstrOverhead * units.Energy(logic),
		RegFile:        base.RegFile * units.Energy(logic),
		SRAM8KB:        base.SRAM8KB * units.Energy(logic),
		SRAM32KB:       base.SRAM32KB * units.Energy(logic),
		SRAM256KB:      base.SRAM256KB * units.Energy(logic),
		SRAM1MB:        base.SRAM1MB * units.Energy(logic),
		DRAM:           base.DRAM * units.Energy(comm),
		WirePerBitMM:   base.WirePerBitMM * units.Energy(logic),
		ChipToChip:     base.ChipToChip * units.Energy(comm),
		PhotonicPerBit: base.PhotonicPerBit, // laser floor does not scale
		TSVPerBit:      base.TSVPerBit * units.Energy(logic),
		NetworkPerBit:  base.NetworkPerBit * units.Energy(comm),
		RadioPerBit:    base.RadioPerBit, // radiated energy is physics-bound
	}
	return t
}

// GPInstruction returns the full cost of one general-purpose instruction
// executing the given datapath op: overhead + two register reads + one
// write + the op itself.
func (t Table) GPInstruction(op units.Energy) units.Energy {
	return t.InstrOverhead + 3*t.RegFile + op
}

// AccelOp returns the cost of the same datapath op on a hardwired
// accelerator: the op plus a small control margin (5% of the op),
// reflecting stripped fetch/decode/scheduling. The GPInstruction/AccelOp
// ratio is the specialization factor of E4.
func (t Table) AccelOp(op units.Energy) units.Energy {
	return op + op/20
}

// WireEnergy returns on-chip transport energy for bits over mm of wire.
func (t Table) WireEnergy(bits float64, mm float64) units.Energy {
	return t.WirePerBitMM * units.Energy(bits*mm)
}

// OperandFetch returns the energy to fetch one 64-bit operand from the
// named level: "reg", "l1" (32KB), "l2" (256KB), "l3" (1MB slice), "dram".
func (t Table) OperandFetch(level string) units.Energy {
	switch level {
	case "reg":
		return t.RegFile
	case "l1":
		return t.SRAM32KB
	case "l2":
		return t.SRAM256KB
	case "l3":
		return t.SRAM1MB
	case "dram":
		return t.DRAM
	default:
		panic("energy: unknown operand level " + level)
	}
}
