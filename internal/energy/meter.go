package energy

import (
	"sort"

	"repro/internal/report"
	"repro/internal/units"
)

// Meter accumulates energy by named component, giving experiments a uniform
// way to answer "where did the joules go". The zero value is ready to use.
type Meter struct {
	components map[string]units.Energy
}

// Add charges e joules to the named component. Negative charges are allowed
// (credits), matching how models sometimes refund avoided work.
func (m *Meter) Add(component string, e units.Energy) {
	if m.components == nil {
		m.components = make(map[string]units.Energy)
	}
	m.components[component] += e
}

// AddN charges n occurrences of per-event energy e to the component.
func (m *Meter) AddN(component string, n float64, e units.Energy) {
	m.Add(component, units.Energy(n)*e)
}

// Component returns the accumulated energy for one component.
func (m *Meter) Component(name string) units.Energy {
	return m.components[name]
}

// Total returns the sum across components.
func (m *Meter) Total() units.Energy {
	var sum units.Energy
	for _, e := range m.components {
		sum += e
	}
	return sum
}

// Merge folds other's components into m.
func (m *Meter) Merge(other *Meter) {
	for k, v := range other.components {
		m.Add(k, v)
	}
}

// Components returns the component names in sorted order.
func (m *Meter) Components() []string {
	names := make([]string, 0, len(m.components))
	for k := range m.components {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Report renders the meter as a table of components, absolute energy, and
// share of total.
func (m *Meter) Report(title string) *report.Table {
	t := report.NewTable(title, "component", "energy", "share")
	total := m.Total()
	for _, name := range m.Components() {
		e := m.components[name]
		share := 0.0
		if total != 0 {
			share = float64(e) / float64(total)
		}
		t.AddRow(name, e.String(), report.FormatFloat(share*100)+"%")
	}
	t.AddRow("TOTAL", total.String(), "100%")
	return t
}
