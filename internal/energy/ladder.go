package energy

import (
	"repro/internal/units"
)

// Platform is one rung of the paper's efficiency ladder (§2.2 "Energy
// Across the Layers"): a performance goal inside a power envelope.
type Platform struct {
	// Name identifies the rung: sensor, portable, departmental, datacenter.
	Name string
	// TargetOpsPerSec is the end-of-decade performance goal.
	TargetOpsPerSec units.Ops
	// PowerBudget is the envelope the goal must fit in.
	PowerBudget units.Power
	// TodayOpsPerWatt is the toolkit's model of 2012-era delivered
	// efficiency for the platform class. The paper pegs portable devices at
	// ~10 giga-operations/watt; servers and datacenters deliver far less
	// general-purpose work per watt once infrastructure overheads (memory,
	// network, cooling, PUE) are charged.
	TodayOpsPerWatt float64
}

// Ladder returns the paper's four target platforms:
// a giga-op sensor at 10 mW, a tera-op portable at 10 W, a peta-op
// departmental server at 10 kW, and an exa-op datacenter at 10 MW —
// all demanding 100 GOPS/W.
func Ladder() []Platform {
	return []Platform{
		{"sensor", units.GigaOp, 10 * units.Milliwatt, 1e9},
		{"portable", units.TeraOp, 10 * units.Watt, 1e10},
		{"departmental", units.PetaOp, 10 * units.Kilowatt, 5e8},
		{"datacenter", units.ExaOp, 10 * units.Megawatt, 3e8},
	}
}

// TargetOpsPerWatt returns the efficiency the rung's goal demands.
func (p Platform) TargetOpsPerWatt() float64 {
	return float64(p.TargetOpsPerSec) / float64(p.PowerBudget)
}

// Gap returns the improvement factor required over today's efficiency.
func (p Platform) Gap() float64 {
	return p.TargetOpsPerWatt() / p.TodayOpsPerWatt
}

// AchievableOpsPerSec returns the throughput today's efficiency delivers in
// the rung's power budget.
func (p Platform) AchievableOpsPerSec() units.Ops {
	return units.Ops(p.TodayOpsPerWatt * float64(p.PowerBudget))
}
