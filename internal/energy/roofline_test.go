package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestRooflineShape(t *testing.T) {
	r := StandardRoofline()
	ridge := r.RidgeIntensity()
	if ridge <= 0 || math.IsInf(ridge, 1) {
		t.Fatalf("ridge = %v", ridge)
	}
	// Below the ridge: bandwidth-limited, linear in intensity.
	low := r.AttainableOps(ridge / 10)
	if math.Abs(low-r.MemBytesPerSec*ridge/10) > 1e-6*low {
		t.Fatalf("below-ridge throughput = %v", low)
	}
	// Above the ridge: flat at peak.
	if r.AttainableOps(ridge*10) != r.PeakOpsPerSec {
		t.Fatal("above-ridge should hit peak")
	}
	if r.AttainableOps(0) != 0 {
		t.Fatal("zero intensity should be zero")
	}
}

func TestRooflineClassifiesKernels(t *testing.T) {
	r := StandardRoofline()
	// SpMV (~0.15 op/byte) is memory bound; large GEMM is compute bound.
	if !r.MemoryBound(workload.SpMV.Intensity(10000)) {
		t.Fatal("SpMV should be memory bound")
	}
	if r.MemoryBound(workload.GEMM.Intensity(2048)) {
		t.Fatal("large GEMM should be compute bound")
	}
}

func TestEnergyPerOpDivergesAtLowIntensity(t *testing.T) {
	r := StandardRoofline()
	e1 := r.EnergyPerOp(10)   // compute-dominated
	e2 := r.EnergyPerOp(0.01) // memory-dominated
	if e2 < 100*e1 {
		t.Fatalf("low-intensity energy %v should dwarf high-intensity %v", e2, e1)
	}
	if !math.IsInf(r.EnergyPerOp(0), 1) {
		t.Fatal("zero intensity energy should be infinite")
	}
}

func TestEnergyBalanceIntensity(t *testing.T) {
	r := StandardRoofline()
	bal := r.EnergyBalanceIntensity()
	// At the balance point the two terms are equal.
	e := r.EnergyPerOp(bal)
	if math.Abs(e-2*r.OpEnergy) > 1e-9*e {
		t.Fatalf("balance point energy = %v, want 2x op energy", e)
	}
	// The balance point sits well above the DRAM-fed intensity of typical
	// streaming kernels: the energy wall is real.
	if bal < 1 {
		t.Fatalf("balance intensity = %v ops/byte, expected > 1", bal)
	}
}

// Property: attainable throughput is monotone in intensity and bounded by
// the peak; energy per op is antitone.
func TestQuickRooflineMonotone(t *testing.T) {
	r := StandardRoofline()
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw)/100 + 0.01
		b := float64(bRaw)/100 + 0.01
		if a > b {
			a, b = b, a
		}
		if r.AttainableOps(a) > r.AttainableOps(b)+1e-9 {
			return false
		}
		if r.AttainableOps(b) > r.PeakOpsPerSec {
			return false
		}
		return r.EnergyPerOp(a) >= r.EnergyPerOp(b)-1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
