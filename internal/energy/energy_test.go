package energy

import (
	"math"
	"strings"
	"testing"

	"repro/internal/tech"
	"repro/internal/units"
)

func TestTable45OperandGap(t *testing.T) {
	tb := Table45()
	// Paper/Keckler claim: fetching FP operands costs 1-2 orders of
	// magnitude more than the FP op. Three operands from DRAM:
	dramFetch := 3 * tb.DRAM
	ratio := float64(dramFetch) / float64(tb.FPOp)
	if ratio < 10 || ratio > 1000 {
		t.Fatalf("DRAM operand/op ratio = %v, want 1-2 orders of magnitude", ratio)
	}
	// Even from a large on-chip SRAM it is roughly an order.
	sramFetch := 3 * tb.SRAM1MB
	if r := float64(sramFetch) / float64(tb.FPOp); r < 3 {
		t.Fatalf("SRAM operand/op ratio = %v, want > 3", r)
	}
}

func TestMemoryHierarchyMonotone(t *testing.T) {
	tb := Table45()
	seq := []units.Energy{tb.RegFile, tb.SRAM8KB, tb.SRAM32KB, tb.SRAM256KB, tb.SRAM1MB, tb.DRAM}
	for i := 1; i < len(seq); i++ {
		if seq[i] <= seq[i-1] {
			t.Fatalf("hierarchy energy not monotone at level %d", i)
		}
	}
}

func TestGPvsAccelFactor(t *testing.T) {
	tb := Table45()
	// For a small op (int add), stripping instruction overhead gives about
	// two orders of magnitude — the paper's "100x" specialization claim.
	gp := tb.GPInstruction(tb.IntOp)
	acc := tb.AccelOp(tb.IntOp)
	ratio := float64(gp) / float64(acc)
	if ratio < 50 || ratio > 300 {
		t.Fatalf("int specialization factor = %v, want ~100", ratio)
	}
	// For a big FP op the factor is smaller (datapath dominates).
	fpRatio := float64(tb.GPInstruction(tb.FPOp)) / float64(tb.AccelOp(tb.FPOp))
	if fpRatio >= ratio {
		t.Fatal("FP specialization factor should be below int factor")
	}
	if fpRatio < 2 {
		t.Fatalf("FP specialization factor = %v, want > 2", fpRatio)
	}
}

func TestForNodeScaling(t *testing.T) {
	n7, _ := tech.NodeByName("7nm")
	t7 := ForNode(n7)
	t45 := Table45()
	// Logic energy improves substantially at 7nm.
	if float64(t7.FPOp) >= float64(t45.FPOp)*0.5 {
		t.Fatalf("7nm FPOp = %v, want well below 45nm %v", t7.FPOp, t45.FPOp)
	}
	// Radio does not scale.
	if t7.RadioPerBit != t45.RadioPerBit {
		t.Fatal("radio energy should not scale with node")
	}
	// Communication scales slower than logic: DRAM/FPOp ratio grows.
	r45 := float64(t45.DRAM) / float64(t45.FPOp)
	r7 := float64(t7.DRAM) / float64(t7.FPOp)
	if r7 <= r45 {
		t.Fatalf("comm/compute gap should widen: 45nm %v vs 7nm %v", r45, r7)
	}
}

func TestForNode45IsIdentityForLogic(t *testing.T) {
	tb := ForNode(tech.Node45())
	base := Table45()
	if math.Abs(float64(tb.FPOp-base.FPOp)) > 1e-18 {
		t.Fatalf("ForNode(45nm) changed FPOp: %v vs %v", tb.FPOp, base.FPOp)
	}
	if math.Abs(float64(tb.DRAM-base.DRAM)) > 1e-15 {
		t.Fatalf("ForNode(45nm) changed DRAM: %v vs %v", tb.DRAM, base.DRAM)
	}
}

func TestWireEnergy(t *testing.T) {
	tb := Table45()
	e := tb.WireEnergy(64, 10) // 64 bits over 10mm
	want := 64 * 10 * float64(tb.WirePerBitMM)
	if math.Abs(float64(e)-want) > 1e-18 {
		t.Fatalf("wire energy = %v", e)
	}
	// Moving a word 10mm on chip should rival or exceed the FP op itself.
	if float64(e) < float64(tb.FPOp) {
		t.Fatalf("10mm move (%v) should cost at least an FP op (%v)", e, tb.FPOp)
	}
}

func TestOperandFetchLevels(t *testing.T) {
	tb := Table45()
	levels := []string{"reg", "l1", "l2", "l3", "dram"}
	prev := units.Energy(0)
	for _, l := range levels {
		e := tb.OperandFetch(l)
		if e <= prev {
			t.Fatalf("level %s not more expensive than previous", l)
		}
		prev = e
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown level did not panic")
		}
	}()
	tb.OperandFetch("l9")
}

func TestLadderTargets(t *testing.T) {
	rungs := Ladder()
	if len(rungs) != 4 {
		t.Fatalf("ladder rungs = %d", len(rungs))
	}
	for _, p := range rungs {
		// Every rung demands exactly 100 GOPS/W.
		if math.Abs(p.TargetOpsPerWatt()-1e11) > 1 {
			t.Errorf("%s target = %v ops/W, want 1e11", p.Name, p.TargetOpsPerWatt())
		}
		if p.Gap() <= 1 {
			t.Errorf("%s gap = %v, want > 1", p.Name, p.Gap())
		}
	}
	// Server-class rungs need 2-3 orders of magnitude, the paper's claim.
	for _, p := range rungs {
		if p.Name == "departmental" || p.Name == "datacenter" {
			if p.Gap() < 100 || p.Gap() > 1000 {
				t.Errorf("%s gap = %v, want within [100,1000]", p.Name, p.Gap())
			}
		}
	}
}

func TestAchievableOps(t *testing.T) {
	p := Platform{Name: "x", TargetOpsPerSec: units.TeraOp,
		PowerBudget: 10 * units.Watt, TodayOpsPerWatt: 1e10}
	got := p.AchievableOpsPerSec()
	if math.Abs(float64(got)-1e11) > 1 {
		t.Fatalf("achievable = %v, want 1e11", got)
	}
}

func TestMeterBasics(t *testing.T) {
	var m Meter
	m.Add("compute", 2*units.Joule)
	m.Add("comm", 1*units.Joule)
	m.Add("compute", 1*units.Joule)
	if m.Total() != 4*units.Joule {
		t.Fatalf("total = %v", m.Total())
	}
	if m.Component("compute") != 3*units.Joule {
		t.Fatalf("compute = %v", m.Component("compute"))
	}
	if m.Component("absent") != 0 {
		t.Fatal("absent component should be 0")
	}
	names := m.Components()
	if len(names) != 2 || names[0] != "comm" || names[1] != "compute" {
		t.Fatalf("components = %v", names)
	}
}

func TestMeterAddN(t *testing.T) {
	var m Meter
	m.AddN("ops", 1000, units.Picojoule)
	if math.Abs(float64(m.Total())-1e-9) > 1e-18 {
		t.Fatalf("AddN total = %v", m.Total())
	}
}

func TestMeterMerge(t *testing.T) {
	var a, b Meter
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(&b)
	if a.Component("x") != 3 || a.Component("y") != 3 {
		t.Fatal("merge wrong")
	}
}

func TestMeterReport(t *testing.T) {
	var m Meter
	m.Add("radio", 3*units.Joule)
	m.Add("cpu", 1*units.Joule)
	out := m.Report("Sensor energy").String()
	if !strings.Contains(out, "radio") || !strings.Contains(out, "TOTAL") {
		t.Fatalf("report missing rows: %s", out)
	}
	if !strings.Contains(out, "75%") {
		t.Fatalf("report missing share: %s", out)
	}
}

func TestMeterEmptyReport(t *testing.T) {
	var m Meter
	out := m.Report("empty").String()
	if !strings.Contains(out, "TOTAL") {
		t.Fatal("empty meter report should still have a total row")
	}
}
