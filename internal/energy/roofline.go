package energy

import "math"

// Roofline is the classic performance roofline extended with the energy
// view the paper's memory-hierarchy direction implies: a kernel's
// achievable throughput is min(peak compute, bandwidth × intensity), and
// its energy per op is the datapath op plus the amortized memory energy
// per byte over its arithmetic intensity.
type Roofline struct {
	// PeakOpsPerSec is the compute roof.
	PeakOpsPerSec float64
	// MemBytesPerSec is the bandwidth roof.
	MemBytesPerSec float64
	// OpEnergy is datapath energy per operation (joules).
	OpEnergy float64
	// MemEnergyPerByte is memory-system energy per byte moved (joules).
	MemEnergyPerByte float64
}

// AttainableOps returns achievable ops/s at the given arithmetic intensity
// (ops/byte).
func (r Roofline) AttainableOps(intensity float64) float64 {
	if intensity <= 0 {
		return 0
	}
	return math.Min(r.PeakOpsPerSec, r.MemBytesPerSec*intensity)
}

// RidgeIntensity returns the ops/byte at which a kernel turns
// compute-bound.
func (r Roofline) RidgeIntensity() float64 {
	if r.MemBytesPerSec == 0 {
		return math.Inf(1)
	}
	return r.PeakOpsPerSec / r.MemBytesPerSec
}

// MemoryBound reports whether the intensity sits under the bandwidth roof.
func (r Roofline) MemoryBound(intensity float64) bool {
	return intensity < r.RidgeIntensity()
}

// EnergyPerOp returns total energy per operation at the given intensity:
// the op itself plus memory traffic amortized over the ops it feeds. As
// intensity falls, the memory term dominates — the energy version of E5's
// operand-fetch gap.
func (r Roofline) EnergyPerOp(intensity float64) float64 {
	if intensity <= 0 {
		return math.Inf(1)
	}
	return r.OpEnergy + r.MemEnergyPerByte/intensity
}

// EnergyBalanceIntensity returns the ops/byte at which memory energy equals
// compute energy — below it, the memory system burns most of the joules.
func (r Roofline) EnergyBalanceIntensity() float64 {
	if r.OpEnergy == 0 {
		return math.Inf(1)
	}
	return r.MemEnergyPerByte / r.OpEnergy
}

// StandardRoofline returns a 45nm server-class roofline from the shared
// energy table: 100 Gops/s peak, 25 GB/s DRAM bandwidth.
func StandardRoofline() Roofline {
	t := Table45()
	return Roofline{
		PeakOpsPerSec:    1e11,
		MemBytesPerSec:   25e9,
		OpEnergy:         float64(t.FPOp),
		MemEnergyPerByte: float64(t.DRAM) / 8,
	}
}
