package noc

import (
	"testing"
)

func TestFlitSimLowLoadLatencyNearHops(t *testing.T) {
	m := NewMesh2D(4, 4)
	res := FlitSim{
		Mesh:          m,
		InjectionRate: 0.02,
		WarmupCycles:  1000,
		MeasureCycles: 5000,
		Seed:          3,
	}.Run()
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// At 2% load the mesh is uncontended: a flit advances one hop per
	// cycle, so mean latency approximates the mean hop count.
	zeroLoad := m.MeanHops()
	if res.MeanLatency < zeroLoad*0.8 || res.MeanLatency > zeroLoad*2.5 {
		t.Fatalf("low-load latency = %v cycles, zero-load bound %v", res.MeanLatency, zeroLoad)
	}
	// Throughput tracks offered load (x nodes excluded self-sends ~6%).
	if res.Throughput < 0.015 || res.Throughput > 0.021 {
		t.Fatalf("throughput = %v, offered 0.02", res.Throughput)
	}
}

func TestFlitSimContentionInflatesLatency(t *testing.T) {
	m := NewMesh2D(8, 8)
	low := FlitSim{Mesh: m, InjectionRate: 0.02, WarmupCycles: 1000,
		MeasureCycles: 5000, Seed: 5}.Run()
	high := FlitSim{Mesh: m, InjectionRate: 0.45, WarmupCycles: 1000,
		MeasureCycles: 5000, Seed: 5}.Run()
	if high.MeanLatency < 2*low.MeanLatency {
		t.Fatalf("contention should inflate latency: low %v high %v",
			low.MeanLatency, high.MeanLatency)
	}
}

func TestFlitSimSaturationThroughputCaps(t *testing.T) {
	m := NewMesh2D(8, 8)
	// XY routing on an 8x8 mesh saturates near 0.5 flits/node/cycle
	// (center-channel load k*rate/4 reaches 1); offer 0.7.
	sat := FlitSim{Mesh: m, InjectionRate: 0.7, WarmupCycles: 2000,
		MeasureCycles: 6000, Seed: 7}.Run()
	if sat.Throughput > 0.60 {
		t.Fatalf("throughput %v should saturate below offered 0.7", sat.Throughput)
	}
	if sat.DroppedAtSource == 0 {
		t.Fatal("saturation should push back on injection")
	}
}

func TestFlitSim3DBeats2DUnderLoad(t *testing.T) {
	flat := NewMesh2D(8, 8)
	stacked := NewMesh3D(8, 8, 4)
	rate := 0.15
	f := FlitSim{Mesh: flat, InjectionRate: rate, WarmupCycles: 1000,
		MeasureCycles: 5000, Seed: 9}.Run()
	s := FlitSim{Mesh: stacked, InjectionRate: rate, WarmupCycles: 1000,
		MeasureCycles: 5000, Seed: 9}.Run()
	if s.MeanLatency >= f.MeanLatency {
		t.Fatalf("3D latency %v should beat 2D %v under load",
			s.MeanLatency, f.MeanLatency)
	}
}

func TestSaturationSweepShape(t *testing.T) {
	m := NewMesh2D(4, 4)
	rows := SaturationSweep(m, []float64{0.05, 0.3, 0.7}, 11)
	if len(rows) != 3 {
		t.Fatal("row count")
	}
	// Latency nondecreasing in offered load.
	if rows[2][1] < rows[0][1] {
		t.Fatalf("latency should grow with load: %v", rows)
	}
	// Throughput nondecreasing then capped.
	if rows[1][2] < rows[0][2] {
		t.Fatalf("throughput should not fall below low-load value: %v", rows)
	}
}

func TestFlitSimDeterminism(t *testing.T) {
	m := NewMesh2D(4, 4)
	cfg := FlitSim{Mesh: m, InjectionRate: 0.1, WarmupCycles: 500,
		MeasureCycles: 2000, Seed: 13}
	a, b := cfg.Run(), cfg.Run()
	if a != b {
		t.Fatal("flit sim not deterministic")
	}
}
