package noc

import (
	"repro/internal/stats"
)

// FlitSim is a cycle-accurate single-flit-packet mesh simulator with
// per-link FIFO queues and dimension-ordered routing. It adds what the
// analytic mesh model cannot: contention. Offered load beyond the
// bisection-limited saturation point shows up as unbounded queueing delay —
// the "orchestrating communication" problem of §2.4.
type FlitSim struct {
	// Mesh supplies topology (links carry one flit per cycle).
	Mesh *Mesh
	// InjectionRate is flits per node per cycle (Bernoulli).
	InjectionRate float64
	// WarmupCycles are excluded from latency statistics.
	WarmupCycles int
	// MeasureCycles are the measured cycles after warmup.
	MeasureCycles int
	// Seed drives injection and destinations.
	Seed uint64
	// QueueCap bounds each link queue; injections into a full source
	// queue are dropped and counted (models back-pressure at the NIC).
	QueueCap int
}

// flit is one in-flight packet.
type flit struct {
	dst      int
	injected int
	measured bool
	movedAt  int
}

// link directions.
const (
	dirXPlus = iota
	dirXMinus
	dirYPlus
	dirYMinus
	dirZPlus
	dirZMinus
	dirCount
)

// FlitResult summarizes a simulation.
type FlitResult struct {
	// MeanLatency and P99Latency are in cycles (measured flits only).
	MeanLatency, P99Latency float64
	// Throughput is delivered flits per node per cycle over the
	// measurement window.
	Throughput float64
	// Delivered counts measured deliveries.
	Delivered int
	// DroppedAtSource counts injections refused by a full source queue.
	DroppedAtSource int
}

// Run executes the simulation.
func (f FlitSim) Run() FlitResult {
	m := f.Mesh
	n := m.Nodes()
	if f.QueueCap <= 0 {
		f.QueueCap = 64
	}
	rng := stats.NewRNG(f.Seed)
	queues := make([][][]*flit, n) // queues[node][dir]
	for i := range queues {
		queues[i] = make([][]*flit, dirCount)
	}
	lat := stats.NewSample(4096)
	res := FlitResult{}
	total := f.WarmupCycles + f.MeasureCycles

	// nextDir picks the output direction at node for destination dst
	// under X, then Y, then Z routing; returns -1 when node == dst.
	nextDir := func(node, dst int) int {
		a, b := m.NodeCoord(node), m.NodeCoord(dst)
		switch {
		case b.X > a.X:
			return dirXPlus
		case b.X < a.X:
			return dirXMinus
		case b.Y > a.Y:
			return dirYPlus
		case b.Y < a.Y:
			return dirYMinus
		case b.Z > a.Z:
			return dirZPlus
		case b.Z < a.Z:
			return dirZMinus
		}
		return -1
	}
	neighbor := func(node, dir int) int {
		c := m.NodeCoord(node)
		switch dir {
		case dirXPlus:
			c.X++
		case dirXMinus:
			c.X--
		case dirYPlus:
			c.Y++
		case dirYMinus:
			c.Y--
		case dirZPlus:
			c.Z++
		case dirZMinus:
			c.Z--
		}
		return c.X + c.Y*m.W + c.Z*m.W*m.H
	}

	for cycle := 0; cycle < total; cycle++ {
		// Inject.
		for node := 0; node < n; node++ {
			if !rng.Bool(f.InjectionRate) {
				continue
			}
			dst := rng.Intn(n)
			if dst == node {
				continue
			}
			dir := nextDir(node, dst)
			if len(queues[node][dir]) >= f.QueueCap {
				res.DroppedAtSource++
				continue
			}
			queues[node][dir] = append(queues[node][dir], &flit{
				dst:      dst,
				injected: cycle,
				measured: cycle >= f.WarmupCycles,
				movedAt:  -1,
			})
		}
		// Advance: one flit per link per cycle.
		for node := 0; node < n; node++ {
			for dir := 0; dir < dirCount; dir++ {
				q := queues[node][dir]
				if len(q) == 0 {
					continue
				}
				head := q[0]
				if head.movedAt == cycle {
					continue
				}
				next := neighbor(node, dir)
				if next == head.dst {
					// Deliver.
					queues[node][dir] = q[1:]
					if head.measured && cycle < total {
						if cycle >= f.WarmupCycles {
							lat.Add(float64(cycle + 1 - head.injected))
							res.Delivered++
						}
					}
					continue
				}
				ndir := nextDir(next, head.dst)
				if len(queues[next][ndir]) >= f.QueueCap {
					continue // back-pressure: stall this link
				}
				head.movedAt = cycle
				queues[node][dir] = q[1:]
				queues[next][ndir] = append(queues[next][ndir], head)
			}
		}
	}
	res.MeanLatency = lat.Mean()
	res.P99Latency = lat.Percentile(99)
	if f.MeasureCycles > 0 {
		res.Throughput = float64(res.Delivered) / float64(n) / float64(f.MeasureCycles)
	}
	return res
}

// SaturationSweep runs the simulator across injection rates and returns
// (rate, meanLatency, throughput) triples.
func SaturationSweep(m *Mesh, rates []float64, seed uint64) [][3]float64 {
	out := make([][3]float64, 0, len(rates))
	for _, r := range rates {
		res := FlitSim{
			Mesh:          m,
			InjectionRate: r,
			WarmupCycles:  2000,
			MeasureCycles: 8000,
			Seed:          seed,
		}.Run()
		out = append(out, [3]float64{r, res.MeanLatency, res.Throughput})
	}
	return out
}
