package noc

import (
	"math"

	"repro/internal/units"
)

// LinkKind selects a physical-layer technology for a point-to-point link.
type LinkKind int

// The modelled link technologies.
const (
	// Electrical is an on-chip/package copper wire with repeaters.
	Electrical LinkKind = iota
	// Photonic is a silicon-photonic waveguide/fiber link.
	Photonic
	// Board is SerDes-based chip-to-chip signaling.
	Board
)

func (k LinkKind) String() string {
	switch k {
	case Electrical:
		return "electrical"
	case Photonic:
		return "photonic"
	default:
		return "board"
	}
}

// Link models energy and latency of moving bits over a distance.
type Link struct {
	Kind LinkKind
	// PerBitPerMM is distance-proportional energy (electrical only).
	PerBitPerMM units.Energy
	// PerBitFixed is distance-independent per-bit energy (modulator/laser
	// for photonic, SerDes for board).
	PerBitFixed units.Energy
	// VelocityMMPerNs is signal propagation speed.
	VelocityMMPerNs float64
	// MaxMM is the practical reach (0 = unlimited).
	MaxMM float64
}

// StandardLinks returns the three modelled technologies with 45nm-class
// constants: electrical wires cost ~0.2 pJ/bit/mm, photonics ~1 pJ/bit flat,
// board SerDes ~10 pJ/bit flat.
func StandardLinks() []Link {
	return []Link{
		{Kind: Electrical, PerBitPerMM: 0.2 * units.Picojoule, VelocityMMPerNs: 100, MaxMM: 0},
		{Kind: Photonic, PerBitFixed: 1 * units.Picojoule, VelocityMMPerNs: 200, MaxMM: 0},
		{Kind: Board, PerBitFixed: 10 * units.Picojoule, VelocityMMPerNs: 150, MaxMM: 500},
	}
}

// EnergyPerBit returns transport energy for one bit over mm.
func (l Link) EnergyPerBit(mm float64) units.Energy {
	return l.PerBitFixed + l.PerBitPerMM*units.Energy(mm)
}

// Latency returns flight time over mm.
func (l Link) Latency(mm float64) units.Time {
	return units.Time(mm/l.VelocityMMPerNs) * units.Nanosecond
}

// ElectricalPhotonicCrossoverMM returns the distance beyond which the
// photonic link is cheaper per bit than the electrical one. Returns +Inf if
// photonics never wins.
func ElectricalPhotonicCrossoverMM(elec, phot Link) float64 {
	num := float64(phot.PerBitFixed - elec.PerBitFixed)
	den := float64(elec.PerBitPerMM - phot.PerBitPerMM)
	if den <= 0 {
		return math.Inf(1)
	}
	x := num / den
	if x < 0 {
		return 0
	}
	return x
}

// CommComputeCrossoverMM returns the distance at which moving a 64-bit
// operand over the electrical link costs as much as the given compute
// operation. Beyond this distance the paper's "communication more expensive
// than computation" regime holds.
func CommComputeCrossoverMM(elec Link, opEnergy units.Energy) float64 {
	perMM := float64(elec.PerBitPerMM) * 64
	if perMM <= 0 {
		return math.Inf(1)
	}
	fixed := float64(elec.PerBitFixed) * 64
	x := (float64(opEnergy) - fixed) / perMM
	if x < 0 {
		return 0
	}
	return x
}

// RentPins returns the Rent's-rule pin estimate k·G^p for G gates.
// Table 1 cites Rent's rule as the structural reason inter-chip
// communication stays restricted: pins grow sublinearly in logic.
func RentPins(k float64, gates float64, p float64) float64 {
	return k * math.Pow(gates, p)
}

// PinBandwidthGap returns the ratio of on-chip aggregate demand to off-chip
// pin bandwidth as gates scale by factor g, for Rent exponent p < 1: the
// gap grows as g^(1-p).
func PinBandwidthGap(g float64, p float64) float64 {
	return math.Pow(g, 1-p)
}
