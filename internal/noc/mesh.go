// Package noc models on-chip and cross-chip interconnect: 2D and
// 3D-stacked meshes with XY(Z) routing, electrical versus photonic link
// energy/latency, and Rent's-rule pin constraints — the substrate for the
// paper's claims that communication now costs more than computation and
// that 3D stacking and photonics "change communication costs radically
// enough to affect the entire system design" (§1.2, §2.3).
package noc

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Mesh is a W×H×Layers mesh NoC with dimension-ordered (XY then Z) routing.
// Layers == 1 gives a planar 2D mesh; Layers > 1 models a 3D stack whose
// vertical hops ride cheap TSVs.
type Mesh struct {
	W, H, Layers int
	// TileMM is the side length of one tile in millimetres (link length).
	TileMM float64
	// RouterLatency is per-router traversal time.
	RouterLatency units.Time
	// RouterEnergyPerFlit is per-router energy for one 64-bit flit.
	RouterEnergyPerFlit units.Energy
	// WirePerBitMM is planar link energy per bit per mm.
	WirePerBitMM units.Energy
	// TSVPerBit is vertical hop energy per bit.
	TSVPerBit units.Energy
	// TSVLatency is vertical hop time.
	TSVLatency units.Time
}

// NewMesh2D returns a W×H planar mesh with default 45nm-class parameters.
func NewMesh2D(w, h int) *Mesh {
	return &Mesh{
		W: w, H: h, Layers: 1,
		TileMM:              1.5,
		RouterLatency:       1 * units.Nanosecond,
		RouterEnergyPerFlit: 5 * units.Picojoule,
		WirePerBitMM:        0.2 * units.Picojoule,
		TSVPerBit:           0.05 * units.Picojoule,
		TSVLatency:          0.1 * units.Nanosecond,
	}
}

// NewMesh3D folds the same node count as a w×h planar mesh into the given
// number of stacked layers (w×h must be divisible by layers).
func NewMesh3D(w, h, layers int) *Mesh {
	if (w*h)%layers != 0 {
		panic(fmt.Sprintf("noc: %dx%d nodes not divisible into %d layers", w, h, layers))
	}
	m := NewMesh2D(w, h)
	// Shrink the footprint: keep aspect ratio by scaling both dims. The
	// per-layer width must divide the per-layer node count exactly or the
	// fold silently drops nodes, so snap to the divisor nearest the ideal
	// scaled width (smaller divisor wins ties).
	scale := math.Sqrt(float64(layers))
	perLayer := (w * h) / layers
	target := float64(w) / scale
	bestW := 1
	for d := 1; d <= perLayer; d++ {
		if perLayer%d != 0 {
			continue
		}
		if math.Abs(float64(d)-target) < math.Abs(float64(bestW)-target) {
			bestW = d
		}
	}
	m.W = bestW
	m.H = perLayer / bestW
	m.Layers = layers
	return m
}

// Nodes returns the total node count.
func (m *Mesh) Nodes() int { return m.W * m.H * m.Layers }

// Coord is a mesh coordinate.
type Coord struct{ X, Y, Z int }

// NodeCoord maps a node index to its coordinate (x fastest).
func (m *Mesh) NodeCoord(id int) Coord {
	if id < 0 || id >= m.Nodes() {
		panic(fmt.Sprintf("noc: node %d out of range", id))
	}
	return Coord{
		X: id % m.W,
		Y: (id / m.W) % m.H,
		Z: id / (m.W * m.H),
	}
}

// Hops returns planar and vertical hop counts between two nodes under
// dimension-ordered routing.
func (m *Mesh) Hops(src, dst int) (planar, vertical int) {
	a, b := m.NodeCoord(src), m.NodeCoord(dst)
	planar = abs(a.X-b.X) + abs(a.Y-b.Y)
	vertical = abs(a.Z - b.Z)
	return planar, vertical
}

// Latency returns the head latency of a 64-bit flit from src to dst:
// router traversals (hops+1) plus wire/TSV flight time (wire flight is
// folded into router latency at these scales).
func (m *Mesh) Latency(src, dst int) units.Time {
	p, v := m.Hops(src, dst)
	return units.Time(float64(p+v+1))*m.RouterLatency + units.Time(float64(v))*m.TSVLatency
}

// Energy returns transport energy for bits bits from src to dst.
func (m *Mesh) Energy(src, dst int, bits float64) units.Energy {
	p, v := m.Hops(src, dst)
	routers := float64(p+v+1) * float64(m.RouterEnergyPerFlit) * bits / 64
	wires := float64(p) * m.TileMM * float64(m.WirePerBitMM) * bits
	tsvs := float64(v) * float64(m.TSVPerBit) * bits
	return units.Energy(routers + wires + tsvs)
}

// MeanHops returns the exact mean planar+vertical hop count over all
// ordered src≠dst pairs under uniform random traffic.
func (m *Mesh) MeanHops() float64 {
	n := m.Nodes()
	if n < 2 {
		return 0
	}
	total := 0.0
	// Mean |a-b| over a dimension of size k (uniform independent) equals
	// (k²-1)/(3k); summing per-dimension means and correcting for the
	// excluded self-pairs keeps this O(1).
	dims := []int{m.W, m.H, m.Layers}
	for _, k := range dims {
		total += (float64(k)*float64(k) - 1) / (3 * float64(k))
	}
	// Uniform over all pairs including self; excluding self scales by
	// n/(n-1).
	return total * float64(n) / float64(n-1)
}

// MeanLatency returns mean flit latency under uniform random traffic at low
// load (no contention).
func (m *Mesh) MeanLatency() units.Time {
	// Approximate: treat mean hops as planar unless the mesh is stacked,
	// in which case apportion by expected per-dimension distances.
	n := float64(m.Nodes())
	if n < 2 {
		return m.RouterLatency
	}
	planar := ((float64(m.W)*float64(m.W)-1)/(3*float64(m.W)) +
		(float64(m.H)*float64(m.H)-1)/(3*float64(m.H))) * n / (n - 1)
	vertical := ((float64(m.Layers)*float64(m.Layers) - 1) /
		(3 * float64(m.Layers))) * n / (n - 1)
	return units.Time(planar+vertical+1)*m.RouterLatency +
		units.Time(vertical)*m.TSVLatency
}

// MeanEnergyPerFlit returns mean 64-bit-flit transport energy under uniform
// random traffic.
func (m *Mesh) MeanEnergyPerFlit() units.Energy {
	n := float64(m.Nodes())
	if n < 2 {
		return m.RouterEnergyPerFlit
	}
	planar := ((float64(m.W)*float64(m.W)-1)/(3*float64(m.W)) +
		(float64(m.H)*float64(m.H)-1)/(3*float64(m.H))) * n / (n - 1)
	vertical := ((float64(m.Layers)*float64(m.Layers) - 1) /
		(3 * float64(m.Layers))) * n / (n - 1)
	routers := (planar + vertical + 1) * float64(m.RouterEnergyPerFlit)
	wires := planar * m.TileMM * float64(m.WirePerBitMM) * 64
	tsvs := vertical * float64(m.TSVPerBit) * 64
	return units.Energy(routers + wires + tsvs)
}

// BisectionLinks returns the number of links crossing the mesh's narrowest
// bisection, the first-order throughput limit.
func (m *Mesh) BisectionLinks() int {
	// Cut across the larger planar dimension.
	if m.W >= m.H {
		return m.H * m.Layers
	}
	return m.W * m.Layers
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
