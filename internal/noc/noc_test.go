package noc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestMeshCoords(t *testing.T) {
	m := NewMesh2D(4, 4)
	if m.Nodes() != 16 {
		t.Fatal("node count")
	}
	c := m.NodeCoord(5)
	if c.X != 1 || c.Y != 1 || c.Z != 0 {
		t.Fatalf("coord of 5 = %+v", c)
	}
	c = m.NodeCoord(15)
	if c.X != 3 || c.Y != 3 {
		t.Fatalf("coord of 15 = %+v", c)
	}
}

func TestMeshCoordPanics(t *testing.T) {
	m := NewMesh2D(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("bad node id did not panic")
		}
	}()
	m.NodeCoord(4)
}

func TestMeshHops(t *testing.T) {
	m := NewMesh2D(4, 4)
	p, v := m.Hops(0, 15) // (0,0) -> (3,3)
	if p != 6 || v != 0 {
		t.Fatalf("hops = %d,%d want 6,0", p, v)
	}
	p, v = m.Hops(5, 5)
	if p != 0 || v != 0 {
		t.Fatal("self hops should be 0")
	}
}

func TestMesh3DFoldsFootprint(t *testing.T) {
	flat := NewMesh2D(8, 8)
	stacked := NewMesh3D(8, 8, 4)
	if stacked.Nodes() != flat.Nodes() {
		t.Fatalf("3D mesh lost nodes: %d vs %d", stacked.Nodes(), flat.Nodes())
	}
	if stacked.Layers != 4 {
		t.Fatal("layer count wrong")
	}
	// Stacking cuts mean latency and energy for the same node count —
	// the paper's 3D claim.
	if float64(stacked.MeanLatency()) >= float64(flat.MeanLatency()) {
		t.Fatalf("3D latency %v should beat 2D %v", stacked.MeanLatency(), flat.MeanLatency())
	}
	if float64(stacked.MeanEnergyPerFlit()) >= float64(flat.MeanEnergyPerFlit()) {
		t.Fatalf("3D energy %v should beat 2D %v",
			stacked.MeanEnergyPerFlit(), flat.MeanEnergyPerFlit())
	}
}

func TestMesh3DPanicsOnBadLayers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad layer split did not panic")
		}
	}()
	NewMesh3D(3, 3, 2)
}

func TestMeanHopsMatchesBruteForce(t *testing.T) {
	m := NewMesh2D(4, 3)
	n := m.Nodes()
	sum, cnt := 0.0, 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			p, v := m.Hops(s, d)
			sum += float64(p + v)
			cnt++
		}
	}
	brute := sum / float64(cnt)
	if math.Abs(m.MeanHops()-brute) > 1e-9 {
		t.Fatalf("MeanHops = %v, brute force = %v", m.MeanHops(), brute)
	}
}

// Property: hop counts are symmetric and satisfy the triangle inequality.
func TestQuickHopMetric(t *testing.T) {
	m := NewMesh3D(4, 4, 2)
	n := m.Nodes()
	f := func(aRaw, bRaw, cRaw uint16) bool {
		a, b, c := int(aRaw)%n, int(bRaw)%n, int(cRaw)%n
		pab, vab := m.Hops(a, b)
		pba, vba := m.Hops(b, a)
		if pab != pba || vab != vba {
			return false
		}
		pac, vac := m.Hops(a, c)
		pcb, vcb := m.Hops(c, b)
		return pab+vab <= pac+vac+pcb+vcb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeshEnergyGrowsWithDistance(t *testing.T) {
	m := NewMesh2D(8, 8)
	near := m.Energy(0, 1, 64)
	far := m.Energy(0, 63, 64)
	if far <= near {
		t.Fatal("far transport should cost more")
	}
	// Latency likewise.
	if m.Latency(0, 63) <= m.Latency(0, 1) {
		t.Fatal("far latency should be higher")
	}
}

func TestBisection(t *testing.T) {
	if NewMesh2D(8, 4).BisectionLinks() != 4 {
		t.Fatal("8x4 bisection should be 4")
	}
	if NewMesh3D(8, 8, 4).BisectionLinks() == 0 {
		t.Fatal("3D bisection zero")
	}
}

func TestLinkEnergyShapes(t *testing.T) {
	links := StandardLinks()
	elec, phot := links[0], links[1]
	// Short distance: electrical wins.
	if elec.EnergyPerBit(1) >= phot.EnergyPerBit(1) {
		t.Fatal("electrical should win at 1mm")
	}
	// Long distance: photonic wins.
	if phot.EnergyPerBit(100) >= elec.EnergyPerBit(100) {
		t.Fatal("photonic should win at 100mm")
	}
	cross := ElectricalPhotonicCrossoverMM(elec, phot)
	if cross <= 1 || cross >= 100 {
		t.Fatalf("crossover = %vmm, want in (1,100)", cross)
	}
	// At the crossover the energies match.
	d := math.Abs(float64(elec.EnergyPerBit(cross) - phot.EnergyPerBit(cross)))
	if d > 1e-15 {
		t.Fatalf("energies differ at crossover by %v", d)
	}
}

func TestLinkLatency(t *testing.T) {
	phot := StandardLinks()[1]
	l := phot.Latency(200) // 200mm at 200mm/ns = 1ns
	if math.Abs(float64(l)-1e-9) > 1e-15 {
		t.Fatalf("photonic 200mm latency = %v", l)
	}
}

func TestCommComputeCrossover(t *testing.T) {
	elec := StandardLinks()[0]
	fpOp := 50 * units.Picojoule
	cross := CommComputeCrossoverMM(elec, fpOp)
	// 50pJ / (0.2pJ/bit/mm * 64 bits) ≈ 3.9mm: on-chip scale, as the paper
	// argues (communication rivals computation within a chip).
	if cross < 1 || cross > 10 {
		t.Fatalf("comm/compute crossover = %vmm, want a few mm", cross)
	}
	// A cheaper op crosses over sooner.
	intOp := 1 * units.Picojoule
	if CommComputeCrossoverMM(elec, intOp) >= cross {
		t.Fatal("cheaper ops should cross over sooner")
	}
}

func TestRentPins(t *testing.T) {
	// Doubling gates with p=0.6 grows pins by 2^0.6 ≈ 1.52 — sublinear.
	ratio := RentPins(1, 2e6, 0.6) / RentPins(1, 1e6, 0.6)
	if math.Abs(ratio-math.Pow(2, 0.6)) > 1e-9 {
		t.Fatalf("rent ratio = %v", ratio)
	}
	// Bandwidth gap grows with scaling.
	if PinBandwidthGap(64, 0.6) <= PinBandwidthGap(8, 0.6) {
		t.Fatal("pin gap should grow with integration")
	}
}

func TestEnergyPerBitZeroDistance(t *testing.T) {
	for _, l := range StandardLinks() {
		if l.EnergyPerBit(0) != l.PerBitFixed {
			t.Fatalf("%v: zero-distance energy should be the fixed cost", l.Kind)
		}
	}
}
