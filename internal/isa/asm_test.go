package isa

import (
	"strings"
	"testing"
)

func TestAssembleSumLoop(t *testing.T) {
	src := `
		; sum 1..10
		li   r1, 0        ; i
		li   r2, 0        ; sum
		li   r3, 10
		li   r4, 1
	loop:	add  r1, r1, r4
		add  r2, r2, r1
		blt  r1, r3, loop
		halt
	`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, 1)
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if m.Regs[2] != 55 {
		t.Fatalf("sum = %d, want 55", m.Regs[2])
	}
}

func TestAssembleForwardLabel(t *testing.T) {
	src := `
		li  r1, 1
		jmp done
		li  r1, 99
	done:	halt
	`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, 1)
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[1] != 1 {
		t.Fatalf("r1 = %d, want 1 (skipped li 99)", m.Regs[1])
	}
}

func TestAssembleMemoryAndIO(t *testing.T) {
	src := `
		in   r1, 0
		li   r2, 4
		st   r2, r1, 1    ; Mem[5] = r1
		ld   r3, r2, 1    ; r3 = Mem[5]
		out  r3, 7
		halt
	`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, 8)
	m.Inputs[0] = []int64{42}
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(m.Outputs[7]) != 1 || m.Outputs[7][0] != 42 {
		t.Fatalf("outputs = %v", m.Outputs)
	}
}

func TestAssembleHexAndNegative(t *testing.T) {
	prog, err := Assemble("li r1, 0x10\naddi r2, r1, -6\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, 1)
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.Regs[2] != 10 {
		t.Fatalf("r2 = %d, want 10", m.Regs[2])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown-op", "frob r1, r2"},
		{"bad-register", "li rx, 5"},
		{"register-range", "li r32, 5"},
		{"undefined-label", "jmp nowhere"},
		{"duplicate-label", "a: nop\na: nop"},
		{"label-immediate", "li r1, somewhere"},
		{"missing-operand", "add r1, r2"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestAssembleEmptyAndComments(t *testing.T) {
	prog, err := Assemble("\n; just comments\n# more\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 0 {
		t.Fatalf("prog = %d instrs, want 0", len(prog))
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
		li   r1, 7
		addi r2, r1, 3
		add  r3, r1, r2
		st   r0, r3, 2
		ld   r4, r0, 2
		beq  r4, r3, 6
		jr   r5
		in   r6, 1
		out  r6, 2
		halt
	`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(prog)
	// Reassembling the disassembly (sans pc prefixes) yields the same
	// program.
	var clean []string
	for _, line := range strings.Split(text, "\n") {
		if i := strings.Index(line, ": "); i >= 0 {
			clean = append(clean, line[i+2:])
		}
	}
	prog2, err := Assemble(strings.Join(clean, "\n"))
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, text)
	}
	if len(prog2) != len(prog) {
		t.Fatalf("length %d vs %d", len(prog2), len(prog))
	}
	for i := range prog {
		if prog[i] != prog2[i] {
			t.Fatalf("instr %d: %+v vs %+v", i, prog[i], prog2[i])
		}
	}
}

func TestDisassembleUnknownOp(t *testing.T) {
	out := Disassemble([]Instr{{Op: Op(77)}})
	if !strings.Contains(out, "?77") {
		t.Fatalf("unknown op rendering: %q", out)
	}
}
