package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses a simple textual assembly for the VM. Grammar per line:
//
//	[label:] op [operands]   ; comment
//
// Registers are r0..r31; immediates are decimal or 0x hex; branch/jump
// targets may be labels. Operand orders follow the Instr fields:
//
//	add/sub/mul/div/and/or/xor  rd, rs1, rs2
//	addi                        rd, rs1, imm
//	li                          rd, imm
//	ld                          rd, rs1, imm      ; rd = Mem[rs1+imm]
//	st                          rs1, rs2, imm     ; Mem[rs1+imm] = rs2
//	beq/bne/blt                 rs1, rs2, target
//	jmp                         target
//	jr                          rs1
//	in                          rd, port
//	out                         rs1, port
//	nop / halt
//
// Comments start with ';' or '#'. Labels are case-sensitive.
func Assemble(src string) ([]Instr, error) {
	type pending struct {
		instr int
		label string
		line  int
	}
	var prog []Instr
	labels := map[string]int{}
	var fixups []pending

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several) prefix the instruction.
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if label == "" || strings.ContainsAny(label, " \t,") {
				return nil, fmt.Errorf("isa: line %d: bad label %q", ln+1, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate label %q", ln+1, label)
			}
			labels[label] = len(prog)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool {
			return r == ' ' || r == '\t' || r == ','
		})
		var ops []string
		for _, f := range fields {
			if f != "" {
				ops = append(ops, f)
			}
		}
		mnemonic := strings.ToLower(ops[0])
		args := ops[1:]

		reg := func(i int) (int, error) {
			if i >= len(args) {
				return 0, fmt.Errorf("isa: line %d: missing operand %d", ln+1, i+1)
			}
			a := strings.ToLower(args[i])
			if !strings.HasPrefix(a, "r") {
				return 0, fmt.Errorf("isa: line %d: %q is not a register", ln+1, args[i])
			}
			n, err := strconv.Atoi(a[1:])
			if err != nil || n < 0 || n >= NumRegs {
				return 0, fmt.Errorf("isa: line %d: bad register %q", ln+1, args[i])
			}
			return n, nil
		}
		imm := func(i int) (int64, bool, string, error) {
			if i >= len(args) {
				return 0, false, "", fmt.Errorf("isa: line %d: missing operand %d", ln+1, i+1)
			}
			v, err := strconv.ParseInt(args[i], 0, 64)
			if err == nil {
				return v, false, "", nil
			}
			return 0, true, args[i], nil // treat as label, fix up later
		}

		var in Instr
		var err error
		emitTarget := func(argIdx int) error {
			v, isLabel, label, e := imm(argIdx)
			if e != nil {
				return e
			}
			if isLabel {
				fixups = append(fixups, pending{instr: len(prog), label: label, line: ln + 1})
			} else {
				in.Imm = v
			}
			return nil
		}
		switch mnemonic {
		case "nop":
			in.Op = Nop
		case "halt":
			in.Op = Halt
		case "add", "sub", "mul", "div", "and", "or", "xor":
			in.Op = map[string]Op{"add": Add, "sub": Sub, "mul": Mul,
				"div": Div, "and": And, "or": Or, "xor": Xor}[mnemonic]
			if in.Rd, err = reg(0); err != nil {
				return nil, err
			}
			if in.Rs1, err = reg(1); err != nil {
				return nil, err
			}
			if in.Rs2, err = reg(2); err != nil {
				return nil, err
			}
		case "addi":
			in.Op = Addi
			if in.Rd, err = reg(0); err != nil {
				return nil, err
			}
			if in.Rs1, err = reg(1); err != nil {
				return nil, err
			}
			v, isLabel, _, e := imm(2)
			if e != nil || isLabel {
				return nil, fmt.Errorf("isa: line %d: addi needs a numeric immediate", ln+1)
			}
			in.Imm = v
		case "li":
			in.Op = Li
			if in.Rd, err = reg(0); err != nil {
				return nil, err
			}
			v, isLabel, _, e := imm(1)
			if e != nil || isLabel {
				return nil, fmt.Errorf("isa: line %d: li needs a numeric immediate", ln+1)
			}
			in.Imm = v
		case "ld":
			in.Op = Ld
			if in.Rd, err = reg(0); err != nil {
				return nil, err
			}
			if in.Rs1, err = reg(1); err != nil {
				return nil, err
			}
			v, isLabel, _, e := imm(2)
			if e != nil || isLabel {
				return nil, fmt.Errorf("isa: line %d: ld needs a numeric offset", ln+1)
			}
			in.Imm = v
		case "st":
			in.Op = St
			if in.Rs1, err = reg(0); err != nil {
				return nil, err
			}
			if in.Rs2, err = reg(1); err != nil {
				return nil, err
			}
			v, isLabel, _, e := imm(2)
			if e != nil || isLabel {
				return nil, fmt.Errorf("isa: line %d: st needs a numeric offset", ln+1)
			}
			in.Imm = v
		case "beq", "bne", "blt":
			in.Op = map[string]Op{"beq": Beq, "bne": Bne, "blt": Blt}[mnemonic]
			if in.Rs1, err = reg(0); err != nil {
				return nil, err
			}
			if in.Rs2, err = reg(1); err != nil {
				return nil, err
			}
			if err = emitTarget(2); err != nil {
				return nil, err
			}
		case "jmp":
			in.Op = Jmp
			if err = emitTarget(0); err != nil {
				return nil, err
			}
		case "jr":
			in.Op = Jr
			if in.Rs1, err = reg(0); err != nil {
				return nil, err
			}
		case "in":
			in.Op = In
			if in.Rd, err = reg(0); err != nil {
				return nil, err
			}
			v, isLabel, _, e := imm(1)
			if e != nil || isLabel {
				return nil, fmt.Errorf("isa: line %d: in needs a numeric port", ln+1)
			}
			in.Imm = v
		case "out":
			in.Op = Out
			if in.Rs1, err = reg(0); err != nil {
				return nil, err
			}
			v, isLabel, _, e := imm(1)
			if e != nil || isLabel {
				return nil, fmt.Errorf("isa: line %d: out needs a numeric port", ln+1)
			}
			in.Imm = v
		default:
			return nil, fmt.Errorf("isa: line %d: unknown mnemonic %q", ln+1, mnemonic)
		}
		prog = append(prog, in)
	}
	for _, fx := range fixups {
		target, ok := labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("isa: line %d: undefined label %q", fx.line, fx.label)
		}
		prog[fx.instr].Imm = int64(target)
	}
	return prog, nil
}

// Disassemble renders a program back to assembly text (without labels).
func Disassemble(prog []Instr) string {
	var b strings.Builder
	for pc, in := range prog {
		fmt.Fprintf(&b, "%4d: ", pc)
		switch in.Op {
		case Nop, Halt:
			b.WriteString(in.Op.String())
		case Add, Sub, Mul, Div, And, Or, Xor:
			fmt.Fprintf(&b, "%-5s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
		case Addi:
			fmt.Fprintf(&b, "addi  r%d, r%d, %d", in.Rd, in.Rs1, in.Imm)
		case Li:
			fmt.Fprintf(&b, "li    r%d, %d", in.Rd, in.Imm)
		case Ld:
			fmt.Fprintf(&b, "ld    r%d, r%d, %d", in.Rd, in.Rs1, in.Imm)
		case St:
			fmt.Fprintf(&b, "st    r%d, r%d, %d", in.Rs1, in.Rs2, in.Imm)
		case Beq, Bne, Blt:
			fmt.Fprintf(&b, "%-5s r%d, r%d, %d", in.Op, in.Rs1, in.Rs2, in.Imm)
		case Jmp:
			fmt.Fprintf(&b, "jmp   %d", in.Imm)
		case Jr:
			fmt.Fprintf(&b, "jr    r%d", in.Rs1)
		case In:
			fmt.Fprintf(&b, "in    r%d, %d", in.Rd, in.Imm)
		case Out:
			fmt.Fprintf(&b, "out   r%d, %d", in.Rs1, in.Imm)
		default:
			fmt.Fprintf(&b, "?%d", int(in.Op))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
