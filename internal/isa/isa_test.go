package isa

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestArithmetic(t *testing.T) {
	prog := []Instr{
		{Op: Li, Rd: 1, Imm: 6},
		{Op: Li, Rd: 2, Imm: 7},
		{Op: Mul, Rd: 3, Rs1: 1, Rs2: 2},
		{Op: Addi, Rd: 4, Rs1: 3, Imm: -2},
		{Op: Sub, Rd: 5, Rs1: 4, Rs2: 1},
		{Op: Halt},
	}
	m := New(prog, 16)
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[3] != 42 || m.Regs[4] != 40 || m.Regs[5] != 34 {
		t.Fatalf("regs = %v %v %v", m.Regs[3], m.Regs[4], m.Regs[5])
	}
}

func TestRegisterZeroHardwired(t *testing.T) {
	prog := []Instr{
		{Op: Li, Rd: 0, Imm: 99},
		{Op: Halt},
	}
	m := New(prog, 1)
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.Regs[0] != 0 {
		t.Fatal("r0 must stay zero")
	}
}

func TestLoadStore(t *testing.T) {
	prog := []Instr{
		{Op: Li, Rd: 1, Imm: 5},          // addr base
		{Op: Li, Rd: 2, Imm: 1234},       // value
		{Op: St, Rs1: 1, Rs2: 2, Imm: 3}, // Mem[8] = 1234
		{Op: Ld, Rd: 3, Rs1: 1, Imm: 3},  // r3 = Mem[8]
		{Op: Halt},
	}
	m := New(prog, 16)
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Mem[8] != 1234 || m.Regs[3] != 1234 {
		t.Fatal("load/store roundtrip failed")
	}
	if m.Counts["mem"] != 2 {
		t.Fatalf("mem count = %d", m.Counts["mem"])
	}
}

func TestBranchLoop(t *testing.T) {
	// Sum 1..10 via Blt loop.
	prog := []Instr{
		{Op: Li, Rd: 1, Imm: 0},  // i
		{Op: Li, Rd: 2, Imm: 0},  // sum
		{Op: Li, Rd: 3, Imm: 10}, // limit
		{Op: Li, Rd: 4, Imm: 1},
		// loop (pc=4):
		{Op: Add, Rd: 1, Rs1: 1, Rs2: 4},
		{Op: Add, Rd: 2, Rs1: 2, Rs2: 1},
		{Op: Blt, Rs1: 1, Rs2: 3, Imm: 4},
		{Op: Halt},
	}
	m := New(prog, 1)
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if m.Regs[2] != 55 {
		t.Fatalf("sum = %d, want 55", m.Regs[2])
	}
}

func TestFaults(t *testing.T) {
	cases := []struct {
		name string
		prog []Instr
	}{
		{"div0", []Instr{{Op: Li, Rd: 1, Imm: 1}, {Op: Div, Rd: 2, Rs1: 1, Rs2: 0}}},
		{"load-oob", []Instr{{Op: Ld, Rd: 1, Rs1: 0, Imm: 99}}},
		{"store-oob", []Instr{{Op: St, Rs1: 0, Rs2: 0, Imm: -1}}},
		{"pc-oob", []Instr{{Op: Jmp, Imm: 55}}},
		{"illegal", []Instr{{Op: Op(99)}}},
	}
	for _, c := range cases {
		m := New(c.prog, 4)
		if err := m.Run(100); err == nil {
			t.Errorf("%s: expected fault", c.name)
		}
	}
}

func TestMaxCycles(t *testing.T) {
	prog := []Instr{{Op: Jmp, Imm: 0}} // infinite loop
	m := New(prog, 1)
	if err := m.Run(100); !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
}

func TestIO(t *testing.T) {
	prog := []Instr{
		{Op: In, Rd: 1, Imm: 0},
		{Op: Addi, Rd: 1, Rs1: 1, Imm: 1},
		{Op: Out, Rs1: 1, Imm: 1},
		{Op: Halt},
	}
	m := New(prog, 1)
	m.Inputs[0] = []int64{41}
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(m.Outputs[1]) != 1 || m.Outputs[1][0] != 42 {
		t.Fatalf("outputs = %v", m.Outputs)
	}
}

func TestTaintPropagation(t *testing.T) {
	prog := []Instr{
		{Op: In, Rd: 1, Imm: 0},          // tainted
		{Op: Li, Rd: 2, Imm: 10},         // clean
		{Op: Add, Rd: 3, Rs1: 1, Rs2: 2}, // tainted | clean = tainted
		{Op: St, Rs1: 0, Rs2: 3, Imm: 4}, // memory word 4 tainted
		{Op: Ld, Rd: 5, Rs1: 0, Imm: 4},  // load tainted back
		{Op: Li, Rd: 6, Imm: 7},          // clean overwrite
		{Op: Halt},
	}
	m := New(prog, 8)
	m.TrackTaint = true
	m.TaintedPorts[0] = true
	m.Inputs[0] = []int64{5}
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.RegTags[1]&Tainted == 0 || m.RegTags[3]&Tainted == 0 ||
		m.RegTags[5]&Tainted == 0 {
		t.Fatal("taint did not propagate through alu and memory")
	}
	if m.MemTags[4]&Tainted == 0 {
		t.Fatal("memory tag missing")
	}
	if m.RegTags[6]&Tainted != 0 {
		t.Fatal("Li must clear taint")
	}
	if m.RegTags[2]&Tainted != 0 {
		t.Fatal("clean register got tainted")
	}
}

func TestTaintedJumpViolation(t *testing.T) {
	prog := []Instr{
		{Op: In, Rd: 1, Imm: 0}, // attacker-controlled target
		{Op: Jr, Rs1: 1},
		{Op: Halt},
	}
	m := New(prog, 1)
	m.TrackTaint = true
	m.EnforcePolicy = true
	m.TaintedPorts[0] = true
	m.Inputs[0] = []int64{2}
	err := m.Run(100)
	var v Violation
	if !errors.As(err, &v) || v.Kind != "tainted-jump" {
		t.Fatalf("err = %v, want tainted-jump violation", err)
	}
	if !m.Halted {
		t.Fatal("enforcement should halt the machine")
	}
}

func TestTaintedJumpDetectionOnlyMode(t *testing.T) {
	prog := []Instr{
		{Op: In, Rd: 1, Imm: 0},
		{Op: Jr, Rs1: 1},
		{Op: Halt},
	}
	m := New(prog, 1)
	m.TrackTaint = true
	m.TaintedPorts[0] = true
	m.Inputs[0] = []int64{2}
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(m.Violations) != 1 {
		t.Fatalf("violations = %d, want 1 (detected, not enforced)", len(m.Violations))
	}
}

func TestTaintedLeakViolation(t *testing.T) {
	prog := []Instr{
		{Op: In, Rd: 1, Imm: 0},
		{Op: Out, Rs1: 1, Imm: 9}, // public port
		{Op: Halt},
	}
	m := New(prog, 1)
	m.TrackTaint = true
	m.EnforcePolicy = true
	m.TaintedPorts[0] = true
	m.PublicPorts[9] = true
	m.Inputs[0] = []int64{777}
	err := m.Run(100)
	var v Violation
	if !errors.As(err, &v) || v.Kind != "tainted-leak" {
		t.Fatalf("err = %v, want tainted-leak", err)
	}
}

func TestCleanOutAllowed(t *testing.T) {
	prog := []Instr{
		{Op: Li, Rd: 1, Imm: 3},
		{Op: Out, Rs1: 1, Imm: 9},
		{Op: Halt},
	}
	m := New(prog, 1)
	m.TrackTaint = true
	m.EnforcePolicy = true
	m.PublicPorts[9] = true
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
}

func TestTaintOverheadCounted(t *testing.T) {
	prog := []Instr{
		{Op: Li, Rd: 1, Imm: 1},
		{Op: Li, Rd: 2, Imm: 2},
		{Op: Add, Rd: 3, Rs1: 1, Rs2: 2},
		{Op: Halt},
	}
	base := New(prog, 1)
	_ = base.Run(100)
	ift := New(prog, 1)
	ift.TrackTaint = true
	_ = ift.Run(100)
	if base.Counts["tagop"] != 0 {
		t.Fatal("tag ops without tracking")
	}
	if ift.Counts["tagop"] == 0 {
		t.Fatal("tracking should count tag ops")
	}
	if base.Instructions() != ift.Instructions() {
		t.Fatal("instruction counts must match across modes")
	}
}

// Property: a program of pure ALU ops never faults and executes exactly
// len(prog) instructions (plus halt).
func TestQuickALUPrograms(t *testing.T) {
	f := func(ops []uint8) bool {
		prog := make([]Instr, 0, len(ops)+1)
		for i, o := range ops {
			if len(prog) >= 50 {
				break
			}
			prog = append(prog, Instr{
				Op: []Op{Add, Sub, Mul, And, Or, Xor}[int(o)%6],
				Rd: 1 + i%30, Rs1: i % 31, Rs2: (i + 1) % 31,
			})
		}
		prog = append(prog, Instr{Op: Halt})
		m := New(prog, 1)
		if err := m.Run(1000); err != nil {
			return false
		}
		return m.Instructions() == uint64(len(prog))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpStrings(t *testing.T) {
	if Add.String() != "add" || Jr.String() != "jr" {
		t.Fatal("op names wrong")
	}
	if Op(99).String() != "op(99)" {
		t.Fatal("unknown op format wrong")
	}
}
