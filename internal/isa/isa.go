// Package isa implements a tiny RISC virtual machine with metadata tag
// plumbing. It is the executable substrate for the paper's cross-cutting
// security directions (§2.4): dynamic information-flow tracking, tainted
// input ports, and policy hooks that let the security package reproduce
// buffer-overflow-style attacks and their hardware detection.
//
// The machine is deliberately small — 32 registers, word-addressed memory,
// two-dozen opcodes — because the experiments need relative costs (tag
// propagation overhead, checking energy) rather than ISA realism.
package isa

import (
	"errors"
	"fmt"
)

// Op is an opcode.
type Op int

// The instruction set.
const (
	// Nop does nothing.
	Nop Op = iota
	// Halt stops the machine.
	Halt
	// Add computes Rd = Rs1 + Rs2.
	Add
	// Sub computes Rd = Rs1 - Rs2.
	Sub
	// Mul computes Rd = Rs1 * Rs2.
	Mul
	// Div computes Rd = Rs1 / Rs2 (errors on zero divisor).
	Div
	// And computes Rd = Rs1 & Rs2.
	And
	// Or computes Rd = Rs1 | Rs2.
	Or
	// Xor computes Rd = Rs1 ^ Rs2.
	Xor
	// Addi computes Rd = Rs1 + Imm.
	Addi
	// Li loads Rd = Imm.
	Li
	// Ld loads Rd = Mem[Rs1 + Imm].
	Ld
	// St stores Mem[Rs1 + Imm] = Rs2.
	St
	// Beq branches to Imm when Rs1 == Rs2.
	Beq
	// Bne branches to Imm when Rs1 != Rs2.
	Bne
	// Blt branches to Imm when Rs1 < Rs2.
	Blt
	// Jmp jumps to Imm.
	Jmp
	// Jr jumps to the address in Rs1 (indirect; the IFT-sensitive one).
	Jr
	// In reads a word from input port Imm into Rd; data arrives tainted
	// when the port is untrusted.
	In
	// Out writes Rs1 to output port Imm; tainted writes to public ports
	// violate the leak policy.
	Out
)

var opNames = map[Op]string{
	Nop: "nop", Halt: "halt", Add: "add", Sub: "sub", Mul: "mul", Div: "div",
	And: "and", Or: "or", Xor: "xor", Addi: "addi", Li: "li", Ld: "ld",
	St: "st", Beq: "beq", Bne: "bne", Blt: "blt", Jmp: "jmp", Jr: "jr",
	In: "in", Out: "out",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one decoded instruction.
type Instr struct {
	Op           Op
	Rd, Rs1, Rs2 int
	Imm          int64
}

// Tag is a metadata bitmask carried by every register and memory word.
type Tag uint8

// Tag bits.
const (
	// Tainted marks data derived from untrusted input.
	Tainted Tag = 1 << iota
)

// NumRegs is the architectural register count. Register 0 is hardwired to
// zero (writes ignored), as in most RISCs.
const NumRegs = 32

// Violation describes an IFT policy violation.
type Violation struct {
	Kind string // "tainted-jump", "tainted-leak"
	PC   int
}

func (v Violation) Error() string {
	return fmt.Sprintf("isa: %s at pc=%d", v.Kind, v.PC)
}

// Machine is one VM instance.
type Machine struct {
	Regs    [NumRegs]int64
	RegTags [NumRegs]Tag
	Mem     []int64
	MemTags []Tag
	PC      int
	Halted  bool

	// Prog is the executing program.
	Prog []Instr

	// TrackTaint enables tag propagation and policy checks.
	TrackTaint bool
	// TaintedPorts marks input ports whose data arrives Tainted.
	TaintedPorts map[int64]bool
	// PublicPorts marks output ports where Tainted writes violate policy.
	PublicPorts map[int64]bool
	// EnforcePolicy makes violations abort execution; when false they are
	// only counted (detection-only mode).
	EnforcePolicy bool

	// Inputs supplies successive In values per port.
	Inputs map[int64][]int64
	// Outputs records Out values per port.
	Outputs map[int64][]int64

	// Cycles counts executed instructions plus memory stalls.
	Cycles uint64
	// Counts tallies executed instructions by class: "alu", "mem",
	// "branch", "io", plus "tagop" for tag propagations performed.
	Counts map[string]uint64
	// Violations records detected policy violations.
	Violations []Violation
}

// New creates a machine with memWords words of zeroed memory.
func New(prog []Instr, memWords int) *Machine {
	return &Machine{
		Prog:         prog,
		Mem:          make([]int64, memWords),
		MemTags:      make([]Tag, memWords),
		TaintedPorts: map[int64]bool{},
		PublicPorts:  map[int64]bool{},
		Inputs:       map[int64][]int64{},
		Outputs:      map[int64][]int64{},
		Counts:       map[string]uint64{},
	}
}

// ErrMaxCycles is returned when Run exhausts its cycle budget.
var ErrMaxCycles = errors.New("isa: cycle budget exhausted")

func (m *Machine) setReg(r int, v int64, tag Tag) {
	if r == 0 {
		return
	}
	m.Regs[r] = v
	if m.TrackTaint {
		m.RegTags[r] = tag
		m.Counts["tagop"]++
	}
}

func (m *Machine) tagOf(r int) Tag {
	if !m.TrackTaint {
		return 0
	}
	return m.RegTags[r]
}

// Step executes one instruction. It returns an error on machine faults or
// (when EnforcePolicy) policy violations.
func (m *Machine) Step() error {
	if m.Halted {
		return nil
	}
	if m.PC < 0 || m.PC >= len(m.Prog) {
		return fmt.Errorf("isa: pc %d out of program", m.PC)
	}
	in := m.Prog[m.PC]
	next := m.PC + 1
	m.Cycles++
	switch in.Op {
	case Nop:
		m.Counts["alu"]++
	case Halt:
		m.Halted = true
		m.Counts["alu"]++
	case Add, Sub, Mul, Div, And, Or, Xor:
		m.Counts["alu"]++
		a, b := m.Regs[in.Rs1], m.Regs[in.Rs2]
		var v int64
		switch in.Op {
		case Add:
			v = a + b
		case Sub:
			v = a - b
		case Mul:
			v = a * b
		case Div:
			if b == 0 {
				return fmt.Errorf("isa: divide by zero at pc=%d", m.PC)
			}
			v = a / b
		case And:
			v = a & b
		case Or:
			v = a | b
		case Xor:
			v = a ^ b
		}
		m.setReg(in.Rd, v, m.tagOf(in.Rs1)|m.tagOf(in.Rs2))
	case Addi:
		m.Counts["alu"]++
		m.setReg(in.Rd, m.Regs[in.Rs1]+in.Imm, m.tagOf(in.Rs1))
	case Li:
		m.Counts["alu"]++
		m.setReg(in.Rd, in.Imm, 0)
	case Ld:
		m.Counts["mem"]++
		m.Cycles++ // memory stall
		addr := m.Regs[in.Rs1] + in.Imm
		if addr < 0 || addr >= int64(len(m.Mem)) {
			return fmt.Errorf("isa: load addr %d out of memory at pc=%d", addr, m.PC)
		}
		tag := m.tagOf(in.Rs1)
		if m.TrackTaint {
			tag |= m.MemTags[addr]
		}
		m.setReg(in.Rd, m.Mem[addr], tag)
	case St:
		m.Counts["mem"]++
		m.Cycles++
		addr := m.Regs[in.Rs1] + in.Imm
		if addr < 0 || addr >= int64(len(m.Mem)) {
			return fmt.Errorf("isa: store addr %d out of memory at pc=%d", addr, m.PC)
		}
		m.Mem[addr] = m.Regs[in.Rs2]
		if m.TrackTaint {
			m.MemTags[addr] = m.tagOf(in.Rs2) | m.tagOf(in.Rs1)
			m.Counts["tagop"]++
		}
	case Beq, Bne, Blt:
		m.Counts["branch"]++
		a, b := m.Regs[in.Rs1], m.Regs[in.Rs2]
		taken := false
		switch in.Op {
		case Beq:
			taken = a == b
		case Bne:
			taken = a != b
		case Blt:
			taken = a < b
		}
		if taken {
			next = int(in.Imm)
		}
	case Jmp:
		m.Counts["branch"]++
		next = int(in.Imm)
	case Jr:
		m.Counts["branch"]++
		if m.TrackTaint && m.tagOf(in.Rs1)&Tainted != 0 {
			v := Violation{Kind: "tainted-jump", PC: m.PC}
			m.Violations = append(m.Violations, v)
			if m.EnforcePolicy {
				m.Halted = true
				return v
			}
		}
		next = int(m.Regs[in.Rs1])
	case In:
		m.Counts["io"]++
		vals := m.Inputs[in.Imm]
		var v int64
		if len(vals) > 0 {
			v = vals[0]
			m.Inputs[in.Imm] = vals[1:]
		}
		tag := Tag(0)
		if m.TaintedPorts[in.Imm] {
			tag = Tainted
		}
		m.setReg(in.Rd, v, tag)
	case Out:
		m.Counts["io"]++
		if m.TrackTaint && m.PublicPorts[in.Imm] && m.tagOf(in.Rs1)&Tainted != 0 {
			v := Violation{Kind: "tainted-leak", PC: m.PC}
			m.Violations = append(m.Violations, v)
			if m.EnforcePolicy {
				m.Halted = true
				return v
			}
		}
		m.Outputs[in.Imm] = append(m.Outputs[in.Imm], m.Regs[in.Rs1])
	default:
		return fmt.Errorf("isa: illegal opcode %v at pc=%d", in.Op, m.PC)
	}
	m.PC = next
	return nil
}

// Run executes until Halt, a fault, or maxCycles.
func (m *Machine) Run(maxCycles uint64) error {
	for !m.Halted {
		if m.Cycles >= maxCycles {
			return ErrMaxCycles
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Instructions returns total executed instructions across classes
// (excluding tag operations).
func (m *Machine) Instructions() uint64 {
	return m.Counts["alu"] + m.Counts["mem"] + m.Counts["branch"] + m.Counts["io"]
}
