package accel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/energy"
)

func TestSpecializationFactorIs100xClass(t *testing.T) {
	tbl := energy.Table45()
	f := SpecializationFactor(tbl, tbl.IntOp)
	if f < 50 || f > 300 {
		t.Fatalf("int specialization = %v, want ~100", f)
	}
}

func TestCoveredSpeedupLimits(t *testing.T) {
	// Full coverage: the accelerator's raw factor.
	if s := CoveredSpeedup(1, 100); math.Abs(s-100) > 1e-9 {
		t.Fatalf("full coverage = %v", s)
	}
	// No coverage: 1.
	if s := CoveredSpeedup(0, 100); math.Abs(s-1) > 1e-9 {
		t.Fatalf("no coverage = %v", s)
	}
	// 90% coverage at infinite-ish speedup caps at 10x: coverage rules.
	if s := CoveredSpeedup(0.9, 1e9); math.Abs(s-10) > 1e-3 {
		t.Fatalf("90%% coverage cap = %v, want ~10", s)
	}
}

func TestCoveredEnergyGain(t *testing.T) {
	// The paper's coverage problem: a 100x-efficient accelerator covering
	// half the work yields barely 2x chip-level gain.
	g := CoveredEnergyGain(0.5, 100)
	if g < 1.9 || g > 2.1 {
		t.Fatalf("half-coverage energy gain = %v, want ~2", g)
	}
}

func TestCoverageChecks(t *testing.T) {
	for i, f := range []func(){
		func() { CoveredSpeedup(-0.1, 10) },
		func() { CoveredSpeedup(1.1, 10) },
		func() { CoveredSpeedup(0.5, 0) },
		func() { CoveredEnergyGain(0.5, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: covered gains are monotone in coverage and bounded by the raw
// factor.
func TestQuickCoveredMonotone(t *testing.T) {
	f := func(c1Raw, c2Raw uint8, sRaw uint16) bool {
		c1 := float64(c1Raw) / 255
		c2 := float64(c2Raw) / 255
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		s := 1 + float64(sRaw)
		g1, g2 := CoveredSpeedup(c1, s), CoveredSpeedup(c2, s)
		return g1 <= g2+1e-9 && g2 <= s+1e-9 && g1 >= 1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNREAmortization(t *testing.T) {
	pts := StandardImplPoints()
	// At tiny volume, GP (zero NRE) or FPGA wins; at huge volume, ASIC.
	low := CheapestAt(pts, 100)
	if low.Name == "asic" {
		t.Fatalf("ASIC should not win at volume 100 (got %s)", low.Name)
	}
	high := CheapestAt(pts, 1e7)
	if high.Name != "asic" {
		t.Fatalf("ASIC should win at volume 1e7 (got %s)", high.Name)
	}
}

func TestCostPerUnitShape(t *testing.T) {
	asic := StandardImplPoints()[0]
	if asic.CostPerUnit(1e3) <= asic.CostPerUnit(1e6) {
		t.Fatal("per-unit cost must fall with volume")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("volume 0 did not panic")
		}
	}()
	asic.CostPerUnit(0)
}

func TestCrossoverVolume(t *testing.T) {
	pts := StandardImplPoints()
	asic, fpga := pts[0], pts[2]
	v := CrossoverVolume(asic, fpga)
	if v <= 0 || math.IsInf(v, 1) {
		t.Fatalf("asic/fpga crossover = %v", v)
	}
	// At the crossover the costs match.
	if math.Abs(asic.CostPerUnit(v)-fpga.CostPerUnit(v)) > 1e-6 {
		t.Fatal("costs should match at crossover")
	}
	// Crossover in the right direction: below it FPGA cheaper.
	if asic.CostPerUnit(v/2) <= fpga.CostPerUnit(v/2) {
		t.Fatal("FPGA should be cheaper below crossover")
	}
}

func TestCrossoverNever(t *testing.T) {
	a := ImplPoint{NRE: 10, UnitCost: 10}
	b := ImplPoint{NRE: 0, UnitCost: 5}
	if !math.IsInf(CrossoverVolume(a, b), 1) {
		t.Fatal("a never beats b; crossover should be +Inf")
	}
}

func TestDarkSiliconAllocator(t *testing.T) {
	cands := []Candidate{
		{Name: "bigcore", AreaBCE: 16, PowerW: 8, Throughput: 4, MaxInstances: 2},
		{Name: "little", AreaBCE: 1, PowerW: 0.5, Throughput: 0.8},
		{Name: "conv-accel", AreaBCE: 4, PowerW: 1, Throughput: 10, MaxInstances: 4},
	}
	a := AllocateDarkSilicon(cands, 128, 20)
	// The accelerator has the best perf/W: all 4 instances placed.
	if a.Counts["conv-accel"] != 4 {
		t.Fatalf("conv-accel count = %d, want 4", a.Counts["conv-accel"])
	}
	if a.PowerUsed > 20 || a.AreaUsed > 128 {
		t.Fatal("budgets violated")
	}
	if a.Throughput <= 0 {
		t.Fatal("no throughput allocated")
	}
}

func TestDarkSiliconPowerLimited(t *testing.T) {
	// Power budget far below what the area could hold: most area dark.
	cands := []Candidate{{Name: "core", AreaBCE: 1, PowerW: 1, Throughput: 1}}
	a := AllocateDarkSilicon(cands, 1000, 50)
	if a.Counts["core"] != 50 {
		t.Fatalf("cores = %d, want 50 (power-capped)", a.Counts["core"])
	}
	if df := a.DarkFraction(1000); df < 0.94 {
		t.Fatalf("dark fraction = %v, want ~0.95", df)
	}
}

// Property: allocator never violates budgets.
func TestQuickAllocatorBudgets(t *testing.T) {
	f := func(areaRaw, powerRaw uint8) bool {
		area := float64(areaRaw%100) + 1
		power := float64(powerRaw%50) + 1
		cands := []Candidate{
			{Name: "a", AreaBCE: 3, PowerW: 2, Throughput: 5},
			{Name: "b", AreaBCE: 1, PowerW: 1, Throughput: 1},
		}
		al := AllocateDarkSilicon(cands, area, power)
		return al.AreaUsed <= area+1e-9 && al.PowerUsed <= power+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
