// Package accel models hardware specialization: accelerator
// speedup/efficiency specs, coverage-limited chip-level gains (Amdahl for
// accelerators), non-recurring-engineering (NRE) amortization across
// ASIC/FPGA/CGRA implementation points, and a dark-silicon area/power
// allocator.
//
// It quantifies the paper's §2.2 "Enabling Specialization" claims: ~100×
// energy efficiency from stripping general-purpose overheads, limited today
// by narrow coverage and prohibitive NRE.
package accel

import (
	"fmt"
	"math"

	"repro/internal/energy"
	"repro/internal/units"
)

// Accelerator describes a fixed-function or semi-programmable unit.
type Accelerator struct {
	// Name identifies the unit.
	Name string
	// Kernel is the workload kernel it accelerates.
	Kernel string
	// Speedup is throughput versus one general-purpose core on Kernel.
	Speedup float64
	// EnergyEff is energy-efficiency gain versus the GP core on Kernel
	// (ops/J ratio).
	EnergyEff float64
	// AreaBCE is area in base-core equivalents.
	AreaBCE float64
}

// SpecializationFactor computes the energy-efficiency gain of a hardwired
// datapath over a general-purpose instruction for an op of the given
// datapath energy, from the shared energy table: everything the pipeline
// spends around the op is overhead the accelerator strips.
func SpecializationFactor(tbl energy.Table, op units.Energy) float64 {
	return float64(tbl.GPInstruction(op)) / float64(tbl.AccelOp(op))
}

// CoveredSpeedup is the accelerator-Amdahl law: with coverage c of the
// workload accelerated at factor s (rest on the GP core at 1), overall
// speedup is 1/((1-c) + c/s).
func CoveredSpeedup(c, s float64) float64 {
	checkCoverage(c)
	if s <= 0 {
		panic("accel: non-positive speedup")
	}
	return 1 / ((1 - c) + c/s)
}

// CoveredEnergyGain is the chip-level energy-efficiency gain with coverage
// c accelerated at energy-efficiency factor e.
func CoveredEnergyGain(c, e float64) float64 {
	checkCoverage(c)
	if e <= 0 {
		panic("accel: non-positive efficiency")
	}
	return 1 / ((1 - c) + c/e)
}

func checkCoverage(c float64) {
	if c < 0 || c > 1 {
		panic(fmt.Sprintf("accel: coverage %g outside [0,1]", c))
	}
}

// ImplPoint is one hardware implementation strategy for a function.
type ImplPoint struct {
	// Name: "asic", "fpga", "cgra", "gp".
	Name string
	// NRE is the one-time design/verify/mask cost in dollars.
	NRE float64
	// UnitCost is the marginal manufacturing cost per part in dollars.
	UnitCost float64
	// EnergyEff is energy efficiency versus the GP core (ops/J ratio).
	EnergyEff float64
}

// StandardImplPoints returns the modelled implementation points. The
// constants encode the paper's qualitative ordering: full-custom ASICs are
// most efficient with prohibitive NRE; FPGAs slash NRE but pay an
// order-of-magnitude efficiency penalty to fine-grain reconfigurability;
// CGRAs (the paper's "coarser-grain semi-programmable building blocks")
// sit between; the GP core is the zero-NRE baseline.
func StandardImplPoints() []ImplPoint {
	return []ImplPoint{
		{Name: "asic", NRE: 3e7, UnitCost: 5, EnergyEff: 100},
		{Name: "cgra", NRE: 3e6, UnitCost: 8, EnergyEff: 40},
		{Name: "fpga", NRE: 2e5, UnitCost: 30, EnergyEff: 10},
		{Name: "gp", NRE: 0, UnitCost: 20, EnergyEff: 1},
	}
}

// CostPerUnit amortizes NRE over a production volume.
func (p ImplPoint) CostPerUnit(volume float64) float64 {
	if volume <= 0 {
		panic("accel: non-positive volume")
	}
	return p.NRE/volume + p.UnitCost
}

// CheapestAt returns the implementation point with the lowest per-unit cost
// at the given volume (ties break toward higher efficiency).
func CheapestAt(points []ImplPoint, volume float64) ImplPoint {
	best := points[0]
	for _, p := range points[1:] {
		c, bc := p.CostPerUnit(volume), best.CostPerUnit(volume)
		if c < bc || (c == bc && p.EnergyEff > best.EnergyEff) {
			best = p
		}
	}
	return best
}

// CrossoverVolume returns the volume at which a's per-unit cost drops to
// b's, assuming a has higher NRE and lower unit cost; +Inf if never.
func CrossoverVolume(a, b ImplPoint) float64 {
	dn := a.NRE - b.NRE
	dc := b.UnitCost - a.UnitCost
	if dc <= 0 {
		return math.Inf(1)
	}
	v := dn / dc
	if v < 0 {
		return 0
	}
	return v
}
