package accel

import (
	"sort"
)

// Candidate is a unit competing for dark-silicon area: a core or
// accelerator with area, power, and the throughput it contributes on the
// target workload mix.
type Candidate struct {
	Name string
	// AreaBCE and PowerW are per-instance costs.
	AreaBCE float64
	PowerW  float64
	// Throughput is per-instance delivered ops/s on the workload mix.
	Throughput float64
	// MaxInstances caps how many can be placed (0 = unlimited by count).
	MaxInstances int
}

// Allocation is the chosen instance counts.
type Allocation struct {
	Counts     map[string]int
	AreaUsed   float64
	PowerUsed  float64
	Throughput float64
}

// AllocateDarkSilicon greedily fills an area budget under a power budget
// with the candidates of best throughput-per-watt-per-area, modelling the
// post-Dennard design problem: area is abundant, power is not, so the chip
// fills with efficient specialized units and leaves the rest dark.
func AllocateDarkSilicon(cands []Candidate, areaBudget, powerBudget float64) Allocation {
	// Sort by throughput per watt (primary) then per area.
	order := make([]Candidate, len(cands))
	copy(order, cands)
	sort.Slice(order, func(i, j int) bool {
		ti := order[i].Throughput / order[i].PowerW
		tj := order[j].Throughput / order[j].PowerW
		if ti != tj {
			return ti > tj
		}
		return order[i].Throughput/order[i].AreaBCE > order[j].Throughput/order[j].AreaBCE
	})
	alloc := Allocation{Counts: make(map[string]int)}
	for _, c := range order {
		for {
			if c.MaxInstances > 0 && alloc.Counts[c.Name] >= c.MaxInstances {
				break
			}
			if alloc.AreaUsed+c.AreaBCE > areaBudget ||
				alloc.PowerUsed+c.PowerW > powerBudget {
				break
			}
			alloc.Counts[c.Name]++
			alloc.AreaUsed += c.AreaBCE
			alloc.PowerUsed += c.PowerW
			alloc.Throughput += c.Throughput
		}
	}
	return alloc
}

// DarkFraction returns the fraction of the area budget left unpowered.
func (a Allocation) DarkFraction(areaBudget float64) float64 {
	if areaBudget <= 0 {
		return 0
	}
	return 1 - a.AreaUsed/areaBudget
}
