// Package httpapi is the shared wire contract of the HTTP surface: the
// X-Arch21-* QoS header parse/forward logic that the engine handlers,
// the routing front-end, and the load generator's HTTP target previously
// each reimplemented, the hedged-attempt marker, the versioned-route
// mounting helper (/v1 plus legacy aliases), and the one JSON error
// envelope every error path answers with. Keeping it in one package
// means a header or error-shape change lands on every face of the API at
// once instead of drifting across three copies.
package httpapi

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/admit"
)

// HeaderHedge marks a hedged backup attempt on the wire ("1"). A replica
// serves it like any request — memoization makes the duplicate cheap —
// but operators can pick hedge traffic out of access logs, and a future
// hop can decline to re-hedge an already-hedged request.
const HeaderHedge = "X-Arch21-Hedge"

// Binary result transport (?format=bin): the response body is the raw
// core.Result codec payload exactly as memoized — served zero-copy from
// the tier-1 slab — and the envelope fields JSON would carry ride in
// these response headers instead. The routing front-end's backend client
// uses this so a proxied warm hit is one slab read plus one body copy,
// never a decode/re-encode round trip.
const (
	// HeaderKey echoes the cache key the result is memoized under.
	HeaderKey = "X-Arch21-Key"
	// HeaderCacheHit is "1" when the result came straight from the
	// replica's cache.
	HeaderCacheHit = "X-Arch21-Cache-Hit"
	// HeaderShared is "1" when the request piggybacked on another
	// caller's in-flight execution.
	HeaderShared = "X-Arch21-Shared"
	// HeaderParam carries one resolved "name=value" parameter assignment
	// per header value (repeated, like the ?param query key it mirrors).
	HeaderParam = "X-Arch21-Param"
)

type hedgeKey struct{}

// WithHedge tags a context as a hedged backup attempt.
func WithHedge(ctx context.Context) context.Context {
	return context.WithValue(ctx, hedgeKey{}, true)
}

// IsHedge reports whether the context carries the hedge marker.
func IsHedge(ctx context.Context) bool {
	v, _ := ctx.Value(hedgeKey{}).(bool)
	return v
}

// RequestContext derives a request's QoS context from its headers: the
// class from X-Arch21-Class, the tenant identity from X-Arch21-Tenant
// (free-form here; the engine's bounded books fold unknown tenants into
// "other"), the hedge marker from X-Arch21-Hedge, and the remaining
// deadline budget from X-Arch21-Deadline-MS, layered onto the request's
// own cancellation. Shared by the engine's handlers and the routing
// front-end so both faces of the API speak the same header contract. The
// returned cancel must be called when the request finishes.
func RequestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	class, err := admit.ParseClass(r.Header.Get(admit.HeaderClass))
	if err != nil {
		return nil, nil, err
	}
	ctx := admit.WithClass(r.Context(), class)
	tenant, err := admit.ParseTenant(r.Header.Get(admit.HeaderTenant))
	if err != nil {
		return nil, nil, err
	}
	ctx = admit.WithTenant(ctx, tenant)
	if r.Header.Get(HeaderHedge) != "" {
		ctx = WithHedge(ctx)
	}
	if h := r.Header.Get(admit.HeaderDeadlineMS); h != "" {
		ms, err := strconv.ParseFloat(h, 64)
		if err != nil || math.IsNaN(ms) || math.IsInf(ms, 0) || ms <= 0 {
			return nil, nil, fmt.Errorf("httpapi: bad %s header %q (want a positive millisecond budget)",
				admit.HeaderDeadlineMS, h)
		}
		ctx, cancel := context.WithTimeout(ctx, time.Duration(ms*float64(time.Millisecond)))
		return ctx, cancel, nil
	}
	return ctx, func() {}, nil
}

// Forward stamps the context's QoS envelope onto an outbound request:
// the class in X-Arch21-Class, the tenant in X-Arch21-Tenant, the hedge
// marker in X-Arch21-Hedge, and the remaining deadline — decremented by
// hopBudget, the slice this hop keeps for transfer and decode — in
// X-Arch21-Deadline-MS. When the budget cannot survive the hop it
// returns an *admit.ShedError with Deadline set: a deadline shed decided
// at the sender instead of burning the wire.
func Forward(req *http.Request, ctx context.Context, hopBudget time.Duration) error {
	req.Header.Set(admit.HeaderClass, admit.ClassFrom(ctx).String())
	if tenant := admit.TenantFrom(ctx); tenant != "" {
		req.Header.Set(admit.HeaderTenant, tenant)
	}
	if IsHedge(ctx) {
		req.Header.Set(HeaderHedge, "1")
	}
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl) - hopBudget
		if remaining <= 0 {
			return &admit.ShedError{
				Class: admit.ClassFrom(ctx), Deadline: true, RetryAfter: hopBudget}
		}
		req.Header.Set(admit.HeaderDeadlineMS,
			strconv.FormatFloat(math.Ceil(remaining.Seconds()*1e3), 'f', -1, 64))
	}
	return nil
}

// DrainClose consumes what remains of an HTTP response body (bounded)
// and closes it. net/http only returns a connection to the keep-alive
// pool when its body has been read to EOF — closing an undrained body
// tears the connection down, so every exit path that skips part of a
// response (error statuses, partial decodes) must drain through here or
// the idle pool silently degrades to a dial per request.
func DrainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 64<<10))
	_ = body.Close()
}

// Mount registers a handler under both its legacy pattern and the /v1
// alias ("GET /run/{id}" also serves as "GET /v1/run/{id}"). The
// versioned paths are the documented surface; the unversioned ones stay
// for clients that predate /v1.
func Mount(mux *http.ServeMux, pattern string, h http.Handler) {
	mux.Handle(pattern, h)
	if method, path, ok := strings.Cut(pattern, " "); ok && strings.HasPrefix(path, "/") {
		mux.Handle(method+" /v1"+path, h)
		return
	}
	mux.Handle("/v1"+pattern, h)
}

// MountFunc is Mount for a plain handler func.
func MountFunc(mux *http.ServeMux, pattern string, h func(http.ResponseWriter, *http.Request)) {
	Mount(mux, pattern, http.HandlerFunc(h))
}
