package httpapi

// The multi-request wire contract behind POST /batch: one varint-framed
// request body carrying many (experiment, assignment, class) entries,
// answered by one varint-framed response carrying a per-entry outcome
// word plus either the memoized result payload (served zero-copy from
// the replica's slab) or an (HTTP status, message) error. The frame
// replaces the per-request X-Arch21-* response headers: a batch of 64
// warm hits costs one HTTP round trip and one header block instead of
// 64, which is what lets routed throughput track engine throughput (the
// "communication dominates computation" amortization the batched data
// plane exists for).
//
// Both decoders follow core.DecodeResult's hardening discipline: every
// length is clamped against the bytes actually remaining before any
// allocation (a hostile count cannot pre-allocate gigabytes), and a
// payload with trailing bytes after the last entry is rejected as
// corrupt rather than silently accepted. FuzzBatchFrame drives both.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/admit"
)

// Frame magics: four bytes + a version byte open every batch payload, so
// a frame fed to the wrong decoder (or a truncated/garbage body) fails
// immediately and loudly instead of mis-parsing.
const (
	// BatchRequestMagic opens a batch request frame.
	BatchRequestMagic = "A21B"
	// BatchResponseMagic opens a batch response frame.
	BatchResponseMagic = "A21R"
	// BatchVersion is the frame version both magics carry.
	BatchVersion = 1
)

// MaxBatchEntries bounds one frame's entry count — same order as
// sweep.MaxPoints, so a whole sweep grid fits in frames but a hostile
// count cannot queue unbounded work from one body.
const MaxBatchEntries = 4096

// MaxBatchBytes bounds a batch request body (http.MaxBytesReader cap in
// the handlers).
const MaxBatchBytes = 8 << 20

// ErrBatchFrame marks a batch frame that failed to decode.
var ErrBatchFrame = errors.New("httpapi: bad batch frame")

// BatchEntry is one request in a batch frame: the experiment ID, the
// QoS class the entry is served and accounted under, and the parameter
// assignments in "name=value" wire form (the same strings the ?param
// query key and X-Arch21-Param header carry).
type BatchEntry struct {
	ID     string
	Class  admit.Class
	Params []string
}

// BatchResult is one entry's outcome in a batch response frame. OK
// entries carry the cache key and the raw core.Result codec payload;
// failed entries carry the HTTP status and message the entry would have
// answered with as a single request, so the caller can apply exactly
// the per-status semantics (shed vs client error vs replica failure) it
// applies to single-request responses.
type BatchResult struct {
	OK       bool
	CacheHit bool
	Shared   bool
	// Key and Payload are set when OK. Payload aliases the decoded
	// buffer — callers must not modify it and must copy it to outlive
	// the buffer.
	Key     string
	Payload []byte
	// Status and Msg are set when !OK.
	Status int
	Msg    string
}

// Outcome word bit layout (one byte per entry).
const (
	batchOK       = 0x01
	batchCacheHit = 0x02
	batchShared   = 0x04
)

// bufPool recycles batch encode/decode scratch buffers across requests;
// the routed hot loop would otherwise allocate a fresh frame buffer per
// flush. Buffers are passed as *[]byte so the pool never allocates on
// Put (staticcheck SA6002).
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuffer takes a reusable byte buffer from the shared pool. The
// caller appends into (*buf)[:0] and must return it with PutBuffer once
// nothing aliases it.
func GetBuffer() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuffer returns a GetBuffer buffer to the pool. Callers must be
// sure no decoded view (BatchResult.Payload, BatchEntry fields) still
// aliases it.
func PutBuffer(buf *[]byte) { bufPool.Put(buf) }

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

// AppendBatchRequest appends the request frame for entries to dst and
// returns the extended slice.
func AppendBatchRequest(dst []byte, entries []BatchEntry) []byte {
	dst = append(dst, BatchRequestMagic...)
	dst = append(dst, BatchVersion)
	dst = appendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = appendUvarint(dst, uint64(len(e.ID)))
		dst = append(dst, e.ID...)
		dst = append(dst, byte(e.Class))
		dst = appendUvarint(dst, uint64(len(e.Params)))
		for _, p := range e.Params {
			dst = appendUvarint(dst, uint64(len(p)))
			dst = append(dst, p...)
		}
	}
	return dst
}

// AppendBatchResponse appends the response frame for results to dst and
// returns the extended slice.
func AppendBatchResponse(dst []byte, results []BatchResult) []byte {
	dst = append(dst, BatchResponseMagic...)
	dst = append(dst, BatchVersion)
	dst = appendUvarint(dst, uint64(len(results)))
	for _, r := range results {
		var word byte
		if r.OK {
			word |= batchOK
		}
		if r.CacheHit {
			word |= batchCacheHit
		}
		if r.Shared {
			word |= batchShared
		}
		dst = append(dst, word)
		if r.OK {
			dst = appendUvarint(dst, uint64(len(r.Key)))
			dst = append(dst, r.Key...)
			dst = appendUvarint(dst, uint64(len(r.Payload)))
			dst = append(dst, r.Payload...)
		} else {
			dst = appendUvarint(dst, uint64(r.Status))
			dst = appendUvarint(dst, uint64(len(r.Msg)))
			dst = append(dst, r.Msg...)
		}
	}
	return dst
}

// frameReader walks one frame with clamped reads.
type frameReader struct {
	buf []byte
	off int
}

func (fr *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(fr.buf[fr.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint at offset %d", ErrBatchFrame, fr.off)
	}
	fr.off += n
	return v, nil
}

// chunk reads one length-prefixed byte run, clamping the claimed length
// against the bytes actually remaining before touching them.
func (fr *frameReader) chunk() ([]byte, error) {
	n, err := fr.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(fr.buf)-fr.off) {
		return nil, fmt.Errorf("%w: truncated chunk at offset %d", ErrBatchFrame, fr.off)
	}
	c := fr.buf[fr.off : fr.off+int(n)]
	fr.off += int(n)
	return c, nil
}

func (fr *frameReader) byte() (byte, error) {
	if fr.off >= len(fr.buf) {
		return 0, fmt.Errorf("%w: truncated at offset %d", ErrBatchFrame, fr.off)
	}
	b := fr.buf[fr.off]
	fr.off++
	return b, nil
}

// header checks the magic + version prologue and the entry count.
func (fr *frameReader) header(magic string) (int, error) {
	if len(fr.buf) < len(magic)+1 || string(fr.buf[:len(magic)]) != magic {
		return 0, fmt.Errorf("%w: missing %s magic", ErrBatchFrame, magic)
	}
	if v := fr.buf[len(magic)]; v != BatchVersion {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrBatchFrame, v)
	}
	fr.off = len(magic) + 1
	count, err := fr.uvarint()
	if err != nil {
		return 0, err
	}
	if count > MaxBatchEntries {
		return 0, fmt.Errorf("%w: %d entries exceeds the %d cap", ErrBatchFrame, count, MaxBatchEntries)
	}
	return int(count), nil
}

// clampPrealloc bounds a pre-allocation by what the remaining bytes
// could possibly encode (every entry costs at least minBytes), so a
// hostile count cannot allocate ahead of the data backing it.
func (fr *frameReader) clampPrealloc(count, minBytes int) int {
	if rem := (len(fr.buf) - fr.off) / minBytes; count > rem {
		return rem
	}
	return count
}

// DecodeBatchRequest parses a request frame. Decoded strings are copies;
// the input buffer may be reused (pooled) once the call returns.
func DecodeBatchRequest(buf []byte) ([]BatchEntry, error) {
	fr := &frameReader{buf: buf}
	count, err := fr.header(BatchRequestMagic)
	if err != nil {
		return nil, err
	}
	// Minimum entry: 1-byte ID length + 1-byte class + 1-byte param count.
	entries := make([]BatchEntry, 0, fr.clampPrealloc(count, 3))
	for i := 0; i < count; i++ {
		id, err := fr.chunk()
		if err != nil {
			return nil, err
		}
		cb, err := fr.byte()
		if err != nil {
			return nil, err
		}
		if int(cb) >= len(admit.Classes()) {
			return nil, fmt.Errorf("%w: entry %d: unknown class byte %d", ErrBatchFrame, i, cb)
		}
		np, err := fr.uvarint()
		if err != nil {
			return nil, err
		}
		if np > uint64(len(fr.buf)-fr.off) { // each param costs >= 1 byte
			return nil, fmt.Errorf("%w: entry %d: truncated params", ErrBatchFrame, i)
		}
		var params []string
		if np > 0 {
			params = make([]string, 0, np)
			for j := uint64(0); j < np; j++ {
				p, err := fr.chunk()
				if err != nil {
					return nil, err
				}
				params = append(params, string(p))
			}
		}
		entries = append(entries, BatchEntry{ID: string(id), Class: admit.Class(cb), Params: params})
	}
	if fr.off != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes after %d entries", ErrBatchFrame, len(buf)-fr.off, count)
	}
	return entries, nil
}

// DecodeBatchResponse parses a response frame. Key and Msg are copies;
// Payload aliases buf, so buf must outlive every use of the results (the
// HTTP client path reads the body into a fresh, non-pooled buffer for
// exactly this reason).
func DecodeBatchResponse(buf []byte) ([]BatchResult, error) {
	fr := &frameReader{buf: buf}
	count, err := fr.header(BatchResponseMagic)
	if err != nil {
		return nil, err
	}
	// Minimum entry: 1-byte word + two 1-byte varints.
	results := make([]BatchResult, 0, fr.clampPrealloc(count, 3))
	for i := 0; i < count; i++ {
		word, err := fr.byte()
		if err != nil {
			return nil, err
		}
		r := BatchResult{
			OK:       word&batchOK != 0,
			CacheHit: word&batchCacheHit != 0,
			Shared:   word&batchShared != 0,
		}
		if r.OK {
			key, err := fr.chunk()
			if err != nil {
				return nil, err
			}
			payload, err := fr.chunk()
			if err != nil {
				return nil, err
			}
			r.Key, r.Payload = string(key), payload
		} else {
			status, err := fr.uvarint()
			if err != nil {
				return nil, err
			}
			if status < 400 || status > 599 {
				return nil, fmt.Errorf("%w: entry %d: error status %d outside 400..599", ErrBatchFrame, i, status)
			}
			msg, err := fr.chunk()
			if err != nil {
				return nil, err
			}
			r.Status, r.Msg = int(status), string(msg)
		}
		results = append(results, r)
	}
	if fr.off != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes after %d entries", ErrBatchFrame, len(buf)-fr.off, count)
	}
	return results, nil
}
