package httpapi

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/admit"
)

func TestBatchRequestRoundTrip(t *testing.T) {
	entries := []BatchEntry{
		{ID: "E7", Class: admit.Interactive, Params: []string{"f=0.95", "bces=64"}},
		{ID: "E1", Class: admit.Batch, Params: nil},
		{ID: "", Class: admit.Batch, Params: []string{""}},
	}
	frame := AppendBatchRequest(nil, entries)
	got, err := DecodeBatchRequest(frame)
	if err != nil {
		t.Fatalf("DecodeBatchRequest: %v", err)
	}
	if len(got) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(got), len(entries))
	}
	for i, e := range entries {
		g := got[i]
		if g.ID != e.ID || g.Class != e.Class || len(g.Params) != len(e.Params) {
			t.Fatalf("entry %d: got %+v, want %+v", i, g, e)
		}
		for j := range e.Params {
			if g.Params[j] != e.Params[j] {
				t.Fatalf("entry %d param %d: got %q, want %q", i, j, g.Params[j], e.Params[j])
			}
		}
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	results := []BatchResult{
		{OK: true, CacheHit: true, Key: "E7?bces=64&f=0.95", Payload: []byte{1, 2, 3}},
		{OK: true, Shared: true, Key: "E1", Payload: nil},
		{Status: 404, Msg: "unknown experiment"},
		{Status: 503, Msg: ""},
	}
	frame := AppendBatchResponse(nil, results)
	got, err := DecodeBatchResponse(frame)
	if err != nil {
		t.Fatalf("DecodeBatchResponse: %v", err)
	}
	if len(got) != len(results) {
		t.Fatalf("got %d results, want %d", len(got), len(results))
	}
	for i, r := range results {
		g := got[i]
		if g.OK != r.OK || g.CacheHit != r.CacheHit || g.Shared != r.Shared ||
			g.Key != r.Key || g.Status != r.Status || g.Msg != r.Msg ||
			!bytes.Equal(g.Payload, r.Payload) {
			t.Fatalf("result %d: got %+v, want %+v", i, g, r)
		}
	}
}

func TestBatchRequestRejectsTrailingBytes(t *testing.T) {
	frame := AppendBatchRequest(nil, []BatchEntry{{ID: "E7"}})
	if _, err := DecodeBatchRequest(append(frame, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	frame = AppendBatchResponse(nil, []BatchResult{{OK: true, Key: "k"}})
	if _, err := DecodeBatchResponse(append(frame, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestBatchRequestRejectsBadFrames(t *testing.T) {
	good := AppendBatchRequest(nil, []BatchEntry{{ID: "E7", Params: []string{"f=0.9"}}})
	cases := map[string][]byte{
		"empty":         nil,
		"short":         []byte("A2"),
		"wrong magic":   []byte("A21Rxxxx"),
		"bad version":   append([]byte(BatchRequestMagic), 99),
		"truncated":     good[:len(good)-2],
		"hostile count": append(append([]byte(BatchRequestMagic), BatchVersion), 0xFF, 0xFF, 0xFF, 0x7F),
	}
	for name, frame := range cases {
		if _, err := DecodeBatchRequest(frame); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// A class byte outside the admit vocabulary must be rejected, not
	// silently folded into a class.
	bad := append([]byte(BatchRequestMagic), BatchVersion)
	bad = appendUvarint(bad, 1)
	bad = appendUvarint(bad, 2)
	bad = append(bad, "E7"...)
	bad = append(bad, 7) // class byte
	bad = appendUvarint(bad, 0)
	if _, err := DecodeBatchRequest(bad); err == nil || !strings.Contains(err.Error(), "class") {
		t.Errorf("bad class byte: err = %v, want class rejection", err)
	}
}

func TestBatchResponseRejectsBadStatus(t *testing.T) {
	frame := append([]byte(BatchResponseMagic), BatchVersion)
	frame = appendUvarint(frame, 1)
	frame = append(frame, 0)          // word: !OK
	frame = appendUvarint(frame, 200) // not an error status
	frame = appendUvarint(frame, 0)
	if _, err := DecodeBatchResponse(frame); err == nil {
		t.Fatal("status 200 on an error entry accepted")
	}
}

// FuzzBatchFrame drives both frame decoders over arbitrary bytes: no
// panic, no runaway allocation, and — the codec invariant — anything
// that decodes must survive an encode/decode round trip unchanged.
// (Byte-exact canonicality is not asserted: binary.Uvarint accepts
// non-minimal varints the encoder never emits.)
func FuzzBatchFrame(f *testing.F) {
	f.Add(AppendBatchRequest(nil, []BatchEntry{
		{ID: "E7", Class: admit.Interactive, Params: []string{"f=0.95", "bces=64"}},
		{ID: "E1", Class: admit.Batch},
	}))
	f.Add(AppendBatchResponse(nil, []BatchResult{
		{OK: true, CacheHit: true, Key: "E7", Payload: []byte{9, 9}},
		{Status: 503, Msg: "queue full"},
	}))
	f.Add([]byte(BatchRequestMagic))
	f.Add([]byte(BatchResponseMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		if entries, err := DecodeBatchRequest(data); err == nil {
			again, err := DecodeBatchRequest(AppendBatchRequest(nil, entries))
			if err != nil {
				t.Fatalf("re-encoded request frame failed to decode: %v", err)
			}
			if len(again) != len(entries) {
				t.Fatalf("round trip changed entry count: %d -> %d", len(entries), len(again))
			}
			for i := range entries {
				if again[i].ID != entries[i].ID || again[i].Class != entries[i].Class ||
					strings.Join(again[i].Params, "\x00") != strings.Join(entries[i].Params, "\x00") {
					t.Fatalf("entry %d changed in round trip: %+v -> %+v", i, entries[i], again[i])
				}
			}
		}
		if results, err := DecodeBatchResponse(data); err == nil {
			again, err := DecodeBatchResponse(AppendBatchResponse(nil, results))
			if err != nil {
				t.Fatalf("re-encoded response frame failed to decode: %v", err)
			}
			if len(again) != len(results) {
				t.Fatalf("round trip changed result count: %d -> %d", len(results), len(again))
			}
			for i := range results {
				if again[i].OK != results[i].OK || again[i].Key != results[i].Key ||
					again[i].Status != results[i].Status || again[i].Msg != results[i].Msg ||
					!bytes.Equal(again[i].Payload, results[i].Payload) {
					t.Fatalf("result %d changed in round trip: %+v -> %+v", i, results[i], again[i])
				}
			}
		}
	})
}
