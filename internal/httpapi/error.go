package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/admit"
)

// Error codes of the shared envelope. The vocabulary is deliberately
// small and stable: clients branch on the code, humans read the message.
const (
	CodeBadRequest         = "bad_request"         // 400: malformed params, headers, or body
	CodeNotFound           = "not_found"           // 404: unknown experiment
	CodeMethodNotAllowed   = "method_not_allowed"  // 405
	CodePayloadTooLarge    = "payload_too_large"   // 413: request body over the cap
	CodeDeadlineUnmeetable = "deadline_unmeetable" // 429: projected wait exceeds the deadline budget
	CodeQueueFull          = "queue_full"          // 503: admission queue shed
	CodeCanceled           = "canceled"            // 503: caller gone mid-flight
	CodeNoBackends         = "no_backends"         // 503: every candidate replica ejected
	CodeDeadlineExceeded   = "deadline_exceeded"   // 504: the deadline expired in flight
	CodeUpstream           = "upstream_error"      // 5xx passthrough from a replica
	CodeInternal           = "internal"            // 500
)

// ErrorDetail is the body of the shared error envelope.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS mirrors the Retry-After header at millisecond
	// precision (the header rounds up to whole seconds); 0 means no hint.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// ErrorEnvelope is the one JSON error shape every error path on every
// face of the HTTP API answers with:
//
//	{"error":{"code":"queue_full","message":"...","retry_after_ms":1000}}
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

// WriteError writes the shared envelope with the given status and code.
func WriteError(w http.ResponseWriter, status int, code, msg string) {
	writeEnvelope(w, status, ErrorDetail{Code: code, Message: msg})
}

// WriteErrorRetry writes the shared envelope plus the Retry-After header
// (whole seconds, minimum 1 — the HTTP-level contract) with the exact
// hint preserved at millisecond precision in the body.
func WriteErrorRetry(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	ms := retryAfter.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	writeEnvelope(w, status, ErrorDetail{Code: code, Message: msg, RetryAfterMS: ms})
}

func writeEnvelope(w http.ResponseWriter, status int, d ErrorDetail) {
	WriteJSON(w, status, ErrorEnvelope{Error: d})
}

// WriteQoSError maps an admission or deadline outcome onto the HTTP
// response: 503 queue_full for a full queue, 429 deadline_unmeetable for
// a deadline the projected wait cannot meet — both with a Retry-After
// hint — 504 deadline_exceeded for a request whose own deadline expired
// in flight, and 503 canceled for a caller that is gone (the status is a
// formality). It reports whether err was a QoS outcome it handled.
func WriteQoSError(w http.ResponseWriter, err error) bool {
	var shed *admit.ShedError
	switch {
	case errors.As(err, &shed):
		status, code := http.StatusServiceUnavailable, CodeQueueFull
		if shed.Deadline {
			status, code = http.StatusTooManyRequests, CodeDeadlineUnmeetable
		}
		WriteErrorRetry(w, status, code, err.Error(), shed.RetryAfter)
		return true
	case errors.Is(err, context.DeadlineExceeded):
		WriteError(w, http.StatusGatewayTimeout, CodeDeadlineExceeded, err.Error())
		return true
	case errors.Is(err, context.Canceled):
		WriteError(w, http.StatusServiceUnavailable, CodeCanceled, err.Error())
		return true
	}
	return false
}

// CodeForStatus maps an upstream replica's status onto the envelope code
// the front-end re-emits, so a shed forwarded through the router carries
// the same code a replica answers directly.
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusRequestEntityTooLarge:
		return CodePayloadTooLarge
	case http.StatusTooManyRequests:
		return CodeDeadlineUnmeetable
	case http.StatusServiceUnavailable:
		return CodeQueueFull
	case http.StatusGatewayTimeout:
		return CodeDeadlineExceeded
	case http.StatusInternalServerError:
		return CodeInternal
	default:
		return CodeUpstream
	}
}

// WriteJSON writes v as an indented JSON response — shared by the
// engine's handlers and the routing front-end so both faces of the API
// encode identically.
func WriteJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
