package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/admit"
)

// The header parse table: one contract for every face of the API.
func TestRequestContextTable(t *testing.T) {
	cases := []struct {
		name    string
		headers map[string]string
		wantErr bool
		check   func(t *testing.T, ctx context.Context)
	}{
		{
			name:    "defaults",
			headers: nil,
			check: func(t *testing.T, ctx context.Context) {
				if c := admit.ClassFrom(ctx); c != admit.Interactive {
					t.Fatalf("default class = %v, want interactive", c)
				}
				if tn := admit.TenantFrom(ctx); tn != "" {
					t.Fatalf("default tenant = %q, want empty", tn)
				}
				if IsHedge(ctx) {
					t.Fatal("unmarked request parsed as hedge")
				}
				if _, ok := ctx.Deadline(); ok {
					t.Fatal("no deadline header should mean no deadline")
				}
			},
		},
		{
			name:    "batch class",
			headers: map[string]string{admit.HeaderClass: "batch"},
			check: func(t *testing.T, ctx context.Context) {
				if c := admit.ClassFrom(ctx); c != admit.Batch {
					t.Fatalf("class = %v, want batch", c)
				}
			},
		},
		{
			name:    "bad class",
			headers: map[string]string{admit.HeaderClass: "premium"},
			wantErr: true,
		},
		{
			name:    "tenant rides along",
			headers: map[string]string{admit.HeaderTenant: "team-a"},
			check: func(t *testing.T, ctx context.Context) {
				if tn := admit.TenantFrom(ctx); tn != "team-a" {
					t.Fatalf("tenant = %q, want team-a", tn)
				}
			},
		},
		{
			name:    "deadline becomes a context deadline",
			headers: map[string]string{admit.HeaderDeadlineMS: "250"},
			check: func(t *testing.T, ctx context.Context) {
				dl, ok := ctx.Deadline()
				if !ok {
					t.Fatal("deadline header dropped")
				}
				if rem := time.Until(dl); rem <= 0 || rem > 250*time.Millisecond {
					t.Fatalf("remaining budget %v, want (0, 250ms]", rem)
				}
			},
		},
		{name: "bad deadline", headers: map[string]string{admit.HeaderDeadlineMS: "soon"}, wantErr: true},
		{name: "negative deadline", headers: map[string]string{admit.HeaderDeadlineMS: "-5"}, wantErr: true},
		{name: "zero deadline", headers: map[string]string{admit.HeaderDeadlineMS: "0"}, wantErr: true},
		{name: "infinite deadline", headers: map[string]string{admit.HeaderDeadlineMS: "+Inf"}, wantErr: true},
		{
			name:    "hedge marker",
			headers: map[string]string{HeaderHedge: "1"},
			check: func(t *testing.T, ctx context.Context) {
				if !IsHedge(ctx) {
					t.Fatal("hedge marker dropped")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodGet, "/v1/run/x", nil)
			for k, v := range tc.headers {
				req.Header.Set(k, v)
			}
			ctx, cancel, err := RequestContext(req)
			if tc.wantErr {
				if err == nil {
					cancel()
					t.Fatal("want error, got none")
				}
				return
			}
			if err != nil {
				t.Fatalf("RequestContext: %v", err)
			}
			defer cancel()
			tc.check(t, ctx)
		})
	}
}

// Forward/RequestContext round-trip: what one hop stamps, the next hop
// parses back — with the deadline budget decremented by the hop's slice.
func TestForwardRoundTrip(t *testing.T) {
	ctx := admit.WithClass(context.Background(), admit.Batch)
	ctx = admit.WithTenant(ctx, "team-b")
	ctx = WithHedge(ctx)
	ctx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
	defer cancel()

	out := httptest.NewRequest(http.MethodGet, "/v1/run/x", nil)
	if err := Forward(out, ctx, 5*time.Millisecond); err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if got := out.Header.Get(admit.HeaderClass); got != "batch" {
		t.Fatalf("forwarded class = %q, want batch", got)
	}
	if got := out.Header.Get(admit.HeaderTenant); got != "team-b" {
		t.Fatalf("forwarded tenant = %q, want team-b", got)
	}
	if got := out.Header.Get(HeaderHedge); got != "1" {
		t.Fatalf("forwarded hedge marker = %q, want 1", got)
	}

	ctx2, cancel2, err := RequestContext(out)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	defer cancel2()
	if admit.ClassFrom(ctx2) != admit.Batch || admit.TenantFrom(ctx2) != "team-b" || !IsHedge(ctx2) {
		t.Fatal("round trip lost part of the QoS envelope")
	}
	dl, ok := ctx2.Deadline()
	if !ok {
		t.Fatal("round trip lost the deadline")
	}
	if rem := time.Until(dl); rem > 495*time.Millisecond {
		t.Fatalf("hop budget not decremented: remaining %v", rem)
	}
}

// A budget that cannot survive the hop sheds at the sender as a
// deadline verdict, not a wire round-trip.
func TestForwardShedsExhaustedBudget(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	out := httptest.NewRequest(http.MethodGet, "/run/x", nil)
	err := Forward(out, ctx, 5*time.Millisecond)
	var shed *admit.ShedError
	if !errors.As(err, &shed) || !shed.Deadline {
		t.Fatalf("want deadline ShedError, got %v", err)
	}
}

// The envelope table: status, code, Retry-After header, and the
// millisecond mirror in the body.
func TestErrorEnvelopeTable(t *testing.T) {
	cases := []struct {
		name       string
		write      func(w http.ResponseWriter)
		wantStatus int
		wantCode   string
		wantRetry  string // "" = header absent
		wantMS     int64
	}{
		{
			name:       "plain error",
			write:      func(w http.ResponseWriter) { WriteError(w, 400, CodeBadRequest, "no") },
			wantStatus: 400, wantCode: CodeBadRequest,
		},
		{
			name: "retry hint rounds the header up, keeps ms in the body",
			write: func(w http.ResponseWriter) {
				WriteErrorRetry(w, 503, CodeQueueFull, "full", 250*time.Millisecond)
			},
			wantStatus: 503, wantCode: CodeQueueFull, wantRetry: "1", wantMS: 250,
		},
		{
			name: "queue shed",
			write: func(w http.ResponseWriter) {
				_ = WriteQoSError(w, &admit.ShedError{Class: admit.Interactive, RetryAfter: 1500 * time.Millisecond})
			},
			wantStatus: 503, wantCode: CodeQueueFull, wantRetry: "2", wantMS: 1500,
		},
		{
			name: "deadline shed",
			write: func(w http.ResponseWriter) {
				_ = WriteQoSError(w, &admit.ShedError{Class: admit.Interactive, Deadline: true, RetryAfter: time.Second})
			},
			wantStatus: 429, wantCode: CodeDeadlineUnmeetable, wantRetry: "1", wantMS: 1000,
		},
		{
			name:       "deadline expired in flight",
			write:      func(w http.ResponseWriter) { _ = WriteQoSError(w, context.DeadlineExceeded) },
			wantStatus: 504, wantCode: CodeDeadlineExceeded,
		},
		{
			name:       "caller gone",
			write:      func(w http.ResponseWriter) { _ = WriteQoSError(w, context.Canceled) },
			wantStatus: 503, wantCode: CodeCanceled,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			tc.write(rec)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d", rec.Code, tc.wantStatus)
			}
			if got := rec.Header().Get("Retry-After"); got != tc.wantRetry {
				t.Fatalf("Retry-After = %q, want %q", got, tc.wantRetry)
			}
			var env ErrorEnvelope
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("body is not the shared envelope: %v\n%s", err, rec.Body.String())
			}
			if env.Error.Code != tc.wantCode {
				t.Fatalf("code = %q, want %q", env.Error.Code, tc.wantCode)
			}
			if env.Error.Message == "" {
				t.Fatal("envelope message empty")
			}
			if env.Error.RetryAfterMS != tc.wantMS {
				t.Fatalf("retry_after_ms = %d, want %d", env.Error.RetryAfterMS, tc.wantMS)
			}
		})
	}
}

// WriteQoSError leaves non-QoS errors for the caller.
func TestWriteQoSErrorIgnoresOtherErrors(t *testing.T) {
	rec := httptest.NewRecorder()
	if WriteQoSError(rec, errors.New("disk on fire")) {
		t.Fatal("a plain error is not a QoS verdict")
	}
}

// Mount serves the same handler under the legacy path and its /v1 alias.
func TestMountVersionedAliases(t *testing.T) {
	mux := http.NewServeMux()
	MountFunc(mux, "GET /run/{id}", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("id=" + r.PathValue("id")))
	})
	for _, path := range []string{"/run/x7", "/v1/run/x7"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != 200 || !strings.Contains(rec.Body.String(), "id=x7") {
			t.Fatalf("%s: status %d body %q", path, rec.Code, rec.Body.String())
		}
	}
	// The alias keeps the method restriction.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/run/x7", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST on a GET-only alias: status %d, want 405", rec.Code)
	}
}
