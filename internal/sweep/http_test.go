package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// sweepMux composes the endpoint the way cmd/arch21d mounts it.
func sweepMux(execs *atomic.Int64) (*http.ServeMux, func()) {
	eng := countingEngine(execs)
	mux := http.NewServeMux()
	mux.Handle("POST /sweep", Handler(eng))
	return mux, eng.Close
}

func postSweep(t *testing.T, mux *http.ServeMux, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/sweep", strings.NewReader(body))
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	return w
}

// ndjsonLines splits a response into decoded JSON objects, one per line.
func ndjsonLines(t *testing.T, body *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, v)
	}
	return out
}

// Acceptance criterion: POST /sweep streams one NDJSON line per grid
// point plus a summary, and a repeat sweep streams the same points all
// served from cache.
func TestSweepEndpointStreamsNDJSONAndCaches(t *testing.T) {
	var execs atomic.Int64
	mux, closeEng := sweepMux(&execs)
	defer closeEng()

	const body = `{"id":"E7","params":["f=0.9,0.95","bces=64,128"]}`
	w := postSweep(t, mux, body)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d body=%s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Fatalf("content type = %q", ct)
	}
	lines := ndjsonLines(t, w.Body)
	if len(lines) != 5 {
		t.Fatalf("got %d NDJSON lines, want 4 points + 1 summary", len(lines))
	}
	for i, ln := range lines[:4] {
		if int(ln["point"].(float64)) != i {
			t.Fatalf("line %d out of order: %v", i, ln)
		}
		if ln["cache_hit"].(bool) {
			t.Fatalf("cold sweep point %d claims a cache hit", i)
		}
	}
	sum := lines[4]["summary"].(map[string]any)
	if int(sum["points"].(float64)) != 4 || int(sum["cache_hits"].(float64)) != 0 {
		t.Fatalf("summary = %v", sum)
	}
	if !strings.Contains(sum["report"].(string), "sweep E7: 4 points") {
		t.Fatalf("summary report missing aggregate table: %v", sum["report"])
	}
	coldExecs := execs.Load()
	if coldExecs != 4 {
		t.Fatalf("executions = %d, want 4", coldExecs)
	}

	// Repeat sweep: identical points, all cache hits, no new executions.
	w2 := postSweep(t, mux, body)
	lines2 := ndjsonLines(t, w2.Body)
	if len(lines2) != 5 {
		t.Fatalf("repeat: got %d lines", len(lines2))
	}
	for i := range lines2[:4] {
		if !lines2[i]["cache_hit"].(bool) {
			t.Fatalf("repeat point %d not from cache: %v", i, lines2[i])
		}
		if lines2[i]["params"].(map[string]any)["f"] != lines[i]["params"].(map[string]any)["f"] {
			t.Fatalf("repeat point %d differs: %v vs %v", i, lines2[i], lines[i])
		}
		if lines2[i]["findings"].(any) == nil {
			t.Fatalf("repeat point %d lost findings", i)
		}
	}
	sum2 := lines2[4]["summary"].(map[string]any)
	if int(sum2["cache_hits"].(float64)) != 4 {
		t.Fatalf("repeat summary = %v", sum2)
	}
	if sum2["report"] != sum["report"] {
		t.Fatal("aggregate report differs between cold and cached sweeps")
	}
	if execs.Load() != coldExecs {
		t.Fatalf("repeat sweep executed points: %d -> %d", coldExecs, execs.Load())
	}
}

func TestSweepEndpointRejects(t *testing.T) {
	var execs atomic.Int64
	mux, closeEng := sweepMux(&execs)
	defer closeEng()

	cases := []struct {
		body string
		code int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"id":"E99","params":["x=1"]}`, http.StatusNotFound},
		{`{"id":"E7","params":[]}`, http.StatusBadRequest},
		{`{"id":"E7","params":["nope=1"]}`, http.StatusBadRequest},
		{`{"id":"E7","params":["f=0.1,0.2"]}`, http.StatusBadRequest},
		{`{"id":"E7","params":["f=bad"]}`, http.StatusBadRequest},
		// Non-finite range bounds used to hang the handler goroutine in an
		// unbounded ParseAxis expansion; they must be a fast 400.
		{`{"id":"E7","params":["f=NaN:1:0.1"]}`, http.StatusBadRequest},
		{`{"id":"E7","params":["f=0:Inf:0.1"]}`, http.StatusBadRequest},
		// An over-limit body is 413, not a generic 400.
		{`{"id":"E7","params":["` + strings.Repeat("f", 1<<20) + `=1"]}`, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		w := postSweep(t, mux, c.body)
		if w.Code != c.code {
			t.Errorf("POST %s: status %d, want %d (body %s)", c.body, w.Code, c.code, w.Body.String())
		}
	}
	if execs.Load() != 0 {
		t.Fatalf("rejected sweeps executed %d points", execs.Load())
	}
}
