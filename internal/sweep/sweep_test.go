package sweep

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// countingEngine serves registered IDs through a fake runner that counts
// executions and emits a findings-only result whose headline number is
// derived from the assignment — cheap, deterministic, and exercises the
// findings-only memoization path end to end.
func countingEngine(execs *atomic.Int64) *serve.Engine {
	return serve.NewEngine(serve.Config{
		Shards:  4,
		Workers: 4,
		RunnerWith: func(_ context.Context, id string, p core.Params) (core.Result, error) {
			execs.Add(1)
			sum := 0.0
			for _, name := range p.SortedNames() {
				sum += p[name]
			}
			return core.Result{Findings: []string{
				fmt.Sprintf("%.4f is the metric for %s", sum, id),
			}}, nil
		},
	})
}

func TestParseAxisForms(t *testing.T) {
	cases := []struct {
		in   string
		want []float64
	}{
		{"gens=4", []float64{4}},
		{"gens=2,4,8", []float64{2, 4, 8}},
		{"gens=2:8:2", []float64{2, 4, 6, 8}},
		{"gens=2:7:2", []float64{2, 4, 6}},
		{"f=0.9:0.99:0.03", []float64{0.9, 0.93, 0.96, 0.99}},
		{"f=0.5:0.5:0.1", []float64{0.5}},
	}
	for _, c := range cases {
		ax, err := ParseAxis(c.in)
		if err != nil {
			t.Errorf("ParseAxis(%q): %v", c.in, err)
			continue
		}
		if len(ax.Values) != len(c.want) {
			t.Errorf("ParseAxis(%q) = %v, want %v", c.in, ax.Values, c.want)
			continue
		}
		for i, v := range ax.Values {
			if diff := v - c.want[i]; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("ParseAxis(%q)[%d] = %v, want %v", c.in, i, v, c.want[i])
			}
		}
	}
	for _, bad := range []string{
		"", "gens", "gens=", "=4", "gens=a", "gens=1:2", "gens=1:2:3:4",
		"gens=2:8:0", "gens=2:8:-1", "gens=8:2:1", "gens=1,x,3",
	} {
		if _, err := ParseAxis(bad); err == nil {
			t.Errorf("ParseAxis(%q): want error", bad)
		}
	}
}

// A fat-fingered step must be rejected before the axis materializes —
// not after expanding billions of values.
func TestParseAxisBoundsRangeExpansion(t *testing.T) {
	start := make(chan error, 1)
	go func() {
		_, err := ParseAxis("f=0.5:0.9999:1e-12")
		start <- err
	}()
	select {
	case err := <-start:
		if err == nil || !strings.Contains(err.Error(), "expands past") {
			t.Fatalf("want expansion-bound error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ParseAxis is materializing an unbounded range")
	}
	// Exactly MaxPoints values is still fine.
	ax, err := ParseAxis(fmt.Sprintf("x=1:%d:1", MaxPoints))
	if err != nil {
		t.Fatalf("MaxPoints-sized axis rejected: %v", err)
	}
	if len(ax.Values) != MaxPoints {
		t.Fatalf("got %d values, want %d", len(ax.Values), MaxPoints)
	}
}

// The grid cap must be enforced while axes parse, not after: each range
// axis can materialize MaxPoints values from a ~15-byte spec, so a body
// full of maximal axes would otherwise amplify into per-axis maxima
// across every axis before Validate ever saw the grid.
func TestParseSpecBoundsCrossAxisExpansion(t *testing.T) {
	axes := make([]string, 64)
	for i := range axes {
		axes[i] = fmt.Sprintf("x%d=1:%d:1", i, MaxPoints)
	}
	_, err := ParseSpec("E7", axes)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("want grid-cap error, got %v", err)
	}
}

// ParseFloat accepts "NaN" and "Inf"; with a NaN bound every range guard
// compares false, which used to turn the expansion loop into an unbounded
// append (remotely triggerable via POST /sweep). Non-finite bounds must be
// rejected up front, in bounded time.
func TestParseAxisRejectsNonFiniteRange(t *testing.T) {
	for _, bad := range []string{
		"f=NaN:1:0.1", "f=0:NaN:0.1", "f=0:1:NaN",
		"f=Inf:1:0.1", "f=0:Inf:0.1", "f=0:1:Inf",
		"f=-Inf:1:0.1", "f=nan:nan:nan",
		// Scalar and list forms must reject non-finite values too (found
		// by FuzzParseAxis): no declared parameter admits them, so they
		// must fail at parse, not ride to schema validation.
		"f=NaN", "f=Inf", "f=-Inf", "f=1,NaN,3", "f=Inf,2",
	} {
		done := make(chan error, 1)
		go func() {
			_, err := ParseAxis(bad)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("ParseAxis(%q): want error", bad)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("ParseAxis(%q) did not return (unbounded expansion)", bad)
		}
	}
}

func TestGridRowMajorOrder(t *testing.T) {
	sp := Spec{ID: "E7", Axes: []Axis{
		{Name: "f", Values: []float64{0.9, 0.95}},
		{Name: "bces", Values: []float64{64, 128, 256}},
	}}
	grid := sp.Grid()
	if len(grid) != 6 {
		t.Fatalf("grid size = %d, want 6", len(grid))
	}
	want := []core.Params{
		{"f": 0.9, "bces": 64}, {"f": 0.9, "bces": 128}, {"f": 0.9, "bces": 256},
		{"f": 0.95, "bces": 64}, {"f": 0.95, "bces": 128}, {"f": 0.95, "bces": 256},
	}
	for i, p := range grid {
		if p["f"] != want[i]["f"] || p["bces"] != want[i]["bces"] {
			t.Fatalf("grid[%d] = %v, want %v", i, p, want[i])
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]Spec{
		"unknown experiment": {ID: "E99", Axes: []Axis{{Name: "x", Values: []float64{1}}}},
		"no axes":            {ID: "E7"},
		"unknown param":      {ID: "E7", Axes: []Axis{{Name: "zap", Values: []float64{1}}}},
		"duplicate axis": {ID: "E7", Axes: []Axis{
			{Name: "f", Values: []float64{0.9}}, {Name: "f", Values: []float64{0.95}}}},
		"empty axis":         {ID: "E7", Axes: []Axis{{Name: "f", Values: nil}}},
		"out-of-range value": {ID: "E7", Axes: []Axis{{Name: "f", Values: []float64{0.1}}}},
		"non-integer int":    {ID: "E7", Axes: []Axis{{Name: "bces", Values: []float64{64.5}}}},
		"zero-param exp":     {ID: "T2", Axes: []Axis{{Name: "x", Values: []float64{1}}}},
	}
	for name, sp := range cases {
		if _, err := sp.Validate(); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	big := Spec{ID: "E7", Axes: []Axis{
		{Name: "f", Values: make([]float64, 100)},
		{Name: "bces", Values: make([]float64, 100)},
	}}
	for i := range big.Axes[0].Values {
		big.Axes[0].Values[i] = 0.9
	}
	for i := range big.Axes[1].Values {
		big.Axes[1].Values[i] = 64
	}
	if _, err := big.Validate(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized grid: got %v", err)
	}
}

// Acceptance criterion: repeat sweeps are served from cache — across any
// number of sweep invocations, each unique grid point executes exactly
// once.
func TestSweepExecutesEachUniquePointOnce(t *testing.T) {
	var execs atomic.Int64
	eng := countingEngine(&execs)
	defer eng.Close()

	sp, err := ParseSpec("E7", []string{"f=0.9:0.99:0.03", "bces=64,256"})
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(context.Background(), eng, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Points != 8 {
		t.Fatalf("points = %d, want 8 (4 f-values x 2 bces)", first.Points)
	}
	if got := execs.Load(); got != 8 {
		t.Fatalf("cold sweep executions = %d, want 8", got)
	}
	second, err := Run(context.Background(), eng, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 8 {
		t.Fatalf("executions after repeat sweep = %d, want 8 (one per unique point)", got)
	}
	if second.CacheHits != 8 {
		t.Fatalf("repeat sweep cache hits = %d, want 8", second.CacheHits)
	}
	// An overlapping grid executes only its new points. Overlap on the
	// range endpoints, which parse to the exact same float both times.
	overlap, err := ParseSpec("E7", []string{"f=0.9,0.99", "bces=256,512"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), eng, overlap, nil); err != nil {
		t.Fatal(err)
	}
	// Shared points: (0.9,256) and (0.99,256); new: (0.9,512), (0.99,512).
	if got := execs.Load(); got != 10 {
		t.Fatalf("executions after overlapping sweep = %d, want 10", got)
	}
}

// The aggregate is deterministic: identical table and findings cold vs
// fully cached, and points stream in grid order.
func TestSweepDeterministicAndOrdered(t *testing.T) {
	var execs atomic.Int64
	eng := countingEngine(&execs)
	defer eng.Close()

	sp, err := ParseSpec("E7", []string{"f=0.9,0.95", "bces=64,128,256"})
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	cold, err := Run(context.Background(), eng, sp, func(pt Point) error {
		order = append(order, pt.Index)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range order {
		if i != idx {
			t.Fatalf("stream order %v not grid order", order)
		}
	}
	warm, err := Run(context.Background(), eng, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Aggregate.Render() != warm.Aggregate.Render() {
		t.Fatalf("aggregate differs cold vs cached:\n%s\nvs\n%s",
			cold.Aggregate.Render(), warm.Aggregate.Render())
	}
	if cold.Aggregate.Table == nil || len(cold.Aggregate.Table.Rows) != 6 {
		t.Fatalf("aggregate table should have 6 rows: %+v", cold.Aggregate.Table)
	}
	if cold.Aggregate.Figure == nil || len(cold.Aggregate.Figure.Series) != 2 {
		t.Fatalf("2-axis sweep should yield one series per leading-axis value")
	}
	// The fake runner's headline is the sum of its params, so the figure's
	// first series must be f=0.9's three points.
	s0 := cold.Aggregate.Figure.Series[0]
	if s0.Name != "f=0.9" || len(s0.Points) != 3 {
		t.Fatalf("series[0] = %s with %d points", s0.Name, len(s0.Points))
	}
	if s0.Points[0].Y != 64.9 {
		t.Fatalf("headline for (0.9, 64) = %v, want 64.9", s0.Points[0].Y)
	}
}

// A real registered experiment sweeps end to end through the registry
// runner, producing per-point results and a combined table.
func TestSweepRealExperiment(t *testing.T) {
	eng := serve.NewEngine(serve.Config{Workers: 2})
	defer eng.Close()

	sp, err := ParseSpec("E1", []string{"gens=2:6:2"})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(context.Background(), eng, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Points != 3 {
		t.Fatalf("points = %d, want 3", sum.Points)
	}
	ren := sum.Aggregate.Render()
	if !strings.Contains(ren, "sweep E1: 3 points over gens") {
		t.Fatalf("aggregate missing title:\n%s", ren)
	}
	// Default point (gens=6) must share the zero-param cache entry.
	if resp, err := eng.Serve("E1"); err != nil || !resp.CacheHit {
		t.Fatalf("Serve(E1) after sweep: hit=%v err=%v", resp.CacheHit, err)
	}
	if sum.Aggregate.Figure == nil {
		t.Fatal("1-axis sweep should yield a figure")
	}
}

// Once a sweep is doomed (emit failure — e.g. the NDJSON client hung
// up), queued points must be skipped rather than executed for nobody.
func TestSweepAbortSkipsQueuedPoints(t *testing.T) {
	var execs atomic.Int64
	eng := serve.NewEngine(serve.Config{
		Shards:  4,
		Workers: 1,
		RunnerWith: func(_ context.Context, id string, p core.Params) (core.Result, error) {
			execs.Add(1)
			time.Sleep(time.Millisecond)
			return core.Result{Findings: []string{"x 1"}}, nil
		},
	})
	defer eng.Close()

	sp, err := ParseSpec("E1", []string{"gens=1:12:1"})
	if err != nil {
		t.Fatal(err)
	}
	sp.Parallelism = 1
	wantErr := fmt.Errorf("client went away")
	_, err = Run(context.Background(), eng, sp, func(pt Point) error { return wantErr })
	if err == nil || !strings.Contains(err.Error(), "client went away") {
		t.Fatalf("Run error = %v", err)
	}
	if got := execs.Load(); got >= 12 {
		t.Fatalf("aborted sweep still executed all %d points", got)
	}
}

// Parallelism reaches Run straight from the POST /sweep body and spawns
// one worker goroutine per unit, so it must be clamped — an absurd value
// must neither fail nor materialize absurd concurrency.
func TestSweepClampsParallelism(t *testing.T) {
	var execs atomic.Int64
	eng := countingEngine(&execs)
	defer eng.Close()

	sp, err := ParseSpec("E1", []string{"gens=1,2"})
	if err != nil {
		t.Fatal(err)
	}
	sp.Parallelism = 1 << 30
	before := runtime.NumGoroutine()
	sum, err := Run(context.Background(), eng, sp, nil)
	if err != nil {
		t.Fatalf("Run with huge Parallelism: %v", err)
	}
	if sum.Points != 2 {
		t.Fatalf("points = %d, want 2", sum.Points)
	}
	if after := runtime.NumGoroutine(); after > before+2*maxParallelism {
		t.Fatalf("goroutines grew %d -> %d; Parallelism not clamped", before, after)
	}
}

// An experiment-declared headline wins over the first-number fallback:
// E3's first finding leads with the fanout parameter itself, but its
// declared headline is the measured fraction.
func TestHeadlinePrefersDeclaredMetric(t *testing.T) {
	e, _ := core.ByID("E1")
	res := e.Run(context.Background())
	if res.Headline == nil {
		t.Fatal("E1 should declare a headline")
	}
	h, ok := Headline(res)
	if !ok || h != *res.Headline {
		t.Fatalf("Headline = %v,%v want declared %v", h, ok, *res.Headline)
	}
	// The fallback would have returned 6 (the gens echo in the first
	// finding); the declared headline is the power gap, which is not.
	if h == 6 {
		t.Fatal("Headline returned the parameter echo, not the metric")
	}
}

func TestHeadline(t *testing.T) {
	cases := []struct {
		finding string
		want    float64
		ok      bool
	}{
		{"transistors at gen 6: 64x (paper: 2x per generation holds)", 6, true},
		{"speedup 12.5x at r=4", 12.5, true},
		{"ratio 1.2e3 holds", 1.2e3, true},
		{"no numbers here", 0, false},
	}
	for _, c := range cases {
		got, ok := Headline(core.Result{Findings: []string{c.finding}})
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Headline(%q) = %v,%v want %v,%v", c.finding, got, ok, c.want, c.ok)
		}
	}
	if _, ok := Headline(core.Result{}); ok {
		t.Error("Headline of empty result should be false")
	}
}
