// Package sweep fans a parameter grid out over the serving engine: it
// parses axis specifications ("f=0.9:0.99:0.03", "bces=64,256", "gens=8"),
// expands their cross product in row-major order (first axis slowest),
// runs every grid point through serve.Engine.ServeWith — so each point is
// validated against the experiment's declared schema, memoized under a
// params-folded cache key, deduplicated by singleflight, and admitted as
// batch class through the engine's QoS scheduler (a sweep can never
// starve interactive traffic) — and aggregates the per-point results into
// one combined report.Table (plus a report.Figure for 1- and 2-axis
// sweeps).
// Points stream to the caller in grid order as they complete, which is
// what cmd/arch21's sweep subcommand prints and what the POST /sweep
// NDJSON endpoint writes line by line. The whole pipeline is
// deterministic: the same spec always yields the same grid, the same
// per-point results, and the same aggregate, whether served cold or from
// cache.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/serve"
)

// errAborted marks grid points skipped because the sweep was already
// doomed when they would have started.
var errAborted = errors.New("sweep aborted")

// MaxPoints bounds a single sweep's grid so a fat-fingered step cannot
// queue an unbounded amount of work.
const MaxPoints = 4096

// defaultParallelism bounds in-flight ServeWith calls per sweep. The
// engine's worker pool already bounds cold compute; this only caps how
// many points can simultaneously occupy the pool's queue.
const defaultParallelism = 8

// maxParallelism clamps Spec.Parallelism, which reaches Run straight from
// the POST /sweep body: one worker goroutine is spawned per unit, so an
// unclamped value would be a remote goroutine bomb.
const maxParallelism = 64

// Axis is one swept parameter: a name and the ordered values it takes.
type Axis struct {
	// Name is the experiment parameter the axis varies.
	Name string
	// Values are the axis points, in sweep order.
	Values []float64
}

// Spec is a full sweep specification: the experiment and the axes whose
// cross product forms the grid. Axis order is significant — the first
// axis varies slowest.
type Spec struct {
	// ID is the experiment to sweep.
	ID string
	// Axes are the swept parameters.
	Axes []Axis
	// Parallelism caps concurrently in-flight points (default 8).
	Parallelism int
}

// ParseAxis parses one axis assignment. Accepted value forms:
//
//	name=lo:hi:step   inclusive range (step > 0)
//	name=a,b,c        explicit list
//	name=v            single value (a one-point axis)
func ParseAxis(s string) (Axis, error) {
	name, val, ok := strings.Cut(s, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" || strings.TrimSpace(val) == "" {
		return Axis{}, fmt.Errorf("sweep: bad axis %q (want name=value, name=a,b,c, or name=lo:hi:step)", s)
	}
	ax := Axis{Name: name}
	switch {
	case strings.Contains(val, ":"):
		parts := strings.Split(val, ":")
		if len(parts) != 3 {
			return Axis{}, fmt.Errorf("sweep: bad range %q (want lo:hi:step)", val)
		}
		lo, err := core.ParseParamValue(parts[0])
		if err != nil {
			return Axis{}, fmt.Errorf("sweep: bad range start in %q: %v", s, err)
		}
		hi, err := core.ParseParamValue(parts[1])
		if err != nil {
			return Axis{}, fmt.Errorf("sweep: bad range end in %q: %v", s, err)
		}
		step, err := core.ParseParamValue(parts[2])
		if err != nil {
			return Axis{}, fmt.Errorf("sweep: bad range step in %q: %v", s, err)
		}
		// NaN bounds make every comparison below false, which would turn
		// the expansion loop into an unbounded append; ParseFloat accepts
		// "NaN"/"Inf", so reject non-finite values before expanding.
		for _, v := range [...]float64{lo, hi, step} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return Axis{}, fmt.Errorf("sweep: range bounds must be finite in %q", s)
			}
		}
		if step <= 0 {
			return Axis{}, fmt.Errorf("sweep: step must be > 0 in %q", s)
		}
		if hi < lo {
			return Axis{}, fmt.Errorf("sweep: empty range %q (hi < lo)", s)
		}
		// Bound the expansion here, not just at Validate: a fat-fingered
		// step must fail before materializing the axis, or a single
		// request could chew through unbounded memory.
		if hi-lo > step*float64(MaxPoints) {
			return Axis{}, fmt.Errorf("sweep: range %q expands past %d values", s, MaxPoints)
		}
		// Index-based stepping avoids accumulation error; the tolerance
		// admits an endpoint that float arithmetic lands a few ulps past
		// (clamped to hi so repeat sweeps key identically) without
		// admitting a genuine extra step. The i <= MaxPoints bound is a
		// backstop: the range guard above should already keep expansion
		// under it.
		for i := 0; i <= MaxPoints; i++ {
			v := lo + float64(i)*step
			if v > hi+step*1e-9 {
				break
			}
			if v > hi {
				v = hi
			}
			ax.Values = append(ax.Values, v)
		}
	case strings.Contains(val, ","):
		for _, part := range strings.Split(val, ",") {
			v, err := core.ParseParamValue(part)
			if err != nil {
				return Axis{}, fmt.Errorf("sweep: bad list value in %q: %v", s, err)
			}
			ax.Values = append(ax.Values, v)
		}
	default:
		v, err := core.ParseParamValue(val)
		if err != nil {
			return Axis{}, fmt.Errorf("sweep: bad value in %q: %v", s, err)
		}
		ax.Values = []float64{v}
	}
	// Ranges reject non-finite bounds above; list and scalar axes must
	// too — ParseFloat accepts "NaN"/"Inf", no declared parameter admits
	// them (ParamSpec.Check requires finite), and a NaN would otherwise
	// ride as far as schema validation before failing (found by
	// FuzzParseAxis).
	for _, v := range ax.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Axis{}, fmt.Errorf("sweep: values must be finite in %q", s)
		}
	}
	return ax, nil
}

// ParseSpec builds a Spec from an experiment ID and axis assignments (one
// "name=..." string per axis, in sweep order).
func ParseSpec(id string, axes []string) (Spec, error) {
	sp := Spec{ID: id}
	points := 1
	for _, s := range axes {
		ax, err := ParseAxis(s)
		if err != nil {
			return Spec{}, err
		}
		// Enforce the grid cap incrementally, before parsing the next
		// axis: each range axis can materialize up to MaxPoints values
		// from a ~15-byte spec (a >2000x request-to-memory
		// amplification), so waiting for Validate would let a small
		// request body allocate per-axis maxima across many axes first.
		points *= len(ax.Values)
		if points > MaxPoints {
			return Spec{}, fmt.Errorf("sweep: grid exceeds %d points", MaxPoints)
		}
		sp.Axes = append(sp.Axes, ax)
	}
	return sp, nil
}

// Validate checks the spec against the experiment's declared schema:
// every axis must name a declared parameter exactly once, every value
// must pass the parameter's range/kind/step check, and the grid must fit
// under MaxPoints.
func (sp Spec) Validate() (core.Experiment, error) {
	e, ok := core.ByID(sp.ID)
	if !ok {
		return core.Experiment{}, fmt.Errorf("sweep: unknown experiment %q", sp.ID)
	}
	if len(sp.Axes) == 0 {
		return core.Experiment{}, fmt.Errorf("sweep: %s: no axes (give at least one -param)", sp.ID)
	}
	seen := map[string]bool{}
	points := 1
	for _, ax := range sp.Axes {
		spec, ok := e.Spec(ax.Name)
		if !ok {
			return core.Experiment{}, fmt.Errorf("sweep: experiment %s has no parameter %q (schema: %s)",
				sp.ID, ax.Name, e.SchemaString())
		}
		if seen[ax.Name] {
			return core.Experiment{}, fmt.Errorf("sweep: axis %s given twice", ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Values) == 0 {
			return core.Experiment{}, fmt.Errorf("sweep: axis %s has no values", ax.Name)
		}
		for _, v := range ax.Values {
			if err := spec.Check(v); err != nil {
				return core.Experiment{}, fmt.Errorf("sweep: %v", err)
			}
		}
		points *= len(ax.Values)
		if points > MaxPoints {
			return core.Experiment{}, fmt.Errorf("sweep: grid exceeds %d points", MaxPoints)
		}
	}
	return e, nil
}

// Grid expands the cross product in row-major order (first axis slowest,
// last axis fastest).
func (sp Spec) Grid() []core.Params {
	n := 1
	for _, ax := range sp.Axes {
		n *= len(ax.Values)
	}
	if len(sp.Axes) == 0 || n == 0 {
		return nil
	}
	grid := make([]core.Params, n)
	for i := range grid {
		p := make(core.Params, len(sp.Axes))
		rem := i
		for a := len(sp.Axes) - 1; a >= 0; a-- {
			ax := sp.Axes[a]
			p[ax.Name] = ax.Values[rem%len(ax.Values)]
			rem /= len(ax.Values)
		}
		grid[i] = p
	}
	return grid
}

// Server is the serving surface a sweep fans out over: anything that can
// serve one (experiment, assignment) point under a request context. The
// in-process serve.Engine satisfies it, and so does router.Router — which
// is how a POST /sweep against a routing front-end lands each grid point
// on its owning replica.
type Server interface {
	ServeWith(ctx context.Context, id string, p core.Params) (serve.Response, error)
}

// BatchServer is the optional multi-get surface a sweep prefers when the
// server offers it: many grid points served in one call. serve.Engine
// and router.Router both satisfy it — through the router, one wave
// becomes one batch exchange per owning replica instead of a request
// per point, which is where a cluster sweep's wall time goes. Placement
// and memoization are identical to the per-point path, so exactly-once
// cluster-wide is preserved.
type BatchServer interface {
	ServeEncodedBatch(ctx context.Context, items []serve.BatchItem) []serve.BatchOutcome
}

// Point is one completed grid point, as streamed to the caller.
type Point struct {
	// Index is the point's position in row-major grid order.
	Index int
	// Params is the point's axis assignment (swept axes only).
	Params core.Params
	// Key is the engine cache key the point is memoized under.
	Key string
	// Result is the experiment output at this point.
	Result core.Result
	// CacheHit and Shared report how the engine satisfied the point.
	CacheHit bool
	Shared   bool
	// Latency is the point's wall time inside the engine.
	Latency time.Duration
}

// Summary is one completed sweep.
type Summary struct {
	// ID is the swept experiment.
	ID string
	// Axes are the swept parameters, in grid order.
	Axes []Axis
	// Points is the grid size.
	Points int
	// CacheHits counts points served straight from the memoizing cache.
	CacheHits int
	// Elapsed is the sweep's wall time.
	Elapsed time.Duration
	// Aggregate is the combined cross-point result: one table row per
	// grid point (plus a figure for 1- and 2-axis sweeps).
	Aggregate core.Result
}

// Run executes the sweep on the server (an engine or a router), streaming
// each completed point to emit (in grid order) and returning the
// aggregate. Points run concurrently — bounded by Spec.Parallelism and,
// for cold compute, by the engine's admission scheduler — but emission is
// strictly ordered, so output is deterministic. A nil emit just skips
// streaming. The first point error aborts the sweep.
//
// Grid points run as batch class (unless ctx carries an explicit class
// already): a sweep is bulk work, and the engine's scheduler must never
// let it starve interactive traffic. When the sweep aborts — a point
// fails, emit errors (the NDJSON client hung up), or ctx itself is
// canceled — the derived context is canceled too, so points already
// executing stop at their next iteration boundary instead of grinding to
// completion: cancellation reaches running work, not just queued points.
func Run(ctx context.Context, srv Server, sp Spec, emit func(Point) error) (Summary, error) {
	exp, err := sp.Validate()
	if err != nil {
		return Summary{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if _, tagged := admit.ClassFromContext(ctx); !tagged {
		ctx = admit.WithClass(ctx, admit.Batch)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	t0 := time.Now()
	grid := sp.Grid()
	par := sp.Parallelism
	if par <= 0 {
		par = defaultParallelism
	}
	if par > maxParallelism {
		par = maxParallelism
	}
	if par > len(grid) {
		par = len(grid)
	}
	if bs, ok := srv.(BatchServer); ok {
		return runBatched(ctx, bs, exp, sp, grid, par, t0, emit)
	}

	type outcome struct {
		resp serve.Response
		err  error
	}
	results := make([]outcome, len(grid))
	done := make([]chan struct{}, len(grid))
	for i := range done {
		done[i] = make(chan struct{})
	}
	// aborted short-circuits not-yet-started points once the sweep is
	// doomed (a point failed or the consumer went away), so an abandoned
	// large sweep stops occupying the engine instead of grinding through
	// thousands of results nobody will read. In-flight points (at most
	// par) are canceled through ctx and stop at their next iteration
	// boundary. par fixed workers pull indices off a channel — not one
	// goroutine per point, which would stack up O(grid) goroutines per
	// request just to block on a semaphore.
	var aborted atomic.Bool
	abort := func() {
		aborted.Store(true)
		cancel()
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if aborted.Load() || ctx.Err() != nil {
					results[i] = outcome{err: errAborted}
					close(done[i])
					continue
				}
				resp, err := srv.ServeWith(ctx, sp.ID, grid[i])
				results[i] = outcome{resp, err}
				close(done[i])
			}
		}()
	}
	go func() {
		defer close(idx)
		for i := range grid {
			idx <- i
		}
	}()
	defer wg.Wait()

	sum := Summary{ID: sp.ID, Axes: sp.Axes, Points: len(grid)}
	points := make([]Point, 0, len(grid))
	for i := range grid {
		<-done[i]
		out := results[i]
		if out.err != nil {
			abort()
			return Summary{}, fmt.Errorf("sweep: %s point %d: %w", sp.ID, i, out.err)
		}
		pt := Point{
			Index:    i,
			Params:   grid[i],
			Key:      out.resp.Key,
			Result:   out.resp.Result,
			CacheHit: out.resp.CacheHit,
			Shared:   out.resp.Shared,
			Latency:  out.resp.Latency,
		}
		if pt.CacheHit {
			sum.CacheHits++
		}
		if emit != nil {
			if err := emit(pt); err != nil {
				abort()
				return Summary{}, err
			}
		}
		points = append(points, pt)
	}
	sum.Elapsed = time.Since(t0)
	sum.Aggregate = aggregate(exp, sp, points)
	return sum, nil
}

// runBatched is Run's fan-out over a BatchServer: the grid is served in
// sequential waves of 2*Parallelism points, each wave one
// ServeEncodedBatch call (which the router regroups into one exchange
// per owning replica). Emission stays strictly ordered — a wave's
// points stream before the next wave ships — and the first point error
// (or emit error) aborts exactly like the per-point path: ctx
// cancellation reaches whatever the wave left running.
func runBatched(ctx context.Context, bs BatchServer, exp core.Experiment, sp Spec, grid []core.Params, par int, t0 time.Time, emit func(Point) error) (Summary, error) {
	// Twice the per-point worker count: enough batching to amortize the
	// exchange, small enough that a doomed sweep stops within one wave.
	wave := 2 * par
	class := admit.ClassFrom(ctx)
	sum := Summary{ID: sp.ID, Axes: sp.Axes, Points: len(grid)}
	points := make([]Point, 0, len(grid))
	items := make([]serve.BatchItem, 0, wave)
	for lo := 0; lo < len(grid); lo += wave {
		hi := lo + wave
		if hi > len(grid) {
			hi = len(grid)
		}
		if err := ctx.Err(); err != nil {
			return Summary{}, fmt.Errorf("sweep: %s point %d: %w", sp.ID, lo, err)
		}
		items = items[:0]
		for i := lo; i < hi; i++ {
			items = append(items, serve.BatchItem{ID: sp.ID, Params: grid[i], Class: class})
		}
		for j, out := range bs.ServeEncodedBatch(ctx, items) {
			i := lo + j
			if out.Err != nil {
				return Summary{}, fmt.Errorf("sweep: %s point %d: %w", sp.ID, i, out.Err)
			}
			res, err := out.RawResponse.Result()
			if err != nil {
				return Summary{}, fmt.Errorf("sweep: %s point %d: bad result payload: %w", sp.ID, i, err)
			}
			pt := Point{
				Index:    i,
				Params:   grid[i],
				Key:      out.RawResponse.Key,
				Result:   res,
				CacheHit: out.RawResponse.CacheHit,
				Shared:   out.RawResponse.Shared,
				Latency:  out.RawResponse.Latency,
			}
			if pt.CacheHit {
				sum.CacheHits++
			}
			if emit != nil {
				if err := emit(pt); err != nil {
					return Summary{}, err
				}
			}
			points = append(points, pt)
		}
	}
	sum.Elapsed = time.Since(t0)
	sum.Aggregate = aggregate(exp, sp, points)
	return sum, nil
}

// firstNumber extracts the leading numeric value from a finding line —
// the fallback "headline" metric when a result does not declare one.
var firstNumber = regexp.MustCompile(`-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?`)

// Headline returns the result's scalar summary metric: the explicitly
// declared Result.Headline when the experiment set one, otherwise the
// first number in the first finding (which can echo a parameter rather
// than a measurement — parameterized experiments should declare).
func Headline(r core.Result) (float64, bool) {
	if r.Headline != nil {
		return *r.Headline, true
	}
	if len(r.Findings) == 0 {
		return 0, false
	}
	m := firstNumber.FindString(r.Findings[0])
	if m == "" {
		return 0, false
	}
	v, err := core.ParseParamValue(m)
	return v, err == nil
}

// axisNames joins the spec's axis names.
func axisNames(axes []Axis) string {
	names := make([]string, len(axes))
	for i, ax := range axes {
		names[i] = ax.Name
	}
	return strings.Join(names, ", ")
}

// aggregate folds per-point results into one deterministic Result: a
// table with one row per grid point (axis values, headline metric, first
// finding) and — for 1- and 2-axis sweeps — a figure of the headline
// metric over the last axis, one series per value of the leading axis.
func aggregate(exp core.Experiment, sp Spec, points []Point) core.Result {
	headers := make([]string, 0, len(sp.Axes)+2)
	for _, ax := range sp.Axes {
		headers = append(headers, ax.Name)
	}
	headers = append(headers, "headline", "first finding")
	tbl := report.NewTable(
		fmt.Sprintf("sweep %s: %d points over %s", sp.ID, len(points), axisNames(sp.Axes)),
		headers...)

	var minH, maxH float64
	haveH := false
	for _, pt := range points {
		row := make([]string, 0, len(headers))
		for _, ax := range sp.Axes {
			row = append(row, core.FormatParamValue(pt.Params[ax.Name]))
		}
		h, ok := Headline(pt.Result)
		if ok {
			if !haveH || h < minH {
				minH = h
			}
			if !haveH || h > maxH {
				maxH = h
			}
			haveH = true
			row = append(row, report.FormatFloat(h))
		} else {
			row = append(row, "")
		}
		first := ""
		if len(pt.Result.Findings) > 0 {
			first = pt.Result.Findings[0]
		}
		row = append(row, first)
		tbl.AddRow(row...)
	}

	res := core.Result{Table: tbl}
	if fig := aggregateFigure(sp, points); fig != nil {
		res.Figure = fig
	}
	res.Findings = append(res.Findings,
		fmt.Sprintf("%s (%s) swept over %s: %d points",
			sp.ID, exp.Title, axisNames(sp.Axes), len(points)))
	if haveH {
		res.Findings = append(res.Findings,
			fmt.Sprintf("headline metric spans [%s, %s] across the grid",
				report.FormatFloat(minH), report.FormatFloat(maxH)))
	}
	return res
}

// aggregateFigure plots the headline metric for 1- and 2-axis sweeps:
// x is the last axis; a 2-axis sweep gets one series per leading-axis
// value. Wider grids and headline-less results yield no figure.
func aggregateFigure(sp Spec, points []Point) *report.Figure {
	if len(sp.Axes) < 1 || len(sp.Axes) > 2 {
		return nil
	}
	xAxis := sp.Axes[len(sp.Axes)-1]
	fig := report.NewFigure(
		fmt.Sprintf("sweep %s: headline metric vs %s", sp.ID, xAxis.Name),
		xAxis.Name, "headline")
	series := map[string]*report.Series{}
	any := false
	for _, pt := range points {
		h, ok := Headline(pt.Result)
		if !ok {
			continue
		}
		name := "headline"
		if len(sp.Axes) == 2 {
			lead := sp.Axes[0]
			name = lead.Name + "=" + core.FormatParamValue(pt.Params[lead.Name])
		}
		s, ok := series[name]
		if !ok {
			s = fig.AddSeries(name)
			series[name] = s
		}
		s.Add(pt.Params[xAxis.Name], h)
		any = true
	}
	if !any {
		return nil
	}
	return fig
}
