package sweep

// Native Go fuzzing over axis/spec parsing — the surface POST /sweep
// hands attacker-controlled strings to. ParseAxis must never panic, and
// every accepted axis must respect the expansion bounds (this is the
// machinery a NaN range once turned into an unbounded loop). Seeds come
// from the forms the existing table tests cover.

import (
	"math"
	"testing"
)

func FuzzParseAxis(f *testing.F) {
	for _, seed := range []string{
		"f=0.9:0.99:0.03",
		"bces=64,256",
		"gens=8",
		"f=0.5",
		"tile=256,1024,4096,16384,65536",
		"operands=1:8:1",
		"f=NaN:1:0.1",
		"f=0:Inf:1",
		"f=0:1:0",
		"x=1:0:1",
		"=5",
		"noequals",
		"f=1:2",
		"f=1:2:3:4",
		"f=1e308:2e308:1e300",
		"f= 0.9 : 0.99 : 0.03 ",
		"a=-1,-2,-3",
		"b=,,,",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ax, err := ParseAxis(s)
		if err != nil {
			return
		}
		if ax.Name == "" {
			t.Fatalf("accepted axis %q has empty name", s)
		}
		if len(ax.Values) == 0 {
			t.Fatalf("accepted axis %q has no values", s)
		}
		if len(ax.Values) > MaxPoints+1 {
			t.Fatalf("accepted axis %q expanded to %d values (cap %d)", s, len(ax.Values), MaxPoints)
		}
		for _, v := range ax.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted axis %q carries non-finite value %v", s, v)
			}
		}
		// The same string must parse as part of a spec, and the spec's
		// grid must respect the global cap (one axis: grid == values).
		sp, err := ParseSpec("E7", []string{s})
		if err != nil {
			// ParseSpec may reject what ParseAxis accepts only via the
			// incremental grid cap.
			if len(ax.Values) <= MaxPoints {
				t.Fatalf("ParseSpec rejected a cap-respecting axis %q: %v", s, err)
			}
			return
		}
		if got := len(sp.Grid()); got != len(ax.Values) {
			t.Fatalf("1-axis grid size %d != axis values %d for %q", got, len(ax.Values), s)
		}
	})
}
