package sweep

// e2e cancellation: dropping the NDJSON /sweep stream must cancel the
// sweep's in-flight grid points, not just the queued ones — the engine's
// executions counter stops rising and never reaches the full grid.

import (
	"bufio"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/serve"
)

// slowCtxRunner sleeps d per point, returning early (with ctx.Err) when
// the request context is canceled — the behavior core.RunWith gives real
// experiments via their iteration-boundary checks.
func slowCtxRunner(d time.Duration) func(context.Context, string, core.Params) (core.Result, error) {
	return func(ctx context.Context, id string, p core.Params) (core.Result, error) {
		select {
		case <-ctx.Done():
			return core.Result{}, ctx.Err()
		case <-time.After(d):
		}
		res := core.Result{Findings: []string{"point done"}}
		res.SetHeadline(p.Float("f"))
		return res, nil
	}
}

func TestDroppedSweepStreamCancelsInFlightPoints(t *testing.T) {
	eng := serve.NewEngine(serve.Config{
		Shards: 4, Workers: 2, Queue: 4,
		RunnerWith: slowCtxRunner(30 * time.Millisecond),
	})
	defer eng.Close()
	srv := httptest.NewServer(Handler(eng))
	defer srv.Close()

	// A 36-point grid at 30ms per cold point: ~540ms of compute if nobody
	// cancels it.
	body := `{"id":"E7","params":["f=0.9:0.985:0.005","bces=64,1024"],"parallelism":2}`
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatalf("POST /sweep: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// Read two streamed point lines, then hang up mid-sweep.
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 2; i++ {
		if !sc.Scan() {
			t.Fatalf("stream ended after %d lines: %v", i, sc.Err())
		}
	}
	resp.Body.Close()

	// The disconnect cancels the request context; in-flight points return
	// at their next cancellation check and queued points never start.
	// Give the abort a moment to propagate, then require the executions
	// counter to go quiet well short of the full grid.
	deadline := time.Now().Add(2 * time.Second)
	var settled int64
	for {
		a := eng.Executions()
		time.Sleep(150 * time.Millisecond)
		b := eng.Executions()
		if a == b {
			settled = b
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("executions still rising long after disconnect (%d -> %d)", a, b)
		}
	}
	if settled >= 36 {
		t.Fatalf("sweep ran to completion (%d executions) despite the dropped stream", settled)
	}
	// And it stays quiet: no background grinding resumes.
	time.Sleep(200 * time.Millisecond)
	if got := eng.Executions(); got != settled {
		t.Fatalf("executions rose again after settling: %d -> %d", settled, got)
	}
}

// sweep.Run itself reacts to caller cancellation: in-flight points are
// canceled through the derived context and the sweep returns promptly
// with the context error.
func TestRunCanceledContextAbortsInFlight(t *testing.T) {
	eng := serve.NewEngine(serve.Config{
		Shards: 4, Workers: 2, Queue: 4,
		RunnerWith: slowCtxRunner(50 * time.Millisecond),
	})
	defer eng.Close()

	sp, err := ParseSpec("E7", []string{"f=0.9:0.985:0.005", "bces=64,1024"})
	if err != nil {
		t.Fatal(err)
	}
	sp.Parallelism = 2
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(80 * time.Millisecond) // a couple of points in
		cancel()
	}()
	t0 := time.Now()
	_, err = Run(ctx, eng, sp, nil)
	if err == nil {
		t.Fatal("canceled sweep returned no error")
	}
	if !errors.Is(err, context.Canceled) && !errors.Is(err, errAborted) {
		t.Fatalf("canceled sweep error = %v", err)
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("canceled sweep took %v; in-flight points were not canceled", elapsed)
	}
	if got := eng.Executions(); got >= 36 {
		t.Fatalf("sweep executed the whole grid (%d) despite cancellation", got)
	}
}

// Sweep grid points run as batch class: the engine accounts them under
// batch, leaving the interactive books untouched.
func TestSweepRunsAsBatchClass(t *testing.T) {
	eng := serve.NewEngine(serve.Config{Shards: 4, Workers: 2,
		RunnerWith: func(_ context.Context, id string, p core.Params) (core.Result, error) {
			res := core.Result{Findings: []string{"ok"}}
			res.SetHeadline(p.Float("f"))
			return res, nil
		}})
	defer eng.Close()
	sp, err := ParseSpec("E7", []string{"f=0.9,0.95,0.99"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), eng, sp, nil); err != nil {
		t.Fatal(err)
	}
	m := eng.Metrics()
	if got := m.Classes[admit.Batch.String()].Requests; got != 3 {
		t.Fatalf("batch-class requests = %d, want 3", got)
	}
	if got := m.Classes[admit.Interactive.String()].Requests; got != 0 {
		t.Fatalf("interactive-class requests = %d, want 0 for a sweep", got)
	}
}
