package sweep

// POST /sweep — the HTTP face of the sweep engine. The request names an
// experiment and its axes; the response streams NDJSON: one line per
// completed grid point (in grid order, flushed as each lands) and one
// final summary line carrying the aggregated report. Repeat sweeps are
// served from the engine's memoizing cache, so a hot sweep streams at
// cache speed. cmd/arch21d mounts this next to the engine's own handlers.

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/core"
	"repro/internal/httpapi"
)

// Request is the POST /sweep body.
type Request struct {
	// ID is the experiment to sweep.
	ID string `json:"id"`
	// Params are axis assignments in sweep order, one "name=value",
	// "name=a,b,c", or "name=lo:hi:step" string per axis.
	Params []string `json:"params"`
	// Parallelism optionally caps in-flight points.
	Parallelism int `json:"parallelism,omitempty"`
}

// PointLine is one streamed NDJSON point line.
type PointLine struct {
	Point     int         `json:"point"`
	Params    core.Params `json:"params"`
	Key       string      `json:"key"`
	CacheHit  bool        `json:"cache_hit"`
	Shared    bool        `json:"shared"`
	LatencyMS float64     `json:"latency_ms"`
	Headline  *float64    `json:"headline,omitempty"`
	Findings  []string    `json:"findings,omitempty"`
}

// SummaryLine is the final NDJSON line.
type SummaryLine struct {
	Summary struct {
		ID        string   `json:"id"`
		Points    int      `json:"points"`
		CacheHits int      `json:"cache_hits"`
		ElapsedMS float64  `json:"elapsed_ms"`
		Findings  []string `json:"findings,omitempty"`
		Report    string   `json:"report"`
	} `json:"summary"`
}

// Handler returns the POST /sweep endpoint backed by the server (an
// engine, or a router fanning points out to their owning replicas).
// Register it as "POST /sweep".
func Handler(srv Server) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A sweep request is a short ID plus a handful of axis strings;
		// cap the body so oversized payloads fail here instead of
		// feeding the grid expander.
		r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			status, code := http.StatusBadRequest, httpapi.CodeBadRequest
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				status, code = http.StatusRequestEntityTooLarge, httpapi.CodePayloadTooLarge
			}
			httpapi.WriteError(w, status, code, "bad request body: "+err.Error())
			return
		}
		sp, err := ParseSpec(req.ID, req.Params)
		if err != nil {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
			return
		}
		sp.Parallelism = req.Parallelism
		// Validate up front so schema errors surface as a proper HTTP
		// status; once streaming starts the status line is committed.
		if _, err := sp.Validate(); err != nil {
			status, code := http.StatusBadRequest, httpapi.CodeBadRequest
			if _, ok := core.ByID(req.ID); !ok {
				status, code = http.StatusNotFound, httpapi.CodeNotFound
			}
			httpapi.WriteError(w, status, code, err.Error())
			return
		}

		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		flusher, _ := w.(http.Flusher)
		line := func(v any) error {
			if err := enc.Encode(v); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		}

		// Run under the request context: a gone client cancels queued AND
		// in-flight grid points (the engine's runner observes the
		// cancellation at its next iteration boundary), and the sweep's
		// points are admitted as batch class by the engine's scheduler.
		sum, err := Run(r.Context(), srv, sp, func(pt Point) error {
			// A gone client must stop the sweep, not leave it grinding
			// through the rest of the grid; Run aborts on the first emit
			// error.
			if err := r.Context().Err(); err != nil {
				return err
			}
			pl := PointLine{
				Point:     pt.Index,
				Params:    pt.Params,
				Key:       pt.Key,
				CacheHit:  pt.CacheHit,
				Shared:    pt.Shared,
				LatencyMS: pt.Latency.Seconds() * 1e3,
				Findings:  pt.Result.Findings,
			}
			if h, ok := Headline(pt.Result); ok {
				pl.Headline = &h
			}
			return line(pl)
		})
		if err != nil {
			// The status line is already out; report the failure as a
			// terminal NDJSON line instead.
			_ = line(map[string]string{"error": err.Error()})
			return
		}
		var sl SummaryLine
		sl.Summary.ID = sum.ID
		sl.Summary.Points = sum.Points
		sl.Summary.CacheHits = sum.CacheHits
		sl.Summary.ElapsedMS = sum.Elapsed.Seconds() * 1e3
		sl.Summary.Findings = sum.Aggregate.Findings
		sl.Summary.Report = sum.Aggregate.Render()
		_ = line(sl)
	})
}
