// Package obs is the serving stack's zero-dependency observability
// plane: a Prometheus-text-format metric registry whose every value is
// collected live from the owning subsystem's books at scrape time (so
// the exposition can never drift from the code), and a bounded
// structured event log recording control-plane decisions — QoS
// controller retunes, admission sheds, replica ejections and
// re-admissions — queryable over HTTP and embeddable in BENCH reports
// so load runs can assert on control behavior instead of anecdotes.
// The paper's "21st century" agenda makes cross-layer visibility a
// first-class requirement; this package is that requirement applied to
// the serving stack itself.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/httpapi"
)

// MetricType is a metric's exposition TYPE.
type MetricType string

// The exposition types the registry emits.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// nameRE is the promlint-clean metric/label name charset: lowercase
// snake_case, starting with a letter. (Prometheus itself also allows
// colons and uppercase; this registry deliberately enforces the
// stricter house style so promlint never flags an arch21 exposition.)
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// Sample is one labeled scalar observation of a counter or gauge
// metric. Values aligns positionally with the metric's declared label
// names; an unlabeled metric uses a single Sample with nil Values.
type Sample struct {
	// Values are the label values, aligned with the metric's label names.
	Values []string
	// Value is the sample's current value.
	Value float64
}

// HistSample is one labeled histogram series: cumulative bucket counts
// for each upper bound (excluding +Inf, whose cumulative count is
// Count), plus the exact count and sum.
type HistSample struct {
	// Values are the label values, aligned with the metric's label names.
	Values []string
	// Bounds are the bucket upper bounds, strictly increasing, in the
	// metric's base unit (seconds for latency histograms).
	Bounds []float64
	// CumCounts[i] counts observations <= Bounds[i] (cumulative —
	// exactly what the `le` exposition buckets carry).
	CumCounts []uint64
	// Count and Sum are the exact observation count and value sum (the
	// `+Inf` bucket equals Count).
	Count uint64
	Sum   float64
}

// metric is one registered family.
type metric struct {
	name, help string
	typ        MetricType
	labels     []string
	collect    func() []Sample
	collectH   func() []HistSample
}

// Registry is an ordered set of metric families exposed in Prometheus
// text format. Registration happens once at construction time (and
// panics on a malformed or duplicate name — drift is a programming
// error, caught at boot and by the promlint test); collection happens
// at every scrape through the registered closures.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]bool{}}
}

// register validates and appends one family.
func (r *Registry) register(m *metric) {
	if !nameRE.MatchString(m.name) {
		panic(fmt.Sprintf("obs: metric name %q is not promlint-clean (want %s)", m.name, nameRE))
	}
	if m.typ == TypeCounter && !strings.HasSuffix(m.name, "_total") {
		panic(fmt.Sprintf("obs: counter %q must end in _total", m.name))
	}
	if m.typ != TypeCounter && strings.HasSuffix(m.name, "_total") {
		panic(fmt.Sprintf("obs: non-counter %q must not end in _total", m.name))
	}
	if m.help == "" {
		panic(fmt.Sprintf("obs: metric %q has no help text", m.name))
	}
	for _, l := range m.labels {
		if !nameRE.MatchString(l) {
			panic(fmt.Sprintf("obs: metric %q label %q is not promlint-clean", m.name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[m.name] {
		panic(fmt.Sprintf("obs: metric %q registered twice", m.name))
	}
	r.byName[m.name] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers an unlabeled counter collected via fn at scrape
// time. The name must end in _total.
func (r *Registry) Counter(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: TypeCounter,
		collect: func() []Sample { return []Sample{{Value: fn()}} }})
}

// Gauge registers an unlabeled gauge collected via fn at scrape time.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: TypeGauge,
		collect: func() []Sample { return []Sample{{Value: fn()}} }})
}

// CounterVec registers a labeled counter family; fn returns one Sample
// per live label combination at scrape time.
func (r *Registry) CounterVec(name, help string, labels []string, fn func() []Sample) {
	r.register(&metric{name: name, help: help, typ: TypeCounter, labels: labels, collect: fn})
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels []string, fn func() []Sample) {
	r.register(&metric{name: name, help: help, typ: TypeGauge, labels: labels, collect: fn})
}

// Histogram registers a (possibly labeled) histogram family; fn returns
// one HistSample per live label combination at scrape time.
func (r *Registry) Histogram(name, help string, labels []string, fn func() []HistSample) {
	r.register(&metric{name: name, help: help, typ: TypeHistogram, labels: labels, collectH: fn})
}

// Names returns every registered family name, sorted — what the
// docs-drift gate pins DESIGN.md §9's metric table to.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.metrics))
	for _, m := range r.metrics {
		names = append(names, m.name)
	}
	sort.Strings(names)
	return names
}

// Families returns (name, type, help, labels) rows in registration
// order, for documentation generators and tests.
type Family struct {
	Name   string
	Type   MetricType
	Help   string
	Labels []string
}

// Families lists every registered family in registration order.
func (r *Registry) Families() []Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Family, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, Family{Name: m.name, Type: m.typ, Help: m.help, Labels: m.labels})
	}
	return out
}

// formatValue renders a sample value the way Prometheus text format
// expects (shortest round-trip representation).
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// labelPairs renders {k="v",...} for aligned names/values; extra is an
// optional trailing pair (the histogram `le` bound).
func labelPairs(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		val := ""
		if i < len(values) {
			val = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(val))
		b.WriteString(`"`)
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(extraV)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText renders the full exposition: every family's HELP and TYPE
// line followed by its samples, collected live.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	for _, m := range metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ); err != nil {
			return err
		}
		if m.typ == TypeHistogram {
			for _, hs := range m.collectH() {
				cum := uint64(0)
				for i, bound := range hs.Bounds {
					if i < len(hs.CumCounts) {
						cum = hs.CumCounts[i]
					}
					le := formatValue(bound)
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name,
						labelPairs(m.labels, hs.Values, "le", le), cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name,
					labelPairs(m.labels, hs.Values, "le", "+Inf"), hs.Count); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.name,
					labelPairs(m.labels, hs.Values, "", ""), formatValue(hs.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name,
					labelPairs(m.labels, hs.Values, "", ""), hs.Count); err != nil {
					return err
				}
			}
			continue
		}
		for _, s := range m.collect() {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.name,
				labelPairs(m.labels, s.Values, "", ""), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler serves GET /metrics in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			httpapi.WriteError(w, http.StatusMethodNotAllowed, httpapi.CodeMethodNotAllowed, "method not allowed")
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
