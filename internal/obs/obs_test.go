package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total", "Requests.", func() float64 { return 3 })
	r.Gauge("t_depth", "Depth.", func() float64 { return 1.5 })
	r.CounterVec("t_hits_total", "Hits.", []string{"class"}, func() []Sample {
		return []Sample{{Values: []string{"interactive"}, Value: 2}, {Values: []string{"batch"}, Value: 0}}
	})
	r.Histogram("t_latency_seconds", "Latency.", []string{"class"}, func() []HistSample {
		return []HistSample{{
			Values:    []string{"batch"},
			Bounds:    []float64{0.001, 0.01},
			CumCounts: []uint64{1, 4},
			Count:     5,
			Sum:       0.25,
		}}
	})
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP t_requests_total Requests.",
		"# TYPE t_requests_total counter",
		"t_requests_total 3",
		"t_depth 1.5",
		`t_hits_total{class="interactive"} 2`,
		`t_hits_total{class="batch"} 0`,
		"# TYPE t_latency_seconds histogram",
		`t_latency_seconds_bucket{class="batch",le="0.001"} 1`,
		`t_latency_seconds_bucket{class="batch",le="0.01"} 4`,
		`t_latency_seconds_bucket{class="batch",le="+Inf"} 5`,
		`t_latency_seconds_sum{class="batch"} 0.25`,
		`t_latency_seconds_count{class="batch"} 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	cases := []func(r *Registry){
		func(r *Registry) { r.Counter("BadName_total", "x.", func() float64 { return 0 }) },
		func(r *Registry) { r.Counter("t_requests", "x.", func() float64 { return 0 }) },  // counter sans _total
		func(r *Registry) { r.Gauge("t_depth_total", "x.", func() float64 { return 0 }) }, // gauge with _total
		func(r *Registry) { r.Gauge("t_depth", "", func() float64 { return 0 }) },         // no help
		func(r *Registry) {
			r.GaugeVec("t_depth", "x.", []string{"Class"}, func() []Sample { return nil })
		},
		func(r *Registry) { // duplicate
			r.Gauge("t_depth", "x.", func() float64 { return 0 })
			r.Gauge("t_depth", "y.", func() float64 { return 0 })
		},
	}
	for i, reg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: registration did not panic", i)
				}
			}()
			reg(NewRegistry())
		}()
	}
}

func TestEventsRingAndSince(t *testing.T) {
	e := NewEvents(4)
	for i := 0; i < 6; i++ {
		e.Record(EventShed, map[string]string{"class": "batch"}, map[string]float64{"i": float64(i)})
	}
	if got := e.Total(); got != 6 {
		t.Fatalf("total = %d, want 6", got)
	}
	all := e.Since(0)
	if len(all) != 4 {
		t.Fatalf("ring retained %d, want 4", len(all))
	}
	if all[0].Seq != 3 || all[3].Seq != 6 {
		t.Fatalf("ring holds seqs %d..%d, want 3..6", all[0].Seq, all[3].Seq)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq != all[i-1].Seq+1 {
			t.Fatalf("ring out of order: %+v", all)
		}
	}
	if got := e.Since(5); len(got) != 1 || got[0].Seq != 6 {
		t.Fatalf("Since(5) = %+v, want just seq 6", got)
	}
}

func TestEventsNilSafe(t *testing.T) {
	var e *Events
	e.Record(EventShed, nil, nil) // must not panic
	if e.Total() != 0 || e.Since(0) != nil {
		t.Fatal("nil Events should report empty")
	}
	e.SetSink(&bytes.Buffer{})
}

func TestEventsHandlerAndSink(t *testing.T) {
	e := NewEvents(16)
	var sink bytes.Buffer
	e.SetSink(&sink)
	e.Record(EventController, map[string]string{"action": "halve"},
		map[string]float64{"rate_before": 100, "rate_after": 50})

	rec := httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/events?since=0", nil))
	var page struct {
		Next    uint64  `json:"next"`
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("bad /events JSON: %v", err)
	}
	if page.Next != 1 || len(page.Events) != 1 || page.Dropped != 0 {
		t.Fatalf("page = %+v", page)
	}
	ev := page.Events[0]
	if ev.Type != EventController || ev.Labels["action"] != "halve" || ev.Data["rate_after"] != 50 {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Time().After(time.Now().Add(time.Second)) {
		t.Fatalf("bad timestamp: %v", ev.Time())
	}
	// NDJSON sink got the same event as one line.
	line := strings.TrimSpace(sink.String())
	if strings.Count(line, "\n") != 0 || !strings.Contains(line, `"type":"controller"`) {
		t.Fatalf("sink line = %q", line)
	}
	// Bad cursor is a 400.
	rec = httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/events?since=x", nil))
	if rec.Code != 400 {
		t.Fatalf("bad since gave %d, want 400", rec.Code)
	}
}
