package obs

import (
	"strings"
	"testing"
)

func TestLintCleanRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_requests_total", "Requests.", func() float64 { return 3 })
	r.Gauge("demo_depth", "Depth.", func() float64 { return 1 })
	r.Histogram("demo_latency_seconds", "Latency.", []string{"class"}, func() []HistSample {
		return []HistSample{{
			Values:    []string{"interactive"},
			Bounds:    []float64{0.01, 0.1},
			CumCounts: []uint64{1, 4},
			Count:     5,
			Sum:       0.9,
		}}
	})
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if problems := Lint(strings.NewReader(sb.String())); len(problems) > 0 {
		t.Fatalf("registry output should lint clean, got:\n  %s", strings.Join(problems, "\n  "))
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring of an expected problem
	}{
		{
			name: "sample without metadata",
			text: "orphan_metric 1\n",
			want: "sample before HELP/TYPE",
		},
		{
			name: "counter without _total",
			text: "# HELP bad_counter Count.\n# TYPE bad_counter counter\nbad_counter 1\n",
			want: "must end in _total",
		},
		{
			name: "gauge with _total",
			text: "# HELP bad_gauge_total Depth.\n# TYPE bad_gauge_total gauge\nbad_gauge_total 1\n",
			want: "must not end in _total",
		},
		{
			name: "uppercase name",
			text: "# HELP BadName Help.\n# TYPE BadName gauge\nBadName 1\n",
			want: "not promlint-clean",
		},
		{
			name: "missing +Inf bucket",
			text: "# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				`h_seconds_bucket{le="0.1"} 2` + "\nh_seconds_sum 0.1\nh_seconds_count 2\n",
			want: `no le="+Inf" terminal bucket`,
		},
		{
			name: "non-cumulative buckets",
			text: "# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				`h_seconds_bucket{le="0.1"} 5` + "\n" +
				`h_seconds_bucket{le="1"} 3` + "\n" +
				`h_seconds_bucket{le="+Inf"} 5` + "\nh_seconds_sum 1\nh_seconds_count 5\n",
			want: "not cumulative",
		},
		{
			name: "+Inf disagrees with _count",
			text: "# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				`h_seconds_bucket{le="+Inf"} 4` + "\nh_seconds_sum 1\nh_seconds_count 5\n",
			want: "!= _count",
		},
		{
			name: "missing HELP",
			text: "# TYPE lonely_gauge gauge\nlonely_gauge 1\n",
			want: "no HELP line",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := Lint(strings.NewReader(tc.text))
			for _, p := range problems {
				if strings.Contains(p, tc.want) {
					return
				}
			}
			t.Fatalf("want a problem containing %q, got %v", tc.want, problems)
		})
	}
}
