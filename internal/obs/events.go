package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/httpapi"
)

// Event types the serving stack records. The docs-drift gate pins
// DESIGN.md §9's event-schema table to exactly this list.
const (
	// EventController is one QoS feedback-controller decision: labels
	// action=halve|reclaim|hold, data rate_before/rate_after/p99/slo.
	EventController = "controller"
	// EventShed is one admission shed: labels class, reason=queue|deadline,
	// data retry_after_seconds.
	EventShed = "shed"
	// EventEjection is one replica ejection: labels backend, data
	// consecutive_failures.
	EventEjection = "ejection"
	// EventReadmit is one replica re-admission after a successful probe:
	// labels backend.
	EventReadmit = "readmit"
	// EventControl is one accepted POST /control retune: labels carry the
	// applied knobs (batch_rate, slo_ms, policy) as strings.
	EventControl = "control"
)

// EventTypes lists every event type the stack records (for docs gates).
func EventTypes() []string {
	return []string{EventController, EventShed, EventEjection, EventReadmit, EventControl}
}

// Event is one structured control-plane occurrence. Events serialize
// into BENCH reports and over GET /events, so load runs can assert on
// control behavior ("the controller recovered batch rate within 5s of
// storm end") instead of eyeballing logs.
type Event struct {
	// Seq is the event's position in the recorder's total stream — the
	// cursor GET /events?since= pages by. Strictly increasing; gaps mean
	// the bounded ring dropped older events between reads.
	Seq uint64 `json:"seq"`
	// TimeUnixNano stamps the recording time.
	TimeUnixNano int64 `json:"t_unix_nano"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Labels are the event's discrete dimensions (class, backend, action).
	Labels map[string]string `json:"labels,omitempty"`
	// Data are the event's numeric payload (rates, latencies, counts).
	Data map[string]float64 `json:"data,omitempty"`
}

// Time returns the event's timestamp.
func (e Event) Time() time.Time { return time.Unix(0, e.TimeUnixNano) }

// Events is a bounded ring of structured events plus an optional NDJSON
// sink. All methods are safe for concurrent use and safe on a nil
// receiver (recording into a nil *Events is a no-op), so subsystems can
// thread an event log without nil-guarding every call site.
type Events struct {
	mu   sync.Mutex
	buf  []Event // ring storage, len == cap once full
	cap  int
	next int    // ring write position
	seq  uint64 // total events ever recorded
	sink io.Writer
	now  func() time.Time
}

// DefaultEventCap bounds the ring when NewEvents is given no capacity.
const DefaultEventCap = 1024

// NewEvents returns a ring holding the most recent capacity events
// (<= 0 uses DefaultEventCap).
func NewEvents(capacity int) *Events {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &Events{buf: make([]Event, 0, capacity), cap: capacity, now: time.Now}
}

// SetSink attaches an NDJSON sink: every subsequent event is appended to
// w as one JSON line, under the ring's lock (callers wanting async IO
// should hand in a buffered writer). Nil detaches.
func (e *Events) SetSink(w io.Writer) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.sink = w
	e.mu.Unlock()
}

// Record appends one event. Nil-safe: a nil *Events drops it.
func (e *Events) Record(typ string, labels map[string]string, data map[string]float64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	ev := Event{
		Seq:          e.seq + 1,
		TimeUnixNano: e.now().UnixNano(),
		Type:         typ,
		Labels:       labels,
		Data:         data,
	}
	e.seq++
	if len(e.buf) < e.cap {
		e.buf = append(e.buf, ev)
	} else {
		e.buf[e.next] = ev
	}
	e.next = (e.next + 1) % e.cap
	sink := e.sink
	e.mu.Unlock()
	if sink != nil {
		if line, err := json.Marshal(ev); err == nil {
			_, _ = sink.Write(append(line, '\n'))
		}
	}
}

// Total returns how many events have ever been recorded (the ring may
// hold fewer).
func (e *Events) Total() uint64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seq
}

// Since returns every retained event with Seq > since, oldest first.
// Since(0) returns the whole ring.
func (e *Events) Since(since uint64) []Event {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Event, 0, len(e.buf))
	// Ring order: oldest starts at next when full, at 0 while filling.
	start := 0
	if len(e.buf) == e.cap {
		start = e.next
	}
	for i := 0; i < len(e.buf); i++ {
		ev := e.buf[(start+i)%len(e.buf)]
		if ev.Seq > since {
			out = append(out, ev)
		}
	}
	return out
}

// eventsPage is the GET /events response envelope.
type eventsPage struct {
	// Next is the cursor to pass as ?since= to receive only newer events.
	Next uint64 `json:"next"`
	// Dropped reports how many events have aged out of the ring entirely
	// (recorded minus retained) — nonzero means a pollers gap.
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

// Handler serves GET /events?since=N: all retained events with Seq > N
// plus the next cursor.
func (e *Events) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			httpapi.WriteError(w, http.StatusMethodNotAllowed, httpapi.CodeMethodNotAllowed, "method not allowed")
			return
		}
		var since uint64
		if s := req.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest,
					"bad since cursor (want an unsigned integer)")
				return
			}
			since = v
		}
		evs := e.Since(since)
		page := eventsPage{Next: e.Total(), Events: evs}
		if e != nil {
			e.mu.Lock()
			page.Dropped = e.seq - uint64(len(e.buf))
			e.mu.Unlock()
		}
		if evs == nil {
			page.Events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(page)
	})
}
