package obs

// A promlint-style checker for the text exposition format. The serving
// stack's registries can only emit what register() accepted, but that
// guarantee lives in one process — Lint re-checks the rendered bytes, so
// tests (and the CI metrics-smoke step) validate the actual scrape a
// Prometheus server would ingest, not the registry's intent.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// lintFamily tracks one family's declared metadata while scanning.
type lintFamily struct {
	typ     string
	help    bool
	samples int
	// histogram bookkeeping: per label-set (minus le) bucket series.
	buckets map[string][]histBucket
	counts  map[string]float64
	sums    map[string]bool
}

type histBucket struct {
	le    float64 // +Inf encoded as math.Inf(1)
	isInf bool
	val   float64
}

// Lint scans a text exposition and returns one problem string per
// violation: malformed names, samples without HELP/TYPE, counters not
// ending in _total, histogram bucket series that are non-cumulative or
// missing their le="+Inf" terminal, +Inf buckets disagreeing with
// _count. An empty slice means the exposition is clean.
func Lint(r io.Reader) []string {
	var problems []string
	fams := map[string]*lintFamily{}
	order := []string{}
	fam := func(name string) *lintFamily {
		f, ok := fams[name]
		if !ok {
			f = &lintFamily{buckets: map[string][]histBucket{}, counts: map[string]float64{}, sums: map[string]bool{}}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			f := fam(name)
			if strings.TrimSpace(help) == "" {
				problems = append(problems, fmt.Sprintf("line %d: %s: empty HELP text", lineNo, name))
			}
			f.help = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				problems = append(problems, fmt.Sprintf("line %d: malformed TYPE line %q", lineNo, line))
				continue
			}
			name, typ := parts[0], parts[1]
			f := fam(name)
			if f.samples > 0 {
				problems = append(problems, fmt.Sprintf("line %d: %s: TYPE after samples", lineNo, name))
			}
			if f.typ != "" {
				problems = append(problems, fmt.Sprintf("line %d: %s: duplicate TYPE", lineNo, name))
			}
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			problems = append(problems, fmt.Sprintf("line %d: %v", lineNo, err))
			continue
		}
		family := name
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, s)
			if base != name {
				if f, ok := fams[base]; ok && f.typ == "histogram" {
					family, suffix = base, s
				}
				break
			}
		}
		f, declared := fams[family]
		if !declared {
			problems = append(problems, fmt.Sprintf("line %d: %s: sample before HELP/TYPE", lineNo, name))
			f = fam(family)
		} else if !f.help || f.typ == "" {
			problems = append(problems, fmt.Sprintf("line %d: %s: missing %s", lineNo, family,
				map[bool]string{true: "TYPE", false: "HELP"}[f.help]))
		}
		f.samples++

		if !nameRE.MatchString(family) {
			problems = append(problems, fmt.Sprintf("line %d: %s: name is not promlint-clean", lineNo, family))
		}
		if f.typ == "counter" && !strings.HasSuffix(family, "_total") {
			problems = append(problems, fmt.Sprintf("line %d: counter %s must end in _total", lineNo, family))
		}
		if f.typ == "gauge" && strings.HasSuffix(family, "_total") {
			problems = append(problems, fmt.Sprintf("line %d: gauge %s must not end in _total", lineNo, family))
		}

		if f.typ == "histogram" {
			key, le, hasLE := splitLE(labels)
			switch suffix {
			case "_bucket":
				if !hasLE {
					problems = append(problems, fmt.Sprintf("line %d: %s_bucket without le label", lineNo, family))
					continue
				}
				b := histBucket{val: value}
				if le == "+Inf" {
					b.isInf, b.le = true, math.Inf(1)
				} else {
					v, err := strconv.ParseFloat(le, 64)
					if err != nil {
						problems = append(problems, fmt.Sprintf("line %d: %s: bad le %q", lineNo, family, le))
						continue
					}
					b.le = v
				}
				f.buckets[key] = append(f.buckets[key], b)
			case "_count":
				f.counts[key] = value
			case "_sum":
				f.sums[key] = true
			default:
				problems = append(problems, fmt.Sprintf("line %d: histogram %s has a bare sample %s", lineNo, family, name))
			}
		}
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("scan: %v", err))
	}

	// Whole-exposition checks, in family order for stable output.
	for _, name := range order {
		f := fams[name]
		if f.typ == "" {
			problems = append(problems, fmt.Sprintf("%s: no TYPE line", name))
		}
		if !f.help {
			problems = append(problems, fmt.Sprintf("%s: no HELP line", name))
		}
		if f.typ != "histogram" {
			continue
		}
		keys := make([]string, 0, len(f.buckets))
		for k := range f.buckets {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bs := f.buckets[k]
			sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
			last := bs[len(bs)-1]
			if !last.isInf {
				problems = append(problems, fmt.Sprintf("%s{%s}: no le=\"+Inf\" terminal bucket", name, k))
			}
			for i := 1; i < len(bs); i++ {
				if bs[i].val < bs[i-1].val {
					problems = append(problems, fmt.Sprintf(
						"%s{%s}: buckets not cumulative (le=%g count %g < previous %g)",
						name, k, bs[i].le, bs[i].val, bs[i-1].val))
				}
			}
			if cnt, ok := f.counts[k]; ok && last.isInf && last.val != cnt {
				problems = append(problems, fmt.Sprintf(
					"%s{%s}: le=\"+Inf\" bucket %g != _count %g", name, k, last.val, cnt))
			}
			if _, ok := f.sums[k]; !ok {
				problems = append(problems, fmt.Sprintf("%s{%s}: missing _sum series", name, k))
			}
			if _, ok := f.counts[k]; !ok {
				problems = append(problems, fmt.Sprintf("%s{%s}: missing _count series", name, k))
			}
		}
	}
	return problems
}

// parseSample splits one sample line into name, raw label block, value.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("malformed labels in %q", line)
		}
		name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	v, perr := strconv.ParseFloat(strings.Fields(rest)[0], 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("bad value in %q", line)
	}
	return name, labels, v, nil
}

// splitLE strips the le pair out of a raw label block, returning the
// remaining block (the series key) and the le value.
func splitLE(labels string) (key, le string, ok bool) {
	if labels == "" {
		return "", "", false
	}
	var kept []string
	for _, pair := range splitLabelPairs(labels) {
		k, v, _ := strings.Cut(pair, "=")
		v = strings.Trim(v, `"`)
		if k == "le" {
			le, ok = v, true
			continue
		}
		kept = append(kept, pair)
	}
	return strings.Join(kept, ","), le, ok
}

// splitLabelPairs splits k="v" pairs on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
