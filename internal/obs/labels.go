package obs

import "fmt"

// MaxBoundedLabelValues caps a BoundedLabels vocabulary. The whole point
// of the type is that label cardinality is an operator decision made at
// boot, never a function of request traffic; a vocabulary this large is
// a config bug.
const MaxBoundedLabelValues = 64

// BoundedLabels maps request-derived strings onto a fixed label
// vocabulary declared at construction — the bounded-cardinality rule
// for per-tenant metric families. Values in the declared set map to
// their own index; everything else (including the empty string) folds
// into the overflow bucket, so a scrape's series count is bounded by
// config no matter what identities requests carry. The zero value is
// unusable; construct with NewBoundedLabels.
type BoundedLabels struct {
	values []string
	index  map[string]int
}

// NewBoundedLabels builds a vocabulary from the declared values plus an
// overflow bucket (conventionally "other"). Declared values must be
// non-empty, distinct, distinct from the overflow name, and at most
// MaxBoundedLabelValues in number. Like registry registration, a bad
// vocabulary panics: it is boot-time operator config, and failing loudly
// at startup beats serving unbounded or ambiguous series.
func NewBoundedLabels(declared []string, overflow string) *BoundedLabels {
	if overflow == "" {
		panic("obs: bounded labels need a non-empty overflow bucket name")
	}
	if len(declared) > MaxBoundedLabelValues {
		panic(fmt.Sprintf("obs: %d bounded label values exceed cap %d", len(declared), MaxBoundedLabelValues))
	}
	b := &BoundedLabels{
		values: make([]string, 0, len(declared)+1),
		index:  make(map[string]int, len(declared)+1),
	}
	for _, v := range declared {
		if v == "" {
			panic("obs: empty bounded label value")
		}
		if v == overflow {
			panic(fmt.Sprintf("obs: bounded label value %q collides with the overflow bucket", v))
		}
		if _, dup := b.index[v]; dup {
			panic(fmt.Sprintf("obs: duplicate bounded label value %q", v))
		}
		b.index[v] = len(b.values)
		b.values = append(b.values, v)
	}
	b.values = append(b.values, overflow)
	return b
}

// Len returns the vocabulary size including the overflow bucket.
func (b *BoundedLabels) Len() int { return len(b.values) }

// Index maps a raw value onto its vocabulary slot: declared values get
// their own, everything else the overflow slot.
func (b *BoundedLabels) Index(v string) int {
	if i, ok := b.index[v]; ok {
		return i
	}
	return len(b.values) - 1
}

// Value returns the label value for slot i.
func (b *BoundedLabels) Value(i int) string { return b.values[i] }

// Values returns the full vocabulary, declared order then overflow.
// The slice is shared; callers must not mutate it.
func (b *BoundedLabels) Values() []string { return b.values }
