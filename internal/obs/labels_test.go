package obs

import (
	"strings"
	"testing"
)

func TestBoundedLabels(t *testing.T) {
	b := NewBoundedLabels([]string{"alpha", "beta"}, "other")
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if i := b.Index("alpha"); i != 0 || b.Value(i) != "alpha" {
		t.Errorf("alpha -> %d (%q)", i, b.Value(i))
	}
	if i := b.Index("beta"); i != 1 {
		t.Errorf("beta -> %d", i)
	}
	// Anything outside the declared vocabulary — unknown tenants, the
	// empty string, hostile garbage — folds into overflow: cardinality
	// is config-derived, never request-derived.
	for _, v := range []string{"gamma", "", "alpha2", strings.Repeat("x", 10000)} {
		if i := b.Index(v); b.Value(i) != "other" {
			t.Errorf("%q -> %q, want other", v, b.Value(i))
		}
	}
	if got := b.Values(); len(got) != 3 || got[2] != "other" {
		t.Errorf("Values = %v", got)
	}
}

func TestBoundedLabelsEmptyDeclared(t *testing.T) {
	b := NewBoundedLabels(nil, "other")
	if b.Len() != 1 || b.Value(b.Index("anything")) != "other" {
		t.Errorf("empty vocabulary should still fold everything into overflow")
	}
}

func TestBoundedLabelsPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	expectPanic("dup", func() { NewBoundedLabels([]string{"a", "a"}, "other") })
	expectPanic("empty value", func() { NewBoundedLabels([]string{""}, "other") })
	expectPanic("empty overflow", func() { NewBoundedLabels([]string{"a"}, "") })
	expectPanic("overflow collision", func() { NewBoundedLabels([]string{"other"}, "other") })
	expectPanic("over cap", func() {
		big := make([]string, MaxBoundedLabelValues+1)
		for i := range big {
			big[i] = strings.Repeat("t", i+1)
		}
		NewBoundedLabels(big, "other")
	})
}
