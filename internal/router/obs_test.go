package router

// Observability-plane acceptance for the routing front-end: the router's
// own /metrics must lint clean under load, and POST /control must retune
// every replica of a live 3-node HTTP cluster without restarts — the
// cluster-wide control story ISSUE's acceptance criteria pin.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

func TestRouterMetricsExpositionClean(t *testing.T) {
	r, engines := newRegistryCluster(t, 3, "", Config{})
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	for i := 0; i < 12; i++ {
		if _, err := r.Serve(fmt.Sprintf("E%d", 1+i%3)); err != nil {
			t.Fatalf("serve: %v", err)
		}
	}

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", rec.Code)
	}
	body := rec.Body.String()
	if problems := obs.Lint(strings.NewReader(body)); len(problems) > 0 {
		t.Fatalf("router /metrics not promlint-clean:\n  %s", strings.Join(problems, "\n  "))
	}
	for _, want := range []string{
		"# TYPE arch21_router_backends gauge",
		"# TYPE arch21_router_requests_total counter",
		"# TYPE arch21_router_failovers_total counter",
		`arch21_backend_up{backend="engine[0]"} 1`,
		`arch21_backend_requests_total{backend="engine[1]"}`,
		`arch21_backend_ejections_total{backend="engine[2]"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("router /metrics missing %q", want)
		}
	}
}

// TestControlFanOutInProcess covers the fan-out semantics cheaply: every
// EngineBackend applies, a non-Controller backend reports "unsupported".
func TestControlFanOutInProcess(t *testing.T) {
	engines := make([]*serve.Engine, 2)
	backends := make([]Backend, 3)
	for i := range engines {
		engines[i] = serve.NewEngine(serve.Config{Shards: 2, Workers: 1})
		defer engines[i].Close()
		backends[i] = NewEngineBackend(engines[i], fmt.Sprintf("engine[%d]", i))
	}
	backends[2] = plainBackend{NewEngineBackend(serve.NewEngine(serve.Config{Workers: 1}), "plain")}
	r, err := New(backends, Config{})
	if err != nil {
		t.Fatal(err)
	}

	acks := r.Control(context.Background(), []byte(`{"batch_rate": 48}`))
	if len(acks) != 3 {
		t.Fatalf("got %d acks, want 3", len(acks))
	}
	byName := map[string]ReplicaAck{}
	for _, a := range acks {
		byName[a.Backend] = a
	}
	for i, e := range engines {
		name := fmt.Sprintf("engine[%d]", i)
		if !byName[name].OK {
			t.Errorf("%s: ack not OK: %+v", name, byName[name])
		}
		if got := e.BatchRate(); got != 48 {
			t.Errorf("%s batch rate = %g, want 48", name, got)
		}
	}
	if a := byName["plain"]; a.OK || a.Error != "unsupported" {
		t.Errorf("non-Controller backend ack: %+v", a)
	}
}

// plainBackend hides EngineBackend's Control method (the embedded field
// is the plain Backend interface), modeling a replica that predates the
// control channel.
type plainBackend struct{ Backend }

// TestControlRetunesThreeNodeHTTPCluster is the acceptance e2e: three
// replicas serving over real HTTP behind the routing front-end, one
// POST /control against the front-end, and every replica's batch rate
// observably retuned — no restarts anywhere.
func TestControlRetunesThreeNodeHTTPCluster(t *testing.T) {
	const n = 3
	engines := make([]*serve.Engine, n)
	backends := make([]Backend, n)
	for i := 0; i < n; i++ {
		engines[i] = serve.NewEngine(serve.Config{Shards: 2, Workers: 2, BatchRate: 512})
		defer engines[i].Close()
		srv := httptest.NewServer(engines[i].Handler())
		defer srv.Close()
		backends[i] = NewHTTPBackend(srv.URL)
	}
	r, err := New(backends, Config{})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(r.Handler())
	defer front.Close()

	// The cluster is live: requests flow front-end -> HTTP replica.
	resp, err := http.Get(front.URL + "/run/E1")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster not serving: %v (%v)", err, resp)
	}
	resp.Body.Close()

	body := []byte(`{"batch_rate": 96, "policy": "shared-fifo"}`)
	cr, err := http.Post(front.URL+"/control", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /control: %v", err)
	}
	defer cr.Body.Close()
	if cr.StatusCode != http.StatusOK {
		t.Fatalf("POST /control: HTTP %d (fan-out not fully applied)", cr.StatusCode)
	}
	var out struct {
		Replicas []ReplicaAck `json:"replicas"`
	}
	if err := json.NewDecoder(cr.Body).Decode(&out); err != nil {
		t.Fatalf("bad fan-out response: %v", err)
	}
	if len(out.Replicas) != n {
		t.Fatalf("acks for %d replicas, want %d", len(out.Replicas), n)
	}
	for _, a := range out.Replicas {
		if !a.OK {
			t.Errorf("replica %s failed: %s", a.Backend, a.Error)
		}
		var ack serve.ControlAck
		if err := json.Unmarshal([]byte(a.Ack), &ack); err != nil {
			t.Errorf("replica %s: bad ack %q: %v", a.Backend, a.Ack, err)
			continue
		}
		if ack.Applied["batch_rate"] != "96" || ack.Applied["policy"] != "shared-fifo" {
			t.Errorf("replica %s applied %+v", a.Backend, ack.Applied)
		}
	}
	// The knobs actually moved on every engine, live.
	for i, e := range engines {
		if got := e.BatchRate(); got != 96 {
			t.Errorf("replica %d batch rate = %g, want 96", i, got)
		}
	}
	// And the front-end logged the cluster-wide control event.
	var sawControl bool
	for _, ev := range r.Events().Since(0) {
		if ev.Type == obs.EventControl {
			sawControl = true
		}
	}
	if !sawControl {
		t.Error("front-end event ring has no control event")
	}

	// Partial failure surfaces as 207 with per-replica detail: kill one
	// replica's HTTP listener and retune again.
	// (Rebuild the cluster so the dead server is deterministic.)
	dead := httptest.NewServer(engines[0].Handler())
	deadBackend := NewHTTPBackend(dead.URL)
	dead.Close()
	r2, err := New([]Backend{deadBackend, backends[1]}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	front2 := httptest.NewServer(r2.Handler())
	defer front2.Close()
	cr2, err := http.Post(front2.URL+"/control", "application/json",
		bytes.NewReader([]byte(`{"batch_rate": 128}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer cr2.Body.Close()
	if cr2.StatusCode != http.StatusMultiStatus {
		t.Fatalf("partial fan-out failure: HTTP %d want 207", cr2.StatusCode)
	}
}

// TestRouterConcurrentScrapeServeControl is the router-side race lane:
// routed serving, /metrics scrapes, and control fan-outs at once.
func TestRouterConcurrentScrapeServeControl(t *testing.T) {
	r, engines := newRegistryCluster(t, 3, "", Config{})
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	h := r.Handler()

	const iters = 30
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ctx := admit.WithClass(context.Background(), admit.Interactive)
				_, _ = r.ServeWith(ctx, fmt.Sprintf("E%d", 1+(g+i)%3), core.Params{})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
			rec = httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/events?since=0", nil))
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			body := fmt.Sprintf(`{"batch_rate": %d}`, 100+i)
			acks := r.Control(context.Background(), []byte(body))
			for _, a := range acks {
				if !a.OK {
					t.Errorf("control fan-out: %s: %s", a.Backend, a.Error)
					return
				}
			}
		}
	}()
	wg.Wait()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if problems := obs.Lint(strings.NewReader(rec.Body.String())); len(problems) > 0 {
		t.Fatalf("post-race router scrape not clean:\n  %s", strings.Join(problems, "\n  "))
	}
}
