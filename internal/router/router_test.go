package router

// Fault-injection suite: a flaky-backend test double with configurable
// error bursts, error rates, latency spikes, and hard hangs, driving the
// router's failover, ejection, and re-admission machinery — plus an HTTP
// double proving the same over a real wire.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/stats"
)

// fakeResult builds a small deterministic result.
func fakeResult(id string) core.Result {
	tb := report.NewTable("result for "+id, "metric", "value")
	tb.AddRow("answer", "42")
	return core.Result{Table: tb, Findings: []string{"finding for " + id}}
}

// newTestEngine builds a small engine whose runner serves any ID.
func newTestEngine(t *testing.T) *serve.Engine {
	t.Helper()
	e := serve.NewEngine(serve.Config{Shards: 4, Workers: 2,
		Runner: func(id string) (core.Result, error) { return fakeResult(id), nil }})
	t.Cleanup(e.Close)
	return e
}

// flakyBackend wraps an inner backend with injectable faults: fail the
// next N calls, fail a fraction of calls, delay every call, or hang
// outright until released. Check fails while the backend is "down" so
// re-admission is observable.
type flakyBackend struct {
	inner Backend
	name  string

	mu       sync.Mutex
	failNext int           // hard-fail this many upcoming calls
	errRate  float64       // fraction of calls failed at random
	rng      *stats.RNG    // errRate draws
	latency  time.Duration // added to every call (latency spike)
	hung     chan struct{} // when non-nil, Do blocks until closed
	down     bool          // Check fails while set

	calls  atomic.Int64
	checks atomic.Int64
}

func newFlaky(inner Backend, name string) *flakyBackend {
	return &flakyBackend{inner: inner, name: name, rng: stats.NewRNG(99)}
}

func (f *flakyBackend) Do(ctx context.Context, id string, p core.Params) (serve.Response, error) {
	f.calls.Add(1)
	f.mu.Lock()
	hung := f.hung
	lat := f.latency
	fail := false
	if f.failNext > 0 {
		f.failNext--
		fail = true
	} else if f.errRate > 0 && f.rng.Float64() < f.errRate {
		fail = true
	}
	f.mu.Unlock()
	if hung != nil {
		<-hung
	}
	if lat > 0 {
		time.Sleep(lat)
	}
	if fail {
		return serve.Response{}, errors.New("injected fault")
	}
	return f.inner.Do(ctx, id, p)
}

func (f *flakyBackend) Check() error {
	f.checks.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return errors.New("injected down")
	}
	return nil
}

func (f *flakyBackend) Name() string { return f.name }

func (f *flakyBackend) setDown(down bool) {
	f.mu.Lock()
	f.down = down
	f.mu.Unlock()
}

func (f *flakyBackend) failN(n int) {
	f.mu.Lock()
	f.failNext = n
	f.mu.Unlock()
}

// newTestCluster builds n engine backends behind a router, each wrapped
// flaky, with a controllable clock.
func newTestCluster(t *testing.T, n int, cfg Config) (*Router, []*flakyBackend, *time.Time) {
	t.Helper()
	now := time.Unix(1000, 0)
	cfg.now = func() time.Time { return now }
	flakies := make([]*flakyBackend, n)
	backends := make([]Backend, n)
	for i := 0; i < n; i++ {
		flakies[i] = newFlaky(NewEngineBackend(newTestEngine(t), fmt.Sprintf("engine[%d]", i)), fmt.Sprintf("flaky[%d]", i))
		backends[i] = flakies[i]
	}
	r, err := New(backends, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r, flakies, &now
}

func TestRouterPlacementIsStableAndMemoizes(t *testing.T) {
	r, flakies, _ := newTestCluster(t, 3, Config{})
	resp1, err := r.Serve("X1")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if resp1.CacheHit {
		t.Fatal("first routed serve should be cold")
	}
	resp2, err := r.Serve("X1")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if !resp2.CacheHit {
		t.Fatal("repeat routed serve should hit the owning replica's cache")
	}
	served := 0
	for _, f := range flakies {
		if c := f.calls.Load(); c > 0 {
			served++
			if c != 2 {
				t.Fatalf("owner should have taken both requests, got %d", c)
			}
		}
	}
	if served != 1 {
		t.Fatalf("one owner should serve a single key, %d backends took calls", served)
	}
	if m := r.Metrics(); m.Requests != 2 || m.Failovers != 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestRouteKeyAgreesWithEngineCacheKey(t *testing.T) {
	// Registered experiment: explicit defaults collapse onto the bare ID,
	// so default-param traffic routes with zero-param traffic.
	exp, ok := core.ByID("E7")
	if !ok {
		t.Skip("E7 not registered")
	}
	defaults := exp.Defaults()
	if got := RouteKey("E7", defaults); got != "E7" {
		t.Fatalf("explicit-default RouteKey = %q, want bare E7", got)
	}
	p := core.Params{"f": 0.99}
	resolved, err := exp.ResolveParams(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := RouteKey("E7", p), exp.CacheKey(resolved); got != want {
		t.Fatalf("RouteKey = %q, want engine cache key %q", got, want)
	}
	// Unregistered IDs fall back to the ad-hoc sorted form.
	if got := RouteKey("ZZ", core.Params{"b": 2, "a": 1}); got != "ZZ?a=1&b=2" {
		t.Fatalf("ad-hoc RouteKey = %q", got)
	}
}

func TestFailoverServesFromSuccessor(t *testing.T) {
	r, flakies, _ := newTestCluster(t, 3, Config{FailThreshold: 100})
	owner := r.Owner(RouteKey("X1", nil))
	flakies[owner].failN(1)
	resp, err := r.Serve("X1")
	if err != nil {
		t.Fatalf("Serve with failing owner: %v", err)
	}
	if resp.Result.Render() != fakeResult("X1").Render() {
		t.Fatal("failover served a wrong result")
	}
	if m := r.Metrics(); m.Failovers != 1 {
		t.Fatalf("want 1 failover, metrics: %+v", m)
	}
}

func TestEjectionStopsTrafficAndProbeReadmits(t *testing.T) {
	r, flakies, now := newTestCluster(t, 3, Config{FailThreshold: 3, ProbeAfter: time.Second})
	owner := r.Owner(RouteKey("X1", nil))
	flakies[owner].failN(1000)
	flakies[owner].setDown(true)

	// Three failed requests eject the owner.
	for i := 0; i < 3; i++ {
		if _, err := r.Serve("X1"); err != nil {
			t.Fatalf("failover should mask the flaky owner: %v", err)
		}
	}
	if !r.Metrics().Health[owner].Ejected {
		t.Fatalf("owner should be ejected after 3 consecutive failures: %+v", r.Metrics().Health)
	}

	// While ejected (and before the probe window), the owner sees no
	// traffic at all.
	before := flakies[owner].calls.Load()
	for i := 0; i < 5; i++ {
		if _, err := r.Serve("X1"); err != nil {
			t.Fatalf("Serve during ejection: %v", err)
		}
	}
	if got := flakies[owner].calls.Load(); got != before {
		t.Fatalf("ejected backend took %d calls", got-before)
	}

	// Past the probe window with the backend still down: one Check, still
	// dark.
	*now = now.Add(2 * time.Second)
	if _, err := r.Serve("X1"); err != nil {
		t.Fatalf("Serve during failed probe: %v", err)
	}
	if flakies[owner].checks.Load() == 0 {
		t.Fatal("probe window elapsed but no health check issued")
	}
	if !r.Metrics().Health[owner].Ejected {
		t.Fatal("failed probe must not re-admit")
	}

	// Backend recovers: next probe re-admits and traffic returns.
	flakies[owner].setDown(false)
	flakies[owner].failN(0)
	*now = now.Add(2 * time.Second)
	if _, err := r.Serve("X1"); err != nil {
		t.Fatalf("Serve after recovery: %v", err)
	}
	if r.Metrics().Health[owner].Ejected {
		t.Fatal("successful probe should re-admit")
	}
	before = flakies[owner].calls.Load()
	if _, err := r.Serve("X1"); err != nil {
		t.Fatalf("Serve after re-admission: %v", err)
	}
	if flakies[owner].calls.Load() != before+1 {
		t.Fatal("re-admitted owner should take its key's traffic again")
	}
}

func TestHardHangTimesOutAndFailsOver(t *testing.T) {
	r, flakies, _ := newTestCluster(t, 3, Config{Timeout: 50 * time.Millisecond, FailThreshold: 1})
	owner := r.Owner(RouteKey("X1", nil))
	hang := make(chan struct{})
	flakies[owner].mu.Lock()
	flakies[owner].hung = hang
	flakies[owner].mu.Unlock()
	defer close(hang)

	t0 := time.Now()
	resp, err := r.Serve("X1")
	if err != nil {
		t.Fatalf("Serve with hung owner: %v", err)
	}
	if resp.CacheHit {
		t.Fatal("first serve should be cold")
	}
	if el := time.Since(t0); el > 5*time.Second {
		t.Fatalf("hung owner stalled the request for %v", el)
	}
	if !r.Metrics().Health[owner].Ejected {
		t.Fatal("timeout should count toward ejection")
	}
	// Subsequent requests to the same key skip the wedged owner without
	// waiting out the timeout.
	t0 = time.Now()
	if _, err := r.Serve("X1"); err != nil {
		t.Fatalf("Serve after ejection: %v", err)
	}
	if el := time.Since(t0); el > time.Second {
		t.Fatalf("ejected wedged owner still delayed the request %v", el)
	}
}

func TestClientErrorsDoNotFailOverOrEject(t *testing.T) {
	r, flakies, _ := newTestCluster(t, 2, Config{FailThreshold: 1})
	// Unknown param against a registered zero-param fake runner: the
	// engine resolves against the core registry, which errors.
	_, err := r.ServeWith(context.Background(), "E7", core.Params{"nope": 1})
	if err == nil {
		t.Fatal("bad params should error")
	}
	if !errors.Is(err, serve.ErrBadParams) {
		t.Fatalf("want ErrBadParams, got %v", err)
	}
	m := r.Metrics()
	if m.Failovers != 0 {
		t.Fatalf("client errors must not fail over: %+v", m)
	}
	for i, h := range m.Health {
		if h.Ejected {
			t.Fatalf("client errors must not eject backend %d", i)
		}
	}
	_ = flakies
}

func TestAllBackendsFailingExhaustsWithError(t *testing.T) {
	r, flakies, _ := newTestCluster(t, 3, Config{FailThreshold: 100})
	for _, f := range flakies {
		f.failN(1000)
	}
	_, err := r.Serve("X1")
	if err == nil {
		t.Fatal("all-failing cluster should error")
	}
	if m := r.Metrics(); m.Exhausted != 1 {
		t.Fatalf("want 1 exhausted, metrics: %+v", m)
	}
	// After all are ejected (threshold crossed), the error is ErrNoBackends.
	r2, flakies2, _ := newTestCluster(t, 2, Config{FailThreshold: 1, ProbeAfter: time.Hour})
	for _, f := range flakies2 {
		f.failN(1000)
		f.setDown(true)
	}
	_, _ = r2.Serve("X1")
	_, err = r2.Serve("X1")
	if !errors.Is(err, ErrNoBackends) {
		t.Fatalf("want ErrNoBackends once every replica is ejected, got %v", err)
	}
}

func TestErrorRateIsMaskedByRetries(t *testing.T) {
	// A 30%-flaky replica in a 3-node cluster: the router's bounded
	// retries mask every fault (failover succeeds), so callers see zero
	// errors even while the flaky node keeps getting ejected/re-admitted.
	r, flakies, now := newTestCluster(t, 3, Config{FailThreshold: 3, ProbeAfter: time.Millisecond})
	flakies[1].mu.Lock()
	flakies[1].errRate = 0.3
	flakies[1].mu.Unlock()
	for i := 0; i < 200; i++ {
		if _, err := r.ServeWith(context.Background(), fmt.Sprintf("X%d", i%17), nil); err != nil {
			t.Fatalf("request %d escaped the retry mask: %v", i, err)
		}
		*now = now.Add(time.Millisecond)
	}
}

func TestLatencySpikeDoesNotFailRequests(t *testing.T) {
	r, flakies, _ := newTestCluster(t, 2, Config{Timeout: 5 * time.Second})
	flakies[0].mu.Lock()
	flakies[0].latency = 20 * time.Millisecond
	flakies[0].mu.Unlock()
	flakies[1].mu.Lock()
	flakies[1].latency = 20 * time.Millisecond
	flakies[1].mu.Unlock()
	for i := 0; i < 5; i++ {
		if _, err := r.ServeWith(context.Background(), fmt.Sprintf("S%d", i), nil); err != nil {
			t.Fatalf("slow-but-alive backend failed request: %v", err)
		}
	}
}

// httpFlaky is the HTTP-level double: a real engine handler behind a
// switchable fault layer, so HTTPBackend's wire behavior (status mapping,
// health probes) is tested against a genuine server.
type httpFlaky struct {
	handler http.Handler
	fail    atomic.Bool // 500 every /run while set; /healthz fails too
}

func (h *httpFlaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.fail.Load() {
		http.Error(w, "injected outage", http.StatusInternalServerError)
		return
	}
	h.handler.ServeHTTP(w, r)
}

func TestHTTPBackendFailoverEjectionReadmission(t *testing.T) {
	// The fake runner must 404 unknown-prefixed IDs so the client-error
	// path is exercised over the wire.
	newEng := func() *serve.Engine {
		e := serve.NewEngine(serve.Config{Shards: 4, Workers: 2,
			Runner: func(id string) (core.Result, error) {
				if len(id) >= 4 && id[:4] == "NOPE" {
					return core.Result{}, fmt.Errorf("%w %q", serve.ErrUnknownExperiment, id)
				}
				return fakeResult(id), nil
			}})
		t.Cleanup(e.Close)
		return e
	}
	engines := []*serve.Engine{newEng(), newEng()}
	fl := &httpFlaky{handler: engines[0].Handler()}
	srv0 := httptest.NewServer(fl)
	defer srv0.Close()
	srv1 := httptest.NewServer(engines[1].Handler())
	defer srv1.Close()

	now := time.Unix(1000, 0)
	r, err := New([]Backend{NewHTTPBackend(srv0.URL), NewHTTPBackend(srv1.URL)},
		Config{FailThreshold: 2, ProbeAfter: time.Second, now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}

	// Find a key owned by the flaky server.
	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("X%d", i)
		if r.Owner(k) == 0 {
			key = k
			break
		}
	}

	fl.fail.Store(true)
	for i := 0; i < 2; i++ {
		if _, err := r.Serve(key); err != nil {
			t.Fatalf("failover over HTTP: %v", err)
		}
	}
	if !r.Metrics().Health[0].Ejected {
		t.Fatal("HTTP 500s should eject the replica")
	}

	// Recovery: probe /healthz re-admits.
	fl.fail.Store(false)
	now = now.Add(2 * time.Second)
	if _, err := r.Serve(key); err != nil {
		t.Fatalf("Serve after HTTP recovery: %v", err)
	}
	if r.Metrics().Health[0].Ejected {
		t.Fatal("healthy /healthz should re-admit the replica")
	}

	// A 404 from the replica is the caller's fault: surfaced as-is, no
	// ejection.
	if _, err := r.Serve("NOPE-unregistered"); err == nil {
		t.Fatal("unknown experiment over HTTP should error")
	} else if !isHTTPClientError(err) {
		t.Fatalf("404 should surface as a client error, got %v", err)
	}
	if r.Metrics().Health[0].Ejected || r.Metrics().Health[1].Ejected {
		t.Fatal("client errors must not eject")
	}
}
