package router

// Latency-aware routing suite: scoreboard warm-up and budget math,
// chain demotion with canaries, hedged backups racing a degraded
// primary (first response wins, loser canceled, zero goroutine leak),
// and the 4xx-never-hedged invariant.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// primeScore warms one replica's scoreboard row past hedgeWarmup with a
// constant observation, so tests control the budget directly instead of
// issuing warm-up traffic.
func primeScore(r *Router, b int, d time.Duration) {
	for i := 0; i < hedgeWarmup; i++ {
		r.sb.observe(b, d)
	}
}

// keyOwnedBy finds an ID whose routing key the given backend owns.
func keyOwnedBy(t *testing.T, r *Router, owner int) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("HK%d", i)
		if r.Owner(RouteKey(id, nil)) == owner {
			return id
		}
	}
	t.Fatal("no key found for owner")
	return ""
}

// waitInflightDrain polls until no attempt is outstanding on any
// replica — the canceled hedge loser must unwind, not linger.
func waitInflightDrain(t *testing.T, r *Router) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		total := int64(0)
		for i := range r.sb.scores {
			total += r.sb.scores[i].inflight.Load()
		}
		if total == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("in-flight attempts did not drain")
}

func TestScoreboardBudgetWarmupAndClamps(t *testing.T) {
	sb := newScoreboard(1, time.Millisecond, time.Second)
	for i := 0; i < hedgeWarmup-1; i++ {
		sb.observe(0, 10*time.Millisecond)
		if _, ok := sb.budget(0); ok {
			t.Fatalf("budget trusted after %d samples, warmup is %d", i+1, hedgeWarmup)
		}
	}
	sb.observe(0, 10*time.Millisecond)
	d, ok := sb.budget(0)
	if !ok {
		t.Fatal("no budget after warmup")
	}
	// A constant stream has zero variance: budget == mean.
	if d < 9*time.Millisecond || d > 11*time.Millisecond {
		t.Fatalf("constant 10ms stream: budget %v, want ~10ms", d)
	}

	// Microsecond traffic clamps to the floor, not scheduler noise.
	fast := newScoreboard(1, time.Millisecond, time.Second)
	for i := 0; i < hedgeWarmup; i++ {
		fast.observe(0, time.Microsecond)
	}
	if d, _ := fast.budget(0); d != time.Millisecond {
		t.Fatalf("microsecond stream: budget %v, want the 1ms floor", d)
	}

	// A pathological stream clamps to the ceiling (the attempt timeout).
	slow := newScoreboard(1, time.Millisecond, time.Second)
	for i := 0; i < hedgeWarmup; i++ {
		slow.observe(0, 10*time.Second)
	}
	if d, _ := slow.budget(0); d != time.Second {
		t.Fatalf("10s stream: budget %v, want the 1s ceiling", d)
	}
}

func TestScoreboardEWMADecayRecovers(t *testing.T) {
	// A replica that was slow and then healed: the EWMA must track the
	// step back down so demotion is not forever.
	sb := newScoreboard(1, time.Millisecond, time.Minute)
	for i := 0; i < hedgeWarmup; i++ {
		sb.observe(0, 100*time.Millisecond)
	}
	for i := 0; i < 50; i++ {
		sb.observe(0, time.Millisecond)
	}
	mean, _, _ := sb.snapshot(0)
	if mean > 0.002 {
		t.Fatalf("after 50 healthy samples the EWMA is still %.4fs, decay too slow", mean)
	}
}

func TestScoreboardPreferDemotesWithCanary(t *testing.T) {
	sb := newScoreboard(2, time.Millisecond, time.Minute)
	for i := 0; i < hedgeWarmup; i++ {
		sb.observe(0, 80*time.Millisecond) // owner: 80x slower
		sb.observe(1, time.Millisecond)
	}
	swapped, kept := 0, 0
	for i := 0; i < 2*canaryEvery; i++ {
		chain := []int{0, 1}
		sb.prefer(chain)
		if chain[0] == 1 {
			swapped++
		} else {
			kept++
		}
	}
	if kept != 2 {
		t.Fatalf("over %d demotion decisions, %d canaries went owner-first, want 2", 2*canaryEvery, kept)
	}
	if swapped != 2*canaryEvery-2 {
		t.Fatalf("swapped %d, want %d", swapped, 2*canaryEvery-2)
	}
}

func TestScoreboardPreferNeedsWarmthAndRatio(t *testing.T) {
	// Successor not warmed: no demotion, however slow the owner looks.
	sb := newScoreboard(2, time.Millisecond, time.Minute)
	for i := 0; i < hedgeWarmup; i++ {
		sb.observe(0, time.Second)
	}
	chain := []int{0, 1}
	sb.prefer(chain)
	if chain[0] != 0 {
		t.Fatal("demoted the owner against an unwarmed successor")
	}

	// Both warm but the gap is below demoteRatio: stay owner-first.
	sb2 := newScoreboard(2, time.Millisecond, time.Minute)
	for i := 0; i < hedgeWarmup; i++ {
		sb2.observe(0, 4*time.Millisecond) // 4x, below the 8x bar
		sb2.observe(1, time.Millisecond)
	}
	chain = []int{0, 1}
	sb2.prefer(chain)
	if chain[0] != 0 {
		t.Fatal("demoted the owner on a below-threshold gap")
	}
}

// newHedgeCluster builds n engine replicas wrapped in FaultBackends
// behind a router with test-friendly hedging (1ms floor, short attempt
// timeout).
func newHedgeCluster(t *testing.T, n int, cfg Config) (*Router, []*FaultBackend) {
	t.Helper()
	faults := make([]*FaultBackend, n)
	backends := make([]Backend, n)
	for i := 0; i < n; i++ {
		faults[i] = NewFaultBackend(NewEngineBackend(newTestEngine(t), fmt.Sprintf("engine[%d]", i)))
		backends[i] = faults[i]
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Second
	}
	r, err := New(backends, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r, faults
}

func TestHedgeFiresOnSlowPrimaryAndBackupWins(t *testing.T) {
	r, faults := newHedgeCluster(t, 2, Config{})
	id := keyOwnedBy(t, r, 0)
	faults[0].Degrade(150 * time.Millisecond)
	// Both replicas look fast and warm: the budget bottoms out at the
	// 1ms floor, so the degraded primary blows it immediately.
	primeScore(r, 0, 100*time.Microsecond)
	primeScore(r, 1, 100*time.Microsecond)

	t0 := time.Now()
	resp, err := r.ServeWith(context.Background(), id, nil)
	elapsed := time.Since(t0)
	if err != nil {
		t.Fatalf("ServeWith: %v", err)
	}
	if resp.ID != id {
		t.Fatalf("response for %q, want %q", resp.ID, id)
	}
	// The backup's answer must land well under the primary's injected
	// 150ms — the whole point of hedging.
	if elapsed > 100*time.Millisecond {
		t.Fatalf("hedged request took %v, the backup did not win", elapsed)
	}
	m := r.Metrics()
	if m.Hedges != 1 || m.HedgeWins != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", m.Hedges, m.HedgeWins)
	}
	if m.Failovers != 0 {
		t.Fatalf("a hedge is not a failover, got %d", m.Failovers)
	}
	// The hedge is attributed to the slow primary's row.
	if m.Health[0].Hedges != 1 || m.Health[0].HedgeWins != 1 {
		t.Fatalf("primary row: %+v", m.Health[0])
	}
	waitInflightDrain(t, r)
	// The canceled primary never reached its engine: Degrade's
	// context-aware sleep unwound first, so no duplicate execution.
	if calls := faults[0].Faults(); calls != 1 {
		t.Fatalf("primary faults=%d, want 1 (the canceled degraded attempt)", calls)
	}
}

func TestHedgeLoserCanceledNoGoroutineLeak(t *testing.T) {
	r, faults := newHedgeCluster(t, 3, Config{})
	faults[0].Degrade(100 * time.Millisecond)
	for i := range faults {
		primeScore(r, i, 100*time.Microsecond)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 30; i++ {
		id := keyOwnedBy(t, r, 0)
		if _, err := r.ServeWith(context.Background(), id, core.Params{}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	waitInflightDrain(t, r)
	// The ±2x bracket idiom from the chaos suite: canceled losers must
	// unwind promptly, so the goroutine count returns to near baseline
	// instead of growing with the request count.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+10 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+10 {
		t.Fatalf("goroutines grew %d -> %d over 30 hedged requests: losers leaked", before, after)
	}
	if m := r.Metrics(); m.Hedges == 0 {
		t.Fatal("degraded primary never triggered a hedge")
	}
}

// errBackend answers every Do instantly with a fixed error.
type errBackend struct {
	name  string
	err   error
	calls atomic.Int64
}

func (e *errBackend) Do(context.Context, string, core.Params) (serve.Response, error) {
	e.calls.Add(1)
	return serve.Response{}, e.err
}
func (e *errBackend) Check() error { return nil }
func (e *errBackend) Name() string { return e.name }

func Test4xxNeverHedged(t *testing.T) {
	// The primary answers with a client error immediately — long before
	// any budget expires. No hedge may fire and no failover may happen:
	// the verdict is identical on every replica.
	bad := &errBackend{name: "bad", err: fmt.Errorf("%w: NOPE", serve.ErrUnknownExperiment)}
	other := &errBackend{name: "other", err: errors.New("should never be called")}
	r, err := New([]Backend{bad, other}, Config{Timeout: time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	primeScore(r, 0, 100*time.Microsecond)
	primeScore(r, 1, 100*time.Microsecond)
	id := keyOwnedBy(t, r, 0)

	_, err = r.ServeWith(context.Background(), id, nil)
	if !errors.Is(err, serve.ErrUnknownExperiment) {
		t.Fatalf("want the replica's 4xx verdict back, got %v", err)
	}
	m := r.Metrics()
	if m.Hedges != 0 {
		t.Fatalf("a 4xx was hedged: %d", m.Hedges)
	}
	if m.Failovers != 0 {
		t.Fatalf("a 4xx failed over: %d", m.Failovers)
	}
	if other.calls.Load() != 0 {
		t.Fatal("the second replica saw traffic for a client error")
	}
}

func TestDisableHedgeHonored(t *testing.T) {
	r, faults := newHedgeCluster(t, 2, Config{DisableHedge: true})
	id := keyOwnedBy(t, r, 0)
	faults[0].Degrade(30 * time.Millisecond)
	primeScore(r, 0, 100*time.Microsecond)
	primeScore(r, 1, 100*time.Microsecond)
	t0 := time.Now()
	if _, err := r.ServeWith(context.Background(), id, nil); err != nil {
		t.Fatalf("ServeWith: %v", err)
	}
	if elapsed := time.Since(t0); elapsed < 30*time.Millisecond {
		t.Fatalf("request finished in %v with hedging disabled: something raced", elapsed)
	}
	if m := r.Metrics(); m.Hedges != 0 {
		t.Fatalf("hedges fired while disabled: %d", m.Hedges)
	}
}

func TestHedgeSkippedDuringWarmup(t *testing.T) {
	// No trusted budget, no backup — an untrusted estimate must not
	// double warm-path load.
	r, faults := newHedgeCluster(t, 2, Config{})
	id := keyOwnedBy(t, r, 0)
	faults[0].Degrade(20 * time.Millisecond)
	if _, err := r.ServeWith(context.Background(), id, nil); err != nil {
		t.Fatalf("ServeWith: %v", err)
	}
	if m := r.Metrics(); m.Hedges != 0 {
		t.Fatalf("hedged during scoreboard warm-up: %d", m.Hedges)
	}
}
