package router

// The front-end's observability plane: its own /metrics registry
// (router counters plus per-backend health, all collected at scrape
// time) and the cluster-wide POST /control fan-out. A control request
// hitting the front-end is forwarded verbatim to every backend that can
// take one (the optional Controller interface below), and the response
// reports each replica's ack or error — partial application is visible,
// never silent.

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
)

// Controller is the optional backend capability POST /control fans out
// through: apply a serve.ControlRequest body (raw JSON, forwarded
// verbatim) and return the replica's ack body. EngineBackend applies it
// in-process; HTTPBackend POSTs it to the replica's /control. Backends
// without it (test doubles) are reported as unsupported, not errors.
type Controller interface {
	Control(ctx context.Context, body []byte) ([]byte, error)
}

// controlFanoutTimeout bounds one replica's control application — a
// retune is a small synchronous knob turn, not an experiment run.
const controlFanoutTimeout = 5 * time.Second

// ReplicaAck is one backend's row in the fan-out response.
type ReplicaAck struct {
	Backend string `json:"backend"`
	// OK reports whether the replica applied the request.
	OK bool `json:"ok"`
	// Ack is the replica's raw ack body when OK (the serve.ControlAck
	// JSON); Error the failure otherwise. "unsupported" marks a backend
	// that cannot take control requests at all.
	Ack   string `json:"ack,omitempty"`
	Error string `json:"error,omitempty"`
}

// Control fans a raw control body out to every backend concurrently and
// reports per-replica outcomes. It never fails as a whole: the caller
// reads the rows to see which replicas retuned.
func (r *Router) Control(ctx context.Context, body []byte) []ReplicaAck {
	acks := make([]ReplicaAck, len(r.backends))
	var wg sync.WaitGroup
	for i, b := range r.backends {
		ctl, ok := b.(Controller)
		if !ok {
			acks[i] = ReplicaAck{Backend: b.Name(), Error: "unsupported"}
			continue
		}
		wg.Add(1)
		go func(i int, name string, ctl Controller) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, controlFanoutTimeout)
			defer cancel()
			ack, err := ctl.Control(cctx, body)
			if err != nil {
				acks[i] = ReplicaAck{Backend: name, Error: err.Error()}
				return
			}
			acks[i] = ReplicaAck{Backend: name, OK: true, Ack: string(ack)}
		}(i, b.Name(), ctl)
	}
	wg.Wait()
	applied := 0
	for _, a := range acks {
		if a.OK {
			applied++
		}
	}
	r.events.Record(obs.EventControl,
		map[string]string{"scope": "cluster"},
		map[string]float64{"replicas": float64(len(acks)), "applied": float64(applied)})
	return acks
}

// MetricsRegistry returns the front-end's /metrics registry, built once.
func (r *Router) MetricsRegistry() *obs.Registry {
	r.obsOnce.Do(func() { r.obsReg = r.buildRegistry() })
	return r.obsReg
}

func (r *Router) buildRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Gauge("arch21_router_backends", "Configured replica count.",
		func() float64 { return float64(len(r.backends)) })
	reg.Counter("arch21_router_requests_total", "Requests routed through the front-end.",
		func() float64 { return float64(r.requests.Load()) })
	reg.Counter("arch21_router_failovers_total", "Attempts that moved past the owning replica.",
		func() float64 { return float64(r.failovers.Load()) })
	reg.Counter("arch21_router_exhausted_total", "Requests that failed on every candidate replica.",
		func() float64 { return float64(r.exhausted.Load()) })
	perBackend := func(get func(*backendState) float64) func() []obs.Sample {
		return func() []obs.Sample {
			out := make([]obs.Sample, 0, len(r.backends))
			for i := range r.backends {
				st := &r.state[i]
				st.mu.Lock()
				v := get(st)
				st.mu.Unlock()
				out = append(out, obs.Sample{Values: []string{r.backends[i].Name()}, Value: v})
			}
			return out
		}
	}
	reg.GaugeVec("arch21_backend_up", "Whether the replica is admitting requests (0 = ejected).",
		[]string{"backend"}, perBackend(func(st *backendState) float64 {
			if st.ejected {
				return 0
			}
			return 1
		}))
	reg.CounterVec("arch21_backend_requests_total", "Requests admitted to the replica.",
		[]string{"backend"}, perBackend(func(st *backendState) float64 { return float64(st.requests) }))
	reg.CounterVec("arch21_backend_failures_total", "Replica failures counted toward ejection.",
		[]string{"backend"}, perBackend(func(st *backendState) float64 { return float64(st.failures) }))
	reg.CounterVec("arch21_backend_ejections_total", "Times the replica has been ejected.",
		[]string{"backend"}, perBackend(func(st *backendState) float64 { return float64(st.ejections) }))
	perScore := func(get func(*score) float64) func() []obs.Sample {
		return func() []obs.Sample {
			out := make([]obs.Sample, 0, len(r.backends))
			for i := range r.backends {
				out = append(out, obs.Sample{Values: []string{r.backends[i].Name()}, Value: get(&r.sb.scores[i])})
			}
			return out
		}
	}
	reg.GaugeVec("arch21_backend_latency_seconds", "Per-replica attempt latency scoreboard (EWMA).",
		[]string{"backend"}, func() []obs.Sample {
			out := make([]obs.Sample, 0, len(r.backends))
			for i := range r.backends {
				mean, _, _ := r.sb.snapshot(i)
				out = append(out, obs.Sample{Values: []string{r.backends[i].Name()}, Value: mean})
			}
			return out
		})
	reg.GaugeVec("arch21_backend_inflight", "Attempts currently outstanding against the replica.",
		[]string{"backend"}, perScore(func(sc *score) float64 { return float64(sc.inflight.Load()) }))
	reg.CounterVec("arch21_backend_hedges_total", "Hedged backups fired because the replica's primary attempt exceeded its latency budget.",
		[]string{"backend"}, perScore(func(sc *score) float64 { return float64(sc.hedges.Load()) }))
	reg.CounterVec("arch21_backend_hedge_wins_total", "Hedged backups that answered before the replica's primary attempt.",
		[]string{"backend"}, perScore(func(sc *score) float64 { return float64(sc.hedgeWins.Load()) }))
	reg.Counter("arch21_batched_requests_total", "Requests served through a coalesced or direct batch exchange.",
		func() float64 { return float64(r.batched.Load()) })
	reg.CounterVec("arch21_batch_flushes_total", "Batch frames shipped, by flush reason (full: frame hit the entry cap; window: a pure batch-class queue waited out its window; interactive: an interactive arrival flushed the queue at once; direct: a pre-assembled frame from the sweep fan-out or /batch endpoint).",
		[]string{"reason"}, func() []obs.Sample {
			out := make([]obs.Sample, 0, flushReasons)
			for i, name := range flushReasonNames {
				out = append(out, obs.Sample{Values: []string{name}, Value: float64(r.batchFlushes[i].Load())})
			}
			return out
		})
	reg.Histogram("arch21_batch_size", "Entries per batch frame shipped to a replica.",
		nil, func() []obs.HistSample {
			snap := r.batchSize.Snapshot()
			return []obs.HistSample{{Bounds: snap.Bounds, CumCounts: snap.CumCounts,
				Count: snap.Count, Sum: snap.Sum}}
		})
	reg.Counter("arch21_events_total", "Control-plane events recorded (the ring retains the newest).",
		func() float64 { return float64(r.events.Total()) })
	return reg
}
