package router

// Tests for the batched data plane: coalescing (batch class always,
// interactive only behind a warmed, fast scoreboard, deadlines never),
// the wire client (HTTPBackend.DoBatch against a live replica handler),
// and the front-end's POST /batch route.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/httpapi"
	"repro/internal/serve"
)

// Batch-class requests coalesce from the first request: concurrent
// ServeEncoded calls are served through flushed frames, every outcome
// is correct, and the engines' books balance (a coalesced request is
// one engine request, nothing double-counted).
func TestServeEncodedCoalescesBatchClass(t *testing.T) {
	r, engines := newRegistryCluster(t, 2, "", Config{})
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	ctx := admit.WithClass(context.Background(), admit.Batch)
	const n = 48
	ids := []string{"E7", "E1", "E2", "E4"}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rr, err := r.ServeEncoded(ctx, ids[i%len(ids)], nil)
			if err != nil {
				errs[i] = err
				return
			}
			if _, err := rr.Result(); err != nil {
				errs[i] = fmt.Errorf("bad payload: %w", err)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := r.batched.Load(); got == 0 {
		t.Fatal("no request was served through a coalesced flush")
	}
	if r.requests.Load() != n {
		t.Fatalf("router counted %d requests, want %d", r.requests.Load(), n)
	}
	var engReqs, engSum int64
	for _, e := range engines {
		m := e.Metrics()
		engReqs += m.Requests
		engSum += m.CacheHits + m.Deduped + m.Sheds + m.Executions
	}
	if engReqs != n || engSum != n {
		t.Fatalf("engine books: requests=%d balanced=%d, want %d/%d", engReqs, engSum, n, n)
	}
	var flushes int64
	for i := 0; i < flushReasons; i++ {
		flushes += r.batchFlushes[i].Load()
	}
	if flushes == 0 {
		t.Fatal("no flush was recorded")
	}
	if snap := r.batchSize.Snapshot(); snap.Count != uint64(flushes) {
		t.Fatalf("batch size histogram observed %d flushes, counters say %d", snap.Count, flushes)
	}
}

// Interactive traffic must not coalesce against a cold scoreboard (the
// hedged single-request path owns tail protection until the owner has
// proven itself fast), must coalesce once it has, and must always
// bypass coalescing when the caller carries a deadline.
func TestInteractiveCoalescingNeedsWarmTrustedOwner(t *testing.T) {
	r, engines := newRegistryCluster(t, 2, "", Config{})
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	// Cold scoreboard: the first interactive request takes the classic
	// chain.
	if _, err := r.ServeEncoded(context.Background(), "E7", nil); err != nil {
		t.Fatal(err)
	}
	if got := r.batched.Load(); got != 0 {
		t.Fatalf("cold-scoreboard interactive request coalesced (batched=%d)", got)
	}
	// Warm the owner's score well past hedgeWarmup with sub-millisecond
	// cache hits.
	for i := 0; i < 3*hedgeWarmup; i++ {
		if _, err := r.ServeWith(context.Background(), "E7", nil); err != nil {
			t.Fatal(err)
		}
	}
	owner := r.Owner(RouteKey("E7", nil))
	if _, _, n := r.sb.snapshot(owner); n < hedgeWarmup {
		t.Fatalf("owner score has %d samples, want >= %d", n, hedgeWarmup)
	}
	if _, err := r.ServeEncoded(context.Background(), "E7", nil); err != nil {
		t.Fatal(err)
	}
	if got := r.batched.Load(); got != 1 {
		t.Fatalf("warmed interactive request did not coalesce (batched=%d)", got)
	}
	// A deadline-carrying request bypasses the queue even though the
	// owner is trusted: its flush would run detached from the deadline.
	dctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := r.ServeEncoded(dctx, "E7", nil); err != nil {
		t.Fatal(err)
	}
	if got := r.batched.Load(); got != 1 {
		t.Fatalf("deadline-carrying request coalesced (batched=%d)", got)
	}
}

// HTTPBackend.DoBatch against a live replica: one POST /v1/batch
// exchange serves every entry, per-entry errors come back as
// statusError values the router taxonomy classifies like single
// requests, and payloads decode.
func TestHTTPBackendDoBatch(t *testing.T) {
	eng := serve.NewEngine(serve.Config{Shards: 4, Workers: 2})
	defer eng.Close()
	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()
	b := NewHTTPBackend(srv.URL)

	items := []serve.BatchItem{
		{ID: "E7", Class: admit.Interactive},
		{ID: "E1", Class: admit.Batch},
		{ID: "NOPE", Class: admit.Interactive},
	}
	outs, err := b.DoBatch(context.Background(), items)
	if err != nil {
		t.Fatalf("DoBatch: %v", err)
	}
	if len(outs) != len(items) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(items))
	}
	for i := 0; i < 2; i++ {
		if outs[i].Err != nil {
			t.Fatalf("entry %d: %v", i, outs[i].Err)
		}
		rr := outs[i].RawResponse
		if rr.ID != items[i].ID || rr.Key == "" {
			t.Fatalf("entry %d: bad identity %+v", i, rr)
		}
		if _, err := rr.Result(); err != nil {
			t.Fatalf("entry %d: bad payload: %v", i, err)
		}
	}
	if outs[2].Err == nil {
		t.Fatal("unknown experiment served without error")
	}
	if !isHTTPStatus(outs[2].Err, http.StatusNotFound) {
		t.Fatalf("unknown experiment error = %v, want embedded 404", outs[2].Err)
	}
	if v := classify(outs[2].Err); v != verdictReturn {
		t.Fatalf("404 entry classifies as %d, want verdictReturn", v)
	}

	// Repeat: every entry is the replica's cache hit, carried in the
	// outcome word.
	outs, err = b.DoBatch(context.Background(), items[:2])
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o.Err != nil || !o.RawResponse.CacheHit {
			t.Fatalf("repeat entry %d not a cache hit: %+v", i, o)
		}
	}
}

// The front-end's POST /batch: a frame in, per-entry outcomes out,
// served through the routed batch plane (placement intact).
func TestRouterBatchEndpoint(t *testing.T) {
	r, engines := newRegistryCluster(t, 3, "", Config{})
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	entries := []httpapi.BatchEntry{
		{ID: "E7", Class: admit.Batch},
		{ID: "E7", Class: admit.Batch, Params: []string{"f=0.95"}},
		{ID: "E1", Class: admit.Batch},
		// Params on an unknown ID fail resolution before admission, so
		// the entry answers 404 in-frame without an engine request.
		{ID: "NOPE", Class: admit.Interactive, Params: []string{"x=1"}},
	}
	frame := httpapi.AppendBatchRequest(nil, entries)
	resp, err := http.Post(srv.URL+"/v1/batch", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("POST /v1/batch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	results, err := httpapi.DecodeBatchResponse(body)
	if err != nil {
		t.Fatalf("DecodeBatchResponse: %v", err)
	}
	if len(results) != len(entries) {
		t.Fatalf("got %d results, want %d", len(results), len(entries))
	}
	for i := 0; i < 3; i++ {
		if !results[i].OK {
			t.Fatalf("entry %d: HTTP %d: %s", i, results[i].Status, results[i].Msg)
		}
	}
	if r := results[3]; r.OK || r.Status != http.StatusNotFound {
		t.Fatalf("unknown-ID entry: %+v, want 404", r)
	}
	// The direct fan-out was recorded, and each entry landed on its
	// ring owner (books on the engines sum to the served entries).
	if r.batchFlushes[flushDirect].Load() == 0 {
		t.Fatal("no direct batch exchange was recorded")
	}
	var engReqs int64
	for _, e := range engines {
		engReqs += e.Metrics().Requests
	}
	if engReqs != 3 {
		t.Fatalf("engines saw %d requests, want 3", engReqs)
	}
}

// A coalesced flush that fails as a whole (transport error) must fail
// over: every queued request still completes through the classic chain
// on a sibling, and the dead replica's health accounting sees the
// failure.
func TestCoalescedFlushFailsOverOnTransportError(t *testing.T) {
	engines := make([]*serve.Engine, 2)
	killable := make([]*killableBackend, 2)
	backends := make([]Backend, 2)
	for i := range engines {
		engines[i] = serve.NewEngine(serve.Config{Shards: 4, Workers: 2})
		defer engines[i].Close()
		killable[i] = &killableBackend{Backend: NewEngineBackend(engines[i], fmt.Sprintf("engine[%d]", i))}
		backends[i] = killable[i]
	}
	r, err := New(backends, Config{FailThreshold: 1, ProbeAfter: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx := admit.WithClass(context.Background(), admit.Batch)
	owner := r.Owner(RouteKey("E7", nil))
	killable[owner].dead.Store(true)

	rr, err := r.ServeEncoded(ctx, "E7", nil)
	if err != nil {
		t.Fatalf("ServeEncoded with dead owner: %v", err)
	}
	if _, err := rr.Result(); err != nil {
		t.Fatalf("bad payload after failover: %v", err)
	}
	if r.batched.Load() != 0 {
		t.Fatal("failed flush must not count as batched")
	}
	if !r.Metrics().Health[owner].Ejected {
		t.Fatal("owner's flush failure should eject it at FailThreshold 1")
	}
	if got := engines[1-owner].Executions() + engines[owner].Executions(); got != 1 {
		t.Fatalf("cluster executed %d times, want exactly 1", got)
	}
	var hadError bool
	for _, h := range r.Metrics().Health {
		if h.Failures > 0 {
			hadError = true
		}
	}
	if !hadError {
		t.Fatal("dead owner's flush failure not in health accounting")
	}
}

// errorsIs helper kept out of the hot assertions for readability.
var _ = errors.Is
