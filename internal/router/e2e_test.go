package router

// End-to-end acceptance for the multi-replica serving stack: a 3-replica
// in-process cluster must (a) execute each unique grid point of a
// 64-point sweep exactly once cluster-wide, (b) survive a replica killed
// mid-sweep with zero lost points via failover, and (c) serve
// previously-computed results as cache hits after a restart from tier-2
// snapshots, verified through the same Metrics the /stats endpoints
// expose.

import (
	"context"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/sweep"
)

// e2eSpec is the 64-point grid: 8 f values x 8 bces values of E7.
func e2eSpec(t *testing.T) sweep.Spec {
	t.Helper()
	sp, err := sweep.ParseSpec("E7", []string{
		"f=0.9:0.97:0.01",
		"bces=16,32,64,128,256,512,1024,2048",
	})
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if got := len(sp.Grid()); got != 64 {
		t.Fatalf("grid has %d points, want 64", got)
	}
	return sp
}

// newRegistryCluster builds n registry-backed engines (optionally with
// tier-2 snapshot paths) behind a router.
func newRegistryCluster(t *testing.T, n int, snapDir string, cfg Config) (*Router, []*serve.Engine) {
	t.Helper()
	engines := make([]*serve.Engine, n)
	backends := make([]Backend, n)
	for i := 0; i < n; i++ {
		c := serve.Config{Shards: 4, Workers: 2}
		if snapDir != "" {
			c.SnapshotPath = filepath.Join(snapDir, fmt.Sprintf("replica-%d.snap", i))
		}
		engines[i] = serve.NewEngine(c)
		backends[i] = NewEngineBackend(engines[i], fmt.Sprintf("engine[%d]", i))
	}
	r, err := New(backends, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r, engines
}

func totalExecutions(engines []*serve.Engine) int64 {
	var n int64
	for _, e := range engines {
		n += e.Executions()
	}
	return n
}

func TestClusterSweepExecutesEachPointExactlyOnce(t *testing.T) {
	r, engines := newRegistryCluster(t, 3, "", Config{})
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	sp := e2eSpec(t)

	sum, err := sweep.Run(context.Background(), r, sp, nil)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if sum.Points != 64 {
		t.Fatalf("swept %d points, want 64", sum.Points)
	}
	if got := totalExecutions(engines); got != 64 {
		t.Fatalf("cluster-wide executions = %d, want exactly 64 (one per unique grid point)", got)
	}
	for i, e := range engines {
		if e.Executions() == 0 {
			t.Fatalf("replica %d executed nothing — placement is not scattering", i)
		}
	}

	// Repeat sweep: every point is someone's tier-1 hit; no re-execution
	// anywhere in the cluster.
	sum2, err := sweep.Run(context.Background(), r, sp, nil)
	if err != nil {
		t.Fatalf("repeat sweep: %v", err)
	}
	if got := totalExecutions(engines); got != 64 {
		t.Fatalf("repeat sweep re-executed: cluster-wide executions = %d, want 64", got)
	}
	if sum2.CacheHits != 64 {
		t.Fatalf("repeat sweep cache hits = %d, want 64", sum2.CacheHits)
	}
}

// killableBackend hard-fails every call once killed (in-flight calls
// complete — a kill is a crash, not a time machine).
type killableBackend struct {
	Backend
	dead atomic.Bool
}

func (k *killableBackend) Do(ctx context.Context, id string, p core.Params) (serve.Response, error) {
	if k.dead.Load() {
		return serve.Response{}, fmt.Errorf("backend killed")
	}
	return k.Backend.Do(ctx, id, p)
}

// DoBatch keeps the killable replica on the batched data plane while
// alive, so the mid-sweep kill exercises batch-exchange failover (a
// dead replica's frame fails as a transport error and every entry must
// fail over through the classic chain).
func (k *killableBackend) DoBatch(ctx context.Context, items []serve.BatchItem) ([]serve.BatchOutcome, error) {
	if k.dead.Load() {
		return nil, fmt.Errorf("backend killed")
	}
	return k.Backend.(BatchBackend).DoBatch(ctx, items)
}

func (k *killableBackend) Check() error {
	if k.dead.Load() {
		return fmt.Errorf("backend killed")
	}
	return k.Backend.Check()
}

func TestClusterSweepSurvivesReplicaKillMidSweep(t *testing.T) {
	engines := make([]*serve.Engine, 3)
	killable := make([]*killableBackend, 3)
	backends := make([]Backend, 3)
	for i := range engines {
		engines[i] = serve.NewEngine(serve.Config{Shards: 4, Workers: 2})
		defer engines[i].Close()
		killable[i] = &killableBackend{Backend: NewEngineBackend(engines[i], fmt.Sprintf("engine[%d]", i))}
		backends[i] = killable[i]
	}
	r, err := New(backends, Config{FailThreshold: 2, ProbeAfter: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	sp := e2eSpec(t)

	// Kill replica 1 after the 16th point lands. Its unexecuted keys must
	// fail over to ring successors; every grid point still completes.
	emitted := 0
	var points []sweep.Point
	sum, err := sweep.Run(context.Background(), r, sp, func(pt sweep.Point) error {
		emitted++
		points = append(points, pt)
		if emitted == 16 {
			killable[1].dead.Store(true)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("sweep with mid-sweep kill: %v", err)
	}
	if sum.Points != 64 || len(points) != 64 {
		t.Fatalf("lost points: summary %d, emitted %d, want 64", sum.Points, len(points))
	}
	seen := map[string]bool{}
	for _, pt := range points {
		if pt.Key == "" || seen[pt.Key] {
			t.Fatalf("point %d has empty or duplicate key %q", pt.Index, pt.Key)
		}
		seen[pt.Key] = true
	}
	// Exactly-once still holds cluster-wide: the dead replica's completed
	// work stays counted, failed-over points executed once elsewhere.
	if got := totalExecutions(engines); got != 64 {
		t.Fatalf("cluster-wide executions = %d, want 64 despite the kill", got)
	}
	if m := r.Metrics(); !m.Health[1].Ejected {
		t.Fatalf("killed replica should be ejected: %+v", m.Health)
	}
}

// hangingBackend blocks every Do until released — a wedged replica, not
// a crashed one: it accepts work and never answers.
type hangingBackend struct {
	Backend
	hung    atomic.Bool
	release chan struct{}
}

func (h *hangingBackend) Do(ctx context.Context, id string, p core.Params) (serve.Response, error) {
	if h.hung.Load() {
		// Abandoned attempts unblock at test teardown and must not touch
		// the (closing) engine.
		<-h.release
		return serve.Response{}, fmt.Errorf("wedged attempt abandoned")
	}
	return h.Backend.Do(ctx, id, p)
}

// A wedged replica must not stall an entire sweep: points owned by the
// hung backend cost at most the per-attempt timeout each (and only
// until ejection), then fail over; the sweep completes with every point
// served.
func TestWedgedReplicaCannotStallSweep(t *testing.T) {
	engines := make([]*serve.Engine, 3)
	backends := make([]Backend, 3)
	var wedged *hangingBackend
	for i := range engines {
		engines[i] = serve.NewEngine(serve.Config{Shards: 4, Workers: 2})
		defer engines[i].Close()
		b := Backend(NewEngineBackend(engines[i], fmt.Sprintf("engine[%d]", i)))
		if i == 2 {
			wedged = &hangingBackend{Backend: b, release: make(chan struct{})}
			wedged.hung.Store(true)
			b = wedged
		}
		backends[i] = b
	}
	defer close(wedged.release)
	r, err := New(backends, Config{Timeout: 100 * time.Millisecond, FailThreshold: 2, ProbeAfter: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	sp := e2eSpec(t)

	t0 := time.Now()
	sum, err := sweep.Run(context.Background(), r, sp, nil)
	if err != nil {
		t.Fatalf("sweep with wedged replica: %v", err)
	}
	if sum.Points != 64 {
		t.Fatalf("swept %d points, want 64", sum.Points)
	}
	// The wedge costs at most FailThreshold timeouts before ejection
	// (plus in-flight stragglers); anywhere near 64 x timeout means the
	// hang leaked into every point.
	if el := time.Since(t0); el > 5*time.Second {
		t.Fatalf("wedged replica stalled the sweep for %v", el)
	}
	if !r.Metrics().Health[2].Ejected {
		t.Fatal("wedged replica should be ejected")
	}
	// Points the wedged replica owned were executed elsewhere; the two
	// live replicas did all the work (the wedged engine may still drain
	// abandoned attempts later, so only assert the live total covers the
	// grid).
	if got := engines[0].Executions() + engines[1].Executions(); got < 64-int64(engines[2].Executions()) {
		t.Fatalf("live replicas executed %d points, wedged %d — lost work", got, engines[2].Executions())
	}
}

func TestClusterRestartServesFromTierTwoSnapshots(t *testing.T) {
	dir := t.TempDir()
	r, engines := newRegistryCluster(t, 3, dir, Config{})
	sp := e2eSpec(t)
	if _, err := sweep.Run(context.Background(), r, sp, nil); err != nil {
		t.Fatalf("cold sweep: %v", err)
	}
	if got := totalExecutions(engines); got != 64 {
		t.Fatalf("cold executions = %d, want 64", got)
	}
	for i, e := range engines {
		if err := e.SaveSnapshot(); err != nil {
			t.Fatalf("replica %d snapshot: %v", i, err)
		}
		e.Close()
	}

	// "Restart": fresh engines on the same snapshot paths.
	r2, engines2 := newRegistryCluster(t, 3, dir, Config{})
	defer func() {
		for _, e := range engines2 {
			e.Close()
		}
	}()
	var loaded int64
	for i, e := range engines2 {
		m := e.Metrics()
		if !m.Snapshot.Enabled {
			t.Fatalf("replica %d: snapshot tier not enabled", i)
		}
		loaded += m.Snapshot.Loaded
	}
	if loaded < 64 {
		t.Fatalf("restarted cluster warm-loaded %d entries, want >= 64", loaded)
	}

	sum, err := sweep.Run(context.Background(), r2, sp, nil)
	if err != nil {
		t.Fatalf("post-restart sweep: %v", err)
	}
	if got := totalExecutions(engines2); got != 0 {
		t.Fatalf("post-restart sweep executed %d times, want 0 (all tier-2 warm hits)", got)
	}
	if sum.CacheHits != 64 {
		t.Fatalf("post-restart cache hits = %d, want 64", sum.CacheHits)
	}
	// The /stats counters agree: every request after restart was a hit.
	var hits, reqs int64
	for _, e := range engines2 {
		m := e.Metrics()
		hits += m.CacheHits
		reqs += m.Requests
	}
	if hits != 64 || reqs != 64 {
		t.Fatalf("/stats counters after restart: hits=%d requests=%d, want 64/64", hits, reqs)
	}
}
