package router

// The per-replica latency scoreboard behind latency-aware routing
// (ROADMAP item 3, after the shenfeng__proxies idiom: measure every
// proxy, prefer the fastest). Every Backend.Do attempt feeds it: a
// successful attempt contributes its latency, an attempt abandoned
// because a hedge beat it (or the per-attempt timer expired) contributes
// its elapsed time as a lower bound — without that, a replica whose
// every request is cut short by a winning hedge would keep a stale
// "fast" score forever. The scoreboard answers two questions on the
// request path:
//
//   - budget: the adaptive hedge delay for a primary attempt — an
//     EWMA-percentile estimate (mean + k·σ), clamped to a floor so warm
//     microsecond traffic does not hedge on scheduler noise. Until a
//     replica has hedgeWarmup samples there is no budget and no hedging.
//   - prefer: chain reordering — when the owner's score is demoteRatio
//     worse than its first successor's, the request goes successor-first
//     (placement falls back along the same PlaceK chain failover uses,
//     so cache locality degrades to the successor's tier instead of
//     scattering). Every canaryEvery-th such request still goes
//     owner-first, hedge-protected, so a healed replica's score recovers
//     instead of being frozen by its own demotion.

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

const (
	// hedgeWarmup is the sample count below which a replica's score is
	// not trusted: no budget, no hedging, no demotion.
	hedgeWarmup = 16
	// hedgeSigma sets the budget percentile: mean + 3σ sits near p99 for
	// roughly normal latency, so steady-state traffic almost never
	// hedges and a genuine straggler almost always does.
	hedgeSigma = 3.0
	// demoteRatio is how much worse (×) the owner's latency EWMA must be
	// than its successor's before requests route successor-first.
	demoteRatio = 8.0
	// canaryEvery keeps 1/canaryEvery of a demoted owner's traffic going
	// owner-first (hedged): frequent enough to notice recovery within
	// tens of requests, rare enough to stay out of the cluster p99.
	canaryEvery = 64
)

// DefaultHedgeFloor is the minimum hedge delay: below it, a backup fires
// on ordinary scheduling jitter and doubles warm-path load for nothing.
const DefaultHedgeFloor = time.Millisecond

// score is one replica's row: a latency EWMA (seconds, guarded by its
// own mutex like the health accounting) plus lock-free in-flight and
// hedge counters read on the hot path.
type score struct {
	mu   sync.Mutex
	ewma *stats.EWMA

	inflight  atomic.Int64
	hedges    atomic.Int64 // backups fired because this replica's primary attempt ran long
	hedgeWins atomic.Int64 // backups that answered before this replica's primary attempt
	canary    atomic.Int64 // demotion decisions, for canary scheduling
}

// scoreboard is the router's per-backend latency accounting.
type scoreboard struct {
	floor   time.Duration
	ceiling time.Duration
	scores  []score
}

func newScoreboard(n int, floor, ceiling time.Duration) *scoreboard {
	sb := &scoreboard{floor: floor, ceiling: ceiling, scores: make([]score, n)}
	for i := range sb.scores {
		sb.scores[i].ewma = stats.NewEWMA(stats.DefaultEWMAAlpha)
	}
	return sb
}

// observe folds one attempt's wall time into the replica's score.
func (s *scoreboard) observe(b int, d time.Duration) {
	sc := &s.scores[b]
	sc.mu.Lock()
	sc.ewma.Observe(d.Seconds())
	sc.mu.Unlock()
}

// observeFloor folds an abandoned attempt's elapsed time in as a lower
// bound: it only ever raises the estimate. An attempt canceled after
// 5ms on a replica estimated at 50ms says nothing new — we already
// believed it takes at least that long — and folding it in as-is would
// drag a sick replica's score down toward the hedge delay, flapping it
// out of demotion while it is still slow.
func (s *scoreboard) observeFloor(b int, d time.Duration) {
	sc := &s.scores[b]
	sc.mu.Lock()
	if d.Seconds() > sc.ewma.Mean() {
		sc.ewma.Observe(d.Seconds())
	}
	sc.mu.Unlock()
}

// snapshot returns the replica's current latency estimate.
func (s *scoreboard) snapshot(b int) (mean, std float64, n int64) {
	sc := &s.scores[b]
	sc.mu.Lock()
	mean, std, n = sc.ewma.Mean(), sc.ewma.Std(), sc.ewma.N()
	sc.mu.Unlock()
	return
}

// budget derives the replica's adaptive hedge delay. ok is false while
// the score is still warming up — an untrusted estimate must not fire
// backups.
func (s *scoreboard) budget(b int) (time.Duration, bool) {
	mean, std, n := s.snapshot(b)
	if n < hedgeWarmup {
		return 0, false
	}
	d := time.Duration((mean + hedgeSigma*std) * float64(time.Second))
	if d < s.floor {
		d = s.floor
	}
	if d > s.ceiling {
		d = s.ceiling
	}
	return d, true
}

// hedgeDelay picks when a backup to hb should fire behind a primary
// attempt on b: normally b's own budget (hedge on the primary's p99),
// but when b is known sick relative to hb — the same bar demotion uses —
// the backup's budget instead. A demoted owner's canary request would
// otherwise inherit the straggler's runaway budget and fire its backup
// far too late to protect the request. ok is false while either side of
// the decision is still warming up.
func (s *scoreboard) hedgeDelay(b, hb int) (time.Duration, bool) {
	d, ok := s.budget(b)
	if !ok {
		return 0, false
	}
	mb, _, _ := s.snapshot(b)
	mh, _, nh := s.snapshot(hb)
	if nh >= hedgeWarmup && mb > demoteRatio*mh {
		if dh, ok := s.budget(hb); ok {
			return dh, true
		}
	}
	return d, true
}

// prefer reorders the first two chain positions in place when the owner
// is consistently slower than its successor (see the package comment on
// demotion and canaries). The chain is PlaceK's fresh per-request slice.
func (s *scoreboard) prefer(chain []int) {
	if len(chain) < 2 {
		return
	}
	ma, _, na := s.snapshot(chain[0])
	mb, _, nb := s.snapshot(chain[1])
	if na < hedgeWarmup || nb < hedgeWarmup || ma <= demoteRatio*mb {
		return
	}
	if s.scores[chain[0]].canary.Add(1)%canaryEvery == 0 {
		return // canary: owner-first, hedge-protected, so recovery is seen
	}
	chain[0], chain[1] = chain[1], chain[0]
}
