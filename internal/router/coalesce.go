package router

// The batched data plane's front half: request coalescing. Routed
// requests for the same owning replica are queued per backend and
// flushed as one DoBatch exchange — so the wire (or the in-process
// call) is paid once per frame instead of once per request, which is
// what lets routed throughput track raw engine throughput when
// communication dominates computation.
//
// The flush policy is class-aware so PR 8's tail-latency protections
// survive batching:
//
//   - A frame flushes immediately at maxBatch entries ("full").
//   - A pure batch-class queue may wait up to batchWindow for company
//     ("window") — batch traffic trades a bounded sub-millisecond delay
//     for amortization by definition.
//   - An interactive arrival flushes the queue at once ("interactive"):
//     interactive requests never wait out a window. Their batching
//     arises only from group commit — arrivals that land while a flush
//     is already on the wire ride the next frame together.
//
// Interactive requests only coalesce at all when the owner is trusted:
// scoreboard warmed up (>= hedgeWarmup samples) and its latency EWMA
// under coalesceTrustMean — otherwise they take the classic hedged
// single-request path, so a degraded replica's p99 is still covered by
// backup requests. Requests carrying a deadline always bypass
// coalescing: a flush runs under the router's own timeout, detached
// from caller contexts, so one canceled caller cannot waste its
// siblings' memoized work.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/serve"
)

const (
	// maxBatch is the flush-on-count threshold per coalesced frame.
	maxBatch = 64
	// batchWindow bounds how long a pure batch-class queue waits for
	// company before flushing anyway.
	batchWindow = 500 * time.Microsecond
	// coalesceTrustMean is the owner latency EWMA (seconds) above which
	// interactive traffic stops coalescing and returns to the hedged
	// single-request path.
	coalesceTrustMean = 0.005
)

// Flush reasons, in batchFlushes index order.
const (
	flushFull = iota
	flushWindow
	flushInteractive
	// flushDirect counts pre-assembled frames (sweep fan-out and the
	// /batch endpoint) shipped through ServeEncodedBatch without passing
	// the coalescing queue.
	flushDirect
	flushReasons
)

var flushReasonNames = [flushReasons]string{"full", "window", "interactive", "direct"}

// FlushReasonNames lists the flush-reason vocabulary of the
// arch21_batch_flushes_total metric, in label order.
func FlushReasonNames() []string { return flushReasonNames[:] }

// batchSizeBounds are the arch21_batch_size bucket bounds: powers of
// two through the coalescer's cap, then the wire frame cap.
var batchSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64, 256, 1024, 4096}

// flusherIdle is how long an idle flush goroutine stays parked on its
// wake channel before exiting. Keeping the goroutine alive across
// consecutive frames matters: respawning per drain cycle pays a cold
// stack growth (runtime.newstack) on every flush, which profiles as the
// single largest cost of the warm routed path.
const flusherIdle = 50 * time.Millisecond

// batchCall is one request waiting in a coalescing queue. done is
// buffered so a flush can complete a call whose caller already gave up.
// key carries the memoized canonical engine cache key ("" when the
// routing key was the ad-hoc form), letting an in-process engine skip
// its own schema resolution on the warm path.
type batchCall struct {
	id     string
	key    string
	params core.Params
	class  admit.Class
	done   chan serve.BatchOutcome
}

var callPool = sync.Pool{New: func() any {
	return &batchCall{done: make(chan serve.BatchOutcome, 1)}
}}

// coalescer is one backend's flush queue. At most one flushLoop
// goroutine exists per coalescer (guarded by flushing); it drains the
// queue in frames, parks briefly when the queue goes empty, and exits
// only after flusherIdle without traffic. direct marks an in-process
// engine backend: its DoBatch cannot transport-wedge, so flushes skip
// the per-flush timeout context a remote exchange needs.
type coalescer struct {
	r      *Router
	b      int
	bb     BatchBackend
	direct bool
	// eng is the unwrapped in-process engine when direct: flushes call
	// its buffer-reusing multi-get directly, so the steady state
	// allocates neither items nor outcomes per frame.
	eng *serve.Engine

	mu      sync.Mutex
	pending []*batchCall
	spare   []*batchCall // drained frame recycled as the next queue (returned under mu)
	// flushing marks the background flush goroutine alive; shipping
	// marks a frame exchange in progress (by the goroutine or by an
	// interactive leader executing its own flush) — at most one ship
	// runs at a time, which is what makes the scratch buffers below
	// reusable and keeps frames ordered.
	flushing bool
	shipping bool
	// wake (capacity 1) unparks the flush goroutine when work arrives on
	// an empty queue and cuts a window wait short when an interactive
	// request or a full frame arrives mid-wait. A stale wake at worst
	// shortens the next window — never drops a flush.
	wake chan struct{}

	// items and outs are ship's reusable frame buffers; safe to reuse
	// because shipping serializes ship calls, backends return only after
	// the exchange is fully resolved, and every outcome is copied into
	// its call's done channel before the next frame.
	items []serve.BatchItem
	outs  []serve.BatchOutcome
}

// do enqueues one request and blocks until its flush completes or ctx
// is canceled. On cancellation the call is abandoned, not recycled —
// the in-flight flush still owns it and will complete it into the
// buffered done channel. e is the request's memoized placement: when it
// resolved canonically, the flush ships the resolved assignment and the
// engine cache key so the replica's warm path is one slab lookup.
func (c *coalescer) do(ctx context.Context, id string, p core.Params, class admit.Class, e *routeEntry) serve.BatchOutcome {
	call := callPool.Get().(*batchCall)
	call.id, call.class = id, class
	if e.canonical {
		call.key, call.params = e.key, e.resolved
	} else {
		call.key, call.params = "", p
	}
	c.mu.Lock()
	c.pending = append(c.pending, call)
	n := len(c.pending)
	if class == admit.Interactive && !c.shipping && ctx.Done() == nil {
		// Group-commit leader: an interactive arrival flushes the queue
		// at once anyway, and with no exchange in progress this caller
		// can run the flush itself — no handoff to the flush goroutine,
		// which at low concurrency would park and unpark two goroutines
		// to ship a frame of one. Uncancelable contexts only: a leader
		// cannot abandon a flush it is executing. Arrivals that land
		// while this ship is on the wire ride the next frame together.
		c.shipping = true
		take := c.pending
		c.pending = c.spare
		c.spare = nil
		c.mu.Unlock()
		reason := flushInteractive
		if n >= maxBatch {
			reason = flushFull
		}
		c.ship(take, reason)
		clear(take)
		c.mu.Lock()
		c.shipping = false
		c.spare = take[:0]
		pend := len(c.pending) > 0
		spawn := pend && !c.flushing
		if spawn {
			c.flushing = true
		}
		c.mu.Unlock()
		if spawn {
			go c.flushLoop()
		} else if pend {
			select {
			case c.wake <- struct{}{}:
			default:
			}
		}
		out := <-call.done
		call.params = nil
		callPool.Put(call)
		return out
	}
	spawn := !c.flushing
	if spawn {
		c.flushing = true
	}
	c.mu.Unlock()
	if spawn {
		go c.flushLoop()
	} else if n == 1 || class == admit.Interactive || n >= maxBatch {
		select {
		case c.wake <- struct{}{}:
		default:
		}
	}
	if ctx.Done() == nil {
		// No cancellation to race (Background or an uncancelable parent):
		// a plain receive skips the generic select machinery.
		out := <-call.done
		call.params = nil
		callPool.Put(call)
		return out
	}
	select {
	case out := <-call.done:
		call.params = nil
		callPool.Put(call)
		return out
	case <-ctx.Done():
		return serve.BatchOutcome{Err: ctx.Err()}
	}
}

// pureBatch reports whether every pending call is batch-class (the only
// case allowed to wait out a window).
func pureBatch(calls []*batchCall) bool {
	for _, c := range calls {
		if c.class != admit.Batch {
			return false
		}
	}
	return true
}

// resetTimer re-arms a (possibly fired, possibly stopped) timer owned
// by a single goroutine.
func resetTimer(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(d)
}

// flushLoop drains the queue in frames. An empty queue parks the
// goroutine on wake (re-armed by do when work lands on an empty queue)
// rather than exiting immediately, so steady traffic reuses one warm
// stack and one timer across every flush; only flusherIdle without
// traffic ends the loop.
func (c *coalescer) flushLoop() {
	t := time.NewTimer(flusherIdle)
	defer t.Stop()
	waited := false
	for {
		c.mu.Lock()
		n := len(c.pending)
		if n == 0 || c.shipping {
			// Nothing to take, or an interactive leader owns the current
			// exchange (it re-wakes this goroutine if work is pending when
			// it finishes). Park.
			c.mu.Unlock()
			waited = false
			resetTimer(t, flusherIdle)
			select {
			case <-c.wake:
			case <-t.C:
				c.mu.Lock()
				if len(c.pending) == 0 && !c.shipping {
					c.flushing = false
					c.mu.Unlock()
					return
				}
				c.mu.Unlock()
			}
			continue
		}
		full := n >= maxBatch
		pure := pureBatch(c.pending)
		if !full && pure && !waited {
			c.mu.Unlock()
			resetTimer(t, batchWindow)
			select {
			case <-t.C:
			case <-c.wake:
			}
			waited = true
			continue
		}
		c.shipping = true
		take := c.pending
		c.pending = c.spare
		c.spare = nil
		c.mu.Unlock()
		var reason int
		switch {
		case full:
			reason = flushFull
		case !pure:
			reason = flushInteractive
		default:
			reason = flushWindow
		}
		waited = false
		c.ship(take, reason)
		clear(take)
		c.mu.Lock()
		c.shipping = false
		c.spare = take[:0]
		c.mu.Unlock()
	}
}

// ship runs one frame against the backend and completes every call.
// The flush context is the router's own timeout, deliberately detached
// from the callers': deadline-carrying requests bypassed coalescing, so
// every queued caller is patient, and a caller that gave up anyway must
// not cancel its siblings' (memoized, never wasted) work.
func (c *coalescer) ship(calls []*batchCall, reason int) {
	r := c.r
	r.batchFlushes[reason].Add(1)
	r.batchSize.Observe(float64(len(calls)))
	st := &r.state[c.b]
	st.mu.Lock()
	st.requests += int64(len(calls))
	st.mu.Unlock()
	items := c.items[:0]
	for _, call := range calls {
		items = append(items, serve.BatchItem{
			ID: call.id, Key: call.key, Params: call.params, Class: call.class})
	}
	c.items = items[:0]
	sc := &r.sb.scores[c.b]
	sc.inflight.Add(int64(len(calls)))
	var (
		outs []serve.BatchOutcome
		err  error
	)
	t0 := time.Now()
	if c.direct {
		// The flush bound exists to classify transport slowness; an
		// in-process engine cannot transport-wedge, so direct flushes
		// skip the per-flush context (and its timer) and reuse the
		// outcome buffer frame over frame.
		outs = c.eng.ServeEncodedBatchInto(context.Background(), items, c.outs[:0])
		c.outs = outs[:0]
	} else {
		fctx, cancel := context.WithTimeout(context.Background(), r.cfg.Timeout)
		outs, err = c.bb.DoBatch(fctx, items)
		cancel()
	}
	elapsed := time.Since(t0)
	sc.inflight.Add(-int64(len(calls)))
	if err == nil && len(outs) != len(calls) {
		err = fmt.Errorf("router: %s: batch returned %d outcomes for %d items",
			r.backends[c.b].Name(), len(outs), len(calls))
	}
	if err != nil {
		r.noteFailure(c.b)
		for _, call := range calls {
			call.done <- serve.BatchOutcome{Err: err}
		}
		return
	}
	r.noteSuccess(c.b)
	r.sb.observe(c.b, elapsed)
	for i, call := range calls {
		call.done <- outs[i]
	}
}

// coalesceOK reports whether one request may enter owner's coalescing
// queue instead of the classic chain. Deadline-carrying requests never
// coalesce (the flush runs detached from caller deadlines); ejected
// owners never coalesce (the chain walk knows how to probe and fail
// over); batch class always coalesces past those gates; interactive
// coalesces only when the owner's scoreboard is warmed up and fast —
// otherwise the hedged single-request path keeps its p99 covered.
func (r *Router) coalesceOK(ctx context.Context, owner int, class admit.Class) bool {
	if _, hasDeadline := ctx.Deadline(); hasDeadline {
		return false
	}
	st := &r.state[owner]
	st.mu.Lock()
	ejected := st.ejected
	st.mu.Unlock()
	if ejected {
		return false
	}
	if class == admit.Batch {
		return true
	}
	mean, _, n := r.sb.snapshot(owner)
	return n >= hedgeWarmup && mean < coalesceTrustMean
}

// encodeResponse converts a classic-path Response into the encoded
// form the batched surfaces return (one Encode; the payload is fresh,
// not slab-aliased).
func encodeResponse(resp serve.Response) serve.RawResponse {
	return serve.RawResponse{
		ID:       resp.ID,
		Params:   resp.Params,
		Key:      resp.Key,
		Class:    resp.Class,
		Raw:      resp.Result.Encode(),
		CacheHit: resp.CacheHit,
		Shared:   resp.Shared,
		Latency:  resp.Latency,
	}
}

// ServeEncoded routes one request through the batched data plane: if
// the owner's backend can batch and the request may coalesce, it joins
// the owner's flush queue and returns the replica's encoded payload
// without a decode/re-encode at this hop. Otherwise — or when a
// coalesced attempt comes back with a failover-worthy error — it takes
// the classic hedged chain and encodes at the edge. Satisfies
// load.EncodedServer, so in-process load generation measures exactly
// this path.
func (r *Router) ServeEncoded(ctx context.Context, id string, p core.Params) (serve.RawResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r.requests.Add(1)
	class := admit.ClassFrom(ctx)
	e := r.route(id, p)
	if c := r.co[e.owner]; c != nil && r.coalesceOK(ctx, e.owner, class) {
		out := c.do(ctx, id, p, class, e)
		if out.Err == nil {
			r.batched.Add(1)
			return out.RawResponse, nil
		}
		switch classify(out.Err) {
		case verdictCtx, verdictReturn:
			// Final on every replica (caller gone, client error, deadline
			// shed): failing over would answer identically or waste work.
			return serve.RawResponse{}, out.Err
		}
		// Queue-full shed or replica failure: the chain walk below owns
		// failover, ejection, and hedging semantics.
	}
	resp, err := r.serveChainKeyed(ctx, id, p, e.key)
	if err != nil {
		return serve.RawResponse{}, err
	}
	return encodeResponse(resp), nil
}

// fallbackOne serves one batch item through the classic chain under the
// item's own class.
func (r *Router) fallbackOne(ctx context.Context, it serve.BatchItem) serve.BatchOutcome {
	ictx := ctx
	if admit.ClassFrom(ctx) != it.Class {
		ictx = admit.WithClass(ctx, it.Class)
	}
	resp, err := r.serveChain(ictx, it.ID, it.Params)
	if err != nil {
		return serve.BatchOutcome{Err: err}
	}
	return serve.BatchOutcome{RawResponse: encodeResponse(resp)}
}

// ServeEncodedBatch serves a pre-assembled frame of items: group by
// owning replica, one DoBatch exchange per owner (under the caller's
// context — the sweep path needs its cancellation to propagate), and
// per-entry fallback through the classic chain when an owner cannot
// batch, is ejected, or an entry comes back failover-worthy. Outcomes
// are in item order. Placement still follows the ring, so a sweep
// fanned out through frames executes each grid point exactly once
// cluster-wide, on the same replica single requests would pick. Items
// whose assignment resolves canonically are annotated in place with the
// engine cache key and resolved params (visible to the caller), so the
// owning replica's warm path skips per-item schema resolution.
func (r *Router) ServeEncodedBatch(ctx context.Context, items []serve.BatchItem) []serve.BatchOutcome {
	if ctx == nil {
		ctx = context.Background()
	}
	r.requests.Add(int64(len(items)))
	out := make([]serve.BatchOutcome, len(items))
	groups := make(map[int][]int)
	for i := range items {
		e := r.route(items[i].ID, items[i].Params)
		if e.canonical && items[i].Key == "" {
			// Annotate the frame in place with the memoized canonical key
			// and resolved assignment: the owning engine then serves warm
			// entries without re-resolving the schema per item.
			items[i].Key = e.key
			items[i].Params = e.resolved
		}
		groups[e.owner] = append(groups[e.owner], i)
	}
	var wg sync.WaitGroup
	for owner, idxs := range groups {
		wg.Add(1)
		go func(owner int, idxs []int) {
			defer wg.Done()
			r.serveOwnerBatch(ctx, owner, idxs, items, out)
		}(owner, idxs)
	}
	wg.Wait()
	return out
}

// serveOwnerBatch ships one owner's share of a frame, falling back to
// the classic chain per entry when the direct exchange is unavailable
// or an entry's error warrants failover.
func (r *Router) serveOwnerBatch(ctx context.Context, owner int, idxs []int, items []serve.BatchItem, out []serve.BatchOutcome) {
	bb, ok := r.backends[owner].(BatchBackend)
	if ok && r.admit(owner) {
		// admit counted one request toward the owner; account the rest of
		// the frame's entries.
		if len(idxs) > 1 {
			st := &r.state[owner]
			st.mu.Lock()
			st.requests += int64(len(idxs) - 1)
			st.mu.Unlock()
		}
		sub := make([]serve.BatchItem, len(idxs))
		for j, i := range idxs {
			sub[j] = items[i]
		}
		r.batchFlushes[flushDirect].Add(1)
		r.batchSize.Observe(float64(len(sub)))
		sc := &r.sb.scores[owner]
		sc.inflight.Add(int64(len(sub)))
		t0 := time.Now()
		outs, err := bb.DoBatch(ctx, sub)
		elapsed := time.Since(t0)
		sc.inflight.Add(-int64(len(sub)))
		if err == nil && len(outs) == len(sub) {
			r.noteSuccess(owner)
			r.sb.observe(owner, elapsed)
			for j, i := range idxs {
				o := outs[j]
				if o.Err == nil {
					r.batched.Add(1)
					out[i] = o
					continue
				}
				switch classify(o.Err) {
				case verdictCtx, verdictReturn:
					out[i] = o
				default:
					out[i] = r.fallbackOne(ctx, items[i])
				}
			}
			return
		}
		if err != nil && classify(err) == verdictCtx {
			// The caller is gone: final for every entry, no health blame.
			for _, i := range idxs {
				out[i] = serve.BatchOutcome{Err: err}
			}
			return
		}
		// Transport failure (or a malformed outcome count): blame the
		// replica once and let each entry fail over through the chain.
		r.noteFailure(owner)
	}
	for _, i := range idxs {
		out[i] = r.fallbackOne(ctx, items[i])
	}
}
