package router

// Versioned-API suite: every error path on both HTTP front ends — a
// replica engine's handler and the routing front-end — answers with the
// shared httpapi envelope, on the legacy paths and their /v1 aliases
// alike; upstream sheds pass through with Retry-After intact; and
// HTTPBackend's keep-alive pool actually reuses connections, including
// across error responses.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"strings"
	"sync"
	"testing"

	"repro/internal/admit"
	"repro/internal/httpapi"
	"repro/internal/serve"
)

// decodeEnvelope asserts the response is the shared error envelope and
// returns its code.
func decodeEnvelope(t *testing.T, rec *httptest.ResponseRecorder) httpapi.ErrorDetail {
	t.Helper()
	var env httpapi.ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("body is not the shared envelope: %v\n%s", err, rec.Body.String())
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %s", rec.Body.String())
	}
	return env.Error
}

func TestErrorEnvelopeBothFrontEnds(t *testing.T) {
	eng := serve.NewEngine(serve.Config{Shards: 4, Workers: 2})
	t.Cleanup(eng.Close)
	rt, err := New([]Backend{NewEngineBackend(newTestEngine(t), "engine[0]")}, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fronts := []struct {
		name string
		h    http.Handler
	}{
		{"engine", eng.Handler()},
		{"router", rt.Handler()},
	}
	cases := []struct {
		name   string
		method string
		path   string
		status int
		code   string
	}{
		{"unknown experiment", "GET", "/run/NOPE", http.StatusNotFound, httpapi.CodeNotFound},
		{"malformed param", "GET", "/run/E7?param=bogus", http.StatusBadRequest, httpapi.CodeBadRequest},
		{"bad class header", "GET", "/run/E7", http.StatusBadRequest, httpapi.CodeBadRequest},
		{"bad deadline header", "GET", "/run/E7", http.StatusBadRequest, httpapi.CodeBadRequest},
		{"bad events cursor", "GET", "/events?since=abc", http.StatusBadRequest, httpapi.CodeBadRequest},
		{"bad control body", "POST", "/control", http.StatusBadRequest, httpapi.CodeBadRequest},
	}
	for _, fe := range fronts {
		for _, prefix := range []string{"", "/v1"} {
			for _, tc := range cases {
				if fe.name == "router" && tc.name == "unknown experiment" {
					// The router's verdict for NOPE comes from its test
					// engine, which serves any ID; the engine front end
					// covers the 404 path.
					continue
				}
				t.Run(fmt.Sprintf("%s%s %s", fe.name, prefix, tc.name), func(t *testing.T) {
					var body *strings.Reader
					if tc.method == "POST" {
						body = strings.NewReader("{not json")
					} else {
						body = strings.NewReader("")
					}
					req := httptest.NewRequest(tc.method, prefix+tc.path, body)
					switch tc.name {
					case "bad class header":
						req.Header.Set("X-Arch21-Class", "bogus")
					case "bad deadline header":
						req.Header.Set("X-Arch21-Deadline-MS", "-5")
					}
					rec := httptest.NewRecorder()
					fe.h.ServeHTTP(rec, req)
					if rec.Code != tc.status {
						t.Fatalf("status %d, want %d\n%s", rec.Code, tc.status, rec.Body.String())
					}
					if got := decodeEnvelope(t, rec); got.Code != tc.code {
						t.Fatalf("code %q, want %q", got.Code, tc.code)
					}
				})
			}
		}
	}
}

func TestRouterFormatRejectionIsEnvelope(t *testing.T) {
	rt, err := New([]Backend{NewEngineBackend(newTestEngine(t), "engine[0]")}, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h := rt.Handler()
	for _, path := range []string{"/run/E7?format=text", "/v1/run/E7?format=text"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", path, rec.Code)
		}
		if got := decodeEnvelope(t, rec); got.Code != httpapi.CodeBadRequest {
			t.Fatalf("%s: code %q", path, got.Code)
		}
	}
}

func TestV1AliasesServeSameContent(t *testing.T) {
	eng := serve.NewEngine(serve.Config{Shards: 4, Workers: 2})
	t.Cleanup(eng.Close)
	rt, err := New([]Backend{NewEngineBackend(newTestEngine(t), "engine[0]")}, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, fe := range []struct {
		name string
		h    http.Handler
	}{{"engine", eng.Handler()}, {"router", rt.Handler()}} {
		for _, path := range []string{"/healthz", "/experiments"} {
			legacy, versioned := httptest.NewRecorder(), httptest.NewRecorder()
			fe.h.ServeHTTP(legacy, httptest.NewRequest("GET", path, nil))
			fe.h.ServeHTTP(versioned, httptest.NewRequest("GET", "/v1"+path, nil))
			if legacy.Code != http.StatusOK || versioned.Code != http.StatusOK {
				t.Fatalf("%s %s: legacy %d, /v1 %d", fe.name, path, legacy.Code, versioned.Code)
			}
			if legacy.Body.String() != versioned.Body.String() {
				t.Fatalf("%s %s: legacy and /v1 responses differ", fe.name, path)
			}
		}
	}
}

func TestRouterPassesThroughUpstreamShedEnvelope(t *testing.T) {
	// A replica sheds with 503 + Retry-After; the front-end must re-emit
	// the same status, the envelope, and the backoff header instead of
	// swallowing them.
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		httpapi.WriteErrorRetry(w, http.StatusServiceUnavailable, httpapi.CodeQueueFull,
			"queue full", 2e9)
	}))
	t.Cleanup(replica.Close)
	rt, err := New([]Backend{NewHTTPBackend(replica.URL)}, Config{Retries: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/run/E7", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503\n%s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After %q, want %q", got, "2")
	}
	if got := decodeEnvelope(t, rec); got.Code != httpapi.CodeQueueFull {
		t.Fatalf("code %q, want queue_full", got.Code)
	}
}

func TestHTTPBackendReusesConnections(t *testing.T) {
	// Sequential requests — including one answered with an error status
	// whose body the backend must drain — have to ride one keep-alive
	// connection. Without draining, the transport tears the connection
	// down after every error and the pool silently degrades to a dial
	// per request.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/run/ERR") {
			httpapi.WriteError(w, http.StatusServiceUnavailable, httpapi.CodeQueueFull,
				strings.Repeat("shed ", 200)) // larger than the 512B error sample
			return
		}
		w.Header().Set(admit.HeaderClass, "interactive")
		_, _ = w.Write(fakeResult(strings.TrimPrefix(r.URL.Path, "/run/")).Encode())
	}))
	t.Cleanup(srv.Close)
	b := NewHTTPBackend(srv.URL)

	var mu sync.Mutex
	var reused []bool
	trace := &httptrace.ClientTrace{GotConn: func(info httptrace.GotConnInfo) {
		mu.Lock()
		reused = append(reused, info.Reused)
		mu.Unlock()
	}}
	ctx := httptrace.WithClientTrace(context.Background(), trace)

	if _, err := b.Do(ctx, "E1", nil); err != nil {
		t.Fatalf("first request: %v", err)
	}
	if _, err := b.Do(ctx, "ERR", nil); err == nil {
		t.Fatal("error request should fail")
	}
	if _, err := b.Do(ctx, "E1", nil); err != nil {
		t.Fatalf("post-error request: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reused) != 3 {
		t.Fatalf("saw %d connections, want 3", len(reused))
	}
	if reused[0] {
		t.Fatal("first request cannot reuse")
	}
	if !reused[1] {
		t.Fatal("second request dialed fresh: the success body was not drained")
	}
	if !reused[2] {
		t.Fatal("request after the 503 dialed fresh: the error body was not drained")
	}
}
