package router

// Fault-injection backend, promoted from the PR 4 test suite so the
// chaos harness (internal/load's soak mode, `arch21 loadtest -chaos`)
// and the router's own tests compose the same doubles: replica kills,
// hard hangs, and error bursts, injected live while real load flows.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// ErrInjectedFault is the failure every FaultBackend fault surfaces, so
// harness code can tell injected chaos from organic errors.
var ErrInjectedFault = errors.New("injected fault")

// FaultBackend wraps an inner Backend with operator-controlled faults:
//
//   - Kill/Revive — a crashed replica: every Do fails fast and Check
//     fails, so the router ejects it and probes it back after revival.
//   - Hang/Release — a wedged replica: Do blocks until released or the
//     caller's context expires (a hang must not leak goroutines past
//     their deadlines), while Check still succeeds — the failure mode
//     health probes cannot see.
//   - ErrorBurst(n) — the next n calls fail fast: a transient fault
//     that exercises failover without tripping ejection thresholds
//     when n is small.
//   - Degrade(d) — a slow replica: every Do sleeps d before delegating,
//     but still answers correctly and passes health checks. The failure
//     mode ejection cannot fix and only latency-aware routing (hedging,
//     scoreboard demotion) mitigates.
//
// All methods are safe for concurrent use.
type FaultBackend struct {
	inner Backend

	killed  atomic.Bool
	burst   atomic.Int64
	degrade atomic.Int64 // added service latency, nanoseconds

	mu   sync.Mutex
	hung chan struct{} // non-nil while hanging; closed by Release

	calls  atomic.Int64
	faults atomic.Int64
}

// NewFaultBackend wraps inner; the zero state injects nothing.
func NewFaultBackend(inner Backend) *FaultBackend {
	return &FaultBackend{inner: inner}
}

// Kill crash-stops the backend: every Do and Check fails until Revive.
// In-flight calls complete — a kill is a crash, not a time machine.
func (f *FaultBackend) Kill() { f.killed.Store(true) }

// Revive brings a killed backend back; the router re-admits it after a
// successful health probe.
func (f *FaultBackend) Revive() { f.killed.Store(false) }

// Hang wedges the backend: every Do blocks until Release (or its
// context's deadline). Health checks keep passing. Hanging an already
// hung backend is a no-op.
func (f *FaultBackend) Hang() {
	f.mu.Lock()
	if f.hung == nil {
		f.hung = make(chan struct{})
	}
	f.mu.Unlock()
}

// Release unwedges a hung backend, letting blocked calls proceed.
func (f *FaultBackend) Release() {
	f.mu.Lock()
	if f.hung != nil {
		close(f.hung)
		f.hung = nil
	}
	f.mu.Unlock()
}

// ErrorBurst makes the next n calls fail fast with ErrInjectedFault.
func (f *FaultBackend) ErrorBurst(n int) { f.burst.Store(int64(n)) }

// Degrade adds d of service latency to every subsequent Do (0 heals).
// Unlike Hang, degraded calls still complete and health checks still
// pass — the replica is slow, not dead.
func (f *FaultBackend) Degrade(d time.Duration) { f.degrade.Store(int64(d)) }

// Calls reports total Do attempts; Faults those that failed injected.
func (f *FaultBackend) Calls() int64  { return f.calls.Load() }
func (f *FaultBackend) Faults() int64 { return f.faults.Load() }

// Do implements Backend with the configured faults applied.
func (f *FaultBackend) Do(ctx context.Context, id string, p core.Params) (serve.Response, error) {
	f.calls.Add(1)
	if f.killed.Load() {
		f.faults.Add(1)
		return serve.Response{}, ErrInjectedFault
	}
	for {
		f.mu.Lock()
		hung := f.hung
		f.mu.Unlock()
		if hung == nil {
			break
		}
		select {
		case <-hung:
			// Released; re-check in case of an immediate re-hang.
		case <-ctx.Done():
			f.faults.Add(1)
			return serve.Response{}, ctx.Err()
		}
	}
	if f.burst.Load() > 0 && f.burst.Add(-1) >= 0 {
		f.faults.Add(1)
		return serve.Response{}, ErrInjectedFault
	}
	if d := time.Duration(f.degrade.Load()); d > 0 {
		// A context-aware sleep: a degraded replica abandoned by a winning
		// hedge (or an expired deadline) must return promptly, not hold
		// the goroutine for the full injected latency.
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			f.faults.Add(1)
			return serve.Response{}, ctx.Err()
		}
	}
	return f.inner.Do(ctx, id, p)
}

// Check implements Backend: fails while killed, passes while hung (a
// wedged replica looks healthy to cheap probes — that is the point).
func (f *FaultBackend) Check() error {
	if f.killed.Load() {
		return ErrInjectedFault
	}
	return f.inner.Check()
}

// Name implements Backend.
func (f *FaultBackend) Name() string { return f.inner.Name() }

// Inner exposes the wrapped backend (chaos assertions read per-replica
// engine books through it).
func (f *FaultBackend) Inner() Backend { return f.inner }
