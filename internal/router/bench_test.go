package router

// Routed hot-path benchmarks: the cluster-scatter shape (a warmed grid
// scattered over 3 in-process replicas) driven straight at
// Router.ServeEncoded — the load generator's in-process path. Allocs
// are reported because the batched data plane's claim is that routing
// adds frames, not per-request garbage.

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/sweep"
)

func BenchmarkServeEncodedRoutedWarm(b *testing.B) {
	engines := make([]*serve.Engine, 3)
	backends := make([]Backend, 3)
	for i := range engines {
		engines[i] = serve.NewEngine(serve.Config{Shards: 8, Workers: 2})
		defer engines[i].Close()
		backends[i] = NewEngineBackend(engines[i], fmt.Sprintf("engine[%d]", i))
	}
	r, err := New(backends, Config{})
	if err != nil {
		b.Fatal(err)
	}
	sp, err := sweep.ParseSpec("E7", []string{
		"f=0.9:0.97:0.01", "bces=16,32,64,128,256,512,1024,2048",
	})
	if err != nil {
		b.Fatal(err)
	}
	grid := sp.Grid()
	for _, p := range grid {
		if _, err := r.ServeWith(context.Background(), "E7", p); err != nil {
			b.Fatal(err)
		}
	}
	params := make([]core.Params, len(grid))
	copy(params, grid)

	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		for pb.Next() {
			p := params[int(next.Add(1))%len(params)]
			if _, err := r.ServeEncoded(ctx, "E7", p); err != nil {
				b.Fatal(err)
			}
		}
	})
}
