// Package router turns the single-daemon serving stack into a shardable
// service: a consistent-hash request router fronting N serve backends —
// in-process serve.Engine shards and/or remote arch21d replicas over HTTP.
// Placement is replica-aware: the engine cache key for an (experiment,
// assignment) pair hashes to a position on an internal/cluster consistent
// ring, so every request for the same memoized entry lands on the same
// replica (each replica's tier-1 cache stays hot for exactly its key
// range, and a sweep's grid points execute exactly once cluster-wide).
// Per-backend health accounting ejects a replica after consecutive
// failures and lazily re-admits it after a successful probe; requests to
// an unhealthy or failing owner fail over — bounded — to the next
// distinct ring positions, so one wedged replica degrades capacity
// instead of availability. The router satisfies sweep.Server, so POST
// /sweep fans out through it unchanged, and internal/load measures it
// like any other target.
package router

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stats"
)

// ErrNoBackends is returned when every candidate replica for a key is
// ejected or failing.
var ErrNoBackends = errors.New("router: no healthy backend")

// errAttemptTimeout marks one attempt abandoned because the backend did
// not answer within Config.Timeout (a wedged replica must not stall the
// caller — or an entire sweep).
var errAttemptTimeout = errors.New("router: attempt timed out")

// DefaultTimeout is the default per-attempt bound, matching arch21d's
// write timeout for slow cold runs. HTTPBackend's transport deadline
// sits above it so the router — which knows how to fail over and eject —
// is always the layer that classifies slowness, not the HTTP client.
const DefaultTimeout = 5 * time.Minute

// Config parameterizes a Router.
type Config struct {
	// VNodes is the ring points per backend (default 64).
	VNodes int
	// Retries bounds failover attempts after the first (default: one per
	// remaining backend, i.e. len(backends)-1).
	Retries int
	// Timeout bounds one attempt's wall time (default 5m, matching the
	// daemon's write timeout for slow cold runs — set it above the
	// slowest legitimate cold execution, because an expiry is treated as
	// a replica failure: the router abandons the attempt, re-executes on
	// the successor, and counts it toward ejection; the abandoned call's
	// goroutine drains in the background when the backend eventually
	// answers).
	Timeout time.Duration
	// FailThreshold is the consecutive-failure count that ejects a
	// backend (default 3).
	FailThreshold int
	// ProbeAfter is how long an ejected backend waits before the next
	// request to it triggers a health probe for re-admission (default 1s).
	ProbeAfter time.Duration
	// HedgeFloor is the minimum hedge delay (default DefaultHedgeFloor,
	// 1ms): the scoreboard's adaptive budget never drops below it, so
	// warm microsecond traffic does not fire backups on scheduler noise.
	HedgeFloor time.Duration
	// DisableHedge turns hedged backup requests off entirely; the
	// scoreboard still tracks latency and the failover chain still works.
	DisableHedge bool
	// now is the clock; replaceable in tests.
	now func() time.Time
}

func (c *Config) setDefaults() {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = time.Second
	}
	if c.HedgeFloor <= 0 {
		c.HedgeFloor = DefaultHedgeFloor
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// backendState is one backend's health accounting, guarded by its own
// mutex (health bookkeeping must not serialize request fan-out).
type backendState struct {
	mu          sync.Mutex
	consecFails int
	ejected     bool
	nextProbe   time.Time

	requests  int64
	failures  int64
	ejections int64
}

// Router routes requests to their owning replica by consistent hash.
type Router struct {
	cfg      Config
	backends []Backend
	ring     *cluster.ConsistentHash
	state    []backendState

	// sb is the per-replica latency scoreboard feeding hedge budgets and
	// latency-aware chain preference.
	sb *scoreboard

	// Request-path counters are atomics: a tier-1 hit on an in-process
	// backend is sub-microsecond, so a shared mutex here would serialize
	// exactly the traffic the router exists to spread.
	requests  atomic.Int64
	failovers atomic.Int64
	exhausted atomic.Int64
	// hedges counts backup requests fired; hedgeWins those that answered
	// first. Hedges are accounted here — separately from requests and
	// failovers — so the engines' per-class conservation law still
	// balances: a hedge is an extra backend attempt, not an extra client
	// request.
	hedges    atomic.Int64
	hedgeWins atomic.Int64

	// co is the per-backend coalescing queue of the batched data plane
	// (nil per slot when the backend lacks DoBatch); batched counts
	// requests served through a coalesced flush, batchSize the per-flush
	// entry counts, batchFlushes the flushes by reason (full, window,
	// interactive).
	co           []*coalescer
	batched      atomic.Int64
	batchSize    *stats.AtomicHistogram
	batchFlushes [flushReasons]atomic.Int64

	// routeTab memoizes placement per (experiment, assignment) pair: an
	// immutable fingerprint→entry map read lock-free on every request and
	// swapped copy-on-write on insert. Resolving an assignment against
	// the experiment schema and formatting its canonical key costs more
	// than serving a warm hit, and a router sees the same bounded set of
	// grid points over and over — so the derivation is paid once per
	// distinct assignment, not once per request. Entries verify the full
	// (id, params) pair on lookup, so a fingerprint collision costs a
	// memoization miss, never a wrong key.
	routeTab   atomic.Pointer[map[uint64]*routeEntry]
	routeTabMu sync.Mutex

	// events records ejections, re-admissions, and control fan-outs.
	events *obs.Events

	obsOnce sync.Once
	obsReg  *obs.Registry
}

// New builds a router over the given backends. At least one is required.
func New(backends []Backend, cfg Config) (*Router, error) {
	if len(backends) == 0 {
		return nil, errors.New("router: need at least one backend")
	}
	cfg.setDefaults()
	if cfg.Retries <= 0 {
		cfg.Retries = len(backends) - 1
	}
	r := &Router{
		cfg:       cfg,
		backends:  backends,
		ring:      cluster.NewConsistentHash(len(backends), cfg.VNodes),
		state:     make([]backendState, len(backends)),
		sb:        newScoreboard(len(backends), cfg.HedgeFloor, cfg.Timeout),
		batchSize: stats.NewAtomicHistogram(batchSizeBounds),
		events:    obs.NewEvents(0),
	}
	r.co = make([]*coalescer, len(backends))
	for i, b := range backends {
		if bb, ok := b.(BatchBackend); ok {
			c := &coalescer{r: r, b: i, bb: bb, wake: make(chan struct{}, 1)}
			if eb, isEng := b.(*EngineBackend); isEng {
				c.direct, c.eng = true, eb.Engine()
			}
			r.co[i] = c
		}
	}
	return r, nil
}

// Events returns the front-end's control-plane event ring (never nil).
func (r *Router) Events() *obs.Events { return r.events }

// RouteKey derives the placement key for one (experiment, assignment)
// pair: the engine's cache key when the ID is registered (so placement
// agrees with memoization — explicit-default assignments route with the
// bare-ID traffic), otherwise the ID plus sorted assignments. Placement
// must be derivable without asking a replica, so resolution failures
// fall back to the ad-hoc form and let the owning replica report the
// schema error.
func RouteKey(id string, p core.Params) string {
	if exp, ok := core.ByID(id); ok && len(p) > 0 {
		if resolved, err := exp.ResolveParams(p); err == nil {
			return exp.CacheKey(resolved)
		}
	}
	as := p.Assignments()
	if len(as) == 0 {
		return id
	}
	return id + "?" + strings.Join(as, "&")
}

// Owner returns the backend index that owns a routing key (ignoring
// health) — what placement tests and rebalancing math inspect.
func (r *Router) Owner(key string) int { return r.ring.Place(cluster.HashString(key)) }

// routeEntry is one memoized placement: the routing key, the ring owner
// it hashes to, and — when the assignment resolved against a registered
// schema — the canonical engine cache key plus the resolved params, so
// the batched data plane can hand both to an in-process engine and skip
// the engine's own re-resolution. raw holds a private copy of the
// assignment the entry was derived from; lookups compare against it, so
// a fingerprint collision degrades to a miss instead of misplacing (or
// worse, mislabeling) a request. Entries are immutable after insert;
// resolved is shared read-only across every response built from it.
type routeEntry struct {
	id        string
	raw       core.Params
	key       string
	owner     int
	canonical bool
	resolved  core.Params
}

// routeTabMax caps the memo. Grids are bounded, but ad-hoc assignments
// arrive from clients; past the cap new pairs are derived per request
// instead of growing the table without bound.
const routeTabMax = 8192

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// routeFP fingerprints one (experiment, assignment) pair without
// allocating: FNV-1a over the ID, folded with an order-independent XOR
// of per-assignment sub-hashes so Go's randomized map iteration cannot
// perturb the fingerprint.
func routeFP(id string, p core.Params) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * fnvPrime64
	}
	var mix uint64
	for name, v := range p {
		eh := h
		for i := 0; i < len(name); i++ {
			eh = (eh ^ uint64(name[i])) * fnvPrime64
		}
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			eh = (eh ^ (bits >> s & 0xff)) * fnvPrime64
		}
		mix ^= eh
	}
	return h ^ mix
}

// route returns the memoized placement for (id, p), deriving and
// caching it on first sight. The derived key is exactly RouteKey's; the
// entry additionally records whether that key is the engine's canonical
// cache key (registered ID, assignment resolved — including the bare-ID
// zero-param form, which the engine keys identically).
func (r *Router) route(id string, p core.Params) *routeEntry {
	fp := routeFP(id, p)
	if tab := r.routeTab.Load(); tab != nil {
		if e, ok := (*tab)[fp]; ok && e.id == id && maps.Equal(e.raw, p) {
			return e
		}
	}
	e := &routeEntry{id: id}
	if len(p) == 0 {
		e.key, e.canonical = id, true
	} else {
		e.raw = maps.Clone(p)
		if exp, ok := core.ByID(id); ok {
			if resolved, err := exp.ResolveParams(p); err == nil {
				e.key = exp.CacheKey(resolved)
				e.canonical = true
				e.resolved = resolved
			}
		}
		if !e.canonical {
			e.key = id + "?" + strings.Join(p.Assignments(), "&")
		}
	}
	e.owner = r.ring.Place(cluster.HashString(e.key))
	r.storeRoute(fp, e)
	return e
}

// storeRoute inserts one entry copy-on-write. TryLock keeps inserts off
// the request path's critical section: if another insert is in flight,
// this pair is simply re-derived until a later request lands it.
func (r *Router) storeRoute(fp uint64, e *routeEntry) {
	if !r.routeTabMu.TryLock() {
		return
	}
	defer r.routeTabMu.Unlock()
	old := r.routeTab.Load()
	var n int
	if old != nil {
		n = len(*old)
	}
	if n >= routeTabMax {
		return
	}
	next := make(map[uint64]*routeEntry, n+1)
	if old != nil {
		maps.Copy(next, *old)
	}
	next[fp] = e
	r.routeTab.Store(&next)
}

// verdict classifies one attempt's outcome; it encodes the router's
// whole error taxonomy in one place so the plain failover path and the
// hedged race apply identical semantics.
type verdict int

const (
	// verdictOK: success — return the response, reset health accounting.
	verdictOK verdict = iota
	// verdictCtx: the caller is gone or out of budget — return without
	// accounting; failing over would re-spend a dead request's work.
	verdictCtx
	// verdictReturn: a client error or deadline shed — the caller's
	// fault, identical on every replica, so no failover and no ejection
	// (the replica answered deliberately: that is a success for health
	// accounting).
	verdictReturn
	// verdictFailover: a queue-full shed (in-process ShedError, or a
	// replica's 503) is genuine pressure, so it does fail over — a
	// sibling's queue may have room — but it is a *deliberate QoS verdict
	// from a live replica*, not a fault: counting it toward ejection
	// would turn sustained overload into a cascade (shedding replicas
	// ejected, their keys dumped on the siblings, which then shed and get
	// ejected too, until nothing serves). Health accounting stays
	// untouched either way: not a failure, and not a success that would
	// mask a flapping replica's real errors.
	verdictFailover
	// verdictFailure: a real replica failure — fail over and count it
	// toward ejection.
	verdictFailure
)

func classify(err error) verdict {
	switch {
	case err == nil:
		return verdictOK
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return verdictCtx
	}
	var shed *admit.ShedError
	if errors.As(err, &shed) && shed.Deadline {
		return verdictReturn
	}
	if errors.Is(err, serve.ErrUnknownExperiment) || errors.Is(err, serve.ErrBadParams) || isHTTPClientError(err) {
		return verdictReturn
	}
	if errors.Is(err, admit.ErrShed) || isHTTPStatus(err, 503) {
		return verdictFailover
	}
	return verdictFailure
}

// ServeWith routes one request to the replica owning its cache key —
// or, when the scoreboard shows the owner consistently slower than its
// first successor, successor-first along the same chain — failing over
// along the ring on error, ejection, or timeout. The first attempt of
// an interactive request is hedge-protected: if it outlives the
// scoreboard's adaptive budget, a backup fires to the next distinct
// replica, first response wins, and the loser is canceled through its
// context. Batch requests never hedge — a hedge buys tail latency with
// duplicate work, and a backup racing a cold sweep point on a sibling
// would execute it twice, breaking the sweep path's exactly-once
// property. The context's QoS envelope
// (class, deadline, cancellation) rides along to the backend — over HTTP
// it travels as the X-Arch21-Class and budget-decremented
// X-Arch21-Deadline-MS headers, with backups marked X-Arch21-Hedge. A
// shed answered by a replica (429) is a client-visible QoS verdict, not
// a replica failure: no ejection, no failover. ServeWith satisfies
// sweep.Server, so sweeps fan out through the router unchanged.
func (r *Router) ServeWith(ctx context.Context, id string, p core.Params) (serve.Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r.requests.Add(1)
	return r.serveChain(ctx, id, p)
}

// serveChain is the classic per-request chain walk: the body of
// ServeWith minus the top-level request count, so the batched data
// plane (Router.ServeEncoded falling back after a coalesced miss) can
// reuse it without double-counting the request.
func (r *Router) serveChain(ctx context.Context, id string, p core.Params) (serve.Response, error) {
	return r.serveChainKeyed(ctx, id, p, r.route(id, p).key)
}

// serveChainKeyed is serveChain with the routing key already derived
// (the batched data plane holds a memoized entry when it falls back).
func (r *Router) serveChainKeyed(ctx context.Context, id string, p core.Params, key string) (serve.Response, error) {
	chain := r.ring.PlaceK(cluster.HashString(key), 1+r.cfg.Retries)
	r.sb.prefer(chain)
	var lastErr error
	var tried []int // backends already consumed, by the loop or a hedge
	attempted := func(b int) bool {
		for _, t := range tried {
			if t == b {
				return true
			}
		}
		return false
	}
	for i, b := range chain {
		if attempted(b) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return serve.Response{}, err
		}
		if !r.admit(b) {
			continue
		}
		if len(tried) > 0 {
			r.failovers.Add(1)
		}
		tried = append(tried, b)

		var (
			resp   serve.Response
			err    error
			winner = b
		)
		if len(tried) == 1 {
			// Only the first admitted attempt hedges: one backup per
			// request bounds the work amplification at 2x.
			var hedgedOn int
			resp, err, winner, hedgedOn = r.doHedged(ctx, b, chain[i+1:], id, p)
			if hedgedOn >= 0 {
				tried = append(tried, hedgedOn)
			}
		} else {
			resp, err = r.do(ctx, b, id, p)
		}

		switch classify(err) {
		case verdictOK:
			r.noteSuccess(winner)
			return resp, nil
		case verdictCtx:
			return serve.Response{}, err
		case verdictReturn:
			r.noteSuccess(winner)
			return serve.Response{}, err
		case verdictFailover:
			lastErr = err
		case verdictFailure:
			r.noteFailure(winner)
			lastErr = err
		}
	}
	r.exhausted.Add(1)
	if lastErr == nil {
		return serve.Response{}, fmt.Errorf("%w for key %q (all ejected)", ErrNoBackends, key)
	}
	return serve.Response{}, fmt.Errorf("router: key %q failed on all %d candidates: %w", key, len(chain), lastErr)
}

// Serve routes a default-parameter interactive request.
func (r *Router) Serve(id string) (serve.Response, error) {
	return r.ServeWith(context.Background(), id, nil)
}

type outcome struct {
	resp serve.Response
	err  error
}

// launch starts one tracked attempt: in-flight accounting around the
// call, the latency observed into the scoreboard on success — and on
// abandonment (the returned cancel, used when a hedge wins or the
// attempt timer expires): the elapsed time is a lower bound on the true
// latency, folded in only when it raises the estimate (see
// scoreboard.observeFloor), and without it a replica whose every
// attempt is cut short by a winning backup would keep a stale fast
// score forever. Organic failures feed health accounting instead; their
// wall time says nothing about serving latency.
func (r *Router) launch(ctx context.Context, b int, id string, p core.Params, hedge bool) (<-chan outcome, context.CancelFunc) {
	actx, cancel := context.WithCancel(ctx)
	if hedge {
		actx = httpapi.WithHedge(actx)
	}
	ch := make(chan outcome, 1)
	sc := &r.sb.scores[b]
	sc.inflight.Add(1)
	go func() {
		t0 := time.Now()
		resp, err := r.backends[b].Do(actx, id, p)
		elapsed := time.Since(t0)
		sc.inflight.Add(-1)
		if err == nil {
			r.sb.observe(b, elapsed)
		} else if errors.Is(err, context.Canceled) && ctx.Err() == nil {
			// Abandoned by us (hedge win or attempt timer), not by the
			// caller: the elapsed time is a lower bound on the true
			// latency, folded in only when it raises the estimate.
			r.sb.observeFloor(b, elapsed)
		}
		ch <- outcome{resp, err}
	}()
	return ch, cancel
}

// do runs one attempt under the per-attempt timeout. A backend that
// neither answers nor errors within the window is treated as failed and
// the attempt is canceled through its context — the PR 5 plumbing makes
// the abandoned call unwind at its next iteration boundary instead of
// draining in the background. The goroutine-per-attempt is the price of
// hang protection for synchronous backends; the timer is stopped eagerly
// so a fast hit does not leave a multi-minute timer live until GC.
func (r *Router) do(ctx context.Context, b int, id string, p core.Params) (serve.Response, error) {
	ch, cancel := r.launch(ctx, b, id, p, false)
	defer cancel()
	timer := time.NewTimer(r.cfg.Timeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.resp, out.err
	case <-ctx.Done():
		return serve.Response{}, ctx.Err()
	case <-timer.C:
		return serve.Response{}, fmt.Errorf("%w after %v on %s", errAttemptTimeout, r.cfg.Timeout, r.backends[b].Name())
	}
}

// doHedged runs the hedge-protected first attempt: the primary launches
// immediately; if it outlives the scoreboard's adaptive budget, one
// backup fires to the next distinct untried replica in rest, and the
// first usable answer (success, or a client/deadline verdict — identical
// on every replica) wins while the loser is canceled through its
// context. A primary that *fails* before the budget expires returns
// without hedging — failures belong to the failover path, hedging is for
// slowness — and 4xx verdicts are never hedged: by the time one could
// fire, the request's fate is already decided on every replica.
//
// Returns the deciding outcome, the backend it came from (so the caller
// applies health accounting to the decider), and the backup's index when
// one was launched (-1 otherwise; the caller marks it consumed). When
// both attempts fail, the loser's health accounting is applied here and
// the later outcome is returned for the caller's taxonomy.
func (r *Router) doHedged(ctx context.Context, b int, rest []int, id string, p core.Params) (serve.Response, error, int, int) {
	// Only interactive traffic hedges. A hedge buys tail latency with
	// duplicate work, which batch traffic by definition does not want —
	// and a backup racing a cold run on a sibling would execute the same
	// grid point twice, breaking the sweep path's exactly-once-
	// cluster-wide property. Batch still gets the failover chain and
	// scoreboard demotion.
	hb, delay := -1, time.Duration(0)
	if !r.cfg.DisableHedge && admit.ClassFrom(ctx) == admit.Interactive {
		for _, c := range rest {
			if c != b {
				if d, ok := r.sb.hedgeDelay(b, c); ok {
					hb, delay = c, d
				}
				break
			}
		}
	}

	pch, pcancel := r.launch(ctx, b, id, p, false)
	defer pcancel()
	if hb < 0 {
		// No candidate or no trusted budget: plain bounded attempt.
		timer := time.NewTimer(r.cfg.Timeout)
		defer timer.Stop()
		select {
		case out := <-pch:
			return out.resp, out.err, b, -1
		case <-ctx.Done():
			return serve.Response{}, ctx.Err(), b, -1
		case <-timer.C:
			return serve.Response{}, fmt.Errorf("%w after %v on %s", errAttemptTimeout, r.cfg.Timeout, r.backends[b].Name()), b, -1
		}
	}

	overall := time.NewTimer(r.cfg.Timeout)
	defer overall.Stop()
	hedgeTimer := time.NewTimer(delay)
	defer hedgeTimer.Stop()

	var (
		hch      <-chan outcome
		hcancel  context.CancelFunc
		hedged   = -1   // backup index once launched
		pFailed  bool   // primary failed while the backup was still pending (accounted here)
		inFlight = true // primary still pending
	)
	defer func() {
		if hcancel != nil {
			hcancel()
		}
	}()
	for {
		select {
		case out := <-pch:
			pch = nil
			inFlight = false
			switch v := classify(out.err); v {
			case verdictOK, verdictCtx, verdictReturn:
				// First usable answer wins; the deferred cancel abandons a
				// straggling backup.
				return out.resp, out.err, b, hedged
			default:
				if hch == nil {
					// Failed with no backup pending (either none fired, or
					// the backup already failed and was accounted): the
					// caller's taxonomy owns this outcome.
					return out.resp, out.err, b, hedged
				}
				// The backup is in flight and now decides the request; the
				// primary's failure is accounted here so it still counts
				// toward ejection.
				if v == verdictFailure {
					r.noteFailure(b)
				}
				pFailed = true
			}
		case out := <-hch:
			hch = nil
			switch v := classify(out.err); v {
			case verdictOK, verdictReturn:
				r.hedgeWins.Add(1)
				r.sb.scores[b].hedgeWins.Add(1)
				return out.resp, out.err, hb, hedged
			case verdictCtx:
				// The backup observed the caller's cancellation; nothing
				// to account and nothing left to win.
				return out.resp, out.err, hb, hedged
			default:
				if pFailed {
					// Both legs failed; the backup's outcome is the later
					// word — hand it to the caller's taxonomy.
					return out.resp, out.err, hb, hedged
				}
				// The backup failed first; the primary still owns the
				// request, so account the backup here and keep waiting.
				if v == verdictFailure {
					r.noteFailure(hb)
				}
			}
		case <-hedgeTimer.C:
			if hch != nil || hedged >= 0 || !inFlight {
				continue
			}
			if !r.admit(hb) {
				// The backup target is ejected and not probeable: the
				// primary stays on its own, still bounded by the overall
				// timer.
				continue
			}
			r.hedges.Add(1)
			r.sb.scores[b].hedges.Add(1)
			hedged = hb
			hch, hcancel = r.launch(ctx, hb, id, p, true)
		case <-ctx.Done():
			return serve.Response{}, ctx.Err(), b, hedged
		case <-overall.C:
			// Attribute the timeout to whichever leg is still pending: the
			// primary normally, the backup when the primary already failed
			// and was accounted above (charging b twice for one request
			// would double-count toward ejection).
			from := b
			if pFailed {
				from = hb
			}
			return serve.Response{}, fmt.Errorf("%w after %v on %s", errAttemptTimeout, r.cfg.Timeout, r.backends[from].Name()), from, hedged
		}
	}
}

// admit reports whether backend b may take a request now. Ejected
// backends stay dark until ProbeAfter has elapsed, then one Check probe
// decides: success re-admits, failure re-arms the probe timer.
func (r *Router) admit(b int) bool {
	st := &r.state[b]
	st.mu.Lock()
	if !st.ejected {
		st.requests++
		st.mu.Unlock()
		return true
	}
	now := r.cfg.now()
	if now.Before(st.nextProbe) {
		st.mu.Unlock()
		return false
	}
	// Re-arm before probing so concurrent callers don't stampede the
	// sick backend with probes.
	st.nextProbe = now.Add(r.cfg.ProbeAfter)
	st.mu.Unlock()

	if err := r.backends[b].Check(); err != nil {
		return false
	}
	st.mu.Lock()
	st.ejected = false
	st.consecFails = 0
	st.requests++
	st.mu.Unlock()
	r.events.Record(obs.EventReadmit,
		map[string]string{"backend": r.backends[b].Name()}, nil)
	return true
}

func (r *Router) noteSuccess(b int) {
	st := &r.state[b]
	st.mu.Lock()
	st.consecFails = 0
	st.mu.Unlock()
}

func (r *Router) noteFailure(b int) {
	st := &r.state[b]
	st.mu.Lock()
	st.failures++
	st.consecFails++
	ejectedNow := false
	if !st.ejected && st.consecFails >= r.cfg.FailThreshold {
		st.ejected = true
		st.ejections++
		st.nextProbe = r.cfg.now().Add(r.cfg.ProbeAfter)
		ejectedNow = true
	}
	fails := st.consecFails
	st.mu.Unlock()
	if ejectedNow {
		r.events.Record(obs.EventEjection,
			map[string]string{"backend": r.backends[b].Name()},
			map[string]float64{"consecutive_failures": float64(fails)})
	}
}

// BackendStatus is one backend's health and scoreboard row in Metrics.
type BackendStatus struct {
	Name      string `json:"name"`
	Ejected   bool   `json:"ejected"`
	Requests  int64  `json:"requests"`
	Failures  int64  `json:"failures"`
	Ejections int64  `json:"ejections"`
	// LatencyEWMAMS is the scoreboard's latency estimate; Inflight the
	// attempts currently outstanding against the replica.
	LatencyEWMAMS float64 `json:"latency_ewma_ms"`
	Inflight      int64   `json:"inflight"`
	// Hedges counts backups fired because this replica's primary attempt
	// ran long; HedgeWins those backups that answered first.
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
}

// Metrics is a point-in-time router snapshot.
type Metrics struct {
	// Backends is the replica count; VNodes the ring points per replica.
	Backends int `json:"backends"`
	VNodes   int `json:"vnodes"`
	// Requests counts routed requests; Failovers attempts that moved past
	// the owner; Exhausted requests that failed on every candidate.
	Requests  int64 `json:"requests"`
	Failovers int64 `json:"failovers"`
	Exhausted int64 `json:"exhausted"`
	// Hedges counts backup requests fired; HedgeWins those whose answer
	// beat the primary attempt. Accounted separately from Requests and
	// Failovers: a hedge is an extra backend attempt, not an extra
	// client request, so the engines' conservation law still balances.
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	// Health is per-backend status, in backend order.
	Health []BackendStatus `json:"health"`
}

// Metrics returns current counters and per-backend health.
func (r *Router) Metrics() Metrics {
	m := Metrics{
		Backends:  len(r.backends),
		VNodes:    r.cfg.VNodes,
		Requests:  r.requests.Load(),
		Failovers: r.failovers.Load(),
		Exhausted: r.exhausted.Load(),
		Hedges:    r.hedges.Load(),
		HedgeWins: r.hedgeWins.Load(),
	}
	for i := range r.backends {
		st := &r.state[i]
		st.mu.Lock()
		row := BackendStatus{
			Name:      r.backends[i].Name(),
			Ejected:   st.ejected,
			Requests:  st.requests,
			Failures:  st.failures,
			Ejections: st.ejections,
		}
		st.mu.Unlock()
		mean, _, _ := r.sb.snapshot(i)
		sc := &r.sb.scores[i]
		row.LatencyEWMAMS = mean * 1e3
		row.Inflight = sc.inflight.Load()
		row.Hedges = sc.hedges.Load()
		row.HedgeWins = sc.hedgeWins.Load()
		m.Health = append(m.Health, row)
	}
	return m
}
