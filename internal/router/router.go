// Package router turns the single-daemon serving stack into a shardable
// service: a consistent-hash request router fronting N serve backends —
// in-process serve.Engine shards and/or remote arch21d replicas over HTTP.
// Placement is replica-aware: the engine cache key for an (experiment,
// assignment) pair hashes to a position on an internal/cluster consistent
// ring, so every request for the same memoized entry lands on the same
// replica (each replica's tier-1 cache stays hot for exactly its key
// range, and a sweep's grid points execute exactly once cluster-wide).
// Per-backend health accounting ejects a replica after consecutive
// failures and lazily re-admits it after a successful probe; requests to
// an unhealthy or failing owner fail over — bounded — to the next
// distinct ring positions, so one wedged replica degrades capacity
// instead of availability. The router satisfies sweep.Server, so POST
// /sweep fans out through it unchanged, and internal/load measures it
// like any other target.
package router

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// ErrNoBackends is returned when every candidate replica for a key is
// ejected or failing.
var ErrNoBackends = errors.New("router: no healthy backend")

// errAttemptTimeout marks one attempt abandoned because the backend did
// not answer within Config.Timeout (a wedged replica must not stall the
// caller — or an entire sweep).
var errAttemptTimeout = errors.New("router: attempt timed out")

// DefaultTimeout is the default per-attempt bound, matching arch21d's
// write timeout for slow cold runs. HTTPBackend's transport deadline
// sits above it so the router — which knows how to fail over and eject —
// is always the layer that classifies slowness, not the HTTP client.
const DefaultTimeout = 5 * time.Minute

// Config parameterizes a Router.
type Config struct {
	// VNodes is the ring points per backend (default 64).
	VNodes int
	// Retries bounds failover attempts after the first (default: one per
	// remaining backend, i.e. len(backends)-1).
	Retries int
	// Timeout bounds one attempt's wall time (default 5m, matching the
	// daemon's write timeout for slow cold runs — set it above the
	// slowest legitimate cold execution, because an expiry is treated as
	// a replica failure: the router abandons the attempt, re-executes on
	// the successor, and counts it toward ejection; the abandoned call's
	// goroutine drains in the background when the backend eventually
	// answers).
	Timeout time.Duration
	// FailThreshold is the consecutive-failure count that ejects a
	// backend (default 3).
	FailThreshold int
	// ProbeAfter is how long an ejected backend waits before the next
	// request to it triggers a health probe for re-admission (default 1s).
	ProbeAfter time.Duration
	// now is the clock; replaceable in tests.
	now func() time.Time
}

func (c *Config) setDefaults() {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// backendState is one backend's health accounting, guarded by its own
// mutex (health bookkeeping must not serialize request fan-out).
type backendState struct {
	mu          sync.Mutex
	consecFails int
	ejected     bool
	nextProbe   time.Time

	requests  int64
	failures  int64
	ejections int64
}

// Router routes requests to their owning replica by consistent hash.
type Router struct {
	cfg      Config
	backends []Backend
	ring     *cluster.ConsistentHash
	state    []backendState

	// Request-path counters are atomics: a tier-1 hit on an in-process
	// backend is sub-microsecond, so a shared mutex here would serialize
	// exactly the traffic the router exists to spread.
	requests  atomic.Int64
	failovers atomic.Int64
	exhausted atomic.Int64

	// events records ejections, re-admissions, and control fan-outs.
	events *obs.Events

	obsOnce sync.Once
	obsReg  *obs.Registry
}

// New builds a router over the given backends. At least one is required.
func New(backends []Backend, cfg Config) (*Router, error) {
	if len(backends) == 0 {
		return nil, errors.New("router: need at least one backend")
	}
	cfg.setDefaults()
	if cfg.Retries <= 0 {
		cfg.Retries = len(backends) - 1
	}
	return &Router{
		cfg:      cfg,
		backends: backends,
		ring:     cluster.NewConsistentHash(len(backends), cfg.VNodes),
		state:    make([]backendState, len(backends)),
		events:   obs.NewEvents(0),
	}, nil
}

// Events returns the front-end's control-plane event ring (never nil).
func (r *Router) Events() *obs.Events { return r.events }

// RouteKey derives the placement key for one (experiment, assignment)
// pair: the engine's cache key when the ID is registered (so placement
// agrees with memoization — explicit-default assignments route with the
// bare-ID traffic), otherwise the ID plus sorted assignments. Placement
// must be derivable without asking a replica, so resolution failures
// fall back to the ad-hoc form and let the owning replica report the
// schema error.
func RouteKey(id string, p core.Params) string {
	if exp, ok := core.ByID(id); ok && len(p) > 0 {
		if resolved, err := exp.ResolveParams(p); err == nil {
			return exp.CacheKey(resolved)
		}
	}
	as := p.Assignments()
	if len(as) == 0 {
		return id
	}
	return id + "?" + strings.Join(as, "&")
}

// Owner returns the backend index that owns a routing key (ignoring
// health) — what placement tests and rebalancing math inspect.
func (r *Router) Owner(key string) int { return r.ring.Place(cluster.HashString(key)) }

// ServeWith routes one request to the replica owning its cache key,
// failing over along the ring on error, ejection, or timeout. The
// context's QoS envelope (class, deadline, cancellation) rides along to
// the backend — over HTTP it travels as the X-Arch21-Class and
// budget-decremented X-Arch21-Deadline-MS headers. A shed answered by a
// replica (429) is a client-visible QoS verdict, not a replica failure:
// no ejection, no failover. ServeWith satisfies sweep.Server, so sweeps
// fan out through the router unchanged.
func (r *Router) ServeWith(ctx context.Context, id string, p core.Params) (serve.Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r.requests.Add(1)

	key := RouteKey(id, p)
	chain := r.ring.PlaceK(cluster.HashString(key), 1+r.cfg.Retries)
	var lastErr error
	for attempt, b := range chain {
		if err := ctx.Err(); err != nil {
			// The caller is gone or out of budget: failing over would
			// re-spend a dead request's work on a healthy replica.
			return serve.Response{}, err
		}
		if !r.admit(b) {
			continue
		}
		if attempt > 0 {
			r.failovers.Add(1)
		}
		resp, err := r.do(ctx, b, id, p)
		if err == nil {
			r.noteSuccess(b)
			return resp, nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return serve.Response{}, err
		}
		// Client errors are the caller's fault, not the replica's: do not
		// eject, do not fail over (every replica shares the registry and
		// would reject identically). A deadline shed (429, or an
		// in-process ShedError with Deadline set) is in the same family:
		// the budget is no better on a successor.
		var shed *admit.ShedError
		if errors.As(err, &shed) && shed.Deadline {
			r.noteSuccess(b)
			return serve.Response{}, err
		}
		if errors.Is(err, serve.ErrUnknownExperiment) || errors.Is(err, serve.ErrBadParams) || isHTTPClientError(err) {
			r.noteSuccess(b)
			return serve.Response{}, err
		}
		// A queue-full shed (in-process ShedError, or a replica's 503) is
		// genuine pressure, so it does fail over — a sibling's queue may
		// have room — but it is a *deliberate QoS verdict from a live
		// replica*, not a fault: counting it toward ejection would turn
		// sustained overload into a cascade (shedding replicas ejected,
		// their keys dumped on the siblings, which then shed and get
		// ejected too, until nothing serves). Health accounting stays
		// untouched either way: not a failure, and not a success that
		// would mask a flapping replica's real errors.
		if errors.Is(err, admit.ErrShed) || isHTTPStatus(err, 503) {
			lastErr = err
			continue
		}
		r.noteFailure(b)
		lastErr = err
	}
	r.exhausted.Add(1)
	if lastErr == nil {
		return serve.Response{}, fmt.Errorf("%w for key %q (all ejected)", ErrNoBackends, key)
	}
	return serve.Response{}, fmt.Errorf("router: key %q failed on all %d candidates: %w", key, len(chain), lastErr)
}

// Serve routes a default-parameter interactive request.
func (r *Router) Serve(id string) (serve.Response, error) {
	return r.ServeWith(context.Background(), id, nil)
}

// do runs one attempt under the per-attempt timeout. A backend that
// neither answers nor errors within the window is treated as failed;
// the abandoned goroutine drains whenever the backend wakes up. The
// goroutine-per-attempt is the price of hang protection for synchronous
// backends; the timer is stopped eagerly so a fast hit does not leave a
// multi-minute timer live until GC.
func (r *Router) do(ctx context.Context, b int, id string, p core.Params) (serve.Response, error) {
	type outcome struct {
		resp serve.Response
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		resp, err := r.backends[b].Do(ctx, id, p)
		ch <- outcome{resp, err}
	}()
	timer := time.NewTimer(r.cfg.Timeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.resp, out.err
	case <-ctx.Done():
		return serve.Response{}, ctx.Err()
	case <-timer.C:
		return serve.Response{}, fmt.Errorf("%w after %v on %s", errAttemptTimeout, r.cfg.Timeout, r.backends[b].Name())
	}
}

// admit reports whether backend b may take a request now. Ejected
// backends stay dark until ProbeAfter has elapsed, then one Check probe
// decides: success re-admits, failure re-arms the probe timer.
func (r *Router) admit(b int) bool {
	st := &r.state[b]
	st.mu.Lock()
	if !st.ejected {
		st.requests++
		st.mu.Unlock()
		return true
	}
	now := r.cfg.now()
	if now.Before(st.nextProbe) {
		st.mu.Unlock()
		return false
	}
	// Re-arm before probing so concurrent callers don't stampede the
	// sick backend with probes.
	st.nextProbe = now.Add(r.cfg.ProbeAfter)
	st.mu.Unlock()

	if err := r.backends[b].Check(); err != nil {
		return false
	}
	st.mu.Lock()
	st.ejected = false
	st.consecFails = 0
	st.requests++
	st.mu.Unlock()
	r.events.Record(obs.EventReadmit,
		map[string]string{"backend": r.backends[b].Name()}, nil)
	return true
}

func (r *Router) noteSuccess(b int) {
	st := &r.state[b]
	st.mu.Lock()
	st.consecFails = 0
	st.mu.Unlock()
}

func (r *Router) noteFailure(b int) {
	st := &r.state[b]
	st.mu.Lock()
	st.failures++
	st.consecFails++
	ejectedNow := false
	if !st.ejected && st.consecFails >= r.cfg.FailThreshold {
		st.ejected = true
		st.ejections++
		st.nextProbe = r.cfg.now().Add(r.cfg.ProbeAfter)
		ejectedNow = true
	}
	fails := st.consecFails
	st.mu.Unlock()
	if ejectedNow {
		r.events.Record(obs.EventEjection,
			map[string]string{"backend": r.backends[b].Name()},
			map[string]float64{"consecutive_failures": float64(fails)})
	}
}

// BackendStatus is one backend's health row in Metrics.
type BackendStatus struct {
	Name      string `json:"name"`
	Ejected   bool   `json:"ejected"`
	Requests  int64  `json:"requests"`
	Failures  int64  `json:"failures"`
	Ejections int64  `json:"ejections"`
}

// Metrics is a point-in-time router snapshot.
type Metrics struct {
	// Backends is the replica count; VNodes the ring points per replica.
	Backends int `json:"backends"`
	VNodes   int `json:"vnodes"`
	// Requests counts routed requests; Failovers attempts that moved past
	// the owner; Exhausted requests that failed on every candidate.
	Requests  int64 `json:"requests"`
	Failovers int64 `json:"failovers"`
	Exhausted int64 `json:"exhausted"`
	// Health is per-backend status, in backend order.
	Health []BackendStatus `json:"health"`
}

// Metrics returns current counters and per-backend health.
func (r *Router) Metrics() Metrics {
	m := Metrics{
		Backends:  len(r.backends),
		VNodes:    r.cfg.VNodes,
		Requests:  r.requests.Load(),
		Failovers: r.failovers.Load(),
		Exhausted: r.exhausted.Load(),
	}
	for i := range r.backends {
		st := &r.state[i]
		st.mu.Lock()
		m.Health = append(m.Health, BackendStatus{
			Name:      r.backends[i].Name(),
			Ejected:   st.ejected,
			Requests:  st.requests,
			Failures:  st.failures,
			Ejections: st.ejections,
		})
		st.mu.Unlock()
	}
	return m
}
