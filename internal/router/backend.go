package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/serve"
)

// Backend is one serve replica the router can place requests on.
// Implementations must be safe for concurrent calls.
type Backend interface {
	// Do serves one (experiment, assignment) request under the caller's
	// QoS context (class, deadline, cancellation).
	Do(ctx context.Context, id string, p core.Params) (serve.Response, error)
	// Check probes liveness cheaply; nil means healthy. The router calls
	// it to decide re-admission of an ejected backend.
	Check() error
	// Name identifies the backend in metrics ("engine[2]",
	// "http://host:8021").
	Name() string
}

// BatchBackend is the optional multi-get capability the batched data
// plane routes through: serve many items against one replica in a
// single exchange. Outcomes come back in item order, one per item, and
// one item's failure never fails its siblings — transport-level
// failures (the whole exchange lost) are the returned error instead.
// Backends without it (test doubles, old replicas) are served through
// the classic per-request path.
type BatchBackend interface {
	DoBatch(ctx context.Context, items []serve.BatchItem) ([]serve.BatchOutcome, error)
}

// EngineBackend is an in-process serve.Engine shard.
type EngineBackend struct {
	eng  *serve.Engine
	name string
}

// NewEngineBackend wraps an engine. The caller keeps ownership (and must
// Close it).
func NewEngineBackend(eng *serve.Engine, name string) *EngineBackend {
	return &EngineBackend{eng: eng, name: name}
}

// Do implements Backend.
func (b *EngineBackend) Do(ctx context.Context, id string, p core.Params) (serve.Response, error) {
	return b.eng.ServeWith(ctx, id, p)
}

// DoBatch implements BatchBackend straight through the engine's
// multi-get surface.
func (b *EngineBackend) DoBatch(ctx context.Context, items []serve.BatchItem) ([]serve.BatchOutcome, error) {
	return b.eng.ServeEncodedBatch(ctx, items), nil
}

// Check implements Backend; an in-process engine is alive by definition.
func (b *EngineBackend) Check() error { return nil }

// Name implements Backend.
func (b *EngineBackend) Name() string { return b.name }

// Engine exposes the wrapped engine (tests inspect per-replica
// execution counts through it).
func (b *EngineBackend) Engine() *serve.Engine { return b.eng }

// Control implements Controller: apply the raw control body to the
// in-process engine and return the ack JSON.
func (b *EngineBackend) Control(_ context.Context, body []byte) ([]byte, error) {
	var req serve.ControlRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("router: %s: bad control body: %v", b.name, err)
	}
	ack, err := b.eng.ApplyControl(req)
	if err != nil {
		return nil, err
	}
	return json.Marshal(ack)
}

// statusError is an HTTP backend failure carrying the replica's status
// code — so the router can tell client errors (no failover: every
// replica would reject identically) from replica failures (fail over) —
// plus the replica's Retry-After hint when it sent one, so the routing
// front-end can re-emit the header instead of swallowing the backoff
// signal DESIGN.md §8 promises.
type statusError struct {
	status     int
	msg        string
	retryAfter string
}

func (e *statusError) Error() string { return fmt.Sprintf("HTTP %d: %s", e.status, e.msg) }

// isHTTPClientError reports whether err is a remote replica's 4xx.
func isHTTPClientError(err error) bool {
	var se *statusError
	return errors.As(err, &se) && se.status >= 400 && se.status < 500
}

// isHTTPStatus reports whether err is a remote replica's response with
// exactly the given status.
func isHTTPStatus(err error, status int) bool {
	var se *statusError
	return errors.As(err, &se) && se.status == status
}

// HTTPBackend is a remote arch21d replica reached over its HTTP API
// (GET /run/{id} to serve, GET /healthz to probe).
type HTTPBackend struct {
	base   string
	client *http.Client
}

// NewHTTPBackend points at an arch21d base address ("localhost:8021",
// ":8021", or a full http:// URL).
func NewHTTPBackend(addr string) *HTTPBackend {
	base := strings.TrimSuffix(addr, "/")
	if strings.HasPrefix(base, ":") {
		base = "localhost" + base
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &HTTPBackend{
		base: base,
		client: &http.Client{
			// Strictly above the router's per-attempt timeout: the router
			// must be the layer that abandons a slow attempt (it knows how
			// to fail over and eject); this deadline only reclaims the
			// abandoned goroutine's connection eventually.
			Timeout: DefaultTimeout + time.Minute,
			Transport: &http.Transport{
				// One backend == one host, so the per-host cap is the real
				// limit; size both to the router's worst-case fan-out (a
				// hedge per in-flight request) so bursts never fall back to
				// per-request dials. Reuse only works if every response body
				// is drained — see httpapi.DrainClose.
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
}

// hopBudget is the slice of a request's remaining deadline the front-end
// keeps for itself when forwarding: network transfer plus envelope
// decode. The replica sees the decremented budget, so the whole chain —
// front-end admission, replica admission, replica execution — fits the
// caller's original deadline instead of each hop granting itself a fresh
// one.
const hopBudget = 5 * time.Millisecond

// Do implements Backend: GET /run/{id}?format=bin&param=... against the
// replica. The binary transport carries the memoized codec bytes as the
// body — served zero-copy from the replica's slab, decoded once here —
// so a proxied result is the replica's full Result (tables and figures
// included), not the headline slice the old JSON envelope kept. The
// context's QoS envelope travels as headers via httpapi.Forward: class,
// tenant, hedge marker, and the remaining deadline decremented by
// hopBudget — so the whole chain fits the caller's original budget
// instead of each hop granting itself a fresh one.
func (b *HTTPBackend) Do(ctx context.Context, id string, p core.Params) (serve.Response, error) {
	t0 := time.Now()
	// The URL is assembled into a pooled buffer: url.Values + Encode
	// costs a map plus several slices per request, and this is the
	// routed hot loop.
	ub := httpapi.GetBuffer()
	ubuf := append((*ub)[:0], b.base...)
	ubuf = append(ubuf, "/run/"...)
	ubuf = append(ubuf, url.PathEscape(id)...)
	ubuf = append(ubuf, "?format=bin"...)
	for _, a := range p.Assignments() {
		ubuf = append(ubuf, "&param="...)
		ubuf = append(ubuf, url.QueryEscape(a)...)
	}
	u := string(ubuf)
	*ub = ubuf
	httpapi.PutBuffer(ub)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return serve.Response{}, fmt.Errorf("router: %s: %v", b.base, err)
	}
	if err := httpapi.Forward(req, ctx, hopBudget); err != nil {
		// The budget cannot survive the hop: a deadline shed, decided at
		// the front-end instead of burning the wire.
		return serve.Response{}, err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return serve.Response{}, ctxErr
		}
		return serve.Response{}, fmt.Errorf("router: %s: %w", b.base, err)
	}
	defer httpapi.DrainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return serve.Response{}, fmt.Errorf("router: %s /run/%s: %w", b.base, id,
			&statusError{status: resp.StatusCode, msg: strings.TrimSpace(string(body)),
				retryAfter: resp.Header.Get("Retry-After")})
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return serve.Response{}, fmt.Errorf("router: %s: reading body: %v", b.base, err)
	}
	res, err := core.DecodeResult(raw)
	if err != nil {
		return serve.Response{}, fmt.Errorf("router: %s: bad result payload: %v", b.base, err)
	}
	params, err := core.ParseParams(resp.Header.Values(httpapi.HeaderParam))
	if err != nil {
		return serve.Response{}, fmt.Errorf("router: %s: bad param header: %v", b.base, err)
	}
	class, _ := admit.ParseClass(resp.Header.Get(admit.HeaderClass)) // absent/unknown defaults to interactive
	return serve.Response{
		ID:       id,
		Params:   params,
		Key:      resp.Header.Get(httpapi.HeaderKey),
		Class:    class,
		CacheHit: resp.Header.Get(httpapi.HeaderCacheHit) == "1",
		Shared:   resp.Header.Get(httpapi.HeaderShared) == "1",
		Result:   res,
		Latency:  time.Since(t0),
	}, nil
}

// DoBatch implements BatchBackend over the wire: POST /v1/batch with
// the varint request frame (encoded into a pooled buffer) and decode
// the per-entry outcome frame. The response body is read into a fresh
// buffer — never pooled — because every OK entry's payload aliases it
// for the rest of the outcomes' lifetime. Entry-level errors surface as
// statusError values so the router's verdict taxonomy (client error vs
// shed vs replica failure) applies per entry exactly as it would to a
// single routed request.
func (b *HTTPBackend) DoBatch(ctx context.Context, items []serve.BatchItem) ([]serve.BatchOutcome, error) {
	t0 := time.Now()
	entries := make([]httpapi.BatchEntry, len(items))
	for i, it := range items {
		entries[i] = httpapi.BatchEntry{ID: it.ID, Class: it.Class, Params: it.Params.Assignments()}
	}
	fb := httpapi.GetBuffer()
	frame := httpapi.AppendBatchRequest((*fb)[:0], entries)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/v1/batch",
		bytes.NewReader(frame))
	if err != nil {
		*fb = frame
		httpapi.PutBuffer(fb)
		return nil, fmt.Errorf("router: %s: %v", b.base, err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if err := httpapi.Forward(req, ctx, hopBudget); err != nil {
		*fb = frame
		httpapi.PutBuffer(fb)
		return nil, err
	}
	resp, err := b.client.Do(req)
	// Do returns only after the request body has been fully consumed (or
	// abandoned), so the frame buffer is safe to recycle here.
	*fb = frame
	httpapi.PutBuffer(fb)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("router: %s: %w", b.base, err)
	}
	defer httpapi.DrainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("router: %s /batch: %w", b.base,
			&statusError{status: resp.StatusCode, msg: strings.TrimSpace(string(body)),
				retryAfter: resp.Header.Get("Retry-After")})
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("router: %s: reading batch body: %v", b.base, err)
	}
	results, err := httpapi.DecodeBatchResponse(raw)
	if err != nil {
		return nil, fmt.Errorf("router: %s: bad batch frame: %v", b.base, err)
	}
	if len(results) != len(items) {
		return nil, fmt.Errorf("router: %s: batch returned %d outcomes for %d items",
			b.base, len(results), len(items))
	}
	elapsed := time.Since(t0)
	out := make([]serve.BatchOutcome, len(items))
	for i, res := range results {
		if !res.OK {
			out[i].Err = fmt.Errorf("router: %s /batch entry %s: %w", b.base, items[i].ID,
				&statusError{status: res.Status, msg: res.Msg})
			continue
		}
		out[i].RawResponse = serve.RawResponse{
			ID:       items[i].ID,
			Params:   items[i].Params,
			Key:      res.Key,
			Class:    items[i].Class,
			Raw:      res.Payload,
			CacheHit: res.CacheHit,
			Shared:   res.Shared,
			Latency:  elapsed,
		}
	}
	return out, nil
}

// Control implements Controller: POST the raw body to the replica's
// /control and return its ack body.
func (b *HTTPBackend) Control(ctx context.Context, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/control",
		bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("router: %s: %v", b.base, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("router: %s: %w", b.base, err)
	}
	defer httpapi.DrainClose(resp.Body)
	out, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("router: %s /control: %w", b.base,
			&statusError{status: resp.StatusCode, msg: strings.TrimSpace(string(out))})
	}
	return out, nil
}

// Check implements Backend: GET /healthz with a short deadline.
func (b *HTTPBackend) Check() error {
	req, err := http.NewRequest(http.MethodGet, b.base+"/healthz", nil)
	if err != nil {
		return err
	}
	cl := &http.Client{Timeout: 2 * time.Second, Transport: b.client.Transport}
	resp, err := cl.Do(req)
	if err != nil {
		return err
	}
	defer httpapi.DrainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("router: %s healthz: HTTP %d", b.base, resp.StatusCode)
	}
	return nil
}

// Name implements Backend.
func (b *HTTPBackend) Name() string { return b.base }
