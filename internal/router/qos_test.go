package router

// QoS propagation tests: the class and the budget-decremented deadline
// must cross the wire as headers, and deadline sheds must not burn
// failover attempts.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/serve"
)

// TestHTTPBackendPropagatesClassAndDeadline pins the header contract: an
// HTTPBackend forwards the context's class verbatim and its remaining
// deadline decremented by the hop budget, so a replica works against the
// caller's residual budget, not a fresh one.
func TestHTTPBackendPropagatesClassAndDeadline(t *testing.T) {
	var gotClass atomic.Value
	var gotDeadlineMS atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotClass.Store(r.Header.Get(admit.HeaderClass))
		gotDeadlineMS.Store(r.Header.Get(admit.HeaderDeadlineMS))
		w.Header().Set(admit.HeaderClass, "batch")
		w.Header().Set(httpapi.HeaderCacheHit, "1")
		_, _ = w.Write(fakeResult(r.PathValue("id")).Encode())
	}))
	defer srv.Close()

	b := NewHTTPBackend(srv.URL)
	budget := 500 * time.Millisecond
	ctx, cancel := context.WithTimeout(
		admit.WithClass(context.Background(), admit.Batch), budget)
	defer cancel()
	resp, err := b.Do(ctx, "E1", nil)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Class != admit.Batch {
		t.Fatalf("response class = %v, want batch", resp.Class)
	}
	if got := gotClass.Load(); got != "batch" {
		t.Fatalf("forwarded class header = %q, want batch", got)
	}
	h, _ := gotDeadlineMS.Load().(string)
	if h == "" {
		t.Fatal("no deadline header forwarded")
	}
	ms, err := strconv.ParseFloat(h, 64)
	if err != nil {
		t.Fatalf("forwarded deadline %q unparseable: %v", h, err)
	}
	// The forwarded budget must be less than the original (decremented by
	// the hop) but still most of it.
	if ms >= budget.Seconds()*1e3 || ms < budget.Seconds()*1e3/2 {
		t.Fatalf("forwarded budget %vms not a decremented share of %v", ms, budget)
	}

	// A budget that cannot survive the hop is shed at the front-end
	// without a wire round trip.
	tiny, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	time.Sleep(2 * time.Millisecond) // ensure it is already unmeetable
	_, err = b.Do(tiny, "E1", nil)
	if err == nil {
		t.Fatal("hop-doomed budget was forwarded instead of shed")
	}
	var shed *admit.ShedError
	if !errors.As(err, &shed) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hop-doomed Do = %v, want ShedError or DeadlineExceeded", err)
	}
}

// A deadline shed from an in-process backend is final: the router does
// not spend failover attempts (the budget is no better on a successor)
// and does not eject the replica that reported it.
func TestRouterDeadlineShedDoesNotFailOver(t *testing.T) {
	var calls [2]atomic.Int64
	mk := func(i int) Backend {
		return backendFunc{
			do: func(ctx context.Context, id string, p core.Params) (serve.Response, error) {
				calls[i].Add(1)
				return serve.Response{}, &admit.ShedError{Class: admit.ClassFrom(ctx), Deadline: true, RetryAfter: time.Second}
			},
			name: "shedding",
		}
	}
	r, err := New([]Backend{mk(0), mk(1)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.ServeWith(context.Background(), "E1", nil)
	if !errors.Is(err, admit.ErrShed) {
		t.Fatalf("ServeWith = %v, want the shed error", err)
	}
	if total := calls[0].Load() + calls[1].Load(); total != 1 {
		t.Fatalf("deadline shed burned %d attempts, want 1", total)
	}
	m := r.Metrics()
	if m.Failovers != 0 {
		t.Fatalf("deadline shed triggered %d failovers", m.Failovers)
	}
	for _, h := range m.Health {
		if h.Ejected || h.Failures != 0 {
			t.Fatalf("deadline shed counted as replica failure: %+v", h)
		}
	}
}

// backendFunc adapts closures to the Backend interface.
type backendFunc struct {
	do   func(ctx context.Context, id string, p core.Params) (serve.Response, error)
	name string
}

func (b backendFunc) Do(ctx context.Context, id string, p core.Params) (serve.Response, error) {
	return b.do(ctx, id, p)
}
func (b backendFunc) Check() error { return nil }
func (b backendFunc) Name() string { return b.name }

// A queue-full shed (503-family) fails over — a sibling's queue may have
// room — but never counts toward ejection: a replica shedding by design
// is alive, and ejecting it would dump its keys on the siblings and
// cascade the overload into a blackout.
func TestRouterQueueFullShedFailsOverWithoutEjection(t *testing.T) {
	var calls [2]atomic.Int64
	shedding := func(i int) Backend {
		return backendFunc{
			do: func(ctx context.Context, id string, p core.Params) (serve.Response, error) {
				calls[i].Add(1)
				return serve.Response{}, &admit.ShedError{Class: admit.ClassFrom(ctx), RetryAfter: time.Second}
			},
			name: "overloaded",
		}
	}
	r, err := New([]Backend{shedding(0), shedding(1)}, Config{FailThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Hammer well past FailThreshold: every attempt sheds, the request
	// fails over once, and NOBODY gets ejected.
	for i := 0; i < 10; i++ {
		_, err := r.ServeWith(context.Background(), "E1", nil)
		if !errors.Is(err, admit.ErrShed) {
			t.Fatalf("ServeWith = %v, want wrapped shed", err)
		}
	}
	m := r.Metrics()
	if m.Failovers == 0 {
		t.Fatal("queue-full sheds should fail over to the sibling")
	}
	for _, h := range m.Health {
		if h.Ejected || h.Failures != 0 || h.Ejections != 0 {
			t.Fatalf("queue-full sheds drove health accounting: %+v", h)
		}
	}
}

// The routing front-end's HTTP face: QoS headers parse into the routed
// context, the routed envelope carries the class, bad headers 400,
// non-JSON formats are refused, and a replica's Retry-After survives the
// front-end hop.
func TestRouterHandlerQoSFace(t *testing.T) {
	eng := newTestEngine(t)
	r, err := New([]Backend{NewEngineBackend(eng, "engine[0]")}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(r.Handler())
	defer front.Close()

	get := func(path string, hdr map[string]string) (*http.Response, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, front.URL+path, nil)
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := front.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		_, _ = io.Copy(&sb, resp.Body)
		return resp, sb.String()
	}

	if resp, body := get("/run/E1", map[string]string{admit.HeaderClass: "batch"}); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, `"class": "batch"`) {
		t.Fatalf("routed batch request: status=%d body=%s", resp.StatusCode, body)
	}
	if resp, _ := get("/run/E1", map[string]string{admit.HeaderClass: "bulk"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad class header through front-end: %d, want 400", resp.StatusCode)
	}
	if resp, _ := get("/run/E1", map[string]string{admit.HeaderDeadlineMS: "-5"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad deadline header through front-end: %d, want 400", resp.StatusCode)
	}
	if resp, _ := get("/run/E1?format=text", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("format=text through front-end: %d, want 400 with replica pointer", resp.StatusCode)
	}
	if resp, _ := get("/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("front-end healthz: %d", resp.StatusCode)
	}
	if resp, body := get("/experiments", nil); resp.StatusCode != http.StatusOK || !strings.Contains(body, `"id": "E1"`) {
		t.Fatalf("front-end experiments: %d", resp.StatusCode)
	}
	if resp, body := get("/stats", nil); resp.StatusCode != http.StatusOK || !strings.Contains(body, `"backends": 1`) {
		t.Fatalf("front-end stats: %d body=%s", resp.StatusCode, body)
	}
}

// A remote replica's shed (503 + Retry-After) keeps its backoff hint
// through the front-end: the statusError carries the header and the
// handler re-emits it.
func TestRouterHandlerForwardsReplicaRetryAfter(t *testing.T) {
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Retry-After", "7")
		serve.WriteJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "shed"})
	}))
	defer replica.Close()
	r, err := New([]Backend{NewHTTPBackend(replica.URL)}, Config{Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(r.Handler())
	defer front.Close()

	resp, err := front.Client().Get(front.URL + "/run/E1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("front-end status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After through front-end = %q, want 7", got)
	}
	// And the shedding replica was not marked failed into ejection-land
	// by its deliberate 503s... it does fail over (one retry against the
	// same single backend chain yields one attempt), but health failures
	// stay zero.
	for _, h := range r.Metrics().Health {
		if h.Failures != 0 || h.Ejected {
			t.Fatalf("replica 503 shed counted as failure: %+v", h)
		}
	}
}

// EngineBackend accessors and liveness trivia.
func TestEngineBackendAccessors(t *testing.T) {
	eng := newTestEngine(t)
	b := NewEngineBackend(eng, "engine[7]")
	if b.Check() != nil {
		t.Fatal("in-process engine should always be healthy")
	}
	if b.Engine() != eng {
		t.Fatal("Engine() should expose the wrapped engine")
	}
	if b.Name() != "engine[7]" {
		t.Fatalf("Name = %q", b.Name())
	}
}

// Pool.Workers and address normalization forms.
func TestHTTPBackendAddressForms(t *testing.T) {
	for addr, want := range map[string]string{
		":8022":                  "http://localhost:8022",
		"host:8022":              "http://host:8022",
		"http://host:8022/":      "http://host:8022",
		"https://example.com/x/": "https://example.com/x",
	} {
		if got := NewHTTPBackend(addr).Name(); got != want {
			t.Fatalf("NewHTTPBackend(%q).Name() = %q, want %q", addr, got, want)
		}
	}
}
