package router

// The routing front-end's HTTP face. arch21d -peers mounts this in place
// of a local engine's handler: /run/{id} routes each request to the
// replica owning its cache key, POST /batch ships a varint-framed
// multi-request body through the batched data plane (one exchange per
// owning replica), /stats reports router counters and per-backend
// health, /experiments and /healthz serve locally (the registry is
// compiled in; the front-end's liveness is its own). POST /sweep is
// mounted separately via sweep.Handler(router), which fans grid points
// out through the same routing path. Every route is also
// reachable under the versioned /v1 prefix (httpapi.Mount), and every
// error is the shared httpapi JSON envelope.
//
// The routed /run envelope is JSON-only and carries headline + findings
// but not the rendered report (a remote replica's envelope is not
// re-fetched in full); ?format=text|csv is rejected with a pointer at
// the replicas, which serve every format.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/serve"
)

// routedEnvelope is the front-end's /run/{id} JSON response: the
// replica's outcome plus which backend served it.
type routedEnvelope struct {
	ID        string      `json:"id"`
	Params    core.Params `json:"params,omitempty"`
	Key       string      `json:"key,omitempty"`
	Class     string      `json:"class"`
	CacheHit  bool        `json:"cache_hit"`
	Shared    bool        `json:"shared"`
	LatencyMS float64     `json:"latency_ms"`
	Headline  *float64    `json:"headline,omitempty"`
	Findings  []string    `json:"findings,omitempty"`
}

// Handler returns the routing front-end's HTTP API.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	httpapi.MountFunc(mux, "GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		httpapi.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	httpapi.MountFunc(mux, "GET /experiments", func(w http.ResponseWriter, req *http.Request) {
		httpapi.WriteJSON(w, http.StatusOK, serve.ExperimentInfos())
	})
	httpapi.MountFunc(mux, "GET /run/{id}", func(w http.ResponseWriter, req *http.Request) {
		if f := req.URL.Query().Get("format"); f != "" && f != "json" {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest,
				"the routing front-end serves JSON envelopes only; request format="+f+" from a replica directly")
			return
		}
		id := req.PathValue("id")
		params, err := core.ParseParams(req.URL.Query()["param"])
		if err != nil {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
			return
		}
		// The front-end speaks the same QoS header contract as a replica
		// (X-Arch21-Class, X-Arch21-Deadline-MS); HTTPBackend re-emits the
		// envelope with the budget decremented per hop.
		ctx, cancel, err := httpapi.RequestContext(req)
		if err != nil {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
			return
		}
		defer cancel()
		// The batched data plane serves this: a coalesce-eligible request
		// joins its owner's flush queue (one exchange per frame), anything
		// else takes the classic hedged chain — either way the payload
		// arrives encoded, decoded once here at the edge.
		rr, err := r.ServeEncoded(ctx, id, params)
		if err != nil {
			writeRoutedError(w, err)
			return
		}
		res, err := rr.Result()
		if err != nil {
			httpapi.WriteError(w, http.StatusBadGateway, httpapi.CodeUpstream,
				"bad result payload: "+err.Error())
			return
		}
		httpapi.WriteJSON(w, http.StatusOK, routedEnvelope{
			ID:        rr.ID,
			Params:    rr.Params,
			Key:       rr.Key,
			Class:     rr.Class.String(),
			CacheHit:  rr.CacheHit,
			Shared:    rr.Shared,
			LatencyMS: rr.Latency.Seconds() * 1e3,
			Headline:  res.Headline,
			Findings:  res.Findings,
		})
	})
	// POST /batch: the front-end face of the multi-get plane. Entries
	// are regrouped by owning replica and shipped as one DoBatch
	// exchange per owner; per-entry failures ride inside the response
	// frame with the same status taxonomy the single-request route uses.
	httpapi.MountFunc(mux, "POST /batch", func(w http.ResponseWriter, req *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, httpapi.MaxBatchBytes))
		if err != nil {
			httpapi.WriteError(w, http.StatusRequestEntityTooLarge, httpapi.CodePayloadTooLarge,
				"batch body exceeds the cap or could not be read")
			return
		}
		entries, err := httpapi.DecodeBatchRequest(body)
		if err != nil {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
			return
		}
		ctx, cancel, err := httpapi.RequestContext(req)
		if err != nil {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
			return
		}
		defer cancel()
		results := make([]httpapi.BatchResult, len(entries))
		items := make([]serve.BatchItem, 0, len(entries))
		served := make([]int, 0, len(entries))
		for i, en := range entries {
			p, perr := core.ParseParams(en.Params)
			if perr != nil {
				results[i] = httpapi.BatchResult{Status: http.StatusBadRequest, Msg: perr.Error()}
				continue
			}
			items = append(items, serve.BatchItem{ID: en.ID, Params: p, Class: en.Class})
			served = append(served, i)
		}
		for j, o := range r.ServeEncodedBatch(ctx, items) {
			i := served[j]
			if o.Err != nil {
				results[i] = httpapi.BatchResult{Status: routedErrStatus(o.Err), Msg: o.Err.Error()}
				continue
			}
			rr := o.RawResponse
			results[i] = httpapi.BatchResult{OK: true, CacheHit: rr.CacheHit, Shared: rr.Shared,
				Key: rr.Key, Payload: rr.Raw}
		}
		buf := httpapi.GetBuffer()
		frame := httpapi.AppendBatchResponse((*buf)[:0], results)
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(frame)
		*buf = frame
		httpapi.PutBuffer(buf)
	})
	httpapi.MountFunc(mux, "GET /stats", func(w http.ResponseWriter, req *http.Request) {
		httpapi.WriteJSON(w, http.StatusOK, r.Metrics())
	})
	httpapi.Mount(mux, "GET /metrics", r.MetricsRegistry().Handler())
	httpapi.Mount(mux, "GET /events", r.Events().Handler())
	httpapi.MountFunc(mux, "POST /control", func(w http.ResponseWriter, req *http.Request) {
		body, err := io.ReadAll(io.LimitReader(req.Body, 1<<16))
		if err != nil {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
			return
		}
		// Validate the body shape locally before burning the cluster's
		// time: every replica parses the same contract.
		var creq serve.ControlRequest
		if err := json.Unmarshal(body, &creq); err != nil || creq.Empty() {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest,
				"bad control body (want JSON with batch_rate, slo_ms, and/or policy)")
			return
		}
		acks := r.Control(req.Context(), body)
		status := http.StatusOK
		for _, a := range acks {
			if !a.OK {
				// Partial application is visible in the rows; the status
				// flags that at least one replica did not retune.
				status = http.StatusMultiStatus
				break
			}
		}
		httpapi.WriteJSON(w, status, map[string]interface{}{"replicas": acks})
	})
	return mux
}

// writeRoutedError maps a routed serving error onto the wire: QoS sheds
// get their dedicated statuses, a replica's own HTTP verdict passes
// through (with its Retry-After hint re-emitted), exhaustion answers
// 503, everything else 502 — all in the shared envelope.
func writeRoutedError(w http.ResponseWriter, err error) {
	if httpapi.WriteQoSError(w, err) {
		return
	}
	status, code := http.StatusBadGateway, httpapi.CodeUpstream
	var se *statusError
	switch {
	case errors.Is(err, serve.ErrUnknownExperiment):
		status, code = http.StatusNotFound, httpapi.CodeNotFound
	case errors.Is(err, serve.ErrBadParams):
		status, code = http.StatusBadRequest, httpapi.CodeBadRequest
	case errors.As(err, &se):
		status, code = se.status, httpapi.CodeForStatus(se.status)
		// A replica's shed carried a backoff hint; re-emit it so the
		// client behind the front-end sees the same contract a replica
		// speaks directly.
		if se.retryAfter != "" {
			w.Header().Set("Retry-After", se.retryAfter)
		}
	case errors.Is(err, ErrNoBackends):
		status, code = http.StatusServiceUnavailable, httpapi.CodeNoBackends
	}
	httpapi.WriteError(w, status, code, err.Error())
}

// routedErrStatus is writeRoutedError's taxonomy flattened to a status
// code for a batch entry's outcome word.
func routedErrStatus(err error) int {
	var shed *admit.ShedError
	var se *statusError
	switch {
	case errors.As(err, &shed):
		if shed.Deadline {
			return http.StatusTooManyRequests
		}
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrUnknownExperiment):
		return http.StatusNotFound
	case errors.Is(err, serve.ErrBadParams):
		return http.StatusBadRequest
	case errors.As(err, &se):
		return se.status
	case errors.Is(err, ErrNoBackends):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadGateway
	}
}
