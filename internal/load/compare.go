package load

import (
	"fmt"
	"strings"
)

// latencyGateFloor (seconds) keeps the latency gate honest: when both
// sides of a p99 delta are sub-millisecond, the absolute difference is
// scheduler noise on shared CI runners, so the delta is reported but not
// gated. A regression that pushes p99 past the floor is gated normally.
const latencyGateFloor = 1e-3

// errorRateSlack is the absolute error-rate increase tolerated before the
// error_rate delta counts as a regression (fractional tolerance is
// meaningless when the baseline rate is 0).
const errorRateSlack = 0.01

// allocsSlack is the absolute allocs-per-request increase tolerated on
// top of the fractional tolerance. Near-zero baselines make a purely
// fractional gate hair-trigger (0.1 → 0.2 allocs/req is a 100% "rise"
// that means nothing), so a regression must clear both bars: more than
// tolerance fractionally AND more than allocsSlack absolute.
const allocsSlack = 2.0

// Delta is one metric's old-vs-new comparison.
type Delta struct {
	// Scenario and Metric identify the comparison.
	Scenario string `json:"scenario"`
	Metric   string `json:"metric"`
	// Old and New are the metric values (normalized for
	// "throughput_norm").
	Old float64 `json:"old"`
	New float64 `json:"new"`
	// Change is the signed fractional change from Old (0 when Old is 0).
	Change float64 `json:"change"`
	// Gated reports whether this metric can fail the comparison;
	// Regression whether it did.
	Gated      bool `json:"gated"`
	Regression bool `json:"regression"`
	// Note explains an ungated delta that would normally gate (e.g. a
	// core-count mismatch between the two machines).
	Note string `json:"note,omitempty"`
}

// Comparison is Compare's structured outcome: every metric delta, gated
// or informational, in scenario order.
type Comparison struct {
	// Tolerance is the fractional regression tolerance applied.
	Tolerance float64 `json:"tolerance"`
	// Deltas holds every compared metric.
	Deltas []Delta `json:"deltas"`
	// Skipped names scenarios excluded from comparison because one side
	// carries a different schema version — a migration window, not a
	// pass: callers must surface each entry as a warning so a baseline
	// that needs re-measuring is named, never silently vacated.
	Skipped []string `json:"skipped,omitempty"`
}

// Regressions returns the deltas that failed their gate.
func (c Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Regressed reports whether any gated metric regressed past tolerance.
func (c Comparison) Regressed() bool { return len(c.Regressions()) > 0 }

// change returns the signed fractional change from old (0 when old is 0,
// keeping the result JSON-encodable).
func change(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old
}

// Compare diffs new reports against old baselines scenario by scenario
// and returns structured deltas — the regression check CI's bench-smoke
// job runs. Gated metrics: throughput (normalized by each machine's
// calibration figure when both reports carry one) must not drop by more
// than tolerance; p99 must not rise by more than tolerance once past
// latencyGateFloor; error rate must not rise by more than errorRateSlack
// absolute; allocs per request must not rise past both tolerance and
// allocsSlack once the baseline records the figure (a ratchet — older
// baselines without it leave the metric informational). p50 and cache
// hit ratio are reported as informational deltas.
// Every old scenario must appear in new (a vanished scenario is an
// error). A scenario whose two reports disagree on schema version is
// skipped — recorded in Comparison.Skipped, not an error — so a schema
// bump does not hard-fail CI against the pre-bump baseline; the skip
// list names exactly which baselines need re-measuring.
func Compare(old, new []Report, tolerance float64) (Comparison, error) {
	if tolerance <= 0 || tolerance >= 1 {
		return Comparison{}, fmt.Errorf("load: tolerance must be in (0, 1), got %v", tolerance)
	}
	if len(old) == 0 {
		return Comparison{}, fmt.Errorf("load: no baseline reports to compare against")
	}
	byScenario := make(map[string]Report, len(new))
	for _, r := range new {
		byScenario[r.Scenario] = r
	}
	// Diff the scenario sets up front and name every missing scenario and
	// which side lacks it — "scenario missing" without the list forces the
	// operator to diff two JSON files by hand when a baseline and a run
	// drifted (e.g. a new catalog scenario measured but not yet baselined,
	// or vice versa).
	var missing []string
	for _, o := range old {
		if _, ok := byScenario[o.Scenario]; !ok {
			missing = append(missing, o.Scenario)
		}
	}
	if len(missing) > 0 {
		return Comparison{}, fmt.Errorf(
			"load: new reports are missing scenario(s) %s (present in the old/baseline side only)",
			strings.Join(missing, ", "))
	}
	cmp := Comparison{Tolerance: tolerance}
	for _, o := range old {
		n := byScenario[o.Scenario]
		if o.Schema != n.Schema {
			cmp.Skipped = append(cmp.Skipped, fmt.Sprintf(
				"%s: schema version mismatch (old %d, new %d) — re-measure the baseline at schema %d",
				o.Scenario, o.Schema, n.Schema, SchemaVersion))
			continue
		}

		// Throughput: normalized to each machine's calibration when both
		// sides carry one, so a slower CI runner is not a regression.
		// Calibration cancels per-core speed but not contention profile,
		// which shifts with core count — a scenario's scaling with cores
		// is nothing like the hash loop's — so the gate only engages
		// between reports measured at equal core counts (CI pins
		// GOMAXPROCS for exactly this reason).
		tMetric := "throughput_rps"
		oT, nT := o.Metrics.ThroughputRPS, n.Metrics.ThroughputRPS
		if o.CalibrationBPS > 0 && n.CalibrationBPS > 0 {
			tMetric = "throughput_norm"
			oT /= o.CalibrationBPS
			nT /= n.CalibrationBPS
		}
		tDelta := Delta{
			Scenario: o.Scenario, Metric: tMetric,
			Old: oT, New: nT, Change: change(oT, nT),
		}
		if o.Config.Cores == n.Config.Cores && o.Config.Cores > 0 {
			tDelta.Gated = true
			tDelta.Regression = nT < oT*(1-tolerance)
		} else {
			tDelta.Note = fmt.Sprintf(
				"not gated: core counts differ (old %d, new %d) — remeasure the baseline on comparable hardware",
				o.Config.Cores, n.Config.Cores)
		}
		cmp.Deltas = append(cmp.Deltas, tDelta)

		oP99, nP99 := o.Metrics.Latency.P99, n.Metrics.Latency.P99
		p99Gated := oP99 >= latencyGateFloor || nP99 >= latencyGateFloor
		cmp.Deltas = append(cmp.Deltas, Delta{
			Scenario: o.Scenario, Metric: "p99",
			Old: oP99, New: nP99, Change: change(oP99, nP99),
			Gated:      p99Gated,
			Regression: p99Gated && nP99 > oP99*(1+tolerance),
		})

		cmp.Deltas = append(cmp.Deltas, Delta{
			Scenario: o.Scenario, Metric: "p50",
			Old: o.Metrics.Latency.P50, New: n.Metrics.Latency.P50,
			Change: change(o.Metrics.Latency.P50, n.Metrics.Latency.P50),
		})

		oE, nE := o.Metrics.ErrorRate, n.Metrics.ErrorRate
		cmp.Deltas = append(cmp.Deltas, Delta{
			Scenario: o.Scenario, Metric: "error_rate",
			Old: oE, New: nE, Change: change(oE, nE),
			Gated:      true,
			Regression: nE > oE+errorRateSlack,
		})

		cmp.Deltas = append(cmp.Deltas, Delta{
			Scenario: o.Scenario, Metric: "cache_hit_ratio",
			Old: o.Metrics.CacheHitRatio, New: n.Metrics.CacheHitRatio,
			Change: change(o.Metrics.CacheHitRatio, n.Metrics.CacheHitRatio),
		})

		// Allocations per request: a ratchet, not a fixed budget. The gate
		// engages only once the baseline carries the figure (older artifacts
		// predate the field and report 0), and a regression must exceed both
		// the fractional tolerance and allocsSlack absolute — see allocsSlack
		// for why near-zero baselines need the absolute bar.
		oA, nA := o.Metrics.AllocsPerRequest, n.Metrics.AllocsPerRequest
		aDelta := Delta{
			Scenario: o.Scenario, Metric: "allocs_per_request",
			Old: oA, New: nA, Change: change(oA, nA),
		}
		if oA > 0 {
			aDelta.Gated = true
			aDelta.Regression = nA > oA*(1+tolerance) && nA > oA+allocsSlack
		} else {
			aDelta.Note = "not gated: baseline predates allocs_per_request — re-measure to engage the ratchet"
		}
		cmp.Deltas = append(cmp.Deltas, aDelta)
	}
	return cmp, nil
}
