package load

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/router"
	"repro/internal/serve"
	"repro/internal/sweep"
)

// newTestEngine builds an engine sized like a small arch21d.
func newTestEngine(t *testing.T) *serve.Engine {
	t.Helper()
	eng := serve.NewEngine(serve.Config{Workers: 4})
	t.Cleanup(eng.Close)
	return eng
}

// End-to-end: the warm-hammer scenario against the real in-process
// engine must produce a schema-valid report with warm-cache hit ratios.
func TestE2EWarmHammerAgainstEngine(t *testing.T) {
	sc, ok := ScenarioByName("warm-hammer")
	if !ok {
		t.Fatal("warm-hammer missing from catalog")
	}
	rep, err := Run(NewEngineTarget(newTestEngine(t)), sc,
		Options{Duration: 300 * time.Millisecond, Clients: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	if rep.Metrics.Errors != 0 {
		t.Fatalf("warm hammer errored: %+v", rep.Metrics)
	}
	// Every variant was pre-warmed, so the measured window is hits.
	if rep.Metrics.CacheHitRatio < 0.99 {
		t.Fatalf("hit ratio %v, want ~1 after warmup", rep.Metrics.CacheHitRatio)
	}
	if rep.CalibrationBPS <= 0 {
		t.Fatal("calibration missing from report")
	}
}

// The cluster-scatter scenario against a real 3-replica router cluster:
// the BENCH harness measures routed serving like any single engine, the
// run is error-free, and placement actually scatters traffic across
// every replica.
func TestE2EClusterScatterAgainstRouter(t *testing.T) {
	sc, ok := ScenarioByName("cluster-scatter")
	if !ok {
		t.Fatal("cluster-scatter missing from catalog")
	}
	engines := make([]*serve.Engine, 3)
	backends := make([]router.Backend, 3)
	for i := range engines {
		engines[i] = newTestEngine(t)
		backends[i] = router.NewEngineBackend(engines[i], "engine")
	}
	rt, err := router.New(backends, router.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tgt := NewServerTarget(rt, "router").WithReset(func() {
		for _, e := range engines {
			e.Reset()
		}
	})
	rep, err := Run(tgt, sc, Options{Duration: 300 * time.Millisecond, Clients: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	if rep.Config.Target != "router" {
		t.Fatalf("target recorded as %q, want router", rep.Config.Target)
	}
	if rep.Metrics.Errors != 0 {
		t.Fatalf("cluster scatter errored: %+v", rep.Metrics)
	}
	if rep.Metrics.CacheHitRatio < 0.9 {
		t.Fatalf("warmed scatter hit ratio %v, want ~1", rep.Metrics.CacheHitRatio)
	}
	for i, e := range engines {
		if e.Metrics().Requests == 0 {
			t.Fatalf("replica %d saw no traffic — router is not scattering", i)
		}
	}
}

// The herd scenario stampedes one cold expensive key: singleflight and
// the cache must absorb it without errors.
func TestE2EHerdAgainstEngine(t *testing.T) {
	sc, ok := ScenarioByName("herd")
	if !ok {
		t.Fatal("herd missing from catalog")
	}
	rep, err := Run(NewEngineTarget(newTestEngine(t)), sc,
		Options{Duration: 400 * time.Millisecond, Clients: 16})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	if rep.Metrics.Errors != 0 {
		t.Fatalf("herd errored: %+v", rep.Metrics)
	}
	// After the first execution everything is a hit or a shared flight.
	if rep.Metrics.CacheHitRatio+rep.Metrics.DedupRatio < 0.5 {
		t.Fatalf("stampede not absorbed: hit=%v dedup=%v",
			rep.Metrics.CacheHitRatio, rep.Metrics.DedupRatio)
	}
}

// End-to-end over HTTP: load the same mux arch21d mounts through an
// httptest server and the HTTPTarget client, race-enabled in CI.
func TestE2ELoadtestAgainstHTTPDaemon(t *testing.T) {
	eng := newTestEngine(t)
	mux := http.NewServeMux()
	mux.Handle("/", eng.Handler())
	mux.Handle("POST /sweep", sweep.Handler(eng))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	tgt := NewHTTPTarget(srv.URL)
	if tgt.Name() != "http" {
		t.Fatalf("target name %q", tgt.Name())
	}
	sc, ok := ScenarioByName("mixed-zipf")
	if !ok {
		t.Fatal("mixed-zipf missing from catalog")
	}
	rep, err := Run(tgt, sc, Options{Duration: 300 * time.Millisecond, Rate: 150, Seed: 11})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	if rep.Metrics.Errors != 0 {
		t.Fatalf("HTTP load errored: %+v", rep.Metrics)
	}
	if rep.Config.Target != "http" || rep.Config.Mode != "open" {
		t.Fatalf("config not recorded: %+v", rep.Config)
	}
	// The Zipf mix repeats hot keys, so some traffic must hit the cache.
	if rep.Metrics.CacheHitRatio == 0 {
		t.Fatal("no cache hits under a Zipf mix")
	}

	// A second identical run against the now-warm daemon must not
	// regress against the first at a generous tolerance (same machine,
	// warmer cache) — exercising Compare on real reports.
	rep2, err := Run(tgt, sc, Options{Duration: 300 * time.Millisecond, Rate: 150, Seed: 11})
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	cmp, err := Compare([]Report{rep}, []Report{rep2}, 0.9)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if regs := cmp.Regressions(); len(regs) > 0 {
		t.Fatalf("warm rerun regressed vs cold run: %+v", regs)
	}
}

// Bad HTTP responses surface as request errors, not panics: aim the
// target at an endpoint that 404s everything.
func TestHTTPTargetSurfacesServerErrors(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	t.Cleanup(srv.Close)
	tgt := NewHTTPTarget(srv.URL)
	if _, err := tgt.Do(Variant{ID: "E7"}); err == nil {
		t.Fatal("404 did not surface as an error")
	}
}

func TestNewHTTPTargetNormalizesAddr(t *testing.T) {
	for addr, want := range map[string]string{
		":8021":                  "http://localhost:8021",
		"localhost:8021":         "http://localhost:8021",
		"http://example.com:80/": "http://example.com:80",
	} {
		if got := NewHTTPTarget(addr).base; got != want {
			t.Fatalf("NewHTTPTarget(%q).base = %q, want %q", addr, got, want)
		}
	}
}
