package load

// The adversarial-workload acceptance for the flash-crowd scenario
// shape: replay a piecewise rate schedule with a 7.5x step through the
// real QoS feedback loop (qos.Supervisor over serve.Engine) and verify
// FROM THE RECORDED EVENT TIMELINE — the same stream /events and BENCH
// artifacts expose — that the controller halves the batch rate during
// the step and restores at least 80% of the pre-storm rate within 5
// seconds of the step's end.

import (
	"context"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestFlashCrowdScheduleDrivesControllerHalveAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second schedule-replay experiment; skipped in -short")
	}

	// The step is sized against the engine's execution capacity, not a
	// latency dial: 4 workers x 5ms service = 800 exec/s, so the 120/s
	// baseline is far inside the 20ms SLO and the 900/s step queues
	// unboundedly for its whole second.
	const (
		slo       = 20 * time.Millisecond
		service   = 5 * time.Millisecond
		baseline  = 1500 * time.Millisecond // pre-step calm
		step      = time.Second             // the flash crowd
		tail      = 4 * time.Second         // post-step recovery window
		stepSlack = 150 * time.Millisecond  // tick quantization + trace-gen offset
	)
	sched := workload.MustRateSchedule("120@1500ms,900@1s,120@4s")

	eng := serve.NewEngine(serve.Config{
		Shards:  8,
		Workers: 4,
		// Deep queue: the step must manifest as queueing delay the
		// controller sees, not as a shed flood that evicts the controller
		// timeline from the event ring.
		Queue: 4096,
		// A 1ns TTL expires every entry before its first Get: each arrival
		// pays real service time, so offered load maps to execution load.
		TTL: time.Nanosecond,
		RunnerWith: func(ctx context.Context, id string, _ core.Params) (core.Result, error) {
			select {
			case <-ctx.Done():
				return core.Result{}, ctx.Err()
			case <-time.After(service):
			}
			return core.Result{Findings: []string{"served " + id}}, nil
		},
	})
	defer eng.Close()

	sup := &qos.Supervisor{
		Ctrl:       qos.NewRateController(slo.Seconds(), 256, 1, 2048),
		Window:     func() stats.LatencySnapshot { return eng.TakeClassWindow(admit.Interactive) },
		Apply:      eng.SetBatchRate,
		Events:     eng.Events(),
		Interval:   50 * time.Millisecond,
		MinSamples: 4,
	}
	eng.SetBatchRate(sup.Ctrl.Rate())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sup.Run(ctx)

	// The scenario mirrors the catalog's flash-crowd shape (open loop, a
	// schedule with a hard step, churn) but over a ~100-key grid so
	// singleflight dedup cannot quietly absorb the storm: with 12 hot
	// keys the dedup equilibrium sojourn sits under the SLO and the test
	// would measure luck instead of the controller.
	sc := Scenario{
		Name: "flash-crowd-acceptance",
		Doc:  "schedule step acceptance",
		Mode: OpenLoop,
		Variants: gridVariants("E7",
			"f=0.9:0.99:0.005", "bces=16,64,256,1024,4096"),
		Skew:     0,
		Schedule: &sched,
		Churn:    true,
		Seed:     42,
	}

	t0 := time.Now() // trace replay anchors here (no warmup, no reset)
	rep, err := Run(NewEngineTarget(eng), sc, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	stepStart := t0.Add(baseline)
	stepEnd := t0.Add(baseline + step)

	if rep.Config.Schedule != sched.String() {
		t.Fatalf("report schedule %q, want %q", rep.Config.Schedule, sched.String())
	}
	if !rep.Config.Churn {
		t.Fatal("report does not record churn")
	}

	// The verdict comes from the report's recorded event timeline — the
	// exact artifact a BENCH consumer sees.
	var halvesDuringStep int
	preRate := 0.0
	var recoveredAt time.Time
	for _, ev := range rep.Events {
		if ev.Type != obs.EventController {
			continue
		}
		at := time.Unix(0, ev.TimeUnixNano)
		if ev.Labels["action"] == "halve" &&
			at.After(stepStart) && at.Before(stepEnd.Add(stepSlack)) {
			if halvesDuringStep == 0 {
				// The rate the controller held entering the storm.
				preRate = ev.Data["rate_before"]
			}
			halvesDuringStep++
		}
	}
	if halvesDuringStep == 0 {
		t.Fatalf("no halve decisions recorded during the step; %d events total", len(rep.Events))
	}
	if preRate <= 0 {
		t.Fatalf("first halve carries no pre-storm rate: %g", preRate)
	}
	target := 0.8 * preRate
	for _, ev := range rep.Events {
		if ev.Type != obs.EventController {
			continue
		}
		at := time.Unix(0, ev.TimeUnixNano)
		if at.After(stepEnd) && ev.Data["rate_after"] >= target {
			recoveredAt = at
			break
		}
	}
	t.Logf("pre-storm rate %.0f tokens/s; %d halves during the 1s step; recovery target %.0f",
		preRate, halvesDuringStep, target)
	if recoveredAt.IsZero() {
		t.Fatalf("event timeline never shows the batch rate recovering to %.0f (80%% of pre-storm %.0f)",
			target, preRate)
	}
	if rec := recoveredAt.Sub(stepEnd); rec > 5*time.Second {
		t.Fatalf("controller took %v to restore 80%% of the pre-storm batch rate (limit 5s)", rec)
	} else {
		t.Logf("restored >=80%% of pre-storm batch rate %v after step end", rec)
	}
}
