package load

// The PR's acceptance experiment, as a test: under a colocation scenario
// (interactive stream + concurrent batch sweep-storm), the class-based
// scheduler keeps interactive p99 within 2x of the interactive-alone
// p99 while batch makes progress; forcing the SharedFIFO policy (the old
// single-FIFO pool) on the very same workload demonstrates the priority
// inversion the refactor removes.
//
// The engine runs an injected runner with a fixed 1ms service time per
// (cold, unique) request, so the measured latencies are queueing plus a
// known service time — the scheduling disciplines are compared on the
// same footing, independent of experiment compute.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/serve"
)

const colocService = time.Millisecond

// uniqueVariants builds n distinct cold keys under one class.
func uniqueVariants(prefix string, n int, class admit.Class) []Variant {
	out := make([]Variant, n)
	for i := range out {
		out[i] = Variant{ID: fmt.Sprintf("%s%05d", prefix, i), Class: class}
	}
	return out
}

// newColocEngine builds an engine whose runner takes exactly colocService
// per request (honoring cancellation), under the given policy.
func newColocEngine(t *testing.T, policy admit.Policy) *serve.Engine {
	t.Helper()
	e := serve.NewEngine(serve.Config{
		Shards:  8,
		Workers: 4,
		// Deep queues, as a live sweep's fan-out would produce: the FIFO
		// inversion needs the backlog the old pool accumulated.
		Queue:  64,
		Policy: policy,
		RunnerWith: func(ctx context.Context, id string, _ core.Params) (core.Result, error) {
			select {
			case <-ctx.Done():
				return core.Result{}, ctx.Err()
			case <-time.After(colocService):
			}
			return core.Result{Findings: []string{"served " + id}}, nil
		},
	})
	t.Cleanup(e.Close)
	return e
}

// colocScenario builds the synthetic colocation shape: 2 interactive
// clients over unique cold keys — offered load below the 4-worker
// capacity, as latency-critical traffic usually is — optionally with a
// 32-client batch storm over its own unique cold keys soaking up the
// headroom.
func colocScenario(withBatch bool) Scenario {
	sc := Scenario{
		Name: "coloc-accept", Mode: ClosedLoop, Skew: 0, Clients: 2, Seed: 11,
		Variants: uniqueVariants("i", 4096, admit.Interactive),
	}
	if withBatch {
		sc.Batch = &BatchStorm{
			Variants: uniqueVariants("b", 20000, admit.Batch),
			Clients:  32,
		}
	}
	return sc
}

func runColoc(t *testing.T, policy admit.Policy, withBatch bool) Report {
	t.Helper()
	eng := newColocEngine(t, policy)
	rep, err := Run(NewEngineTarget(eng), colocScenario(withBatch), Options{
		Duration: 700 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("load.Run: %v", err)
	}
	return rep
}

func TestColocationSchedulerHoldsInteractiveP99(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second timing experiment; skipped in -short")
	}

	alone := runColoc(t, admit.StrictPriority, false)
	coloc := runColoc(t, admit.StrictPriority, true)
	fifo := runColoc(t, admit.SharedFIFO, true)

	aloneInt, ok := alone.Metrics.PerClass[admit.Interactive.String()]
	if !ok {
		t.Fatalf("alone run has no interactive class metrics: %+v", alone.Metrics)
	}
	colocInt, ok := coloc.Metrics.PerClass[admit.Interactive.String()]
	if !ok {
		t.Fatalf("colocated run has no interactive class metrics: %+v", coloc.Metrics)
	}
	colocBatch, ok := coloc.Metrics.PerClass[admit.Batch.String()]
	if !ok {
		t.Fatal("colocated run has no batch class metrics")
	}
	fifoInt := fifo.Metrics.PerClass[admit.Interactive.String()]

	t.Logf("interactive p99: alone=%.2fms, colocated(strict-priority)=%.2fms, colocated(shared-fifo)=%.2fms",
		aloneInt.Latency.P99*1e3, colocInt.Latency.P99*1e3, fifoInt.Latency.P99*1e3)
	t.Logf("batch under strict-priority: %d requests, %.0f req/s, %d errors",
		colocBatch.Requests, colocBatch.ThroughputRPS, colocBatch.Errors)

	// The acceptance bound: batch pressure must not move interactive p99
	// past 2x its alone value (a small absolute allowance absorbs
	// scheduler jitter on loaded CI runners — it is an order of magnitude
	// below the inversion being ruled out).
	slack := 5 * colocService.Seconds()
	if colocInt.Latency.P99 > 2*aloneInt.Latency.P99+slack {
		t.Errorf("scheduler failed to protect interactive p99: alone %.2fms, colocated %.2fms (> 2x + %.0fms)",
			aloneInt.Latency.P99*1e3, colocInt.Latency.P99*1e3, slack*1e3)
	}
	// ... while the batch sweep makes progress.
	if colocBatch.Requests < 50 {
		t.Errorf("batch made no real progress under strict priority: %d requests", colocBatch.Requests)
	}
	if colocBatch.ErrorRate > 0.01 {
		t.Errorf("batch error rate %.3f under strict priority; backpressure should block, not fail", colocBatch.ErrorRate)
	}
	// The counterfactual: the old shared FIFO lets the same batch storm
	// invert interactive latency — the exact pathology the scheduler
	// removes. Demand it visibly (beyond the bound the scheduler met).
	if fifoInt.Latency.P99 <= 2*aloneInt.Latency.P99+slack {
		t.Errorf("SharedFIFO did not demonstrate the inversion: alone p99 %.2fms, fifo colocated p99 %.2fms",
			aloneInt.Latency.P99*1e3, fifoInt.Latency.P99*1e3)
	}
	if fifoInt.Latency.P99 <= colocInt.Latency.P99 {
		t.Errorf("strict priority (%.2fms) did not beat shared FIFO (%.2fms) on interactive p99",
			colocInt.Latency.P99*1e3, fifoInt.Latency.P99*1e3)
	}
}

// The catalog colocation scenario runs end to end against a real engine
// and emits a per-class report: both classes present, batch progressing,
// interactive dominated by warm cache hits.
func TestColocationCatalogScenarioReportsPerClass(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments; skipped in -short")
	}
	sc, ok := ScenarioByName("colocation")
	if !ok {
		t.Fatal("colocation scenario missing from catalog")
	}
	eng := serve.NewEngine(serve.Config{Workers: 2})
	defer eng.Close()
	rep, err := Run(NewEngineTarget(eng), sc, Options{Duration: 500 * time.Millisecond})
	if err != nil {
		t.Fatalf("load.Run(colocation): %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("colocation report invalid: %v", err)
	}
	ic, ok := rep.Metrics.PerClass[admit.Interactive.String()]
	if !ok || ic.Requests == 0 {
		t.Fatalf("no interactive class in colocation report: %+v", rep.Metrics.PerClass)
	}
	bc, ok := rep.Metrics.PerClass[admit.Batch.String()]
	if !ok || bc.Requests == 0 {
		t.Fatalf("no batch class in colocation report: %+v", rep.Metrics.PerClass)
	}
	if ic.CacheHitRatio < 0.5 {
		t.Errorf("warmed interactive mix should be mostly hits, got ratio %.2f", ic.CacheHitRatio)
	}
	if got := ic.Requests + bc.Requests; got != rep.Metrics.Requests {
		t.Errorf("class requests %d do not sum to total %d", got, rep.Metrics.Requests)
	}
}
