package load

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
)

// SchemaVersion is the BENCH_*.json artifact schema. Compare skips (and
// names) scenarios whose reports carry another schema version; bump it
// on any incompatible field change. Schema 2 added the control-plane
// event timeline (Events) so a colocation artifact carries the
// controller's decisions alongside the latency verdict they produced.
// Schema 3 added the adversarial-workload fields: the rate-schedule/
// churn/tenant configuration knobs and the per-tenant books with Jain's
// fairness index.
const SchemaVersion = 3

// Config records the knobs a report was measured under, so a trajectory
// of BENCH artifacts is self-describing.
type Config struct {
	// Target is the target kind ("engine" or "http").
	Target string `json:"target"`
	// Mode is the pacing discipline ("closed" or "open").
	Mode string `json:"mode"`
	// DurationSeconds is the requested measurement window.
	DurationSeconds float64 `json:"duration_seconds"`
	// Clients is closed-loop concurrency; Rate the open-loop arrival
	// rate; Skew the Zipf exponent (0 = round-robin).
	Clients int     `json:"clients,omitempty"`
	Rate    float64 `json:"rate,omitempty"`
	Skew    float64 `json:"skew,omitempty"`
	// Schedule is the piecewise rate schedule the open loop followed
	// (spec syntax, as run — i.e. after any -duration scaling), empty
	// for constant-rate runs. Churn reports whether the Zipf rank→
	// variant mapping permuted at segment boundaries.
	Schedule string `json:"schedule,omitempty"`
	Churn    bool   `json:"churn,omitempty"`
	// Tenants names the scenario's tenant mixes, in catalog order;
	// empty for single-tenant runs.
	Tenants []string `json:"tenants,omitempty"`
	// Seed drove trace generation and client key draws.
	Seed uint64 `json:"seed"`
	// Variants is the request catalog size.
	Variants int `json:"variants"`
	// Warm reports whether the cache was pre-warmed before measuring.
	Warm bool `json:"warm,omitempty"`
	// Reset reports whether the target's cache was actually dropped
	// before the run — false for a Reset scenario pointed at a target
	// that cannot reset (a live daemon), so "cold" artifacts measured
	// warm are distinguishable.
	Reset bool `json:"reset,omitempty"`
	// Cores is GOMAXPROCS on the measuring machine. Compare only gates
	// throughput between reports with equal core counts.
	Cores int `json:"cores,omitempty"`
}

// Latency is the measured latency distribution, in seconds.
type Latency struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// ClassMetrics is one request class's slice of a run's outcome — what a
// colocation scenario reports per class so interactive tail latency is
// legible independently of the batch storm sharing the window.
type ClassMetrics struct {
	// Requests counts the class's issued requests; Errors those that
	// failed; ErrorRate their ratio.
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	// DurationSeconds is the achieved (wall-clock) window.
	DurationSeconds float64 `json:"duration_seconds"`
	// ThroughputRPS is the class's successful requests per second.
	ThroughputRPS float64 `json:"throughput_rps"`
	// CacheHitRatio and DedupRatio are fractions of the class's
	// successful requests served from cache / piggybacked in flight.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	DedupRatio    float64 `json:"dedup_ratio"`
	// Latency is the class's successful-request latency distribution
	// (seconds).
	Latency Latency `json:"latency_seconds"`
}

// Metrics is one run's measured outcome.
type Metrics struct {
	// Requests counts issued requests in the measured window; Errors
	// those that failed; ErrorRate their ratio.
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	// DurationSeconds is the achieved (wall-clock) window.
	DurationSeconds float64 `json:"duration_seconds"`
	// ThroughputRPS is successful requests per second of wall time.
	ThroughputRPS float64 `json:"throughput_rps"`
	// CacheHitRatio and DedupRatio are fractions of successful requests
	// served from cache / piggybacked on an in-flight execution.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	DedupRatio    float64 `json:"dedup_ratio"`
	// Latency is the successful-request latency distribution (seconds),
	// measured from scheduled arrival in open loop (coordinated-omission
	// free) and from send in closed loop.
	Latency Latency `json:"latency_seconds"`
	// PerClass splits the outcome by request class ("interactive",
	// "batch") when the scenario issued more than the default class —
	// colocation runs read their headline QoS verdict here. Absent for
	// single-class runs measured before this field existed (the addition
	// is schema-compatible: all prior fields are unchanged).
	PerClass map[string]ClassMetrics `json:"per_class,omitempty"`
	// PerTenant splits the outcome by tenant for multi-tenant scenarios
	// (same shape as a class slice — a tenant's issued/succeeded/latency
	// books), keyed by tenant name. Absent otherwise.
	PerTenant map[string]ClassMetrics `json:"per_tenant,omitempty"`
	// FairnessIndex is Jain's index over each tenant's success ratio
	// (successful/issued): demand-normalized, so offered-load skew alone
	// does not lower it, while a tenant starved by sheds does. 1 is
	// perfectly fair, 1/n is one tenant taking everything; 0 when the
	// run had no tenant mixes.
	FairnessIndex float64 `json:"fairness_index,omitempty"`
	// AllocsPerRequest is the heap allocation count per issued request
	// over the measured window (runtime Mallocs delta / requests),
	// covering the target's serving path plus the generator's own loop.
	// The CI allocs gate ratchets on it: once a baseline records the
	// figure, a regression past tolerance fails bench-smoke. Absent in
	// reports measured before this field existed (the addition is
	// schema-compatible, like PerClass).
	AllocsPerRequest float64 `json:"allocs_per_request,omitempty"`
}

// Report is one scenario run — the versioned, machine-readable BENCH
// artifact the repo's perf trajectory accumulates.
type Report struct {
	// Schema is the artifact schema version (SchemaVersion).
	Schema int `json:"schema"`
	// Scenario names the catalog scenario measured.
	Scenario string `json:"scenario"`
	// Git is `git describe --always --dirty` at measurement time (empty
	// when unknown — e.g. tests).
	Git string `json:"git,omitempty"`
	// GoVersion is runtime.Version() of the measuring binary.
	GoVersion string `json:"go_version"`
	// CalibrationBPS is the machine's aggregate hash throughput (bytes/s;
	// see Calibrate) measured at this run's own concurrency, letting
	// Compare normalize throughput across machines of different per-core
	// speeds and core counts.
	CalibrationBPS float64 `json:"calibration_bps"`
	// Config is the run configuration; Metrics the measured outcome.
	Config  Config  `json:"config"`
	Metrics Metrics `json:"metrics"`
	// Events is the target's control-plane event timeline over the run —
	// controller decisions (halve/reclaim/hold with before/after rates),
	// sheds, ejections — captured from the engine's ring when the target
	// exposes one. A colocation artifact's controller story lives here.
	Events []obs.Event `json:"events,omitempty"`
}

// Validate checks that a report is a usable trajectory artifact: current
// schema, named scenario, and nonzero measured traffic (throughput and
// tail both present).
func (r Report) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("load: report schema %d, want %d", r.Schema, SchemaVersion)
	}
	if r.Scenario == "" {
		return fmt.Errorf("load: report has no scenario name")
	}
	if r.Metrics.Requests <= 0 {
		return fmt.Errorf("load: report %s measured no requests", r.Scenario)
	}
	if r.Metrics.ThroughputRPS <= 0 {
		return fmt.Errorf("load: report %s has zero throughput", r.Scenario)
	}
	if r.Metrics.Latency.P99 <= 0 {
		return fmt.Errorf("load: report %s has zero p99", r.Scenario)
	}
	return nil
}

// WriteFile serializes reports as indented JSON: a single object for one
// report (the common CI artifact), an array for several.
func WriteFile(path string, reports ...Report) error {
	if len(reports) == 0 {
		return fmt.Errorf("load: no reports to write")
	}
	var v interface{} = reports
	if len(reports) == 1 {
		v = reports[0]
	}
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("load: encode reports: %w", err)
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// MergeFile folds rep into the BENCH file at path: an existing report
// for the same scenario is replaced, anything else is preserved, and a
// missing file is created. This is how a multi-scenario baseline
// (warm-hammer + cluster-scatter) is assembled from individual loadtest
// runs.
func MergeFile(path string, rep Report) error {
	existing, err := ReadReports(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			return err
		}
		existing = nil
	}
	replaced := false
	for i, r := range existing {
		if r.Scenario == rep.Scenario {
			existing[i] = rep
			replaced = true
			break
		}
	}
	if !replaced {
		existing = append(existing, rep)
	}
	return WriteFile(path, existing...)
}

// ReadReports parses a BENCH JSON file holding either a single report
// object or an array of them.
func ReadReports(path string) ([]Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	trimmed := strings.TrimSpace(string(buf))
	if strings.HasPrefix(trimmed, "[") {
		var many []Report
		if err := json.Unmarshal(buf, &many); err != nil {
			return nil, fmt.Errorf("load: parse %s: %w", path, err)
		}
		return many, nil
	}
	var one Report
	if err := json.Unmarshal(buf, &one); err != nil {
		return nil, fmt.Errorf("load: parse %s: %w", path, err)
	}
	return []Report{one}, nil
}
