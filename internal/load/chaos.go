package load

// Soak/chaos mode: a replicated serving cluster under live closed-loop
// load while injected faults (replica kills, hard hangs, error bursts —
// the router.FaultBackend doubles) cycle through the replicas. The
// harness's verdict is not a latency number but three invariants that
// must survive arbitrary fault interleavings:
//
//   - the per-class conservation law on every replica engine —
//     hits + deduped + sheds + executions == requests — at quiescence;
//   - zero goroutine leak: after teardown the process returns to within
//     a small budget of its starting goroutine count;
//   - bounded heap growth across the soak.
//
// `arch21 loadtest -chaos` runs this with a nonzero exit on any failed
// check; CI's chaos-smoke job runs it under -race.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/router"
	"repro/internal/serve"
	"repro/internal/stats"
)

// ChaosOptions configures a soak run. The zero value is a usable 30s
// default soak.
type ChaosOptions struct {
	// Duration is the soak length (default 30s).
	Duration time.Duration
	// Replicas is the engine-replica count behind the router (default 3).
	Replicas int
	// Clients is the closed-loop client count, split evenly between the
	// interactive and batch classes (default 8).
	Clients int
	// Workers is each replica engine's worker-pool size (default 4).
	Workers int
	// Seed drives client key draws and the fault schedule.
	Seed uint64
	// HeapBudget bounds end-of-soak heap growth in bytes (default 256 MiB).
	HeapBudget int64
	// EventsSink, when set, receives the router's control-plane events
	// (ejections, re-admissions) as NDJSON — the chaos artifact's event
	// log.
	EventsSink io.Writer
	// RunnerWith overrides replica execution (default: the core
	// registry); injectable for tests.
	RunnerWith func(ctx context.Context, id string, p core.Params) (core.Result, error)
	// Logf, when set, receives progress lines (fault injections, phase
	// transitions).
	Logf func(format string, args ...interface{})
}

// ChaosCheck is one invariant's verdict.
type ChaosCheck struct {
	Name   string `json:"name"`
	Passed bool   `json:"passed"`
	Detail string `json:"detail"`
}

// ChaosResult is the soak's machine-readable outcome — the chaos
// artifact CI uploads next to the event log.
type ChaosResult struct {
	DurationSeconds float64 `json:"duration_seconds"`
	Replicas        int     `json:"replicas"`
	Clients         int     `json:"clients"`
	Seed            uint64  `json:"seed"`
	// Requests counts issued requests; Errors those that failed (sheds,
	// injected faults that exhausted failover, deadline expiries).
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// Kills, Hangs, Bursts count injected faults by kind.
	Kills  int `json:"kills"`
	Hangs  int `json:"hangs"`
	Bursts int `json:"bursts"`
	// GoroutinesStart/End bracket the run; the leak check allows End to
	// exceed Start by at most GoroutineBudget.
	GoroutinesStart int `json:"goroutines_start"`
	GoroutinesEnd   int `json:"goroutines_end"`
	GoroutineBudget int `json:"goroutine_budget"`
	// HeapStartBytes/EndBytes bracket live heap (post-GC).
	HeapStartBytes uint64 `json:"heap_start_bytes"`
	HeapEndBytes   uint64 `json:"heap_end_bytes"`
	// Checks holds every invariant verdict.
	Checks []ChaosCheck `json:"checks"`
}

// Passed reports whether every invariant held.
func (r ChaosResult) Passed() bool {
	for _, c := range r.Checks {
		if !c.Passed {
			return false
		}
	}
	return len(r.Checks) > 0
}

// RunChaos runs one soak. An error means the harness could not be set
// up; invariant violations are reported in the result's Checks, not as
// errors.
func RunChaos(opt ChaosOptions) (ChaosResult, error) {
	duration := opt.Duration
	if duration <= 0 {
		duration = 30 * time.Second
	}
	replicas := opt.Replicas
	if replicas <= 0 {
		replicas = 3
	}
	clients := opt.Clients
	if clients <= 0 {
		clients = 8
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = 4
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	heapBudget := opt.HeapBudget
	if heapBudget <= 0 {
		heapBudget = 256 << 20
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	sc, ok := ScenarioByName("mixed-zipf")
	if !ok || len(sc.Variants) == 0 {
		return ChaosResult{}, fmt.Errorf("load: chaos needs the mixed-zipf catalog")
	}
	variants := sc.Variants

	// The leak bracket starts before any harness allocation, after a GC
	// so it measures structure, not garbage.
	runtime.GC()
	var msStart runtime.MemStats
	runtime.ReadMemStats(&msStart)
	res := ChaosResult{
		DurationSeconds: duration.Seconds(),
		Replicas:        replicas,
		Clients:         clients,
		Seed:            seed,
		GoroutinesStart: runtime.NumGoroutine(),
		GoroutineBudget: 2 * clients,
		HeapStartBytes:  msStart.HeapAlloc,
	}

	engines := make([]*serve.Engine, replicas)
	faults := make([]*router.FaultBackend, replicas)
	backends := make([]router.Backend, replicas)
	for i := range engines {
		engines[i] = serve.NewEngine(serve.Config{
			Shards:     8,
			Workers:    workers,
			RunnerWith: opt.RunnerWith,
		})
		faults[i] = router.NewFaultBackend(
			router.NewEngineBackend(engines[i], fmt.Sprintf("engine[%d]", i)))
		backends[i] = faults[i]
	}
	closeEngines := func() {
		for _, e := range engines {
			if e != nil {
				e.Close()
			}
		}
	}
	rt, err := router.New(backends, router.Config{
		// A hung replica must cost an attempt timeout, not the soak: the
		// router abandons slow attempts quickly, fails over, and ejects
		// after two strikes; probes re-admit revived replicas fast.
		Timeout:       500 * time.Millisecond,
		FailThreshold: 2,
		ProbeAfter:    250 * time.Millisecond,
	})
	if err != nil {
		closeEngines()
		return ChaosResult{}, fmt.Errorf("load: chaos cluster: %w", err)
	}
	if opt.EventsSink != nil {
		rt.Events().SetSink(opt.EventsSink)
	}

	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()

	// Live load: half the clients interactive, half batch, each drawing
	// uniformly from the mixed catalog with occasional tight deadlines so
	// deadline sheds and mid-flight cancellations are part of the mix. A
	// failed request backs off briefly — the soak measures survival under
	// refusal, not a shed-retry busy-loop.
	var wg sync.WaitGroup
	var requests, errs atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := stats.NewRNG(seed + uint64(c)*1000003 + 7)
			class := admit.Interactive
			if c%2 == 1 {
				class = admit.Batch
			}
			for ctx.Err() == nil {
				v := variants[rng.Intn(len(variants))]
				rctx := admit.WithClass(ctx, class)
				rcancel := context.CancelFunc(func() {})
				if rng.Intn(4) == 0 {
					rctx, rcancel = context.WithTimeout(rctx,
						time.Duration(1+rng.Intn(20))*time.Millisecond)
				}
				_, err := rt.ServeWith(rctx, v.ID, v.Params)
				rcancel()
				requests.Add(1)
				if err != nil {
					errs.Add(1)
					time.Sleep(200 * time.Microsecond)
				}
			}
		}(c)
	}

	// The fault schedule: every tick, one replica takes one fault —
	// kill+revive, hang+release, or an error burst — chosen round-robin
	// over kinds with the replica drawn from the seeded RNG, so a soak is
	// reproducible per seed.
	var kills, hangs, bursts int
	injectorDone := make(chan struct{})
	go func() {
		defer close(injectorDone)
		rng := stats.NewRNG(seed + 555)
		tick := duration / 10
		if tick < 50*time.Millisecond {
			tick = 50 * time.Millisecond
		}
		for i := 0; ; i++ {
			select {
			case <-ctx.Done():
				return
			case <-time.After(tick):
			}
			fb := faults[rng.Intn(len(faults))]
			switch i % 3 {
			case 0:
				kills++
				logf("chaos: kill %s", fb.Name())
				fb.Kill()
				select {
				case <-ctx.Done():
				case <-time.After(tick / 2):
				}
				fb.Revive()
			case 1:
				hangs++
				logf("chaos: hang %s", fb.Name())
				fb.Hang()
				select {
				case <-ctx.Done():
				case <-time.After(tick / 2):
				}
				fb.Release()
			case 2:
				bursts++
				logf("chaos: error burst on %s", fb.Name())
				fb.ErrorBurst(25)
			}
		}
	}()

	<-injectorDone
	wg.Wait()
	// Heal everything so in-flight work can quiesce.
	for _, fb := range faults {
		fb.Revive()
		fb.Release()
	}
	res.Requests = requests.Load()
	res.Errors = errs.Load()
	res.Kills, res.Hangs, res.Bursts = kills, hangs, bursts
	logf("chaos: soak done: %d requests (%d errors), %d kills, %d hangs, %d bursts",
		res.Requests, res.Errors, kills, hangs, bursts)

	res.Checks = append(res.Checks, ChaosCheck{
		Name:   "load flowed",
		Passed: res.Requests > 0 && res.Requests > res.Errors,
		Detail: fmt.Sprintf("%d requests, %d errors", res.Requests, res.Errors),
	})

	// Conservation at quiescence: abandoned router attempts may still be
	// draining inside replicas, so poll until the books balance on every
	// engine and class (or the grace period expires with the imbalance
	// named).
	conserved, detail := false, ""
	for grace := time.Now().Add(10 * time.Second); time.Now().Before(grace); {
		conserved, detail = conservationHolds(engines)
		if conserved {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	res.Checks = append(res.Checks, ChaosCheck{
		Name: "per-class conservation", Passed: conserved, Detail: detail,
	})

	// Teardown, then the leak bracket: worker pools, scheduler loops, and
	// abandoned attempt goroutines must all unwind. The settle loop gives
	// stragglers time; the budget absorbs runtime-owned goroutines (GC
	// workers, timer threads) that legitimately appear under load.
	closeEngines()
	limit := res.GoroutinesStart + res.GoroutineBudget
	res.GoroutinesEnd = runtime.NumGoroutine()
	for grace := time.Now().Add(10 * time.Second); time.Now().Before(grace) && res.GoroutinesEnd > limit; {
		time.Sleep(100 * time.Millisecond)
		res.GoroutinesEnd = runtime.NumGoroutine()
	}
	res.Checks = append(res.Checks, ChaosCheck{
		Name:   "goroutine leak",
		Passed: res.GoroutinesEnd <= limit,
		Detail: fmt.Sprintf("start %d, end %d, budget +%d",
			res.GoroutinesStart, res.GoroutinesEnd, res.GoroutineBudget),
	})

	runtime.GC()
	var msEnd runtime.MemStats
	runtime.ReadMemStats(&msEnd)
	res.HeapEndBytes = msEnd.HeapAlloc
	growth := int64(res.HeapEndBytes) - int64(res.HeapStartBytes)
	res.Checks = append(res.Checks, ChaosCheck{
		Name:   "bounded heap growth",
		Passed: growth <= heapBudget,
		Detail: fmt.Sprintf("start %d B, end %d B, growth %d B (budget %d B)",
			res.HeapStartBytes, res.HeapEndBytes, growth, heapBudget),
	})
	return res, nil
}

// conservationHolds checks hits+deduped+sheds+executions == requests for
// every engine and class, returning a book summary either way.
func conservationHolds(engines []*serve.Engine) (bool, string) {
	ok := true
	detail := ""
	for i, e := range engines {
		m := e.Metrics()
		for class, cm := range m.Classes {
			sum := cm.CacheHits + cm.Deduped + cm.Sheds + cm.Executions
			if sum != cm.Requests {
				ok = false
				detail += fmt.Sprintf(
					"engine[%d] %s: hits(%d)+deduped(%d)+sheds(%d)+executions(%d)=%d != requests(%d); ",
					i, class, cm.CacheHits, cm.Deduped, cm.Sheds, cm.Executions, sum, cm.Requests)
			}
		}
	}
	if ok {
		detail = fmt.Sprintf("books balanced on %d engines x %d classes",
			len(engines), len(admit.Classes()))
	}
	return ok, detail
}
