package load

// Multi-tenant acceptance: the catalog's multi-tenant scenario drives a
// 10:1 offered-load skew (anchor 10 closed-loop clients vs tail 1) at a
// real engine keeping per-tenant books, and the report must carry
// per-tenant metrics plus a Jain's fairness index of at least 0.8 —
// demand-normalized, so the skew itself is not unfairness; only
// discriminatory service (one tenant's requests failing while
// another's succeed) drags the index down.

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

func TestMultiTenantScenarioFairnessAndBooks(t *testing.T) {
	if testing.Short() {
		t.Skip("second-scale load experiment; skipped in -short")
	}
	sc, ok := ScenarioByName("multi-tenant")
	if !ok {
		t.Fatal("multi-tenant scenario missing from catalog")
	}
	if len(sc.Tenants) != 3 {
		t.Fatalf("multi-tenant scenario has %d mixes, want 3", len(sc.Tenants))
	}
	// The offered-load skew under test: anchor's client group must be
	// 10x tail's.
	var anchorClients, tailClients int
	names := make([]string, 0, len(sc.Tenants))
	for _, tm := range sc.Tenants {
		names = append(names, tm.Name)
		switch tm.Name {
		case "anchor":
			anchorClients = tm.Clients
		case "tail":
			tailClients = tm.Clients
		}
	}
	if anchorClients != 10*tailClients {
		t.Fatalf("offered-load skew anchor:tail = %d:%d, want 10:1", anchorClients, tailClients)
	}

	eng := serve.NewEngine(serve.Config{
		Workers: 4,
		Tenants: names,
		RunnerWith: func(ctx context.Context, id string, _ core.Params) (core.Result, error) {
			select {
			case <-ctx.Done():
				return core.Result{}, ctx.Err()
			case <-time.After(200 * time.Microsecond):
			}
			return core.Result{Findings: []string{"served " + id}}, nil
		},
	})
	defer eng.Close()

	rep, err := Run(NewEngineTarget(eng), sc, Options{Duration: 1200 * time.Millisecond})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if got := rep.Config.Tenants; len(got) != 3 {
		t.Fatalf("report config names %v tenants, want the 3 mixes", got)
	}
	if len(rep.Metrics.PerTenant) != 3 {
		t.Fatalf("per-tenant books %v, want all 3 mixes", rep.Metrics.PerTenant)
	}
	anchor := rep.Metrics.PerTenant["anchor"]
	tail := rep.Metrics.PerTenant["tail"]
	if anchor.Requests == 0 || tail.Requests == 0 {
		t.Fatalf("tenant books empty: anchor %d, tail %d", anchor.Requests, tail.Requests)
	}
	// The skew must be visible in the books (10 clients vs 1, identical
	// think-time-free loops): well over 2x, even with scheduling noise.
	if anchor.Requests < 2*tail.Requests {
		t.Fatalf("offered-load skew not realized: anchor %d requests vs tail %d",
			anchor.Requests, tail.Requests)
	}
	if rep.Metrics.FairnessIndex < 0.8 {
		t.Fatalf("Jain's fairness %.3f under 10:1 offered skew, want >= 0.8 (per-tenant: %+v)",
			rep.Metrics.FairnessIndex, rep.Metrics.PerTenant)
	}
	t.Logf("fairness %.3f; anchor %d req, tail %d req, bulk %d req",
		rep.Metrics.FairnessIndex, anchor.Requests, tail.Requests,
		rep.Metrics.PerTenant["bulk"].Requests)

	// The engine's own bounded books saw the same tenants: every mix
	// accounted, nothing folded into "other" (all identities declared).
	em := eng.Metrics()
	for _, name := range names {
		tm, ok := em.Tenants[name]
		if !ok || tm.Requests == 0 {
			t.Fatalf("engine tenant book %q missing or empty: %+v", name, em.Tenants)
		}
	}
	if other := em.Tenants["other"]; other.Requests != 0 {
		t.Fatalf("declared-tenant traffic leaked into the other bucket: %+v", other)
	}
}
