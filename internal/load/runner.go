package load

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options override a scenario's pacing defaults at run time (CLI flags).
// Zero values defer to the scenario, then to package defaults.
type Options struct {
	// Duration is the measured window (default 5s).
	Duration time.Duration
	// Clients overrides closed-loop concurrency.
	Clients int
	// Rate overrides the open-loop arrival rate (req/s).
	Rate float64
	// Seed overrides the scenario seed.
	Seed uint64
	// Class overrides the class of the scenario's primary request stream
	// (the batch storm of a colocation scenario keeps its own class).
	// Nil leaves each variant's declared class alone.
	Class *admit.Class
}

const (
	defaultDuration = 5 * time.Second
	defaultClients  = 4
	defaultRate     = 200
	// maxOpenRequests caps an open-loop trace so a fat-fingered rate
	// cannot pre-materialize an unbounded trace.
	maxOpenRequests = 200000
	// sampleCap is the latency reservoir capacity: large enough that
	// short CI runs stay exact (percentiles are sampled beyond it).
	sampleCap = 1 << 15
)

// classRec accumulates one class's (or one tenant's) measurements.
type classRec struct {
	rec      *stats.LatencyRecorder
	requests atomic.Int64
	errs     atomic.Int64
	hits     atomic.Int64
	shared   atomic.Int64
}

// foldRec folds one record's books into report metrics over the
// achieved window.
func foldRec(cr *classRec, elapsed time.Duration) ClassMetrics {
	r := cr.requests.Load()
	e := cr.errs.Load()
	ok := r - e
	snap := cr.rec.Snapshot()
	cm := ClassMetrics{
		Requests:        r,
		Errors:          e,
		DurationSeconds: elapsed.Seconds(),
		Latency: Latency{
			Mean: snap.Mean, P50: snap.P50, P95: snap.P95,
			P99: snap.P99, P999: snap.P999, Min: snap.Min, Max: snap.Max,
		},
	}
	if elapsed > 0 {
		cm.ThroughputRPS = float64(ok) / elapsed.Seconds()
	}
	if r > 0 {
		cm.ErrorRate = float64(e) / float64(r)
	}
	if ok > 0 {
		cm.CacheHitRatio = float64(cr.hits.Load()) / float64(ok)
		cm.DedupRatio = float64(cr.shared.Load()) / float64(ok)
	}
	return cm
}

// Run executes one scenario against the target and returns the measured
// report (Git is left for the caller to stamp). Warmup requests run
// before the measured window and are excluded from every metric. When
// the scenario couples a BatchStorm, its batch-class clients hammer the
// target for the same window and the report's PerClass section splits
// every metric by class — the top-level Metrics stay the cross-class
// aggregate. A Schedule drives open-loop arrivals through its ramps and
// steps instead of a constant rate; Tenants adds per-tenant closed-loop
// client groups, per-tenant books, and Jain's fairness index.
func Run(tgt Target, sc Scenario, opt Options) (Report, error) {
	if len(sc.Variants) == 0 && len(sc.Tenants) == 0 {
		return Report{}, fmt.Errorf("load: scenario %q has no variants", sc.Name)
	}
	if len(sc.Tenants) > 0 && sc.Mode != ClosedLoop {
		return Report{}, fmt.Errorf("load: scenario %q: tenant mixes need closed-loop pacing", sc.Name)
	}
	if sc.Schedule != nil {
		if sc.Mode != OpenLoop {
			return Report{}, fmt.Errorf("load: scenario %q: a rate schedule needs open-loop pacing", sc.Name)
		}
		if err := sc.Schedule.Validate(); err != nil {
			return Report{}, fmt.Errorf("load: scenario %q: bad schedule: %v", sc.Name, err)
		}
	}
	seenTenant := make(map[string]bool, len(sc.Tenants))
	for _, tm := range sc.Tenants {
		if tm.Name == "" || len(tm.Variants) == 0 {
			return Report{}, fmt.Errorf("load: scenario %q: every tenant mix needs a name and variants", sc.Name)
		}
		if seenTenant[tm.Name] {
			return Report{}, fmt.Errorf("load: scenario %q: duplicate tenant %q", sc.Name, tm.Name)
		}
		seenTenant[tm.Name] = true
	}
	// The measured window: an explicit -duration wins (a schedule is
	// stretched or compressed to fit it); otherwise a schedule runs its
	// natural span, and everything else gets the package default.
	duration := opt.Duration
	sched := workload.RateSchedule{}
	if sc.Schedule != nil {
		sched = *sc.Schedule
		if duration > 0 {
			sched = sched.ScaledTo(duration.Seconds())
		} else {
			duration = time.Duration(sched.Duration() * float64(time.Second))
		}
	}
	if duration <= 0 {
		duration = defaultDuration
	}
	clients := opt.Clients
	if clients <= 0 {
		clients = sc.Clients
	}
	if clients <= 0 {
		clients = defaultClients
	}
	rate := opt.Rate
	if rate <= 0 {
		rate = sc.Rate
	}
	if rate <= 0 {
		rate = defaultRate
	}
	seed := opt.Seed
	if seed == 0 {
		seed = sc.Seed
	}
	if seed == 0 {
		seed = 1
	}
	if opt.Class != nil {
		forced := make([]Variant, len(sc.Variants))
		copy(forced, sc.Variants)
		for i := range forced {
			forced[i].Class = *opt.Class
		}
		sc.Variants = forced
	}

	// A reset that cannot be applied (HTTP targets) is recorded as such,
	// so a "cold" artifact measured against a warm daemon is
	// distinguishable from a genuinely cold run.
	resetApplied := false
	if sc.Reset {
		if r, ok := tgt.(Resetter); ok {
			r.ResetCache()
			resetApplied = true
		}
	}
	if sc.Warm {
		for _, v := range sc.Variants {
			if _, err := tgt.Do(v); err != nil {
				return Report{}, fmt.Errorf("load: warmup %s: %w", v, err)
			}
		}
		// Tenant warmup carries the tenant identity too: an engine keeping
		// per-tenant books must not see warmup as anonymous traffic.
		for _, tm := range sc.Tenants {
			for _, v := range tm.Variants {
				v.Tenant = tm.Name
				if _, err := tgt.Do(v); err != nil {
					return Report{}, fmt.Errorf("load: warmup %s (tenant %s): %w", v, tm.Name, err)
				}
			}
		}
	}

	recs := make(map[admit.Class]*classRec, 2)
	for i, c := range admit.Classes() {
		recs[c] = &classRec{rec: stats.NewLatencyRecorder(sampleCap, seed+uint64(i))}
	}
	// Per-tenant books mirror the per-class ones. The map is fully
	// populated here, before any client goroutine starts, and only read
	// afterwards — tenant identities come from the scenario, never from
	// responses, so the book set is bounded by config.
	tenantRecs := make(map[string]*classRec, len(sc.Tenants))
	for i, tm := range sc.Tenants {
		tenantRecs[tm.Name] = &classRec{rec: stats.NewLatencyRecorder(sampleCap, seed+200+uint64(i))}
	}
	agg := stats.NewLatencyRecorder(sampleCap, seed+100)

	// Capture the target's control-plane event timeline over the measured
	// window: everything recorded after this cursor lands in the report
	// (controller decisions, sheds, ejections). Warmup noise is excluded
	// because the cursor is taken after warmup.
	var evRing *obs.Events
	var evSince uint64
	if es, ok := tgt.(EventSource); ok {
		if ev := es.Events(); ev != nil {
			evRing, evSince = ev, ev.Total()
		}
	}

	// measure issues one request, timing it from started (the scheduled
	// arrival in open loop, the send in closed loop) into the variant's
	// class bucket and the cross-class aggregate. Failed requests count
	// toward the class error rate but not its latency distribution.
	measure := func(v Variant, started time.Time) bool {
		cr := recs[v.Class]
		tr := tenantRecs[v.Tenant]
		out, err := tgt.Do(v)
		cr.requests.Add(1)
		if tr != nil {
			tr.requests.Add(1)
		}
		if err != nil {
			cr.errs.Add(1)
			if tr != nil {
				tr.errs.Add(1)
			}
			return false
		}
		lat := time.Since(started).Seconds()
		cr.rec.Observe(lat)
		agg.Observe(lat)
		if tr != nil {
			tr.rec.Observe(lat)
		}
		if out.CacheHit {
			cr.hits.Add(1)
			if tr != nil {
				tr.hits.Add(1)
			}
		}
		if out.Shared {
			cr.shared.Add(1)
			if tr != nil {
				tr.shared.Add(1)
			}
		}
		return true
	}

	// Bracket the measured window with allocator snapshots: the Mallocs
	// delta divided by requests is the run's allocs-per-request figure —
	// the metric the CI allocs gate ratchets. The bracket excludes warmup
	// (above) and calibration (taken after the post-window snapshot), but
	// includes the generator's own per-request overhead: the gate bounds
	// the whole measured loop, which is exactly what throughput runs on.
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)

	t0 := time.Now()

	// The colocated batch storm: closed-loop batch-class clients cycling
	// the storm catalog for the same measured window.
	var stormWG sync.WaitGroup
	if sc.Batch != nil && len(sc.Batch.Variants) > 0 {
		bclients := sc.Batch.Clients
		if bclients <= 0 {
			bclients = 8
		}
		deadline := t0.Add(duration)
		var next atomic.Int64
		for c := 0; c < bclients; c++ {
			stormWG.Add(1)
			go func() {
				defer stormWG.Done()
				for time.Now().Before(deadline) {
					v := sc.Batch.Variants[int((next.Add(1)-1)%int64(len(sc.Batch.Variants)))]
					measure(v, time.Now())
				}
			}()
		}
	}

	// Tenant client groups: each mix drives its own closed-loop clients
	// over its own catalog, every request stamped with the tenant
	// identity. A failed request (most often a shed under contention)
	// backs the client off briefly so a fail-fast shed storm measures
	// the target's refusal policy instead of a retry busy-loop.
	var tenantWG sync.WaitGroup
	if len(sc.Tenants) > 0 {
		deadline := t0.Add(duration)
		for ti, tm := range sc.Tenants {
			tclients := tm.Clients
			if tclients <= 0 {
				tclients = 2
			}
			next := &atomic.Int64{}
			for c := 0; c < tclients; c++ {
				tenantWG.Add(1)
				go func(ti, c int, tm TenantMix, next *atomic.Int64) {
					defer tenantWG.Done()
					var z *stats.Zipf
					var rng *stats.RNG
					if tm.Skew > 0 && len(tm.Variants) > 1 {
						z = stats.NewZipf(len(tm.Variants), tm.Skew)
						rng = stats.NewRNG(seed + uint64(ti)*2000003 + uint64(c)*1000003 + 1)
					}
					for time.Now().Before(deadline) {
						var v Variant
						if z != nil {
							v = tm.Variants[z.Rank(rng)-1]
						} else {
							v = tm.Variants[int((next.Add(1)-1)%int64(len(tm.Variants)))]
						}
						v.Tenant = tm.Name
						if !measure(v, time.Now()) {
							time.Sleep(200 * time.Microsecond)
						}
					}
				}(ti, c, tm, next)
			}
		}
	}

	switch sc.Mode {
	case OpenLoop:
		n := maxOpenRequests
		if sc.Schedule == nil {
			n = int(rate * duration.Seconds())
			if n < 1 {
				n = 1
			}
			if n > maxOpenRequests {
				n = maxOpenRequests
			}
		}
		// Service demand is the target's to determine, so the trace's
		// service distribution is irrelevant — only arrivals and keys are
		// replayed. Skew 0 keeps the same round-robin contract as closed
		// loop: Poisson arrivals, but variants cycle in order so a grid
		// catalog gets full coverage.
		rng := stats.NewRNG(seed)
		var trace workload.RequestTrace
		var idx []int
		if sc.Schedule != nil {
			trace = workload.ScheduledZipfTrace(sched, n, len(sc.Variants), sc.Skew, sc.Churn, rng)
			idx = trace.Assignments(len(sc.Variants))
		} else if sc.Skew > 0 {
			trace = workload.ZipfTrace(n, rate, stats.Constant{V: 0},
				len(sc.Variants), sc.Skew, rng)
			idx = trace.Assignments(len(sc.Variants))
		} else {
			trace = workload.PoissonTrace(n, rate, stats.Constant{V: 0}, rng)
			idx = make([]int, len(trace))
			for i := range idx {
				idx[i] = i % len(sc.Variants)
			}
		}
		var wg sync.WaitGroup
		for i, rq := range trace {
			due := t0.Add(time.Duration(rq.Arrival * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
			v := sc.Variants[idx[i]]
			wg.Add(1)
			go func() {
				defer wg.Done()
				measure(v, due)
			}()
		}
		wg.Wait()
	case ClosedLoop:
		deadline := t0.Add(duration)
		var next atomic.Int64
		var wg sync.WaitGroup
		if len(sc.Variants) == 0 {
			clients = 0 // tenant groups carry the whole scenario
		}
		for c := 0; c < clients; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Skewed scenarios give each client its own Zipf stream
				// (deterministic per seed+client); skew 0 round-robins a
				// shared counter so every variant is touched in order.
				var z *stats.Zipf
				var rng *stats.RNG
				if sc.Skew > 0 && len(sc.Variants) > 1 {
					z = stats.NewZipf(len(sc.Variants), sc.Skew)
					rng = stats.NewRNG(seed + uint64(c)*1000003 + 1)
				}
				for time.Now().Before(deadline) {
					var v Variant
					if z != nil {
						v = sc.Variants[z.Rank(rng)-1]
					} else {
						v = sc.Variants[int((next.Add(1)-1)%int64(len(sc.Variants)))]
					}
					measure(v, time.Now())
				}
			}()
		}
		wg.Wait()
	default:
		return Report{}, fmt.Errorf("load: scenario %q has unknown mode %v", sc.Name, sc.Mode)
	}
	stormWG.Wait()
	tenantWG.Wait()
	elapsed := time.Since(t0)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	// Fold per-class books into class metrics plus a cross-class
	// aggregate (the top-level Metrics every existing consumer reads).
	var req, errCount, hits, shared int64
	perClass := make(map[string]ClassMetrics, len(recs))
	for _, c := range admit.Classes() {
		cr := recs[c]
		r := cr.requests.Load()
		if r == 0 {
			continue
		}
		perClass[c.String()] = foldRec(cr, elapsed)
		req += r
		errCount += cr.errs.Load()
		hits += cr.hits.Load()
		shared += cr.shared.Load()
	}
	// Per-tenant books fold the same way; fairness is Jain's index over
	// each tenant's success ratio (successful/issued) — demand-
	// normalized, so a 10:1 offered-load skew served without
	// discrimination still scores ~1, while a starved tenant (its
	// requests shed while others' succeed) drags the index down.
	var perTenant map[string]ClassMetrics
	fairness := 0.0
	if len(sc.Tenants) > 0 {
		perTenant = make(map[string]ClassMetrics, len(sc.Tenants))
		ratios := make([]float64, 0, len(sc.Tenants))
		for _, tm := range sc.Tenants {
			tr := tenantRecs[tm.Name]
			r := tr.requests.Load()
			if r == 0 {
				continue
			}
			perTenant[tm.Name] = foldRec(tr, elapsed)
			ratios = append(ratios, float64(r-tr.errs.Load())/float64(r))
		}
		fairness = stats.JainFairness(ratios)
	}
	snap := agg.Snapshot()

	ok := req - errCount
	m := Metrics{
		Requests:        req,
		Errors:          errCount,
		DurationSeconds: elapsed.Seconds(),
		Latency: Latency{
			Mean: snap.Mean, P50: snap.P50, P95: snap.P95,
			P99: snap.P99, P999: snap.P999, Min: snap.Min, Max: snap.Max,
		},
		PerClass:      perClass,
		PerTenant:     perTenant,
		FairnessIndex: fairness,
	}
	if elapsed > 0 {
		m.ThroughputRPS = float64(ok) / elapsed.Seconds()
	}
	if req > 0 {
		m.ErrorRate = float64(errCount) / float64(req)
	}
	if ok > 0 {
		m.CacheHitRatio = float64(hits) / float64(ok)
		m.DedupRatio = float64(shared) / float64(ok)
	}
	if req > 0 {
		m.AllocsPerRequest = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(req)
	}
	// Calibrate at the run's own concurrency: closed-loop throughput
	// scales with clients (up to the core count), open-loop fan-out with
	// whatever the scheduler gives it, and the calibration figure must
	// scale the same way for Compare's normalization to cancel hardware.
	// Record only the pacing knob the mode actually used: clients is
	// meaningless in open loop (one goroutine per in-flight arrival) and
	// rate in closed loop.
	calPar := clients
	cfgClients, cfgRate := clients, 0.0
	if sc.Mode == OpenLoop {
		calPar = runtime.GOMAXPROCS(0)
		cfgClients, cfgRate = 0, rate
	}
	nVariants := len(sc.Variants)
	cfgSchedule := ""
	if sc.Schedule != nil {
		cfgSchedule = sched.String() // the schedule as run, after scaling
		cfgRate = 0                  // the schedule is the rate
	}
	var cfgTenants []string
	for _, tm := range sc.Tenants {
		cfgTenants = append(cfgTenants, tm.Name)
		nVariants += len(tm.Variants)
	}
	var events []obs.Event
	if evRing != nil {
		events = evRing.Since(evSince)
	}
	return Report{
		Schema:         SchemaVersion,
		Scenario:       sc.Name,
		GoVersion:      runtime.Version(),
		CalibrationBPS: Calibrate(calPar),
		Events:         events,
		Config: Config{
			Target:          tgt.Name(),
			Mode:            sc.Mode.String(),
			DurationSeconds: duration.Seconds(),
			Clients:         cfgClients,
			Rate:            cfgRate,
			Skew:            sc.Skew,
			Schedule:        cfgSchedule,
			Churn:           sc.Churn,
			Tenants:         cfgTenants,
			Seed:            seed,
			Variants:        nVariants,
			Warm:            sc.Warm,
			Reset:           resetApplied,
			Cores:           runtime.GOMAXPROCS(0),
		},
		Metrics: m,
	}, nil
}

// calSink publishes Calibrate's hash accumulator so the calibration loop
// cannot be dead-code-eliminated.
var calSink atomic.Uint64

// Calibrate measures this machine's aggregate hash throughput (bytes/s
// over a fixed FNV-1a loop) at the given concurrency. Reports embed the
// figure measured at the run's own concurrency, so Compare's normalized
// throughput cancels both per-core speed and core count — a 4-vCPU CI
// runner and a 16-core workstation judge the same code change the same
// way, which is what keeps the committed baseline meaningful across
// machines. Each round runs `parallelism` goroutines for a short window;
// the best round wins, so a background-noise stall in one window cannot
// understate the machine.
func Calibrate(parallelism int) float64 {
	if parallelism < 1 {
		parallelism = 1
	}
	const (
		rounds = 3
		window = 30 * time.Millisecond
	)
	best := 0.0
	for r := 0; r < rounds; r++ {
		var total atomic.Int64
		var wg sync.WaitGroup
		t0 := time.Now()
		for g := 0; g < parallelism; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]byte, 4096)
				for i := range buf {
					buf[i] = byte(i * 31)
				}
				var sink uint64
				hashed := 0
				for time.Since(t0) < window {
					for i := 0; i < 16; i++ {
						sink ^= fnv1a(buf)
						hashed += len(buf)
					}
				}
				calSink.Store(sink)
				total.Add(int64(hashed))
			}()
		}
		wg.Wait()
		if bps := float64(total.Load()) / time.Since(t0).Seconds(); bps > best {
			best = bps
		}
	}
	return best
}

// fnv1a is the calibration hash (FNV-1a over the buffer).
func fnv1a(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}
