package load

// The observability plane's colocation acceptance: run the real QoS
// feedback loop (qos.Supervisor over serve.Engine) through a latency
// storm and verify FROM THE RECORDED EVENT TIMELINE — the same stream
// /events and BENCH artifacts expose — that the controller halves the
// batch rate while the interactive p99 is violating and restores at
// least 80% of the pre-storm batch rate within 5 seconds of storm end.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/serve"
	"repro/internal/stats"
)

func TestColocationControllerRecoversBatchRateAfterStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second feedback-loop experiment; skipped in -short")
	}

	// Interactive service time is the storm dial: 1ms when calm (far
	// inside the 20ms SLO), 40ms during the storm (double the SLO, so
	// every supervisor tick sees a deterministic violation).
	const (
		slo      = 20 * time.Millisecond
		calmLat  = time.Millisecond
		stormLat = 40 * time.Millisecond
	)
	var interactiveLat atomic.Int64
	interactiveLat.Store(int64(calmLat))

	eng := serve.NewEngine(serve.Config{
		Shards:  8,
		Workers: 8,
		Queue:   64,
		RunnerWith: func(ctx context.Context, id string, _ core.Params) (core.Result, error) {
			d := 500 * time.Microsecond // batch keys
			if id[0] == 'i' {
				d = time.Duration(interactiveLat.Load())
			}
			select {
			case <-ctx.Done():
				return core.Result{}, ctx.Err()
			case <-time.After(d):
			}
			return core.Result{Findings: []string{"served " + id}}, nil
		},
	})
	defer eng.Close()

	sup := &qos.Supervisor{
		Ctrl:       qos.NewRateController(slo.Seconds(), 256, 1, 2048),
		Window:     func() stats.LatencySnapshot { return eng.TakeClassWindow(admit.Interactive) },
		Apply:      eng.SetBatchRate,
		Events:     eng.Events(),
		Interval:   50 * time.Millisecond,
		MinSamples: 4,
	}
	eng.SetBatchRate(sup.Ctrl.Rate())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sup.Run(ctx)

	// The colocation workload: 6 interactive clients over unique cold
	// keys (so every sample costs the dialed service time) plus 2 batch
	// clients riding the token bucket the controller is steering.
	var wg sync.WaitGroup
	var seq atomic.Int64
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				id := fmt.Sprintf("i%08d", seq.Add(1))
				ictx := admit.WithClass(ctx, admit.Interactive)
				_, _ = eng.ServeWith(ictx, id, core.Params{})
			}
		}()
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				id := fmt.Sprintf("b%08d", seq.Add(1))
				bctx, bcancel := context.WithTimeout(admit.WithClass(ctx, admit.Batch), 250*time.Millisecond)
				_, err := eng.ServeWith(bctx, id, core.Params{})
				bcancel()
				// Pace the storm-side client: a throttled batch request sheds
				// instantly, and a busy-loop of sheds would flood the event
				// ring and evict the controller timeline under test.
				if err != nil {
					select {
					case <-ctx.Done():
					case <-time.After(100 * time.Millisecond):
					}
				}
			}
		}()
	}
	defer wg.Wait()
	defer cancel()

	// Phase 1 — calm: let the controller reclaim toward its ceiling.
	time.Sleep(400 * time.Millisecond)
	preRate := eng.BatchRate()
	if preRate <= 0 {
		t.Fatalf("pre-storm batch rate %g; controller never engaged", preRate)
	}

	// Phase 2 — storm: interactive p99 jumps to 2x the SLO.
	stormStart := time.Now()
	interactiveLat.Store(int64(stormLat))
	time.Sleep(450 * time.Millisecond)

	// Phase 3 — storm ends; the controller must give batch its rate back.
	stormEnd := time.Now()
	interactiveLat.Store(int64(calmLat))
	target := 0.8 * preRate
	deadline := stormEnd.Add(5 * time.Second)
	for time.Now().Before(deadline) && eng.BatchRate() < target {
		time.Sleep(25 * time.Millisecond)
	}

	// The verdict comes from the recorded event timeline, not from
	// engine internals: that is the contract BENCH artifacts and the
	// /events API rely on.
	events := eng.Events().Since(0)
	var halvesDuringStorm int
	var stormFloor = preRate
	var recoveredAt time.Time
	for _, ev := range events {
		if ev.Type != obs.EventController {
			continue
		}
		at := time.Unix(0, ev.TimeUnixNano)
		switch {
		case ev.Labels["action"] == "halve" && at.After(stormStart):
			halvesDuringStorm++
			if r := ev.Data["rate_after"]; r < stormFloor {
				stormFloor = r
			}
		case at.After(stormEnd) && ev.Data["rate_after"] >= target:
			if recoveredAt.IsZero() {
				recoveredAt = at
			}
		}
	}
	t.Logf("pre-storm rate %.0f tokens/s; %d halves during storm (floor %.1f); recovery target %.0f",
		preRate, halvesDuringStorm, stormFloor, target)

	if halvesDuringStorm == 0 {
		t.Fatalf("no halve decisions recorded during the storm; %d controller events total", len(events))
	}
	if stormFloor >= preRate {
		t.Fatalf("storm never reduced the batch rate below its pre-storm value %.0f", preRate)
	}
	if recoveredAt.IsZero() {
		t.Fatalf("event timeline never shows the batch rate recovering to %.0f (80%% of pre-storm %.0f); final rate %.1f",
			target, preRate, eng.BatchRate())
	}
	if rec := recoveredAt.Sub(stormEnd); rec > 5*time.Second {
		t.Fatalf("controller took %v to restore 80%% of the pre-storm batch rate (limit 5s)", rec)
	} else {
		t.Logf("restored %.0f%% of pre-storm batch rate %v after storm end", 100*target/preRate, rec)
	}
}
