package load

// Acceptance test for latency-aware routing (the degraded-replica
// scenario): a 3-replica cluster with one replica injected 25x slower
// must keep routed p99 within 2x of the all-healthy baseline — hedged
// backups and scoreboard demotion route around the straggler — while
// issuing zero duplicate executions (every hedge and demoted request is
// a cache hit on a pre-warmed sibling) and preserving each engine's
// per-class conservation law.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/router"
	"repro/internal/serve"
)

// p99 returns the exact 99th percentile of the observed durations.
func p99(durations []time.Duration) time.Duration {
	s := append([]time.Duration(nil), durations...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(0.99*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

func TestDegradedReplicaHedgingHoldsP99(t *testing.T) {
	const (
		replicas    = 3
		keys        = 40
		baseLatency = 2 * time.Millisecond // every replica: an ms-scale baseline robust to scheduler noise
		slowLatency = 50 * time.Millisecond
	)
	engines := make([]*serve.Engine, replicas)
	faults := make([]*router.FaultBackend, replicas)
	backends := make([]router.Backend, replicas)
	for i := range engines {
		engines[i] = serve.NewEngine(serve.Config{Shards: 8, Workers: 4,
			RunnerWith: func(ctx context.Context, id string, p core.Params) (core.Result, error) {
				return core.Result{Findings: []string{"ok " + id}}, nil
			}})
		defer engines[i].Close()
		faults[i] = router.NewFaultBackend(router.NewEngineBackend(engines[i], fmt.Sprintf("engine[%d]", i)))
		faults[i].Degrade(baseLatency)
		backends[i] = faults[i]
	}
	rt, err := router.New(backends, router.Config{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}

	ids := make([]string, keys)
	for i := range ids {
		ids[i] = fmt.Sprintf("DK%d", i)
	}
	// Warm every key on EVERY engine directly (bypassing the router): a
	// hedged backup or demoted request landing on a non-owner must be a
	// cache hit, so the measured window can assert zero executions — the
	// "hedges never double-execute" criterion in its strongest form.
	for _, eng := range engines {
		for _, id := range ids {
			if _, err := eng.ServeWith(context.Background(), id, nil); err != nil {
				t.Fatalf("warm: %v", err)
			}
		}
	}

	pass := func() []time.Duration {
		out := make([]time.Duration, 0, len(ids))
		for _, id := range ids {
			t0 := time.Now()
			if _, err := rt.ServeWith(context.Background(), id, nil); err != nil {
				t.Fatalf("routed %s: %v", id, err)
			}
			out = append(out, time.Since(t0))
		}
		return out
	}

	// Baseline: the first passes warm the scoreboards past hedgeWarmup,
	// then the measured passes capture all-healthy latencies.
	for i := 0; i < 3; i++ {
		pass()
	}
	var base []time.Duration
	for i := 0; i < 5; i++ {
		base = append(base, pass()...)
	}
	p99Base := p99(base)

	// Degrade one replica. Settle passes give the hedging loop room to
	// observe the straggler (abandoned-attempt lower bounds push its
	// EWMA up) and the scoreboard room to demote it.
	faults[0].Degrade(slowLatency)
	for i := 0; i < 4; i++ {
		pass()
	}

	execBefore := int64(0)
	for _, eng := range engines {
		execBefore += eng.Executions()
	}
	hedgesBefore := rt.Metrics().Hedges

	var degraded []time.Duration
	for i := 0; i < 10; i++ {
		degraded = append(degraded, pass()...)
	}
	p99Deg := p99(degraded)

	m := rt.Metrics()
	if hedges := m.Hedges - hedgesBefore; hedges == 0 && m.Hedges == 0 {
		t.Fatal("no hedges were ever issued against the degraded replica")
	}
	if p99Deg > 2*p99Base {
		t.Fatalf("degraded p99 %v exceeds 2x the healthy baseline p99 %v (hedging failed to contain the straggler)",
			p99Deg, p99Base)
	}
	execAfter := int64(0)
	for _, eng := range engines {
		execAfter += eng.Executions()
	}
	if execAfter != execBefore {
		t.Fatalf("measured window executed %d experiments; every hedged or demoted request must be a warm cache hit",
			execAfter-execBefore)
	}
	// Conservation per engine per class: hedges are extra backend
	// attempts, and each one must still balance the books of whichever
	// engine absorbed it.
	for i, eng := range engines {
		em := eng.Metrics()
		for class, cm := range em.Classes {
			sum := cm.CacheHits + cm.Deduped + cm.Sheds + cm.Executions
			if sum != cm.Requests {
				t.Fatalf("engine[%d] class %s: hits %d + deduped %d + sheds %d + executions %d = %d != requests %d",
					i, class, cm.CacheHits, cm.Deduped, cm.Sheds, cm.Executions, sum, cm.Requests)
			}
		}
	}
}
