// Package load is the toolkit's self-measuring load-generation subsystem:
// it replays open-loop (PoissonTrace-driven, arrival-faithful) and
// closed-loop (N concurrent clients) request streams against an
// experiment-serving target — the in-process serve.Engine or a live
// arch21d HTTP endpoint — using Zipf-keyed experiment/parameter mixes
// built from internal/workload so cache hit ratios are realistic. Each run
// records per-request latency into stats.LatencyRecorder and serializes a
// versioned Report (the repo's BENCH_*.json perf-trajectory artifact):
// achieved throughput, p50/p95/p99/p999, error rate, cache hit and dedup
// ratios, plus a machine calibration figure so Compare can check two
// reports from different hardware against a regression tolerance — the
// closed-loop evaluation infrastructure the paper's agenda calls for,
// applied to the serving stack itself and gated in CI.
package load

import (
	"fmt"
	"strings"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Variant is one distinct request the generator can issue: an experiment
// ID plus a (possibly nil) parameter assignment, issued under a QoS
// class. Distinct (ID, params) pairs hit distinct cache keys in the
// serving engine.
type Variant struct {
	// ID is the experiment to request.
	ID string
	// Params is the parameter assignment (nil for defaults).
	Params core.Params
	// Class is the request class the variant is issued under (zero value
	// admit.Interactive). The target carries it to the scheduler — as a
	// context tag in-process, as X-Arch21-Class over HTTP.
	Class admit.Class
	// Tenant is the tenant identity the variant is issued under (empty
	// for untenanted traffic). Carried like Class — context tag
	// in-process, X-Arch21-Tenant over HTTP — and stamped by the runner
	// from the owning TenantMix in multi-tenant scenarios.
	Tenant string
}

// String renders the variant like an engine cache key ("E7?bces=64&f=0.9";
// bare ID for default assignments).
func (v Variant) String() string {
	as := v.Params.Assignments()
	if len(as) == 0 {
		return v.ID
	}
	return v.ID + "?" + strings.Join(as, "&")
}

// Mode selects how the generator paces requests.
type Mode uint8

const (
	// ClosedLoop runs N clients in think-time-free loops: each client
	// issues its next request as soon as the previous one completes, so
	// offered load adapts to the target (a saturation probe).
	ClosedLoop Mode = iota
	// OpenLoop replays a Poisson arrival trace faithfully: requests fire
	// at their scheduled arrival times regardless of completions, and
	// latency is measured from the scheduled arrival — generator lag and
	// queueing count against the target (no coordinated omission).
	OpenLoop
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ClosedLoop:
		return "closed"
	case OpenLoop:
		return "open"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Scenario is one named load shape from the catalog.
type Scenario struct {
	// Name identifies the scenario (the -scenario flag and Report key).
	Name string
	// Doc is a one-line description.
	Doc string
	// Mode is the pacing discipline.
	Mode Mode
	// Variants is the request catalog, hottest first: under a Zipf skew,
	// Variants[0] receives the most traffic.
	Variants []Variant
	// Skew is the Zipf exponent over Variants. Zero means strict
	// round-robin cycling (every variant touched equally, in order) —
	// what the cold-grid scenarios use to guarantee full coverage.
	Skew float64
	// Rate is the default open-loop arrival rate (req/s).
	Rate float64
	// Clients is the default closed-loop concurrency.
	Clients int
	// Warm pre-touches every variant once before the measured window, so
	// the run measures the steady (warm-cache) state.
	Warm bool
	// Reset drops the target's cache before the run (engine targets
	// only), so the run measures cold/compulsory-miss behavior.
	Reset bool
	// Seed drives trace generation and client key draws.
	Seed uint64
	// Schedule, when set, replaces the constant open-loop Rate with a
	// piecewise rate schedule: arrivals follow its ramps and steps (a
	// non-homogeneous Poisson process), the default duration becomes the
	// schedule's natural span, and an explicit -duration stretches or
	// compresses the schedule to fit (shape preserved). Open loop only.
	Schedule *workload.RateSchedule
	// Churn permutes the Zipf rank→variant mapping at every Schedule
	// segment boundary, so a regime change moves the hot set as well as
	// the rate.
	Churn bool
	// Tenants, when non-empty, makes the scenario multi-tenant: each mix
	// runs its own closed-loop client group over its own catalog, every
	// request stamped with the tenant identity, and the report carries
	// per-tenant books plus Jain's fairness index. Closed loop only;
	// Variants may be empty when Tenants is set.
	Tenants []TenantMix
	// Batch, when set, couples the scenario with a concurrent batch-class
	// storm: closed-loop clients hammering Batch.Variants for the same
	// measured window, recorded separately so the report splits latency
	// per class — the colocation experiment that proves (or disproves)
	// that batch pressure moves interactive tail latency.
	Batch *BatchStorm
	// Cores, when positive, pins GOMAXPROCS for the run (unless an
	// explicit -maxprocs overrides it), so the scenario measures a fixed
	// parallelism and Compare gates it against baselines from the same
	// core count instead of skipping the throughput check.
	Cores int
}

// BatchStorm is the concurrent batch-class half of a colocation
// scenario: a sweep-shaped flood of grid points issued round-robin by
// closed-loop clients, all tagged admit.Batch.
type BatchStorm struct {
	// Variants is the batch request catalog, cycled round-robin. Their
	// Class is forced to admit.Batch at scenario construction.
	Variants []Variant
	// Clients is the closed-loop batch concurrency (default 8).
	Clients int
}

// TenantMix is one tenant's slice of a multi-tenant scenario: its own
// variant catalog and Zipf skew (the same contract as the scenario-level
// fields) driven by its own closed-loop client group. Offered-load skew
// between tenants is expressed through Clients — a 10-client tenant
// offers 10x the demand of a 1-client tenant.
type TenantMix struct {
	// Name is the tenant identity stamped on every request.
	Name string
	// Variants is the tenant's request catalog, hottest first.
	Variants []Variant
	// Skew is the tenant's Zipf exponent (0 = round-robin).
	Skew float64
	// Clients is the tenant's closed-loop client count (default 2).
	Clients int
}

// gridVariants expands a sweep-style parameter grid ("f=0.9:0.99:0.01")
// into one variant per grid point, reusing the sweep package's
// deterministic axis parsing and row-major expansion so a load scenario's
// request construction matches what POST /sweep would fan out. The
// catalog is static, so malformed axes fail loudly.
func gridVariants(id string, axes ...string) []Variant {
	sp, err := sweep.ParseSpec(id, axes)
	if err != nil {
		panic(fmt.Sprintf("load: bad scenario grid for %s: %v", id, err))
	}
	grid := sp.Grid()
	out := make([]Variant, len(grid))
	for i, p := range grid {
		out[i] = Variant{ID: id, Params: p}
	}
	return out
}

// defaults builds one default-parameter variant per ID.
func defaults(ids ...string) []Variant {
	out := make([]Variant, len(ids))
	for i, id := range ids {
		out[i] = Variant{ID: id}
	}
	return out
}

// Scenarios returns the scenario catalog. Every variant references the
// core registry (a test pins this), and every scenario is deterministic
// for a fixed seed.
func Scenarios() []Scenario {
	warm := append(
		defaults("E7", "E5", "E1", "E2", "E4", "E10", "E14", "E17", "E22", "T1"),
		Variant{ID: "E7", Params: core.Params{"f": 0.9}},
		Variant{ID: "E7", Params: core.Params{"bces": 1024}},
		Variant{ID: "E7", Params: core.Params{"f": 0.99, "bces": 64}},
		Variant{ID: "E5", Params: core.Params{"tile": 1024}},
		Variant{ID: "E5", Params: core.Params{"operands": 6}},
		Variant{ID: "E1", Params: core.Params{"gens": 12}},
	)
	mixed := append(
		defaults("E7", "E5", "E1", "E2", "E14", "E4", "E17", "E10", "E8", "E23", "T2", "E11", "E19"),
		Variant{ID: "E7", Params: core.Params{"f": 0.95}},
		Variant{ID: "E5", Params: core.Params{"tile": 16384}},
		Variant{ID: "E1", Params: core.Params{"gens": 3}},
	)
	coldStorm := append(
		gridVariants("E7", "f=0.9:0.99:0.01", "bces=16,64,256,1024"),
		gridVariants("E5", "operands=1:8:1", "tile=1024,4096,16384")...,
	)
	churn := append(
		gridVariants("E7", "f=0.9:0.99:0.005", "bces=16,64,256,1024,4096"),
		append(
			gridVariants("E5", "operands=1:8:1", "tile=256,1024,4096,16384,65536"),
			gridVariants("E1", "gens=1:12:1")...,
		)...,
	)
	// A wide, cheap key set whose cache keys scatter across a consistent
	// ring: many distinct E7/E1 points plus a band of defaults, so an
	// N-replica router sees every backend take traffic.
	scatter := append(
		gridVariants("E7", "f=0.9:0.99:0.01", "bces=16,64,256,1024"),
		append(
			gridVariants("E1", "gens=1:12:1"),
			defaults("E2", "E4", "E10", "E14", "E17", "E22", "T1")...,
		)...,
	)
	// Colocation: the warm interactive mix under a concurrent batch
	// sweep-storm of cold grid points. With the strict-priority scheduler
	// the interactive per-class p99 must stay flat while batch makes
	// progress; under a SharedFIFO engine the same scenario demonstrates
	// the inversion the scheduler removes.
	batchStorm := asBatch(append(
		gridVariants("E7", "f=0.9:0.99:0.005", "bces=16,64,256,1024,4096"),
		gridVariants("E5", "operands=1:8:1", "tile=256,1024,4096,16384,65536")...,
	))
	// Non-stationary arrival shapes (scaled to -duration when one is
	// given): a day compressed to ten seconds, and a 10x step storm.
	diurnal := workload.MustRateSchedule("60@2s,60:240@2s,240@2s,240:60@2s,60@2s")
	flash := workload.MustRateSchedule("150@2s,1500@1s,150@2s")
	return []Scenario{
		{
			Name: "warm-hammer",
			Doc:  "closed-loop hammer on a small hot set, cache pre-warmed: steady-state hit-path throughput and tail",
			Mode: ClosedLoop, Variants: warm, Skew: 1.1, Clients: 8, Warm: true, Seed: 1,
		},
		{
			Name: "warm-hammer-4c",
			Doc:  "the warm-hammer shape pinned to four cores: multi-core steady-state hit-path scaling, comparable across machines with >= 4 cores",
			Mode: ClosedLoop, Variants: warm, Skew: 1.1, Clients: 8, Warm: true, Seed: 12, Cores: 4,
		},
		{
			Name: "cold-storm",
			Doc:  "closed-loop round-robin over a cold parameter grid: every request a compulsory miss on first pass",
			Mode: ClosedLoop, Variants: coldStorm, Skew: 0, Clients: 8, Reset: true, Seed: 2,
		},
		{
			Name: "mixed-zipf",
			Doc:  "open-loop Poisson arrivals, Zipf-keyed over a mixed cheap/expensive catalog: realistic hit ratio under arrival-faithful load",
			Mode: OpenLoop, Variants: mixed, Skew: 0.9, Rate: 300, Seed: 3,
		},
		{
			Name: "herd",
			Doc:  "thundering herd: many clients demand one cold expensive key at once; singleflight must collapse the stampede",
			Mode: ClosedLoop, Variants: defaults("E9"), Clients: 32, Reset: true, Seed: 4,
		},
		{
			Name: "cluster-scatter",
			Doc:  "closed-loop round-robin over a wide warmed key grid: consistent-hash placement scatters requests across every replica — run against a router (arch21 loadtest -replicas N) to measure routed serving like any single engine",
			Mode: ClosedLoop, Variants: scatter, Skew: 0, Clients: 8, Warm: true, Seed: 6,
		},
		{
			Name: "degraded-replica",
			Doc:  "the cluster-scatter grid against a cluster with one replica injected slow (arch21 loadtest -replicas N -degrade 50ms): the latency scoreboard must hedge around and demote the straggler so routed p99 stays near the all-healthy baseline instead of inheriting the slow replica's tail",
			Mode: ClosedLoop, Variants: scatter, Skew: 0, Clients: 8, Warm: true, Seed: 11,
		},
		{
			Name: "param-churn",
			Doc:  "closed-loop cycling through a large parameter grid: first pass cold, later passes warm — memoization under churn",
			Mode: ClosedLoop, Variants: churn, Skew: 0, Clients: 4, Seed: 5,
		},
		{
			Name: "colocation",
			Doc:  "warm interactive hammer colocated with a concurrent batch sweep-storm: per-class report proves batch pressure is not moving interactive p99",
			Mode: ClosedLoop, Variants: warm, Skew: 1.1, Clients: 8, Warm: true, Seed: 7,
			Batch: &BatchStorm{Variants: batchStorm, Clients: 8},
		},
		{
			Name: "diurnal",
			Doc:  "open-loop trough-peak-trough rate ramp over the mixed catalog with Zipf churn at segment boundaries: the admission scheduler and -lc-slo controller through a regime change, not steady state",
			Mode: OpenLoop, Variants: mixed, Skew: 0.9, Schedule: &diurnal, Churn: true, Seed: 8,
		},
		{
			Name: "flash-crowd",
			Doc:  "open-loop 10x step storm over the warmed hot set with churn: arrivals overrun capacity for one segment, then fall back — the token bucket and controller must absorb the step and recover after it ends",
			Mode: OpenLoop, Variants: warm, Skew: 1.1, Schedule: &flash, Churn: true, Warm: true, Seed: 9,
		},
		{
			Name: "multi-tenant",
			Doc:  "three closed-loop tenants with distinct Zipf mixes, classes, and a 10:1 offered-load skew (anchor 10 clients vs tail 1): per-tenant books and Jain's fairness index land in the report",
			Mode: ClosedLoop, Warm: true, Seed: 10,
			Tenants: []TenantMix{
				{Name: "anchor", Variants: warm, Skew: 1.1, Clients: 10},
				{Name: "tail", Variants: mixed, Skew: 0.9, Clients: 1},
				{Name: "bulk", Variants: asBatch(gridVariants("E1", "gens=1:12:1")), Skew: 0, Clients: 2},
			},
		},
	}
}

// asBatch forces every variant's class to admit.Batch.
func asBatch(vs []Variant) []Variant {
	for i := range vs {
		vs[i].Class = admit.Batch
	}
	return vs
}

// ScenarioByName finds a catalog scenario.
func ScenarioByName(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
