package load

import (
	"path/filepath"
	"strings"
	"testing"
)

// cmpReport builds a baseline-shaped report with the given throughput,
// p99, error rate, and calibration.
func cmpReport(scenario string, rps, p99, errRate, cal float64) Report {
	r := sampleReport(scenario, rps, p99)
	r.Metrics.ErrorRate = errRate
	r.CalibrationBPS = cal
	return r
}

func TestCompareTable(t *testing.T) {
	const tol = 0.25
	cases := []struct {
		name       string
		old, new   []Report
		wantErr    string // substring of the expected error ("" = no error)
		regressed  bool
		regression string // metric expected among regressions
	}{
		{
			name:      "improvement passes",
			old:       []Report{cmpReport("warm-hammer", 1000, 0.002, 0, 1e9)},
			new:       []Report{cmpReport("warm-hammer", 1400, 0.0015, 0, 1e9)},
			regressed: false,
		},
		{
			name:      "regression exactly at tolerance passes",
			old:       []Report{cmpReport("warm-hammer", 1000, 0.002, 0, 1e9)},
			new:       []Report{cmpReport("warm-hammer", 750, 0.002, 0, 1e9)},
			regressed: false,
		},
		{
			name:       "regression over tolerance fails",
			old:        []Report{cmpReport("warm-hammer", 1000, 0.002, 0, 1e9)},
			new:        []Report{cmpReport("warm-hammer", 700, 0.002, 0, 1e9)},
			regressed:  true,
			regression: "throughput_norm",
		},
		{
			name:       "p99 blowup past floor fails",
			old:        []Report{cmpReport("warm-hammer", 1000, 0.002, 0, 1e9)},
			new:        []Report{cmpReport("warm-hammer", 1000, 0.02, 0, 1e9)},
			regressed:  true,
			regression: "p99",
		},
		{
			name:      "sub-millisecond p99 jitter is not gated",
			old:       []Report{cmpReport("warm-hammer", 1000, 0.00002, 0, 1e9)},
			new:       []Report{cmpReport("warm-hammer", 1000, 0.00009, 0, 1e9)},
			regressed: false,
		},
		{
			name:       "error rate spike fails",
			old:        []Report{cmpReport("warm-hammer", 1000, 0.002, 0, 1e9)},
			new:        []Report{cmpReport("warm-hammer", 1000, 0.002, 0.2, 1e9)},
			regressed:  true,
			regression: "error_rate",
		},
		{
			name: "calibration normalizes across machines",
			// Half the raw throughput on a machine half as fast: no
			// regression once normalized.
			old:       []Report{cmpReport("warm-hammer", 1000, 0.002, 0, 2e9)},
			new:       []Report{cmpReport("warm-hammer", 500, 0.002, 0, 1e9)},
			regressed: false,
		},
		{
			name: "core-count mismatch reports throughput ungated",
			// A 16-core workstation baseline vs a 4-core runner: the
			// contention profiles are incomparable, so the throughput
			// delta informs but cannot fail the gate.
			old: func() []Report {
				r := cmpReport("warm-hammer", 4000, 0.002, 0, 4e9)
				r.Config.Cores = 16
				return []Report{r}
			}(),
			new: func() []Report {
				r := cmpReport("warm-hammer", 500, 0.002, 0, 1e9)
				r.Config.Cores = 4
				return []Report{r}
			}(),
			regressed: false,
		},
		{
			name:    "missing scenario errors",
			old:     []Report{cmpReport("warm-hammer", 1000, 0.002, 0, 1e9)},
			new:     []Report{cmpReport("herd", 1000, 0.002, 0, 1e9)},
			wantErr: "missing",
		},
		{
			name:    "empty baseline errors",
			old:     nil,
			new:     []Report{cmpReport("warm-hammer", 1000, 0.002, 0, 1e9)},
			wantErr: "no baseline",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmp, err := Compare(tc.old, tc.new, tol)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Compare: %v", err)
			}
			if cmp.Regressed() != tc.regressed {
				t.Fatalf("Regressed = %v, want %v (deltas: %+v)",
					cmp.Regressed(), tc.regressed, cmp.Deltas)
			}
			if tc.regression != "" {
				found := false
				for _, d := range cmp.Regressions() {
					if d.Metric == tc.regression {
						found = true
					}
				}
				if !found {
					t.Fatalf("expected %s among regressions, got %+v",
						tc.regression, cmp.Regressions())
				}
			}
			// Every scenario contributes its six deltas.
			if want := 6 * len(tc.old); len(cmp.Deltas) != want {
				t.Fatalf("got %d deltas, want %d", len(cmp.Deltas), want)
			}
		})
	}
}

// allocsReport builds a report with a recorded allocs-per-request figure
// on top of the usual baseline shape.
func allocsReport(scenario string, allocs float64) Report {
	r := cmpReport(scenario, 1000, 0.002, 0, 1e9)
	r.Metrics.AllocsPerRequest = allocs
	return r
}

// The allocs gate is a ratchet: it engages only when the baseline
// carries the figure, and a regression must clear both the fractional
// tolerance and the absolute allocsSlack bar — a near-zero baseline
// doubling from 0.5 to 1 alloc/req is noise, not a regression.
func TestCompareAllocsRatchet(t *testing.T) {
	const tol = 0.25
	cases := []struct {
		name      string
		old, new  float64
		regressed bool
	}{
		{"improvement passes", 40, 4, false},
		{"flat passes", 40, 40, false},
		{"within tolerance passes", 40, 48, false},
		{"over tolerance and slack fails", 40, 55, true},
		// 0.5 → 1.5 is +200% but only +1 absolute: under allocsSlack.
		{"near-zero baseline jitter is not gated", 0.5, 1.5, false},
		// Over tolerance fractionally AND past the absolute bar.
		{"near-zero baseline real regression fails", 0.5, 12, true},
		// Baseline predates the field: informational only, never gated.
		{"missing baseline figure leaves metric ungated", 0, 500, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmp, err := Compare(
				[]Report{allocsReport("warm-hammer", tc.old)},
				[]Report{allocsReport("warm-hammer", tc.new)}, tol)
			if err != nil {
				t.Fatalf("Compare: %v", err)
			}
			var delta *Delta
			for i := range cmp.Deltas {
				if cmp.Deltas[i].Metric == "allocs_per_request" {
					delta = &cmp.Deltas[i]
				}
			}
			if delta == nil {
				t.Fatalf("no allocs_per_request delta in %+v", cmp.Deltas)
			}
			if delta.Regression != tc.regressed {
				t.Fatalf("allocs regression = %v, want %v (delta %+v)",
					delta.Regression, tc.regressed, *delta)
			}
			if wantGated := tc.old > 0; delta.Gated != wantGated {
				t.Fatalf("allocs gated = %v, want %v", delta.Gated, wantGated)
			}
			if tc.old == 0 && delta.Note == "" {
				t.Fatal("ungated allocs delta should carry an explanatory note")
			}
		})
	}
}

// A baseline whose scenario list is a strict superset of the new run (or
// any old-only scenarios at all) must error naming every missing scenario
// and which side lacks it — not just the first one found.
func TestCompareMissingScenariosAreNamed(t *testing.T) {
	mk := func(names ...string) []Report {
		out := make([]Report, len(names))
		for i, n := range names {
			out[i] = cmpReport(n, 1000, 0.002, 0, 1e9)
		}
		return out
	}
	cases := []struct {
		name        string
		old, new    []string
		wantMissing []string // each must appear in the error
		wantAbsent  []string // each must NOT appear in the error
		ok          bool
	}{
		{
			name: "baseline strict superset names every missing scenario",
			old:  []string{"warm-hammer", "herd", "cluster-scatter"},
			new:  []string{"warm-hammer"},
			wantMissing: []string{
				"herd", "cluster-scatter", "old/baseline",
			},
			wantAbsent: []string{"warm-hammer,"},
		},
		{
			name:        "one missing scenario named",
			old:         []string{"warm-hammer", "herd"},
			new:         []string{"herd"},
			wantMissing: []string{"warm-hammer"},
		},
		{
			name: "new strict superset passes (extra measurements inform only)",
			old:  []string{"warm-hammer"},
			new:  []string{"warm-hammer", "herd", "cluster-scatter"},
			ok:   true,
		},
		{
			name: "identical sets pass",
			old:  []string{"warm-hammer", "herd"},
			new:  []string{"herd", "warm-hammer"},
			ok:   true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compare(mk(tc.old...), mk(tc.new...), 0.25)
			if tc.ok {
				if err != nil {
					t.Fatalf("Compare: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("expected a missing-scenario error")
			}
			for _, want := range tc.wantMissing {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not name %q", err, want)
				}
			}
			for _, absent := range tc.wantAbsent {
				if strings.Contains(err.Error(), absent) {
					t.Errorf("error %q wrongly names %q", err, absent)
				}
			}
		})
	}
}

// A scenario whose two reports disagree on schema version is skipped
// with a named warning, not an error and not a silent pass — the
// migration path when SchemaVersion bumps and the committed baseline
// still carries the old schema.
func TestCompareSchemaMismatchSkipsScenario(t *testing.T) {
	oldStale := cmpReport("warm-hammer", 1000, 0.002, 0, 1e9)
	oldStale.Schema = SchemaVersion - 1
	oldCurrent := cmpReport("cluster-scatter", 400, 0.002, 0, 1e9)
	// The stale-schema scenario regresses hard; the skip must swallow the
	// delta (it is incomparable) while the current-schema scenario still
	// gates normally.
	newBad := cmpReport("warm-hammer", 100, 0.1, 0.5, 1e9)
	newOK := cmpReport("cluster-scatter", 420, 0.002, 0, 1e9)

	cmp, err := Compare([]Report{oldStale, oldCurrent}, []Report{newBad, newOK}, 0.25)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(cmp.Skipped) != 1 {
		t.Fatalf("Skipped = %v, want exactly the stale scenario", cmp.Skipped)
	}
	for _, want := range []string{"warm-hammer", "schema version mismatch", "re-measure"} {
		if !strings.Contains(cmp.Skipped[0], want) {
			t.Errorf("skip warning %q does not contain %q", cmp.Skipped[0], want)
		}
	}
	if cmp.Regressed() {
		t.Fatalf("skipped scenario's deltas leaked into the gate: %+v", cmp.Regressions())
	}
	// Only the comparable scenario contributes deltas.
	for _, d := range cmp.Deltas {
		if d.Scenario != "cluster-scatter" {
			t.Fatalf("delta for skipped scenario %s: %+v", d.Scenario, d)
		}
	}
	if len(cmp.Deltas) != 6 {
		t.Fatalf("got %d deltas for the comparable scenario, want 6", len(cmp.Deltas))
	}

	// Matching-but-stale schemas on both sides still compare: the skip is
	// about disagreement, not about age.
	newStale := cmpReport("warm-hammer", 990, 0.002, 0, 1e9)
	newStale.Schema = SchemaVersion - 1
	cmp2, err := Compare([]Report{oldStale}, []Report{newStale}, 0.25)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(cmp2.Skipped) != 0 || len(cmp2.Deltas) != 6 {
		t.Fatalf("equal-schema reports should compare: skipped=%v deltas=%d",
			cmp2.Skipped, len(cmp2.Deltas))
	}
}

func TestCompareRejectsBadTolerance(t *testing.T) {
	r := []Report{cmpReport("warm-hammer", 1000, 0.002, 0, 1e9)}
	for _, tol := range []float64{0, -1, 1, 2} {
		if _, err := Compare(r, r, tol); err == nil {
			t.Fatalf("tolerance %v accepted", tol)
		}
	}
}

func TestCompareCoresMismatchCarriesNote(t *testing.T) {
	o := cmpReport("warm-hammer", 1000, 0.002, 0, 1e9)
	o.Config.Cores = 1
	n := cmpReport("warm-hammer", 100, 0.002, 0, 1e9)
	n.Config.Cores = 8
	cmp, err := Compare([]Report{o}, []Report{n}, 0.25)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	d := cmp.Deltas[0]
	if d.Metric != "throughput_norm" || d.Gated || d.Regression {
		t.Fatalf("mismatched-cores throughput should be ungated: %+v", d)
	}
	if d.Note == "" {
		t.Fatal("ungated throughput delta should carry an explanatory note")
	}
}

func TestCompareFallsBackToRawThroughput(t *testing.T) {
	old := []Report{cmpReport("warm-hammer", 1000, 0.002, 0, 0)}
	new := []Report{cmpReport("warm-hammer", 900, 0.002, 0, 1e9)}
	cmp, err := Compare(old, new, 0.25)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if cmp.Deltas[0].Metric != "throughput_rps" {
		t.Fatalf("expected raw throughput metric without both calibrations, got %s",
			cmp.Deltas[0].Metric)
	}
	if cmp.Regressed() {
		t.Fatal("10%% drop under 25%% tolerance should pass")
	}
}

func TestCompareChangeIsZeroSafeOnZeroOld(t *testing.T) {
	old := []Report{cmpReport("warm-hammer", 1000, 0.002, 0, 1e9)}
	new := []Report{cmpReport("warm-hammer", 1000, 0.002, 0.5, 1e9)}
	cmp, err := Compare(old, new, 0.25)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	for _, d := range cmp.Deltas {
		if d.Metric == "error_rate" {
			if d.Change != 0 {
				t.Fatalf("change from zero old should be 0, got %v", d.Change)
			}
			if !d.Regression {
				t.Fatal("error-rate spike from zero should still regress")
			}
		}
	}
}

// MergeFile assembles multi-scenario BENCH files: replace same-scenario,
// append new, create missing.
func TestMergeFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	r1 := sampleReport("warm-hammer", 1000, 0.0005)
	if err := MergeFile(path, r1); err != nil {
		t.Fatalf("MergeFile(create): %v", err)
	}
	r2 := sampleReport("cluster-scatter", 400, 0.001)
	if err := MergeFile(path, r2); err != nil {
		t.Fatalf("MergeFile(append): %v", err)
	}
	r1b := sampleReport("warm-hammer", 2000, 0.0004)
	if err := MergeFile(path, r1b); err != nil {
		t.Fatalf("MergeFile(replace): %v", err)
	}
	got, err := ReadReports(path)
	if err != nil || len(got) != 2 {
		t.Fatalf("ReadReports = %d reports, %v; want 2", len(got), err)
	}
	byName := map[string]Report{}
	for _, r := range got {
		byName[r.Scenario] = r
	}
	if byName["warm-hammer"].Metrics.ThroughputRPS != r1b.Metrics.ThroughputRPS {
		t.Fatal("same-scenario merge did not replace the old report")
	}
	if _, ok := byName["cluster-scatter"]; !ok {
		t.Fatal("merge dropped the other scenario")
	}
}
