package load

// The chaos harness's own acceptance: a short soak with an injected
// runner must flow load through every fault kind and exit with all
// three invariants (per-class conservation, goroutine bracket, heap
// bound) holding.

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestChaosSoakInvariantsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos soak; skipped in -short")
	}
	var events bytes.Buffer
	res, err := RunChaos(ChaosOptions{
		Duration: 2 * time.Second,
		Replicas: 3,
		Clients:  6,
		Workers:  2,
		Seed:     7,
		RunnerWith: func(ctx context.Context, id string, _ core.Params) (core.Result, error) {
			select {
			case <-ctx.Done():
				return core.Result{}, ctx.Err()
			case <-time.After(500 * time.Microsecond):
			}
			return core.Result{Findings: []string{"served " + id}}, nil
		},
		EventsSink: &events,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	for _, c := range res.Checks {
		if !c.Passed {
			t.Errorf("chaos check %q failed: %s", c.Name, c.Detail)
		} else {
			t.Logf("chaos check %q: %s", c.Name, c.Detail)
		}
	}
	if !res.Passed() {
		t.Fatal("chaos soak failed")
	}
	// Every fault kind must actually have fired — a soak that injected
	// nothing proves nothing.
	if res.Kills == 0 || res.Hangs == 0 || res.Bursts == 0 {
		t.Fatalf("fault schedule incomplete: %d kills, %d hangs, %d bursts",
			res.Kills, res.Hangs, res.Bursts)
	}
	if res.Requests == 0 {
		t.Fatal("no load flowed during the soak")
	}
	// Kills at FailThreshold 2 must have produced ejection events in the
	// NDJSON sink.
	if !strings.Contains(events.String(), `"ejection"`) {
		t.Errorf("event log carries no ejection events:\n%s", events.String())
	}
}

// The zero-value options must be self-defaulting (30s soak) without
// running one: validated by construction in RunChaos's default block,
// exercised here only for the setup-error path.
func TestChaosResultPassedSemantics(t *testing.T) {
	if (ChaosResult{}).Passed() {
		t.Fatal("an empty check list must not pass")
	}
	r := ChaosResult{Checks: []ChaosCheck{{Name: "a", Passed: true}}}
	if !r.Passed() {
		t.Fatal("all-passed checks should pass")
	}
	r.Checks = append(r.Checks, ChaosCheck{Name: "b", Passed: false})
	if r.Passed() {
		t.Fatal("any failed check must fail the result")
	}
}
