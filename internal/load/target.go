package load

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/serve"
)

// Outcome reports how the target satisfied one request.
type Outcome struct {
	// CacheHit reports whether the result came straight from the
	// memoizing cache.
	CacheHit bool
	// Shared reports whether the request piggybacked on another caller's
	// in-flight execution (singleflight).
	Shared bool
}

// Target abstracts where load is applied: the in-process engine or a live
// daemon over HTTP. Implementations must be safe for concurrent Do calls.
type Target interface {
	// Do issues one request and reports its outcome.
	Do(v Variant) (Outcome, error)
	// Name identifies the target kind in reports ("engine", "http").
	Name() string
}

// Resetter is implemented by targets whose cache can be dropped in place
// (the in-process engine). Scenarios with Reset set are served cold when
// the target supports it and as-is otherwise.
type Resetter interface {
	ResetCache()
}

// EngineTarget applies load to an in-process serve.Engine.
type EngineTarget struct {
	eng *serve.Engine
}

// NewEngineTarget wraps an engine. The caller keeps ownership (and must
// Close it).
func NewEngineTarget(eng *serve.Engine) *EngineTarget {
	return &EngineTarget{eng: eng}
}

// Do serves one variant through the engine.
func (t *EngineTarget) Do(v Variant) (Outcome, error) {
	resp, err := t.eng.ServeWith(v.ID, v.Params)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{CacheHit: resp.CacheHit, Shared: resp.Shared}, nil
}

// Name identifies the target kind.
func (t *EngineTarget) Name() string { return "engine" }

// ResetCache drops the engine's memoized results.
func (t *EngineTarget) ResetCache() { t.eng.Reset() }

// HTTPTarget applies load to a live arch21d endpoint via GET /run/{id}.
type HTTPTarget struct {
	base   string
	client *http.Client
}

// NewHTTPTarget points at an arch21d base address ("localhost:8021",
// ":8021", or a full http:// URL).
func NewHTTPTarget(addr string) *HTTPTarget {
	base := strings.TrimSuffix(addr, "/")
	if strings.HasPrefix(base, ":") {
		base = "localhost" + base
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &HTTPTarget{
		base: base,
		client: &http.Client{
			Timeout: 2 * time.Minute,
			// The default transport keeps only 2 idle connections per
			// host — a 32-client scenario would re-dial TCP every round
			// and measure handshakes instead of the daemon. Size the
			// idle pool past any scenario's client count.
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
}

// runOutcome is the slice of the /run/{id} JSON envelope the load
// generator needs.
type runOutcome struct {
	CacheHit bool `json:"cache_hit"`
	Shared   bool `json:"shared"`
}

// Do issues one GET /run/{id}?param=... request and decodes the outcome.
func (t *HTTPTarget) Do(v Variant) (Outcome, error) {
	q := url.Values{}
	for _, a := range v.Params.Assignments() {
		q.Add("param", a)
	}
	u := t.base + "/run/" + url.PathEscape(v.ID)
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := t.client.Get(u)
	if err != nil {
		return Outcome{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return Outcome{}, fmt.Errorf("load: %s: HTTP %d: %s", v, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var out runOutcome
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return Outcome{}, fmt.Errorf("load: %s: bad envelope: %v", v, err)
	}
	return Outcome{CacheHit: out.CacheHit, Shared: out.Shared}, nil
}

// Name identifies the target kind.
func (t *HTTPTarget) Name() string { return "http" }
