package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Outcome reports how the target satisfied one request.
type Outcome struct {
	// CacheHit reports whether the result came straight from the
	// memoizing cache.
	CacheHit bool
	// Shared reports whether the request piggybacked on another caller's
	// in-flight execution (singleflight).
	Shared bool
}

// Target abstracts where load is applied: the in-process engine or a live
// daemon over HTTP. Implementations must be safe for concurrent Do calls
// and must carry the variant's class to the target (as a context tag
// in-process, as the X-Arch21-Class header over HTTP) so the scheduler
// accounts the request under the class the scenario declared.
type Target interface {
	// Do issues one request and reports its outcome.
	Do(v Variant) (Outcome, error)
	// Name identifies the target kind in reports ("engine", "http").
	Name() string
}

// Resetter is implemented by targets whose cache can be dropped in place
// (the in-process engine). Scenarios with Reset set are served cold when
// the target supports it and as-is otherwise.
type Resetter interface {
	ResetCache()
}

// EngineTarget applies load to an in-process serve.Engine: a
// ServerTarget with the engine's own cache reset wired up.
type EngineTarget struct{ ResettableServerTarget }

// NewEngineTarget wraps an engine. The caller keeps ownership (and must
// Close it).
func NewEngineTarget(eng *serve.Engine) *EngineTarget {
	t := &EngineTarget{ResettableServerTarget{
		ServerTarget: ServerTarget{srv: eng, name: "engine", reset: eng.Reset},
	}}
	t.init()
	return t
}

// Server is any in-process serving surface (serve.Engine, router.Router)
// a ServerTarget can drive.
type Server interface {
	ServeWith(ctx context.Context, id string, p core.Params) (serve.Response, error)
}

// EncodedServer is the zero-copy serving surface (serve.Engine): results
// stay encoded, so a warm hit costs no decode. ServerTarget uses it when
// the wrapped server offers it — what lets the generator measure the
// slab path itself instead of its own decode allocations.
type EncodedServer interface {
	ServeEncoded(ctx context.Context, id string, p core.Params) (serve.RawResponse, error)
}

// ServerTarget applies load to any Server — how the router is measured
// like any single engine.
type ServerTarget struct {
	srv   Server
	enc   EncodedServer // non-nil when srv serves encoded results
	name  string
	reset func()
	// classCtx precomputes one context per class: Do is the generator's
	// innermost loop, and rebuilding an identical context value per
	// request is pure allocator pressure. Tenant-tagged requests still
	// derive per-call (the tenant varies per variant).
	classCtx [2]context.Context
}

// NewServerTarget wraps a server under a target name for reports
// ("router", "engine").
func NewServerTarget(srv Server, name string) *ServerTarget {
	t := &ServerTarget{srv: srv, name: name}
	t.init()
	return t
}

func (t *ServerTarget) init() {
	t.enc, _ = t.srv.(EncodedServer)
	for _, class := range admit.Classes() {
		t.classCtx[class] = admit.WithClass(context.Background(), class)
	}
}

// WithReset attaches a cache-reset hook (e.g. resetting every replica
// engine behind a router), making the target satisfy Resetter.
func (t *ServerTarget) WithReset(reset func()) *ResettableServerTarget {
	rt := &ResettableServerTarget{ServerTarget: ServerTarget{srv: t.srv, name: t.name, reset: reset}}
	rt.init()
	return rt
}

// ctx returns the request context for a variant: the precomputed
// per-class context unless a tenant tag forces a derived one.
func (t *ServerTarget) ctx(v Variant) context.Context {
	ctx := t.classCtx[v.Class]
	if ctx == nil { // zero-value ServerTarget (tests)
		ctx = admit.WithClass(context.Background(), v.Class)
	}
	if v.Tenant != "" {
		ctx = admit.WithTenant(ctx, v.Tenant)
	}
	return ctx
}

// Do serves one variant through the server under the variant's class
// and, for multi-tenant scenarios, its tenant identity. Servers that
// expose the encoded path are driven through it — the measured request
// then exercises exactly the bytes-out path the HTTP layer serves.
func (t *ServerTarget) Do(v Variant) (Outcome, error) {
	if t.enc != nil {
		rr, err := t.enc.ServeEncoded(t.ctx(v), v.ID, v.Params)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{CacheHit: rr.CacheHit, Shared: rr.Shared}, nil
	}
	resp, err := t.srv.ServeWith(t.ctx(v), v.ID, v.Params)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{CacheHit: resp.CacheHit, Shared: resp.Shared}, nil
}

// Name identifies the target kind.
func (t *ServerTarget) Name() string { return t.name }

// Events exposes the wrapped server's control-plane event ring when it
// has one (serve.Engine, router.Router), nil otherwise — how Run
// captures the controller-decision timeline into the BENCH report.
func (t *ServerTarget) Events() *obs.Events {
	if es, ok := t.srv.(interface{ Events() *obs.Events }); ok {
		return es.Events()
	}
	return nil
}

// EventSource is implemented by targets whose control-plane events can
// be captured into a Report.
type EventSource interface {
	Events() *obs.Events
}

// ResettableServerTarget is a ServerTarget with a working cache reset.
type ResettableServerTarget struct{ ServerTarget }

// ResetCache implements Resetter.
func (t *ResettableServerTarget) ResetCache() { t.reset() }

// HTTPTarget applies load to a live arch21d endpoint via GET /run/{id}.
type HTTPTarget struct {
	base   string
	client *http.Client
	// templates caches one immutable request skeleton (parsed URL +
	// stamped QoS headers) per distinct (variant, class, tenant) — the
	// catalog is finite and reused for the whole run, so the per-request
	// cost drops to one shallow http.Request literal instead of
	// url.Values + Encode + NewRequest + a fresh header map every call,
	// which is what kept the generator itself from driving a batched
	// cluster past a few hundred thousand requests per second.
	templates sync.Map // string -> *httpReqTemplate
}

// httpReqTemplate is one cached request skeleton. Both fields are
// immutable after construction: concurrent requests share them
// read-only (the transport never mutates an outgoing header map, and
// none of the daemon's endpoints redirect).
type httpReqTemplate struct {
	url    *url.URL
	header http.Header
}

// NewHTTPTarget points at an arch21d base address ("localhost:8021",
// ":8021", or a full http:// URL).
func NewHTTPTarget(addr string) *HTTPTarget {
	base := strings.TrimSuffix(addr, "/")
	if strings.HasPrefix(base, ":") {
		base = "localhost" + base
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &HTTPTarget{
		base: base,
		client: &http.Client{
			Timeout: 2 * time.Minute,
			// The default transport keeps only 2 idle connections per
			// host — a 32-client scenario would re-dial TCP every round
			// and measure handshakes instead of the daemon. Size the
			// idle pool past any scenario's client count.
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
}

// runOutcome is the slice of the /run/{id} JSON envelope the load
// generator needs.
type runOutcome struct {
	CacheHit bool `json:"cache_hit"`
	Shared   bool `json:"shared"`
}

// template returns the cached request skeleton for a variant, building
// it on first use: the full URL (query encoded once) and the QoS
// headers stamped once via httpapi.Forward — the same stamping path the
// routing front-end uses.
func (t *HTTPTarget) template(v Variant) (*httpReqTemplate, error) {
	key := v.String() + "\x00" + v.Class.String() + "\x00" + v.Tenant
	if c, ok := t.templates.Load(key); ok {
		return c.(*httpReqTemplate), nil
	}
	q := url.Values{}
	for _, a := range v.Params.Assignments() {
		q.Add("param", a)
	}
	u := t.base + "/run/" + url.PathEscape(v.ID)
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %v", v, err)
	}
	ctx := admit.WithClass(context.Background(), v.Class)
	if v.Tenant != "" {
		ctx = admit.WithTenant(ctx, v.Tenant)
	}
	if err := httpapi.Forward(req, ctx, 0); err != nil {
		return nil, fmt.Errorf("load: %s: %v", v, err)
	}
	tpl := &httpReqTemplate{url: req.URL, header: req.Header}
	t.templates.Store(key, tpl)
	return tpl, nil
}

// Do issues one GET /run/{id}?param=... request from the variant's
// cached skeleton and decodes the outcome. The response body is read
// into a pooled buffer: the envelope only needs two fields, and the
// generator's own per-request allocations must stay far below the
// server work it is measuring.
func (t *HTTPTarget) Do(v Variant) (Outcome, error) {
	tpl, err := t.template(v)
	if err != nil {
		return Outcome{}, err
	}
	req := &http.Request{
		Method:     http.MethodGet,
		URL:        tpl.url,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     tpl.header,
		Host:       tpl.url.Host,
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return Outcome{}, err
	}
	defer httpapi.DrainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return Outcome{}, fmt.Errorf("load: %s: HTTP %d: %s", v, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	bp := httpapi.GetBuffer()
	buf := (*bp)[:cap(*bp)]
	total := 0
	for {
		if total == len(buf) {
			buf = append(buf, 0)[:cap(buf)]
		}
		n, rerr := resp.Body.Read(buf[total:])
		total += n
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			*bp = buf[:0]
			httpapi.PutBuffer(bp)
			return Outcome{}, fmt.Errorf("load: %s: reading envelope: %v", v, rerr)
		}
	}
	var out runOutcome
	err = json.Unmarshal(buf[:total], &out)
	*bp = buf[:0]
	httpapi.PutBuffer(bp)
	if err != nil {
		return Outcome{}, fmt.Errorf("load: %s: bad envelope: %v", v, err)
	}
	return Outcome{CacheHit: out.CacheHit, Shared: out.Shared}, nil
}

// Name identifies the target kind.
func (t *HTTPTarget) Name() string { return "http" }
