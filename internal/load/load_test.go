package load

import (
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// stubTarget is a deterministic in-memory target for runner tests.
type stubTarget struct {
	mu    sync.Mutex
	calls map[string]int
	// fail selects requests that return an error; hit selects those
	// reported as cache hits; delay adds synthetic service time.
	fail  func(Variant) bool
	hit   func(Variant) bool
	delay time.Duration
	reset atomic.Int64
}

func newStubTarget() *stubTarget {
	return &stubTarget{calls: map[string]int{}}
}

func (s *stubTarget) Do(v Variant) (Outcome, error) {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.mu.Lock()
	s.calls[v.String()]++
	s.mu.Unlock()
	if s.fail != nil && s.fail(v) {
		return Outcome{}, errors.New("stub failure")
	}
	out := Outcome{}
	if s.hit != nil {
		out.CacheHit = s.hit(v)
	}
	return out, nil
}

func (s *stubTarget) Name() string { return "stub" }
func (s *stubTarget) ResetCache()  { s.reset.Add(1) }
func (s *stubTarget) count(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[k]
}

// Every catalog scenario must reference only registered experiments with
// schema-valid parameter assignments — the load catalog cannot drift from
// the core registry.
func TestScenarioCatalogResolves(t *testing.T) {
	scs := Scenarios()
	if len(scs) != 12 {
		t.Fatalf("catalog has %d scenarios, want 12", len(scs))
	}
	seen := map[string]bool{}
	for _, sc := range scs {
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Doc == "" {
			t.Errorf("%s: no doc line", sc.Name)
		}
		if len(sc.Variants) == 0 && len(sc.Tenants) == 0 {
			t.Fatalf("%s: no variants", sc.Name)
		}
		variants := sc.Variants
		if sc.Batch != nil {
			if len(sc.Batch.Variants) == 0 {
				t.Fatalf("%s: batch storm with no variants", sc.Name)
			}
			variants = append(append([]Variant{}, variants...), sc.Batch.Variants...)
		}
		for _, tm := range sc.Tenants {
			if tm.Name == "" || len(tm.Variants) == 0 {
				t.Fatalf("%s: tenant mix %+v lacks a name or variants", sc.Name, tm)
			}
			variants = append(append([]Variant{}, variants...), tm.Variants...)
		}
		if sc.Schedule != nil {
			if err := sc.Schedule.Validate(); err != nil {
				t.Fatalf("%s: invalid rate schedule: %v", sc.Name, err)
			}
		}
		for _, v := range variants {
			e, ok := core.ByID(v.ID)
			if !ok {
				t.Fatalf("%s: variant %s references unregistered experiment", sc.Name, v)
			}
			if _, err := e.ResolveParams(v.Params); err != nil {
				t.Fatalf("%s: variant %s does not resolve: %v", sc.Name, v, err)
			}
		}
	}
	for _, name := range []string{"warm-hammer", "cold-storm", "mixed-zipf", "herd", "cluster-scatter", "param-churn", "colocation", "diurnal", "flash-crowd", "multi-tenant"} {
		if _, ok := ScenarioByName(name); !ok {
			t.Fatalf("ScenarioByName(%q) missing", name)
		}
	}
	if _, ok := ScenarioByName("nope"); ok {
		t.Fatal("ScenarioByName should miss unknown names")
	}
}

func TestVariantString(t *testing.T) {
	v := Variant{ID: "E7", Params: core.Params{"f": 0.9, "bces": 64}}
	if got, want := v.String(), "E7?bces=64&f=0.9"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if got := (Variant{ID: "E7"}).String(); got != "E7" {
		t.Fatalf("bare String = %q, want E7", got)
	}
}

func TestClosedLoopRoundRobinCoversAllVariants(t *testing.T) {
	stub := newStubTarget()
	sc := Scenario{
		Name: "rr", Mode: ClosedLoop, Skew: 0, Clients: 2,
		Variants: []Variant{{ID: "a"}, {ID: "b"}, {ID: "c"}},
	}
	rep, err := Run(stub, sc, Options{Duration: 80 * time.Millisecond})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Metrics.Requests == 0 || rep.Metrics.Errors != 0 {
		t.Fatalf("unexpected metrics: %+v", rep.Metrics)
	}
	a, b, c := stub.count("a"), stub.count("b"), stub.count("c")
	if a == 0 || b == 0 || c == 0 {
		t.Fatalf("round-robin skipped a variant: a=%d b=%d c=%d", a, b, c)
	}
	// Round-robin keeps counts within one cycle of each other per client.
	for _, pair := range [][2]int{{a, b}, {b, c}, {a, c}} {
		if diff := pair[0] - pair[1]; diff < -4 || diff > 4 {
			t.Fatalf("round-robin imbalance: a=%d b=%d c=%d", a, b, c)
		}
	}
	if rep.Config.Mode != "closed" || rep.Config.Target != "stub" {
		t.Fatalf("config not recorded: %+v", rep.Config)
	}
}

func TestClosedLoopZipfSkewsTraffic(t *testing.T) {
	stub := newStubTarget()
	sc := Scenario{
		Name: "zipf", Mode: ClosedLoop, Skew: 1.2, Clients: 4, Seed: 9,
		Variants: []Variant{{ID: "hot"}, {ID: "mid"}, {ID: "cold1"}, {ID: "cold2"}, {ID: "cold3"}, {ID: "cold4"}},
	}
	if _, err := Run(stub, sc, Options{Duration: 100 * time.Millisecond}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if hot, tail := stub.count("hot"), stub.count("cold4"); hot <= tail {
		t.Fatalf("Zipf skew missing: hot=%d cold4=%d", hot, tail)
	}
}

func TestOpenLoopReplaysTrace(t *testing.T) {
	stub := newStubTarget()
	sc := Scenario{
		Name: "open", Mode: OpenLoop, Skew: 0.9, Seed: 2,
		Variants: []Variant{{ID: "a"}, {ID: "b"}},
	}
	rep, err := Run(stub, sc, Options{Duration: 150 * time.Millisecond, Rate: 1000})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := int64(150)
	if got := rep.Metrics.Requests; got != want {
		t.Fatalf("open loop issued %d requests, want %d (rate*duration)", got, want)
	}
	if rep.Metrics.ThroughputRPS <= 0 {
		t.Fatalf("throughput not measured: %+v", rep.Metrics)
	}
	if rep.Config.Mode != "open" {
		t.Fatalf("mode not recorded: %+v", rep.Config)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("open-loop report invalid: %v", err)
	}
}

func TestErrorsCountedNotTimed(t *testing.T) {
	stub := newStubTarget()
	stub.fail = func(v Variant) bool { return v.ID == "bad" }
	sc := Scenario{
		Name: "err", Mode: ClosedLoop, Skew: 0, Clients: 1,
		Variants: []Variant{{ID: "good"}, {ID: "bad"}},
	}
	rep, err := Run(stub, sc, Options{Duration: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Metrics.Errors == 0 {
		t.Fatal("errors not counted")
	}
	if rep.Metrics.ErrorRate < 0.4 || rep.Metrics.ErrorRate > 0.6 {
		t.Fatalf("error rate %v, want ~0.5", rep.Metrics.ErrorRate)
	}
	// Only successes are timed: requests != latency count.
	if rep.Metrics.Requests-rep.Metrics.Errors <= 0 {
		t.Fatalf("no successes measured: %+v", rep.Metrics)
	}
}

func TestWarmupFailureSurfaces(t *testing.T) {
	stub := newStubTarget()
	stub.fail = func(Variant) bool { return true }
	sc := Scenario{
		Name: "warmfail", Mode: ClosedLoop, Warm: true,
		Variants: []Variant{{ID: "x"}},
	}
	if _, err := Run(stub, sc, Options{Duration: 20 * time.Millisecond}); err == nil {
		t.Fatal("warmup failure did not surface")
	}
}

func TestResetInvokedForResetScenarios(t *testing.T) {
	stub := newStubTarget()
	sc := Scenario{
		Name: "cold", Mode: ClosedLoop, Reset: true,
		Variants: []Variant{{ID: "x"}},
	}
	if _, err := Run(stub, sc, Options{Duration: 10 * time.Millisecond}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stub.reset.Load() != 1 {
		t.Fatalf("ResetCache called %d times, want 1", stub.reset.Load())
	}
}

func TestRunRejectsEmptyScenario(t *testing.T) {
	if _, err := Run(newStubTarget(), Scenario{Name: "empty"}, Options{}); err == nil {
		t.Fatal("empty scenario accepted")
	}
}

func TestCacheHitRatioMeasured(t *testing.T) {
	stub := newStubTarget()
	stub.hit = func(Variant) bool { return true }
	sc := Scenario{
		Name: "hits", Mode: ClosedLoop, Clients: 2,
		Variants: []Variant{{ID: "x"}},
	}
	rep, err := Run(stub, sc, Options{Duration: 30 * time.Millisecond})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Metrics.CacheHitRatio != 1 {
		t.Fatalf("hit ratio %v, want 1", rep.Metrics.CacheHitRatio)
	}
}

func TestCalibratePositive(t *testing.T) {
	if bps := Calibrate(1); bps <= 0 {
		t.Fatalf("Calibrate(1) = %v, want > 0", bps)
	}
	// Degenerate parallelism clamps rather than hangs or divides by zero.
	if bps := Calibrate(0); bps <= 0 {
		t.Fatalf("Calibrate(0) = %v, want > 0", bps)
	}
}

// Open loop with Skew 0 must keep the round-robin contract: every
// variant covered, counts within one cycle of each other.
func TestOpenLoopSkewZeroRoundRobins(t *testing.T) {
	stub := newStubTarget()
	sc := Scenario{
		Name: "open-rr", Mode: OpenLoop, Skew: 0, Seed: 8,
		Variants: []Variant{{ID: "a"}, {ID: "b"}, {ID: "c"}},
	}
	rep, err := Run(stub, sc, Options{Duration: 100 * time.Millisecond, Rate: 600})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	a, b, c := stub.count("a"), stub.count("b"), stub.count("c")
	if a == 0 || b == 0 || c == 0 {
		t.Fatalf("open-loop round-robin skipped a variant: a=%d b=%d c=%d", a, b, c)
	}
	for _, pair := range [][2]int{{a, b}, {b, c}, {a, c}} {
		if diff := pair[0] - pair[1]; diff < -1 || diff > 1 {
			t.Fatalf("open-loop round-robin imbalance: a=%d b=%d c=%d", a, b, c)
		}
	}
	if rep.Metrics.Requests != int64(a+b+c) {
		t.Fatalf("requests %d != calls %d", rep.Metrics.Requests, a+b+c)
	}
}

func TestReportWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	one := filepath.Join(dir, "one.json")
	many := filepath.Join(dir, "many.json")
	r1 := sampleReport("warm-hammer", 1000, 0.0005)
	r2 := sampleReport("herd", 50, 0.002)

	if err := WriteFile(one, r1); err != nil {
		t.Fatalf("WriteFile(one): %v", err)
	}
	if err := WriteFile(many, r1, r2); err != nil {
		t.Fatalf("WriteFile(many): %v", err)
	}
	got1, err := ReadReports(one)
	if err != nil || len(got1) != 1 {
		t.Fatalf("ReadReports(one) = %v, %v", got1, err)
	}
	if !reflect.DeepEqual(got1[0], r1) {
		t.Fatalf("single round trip mismatch: %+v vs %+v", got1[0], r1)
	}
	got2, err := ReadReports(many)
	if err != nil || len(got2) != 2 {
		t.Fatalf("ReadReports(many) = %v, %v", got2, err)
	}
	if !reflect.DeepEqual(got2[1], r2) {
		t.Fatalf("array round trip mismatch")
	}
	if err := WriteFile(filepath.Join(dir, "none.json")); err == nil {
		t.Fatal("WriteFile with no reports accepted")
	}
	if _, err := ReadReports(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("ReadReports on missing file succeeded")
	}
}

func TestReportValidate(t *testing.T) {
	good := sampleReport("warm-hammer", 1000, 0.0005)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Report)
	}{
		{"wrong schema", func(r *Report) { r.Schema = 99 }},
		{"no scenario", func(r *Report) { r.Scenario = "" }},
		{"no requests", func(r *Report) { r.Metrics.Requests = 0 }},
		{"zero throughput", func(r *Report) { r.Metrics.ThroughputRPS = 0 }},
		{"zero p99", func(r *Report) { r.Metrics.Latency.P99 = 0 }},
	}
	for _, tc := range cases {
		r := good
		tc.mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: invalid report accepted", tc.name)
		}
	}
}

// sampleReport builds a minimal valid report for serialization and
// comparison tests.
func sampleReport(scenario string, rps, p99 float64) Report {
	return Report{
		Schema:         SchemaVersion,
		Scenario:       scenario,
		GoVersion:      "go-test",
		CalibrationBPS: 1e9,
		Config:         Config{Target: "stub", Mode: "closed", DurationSeconds: 1, Clients: 4, Seed: 1, Variants: 3, Cores: 4},
		Metrics: Metrics{
			Requests: 1000, DurationSeconds: 1, ThroughputRPS: rps,
			CacheHitRatio: 0.9,
			Latency:       Latency{Mean: p99 / 2, P50: p99 / 3, P95: p99 * 0.8, P99: p99, P999: p99 * 1.5, Min: p99 / 10, Max: p99 * 2},
		},
	}
}

// Open-loop latency is measured from the scheduled arrival: a slow target
// that delays every response must show latencies at least the service
// delay even though the generator never waits.
func TestOpenLoopMeasuresFromScheduledArrival(t *testing.T) {
	stub := newStubTarget()
	stub.delay = 5 * time.Millisecond
	sc := Scenario{
		Name: "lagged", Mode: OpenLoop, Seed: 4,
		Variants: []Variant{{ID: "slow"}},
	}
	rep, err := Run(stub, sc, Options{Duration: 100 * time.Millisecond, Rate: 300})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Metrics.Latency.P50 < 0.004 {
		t.Fatalf("p50 %vs, want >= ~5ms service delay", rep.Metrics.Latency.P50)
	}
}

func TestRunRejectsUnknownMode(t *testing.T) {
	sc := Scenario{Name: "bad", Mode: Mode(7), Variants: []Variant{{ID: "x"}}}
	if _, err := Run(newStubTarget(), sc, Options{Duration: time.Millisecond}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if s := Mode(7).String(); s != "mode(7)" {
		t.Fatalf("Mode(7).String() = %q", s)
	}
}

func TestGridVariantsPanicOnBadAxis(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad grid axis did not panic")
		}
	}()
	gridVariants("E7", "f=bogus")
}
