package reliability

import (
	"math"
)

// Availability returns steady-state availability MTTF/(MTTF+MTTR) of a
// repairable component.
func Availability(mttf, mttr float64) float64 {
	if mttf <= 0 {
		return 0
	}
	return mttf / (mttf + mttr)
}

// ParallelAvailability returns the availability of n redundant components
// of individual availability a where one suffices (1-of-n).
func ParallelAvailability(a float64, n int) float64 {
	return 1 - math.Pow(1-a, float64(n))
}

// KofNAvailability returns the probability that at least k of n independent
// components of availability a are up.
func KofNAvailability(a float64, k, n int) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	total := 0.0
	for i := k; i <= n; i++ {
		total += binom(n, i) * math.Pow(a, float64(i)) * math.Pow(1-a, float64(n-i))
	}
	return total
}

func binom(n, k int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return math.Exp(lg - lk - lnk)
}

// DowntimeSecondsPerYear converts availability to annual downtime.
func DowntimeSecondsPerYear(a float64) float64 {
	return (1 - a) * 365.25 * 86400
}

// Nines returns the "number of nines" of an availability (e.g. 0.99999 →
// 5.0).
func Nines(a float64) float64 {
	if a >= 1 {
		return math.Inf(1)
	}
	return -math.Log10(1 - a)
}

// ReplicasForTarget returns the minimum replica count n such that 1-of-n
// availability reaches the target, and the resulting availability. Returns
// n = 0 when a single component already suffices.
func ReplicasForTarget(single, target float64) (n int, achieved float64) {
	if single <= 0 || single >= 1 {
		panic("reliability: single-component availability must be in (0,1)")
	}
	for n = 1; n <= 1000; n++ {
		achieved = ParallelAvailability(single, n)
		if achieved >= target {
			return n, achieved
		}
	}
	return 1000, achieved
}

// CostOfNines returns total system cost to hit the availability target with
// replicas of the given unit cost, reproducing the paper's point that five
// nines "can cost millions" when built from highly-available units but
// becomes affordable with cheap redundant ones.
func CostOfNines(single, target, unitCost float64) float64 {
	n, _ := ReplicasForTarget(single, target)
	return float64(n) * unitCost
}
