// Package reliability implements the paper's dependability substrate
// (Table 1's "transistor reliability worsening" row and §2.4
// "Verifiability and Reliability"): a real SECDED Hamming(72,64) codec,
// soft-error fault injection with scrubbing, modular-redundancy (DMR/TMR)
// and invariant-checker-coprocessor cost models, and Markov availability
// arithmetic for the paper's five-nines "Always Online" attribute.
package reliability

import (
	"math/bits"
)

// Codeword is a SECDED-protected 64-bit word: 64 data bits plus 8 check
// bits (7 Hamming parity bits and one overall parity bit).
type Codeword struct {
	// Bits holds the 72-bit codeword in Hamming position order:
	// positions 1..71 (index 0 unused internally, packed here from bit 0),
	// with parity bits at power-of-two positions and the overall parity
	// bit last.
	lo uint64 // positions 1..64
	hi uint8  // positions 65..72 (72 = overall parity)
}

const codewordBits = 72

func (c Codeword) bit(pos int) uint {
	// pos in [1, 72]
	if pos <= 64 {
		return uint(c.lo>>(pos-1)) & 1
	}
	return uint(c.hi>>(pos-65)) & 1
}

func (c *Codeword) setBit(pos int, v uint) {
	if pos <= 64 {
		c.lo = c.lo&^(1<<(pos-1)) | uint64(v&1)<<(pos-1)
	} else {
		c.hi = c.hi&^(1<<(pos-65)) | uint8(v&1)<<(pos-65)
	}
}

// FlipBit flips one bit of the codeword (bit index 0..71), simulating a
// particle strike.
func (c *Codeword) FlipBit(idx int) {
	pos := idx + 1
	c.setBit(pos, c.bit(pos)^1)
}

// dataPositions lists the 64 non-power-of-two positions in [1, 71] that
// carry data bits, in ascending order.
var dataPositions = func() []int {
	var ps []int
	for p := 1; p <= 71 && len(ps) < 64; p++ {
		if p&(p-1) != 0 { // not a power of two
			ps = append(ps, p)
		}
	}
	return ps
}()

// Encode produces the SECDED codeword for 64 data bits.
func Encode(data uint64) Codeword {
	var c Codeword
	for i, pos := range dataPositions {
		c.setBit(pos, uint(data>>i)&1)
	}
	// Hamming parity bits at positions 1,2,4,8,16,32,64: parity over all
	// positions with that bit set in their index.
	for b := 0; b < 7; b++ {
		p := 1 << b
		parity := uint(0)
		for pos := 1; pos <= 71; pos++ {
			if pos != p && pos&p != 0 {
				parity ^= c.bit(pos)
			}
		}
		c.setBit(p, parity)
	}
	// Overall parity at position 72 over positions 1..71.
	overall := uint(0)
	for pos := 1; pos <= 71; pos++ {
		overall ^= c.bit(pos)
	}
	c.setBit(72, overall)
	return c
}

// DecodeStatus classifies a decode outcome.
type DecodeStatus int

// Decode outcomes.
const (
	// OK means no error was present.
	OK DecodeStatus = iota
	// Corrected means a single-bit error was repaired.
	Corrected
	// Uncorrectable means a double-bit error was detected (data is not
	// trustworthy).
	Uncorrectable
)

func (s DecodeStatus) String() string {
	switch s {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	default:
		return "uncorrectable"
	}
}

// Decode extracts the data word, correcting a single-bit error and
// detecting double-bit errors.
func Decode(c Codeword) (uint64, DecodeStatus) {
	// Syndrome: recomputed parity vs stored, bit b of syndrome from
	// parity group 2^b.
	syndrome := 0
	for b := 0; b < 7; b++ {
		p := 1 << b
		parity := uint(0)
		for pos := 1; pos <= 71; pos++ {
			if pos&p != 0 {
				parity ^= c.bit(pos)
			}
		}
		if parity != 0 {
			syndrome |= p
		}
	}
	overall := uint(0)
	for pos := 1; pos <= 72; pos++ {
		overall ^= c.bit(pos)
	}
	status := OK
	switch {
	case syndrome == 0 && overall == 0:
		status = OK
	case overall == 1:
		// Single-bit error (possibly in a parity bit or the overall bit).
		status = Corrected
		if syndrome != 0 && syndrome <= 71 {
			c.setBit(syndrome, c.bit(syndrome)^1)
		} else if syndrome == 0 {
			c.setBit(72, c.bit(72)^1)
		}
	default: // syndrome != 0 && overall == 0
		status = Uncorrectable
	}
	var data uint64
	for i, pos := range dataPositions {
		data |= uint64(c.bit(pos)) << i
	}
	return data, status
}

// OverheadBits returns ECC storage overhead: check bits per data bit.
func OverheadBits() float64 { return 8.0 / 64.0 }

// HammingDistance counts differing bits between two codewords.
func HammingDistance(a, b Codeword) int {
	return bits.OnesCount64(a.lo^b.lo) + bits.OnesCount8(a.hi^b.hi)
}
