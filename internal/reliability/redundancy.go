package reliability

import "math"

// Scheme is an error-detection/correction strategy with first-order energy
// and coverage characteristics, supporting the paper's recommendation of
// "lower-overhead approaches that employ dynamic (hardware) checking of
// invariants supplied by software" over brute-force redundancy.
type Scheme struct {
	// Name identifies the scheme.
	Name string
	// EnergyOverhead is extra energy relative to unprotected execution
	// (1.0 = doubles energy).
	EnergyOverhead float64
	// DetectCoverage is the fraction of errors detected.
	DetectCoverage float64
	// Corrects is true when detected errors are also masked/corrected
	// without a rollback.
	Corrects bool
}

// StandardSchemes returns the modelled protection points: dual- and
// triple-modular redundancy, ECC on memory, and an invariant-checking
// coprocessor (software-supplied invariants checked by cheap hardware).
func StandardSchemes() []Scheme {
	return []Scheme{
		{Name: "none", EnergyOverhead: 0, DetectCoverage: 0},
		{Name: "dmr", EnergyOverhead: 1.05, DetectCoverage: 0.99},
		{Name: "tmr", EnergyOverhead: 2.15, DetectCoverage: 0.999, Corrects: true},
		{Name: "ecc-mem", EnergyOverhead: 0.125, DetectCoverage: 0.90},
		{Name: "invariant-coproc", EnergyOverhead: 0.10, DetectCoverage: 0.85},
	}
}

// EnergyPerDetectedError returns the scheme's extra energy spent per error
// detected, for a workload consuming baseEnergy joules during which
// nErrors occur. Lower is better; the paper's argument is that the
// invariant coprocessor wins this metric by an order of magnitude over
// DMR/TMR.
func (s Scheme) EnergyPerDetectedError(baseEnergy float64, nErrors float64) float64 {
	detected := s.DetectCoverage * nErrors
	if detected == 0 {
		return math.Inf(1)
	}
	return baseEnergy * s.EnergyOverhead / detected
}

// RecoveryEnergyFactor returns the total energy multiplier including
// re-execution for detect-only schemes: detected-but-uncorrected errors
// force a rollback that re-runs the (checkpoint) interval, costing
// retryFrac of the base energy per event.
func (s Scheme) RecoveryEnergyFactor(errorRate, retryFrac float64) float64 {
	base := 1 + s.EnergyOverhead
	if s.Corrects {
		return base
	}
	return base + errorRate*s.DetectCoverage*retryFrac
}
