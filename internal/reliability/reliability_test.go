package reliability

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestEncodeDecodeClean(t *testing.T) {
	for _, data := range []uint64{0, 1, 0xffffffffffffffff, 0xdeadbeefcafebabe} {
		cw := Encode(data)
		got, status := Decode(cw)
		if status != OK || got != data {
			t.Fatalf("clean decode of %#x: got %#x status %v", data, got, status)
		}
	}
}

func TestSingleBitCorrection(t *testing.T) {
	data := uint64(0x123456789abcdef0)
	for idx := 0; idx < 72; idx++ {
		cw := Encode(data)
		cw.FlipBit(idx)
		got, status := Decode(cw)
		if status != Corrected {
			t.Fatalf("flip at %d: status %v, want corrected", idx, status)
		}
		if got != data {
			t.Fatalf("flip at %d: data %#x, want %#x", idx, got, data)
		}
	}
}

func TestDoubleBitDetection(t *testing.T) {
	data := uint64(0x0f0f0f0f0f0f0f0f)
	for i := 0; i < 72; i++ {
		for j := i + 1; j < 72; j += 7 { // sample pairs for speed
			cw := Encode(data)
			cw.FlipBit(i)
			cw.FlipBit(j)
			_, status := Decode(cw)
			if status != Uncorrectable {
				t.Fatalf("flips at %d,%d: status %v, want uncorrectable", i, j, status)
			}
		}
	}
}

// Property: SECDED corrects every single flip and flags every double flip,
// for random data and random positions.
func TestQuickSECDEDContract(t *testing.T) {
	f := func(data uint64, aRaw, bRaw uint8) bool {
		a := int(aRaw) % 72
		b := int(bRaw) % 72
		cw := Encode(data)
		cw.FlipBit(a)
		if b == a {
			got, st := Decode(cw)
			return st == Corrected && got == data
		}
		cw.FlipBit(b)
		_, st := Decode(cw)
		return st == Uncorrectable
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlipBitTwiceRestores(t *testing.T) {
	cw := Encode(42)
	orig := cw
	cw.FlipBit(17)
	cw.FlipBit(17)
	if HammingDistance(cw, orig) != 0 {
		t.Fatal("double flip should restore codeword")
	}
}

func TestHammingDistance(t *testing.T) {
	a := Encode(0)
	b := a
	b.FlipBit(3)
	b.FlipBit(70)
	if d := HammingDistance(a, b); d != 2 {
		t.Fatalf("distance = %d, want 2", d)
	}
}

func TestCodewordMinDistance(t *testing.T) {
	// SECDED code distance is 4: any two distinct data words' codewords
	// differ in >= 4 bits. Spot-check pairs.
	r := stats.NewRNG(17)
	for i := 0; i < 200; i++ {
		d1, d2 := r.Uint64(), r.Uint64()
		if d1 == d2 {
			continue
		}
		if d := HammingDistance(Encode(d1), Encode(d2)); d < 4 {
			t.Fatalf("distance %d < 4 between %#x and %#x", d, d1, d2)
		}
	}
}

func TestOverheadBits(t *testing.T) {
	if OverheadBits() != 0.125 {
		t.Fatalf("overhead = %v", OverheadBits())
	}
}

func TestInjectionCampaign(t *testing.T) {
	r := stats.NewRNG(23)
	res := InjectAndDecode(20000, 0.5, 0.3, r)
	if res.SilentWrong != 0 {
		t.Fatalf("silent wrong decodes: %d", res.SilentWrong)
	}
	if res.SingleFlips == 0 || res.DoubleFlips == 0 {
		t.Fatal("campaign injected nothing")
	}
	if res.CorrectedOK != res.SingleFlips {
		t.Fatalf("corrected %d of %d singles", res.CorrectedOK, res.SingleFlips)
	}
	if res.DetectedDouble != res.DoubleFlips {
		t.Fatalf("detected %d of %d doubles", res.DetectedDouble, res.DoubleFlips)
	}
}

func TestSoftErrorModelScales(t *testing.T) {
	small := SoftErrorModel{FITPerMb: 1000, Megabits: 1}
	big := SoftErrorModel{FITPerMb: 1000, Megabits: 1000}
	if big.FlipsPerSecond() <= small.FlipsPerSecond() {
		t.Fatal("bigger memory should flip more")
	}
	// 1000 FIT/Mb * 1000 Mb = 1e6 FIT = 1 failure per 1000 hours.
	want := 1.0 / (1000 * 3600)
	if math.Abs(big.FlipsPerSecond()-want) > 1e-12 {
		t.Fatalf("rate = %v, want %v", big.FlipsPerSecond(), want)
	}
	if big.ExpectedFlips(3600) <= 0 {
		t.Fatal("expected flips should be positive")
	}
}

func TestUncorrectableRateScrubbing(t *testing.T) {
	lambda := 1e-6
	fast := UncorrectableRate(lambda, 60)
	slow := UncorrectableRate(lambda, 86400)
	if fast >= slow {
		t.Fatal("faster scrubbing should cut uncorrectable rate")
	}
	if fast < 0 || slow > 1 {
		t.Fatal("rates out of range")
	}
	// Small-x expansion: ~x^2/2.
	x := lambda * 60
	if math.Abs(fast-x*x/2)/(x*x/2) > 0.01 {
		t.Fatalf("small-x rate = %v, want ~%v", fast, x*x/2)
	}
}

func TestSchemesOrdering(t *testing.T) {
	schemes := StandardSchemes()
	byName := map[string]Scheme{}
	for _, s := range schemes {
		byName[s.Name] = s
	}
	// The paper's claim: invariant checking detects most errors at a
	// fraction of DMR/TMR energy.
	inv, dmr, tmr := byName["invariant-coproc"], byName["dmr"], byName["tmr"]
	base, errs := 100.0, 10.0
	if inv.EnergyPerDetectedError(base, errs) >= dmr.EnergyPerDetectedError(base, errs) {
		t.Fatal("invariant coprocessor should beat DMR on energy/detection")
	}
	if dmr.EnergyPerDetectedError(base, errs) >= tmr.EnergyPerDetectedError(base, errs)*3 {
		t.Fatal("DMR should not be 3x worse than TMR per detection")
	}
	// none detects nothing.
	if !math.IsInf(byName["none"].EnergyPerDetectedError(base, errs), 1) {
		t.Fatal("none should have infinite energy per detection")
	}
}

func TestRecoveryEnergyFactor(t *testing.T) {
	schemes := StandardSchemes()
	var dmr, tmr Scheme
	for _, s := range schemes {
		if s.Name == "dmr" {
			dmr = s
		}
		if s.Name == "tmr" {
			tmr = s
		}
	}
	// At low error rates DMR+retry is cheaper than TMR...
	if dmr.RecoveryEnergyFactor(0.001, 1) >= tmr.RecoveryEnergyFactor(0.001, 1) {
		t.Fatal("DMR should win at low error rates")
	}
	// ...but at error rates above ~1.1 retries/interval TMR wins.
	if dmr.RecoveryEnergyFactor(2.0, 1) <= tmr.RecoveryEnergyFactor(2.0, 1) {
		t.Fatal("TMR should win at very high error rates")
	}
}

func TestAvailabilityBasics(t *testing.T) {
	a := Availability(999, 1)
	if math.Abs(a-0.999) > 1e-12 {
		t.Fatalf("availability = %v", a)
	}
	if Availability(0, 1) != 0 {
		t.Fatal("zero MTTF should be 0")
	}
	if got := Nines(0.99999); math.Abs(got-5) > 1e-9 {
		t.Fatalf("nines(five nines) = %v", got)
	}
	// Five nines = ~5.26 minutes/year, the paper's "all but five minutes".
	dt := DowntimeSecondsPerYear(0.99999) / 60
	if dt < 4.5 || dt > 6 {
		t.Fatalf("five-nines downtime = %v min/yr, want ~5.3", dt)
	}
}

func TestParallelAvailability(t *testing.T) {
	// Two 99% machines: 99.99%.
	if got := ParallelAvailability(0.99, 2); math.Abs(got-0.9999) > 1e-12 {
		t.Fatalf("parallel = %v", got)
	}
	if ParallelAvailability(0.9, 1) != 0.9 {
		t.Fatal("n=1 should be identity")
	}
}

func TestKofN(t *testing.T) {
	// 1-of-n must match ParallelAvailability.
	for n := 1; n <= 5; n++ {
		if math.Abs(KofNAvailability(0.9, 1, n)-ParallelAvailability(0.9, n)) > 1e-9 {
			t.Fatalf("1-of-%d mismatch", n)
		}
	}
	// k > n impossible; k = 0 certain.
	if KofNAvailability(0.9, 3, 2) != 0 || KofNAvailability(0.9, 0, 2) != 1 {
		t.Fatal("k-of-n edges wrong")
	}
	// Needing all n is worse than needing one.
	if KofNAvailability(0.9, 3, 3) >= KofNAvailability(0.9, 1, 3) {
		t.Fatal("3-of-3 should be worse than 1-of-3")
	}
}

func TestReplicasForTarget(t *testing.T) {
	// Cheap 99% boxes reach five nines with 3 replicas: 1-(0.01)^3.
	n, a := ReplicasForTarget(0.99, 0.99999)
	if n != 3 {
		t.Fatalf("replicas = %d, want 3", n)
	}
	if a < 0.99999 {
		t.Fatal("achieved below target")
	}
	// Cost: cheap redundancy beats one gold-plated box — the paper's
	// "availability at the cost of a few dollars" aspiration.
	cheap := CostOfNines(0.99, 0.99999, 1000)
	gold := 1e6 // the mainframe the paper says five nines costs today
	if cheap >= gold {
		t.Fatalf("redundant-cheap cost %v should beat %v", cheap, gold)
	}
}

func TestReplicasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad availability did not panic")
		}
	}()
	ReplicasForTarget(1.5, 0.999)
}

// Property: availability functions stay in [0,1] and are monotone in n.
func TestQuickAvailabilityBounds(t *testing.T) {
	f := func(aRaw uint8, nRaw uint8) bool {
		a := float64(aRaw%99+1) / 100
		n := int(nRaw)%10 + 1
		pa := ParallelAvailability(a, n)
		pa2 := ParallelAvailability(a, n+1)
		return pa >= 0 && pa <= 1 && pa2 >= pa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
