package reliability

import (
	"math"
	"testing"
	"testing/quick"
)

func TestYoungInterval(t *testing.T) {
	c := Checkpointing{MTTF: 7200, CheckpointCost: 60, RestartCost: 120}
	want := math.Sqrt(2 * 60 * 7200)
	if math.Abs(c.YoungInterval()-want) > 1e-9 {
		t.Fatalf("young = %v, want %v", c.YoungInterval(), want)
	}
}

func TestYoungIsNearOptimal(t *testing.T) {
	c := Checkpointing{MTTF: 7200, CheckpointCost: 60, RestartCost: 120}
	best := 0.0
	for tau := 100.0; tau < 10000; tau += 50 {
		if e := c.Efficiency(tau); e > best {
			best = e
		}
	}
	if c.OptimalEfficiency() < best-0.005 {
		t.Fatalf("young efficiency %v far from grid optimum %v",
			c.OptimalEfficiency(), best)
	}
}

func TestEfficiencyShape(t *testing.T) {
	c := Checkpointing{MTTF: 7200, CheckpointCost: 60, RestartCost: 120}
	tooOften := c.Efficiency(10)
	right := c.OptimalEfficiency()
	tooRare := c.Efficiency(50000)
	if right <= tooOften || right <= tooRare {
		t.Fatalf("U-shape violated: %v %v %v", tooOften, right, tooRare)
	}
	if c.Efficiency(0) != 0 {
		t.Fatal("zero interval should be zero efficiency")
	}
}

func TestScaleErodesEfficiency(t *testing.T) {
	// The exascale resilience problem: same node MTTF, more nodes.
	nodeMTTF := 5.0 * 365 * 86400 // 5-year node MTTF
	small := Checkpointing{MTTF: SystemMTTF(nodeMTTF, 1000),
		CheckpointCost: 120, RestartCost: 300}
	big := Checkpointing{MTTF: SystemMTTF(nodeMTTF, 100000),
		CheckpointCost: 120, RestartCost: 300}
	if big.OptimalEfficiency() >= small.OptimalEfficiency() {
		t.Fatal("scaling up should erode checkpoint efficiency")
	}
	if small.OptimalEfficiency() < 0.9 {
		t.Fatalf("1000-node efficiency = %v, want > 0.9", small.OptimalEfficiency())
	}
	if big.OptimalEfficiency() > 0.9 {
		t.Fatalf("100k-node efficiency = %v, want < 0.9", big.OptimalEfficiency())
	}
}

func TestSystemMTTF(t *testing.T) {
	if SystemMTTF(1000, 10) != 100 {
		t.Fatal("MTTF scaling wrong")
	}
	if SystemMTTF(1000, 0) != 0 {
		t.Fatal("zero nodes should be zero")
	}
}

// Property: efficiency is in [0,1] for all positive parameters.
func TestQuickEfficiencyBounds(t *testing.T) {
	f := func(mttfRaw, costRaw, tauRaw uint16) bool {
		c := Checkpointing{
			MTTF:           float64(mttfRaw) + 1,
			CheckpointCost: float64(costRaw)/100 + 0.01,
			RestartCost:    1,
		}
		e := c.Efficiency(float64(tauRaw) + 1)
		return e >= 0 && e <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
