package reliability

import "math"

// Checkpointing models the classic checkpoint/restart tradeoff behind the
// paper's call to "architect ways of continuously monitoring system health
// ... and applying contingency actions" (§2.4): checkpoint too often and
// overhead dominates; too rarely and re-execution after failures does.
type Checkpointing struct {
	// MTTF is the system's mean time to failure (seconds). For an N-node
	// machine this is the node MTTF divided by N — why exascale systems
	// made this problem urgent.
	MTTF float64
	// CheckpointCost is the time to write one checkpoint (seconds).
	CheckpointCost float64
	// RestartCost is the time to restore after a failure (seconds).
	RestartCost float64
}

// YoungInterval returns Young's first-order optimal checkpoint interval
// √(2·C·MTTF).
func (c Checkpointing) YoungInterval() float64 {
	return math.Sqrt(2 * c.CheckpointCost * c.MTTF)
}

// Efficiency returns the fraction of wall-clock time spent on useful work
// when checkpointing every tau seconds, using the standard first-order
// model: overhead = C/tau (checkpoint cost) + (tau/2 + R)/MTTF
// (expected rework plus restart per failure).
func (c Checkpointing) Efficiency(tau float64) float64 {
	if tau <= 0 {
		return 0
	}
	overhead := c.CheckpointCost/tau + (tau/2+c.RestartCost)/c.MTTF
	e := 1 - overhead
	if e < 0 {
		return 0
	}
	return e
}

// OptimalEfficiency returns the efficiency at Young's interval.
func (c Checkpointing) OptimalEfficiency() float64 {
	return c.Efficiency(c.YoungInterval())
}

// SystemMTTF scales a per-node MTTF to an N-node system (independent
// exponential failures).
func SystemMTTF(nodeMTTF float64, nodes int) float64 {
	if nodes < 1 {
		return 0
	}
	return nodeMTTF / float64(nodes)
}
