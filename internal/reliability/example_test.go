package reliability_test

import (
	"fmt"

	"repro/internal/reliability"
)

// SECDED in one breath: a flipped bit is corrected transparently.
func ExampleDecode() {
	cw := reliability.Encode(0xDEADBEEF)
	cw.FlipBit(13) // particle strike
	data, status := reliability.Decode(cw)
	fmt.Printf("%#x %v\n", data, status)
	// Output: 0xdeadbeef corrected
}

// Five nines from commodity parts: the paper's Table A.2 cost collapse.
func ExampleReplicasForTarget() {
	n, _ := reliability.ReplicasForTarget(0.99, 0.99999)
	fmt.Printf("%d replicas\n", n)
	// Output: 3 replicas
}
