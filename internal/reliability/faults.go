package reliability

import (
	"math"

	"repro/internal/stats"
)

// SoftErrorModel converts a technology node's FIT density into event rates
// for a memory of a given size.
type SoftErrorModel struct {
	// FITPerMb is failures (bit flips) per 1e9 device-hours per megabit.
	FITPerMb float64
	// Megabits is the protected array size.
	Megabits float64
}

// FlipsPerSecond returns the expected raw bit-flip rate.
func (m SoftErrorModel) FlipsPerSecond() float64 {
	return m.FITPerMb * m.Megabits / 1e9 / 3600
}

// ExpectedFlips returns the expected flips over an interval in seconds.
func (m SoftErrorModel) ExpectedFlips(seconds float64) float64 {
	return m.FlipsPerSecond() * seconds
}

// UncorrectableRate returns the per-word-per-scrub probability that two or
// more flips land in the same 72-bit ECC word between scrubs — the residual
// error ECC cannot hide. lambdaWord is the per-word flip rate (flips/s) and
// scrubSeconds the scrub interval: 1 - e^-x - x e^-x for x = lambda*T.
func UncorrectableRate(lambdaWord, scrubSeconds float64) float64 {
	x := lambdaWord * scrubSeconds
	if x < 1e-4 {
		// Series expansion avoids catastrophic cancellation at tiny x:
		// 1 - e^-x - x e^-x = x²/2 - x³/3 + O(x⁴).
		return x * x * (0.5 - x/3)
	}
	return 1 - math.Exp(-x) - x*math.Exp(-x)
}

// InjectionResult summarizes a fault-injection campaign over ECC-protected
// memory.
type InjectionResult struct {
	WordsInjected  int
	SingleFlips    int
	DoubleFlips    int
	CorrectedOK    int // single flips corrected with right data
	DetectedDouble int // double flips flagged uncorrectable
	SilentWrong    int // decode returned wrong data without flagging
}

// InjectAndDecode runs a Monte-Carlo fault-injection campaign: for each of
// n words it injects one flip with pSingle, a second flip with pDouble
// (given a first), then decodes and scores the outcome. It validates the
// SECDED contract: all singles corrected, all doubles detected, nothing
// silent.
func InjectAndDecode(n int, pSingle, pDouble float64, r *stats.RNG) InjectionResult {
	var res InjectionResult
	for i := 0; i < n; i++ {
		data := r.Uint64()
		cw := Encode(data)
		flips := 0
		if r.Bool(pSingle) {
			flips = 1
			if r.Bool(pDouble) {
				flips = 2
			}
		}
		res.WordsInjected++
		first := -1
		for f := 0; f < flips; f++ {
			idx := r.Intn(codewordBits)
			for idx == first {
				idx = r.Intn(codewordBits)
			}
			cw.FlipBit(idx)
			first = idx
		}
		got, status := Decode(cw)
		switch flips {
		case 0:
			if status != OK || got != data {
				res.SilentWrong++
			}
		case 1:
			res.SingleFlips++
			if status == Corrected && got == data {
				res.CorrectedOK++
			} else {
				res.SilentWrong++
			}
		case 2:
			res.DoubleFlips++
			if status == Uncorrectable {
				res.DetectedDouble++
			} else if got != data {
				res.SilentWrong++
			}
		}
	}
	return res
}
