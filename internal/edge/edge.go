// Package edge models the paper's "Putting It All Together — Eco-System
// Architecture" question (§2.1): how should computation split between a
// portable device and the cloud, adapting to the reliability and energy of
// the uplink? It provides a linear processing-pipeline model, exhaustive
// optimal split search under latency/energy objectives, and a dynamic
// controller compared against static splits across uplink states.
package edge

import (
	"math"
)

// Stage is one step of a processing pipeline (e.g. capture → features →
// classify → render).
type Stage struct {
	// Name identifies the stage.
	Name string
	// Ops is the computational work.
	Ops float64
	// OutBytes is the size of the stage's output (input to the next
	// stage, or what must cross the uplink if the pipeline is cut here).
	OutBytes float64
}

// Device is the portable platform.
type Device struct {
	// OpsPerSec is device compute throughput.
	OpsPerSec float64
	// EnergyPerOp is device compute energy (J/op).
	EnergyPerOp float64
}

// Cloud is the remote side; device energy is not charged for cloud compute.
type Cloud struct {
	// OpsPerSec is effective cloud throughput for this app.
	OpsPerSec float64
}

// Uplink is the wireless link state.
type Uplink struct {
	// BytesPerSec is uplink throughput.
	BytesPerSec float64
	// RTTSeconds is the round-trip floor paid once when offloading.
	RTTSeconds float64
	// EnergyPerByte is radio energy charged to the device.
	EnergyPerByte float64
	// Up is false during outages (offloading impossible).
	Up bool
}

// Eval reports latency and device energy for cutting the pipeline after
// stage k (k stages run on device, len(stages)-k in the cloud; k may be 0
// or len(stages)). If the uplink is down, only the full-device split
// (k = len(stages)) is feasible; infeasible splits return +Inf metrics.
func Eval(stages []Stage, k int, d Device, c Cloud, u Uplink) (latency, deviceEnergy float64) {
	if k < 0 || k > len(stages) {
		panic("edge: split point out of range")
	}
	latency = 0.0
	deviceEnergy = 0.0
	for i := 0; i < k; i++ {
		latency += stages[i].Ops / d.OpsPerSec
		deviceEnergy += stages[i].Ops * d.EnergyPerOp
	}
	if k == len(stages) {
		return latency, deviceEnergy
	}
	// Remaining stages go to the cloud: pay the cut transfer.
	if !u.Up {
		return math.Inf(1), math.Inf(1)
	}
	var cutBytes float64
	if k == 0 {
		// Raw input of stage 0 approximated by its output size scaled up:
		// use the stage's own OutBytes if no explicit input; we model raw
		// input as the first stage's InBytes via convention below.
		cutBytes = rawInputBytes(stages)
	} else {
		cutBytes = stages[k-1].OutBytes
	}
	latency += u.RTTSeconds + cutBytes/u.BytesPerSec
	deviceEnergy += cutBytes * u.EnergyPerByte
	for i := k; i < len(stages); i++ {
		latency += stages[i].Ops / c.OpsPerSec
	}
	return latency, deviceEnergy
}

// rawInputBytes is the size of the unprocessed input when offloading
// everything (k=0): by convention it is the first stage's output inflated
// by its reduction factor, defaulting to 10x the first output.
func rawInputBytes(stages []Stage) float64 {
	if len(stages) == 0 {
		return 0
	}
	return 10 * stages[0].OutBytes
}

// Objective selects what BestSplit minimizes.
type Objective int

// The supported objectives.
const (
	// MinLatency minimizes end-to-end latency.
	MinLatency Objective = iota
	// MinEnergy minimizes device energy.
	MinEnergy
	// MinEnergyUnderLatency minimizes device energy subject to a latency
	// bound.
	MinEnergyUnderLatency
)

// BestSplit exhaustively searches split points. latencyBound applies only
// to MinEnergyUnderLatency; when no split meets the bound, the
// lowest-latency split is returned.
func BestSplit(stages []Stage, d Device, c Cloud, u Uplink, obj Objective, latencyBound float64) (k int, latency, energy float64) {
	bestK := -1
	bestLat, bestE := math.Inf(1), math.Inf(1)
	fallbackK, fallbackLat, fallbackE := -1, math.Inf(1), math.Inf(1)
	for cut := 0; cut <= len(stages); cut++ {
		lat, e := Eval(stages, cut, d, c, u)
		if lat < fallbackLat {
			fallbackK, fallbackLat, fallbackE = cut, lat, e
		}
		better := false
		switch obj {
		case MinLatency:
			better = lat < bestLat
		case MinEnergy:
			better = e < bestE || (e == bestE && lat < bestLat)
		case MinEnergyUnderLatency:
			if lat > latencyBound {
				continue
			}
			better = e < bestE || (e == bestE && lat < bestLat)
		}
		if better {
			bestK, bestLat, bestE = cut, lat, e
		}
	}
	if bestK < 0 {
		return fallbackK, fallbackLat, fallbackE
	}
	return bestK, bestLat, bestE
}

// UplinkStates returns a representative day of uplink conditions for the
// adaptation experiment: good WiFi, congested cellular, and an outage, with
// occupancy weights.
func UplinkStates() []struct {
	Name   string
	Link   Uplink
	Weight float64
} {
	return []struct {
		Name   string
		Link   Uplink
		Weight float64
	}{
		{"wifi", Uplink{BytesPerSec: 2e6, RTTSeconds: 0.02, EnergyPerByte: 1e-7, Up: true}, 0.5},
		{"cellular", Uplink{BytesPerSec: 2e5, RTTSeconds: 0.08, EnergyPerByte: 1e-6, Up: true}, 0.4},
		{"outage", Uplink{Up: false}, 0.1},
	}
}

// AdaptationGain compares a static split (chosen for the first state) to
// per-state re-optimization across the weighted states, returning
// (staticEnergy, adaptiveEnergy, staticLatency, adaptiveLatency) weighted
// means under MinEnergyUnderLatency with the given bound.
func AdaptationGain(stages []Stage, d Device, c Cloud, bound float64) (se, ae, sl, al float64) {
	states := UplinkStates()
	staticK, _, _ := BestSplit(stages, d, c, states[0].Link, MinEnergyUnderLatency, bound)
	for _, st := range states {
		lat, e := Eval(stages, staticK, d, c, st.Link)
		if math.IsInf(lat, 1) {
			// Static split infeasible (outage while split offloads):
			// device falls back to local-only at a latency penalty for
			// the re-dispatch.
			lat, e = Eval(stages, len(stages), d, c, st.Link)
			lat += bound // missed-deadline penalty
		}
		se += st.Weight * e
		sl += st.Weight * lat
		_, alat, aen := BestSplit(stages, d, c, st.Link, MinEnergyUnderLatency, bound)
		ae += st.Weight * aen
		al += st.Weight * alat
	}
	return se, ae, sl, al
}

// VisionPipeline returns the running example: a mobile augmented-reality
// pipeline (the "Google Glasses" workload of §2.1) — capture produces 200KB
// frames, feature extraction reduces to 20KB, classification to 200B, and
// rendering consumes the result.
func VisionPipeline() []Stage {
	return []Stage{
		{Name: "capture", Ops: 2e6, OutBytes: 200e3},
		{Name: "features", Ops: 2e8, OutBytes: 20e3},
		{Name: "classify", Ops: 2e9, OutBytes: 200},
		{Name: "render", Ops: 5e7, OutBytes: 200},
	}
}

// StandardDevice returns a smartphone-class device: 10 Gops/s at 100 pJ/op
// (the paper's ~10 giga-operations/watt).
func StandardDevice() Device {
	return Device{OpsPerSec: 1e10, EnergyPerOp: 1e-10}
}

// StandardCloud returns the cloud side: effectively 100x device throughput.
func StandardCloud() Cloud {
	return Cloud{OpsPerSec: 1e12}
}
