package edge

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEvalAllLocal(t *testing.T) {
	stages := VisionPipeline()
	d, c := StandardDevice(), StandardCloud()
	lat, e := Eval(stages, len(stages), d, c, Uplink{Up: false})
	// Local-only must be feasible even during outages.
	if math.IsInf(lat, 1) || math.IsInf(e, 1) {
		t.Fatal("all-local should not need the uplink")
	}
	var totOps float64
	for _, s := range stages {
		totOps += s.Ops
	}
	if math.Abs(lat-totOps/d.OpsPerSec) > 1e-12 {
		t.Fatalf("local latency = %v", lat)
	}
	if math.Abs(e-totOps*d.EnergyPerOp) > 1e-15 {
		t.Fatalf("local energy = %v", e)
	}
}

func TestEvalOffloadInfeasibleDuringOutage(t *testing.T) {
	stages := VisionPipeline()
	d, c := StandardDevice(), StandardCloud()
	lat, e := Eval(stages, 1, d, c, Uplink{Up: false})
	if !math.IsInf(lat, 1) || !math.IsInf(e, 1) {
		t.Fatal("offload during outage should be infeasible")
	}
}

func TestEvalPanicsOnBadSplit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad split did not panic")
		}
	}()
	Eval(VisionPipeline(), 9, StandardDevice(), StandardCloud(), Uplink{Up: true})
}

func TestOffloadSavesEnergyOnGoodLink(t *testing.T) {
	stages := VisionPipeline()
	d, c := StandardDevice(), StandardCloud()
	wifi := UplinkStates()[0].Link
	_, localE := Eval(stages, len(stages), d, c, wifi)
	// Split after features (k=2): ship 20KB instead of computing 2Gops
	// locally.
	_, splitE := Eval(stages, 2, d, c, wifi)
	if splitE >= localE {
		t.Fatalf("offload on wifi should save device energy: %v vs %v", splitE, localE)
	}
}

func TestBestSplitObjectives(t *testing.T) {
	stages := VisionPipeline()
	d, c := StandardDevice(), StandardCloud()
	wifi := UplinkStates()[0].Link

	kLat, lat, _ := BestSplit(stages, d, c, wifi, MinLatency, 0)
	kEn, _, en := BestSplit(stages, d, c, wifi, MinEnergy, 0)
	// Both must be valid cuts with finite metrics.
	if kLat < 0 || kEn < 0 || math.IsInf(lat, 1) || math.IsInf(en, 1) {
		t.Fatal("best splits invalid")
	}
	// Energy-optimal split must not beat the latency-optimal on latency.
	latAtEn, _ := Eval(stages, kEn, d, c, wifi)
	if latAtEn < lat-1e-12 {
		t.Fatal("latency optimum violated")
	}
	// On good wifi, pure energy objective offloads early (small k).
	if kEn > 2 {
		t.Fatalf("energy-optimal split = %d, want early offload", kEn)
	}
}

func TestBestSplitUnderLatencyBound(t *testing.T) {
	stages := VisionPipeline()
	d, c := StandardDevice(), StandardCloud()
	cell := UplinkStates()[1].Link
	// Tight bound on congested cellular: should push work on-device.
	kTight, latTight, _ := BestSplit(stages, d, c, cell, MinEnergyUnderLatency, 0.3)
	if latTight > 0.3+1e-9 {
		t.Fatalf("bound violated: %v", latTight)
	}
	// Loose bound allows cheaper (more offloaded) splits.
	_, _, enLoose := BestSplit(stages, d, c, cell, MinEnergyUnderLatency, 10)
	_, _, enTight := BestSplit(stages, d, c, cell, MinEnergyUnderLatency, 0.3)
	if enLoose > enTight+1e-12 {
		t.Fatal("loosening the bound should not raise energy")
	}
	_ = kTight
}

func TestBestSplitFallsBackWhenBoundImpossible(t *testing.T) {
	stages := VisionPipeline()
	d, c := StandardDevice(), StandardCloud()
	wifi := UplinkStates()[0].Link
	k, lat, _ := BestSplit(stages, d, c, wifi, MinEnergyUnderLatency, 1e-9)
	if k < 0 || math.IsInf(lat, 1) {
		t.Fatal("fallback should return the fastest split")
	}
}

func TestAdaptationBeatsStatic(t *testing.T) {
	stages := VisionPipeline()
	d, c := StandardDevice(), StandardCloud()
	se, ae, sl, al := AdaptationGain(stages, d, c, 0.5)
	if ae > se+1e-12 {
		t.Fatalf("adaptive energy %v should not exceed static %v", ae, se)
	}
	if al > sl+1e-12 {
		t.Fatalf("adaptive latency %v should not exceed static %v", al, sl)
	}
	// The paper's point: adaptation wins meaningfully, not marginally.
	if ae >= se*0.99 && al >= sl*0.99 {
		t.Fatal("adaptation should win on at least one axis by >= 1%")
	}
}

// Property: Eval latency and energy are finite and non-negative for all
// feasible splits; k=len(stages) never touches the link.
func TestQuickEvalSane(t *testing.T) {
	stages := VisionPipeline()
	d, c := StandardDevice(), StandardCloud()
	f := func(kRaw uint8, bwRaw uint16, up bool) bool {
		k := int(kRaw) % (len(stages) + 1)
		u := Uplink{
			BytesPerSec:   float64(bwRaw) + 1,
			RTTSeconds:    0.01,
			EnergyPerByte: 1e-7,
			Up:            up,
		}
		lat, e := Eval(stages, k, d, c, u)
		if k == len(stages) {
			return !math.IsInf(lat, 1) && e >= 0
		}
		if !up {
			return math.IsInf(lat, 1)
		}
		return lat > 0 && e > 0 && !math.IsInf(lat, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
