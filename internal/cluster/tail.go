// Package cluster models warehouse-scale computing: the fork-join
// tail-latency arithmetic the paper quotes from Dean ("if 100 systems must
// jointly respond to a request, 63% of requests will incur the
// 99-percentile delay"), Monte-Carlo fork-join simulation with hedged
// requests, a DES-based queueing cluster for load-dependent tails, and a
// warehouse power/capacity model.
package cluster

import (
	"math"

	"repro/internal/stats"
)

// FractionAboveQuantile returns the closed-form probability that a fork-join
// request over fanout independent leaves exceeds the per-leaf quantile q:
// 1 - q^fanout. With q = 0.99 and fanout = 100 this is the paper's 63%.
func FractionAboveQuantile(fanout int, q float64) float64 {
	if fanout < 1 {
		panic("cluster: fanout must be >= 1")
	}
	if q < 0 || q > 1 {
		panic("cluster: quantile must be in [0,1]")
	}
	return 1 - math.Pow(q, float64(fanout))
}

// HedgePolicy selects a straggler mitigation.
type HedgePolicy int

// The modelled policies.
const (
	// NoHedge sends one request per leaf.
	NoHedge HedgePolicy = iota
	// Hedged sends a duplicate to an independent replica once the first
	// copy has outlived the hedge-quantile latency, taking the earlier
	// completion (Dean's "hedged requests").
	Hedged
)

func (h HedgePolicy) String() string {
	if h == NoHedge {
		return "none"
	}
	return "hedged"
}

// ForkJoinConfig parameterizes a Monte-Carlo fork-join experiment.
type ForkJoinConfig struct {
	// Fanout is the number of leaves that must all respond.
	Fanout int
	// Leaf is the per-leaf latency distribution.
	Leaf stats.Dist
	// Trials is the number of simulated requests.
	Trials int
	// Policy selects straggler mitigation.
	Policy HedgePolicy
	// HedgeQuantile is the leaf quantile after which a hedge fires
	// (e.g. 0.95).
	HedgeQuantile float64
}

// ForkJoinResult summarizes the simulated request-latency distribution.
type ForkJoinResult struct {
	// Mean, P50, P99 are request (join) latencies.
	Mean, P50, P99 float64
	// FracAboveLeafP99 is the fraction of requests slower than the
	// per-leaf p99 — the paper's 63% number.
	FracAboveLeafP99 float64
	// ExtraLoad is the fraction of additional leaf requests issued by
	// hedging (0 for NoHedge).
	ExtraLoad float64
	// LeafP99 is the per-leaf 99th percentile used as the threshold.
	LeafP99 float64
}

// SimulateForkJoin runs the Monte-Carlo experiment.
func SimulateForkJoin(cfg ForkJoinConfig, r *stats.RNG) ForkJoinResult {
	if cfg.Fanout < 1 || cfg.Trials < 1 {
		panic("cluster: need fanout >= 1 and trials >= 1")
	}
	leafP99 := cfg.Leaf.Quantile(0.99)
	hedgeAt := 0.0
	if cfg.Policy == Hedged {
		q := cfg.HedgeQuantile
		if q <= 0 || q >= 1 {
			q = 0.95
		}
		hedgeAt = cfg.Leaf.Quantile(q)
	}
	lat := stats.NewSample(cfg.Trials)
	over := 0
	extra := 0
	totalLeaf := 0
	for t := 0; t < cfg.Trials; t++ {
		worst := 0.0
		for l := 0; l < cfg.Fanout; l++ {
			v := cfg.Leaf.Sample(r)
			totalLeaf++
			if cfg.Policy == Hedged && v > hedgeAt {
				// Second copy issued at hedgeAt on an independent replica.
				v2 := hedgeAt + cfg.Leaf.Sample(r)
				extra++
				totalLeaf++
				if v2 < v {
					v = v2
				}
			}
			if v > worst {
				worst = v
			}
		}
		lat.Add(worst)
		if worst > leafP99 {
			over++
		}
	}
	return ForkJoinResult{
		Mean:             lat.Mean(),
		P50:              lat.Percentile(50),
		P99:              lat.Percentile(99),
		FracAboveLeafP99: float64(over) / float64(cfg.Trials),
		ExtraLoad:        float64(extra) / float64(cfg.Trials*cfg.Fanout),
		LeafP99:          leafP99,
	}
}

// DefaultLeafLatency returns the leaf latency model used across E3-family
// experiments: a 1 ms floor plus a log-normal service body with a heavy
// straggler mode (GC pauses, queueing, background work), calibrated so the
// p99/p50 ratio is roughly 10x, as production traces show.
func DefaultLeafLatency() stats.Dist {
	return stats.Shifted{
		Offset: 0.001,
		D: stats.Bimodal{
			Base:   stats.LogNormal{Mu: math.Log(0.004), Sigma: 0.5},
			Heavy:  stats.LogNormal{Mu: math.Log(0.060), Sigma: 0.6},
			PHeavy: 0.015,
		},
	}
}
