package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestDeanClosedForm(t *testing.T) {
	// The paper: fanout 100 at per-leaf p99 -> 63%.
	got := FractionAboveQuantile(100, 0.99)
	want := 1 - math.Pow(0.99, 100) // 0.6340
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("closed form = %v, want %v", got, want)
	}
	if got < 0.63 || got > 0.64 {
		t.Fatalf("fanout-100 fraction = %v, want ~0.63", got)
	}
	// Single leaf: exactly 1%.
	if f := FractionAboveQuantile(1, 0.99); math.Abs(f-0.01) > 1e-12 {
		t.Fatalf("fanout-1 fraction = %v", f)
	}
}

func TestClosedFormPanics(t *testing.T) {
	for i, f := range []func(){
		func() { FractionAboveQuantile(0, 0.99) },
		func() { FractionAboveQuantile(10, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMonteCarloMatchesClosedForm(t *testing.T) {
	r := stats.NewRNG(2012)
	res := SimulateForkJoin(ForkJoinConfig{
		Fanout: 100,
		Leaf:   stats.Exponential{Rate: 100},
		Trials: 20000,
	}, r)
	if math.Abs(res.FracAboveLeafP99-0.634) > 0.02 {
		t.Fatalf("MC fraction = %v, want ~0.634", res.FracAboveLeafP99)
	}
	if res.ExtraLoad != 0 {
		t.Fatal("no hedging should mean no extra load")
	}
	if res.P99 < res.P50 || res.Mean <= 0 {
		t.Fatal("latency stats inconsistent")
	}
}

// Property: the 63% result is distribution-free — it holds for any
// continuous leaf distribution.
func TestQuickDistributionFree(t *testing.T) {
	dists := []stats.Dist{
		stats.Exponential{Rate: 3},
		stats.LogNormal{Mu: 0, Sigma: 1},
		stats.Pareto{Xm: 1, Alpha: 2.5},
		stats.Weibull{Lambda: 2, K: 0.7},
	}
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		d := dists[int(seed%uint64(len(dists)))]
		res := SimulateForkJoin(ForkJoinConfig{
			Fanout: 100, Leaf: d, Trials: 4000}, r)
		return math.Abs(res.FracAboveLeafP99-0.634) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHedgingCollapsesTail(t *testing.T) {
	leaf := DefaultLeafLatency()
	r1 := stats.NewRNG(7)
	plain := SimulateForkJoin(ForkJoinConfig{
		Fanout: 100, Leaf: leaf, Trials: 20000}, r1)
	r2 := stats.NewRNG(7)
	hedged := SimulateForkJoin(ForkJoinConfig{
		Fanout: 100, Leaf: leaf, Trials: 20000,
		Policy: Hedged, HedgeQuantile: 0.95}, r2)
	// Dean's result shape: hedging cuts the join p99 dramatically for a
	// few percent extra load.
	if hedged.P99 >= plain.P99*0.7 {
		t.Fatalf("hedged p99 %v should be well below plain %v", hedged.P99, plain.P99)
	}
	if hedged.ExtraLoad > 0.08 {
		t.Fatalf("hedge extra load = %v, want ~5%%", hedged.ExtraLoad)
	}
	if hedged.ExtraLoad <= 0 {
		t.Fatal("hedging issued no duplicates")
	}
}

func TestFanoutSweepMonotone(t *testing.T) {
	// Fraction above leaf p99 grows with fanout.
	prev := -1.0
	for _, n := range []int{1, 10, 100, 1000} {
		f := FractionAboveQuantile(n, 0.99)
		if f <= prev {
			t.Fatal("fraction should grow with fanout")
		}
		prev = f
	}
}

func TestQueueingClusterLoadDependence(t *testing.T) {
	base := QueueingConfig{
		Leaves:      20,
		LeafService: stats.Exponential{Rate: 1000}, // 1ms
		Requests:    4000,
		Seed:        99,
	}
	low := base
	low.RootRate = 100 // ~10% util
	high := base
	high.RootRate = 700 // ~70% util
	lowRes := SimulateQueueing(low)
	highRes := SimulateQueueing(high)
	if highRes.P99 <= lowRes.P99 {
		t.Fatalf("queueing should inflate tails: low %v high %v", lowRes.P99, highRes.P99)
	}
	if highRes.MeanLeafUtilization <= lowRes.MeanLeafUtilization {
		t.Fatal("utilization should grow with load")
	}
	if lowRes.Completed != 4000 || highRes.Completed != 4000 {
		t.Fatal("lost requests")
	}
}

func TestQueueingDeterminism(t *testing.T) {
	cfg := QueueingConfig{
		Leaves: 10, RootRate: 200,
		LeafService: stats.Exponential{Rate: 1000},
		Requests:    500, Seed: 5,
	}
	a, b := SimulateQueueing(cfg), SimulateQueueing(cfg)
	if a != b {
		t.Fatal("queueing sim not deterministic")
	}
}

func TestQueueingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config did not panic")
		}
	}()
	SimulateQueueing(QueueingConfig{Leaves: 0, Requests: 1})
}

func TestWarehouseModel(t *testing.T) {
	w := Warehouse{
		Machines:      50000,
		MachineWatts:  300,
		PUE:           1.2,
		OpsPerMachine: 1e11,
	}
	if w.TotalPowerWatts() != 50000*300*1.2 {
		t.Fatal("power wrong")
	}
	if w.TotalOps() != 50000*1e11 {
		t.Fatal("ops wrong")
	}
	if w.OpsPerWatt() <= 0 {
		t.Fatal("efficiency wrong")
	}
	// 10MW budget: how many machines fit.
	n := w.MachinesForPower(10e6)
	if n != 27777 { // floor(1e7 / 360)
		t.Fatalf("machines for 10MW = %d", n)
	}
}

func TestDefaultLeafShape(t *testing.T) {
	leaf := DefaultLeafLatency()
	r := stats.NewRNG(3)
	s := stats.NewSample(50000)
	for i := 0; i < 50000; i++ {
		s.Add(leaf.Sample(r))
	}
	// p99/p50 should be heavy (several x), and all latencies above floor.
	if s.Min() < 0.001 {
		t.Fatal("latency below RTT floor")
	}
	ratio := s.Percentile(99) / s.Percentile(50)
	if ratio < 3 {
		t.Fatalf("p99/p50 = %v, want heavy tail", ratio)
	}
}
