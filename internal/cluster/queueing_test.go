package cluster

import (
	"testing"

	"repro/internal/stats"
)

// TestQueueingHighUtilizationEdge guards the load-dependence property the
// DES queueing model promises at the hard end: as RootRate approaches leaf
// saturation (service rate 1000/s per leaf, one task per leaf per root
// request), the P99 must keep growing — steeply near saturation — and no
// request may be lost even when queues are long.
func TestQueueingHighUtilizationEdge(t *testing.T) {
	base := QueueingConfig{
		Leaves:      10,
		LeafService: stats.Exponential{Rate: 1000}, // 1ms mean per leaf task
		Requests:    3000,
		Seed:        42,
	}
	rates := []float64{300, 600, 900, 970} // ~30%..97% utilization
	var results []QueueingResult
	for _, rate := range rates {
		cfg := base
		cfg.RootRate = rate
		res := SimulateQueueing(cfg)
		if res.Completed != cfg.Requests {
			t.Fatalf("rate %v: completed %d of %d requests", rate, res.Completed, cfg.Requests)
		}
		if res.P99 < res.P50 || res.P50 <= 0 {
			t.Fatalf("rate %v: implausible percentiles p50=%v p99=%v", rate, res.P50, res.P99)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if results[i].P99 <= results[i-1].P99 {
			t.Fatalf("P99 must grow with load: rate %v -> %v but p99 %v -> %v",
				rates[i-1], rates[i], results[i-1].P99, results[i].P99)
		}
		if results[i].MeanLeafUtilization <= results[i-1].MeanLeafUtilization {
			t.Fatalf("utilization must grow with load: rate %v -> %v but util %v -> %v",
				rates[i-1], rates[i], results[i-1].MeanLeafUtilization,
				results[i].MeanLeafUtilization)
		}
	}
	// Near saturation the tail should blow up qualitatively, not creep:
	// p99 at 97% load must be many times the lightly loaded p99.
	lo, hi := results[0], results[len(results)-1]
	if hi.P99 < 5*lo.P99 {
		t.Fatalf("near-saturation p99 %v is not >= 5x light-load p99 %v", hi.P99, lo.P99)
	}
	// Sanity on the utilization estimate itself at the edge.
	if hi.MeanLeafUtilization < 0.85 || hi.MeanLeafUtilization > 1.0 {
		t.Fatalf("near-saturation utilization implausible: %v", hi.MeanLeafUtilization)
	}
}
