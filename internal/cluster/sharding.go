package cluster

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Sharder maps keys to servers. The paper's data-center direction asks for
// "reasoning about locality and enforcing efficient locality properties in
// data center systems" (§2.1); placement policy is the first-order lever,
// and imbalance feeds straight into the tail results of E3 (the hottest
// shard sets the join latency).
type Sharder interface {
	// Place returns the server index in [0, Servers()) for a key.
	Place(key uint64) int
	// Servers returns the server count.
	Servers() int
}

// ModuloSharder is the naive key%N placement: perfectly balanced for
// uniform keys, but resharding on N→N+1 moves almost every key.
type ModuloSharder struct{ N int }

// Place implements Sharder.
func (m ModuloSharder) Place(key uint64) int { return int(key % uint64(m.N)) }

// Servers implements Sharder.
func (m ModuloSharder) Servers() int { return m.N }

// ConsistentHash implements consistent hashing with virtual nodes: each
// server owns VNodes points on a hash ring; a key belongs to the first
// point clockwise. Adding a server moves only ~1/N of keys.
type ConsistentHash struct {
	n      int
	points []ringPoint
}

type ringPoint struct {
	hash   uint64
	server int
}

// NewConsistentHash builds a ring for n servers with vnodes points each.
func NewConsistentHash(n, vnodes int) *ConsistentHash {
	if n < 1 || vnodes < 1 {
		panic("cluster: need n >= 1 and vnodes >= 1")
	}
	ch := &ConsistentHash{n: n}
	for s := 0; s < n; s++ {
		for v := 0; v < vnodes; v++ {
			ch.points = append(ch.points, ringPoint{
				hash:   splitmix(uint64(s)<<32 | uint64(v)),
				server: s,
			})
		}
	}
	sort.Slice(ch.points, func(i, j int) bool { return ch.points[i].hash < ch.points[j].hash })
	return ch
}

// HashString hashes a string key (FNV-1a) into the uint64 key space the
// sharders place — the one place routing callers get their ring keys
// from, so every consumer of a ring agrees on placement by construction.
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// splitmix is the same SplitMix64 finalizer the stats package uses, inlined
// so ring geometry is independent of RNG stream state.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Place implements Sharder.
func (ch *ConsistentHash) Place(key uint64) int {
	h := splitmix(key)
	i := sort.Search(len(ch.points), func(i int) bool { return ch.points[i].hash >= h })
	if i == len(ch.points) {
		i = 0
	}
	return ch.points[i].server
}

// Servers implements Sharder.
func (ch *ConsistentHash) Servers() int { return ch.n }

// PlaceK returns up to k distinct servers for a key, in ring order
// starting at the key's owner: element 0 is Place(key), element 1 the
// next distinct server clockwise, and so on. This is the failover chain a
// router walks when the owner is unhealthy — successive ring positions,
// so every router instance agrees on the retry order without
// coordination. k is clamped to the server count.
func (ch *ConsistentHash) PlaceK(key uint64, k int) []int {
	if k > ch.n {
		k = ch.n
	}
	if k < 1 {
		return nil
	}
	h := splitmix(key)
	start := sort.Search(len(ch.points), func(i int) bool { return ch.points[i].hash >= h })
	out := make([]int, 0, k)
	seen := make([]bool, ch.n)
	for i := 0; i < len(ch.points) && len(out) < k; i++ {
		p := ch.points[(start+i)%len(ch.points)]
		if seen[p.server] {
			continue
		}
		seen[p.server] = true
		out = append(out, p.server)
	}
	return out
}

// LoadStats reports placement balance for a key workload.
type LoadStats struct {
	// MaxOverMean is the hottest server's load over the mean (1.0 =
	// perfect balance); this factor multiplies the per-leaf latency the
	// fork-join tail sees.
	MaxOverMean float64
	// PerServer is the per-server key (or weight) totals.
	PerServer []float64
}

// MeasureLoad places nKeys Zipf-weighted keys (skew s; s=0 for uniform
// weights) and reports balance.
func MeasureLoad(sh Sharder, nKeys int, skew float64, r *stats.RNG) LoadStats {
	load := make([]float64, sh.Servers())
	var z *stats.Zipf
	if skew > 0 {
		z = stats.NewZipf(nKeys, skew)
	}
	for k := 0; k < nKeys; k++ {
		w := 1.0
		if z != nil {
			w = z.Prob(k+1) * float64(nKeys)
		}
		// Random key identity (stable per index) decouples popularity
		// rank from ring position.
		key := splitmix(uint64(k) * 0x9e3779b97f4a7c15)
		load[sh.Place(key)] += w
	}
	_ = r
	mean := 0.0
	for _, l := range load {
		mean += l
	}
	mean /= float64(len(load))
	maxL := 0.0
	for _, l := range load {
		if l > maxL {
			maxL = l
		}
	}
	st := LoadStats{PerServer: load}
	if mean > 0 {
		st.MaxOverMean = maxL / mean
	}
	return st
}

// MovedFraction returns the fraction of nKeys whose placement changes when
// going from sharder a to sharder b — the resharding cost of scaling out.
func MovedFraction(a, b Sharder, nKeys int) float64 {
	moved := 0
	for k := 0; k < nKeys; k++ {
		key := splitmix(uint64(k) * 0x9e3779b97f4a7c15)
		if a.Place(key) != b.Place(key) {
			moved++
		}
	}
	return float64(moved) / float64(nKeys)
}

func (s LoadStats) String() string {
	return fmt.Sprintf("max/mean=%.3f over %d servers", s.MaxOverMean, len(s.PerServer))
}
