package cluster_test

import (
	"fmt"

	"repro/internal/cluster"
)

// The paper's §2.1 arithmetic: at fan-out 100, the fraction of requests
// that see at least one leaf's p99 latency.
func ExampleFractionAboveQuantile() {
	fmt.Printf("%.1f%%\n", 100*cluster.FractionAboveQuantile(100, 0.99))
	// Output: 63.4%
}

func ExampleWarehouse_OpsPerWatt() {
	w := cluster.Warehouse{
		Machines:      27777, // what fits in 10MW at 360W/machine
		MachineWatts:  300,
		PUE:           1.2,
		OpsPerMachine: 3e12,
	}
	fmt.Printf("%.1f Gops/W\n", w.OpsPerWatt()/1e9)
	// Output: 8.3 Gops/W
}
