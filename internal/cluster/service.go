package cluster

import (
	"repro/internal/des"
	"repro/internal/stats"
)

// QueueingConfig parameterizes the DES fork-join cluster: n leaf servers,
// Poisson root arrivals fanning out to every leaf, leaf queues served FIFO.
// Unlike the Monte-Carlo model, tails here grow with utilization — the
// load-dependence the paper's predictability discussion needs.
type QueueingConfig struct {
	// Leaves is the number of leaf servers (the fanout).
	Leaves int
	// RootRate is root-request arrival rate (req/s).
	RootRate float64
	// LeafService is per-leaf service demand (seconds).
	LeafService stats.Dist
	// Requests is how many root requests to simulate.
	Requests int
	// Seed drives all randomness.
	Seed uint64
}

// QueueingResult summarizes the DES run.
type QueueingResult struct {
	// P50, P99, Mean are root (join) response times including queueing.
	P50, P99, Mean float64
	// MeanLeafUtilization is the average leaf busy fraction.
	MeanLeafUtilization float64
	// Completed counts finished root requests.
	Completed int
}

// SimulateQueueing runs the queueing fork-join cluster.
func SimulateQueueing(cfg QueueingConfig) QueueingResult {
	if cfg.Leaves < 1 || cfg.Requests < 1 {
		panic("cluster: need leaves >= 1 and requests >= 1")
	}
	sim := des.New()
	rng := stats.NewRNG(cfg.Seed)
	leaves := make([]*des.Resource, cfg.Leaves)
	for i := range leaves {
		leaves[i] = des.NewResource(sim, 1)
	}
	lat := stats.NewSample(cfg.Requests)

	inter := stats.Exponential{Rate: cfg.RootRate}
	arrive := 0.0
	for q := 0; q < cfg.Requests; q++ {
		arrive += inter.Sample(rng)
		// Pre-sample leaf demands for determinism independent of event
		// interleaving.
		demands := make([]float64, cfg.Leaves)
		for i := range demands {
			d := cfg.LeafService.Sample(rng)
			if d < 0 {
				d = 0
			}
			demands[i] = d
		}
		sim.At(arrive, func() {
			start := sim.Now()
			pending := cfg.Leaves
			for i, r := range leaves {
				d := demands[i]
				r.Use(d, func() {
					pending--
					if pending == 0 {
						lat.Add(sim.Now() - start)
					}
				})
			}
		})
	}
	sim.Run()
	util := 0.0
	for _, r := range leaves {
		util += r.Utilization()
	}
	return QueueingResult{
		P50:                 lat.Percentile(50),
		P99:                 lat.Percentile(99),
		Mean:                lat.Mean(),
		MeanLeafUtilization: util / float64(cfg.Leaves),
		Completed:           lat.N(),
	}
}

// Warehouse models the power structure of a warehouse-scale computer.
type Warehouse struct {
	// Machines is the server count.
	Machines int
	// MachineWatts is per-server power at load.
	MachineWatts float64
	// PUE is power usage effectiveness (total facility / IT power).
	PUE float64
	// OpsPerMachine is delivered ops/s per server.
	OpsPerMachine float64
}

// TotalPowerWatts returns facility power.
func (w Warehouse) TotalPowerWatts() float64 {
	return float64(w.Machines) * w.MachineWatts * w.PUE
}

// TotalOps returns aggregate ops/s.
func (w Warehouse) TotalOps() float64 {
	return float64(w.Machines) * w.OpsPerMachine
}

// OpsPerWatt returns facility-level efficiency.
func (w Warehouse) OpsPerWatt() float64 {
	p := w.TotalPowerWatts()
	if p == 0 {
		return 0
	}
	return w.TotalOps() / p
}

// MachinesForPower returns how many machines fit a facility power budget.
func (w Warehouse) MachinesForPower(budgetWatts float64) int {
	per := w.MachineWatts * w.PUE
	if per <= 0 {
		return 0
	}
	return int(budgetWatts / per)
}
