package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestModuloBalanced(t *testing.T) {
	sh := ModuloSharder{N: 16}
	st := MeasureLoad(sh, 100000, 0, stats.NewRNG(1))
	if st.MaxOverMean > 1.05 {
		t.Fatalf("modulo imbalance = %v, want ~1", st.MaxOverMean)
	}
}

func TestConsistentHashCoversAllServers(t *testing.T) {
	ch := NewConsistentHash(16, 128)
	st := MeasureLoad(ch, 100000, 0, stats.NewRNG(2))
	for s, l := range st.PerServer {
		if l == 0 {
			t.Fatalf("server %d received no keys", s)
		}
	}
}

func TestVNodesImproveBalance(t *testing.T) {
	few := MeasureLoad(NewConsistentHash(16, 2), 200000, 0, stats.NewRNG(3))
	many := MeasureLoad(NewConsistentHash(16, 256), 200000, 0, stats.NewRNG(3))
	if many.MaxOverMean >= few.MaxOverMean {
		t.Fatalf("more vnodes should balance better: %v vs %v",
			many.MaxOverMean, few.MaxOverMean)
	}
	if many.MaxOverMean > 1.3 {
		t.Fatalf("256-vnode imbalance = %v, want < 1.3", many.MaxOverMean)
	}
}

func TestReshardingCost(t *testing.T) {
	const keys = 100000
	// Modulo: adding one server moves almost everything.
	modMoved := MovedFraction(ModuloSharder{N: 16}, ModuloSharder{N: 17}, keys)
	if modMoved < 0.8 {
		t.Fatalf("modulo reshard moved %v, want > 0.8", modMoved)
	}
	// Consistent hashing: ~1/17 of keys.
	chMoved := MovedFraction(NewConsistentHash(16, 128), NewConsistentHash(17, 128), keys)
	if chMoved > 0.15 {
		t.Fatalf("consistent reshard moved %v, want ~1/17", chMoved)
	}
	if chMoved <= 0 {
		t.Fatal("some keys must move to the new server")
	}
}

func TestSkewDominatesPlacement(t *testing.T) {
	// With Zipf-1.1 popularity, even perfect placement cannot balance:
	// the hottest key dominates. max/mean must blow up for both policies.
	mod := MeasureLoad(ModuloSharder{N: 16}, 10000, 1.1, stats.NewRNG(5))
	ch := MeasureLoad(NewConsistentHash(16, 128), 10000, 1.1, stats.NewRNG(5))
	if mod.MaxOverMean < 2 || ch.MaxOverMean < 2 {
		t.Fatalf("skewed load should defeat placement: mod %v ch %v",
			mod.MaxOverMean, ch.MaxOverMean)
	}
}

func TestShardingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad ring config did not panic")
		}
	}()
	NewConsistentHash(0, 10)
}

func TestPlaceKStartsAtOwnerDistinctAndComplete(t *testing.T) {
	ch := NewConsistentHash(5, 64)
	for key := uint64(0); key < 2000; key++ {
		chain := ch.PlaceK(key, 5)
		if len(chain) != 5 {
			t.Fatalf("key %d: chain %v should cover all 5 servers", key, chain)
		}
		if chain[0] != ch.Place(key) {
			t.Fatalf("key %d: chain starts at %d, owner is %d", key, chain[0], ch.Place(key))
		}
		seen := map[int]bool{}
		for _, s := range chain {
			if s < 0 || s >= 5 || seen[s] {
				t.Fatalf("key %d: chain %v has out-of-range or duplicate server", key, chain)
			}
			seen[s] = true
		}
	}
}

func TestPlaceKClampsAndDegenerates(t *testing.T) {
	ch := NewConsistentHash(3, 16)
	if got := ch.PlaceK(42, 10); len(got) != 3 {
		t.Fatalf("k past server count should clamp to 3, got %v", got)
	}
	if got := ch.PlaceK(42, 0); got != nil {
		t.Fatalf("k=0 should yield nil, got %v", got)
	}
	if got := ch.PlaceK(42, 1); len(got) != 1 || got[0] != ch.Place(42) {
		t.Fatalf("k=1 should be exactly the owner, got %v", got)
	}
}

// The failover chain is the routing contract: element i+1 is where keys
// fail over when element i dies. Model the dead owner directly — a ring
// with the owner's points removed but identical geometry otherwise —
// and the survivor ring's owner must be exactly chain[1], per key.
func TestPlaceKPredictsFailover(t *testing.T) {
	ch := NewConsistentHash(4, 64)
	for key := uint64(0); key < 500; key++ {
		chain := ch.PlaceK(key, 2)
		owner, next := chain[0], chain[1]
		if owner == next {
			t.Fatalf("key %d: owner and successor identical", key)
		}
		survivors := &ConsistentHash{n: ch.n}
		for _, p := range ch.points {
			if p.server != owner {
				survivors.points = append(survivors.points, p)
			}
		}
		if got := survivors.Place(key); got != next {
			t.Fatalf("key %d: with owner %d dead, survivor ring places on %d but PlaceK promised %d",
				key, owner, got, next)
		}
	}
}

// Property: placement is deterministic and in range for both sharders.
func TestQuickPlacementSane(t *testing.T) {
	ch := NewConsistentHash(8, 64)
	mod := ModuloSharder{N: 8}
	f := func(key uint64) bool {
		a, b := ch.Place(key), ch.Place(key)
		if a != b || a < 0 || a >= 8 {
			return false
		}
		m := mod.Place(key)
		return m >= 0 && m < 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
