package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestKernelIntensity(t *testing.T) {
	// GEMM intensity grows with n (compute bound at scale).
	i128 := GEMM.Intensity(128)
	i1024 := GEMM.Intensity(1024)
	if i1024 <= i128 {
		t.Fatalf("GEMM intensity should grow: %v vs %v", i128, i1024)
	}
	// SpMV intensity is constant and low (memory bound).
	if SpMV.Intensity(1000) > 1 {
		t.Fatalf("SpMV intensity = %v, want < 1 op/byte", SpMV.Intensity(1000))
	}
}

func TestKernelByName(t *testing.T) {
	k, ok := KernelByName("fft")
	if !ok || k.Name != "fft" {
		t.Fatal("fft lookup failed")
	}
	if _, ok := KernelByName("nope"); ok {
		t.Fatal("bogus kernel found")
	}
	if len(Kernels()) < 6 {
		t.Fatal("expected at least 6 standard kernels")
	}
}

func TestKernelOpsPositive(t *testing.T) {
	for _, k := range Kernels() {
		for _, n := range []int{1, 16, 1024} {
			if k.Ops(n) <= 0 {
				t.Errorf("%s Ops(%d) = %v", k.Name, n, k.Ops(n))
			}
			if k.Bytes(n) <= 0 {
				t.Errorf("%s Bytes(%d) = %v", k.Name, n, k.Bytes(n))
			}
		}
		if k.ParallelFrac <= 0 || k.ParallelFrac > 1 {
			t.Errorf("%s ParallelFrac = %v", k.Name, k.ParallelFrac)
		}
		if k.AccelFrac < 0 || k.AccelFrac > 1 {
			t.Errorf("%s AccelFrac = %v", k.Name, k.AccelFrac)
		}
	}
}

func TestGenerateStream(t *testing.T) {
	cfg := DefaultStreamConfig()
	cfg.AnomalyRate = 0.2 // ~12 events over the minute below
	r := stats.NewRNG(7)
	ss := GenerateStream(cfg, 250*60, r) // one minute
	if len(ss) != 250*60 {
		t.Fatal("wrong sample count")
	}
	frac := AnomalyFraction(ss)
	// Expected: ~0.2 events/s * 50 samples / 250 Hz = ~4% of samples,
	// allow generous MC slack.
	if frac <= 0 || frac > 0.15 {
		t.Fatalf("anomaly fraction = %v", frac)
	}
	// Times increase.
	for i := 1; i < len(ss); i++ {
		if ss[i].T <= ss[i-1].T {
			t.Fatal("times not increasing")
		}
	}
}

func TestStreamDeterminism(t *testing.T) {
	cfg := DefaultStreamConfig()
	a := GenerateStream(cfg, 1000, stats.NewRNG(3))
	b := GenerateStream(cfg, 1000, stats.NewRNG(3))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("stream not deterministic")
		}
	}
}

func TestEWMADetectorCatchesAnomalies(t *testing.T) {
	cfg := DefaultStreamConfig()
	cfg.AnomalyRate = 0.1
	r := stats.NewRNG(11)
	ss := GenerateStream(cfg, 250*120, r)
	det := NewEWMADetector(0.05, 6)
	sc := ScoreDetector(det, ss)
	if sc.Recall() < 0.5 {
		t.Fatalf("detector recall = %v, want >= 0.5", sc.Recall())
	}
	// Should flag far fewer samples than it passes.
	if sc.FlaggedFraction() > 0.2 {
		t.Fatalf("flagged fraction = %v, detector too chatty", sc.FlaggedFraction())
	}
}

func TestDetectorScoreEdges(t *testing.T) {
	var sc DetectorScore
	if sc.Recall() != 0 || sc.Precision() != 0 || sc.FlaggedFraction() != 0 {
		t.Fatal("empty score should be zeros")
	}
	sc = DetectorScore{TruePositive: 3, FalseNegative: 1, FalsePositive: 2, TrueNegative: 4}
	if math.Abs(sc.Recall()-0.75) > 1e-12 {
		t.Fatalf("recall = %v", sc.Recall())
	}
	if math.Abs(sc.Precision()-0.6) > 1e-12 {
		t.Fatalf("precision = %v", sc.Precision())
	}
	if math.Abs(sc.FlaggedFraction()-0.5) > 1e-12 {
		t.Fatalf("flagged = %v", sc.FlaggedFraction())
	}
}

func TestGenerateDAGValid(t *testing.T) {
	r := stats.NewRNG(13)
	d := GenerateDAG(DAGConfig{Layers: 5, Width: 8, EdgeProb: 0.3,
		Work: stats.Uniform{Lo: 1, Hi: 10}}, r)
	if len(d.Tasks) != 40 {
		t.Fatalf("task count = %d", len(d.Tasks))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every non-first-layer task has at least one dep.
	for _, task := range d.Tasks[8:] {
		if len(task.Deps) == 0 {
			t.Fatalf("task %d has no deps", task.ID)
		}
	}
}

func TestDAGPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad DAG config did not panic")
		}
	}()
	GenerateDAG(DAGConfig{Layers: 0, Width: 1, Work: stats.Constant{V: 1}}, stats.NewRNG(1))
}

func TestForkChainProperties(t *testing.T) {
	r := stats.NewRNG(17)
	f := Fork(10, stats.Constant{V: 2}, r)
	if f.TotalWork() != 20 {
		t.Fatalf("fork total work = %v", f.TotalWork())
	}
	if f.CriticalPath() != 2 {
		t.Fatalf("fork critical path = %v", f.CriticalPath())
	}
	if f.MaxParallelism() != 10 {
		t.Fatalf("fork parallelism = %v", f.MaxParallelism())
	}
	c := Chain(10, stats.Constant{V: 2}, r)
	if c.CriticalPath() != 20 {
		t.Fatalf("chain critical path = %v", c.CriticalPath())
	}
	if c.MaxParallelism() != 1 {
		t.Fatalf("chain parallelism = %v", c.MaxParallelism())
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: critical path <= total work, and both nonnegative; generated
// DAGs always validate.
func TestQuickDAGInvariants(t *testing.T) {
	f := func(seed uint64, layersRaw, widthRaw uint8) bool {
		layers := int(layersRaw)%6 + 1
		width := int(widthRaw)%6 + 1
		r := stats.NewRNG(seed)
		d := GenerateDAG(DAGConfig{Layers: layers, Width: width, EdgeProb: 0.4,
			Work: stats.Uniform{Lo: 0, Hi: 5}}, r)
		if err := d.Validate(); err != nil {
			return false
		}
		cp := d.CriticalPath()
		tw := d.TotalWork()
		return cp >= 0 && tw >= 0 && cp <= tw+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonTrace(t *testing.T) {
	r := stats.NewRNG(19)
	tr := PoissonTrace(50000, 100, stats.Exponential{Rate: 200}, r)
	if len(tr) != 50000 {
		t.Fatal("trace length wrong")
	}
	// Mean interarrival ~ 1/100.
	rate := float64(len(tr)-1) / tr.Duration()
	if math.Abs(rate-100) > 5 {
		t.Fatalf("arrival rate = %v, want ~100", rate)
	}
	// Offered load = lambda/mu = 0.5.
	if ol := tr.OfferedLoad(); math.Abs(ol-0.5) > 0.05 {
		t.Fatalf("offered load = %v, want ~0.5", ol)
	}
	// Arrivals sorted.
	for i := 1; i < len(tr); i++ {
		if tr[i].Arrival < tr[i-1].Arrival {
			t.Fatal("arrivals not sorted")
		}
	}
}

func TestZipfTraceKeys(t *testing.T) {
	r := stats.NewRNG(23)
	tr := ZipfTrace(20000, 10, stats.Constant{V: 0.01}, 100, 1.0, r)
	counts := map[int]int{}
	for _, rq := range tr {
		if rq.Key < 1 || rq.Key > 100 {
			t.Fatalf("key %d out of range", rq.Key)
		}
		counts[rq.Key]++
	}
	if counts[1] <= counts[50] {
		t.Fatalf("Zipf skew missing: rank1=%d rank50=%d", counts[1], counts[50])
	}
}

func TestEmptyTraceEdges(t *testing.T) {
	var tr RequestTrace
	if tr.Duration() != 0 || tr.OfferedLoad() != 0 {
		t.Fatal("empty trace should be zeros")
	}
}

func TestAssignmentsMapping(t *testing.T) {
	r := stats.NewRNG(5)
	tr := ZipfTrace(5000, 100, stats.Constant{V: 0.01}, 8, 1.1, r)
	idx := tr.Assignments(8)
	if len(idx) != len(tr) {
		t.Fatalf("got %d assignments for %d requests", len(idx), len(tr))
	}
	counts := make([]int, 8)
	for i, k := range idx {
		if k < 0 || k >= 8 {
			t.Fatalf("assignment %d out of range [0,8)", k)
		}
		// One-to-one with the trace's rank space when n == nKeys.
		if want := tr[i].Key - 1; k != want {
			t.Fatalf("request %d: rank %d mapped to %d, want %d", i, tr[i].Key, k, want)
		}
		counts[k]++
	}
	// Entry 0 carries rank 1's popularity: the plurality of requests.
	for i := 1; i < 8; i++ {
		if counts[0] <= counts[i] {
			t.Fatalf("entry 0 (%d) not hottest vs entry %d (%d)", counts[0], i, counts[i])
		}
	}
}

func TestAssignmentsFoldsWiderKeySpace(t *testing.T) {
	r := stats.NewRNG(6)
	tr := ZipfTrace(1000, 100, stats.Constant{V: 0.01}, 40, 1.0, r)
	idx := tr.Assignments(8)
	for i, k := range idx {
		if want := (tr[i].Key - 1) % 8; k != want {
			t.Fatalf("request %d: got %d want %d", i, k, want)
		}
	}
	if got := tr.Assignments(0); got != nil {
		t.Fatalf("Assignments(0) = %v, want nil", got)
	}
}

func TestDistinctAssignments(t *testing.T) {
	tr := RequestTrace{{Key: 1}, {Key: 1}, {Key: 2}, {Key: 9}}
	// Keys 1 and 9 collide mod 8 (ranks 1 and 9 -> entry 0), key 2 -> 1.
	if got := tr.DistinctAssignments(8); got != 2 {
		t.Fatalf("DistinctAssignments(8) = %d, want 2", got)
	}
	if got := tr.DistinctAssignments(0); got != 0 {
		t.Fatalf("DistinctAssignments(0) = %d, want 0", got)
	}
	if got := RequestTrace(nil).DistinctAssignments(4); got != 0 {
		t.Fatalf("empty trace DistinctAssignments = %d, want 0", got)
	}
}

func TestKernelStringAndDetectorOps(t *testing.T) {
	ks := Kernels()
	if len(ks) == 0 || ks[0].String() != "kernel("+ks[0].Name+")" {
		t.Fatalf("Kernel.String drifted: %v", ks[0].String())
	}
	if got := NewEWMADetector(0.05, 6).OpsPerSample(); got != 8 {
		t.Fatalf("EWMADetector.OpsPerSample = %v, want 8", got)
	}
}
