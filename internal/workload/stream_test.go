package workload

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestAnomalyFraction(t *testing.T) {
	mk := func(flags ...bool) []StreamSample {
		ss := make([]StreamSample, len(flags))
		for i, f := range flags {
			ss[i] = StreamSample{T: float64(i), Anomalous: f}
		}
		return ss
	}
	cases := []struct {
		name string
		ss   []StreamSample
		want float64
	}{
		{"empty", nil, 0},
		{"none", mk(false, false, false, false), 0},
		{"all", mk(true, true, true), 1},
		{"half", mk(true, false, true, false), 0.5},
		{"single", mk(true), 1},
	}
	for _, c := range cases {
		if got := AnomalyFraction(c.ss); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: AnomalyFraction = %g, want %g", c.name, got, c.want)
		}
	}
}

func TestEWMADetectorFlagsStepAfterWarmup(t *testing.T) {
	d := NewEWMADetector(0.1, 6)
	d.Warmup = 20
	rng := stats.NewRNG(3)
	// Noisy flat baseline through warmup, then a large step. A 6x
	// deviation-scale threshold still fires on rare noise tails, so the
	// calm phase is held to "mostly clean", not spotless.
	calmFlags := 0
	for i := 0; i < 200; i++ {
		if d.Observe(1 + 0.01*rng.NormFloat64()) {
			calmFlags++
		}
	}
	if calmFlags > 4 {
		t.Fatalf("calm baseline flagged %d/200 samples", calmFlags)
	}
	flagged := 0
	for i := 0; i < 50; i++ {
		if d.Observe(10 + 0.01*rng.NormFloat64()) {
			flagged++
		}
	}
	if flagged < 45 {
		t.Errorf("step samples flagged %d/50; robust detector should keep flagging a sustained excursion", flagged)
	}
	// Back to baseline: the excluded-from-stats excursion must not have
	// dragged the mean, so normal samples are not flagged.
	if d.Observe(1) {
		t.Errorf("baseline sample flagged after excursion; anomaly leaked into the EWMA")
	}
}

func TestEWMADetectorWarmupNeverFlags(t *testing.T) {
	d := NewEWMADetector(0.2, 0.0001) // absurdly tight threshold
	d.Warmup = 30
	for i := 0; i < 30; i++ {
		// Wild swings during warmup must update stats, never flag.
		if d.Observe(float64(i%2) * 100) {
			t.Fatalf("warmup sample %d flagged", i)
		}
	}
}

func TestEWMADetectorZeroVariance(t *testing.T) {
	// A perfectly flat signal drives the deviation scale toward zero;
	// the first departure, however small, must then be flagged — and a
	// forever-step locks the detector into flagging (documented).
	d := NewEWMADetector(0.3, 3)
	d.Warmup = 10
	for i := 0; i < 500; i++ {
		if d.Observe(5) {
			t.Fatalf("constant signal flagged at %d", i)
		}
	}
	flagged := 0
	for i := 0; i < 20; i++ {
		if d.Observe(5.001) {
			flagged++
		}
	}
	if flagged != 20 {
		t.Errorf("zero-variance detector flagged %d/20 step samples; want all (dev scale frozen, step never absorbed)", flagged)
	}
	// The flagged step never updated the stats: returning to the old
	// baseline is clean.
	if d.Observe(5) {
		t.Errorf("original baseline flagged after frozen step")
	}
}

func TestScoreDetectorAllAnomalySaturates(t *testing.T) {
	// All-anomaly edge: every ground-truth sample is anomalous, so there
	// are no negatives of either kind — precision 1 if anything is
	// flagged, recall = flagged fraction.
	base := make([]StreamSample, 150)
	for i := range base {
		base[i] = StreamSample{T: float64(i), V: 1, Anomalous: false}
	}
	burst := make([]StreamSample, 150)
	for i := range burst {
		burst[i] = StreamSample{T: float64(150 + i), V: 50, Anomalous: true}
	}
	d := NewEWMADetector(0.1, 5)
	d.Warmup = 50
	_ = ScoreDetector(d, base) // establish the baseline
	sc := ScoreDetector(d, burst)
	if sc.TrueNegative != 0 || sc.FalsePositive != 0 {
		t.Fatalf("all-anomaly stream produced negatives: %+v", sc)
	}
	if sc.Recall() < 0.99 {
		t.Errorf("Recall = %g on an unmissable burst, want ~1; score %+v", sc.Recall(), sc)
	}
	if sc.Precision() != 1 {
		t.Errorf("Precision = %g with zero false positives, want 1", sc.Precision())
	}
	if got, want := sc.FlaggedFraction(), sc.Recall(); math.Abs(got-want) > 1e-12 {
		t.Errorf("FlaggedFraction = %g, want recall %g when every sample is anomalous", got, want)
	}
}

func TestDetectorScoreZeroDenominators(t *testing.T) {
	var empty DetectorScore
	if empty.Recall() != 0 || empty.Precision() != 0 || empty.FlaggedFraction() != 0 {
		t.Errorf("zero score should yield zero rates, got R=%g P=%g F=%g",
			empty.Recall(), empty.Precision(), empty.FlaggedFraction())
	}
	noFlags := DetectorScore{TrueNegative: 10}
	if noFlags.Precision() != 0 {
		t.Errorf("Precision with no flags = %g, want 0", noFlags.Precision())
	}
}

func TestScoreDetectorOnGeneratedStream(t *testing.T) {
	// End to end over the synthetic heart stream: the cheap filter must
	// catch most injected bursts without flagging much of the baseline.
	cfg := DefaultStreamConfig()
	ss := GenerateStream(cfg, 20000, stats.NewRNG(11))
	if f := AnomalyFraction(ss); f <= 0 || f >= 0.5 {
		t.Fatalf("generated stream anomaly fraction %g implausible", f)
	}
	d := NewEWMADetector(0.05, 6)
	sc := ScoreDetector(d, ss)
	if sc.Recall() < 0.5 {
		t.Errorf("Recall = %g, want >= 0.5 on magnitude-3 bursts", sc.Recall())
	}
	if ff, af := sc.FlaggedFraction(), AnomalyFraction(ss); ff > 3*af+0.05 {
		t.Errorf("FlaggedFraction %g way above true anomaly fraction %g", ff, af)
	}
}
