// Package workload provides the synthetic workloads that drive arch21
// experiments: computational kernels with op/byte models, biometric sensor
// streams with injected anomalies, layered task DAGs for parallel runtimes,
// and stochastic request processes for datacenter simulations.
//
// The paper's Appendix A motivates three application families (personalized
// healthcare, scientific discovery, human network analytics); the generators
// here produce workloads with those families' published attributes — big
// data rates, bursty arrivals, heavy-tailed popularity — without requiring
// the proprietary traces the authors allude to.
package workload

import "fmt"

// Kernel describes a computational kernel by the resources an input of size
// n demands. Ops and Bytes define arithmetic intensity; ParallelFrac and
// AccelFrac feed the multicore and specialization models.
type Kernel struct {
	Name string
	// Ops returns the number of arithmetic operations for problem size n.
	Ops func(n int) float64
	// Bytes returns the number of distinct memory bytes touched for size n.
	Bytes func(n int) float64
	// ParallelFrac is the fraction of work that is parallelizable (Amdahl).
	ParallelFrac float64
	// AccelFrac is the fraction of work a domain accelerator can absorb.
	AccelFrac float64
}

// Intensity returns the arithmetic intensity (ops per byte) at size n.
func (k Kernel) Intensity(n int) float64 {
	b := k.Bytes(n)
	if b == 0 {
		return 0
	}
	return k.Ops(n) / b
}

func (k Kernel) String() string { return fmt.Sprintf("kernel(%s)", k.Name) }

// Standard kernels used across experiments. Op/byte formulas follow the
// usual first-order models (e.g. GEMM: 2n^3 flops over 3n^2 operands).
var (
	// GEMM is dense matrix multiply of two n x n matrices.
	GEMM = Kernel{
		Name:         "gemm",
		Ops:          func(n int) float64 { f := float64(n); return 2 * f * f * f },
		Bytes:        func(n int) float64 { f := float64(n); return 3 * f * f * 8 },
		ParallelFrac: 0.995,
		AccelFrac:    0.95,
	}
	// FFT is an n-point complex FFT.
	FFT = Kernel{
		Name:         "fft",
		Ops:          func(n int) float64 { f := float64(n); return 5 * f * log2(f) },
		Bytes:        func(n int) float64 { f := float64(n); return 16 * f },
		ParallelFrac: 0.98,
		AccelFrac:    0.90,
	}
	// Stencil is a 2D 5-point stencil over an n x n grid (one sweep).
	Stencil = Kernel{
		Name:         "stencil",
		Ops:          func(n int) float64 { f := float64(n); return 5 * f * f },
		Bytes:        func(n int) float64 { f := float64(n); return 8 * f * f },
		ParallelFrac: 0.99,
		AccelFrac:    0.85,
	}
	// SpMV is sparse matrix-vector multiply with ~10 nonzeros per row.
	SpMV = Kernel{
		Name:         "spmv",
		Ops:          func(n int) float64 { return 2 * 10 * float64(n) },
		Bytes:        func(n int) float64 { return (10*12 + 16) * float64(n) },
		ParallelFrac: 0.95,
		AccelFrac:    0.60,
	}
	// Sort is comparison sort of n 8-byte keys.
	Sort = Kernel{
		Name:         "sort",
		Ops:          func(n int) float64 { f := float64(n); return f * log2(f) },
		Bytes:        func(n int) float64 { return 8 * float64(n) },
		ParallelFrac: 0.90,
		AccelFrac:    0.40,
	}
	// Crypto is AES-class block encryption of n bytes.
	Crypto = Kernel{
		Name:         "crypto",
		Ops:          func(n int) float64 { return 20 * float64(n) },
		Bytes:        func(n int) float64 { return 2 * float64(n) },
		ParallelFrac: 0.97,
		AccelFrac:    0.99,
	}
	// Conv is a convolutional vision layer over an n x n image (3x3 kernel,
	// 16 channels), the "focus computation where the user is looking" class.
	Conv = Kernel{
		Name:         "conv",
		Ops:          func(n int) float64 { f := float64(n); return 2 * 9 * 16 * f * f },
		Bytes:        func(n int) float64 { f := float64(n); return 4 * f * f * 2 },
		ParallelFrac: 0.995,
		AccelFrac:    0.97,
	}
)

// Kernels lists all standard kernels.
func Kernels() []Kernel {
	return []Kernel{GEMM, FFT, Stencil, SpMV, Sort, Crypto, Conv}
}

// KernelByName returns the named standard kernel.
func KernelByName(name string) (Kernel, bool) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

func log2(x float64) float64 {
	if x <= 1 {
		return 1
	}
	// ln(x)/ln(2) without importing math for one call would be silly; use a
	// local import via helper below.
	return mathLog2(x)
}
