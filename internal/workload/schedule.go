package workload

// Piecewise rate schedules: production arrival rates are not stationary.
// A RateSchedule strings together constant or linearly-ramping segments
// (a diurnal trough→peak→trough, a flash-crowd step) and generates
// arrival traces from them by thinning a homogeneous Poisson process at
// the schedule's peak rate. Key popularity churns at segment boundaries:
// the Zipf rank→key mapping is permuted, so a regime change moves the
// hot set as well as the rate — the adversarial case for a cache and an
// admission controller tuned on steady state.

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/stats"
)

const (
	// MaxScheduleSegments caps the number of segments a parsed schedule
	// may hold; a spec is operator input and a runaway segment list is a
	// config bug, not a workload.
	MaxScheduleSegments = 64
	// MaxScheduleRate caps any segment endpoint rate (req/s). The trace
	// generator runs a candidate loop at the schedule's peak rate, so the
	// peak bounds generation work.
	MaxScheduleRate = 1e6
	// MaxScheduleDuration caps the schedule's total span.
	MaxScheduleDuration = 24 * time.Hour
)

// RateSegment is one piece of a piecewise rate schedule. StartRate and
// EndRate are arrival rates in req/s at the segment's two ends; equal
// endpoints give a constant segment, unequal a linear ramp.
type RateSegment struct {
	StartRate       float64
	EndRate         float64
	DurationSeconds float64
}

// RateSchedule is a piecewise-linear arrival-rate schedule, the
// concatenation of its segments starting at t=0.
type RateSchedule struct {
	Segments []RateSegment
}

// ParseRateSchedule parses a comma-separated segment spec. Each segment
// is "rate@dur" (constant) or "lo:hi@dur" (linear ramp), with dur in
// time.ParseDuration syntax: "60@2s,60:240@3s,240@2s". Rates must be
// finite and non-negative, durations positive; NaN, Inf, and negative
// values are rejected up front (the same class of bug ParseAxis had
// twice — a non-finite rate would otherwise wedge or flood the thinning
// loop downstream).
func ParseRateSchedule(spec string) (RateSchedule, error) {
	parts := strings.Split(spec, ",")
	if len(parts) > MaxScheduleSegments {
		return RateSchedule{}, fmt.Errorf("workload: schedule %q: %d segments exceeds cap %d", spec, len(parts), MaxScheduleSegments)
	}
	var sched RateSchedule
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return RateSchedule{}, fmt.Errorf("workload: schedule %q: empty segment", spec)
		}
		rateSpec, durSpec, ok := strings.Cut(part, "@")
		if !ok {
			return RateSchedule{}, fmt.Errorf("workload: segment %q: want rate@dur or lo:hi@dur", part)
		}
		dur, err := time.ParseDuration(strings.TrimSpace(durSpec))
		if err != nil {
			return RateSchedule{}, fmt.Errorf("workload: segment %q: bad duration: %v", part, err)
		}
		var seg RateSegment
		seg.DurationSeconds = dur.Seconds()
		loSpec, hiSpec, ramp := strings.Cut(rateSpec, ":")
		seg.StartRate, err = parseRate(loSpec)
		if err != nil {
			return RateSchedule{}, fmt.Errorf("workload: segment %q: %v", part, err)
		}
		if ramp {
			seg.EndRate, err = parseRate(hiSpec)
			if err != nil {
				return RateSchedule{}, fmt.Errorf("workload: segment %q: %v", part, err)
			}
		} else {
			seg.EndRate = seg.StartRate
		}
		sched.Segments = append(sched.Segments, seg)
	}
	if err := sched.Validate(); err != nil {
		return RateSchedule{}, fmt.Errorf("workload: schedule %q: %v", spec, err)
	}
	return sched, nil
}

func parseRate(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad rate %q: %v", s, err)
	}
	return v, nil
}

// MustRateSchedule is ParseRateSchedule for static specs (the scenario
// catalog); it panics on error.
func MustRateSchedule(spec string) RateSchedule {
	sched, err := ParseRateSchedule(spec)
	if err != nil {
		panic(err)
	}
	return sched
}

// Validate checks the schedule invariants the generators rely on:
// at least one segment, every rate finite, non-negative, and under
// MaxScheduleRate, every duration positive and finite, total span under
// MaxScheduleDuration, and at least one positive rate somewhere (an
// all-zero schedule offers no load at all).
func (s RateSchedule) Validate() error {
	if len(s.Segments) == 0 {
		return fmt.Errorf("no segments")
	}
	if len(s.Segments) > MaxScheduleSegments {
		return fmt.Errorf("%d segments exceeds cap %d", len(s.Segments), MaxScheduleSegments)
	}
	total := 0.0
	anyPositive := false
	for i, seg := range s.Segments {
		for _, r := range [2]float64{seg.StartRate, seg.EndRate} {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return fmt.Errorf("segment %d: non-finite rate", i)
			}
			if r < 0 {
				return fmt.Errorf("segment %d: negative rate %g", i, r)
			}
			if r > MaxScheduleRate {
				return fmt.Errorf("segment %d: rate %g exceeds cap %g", i, r, MaxScheduleRate)
			}
			if r > 0 {
				anyPositive = true
			}
		}
		if math.IsNaN(seg.DurationSeconds) || math.IsInf(seg.DurationSeconds, 0) || seg.DurationSeconds <= 0 {
			return fmt.Errorf("segment %d: non-positive duration %g", i, seg.DurationSeconds)
		}
		total += seg.DurationSeconds
	}
	if total > MaxScheduleDuration.Seconds() {
		return fmt.Errorf("total duration %gs exceeds cap %s", total, MaxScheduleDuration)
	}
	if !anyPositive {
		return fmt.Errorf("all segment rates are zero")
	}
	return nil
}

// Duration returns the schedule's total span in seconds.
func (s RateSchedule) Duration() float64 {
	total := 0.0
	for _, seg := range s.Segments {
		total += seg.DurationSeconds
	}
	return total
}

// MaxRate returns the schedule's peak rate.
func (s RateSchedule) MaxRate() float64 {
	max := 0.0
	for _, seg := range s.Segments {
		max = math.Max(max, math.Max(seg.StartRate, seg.EndRate))
	}
	return max
}

// Rate returns the instantaneous arrival rate at t seconds from schedule
// start (linear interpolation within a segment, 0 outside the span).
func (s RateSchedule) Rate(t float64) float64 {
	if t < 0 {
		return 0
	}
	for _, seg := range s.Segments {
		if t < seg.DurationSeconds {
			return seg.StartRate + (seg.EndRate-seg.StartRate)*(t/seg.DurationSeconds)
		}
		t -= seg.DurationSeconds
	}
	return 0
}

// SegmentAt returns the index of the segment containing t, clamped to
// the last segment for t at or beyond the schedule's end.
func (s RateSchedule) SegmentAt(t float64) int {
	for i, seg := range s.Segments {
		if t < seg.DurationSeconds {
			return i
		}
		t -= seg.DurationSeconds
	}
	return len(s.Segments) - 1
}

// ExpectedRequests returns the schedule's expected arrival count — the
// integral of the rate over the span (each segment a trapezoid).
func (s RateSchedule) ExpectedRequests() float64 {
	total := 0.0
	for _, seg := range s.Segments {
		total += (seg.StartRate + seg.EndRate) / 2 * seg.DurationSeconds
	}
	return total
}

// ScaledTo returns a copy of the schedule stretched (or compressed) so
// its total span equals total seconds, preserving the rate shape. A
// non-positive total returns the schedule unchanged.
func (s RateSchedule) ScaledTo(total float64) RateSchedule {
	if total <= 0 {
		return s
	}
	factor := total / s.Duration()
	out := RateSchedule{Segments: make([]RateSegment, len(s.Segments))}
	for i, seg := range s.Segments {
		seg.DurationSeconds *= factor
		out.Segments[i] = seg
	}
	return out
}

// String renders the schedule back in ParseRateSchedule spec syntax.
func (s RateSchedule) String() string {
	var b strings.Builder
	for i, seg := range s.Segments {
		if i > 0 {
			b.WriteByte(',')
		}
		if seg.StartRate == seg.EndRate {
			fmt.Fprintf(&b, "%g", seg.StartRate)
		} else {
			fmt.Fprintf(&b, "%g:%g", seg.StartRate, seg.EndRate)
		}
		fmt.Fprintf(&b, "@%s", time.Duration(seg.DurationSeconds*float64(time.Second)))
	}
	return b.String()
}

// ScheduledZipfTrace generates at most maxN arrivals following the
// schedule — a non-homogeneous Poisson process via thinning at the peak
// rate — with keys drawn Zipf(skew) over nKeys popularity ranks (skew <=
// 0 cycles ranks round-robin). When churn is set, the rank→key mapping
// is re-permuted at every segment boundary: the hottest rank points at a
// different key in each regime, modeling key-popularity churn. With
// churn off the mapping is the identity and keys match ZipfTrace's.
func ScheduledZipfTrace(sched RateSchedule, maxN, nKeys int, skew float64, churn bool, r *stats.RNG) RequestTrace {
	if maxN <= 0 || nKeys <= 0 || sched.Validate() != nil {
		return nil
	}
	rmax := sched.MaxRate()
	total := sched.Duration()
	perm := make([]int, nKeys)
	for i := range perm {
		perm[i] = i
	}
	var z *stats.Zipf
	if skew > 0 {
		z = stats.NewZipf(nKeys, skew)
	}
	out := make(RequestTrace, 0, int(math.Min(float64(maxN), sched.ExpectedRequests()+16)))
	segment := 0
	next := 0 // round-robin cursor for skew <= 0
	for t := 0.0; len(out) < maxN; {
		t += r.ExpFloat64() / rmax
		if t >= total {
			break
		}
		// Churn: one fresh permutation per boundary crossed — a segment
		// that saw no arrivals still churns the mapping exactly once.
		for si := sched.SegmentAt(t); segment < si; segment++ {
			if churn {
				r.Shuffle(nKeys, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			}
		}
		if r.Float64()*rmax > sched.Rate(t) {
			continue // thinning: reject down to the instantaneous rate
		}
		rank := next%nKeys + 1
		if z != nil {
			rank = z.Rank(r)
		}
		next++
		out = append(out, Request{Arrival: t, Key: perm[rank-1] + 1})
	}
	return out
}
