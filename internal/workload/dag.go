package workload

import (
	"fmt"

	"repro/internal/stats"
)

// Task is a unit of work in a task DAG. Work is in abstract operation
// counts; Deps lists task IDs that must complete first.
type Task struct {
	ID   int
	Work float64
	Deps []int
}

// DAG is a dependency graph of tasks with IDs 0..len(Tasks)-1 in
// topological order (every dependency has a smaller ID).
type DAG struct {
	Tasks []Task
}

// DAGConfig parameterizes layered random DAG generation.
type DAGConfig struct {
	// Layers is the number of dependency levels.
	Layers int
	// Width is the number of tasks per layer.
	Width int
	// EdgeProb is the probability a task depends on a given task of the
	// previous layer (at least one edge is always added for layers > 0).
	EdgeProb float64
	// Work is the task work distribution.
	Work stats.Dist
}

// GenerateDAG builds a layered random DAG.
func GenerateDAG(cfg DAGConfig, r *stats.RNG) *DAG {
	if cfg.Layers < 1 || cfg.Width < 1 {
		panic("workload: DAG needs Layers >= 1 and Width >= 1")
	}
	d := &DAG{}
	id := 0
	prevLayer := []int{}
	for l := 0; l < cfg.Layers; l++ {
		var layer []int
		for w := 0; w < cfg.Width; w++ {
			t := Task{ID: id, Work: cfg.Work.Sample(r)}
			if t.Work < 0 {
				t.Work = 0
			}
			if l > 0 {
				for _, p := range prevLayer {
					if r.Bool(cfg.EdgeProb) {
						t.Deps = append(t.Deps, p)
					}
				}
				if len(t.Deps) == 0 {
					t.Deps = append(t.Deps, prevLayer[r.Intn(len(prevLayer))])
				}
			}
			d.Tasks = append(d.Tasks, t)
			layer = append(layer, id)
			id++
		}
		prevLayer = layer
	}
	return d
}

// Fork creates a flat fork-join DAG: n independent tasks.
func Fork(n int, work stats.Dist, r *stats.RNG) *DAG {
	d := &DAG{Tasks: make([]Task, n)}
	for i := 0; i < n; i++ {
		w := work.Sample(r)
		if w < 0 {
			w = 0
		}
		d.Tasks[i] = Task{ID: i, Work: w}
	}
	return d
}

// Chain creates a fully serial DAG of n tasks.
func Chain(n int, work stats.Dist, r *stats.RNG) *DAG {
	d := &DAG{Tasks: make([]Task, n)}
	for i := 0; i < n; i++ {
		w := work.Sample(r)
		if w < 0 {
			w = 0
		}
		t := Task{ID: i, Work: w}
		if i > 0 {
			t.Deps = []int{i - 1}
		}
		d.Tasks[i] = t
	}
	return d
}

// TotalWork returns the sum of task work.
func (d *DAG) TotalWork() float64 {
	sum := 0.0
	for _, t := range d.Tasks {
		sum += t.Work
	}
	return sum
}

// CriticalPath returns the longest work-weighted path through the DAG (the
// span, T_inf in work/span terminology).
func (d *DAG) CriticalPath() float64 {
	finish := make([]float64, len(d.Tasks))
	longest := 0.0
	for i, t := range d.Tasks {
		start := 0.0
		for _, dep := range t.Deps {
			if finish[dep] > start {
				start = finish[dep]
			}
		}
		finish[i] = start + t.Work
		if finish[i] > longest {
			longest = finish[i]
		}
	}
	return longest
}

// MaxParallelism returns TotalWork / CriticalPath, the average parallelism
// available in the DAG.
func (d *DAG) MaxParallelism() float64 {
	cp := d.CriticalPath()
	if cp == 0 {
		return 0
	}
	return d.TotalWork() / cp
}

// Validate checks topological ordering and dependency bounds.
func (d *DAG) Validate() error {
	for i, t := range d.Tasks {
		if t.ID != i {
			return fmt.Errorf("workload: task %d has ID %d", i, t.ID)
		}
		for _, dep := range t.Deps {
			if dep < 0 || dep >= i {
				return fmt.Errorf("workload: task %d has invalid dep %d", i, dep)
			}
		}
	}
	return nil
}
