package workload

// Request→assignment mapping: a trace's Zipf-drawn keys index a catalog
// of concrete work items (for the load subsystem, experiment+parameter
// variants), preserving the trace's popularity structure so downstream
// cache hit ratios are realistic — rank 1 (the hottest key) always maps
// to catalog entry 0, and traces drawn over exactly n keys map
// one-to-one.

// Assignments maps each request's key onto one of n catalog entries and
// returns the per-request entry indices, in trace order. Keys are Zipf
// popularity ranks in [1, nKeys] (see ZipfTrace), so rank 1 — the hottest
// — maps to entry 0 and entry i inherits the popularity of every rank
// congruent to i+1 mod n; when the trace was drawn over exactly n keys
// the mapping is one-to-one and the catalog sees the trace's exact Zipf
// mix. n <= 0 yields nil.
func (tr RequestTrace) Assignments(n int) []int {
	if n <= 0 {
		return nil
	}
	out := make([]int, len(tr))
	for i, rq := range tr {
		k := (rq.Key - 1) % n
		if k < 0 {
			k += n
		}
		out[i] = k
	}
	return out
}

// DistinctAssignments counts how many distinct catalog entries a trace
// touches under Assignments(n) — the compulsory-miss count a cold cache
// keyed by assignment would pay.
func (tr RequestTrace) DistinctAssignments(n int) int {
	if n <= 0 {
		return 0
	}
	seen := make(map[int]struct{}, n)
	for _, k := range tr.Assignments(n) {
		seen[k] = struct{}{}
	}
	return len(seen)
}
