package workload

import (
	"repro/internal/stats"
)

// Request is one unit of datacenter demand.
type Request struct {
	// Arrival is the arrival time in seconds from trace start.
	Arrival float64
	// Service is the intrinsic service demand in seconds on an unloaded
	// server.
	Service float64
	// Key is the (Zipf-popular) data item the request touches; 0 if keyed
	// access is not modelled.
	Key int
}

// RequestTrace is a time-ordered sequence of requests.
type RequestTrace []Request

// PoissonTrace generates n requests with exponential interarrivals at the
// given rate (req/s) and the given service-time distribution.
func PoissonTrace(n int, rate float64, service stats.Dist, r *stats.RNG) RequestTrace {
	out := make(RequestTrace, n)
	t := 0.0
	inter := stats.Exponential{Rate: rate}
	for i := 0; i < n; i++ {
		t += inter.Sample(r)
		s := service.Sample(r)
		if s < 0 {
			s = 0
		}
		out[i] = Request{Arrival: t, Service: s}
	}
	return out
}

// ZipfTrace generates a Poisson trace whose requests touch keys drawn from
// a Zipf popularity distribution over nKeys items.
func ZipfTrace(n int, rate float64, service stats.Dist, nKeys int, skew float64, r *stats.RNG) RequestTrace {
	trace := PoissonTrace(n, rate, service, r)
	z := stats.NewZipf(nKeys, skew)
	for i := range trace {
		trace[i].Key = z.Rank(r)
	}
	return trace
}

// Duration returns the arrival span of the trace.
func (tr RequestTrace) Duration() float64 {
	if len(tr) == 0 {
		return 0
	}
	return tr[len(tr)-1].Arrival - tr[0].Arrival
}

// OfferedLoad returns mean service demand times arrival rate — the
// utilization a single server would see.
func (tr RequestTrace) OfferedLoad() float64 {
	if len(tr) < 2 {
		return 0
	}
	sum := 0.0
	for _, rq := range tr {
		sum += rq.Service
	}
	return sum / tr.Duration()
}
