package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestParseRateSchedule(t *testing.T) {
	sched, err := ParseRateSchedule("60@2s, 60:240@3s ,240@500ms")
	if err != nil {
		t.Fatalf("ParseRateSchedule: %v", err)
	}
	want := []RateSegment{
		{StartRate: 60, EndRate: 60, DurationSeconds: 2},
		{StartRate: 60, EndRate: 240, DurationSeconds: 3},
		{StartRate: 240, EndRate: 240, DurationSeconds: 0.5},
	}
	if len(sched.Segments) != len(want) {
		t.Fatalf("got %d segments, want %d", len(sched.Segments), len(want))
	}
	for i, seg := range sched.Segments {
		if seg != want[i] {
			t.Errorf("segment %d = %+v, want %+v", i, seg, want[i])
		}
	}
	if d := sched.Duration(); d != 5.5 {
		t.Errorf("Duration = %g, want 5.5", d)
	}
	if m := sched.MaxRate(); m != 240 {
		t.Errorf("MaxRate = %g, want 240", m)
	}
	// Round-trip through String.
	again, err := ParseRateSchedule(sched.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", sched.String(), err)
	}
	if len(again.Segments) != len(sched.Segments) {
		t.Errorf("round-trip lost segments: %q", sched.String())
	}
}

func TestParseRateScheduleRejects(t *testing.T) {
	bad := []string{
		"",               // empty
		"100",            // no duration
		"100@",           // empty duration
		"100@0s",         // zero duration
		"100@-1s",        // negative duration
		"-5@1s",          // negative rate
		"NaN@1s",         // non-finite rate
		"Inf@1s",         // non-finite rate
		"0:Inf@1s",       // non-finite ramp endpoint
		"1:NaN@1s",       // non-finite ramp endpoint
		"1e300@1s",       // rate over cap
		"0@1s,0:0@2s",    // all-zero schedule
		"100@30h",        // span over cap
		"100@1s,,200@1s", // empty segment
		"10:20:30@1s",    // malformed ramp
		strings.Repeat("1@1s,", MaxScheduleSegments) + "1@1s", // too many segments
	}
	for _, spec := range bad {
		if _, err := ParseRateSchedule(spec); err == nil {
			t.Errorf("ParseRateSchedule(%q) accepted, want error", spec)
		}
	}
}

func TestRateScheduleRateInterpolates(t *testing.T) {
	sched := MustRateSchedule("100@2s,100:300@2s,300@1s")
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 100}, {1.5, 100}, {2, 100}, {3, 200}, {4, 300}, {4.5, 300}, {5, 0}, {99, 0},
	}
	for _, c := range cases {
		if got := sched.Rate(c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Rate(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if got := sched.ExpectedRequests(); math.Abs(got-(200+400+300)) > 1e-9 {
		t.Errorf("ExpectedRequests = %g, want 900", got)
	}
	if si := sched.SegmentAt(0.5); si != 0 {
		t.Errorf("SegmentAt(0.5) = %d, want 0", si)
	}
	if si := sched.SegmentAt(3); si != 1 {
		t.Errorf("SegmentAt(3) = %d, want 1", si)
	}
	if si := sched.SegmentAt(1e9); si != 2 {
		t.Errorf("SegmentAt(+inf-ish) = %d, want 2 (clamped)", si)
	}
}

func TestRateScheduleScaledTo(t *testing.T) {
	sched := MustRateSchedule("100@2s,500@3s")
	scaled := sched.ScaledTo(10)
	if d := scaled.Duration(); math.Abs(d-10) > 1e-9 {
		t.Fatalf("ScaledTo(10).Duration = %g", d)
	}
	// Shape is preserved: the step still happens 40% of the way in.
	if got := scaled.Rate(3.9); got != 100 {
		t.Errorf("Rate(3.9) = %g, want 100", got)
	}
	if got := scaled.Rate(4.1); got != 500 {
		t.Errorf("Rate(4.1) = %g, want 500", got)
	}
	if same := sched.ScaledTo(0); same.Duration() != sched.Duration() {
		t.Errorf("ScaledTo(0) should be a no-op")
	}
}

func TestScheduledZipfTraceFollowsSchedule(t *testing.T) {
	// A 10x step: arrival mass inside the step window should dominate.
	sched := MustRateSchedule("50@2s,500@1s,50@2s")
	rng := stats.NewRNG(42)
	tr := ScheduledZipfTrace(sched, 1<<20, 64, 1.1, false, rng)
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
	exp := sched.ExpectedRequests() // 50*4 + 500 = 700
	if f := float64(len(tr)); f < 0.85*exp || f > 1.15*exp {
		t.Fatalf("trace has %d arrivals, expected ~%g", len(tr), exp)
	}
	var inStep, outStep int
	last := 0.0
	for _, rq := range tr {
		if rq.Arrival < last {
			t.Fatal("arrivals not time-ordered")
		}
		last = rq.Arrival
		if rq.Arrival >= 2 && rq.Arrival < 3 {
			inStep++
		} else {
			outStep++
		}
		if rq.Key < 1 || rq.Key > 64 {
			t.Fatalf("key %d outside [1,64]", rq.Key)
		}
	}
	// Step second carries 500 expected arrivals vs 200 outside.
	if inStep < 2*outStep {
		t.Errorf("step window got %d arrivals vs %d outside; step not visible", inStep, outStep)
	}
	if tr.Duration() > sched.Duration() {
		t.Errorf("trace span %g exceeds schedule span %g", tr.Duration(), sched.Duration())
	}
}

func TestScheduledZipfTraceChurn(t *testing.T) {
	// With heavy skew and no churn, one key dominates the whole trace.
	// With churn, the dominant key must change across segment boundaries.
	sched := MustRateSchedule("400@1s,400@1s,400@1s")
	hotKey := func(tr RequestTrace, lo, hi float64) int {
		counts := map[int]int{}
		best, bestN := 0, -1
		for _, rq := range tr {
			if rq.Arrival < lo || rq.Arrival >= hi {
				continue
			}
			counts[rq.Key]++
			if counts[rq.Key] > bestN {
				best, bestN = rq.Key, counts[rq.Key]
			}
		}
		return best
	}

	plain := ScheduledZipfTrace(sched, 1<<20, 512, 1.4, false, stats.NewRNG(7))
	if h0, h1, h2 := hotKey(plain, 0, 1), hotKey(plain, 1, 2), hotKey(plain, 2, 3); h0 != h1 || h1 != h2 {
		t.Errorf("without churn the hot key should be stable; got %d/%d/%d", h0, h1, h2)
	}
	churned := ScheduledZipfTrace(sched, 1<<20, 512, 1.4, true, stats.NewRNG(7))
	h0, h1, h2 := hotKey(churned, 0, 1), hotKey(churned, 1, 2), hotKey(churned, 2, 3)
	if h0 == h1 && h1 == h2 {
		t.Errorf("with churn the hot key never moved (stayed %d across all three segments)", h0)
	}

	// Determinism: same seed, same trace.
	again := ScheduledZipfTrace(sched, 1<<20, 512, 1.4, true, stats.NewRNG(7))
	if len(again) != len(churned) {
		t.Fatalf("non-deterministic length: %d vs %d", len(again), len(churned))
	}
	for i := range again {
		if again[i] != churned[i] {
			t.Fatalf("non-deterministic at %d: %+v vs %+v", i, again[i], churned[i])
		}
	}
}

func TestScheduledZipfTraceBounds(t *testing.T) {
	sched := MustRateSchedule("1000@10s")
	tr := ScheduledZipfTrace(sched, 100, 8, 0, false, stats.NewRNG(1))
	if len(tr) != 100 {
		t.Fatalf("maxN not honored: got %d", len(tr))
	}
	// skew <= 0 cycles keys round-robin over [1, nKeys].
	for i, rq := range tr {
		if want := i%8 + 1; rq.Key != want {
			t.Fatalf("round-robin key %d = %d, want %d", i, rq.Key, want)
		}
	}
	if got := ScheduledZipfTrace(sched, 0, 8, 0, false, stats.NewRNG(1)); got != nil {
		t.Errorf("maxN=0 should yield nil")
	}
	if got := ScheduledZipfTrace(sched, 10, 0, 0, false, stats.NewRNG(1)); got != nil {
		t.Errorf("nKeys=0 should yield nil")
	}
	if got := ScheduledZipfTrace(RateSchedule{}, 10, 8, 0, false, stats.NewRNG(1)); got != nil {
		t.Errorf("invalid schedule should yield nil")
	}
}
