package workload

import (
	"math"
	"testing"
)

// FuzzParseRateSchedule hammers the schedule-spec parser with arbitrary
// input. The invariant mirrors FuzzParseAxis's hard-won lesson (NaN axis
// acceptance, twice): anything the parser accepts must be safe to hand
// to the trace generator — every rate finite, non-negative, and capped,
// every duration positive, the total span bounded, and the derived
// quantities (Duration, MaxRate, ExpectedRequests, Rate at probes)
// finite. A parser that lets NaN/Inf/negative through would wedge or
// flood the thinning loop.
func FuzzParseRateSchedule(f *testing.F) {
	seeds := []string{
		"100@1s",
		"60@2s,60:240@3s,240@2s",
		"150@2s,1500@1s,150@2s",
		"0:100@500ms",
		"1:0@1m",
		"0@1s,5@1s",
		" 10 @ 1s , 2:3 @ 2s ",
		"NaN@1s",
		"Inf@1s",
		"-Inf@1s",
		"0:Inf@1s",
		"1:NaN@1s",
		"-5@1s",
		"1e300@1s",
		"100@NaNs",
		"100@-1s",
		"100@0s",
		"100@30h",
		"100",
		"@1s",
		"1:2:3@1s",
		"1@1s,,2@1s",
		"1e-300:1e6@1ns",
		"0x1p10@1s",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		sched, err := ParseRateSchedule(spec)
		if err != nil {
			return
		}
		if len(sched.Segments) == 0 || len(sched.Segments) > MaxScheduleSegments {
			t.Fatalf("accepted %q with %d segments", spec, len(sched.Segments))
		}
		for i, seg := range sched.Segments {
			for _, r := range [2]float64{seg.StartRate, seg.EndRate} {
				if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 || r > MaxScheduleRate {
					t.Fatalf("accepted %q: segment %d has out-of-range rate %g", spec, i, r)
				}
			}
			if !(seg.DurationSeconds > 0) || math.IsInf(seg.DurationSeconds, 0) {
				t.Fatalf("accepted %q: segment %d has non-positive duration %g", spec, i, seg.DurationSeconds)
			}
		}
		total := sched.Duration()
		if !(total > 0) || total > MaxScheduleDuration.Seconds() {
			t.Fatalf("accepted %q: total span %g out of range", spec, total)
		}
		if m := sched.MaxRate(); !(m > 0) || m > MaxScheduleRate {
			t.Fatalf("accepted %q: MaxRate %g out of range", spec, m)
		}
		if e := sched.ExpectedRequests(); math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
			t.Fatalf("accepted %q: ExpectedRequests %g", spec, e)
		}
		for _, probe := range []float64{0, total / 3, total / 2, total - 1e-9, total + 1} {
			if r := sched.Rate(probe); math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
				t.Fatalf("accepted %q: Rate(%g) = %g", spec, probe, r)
			}
		}
		// Scaling and re-parsing an accepted schedule must stay valid.
		if err := sched.ScaledTo(total / 2).Validate(); err != nil {
			t.Fatalf("accepted %q: ScaledTo broke validity: %v", spec, err)
		}
		if _, err := ParseRateSchedule(sched.String()); err != nil {
			t.Fatalf("accepted %q but String() %q does not re-parse: %v", spec, sched.String(), err)
		}
	})
}
