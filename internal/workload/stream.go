package workload

import (
	"math"

	"repro/internal/stats"
)

func mathLog2(x float64) float64 { return math.Log2(x) }

// StreamSample is one reading from a sensor stream.
type StreamSample struct {
	// T is the sample time in seconds from stream start.
	T float64
	// V is the measured value (arbitrary biometric units).
	V float64
	// Anomalous marks ground-truth injected anomalies, used to score
	// detectors.
	Anomalous bool
}

// StreamConfig parameterizes a synthetic biometric stream: a quasi-periodic
// baseline (e.g. heart rhythm) with Gaussian noise and rare anomaly bursts
// (the "distinguishing a nominal biometric signal from an anomaly" workload
// of the paper's smart-sensing section).
type StreamConfig struct {
	// SampleHz is the sampling rate.
	SampleHz float64
	// BaseAmplitude is the amplitude of the periodic baseline component.
	BaseAmplitude float64
	// BaseHz is the baseline frequency (e.g. ~1.2 Hz for heart rate).
	BaseHz float64
	// NoiseStd is the additive Gaussian noise sigma.
	NoiseStd float64
	// AnomalyRate is the expected number of anomaly events per second.
	AnomalyRate float64
	// AnomalyMagnitude scales the anomaly excursion relative to baseline.
	AnomalyMagnitude float64
	// AnomalyLen is the number of consecutive anomalous samples per event.
	AnomalyLen int
}

// DefaultStreamConfig returns a heart-monitor-like configuration: 250 Hz
// sampling, 1.2 Hz rhythm, 2% per-second anomaly rate.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		SampleHz:         250,
		BaseAmplitude:    1.0,
		BaseHz:           1.2,
		NoiseStd:         0.05,
		AnomalyRate:      0.02,
		AnomalyMagnitude: 3.0,
		AnomalyLen:       50,
	}
}

// GenerateStream produces n consecutive samples of the configured stream
// using r for noise and anomaly placement.
func GenerateStream(cfg StreamConfig, n int, r *stats.RNG) []StreamSample {
	out := make([]StreamSample, n)
	anomalyLeft := 0
	pAnomalyStart := cfg.AnomalyRate / cfg.SampleHz
	for i := 0; i < n; i++ {
		t := float64(i) / cfg.SampleHz
		v := cfg.BaseAmplitude * math.Sin(2*math.Pi*cfg.BaseHz*t)
		v += cfg.NoiseStd * r.NormFloat64()
		anomalous := false
		if anomalyLeft > 0 {
			anomalyLeft--
			anomalous = true
		} else if r.Bool(pAnomalyStart) {
			anomalyLeft = cfg.AnomalyLen - 1
			anomalous = true
		}
		if anomalous {
			v += cfg.AnomalyMagnitude * cfg.BaseAmplitude
		}
		out[i] = StreamSample{T: t, V: v, Anomalous: anomalous}
	}
	return out
}

// AnomalyFraction returns the fraction of samples marked anomalous.
func AnomalyFraction(ss []StreamSample) float64 {
	if len(ss) == 0 {
		return 0
	}
	n := 0
	for _, s := range ss {
		if s.Anomalous {
			n++
		}
	}
	return float64(n) / float64(len(ss))
}

// EWMADetector is a simple exponentially-weighted moving-average anomaly
// detector suitable for on-sensor filtering: it flags samples whose
// deviation from the EWMA exceeds Threshold times the running deviation
// scale. It is intentionally cheap (a few ops per sample) — the point of
// E11 is that even a cheap filter pays for itself by avoiding radio energy.
//
// The detector is outlier-robust: after a warm-up period it excludes
// flagged samples from its statistics, so a sustained anomaly burst keeps
// being flagged instead of being absorbed into the baseline. (A perfectly
// flat signal that suddenly steps forever would lock the detector into
// flagging; sensor baselines in this toolkit are noisy, which keeps the
// deviation scale alive.)
type EWMADetector struct {
	// Alpha is the EWMA smoothing factor in (0, 1].
	Alpha float64
	// Threshold is the flag threshold in deviation-scale multiples.
	Threshold float64
	// Warmup is the number of initial samples that always update the
	// statistics (never flagged).
	Warmup int

	mean float64
	dev  float64
	seen int
}

// NewEWMADetector returns a detector with the given smoothing and threshold
// and a 100-sample warmup.
func NewEWMADetector(alpha, threshold float64) *EWMADetector {
	return &EWMADetector{Alpha: alpha, Threshold: threshold, Warmup: 100, dev: 1e-6}
}

// Observe consumes one sample value and reports whether it is flagged
// anomalous.
func (d *EWMADetector) Observe(v float64) bool {
	d.seen++
	if d.seen == 1 {
		d.mean = v
		return false
	}
	diff := math.Abs(v - d.mean)
	flag := d.seen > d.Warmup && diff > d.Threshold*d.dev
	if !flag {
		d.mean = (1-d.Alpha)*d.mean + d.Alpha*v
		d.dev = (1-d.Alpha)*d.dev + d.Alpha*diff
	}
	return flag
}

// OpsPerSample returns the approximate arithmetic cost of Observe, used for
// on-sensor energy accounting.
func (d *EWMADetector) OpsPerSample() float64 { return 8 }

// DetectorScore summarizes detector accuracy against ground truth.
type DetectorScore struct {
	TruePositive, FalsePositive, TrueNegative, FalseNegative int
}

// Recall is TP / (TP + FN).
func (s DetectorScore) Recall() float64 {
	d := s.TruePositive + s.FalseNegative
	if d == 0 {
		return 0
	}
	return float64(s.TruePositive) / float64(d)
}

// Precision is TP / (TP + FP).
func (s DetectorScore) Precision() float64 {
	d := s.TruePositive + s.FalsePositive
	if d == 0 {
		return 0
	}
	return float64(s.TruePositive) / float64(d)
}

// FlaggedFraction is the fraction of all samples the detector flagged.
func (s DetectorScore) FlaggedFraction() float64 {
	tot := s.TruePositive + s.FalsePositive + s.TrueNegative + s.FalseNegative
	if tot == 0 {
		return 0
	}
	return float64(s.TruePositive+s.FalsePositive) / float64(tot)
}

// ScoreDetector runs the detector over the stream and scores it.
func ScoreDetector(d *EWMADetector, ss []StreamSample) DetectorScore {
	var sc DetectorScore
	for _, s := range ss {
		flag := d.Observe(s.V)
		switch {
		case flag && s.Anomalous:
			sc.TruePositive++
		case flag && !s.Anomalous:
			sc.FalsePositive++
		case !flag && s.Anomalous:
			sc.FalseNegative++
		default:
			sc.TrueNegative++
		}
	}
	return sc
}
