// Package security reproduces the paper's hardware-security directions
// (§2.4): dynamic information-flow tracking (IFT) as a "root of trust"
// service, a classic buffer-overflow control-hijack attack built on the isa
// VM, its detection by tag propagation, and the runtime/energy overhead of
// tracking — plus a secret-dependent timing-channel model and its
// constant-time mitigation.
package security

import (
	"math"

	"repro/internal/isa"
)

// BufBase is the start of the fixed-size input buffer in victim memory.
const BufBase = 0

// OverflowScenario bundles a victim program and the attacker's payload.
type OverflowScenario struct {
	// Prog is the victim program.
	Prog []isa.Instr
	// BufLen is the buffer capacity in words.
	BufLen int
	// FnPtrAddr is the function-pointer slot adjacent to the buffer.
	FnPtrAddr int
	// GadgetPC is the PC of the "leak the secret" gadget an attacker
	// wants to reach.
	GadgetPC int
	// HandlerPC is the legitimate indirect-jump target.
	HandlerPC int
	// SecretAddr is the memory word holding the secret the gadget leaks.
	SecretAddr int
}

// BuildOverflowVictim constructs a victim that reads a word count from
// untrusted port 0, copies that many words into a bufLen-word buffer
// (no bounds check — the bug), then calls through a function pointer
// stored right after the buffer. Port 1 is the public output channel.
//
// Program layout:
//
//	0:  in   r1, port0        ; n = untrusted length
//	1:  li   r2, BufBase      ; dst
//	2:  li   r3, 0            ; i
//	3:  li   r4, 1
//	4:  beq  r3, r1, 9        ; while i != n
//	5:  in   r5, port0        ;   v = next word
//	6:  st   [r2+0], r5       ;   buf[i] = v   (no bounds check!)
//	7:  add  r2, r2, r4
//	8:  add  r3, r3, r4 ; jmp 4
//	9:  (jmp 4 lives at 9)    ; loop back
//	10: ld   r6, [r0+FnPtrAddr]; fp = *fnptr
//	11: jr   r6               ; call fp  <- hijack point
//	12: HANDLER: li r7, 1; out r7, port1; halt
//	15: GADGET: ld r8, [r0+secretAddr]; out r8, port1; halt
func BuildOverflowVictim(bufLen int) OverflowScenario {
	fnPtr := BufBase + bufLen
	secretAddr := fnPtr + 1
	prog := []isa.Instr{
		/* 0 */ {Op: isa.In, Rd: 1, Imm: 0},
		/* 1 */ {Op: isa.Li, Rd: 2, Imm: int64(BufBase)},
		/* 2 */ {Op: isa.Li, Rd: 3, Imm: 0},
		/* 3 */ {Op: isa.Li, Rd: 4, Imm: 1},
		/* 4 */ {Op: isa.Beq, Rs1: 3, Rs2: 1, Imm: 10},
		/* 5 */ {Op: isa.In, Rd: 5, Imm: 0},
		/* 6 */ {Op: isa.St, Rs1: 2, Rs2: 5, Imm: 0},
		/* 7 */ {Op: isa.Add, Rd: 2, Rs1: 2, Rs2: 4},
		/* 8 */ {Op: isa.Add, Rd: 3, Rs1: 3, Rs2: 4},
		/* 9 */ {Op: isa.Jmp, Imm: 4},
		/* 10 */ {Op: isa.Ld, Rd: 6, Rs1: 0, Imm: int64(fnPtr)},
		/* 11 */ {Op: isa.Jr, Rs1: 6},
		// Legitimate handler:
		/* 12 */ {Op: isa.Li, Rd: 7, Imm: 1},
		/* 13 */ {Op: isa.Out, Rs1: 7, Imm: 1},
		/* 14 */ {Op: isa.Halt},
		// Secret-leaking gadget the attacker redirects to:
		/* 15 */ {Op: isa.Ld, Rd: 8, Rs1: 0, Imm: int64(secretAddr)},
		/* 16 */ {Op: isa.Out, Rs1: 8, Imm: 1},
		/* 17 */ {Op: isa.Halt},
	}
	return OverflowScenario{
		Prog:       prog,
		BufLen:     bufLen,
		FnPtrAddr:  fnPtr,
		GadgetPC:   15,
		HandlerPC:  12,
		SecretAddr: secretAddr,
	}
}

// RunResult describes one victim execution.
type RunResult struct {
	// Hijacked is true when control reached the attacker's gadget and the
	// secret appeared on the public port.
	Hijacked bool
	// Detected is true when IFT flagged a violation.
	Detected bool
	// Err is the terminal error, if any.
	Err error
	// Cycles is total machine cycles.
	Cycles uint64
	// TagOps is tag propagations performed (IFT cost driver).
	TagOps uint64
}

// secretValue is planted in victim memory so a successful hijack is
// observable on the public port.
const secretValue = 0xC0FFEE

// Run executes the scenario. payload is the attacker-controlled input word
// stream (first word = count); ift enables tracking, enforce aborts on
// violation.
func (s OverflowScenario) Run(payload []int64, ift, enforce bool) RunResult {
	m := isa.New(s.Prog, s.SecretAddr+8)
	m.TrackTaint = ift
	m.EnforcePolicy = enforce
	m.TaintedPorts[0] = true
	m.PublicPorts[1] = true
	m.Inputs[0] = payload
	m.Mem[s.SecretAddr] = secretValue
	m.Mem[s.FnPtrAddr] = int64(s.HandlerPC)
	err := m.Run(100000)
	res := RunResult{
		Err:    err,
		Cycles: m.Cycles,
		TagOps: m.Counts["tagop"],
	}
	res.Detected = len(m.Violations) > 0
	for _, v := range m.Outputs[1] {
		if v == secretValue {
			res.Hijacked = true
		}
	}
	return res
}

// BenignPayload returns an in-bounds input of n words.
func (s OverflowScenario) BenignPayload(n int) []int64 {
	if n > s.BufLen {
		n = s.BufLen
	}
	p := []int64{int64(n)}
	for i := 0; i < n; i++ {
		p = append(p, int64(100+i))
	}
	return p
}

// ExploitPayload overflows the buffer by one word, overwriting the function
// pointer with the gadget address.
func (s OverflowScenario) ExploitPayload() []int64 {
	n := s.BufLen + 1
	p := []int64{int64(n)}
	for i := 0; i < s.BufLen; i++ {
		p = append(p, 0x41) // filler
	}
	p = append(p, int64(s.GadgetPC)) // lands on FnPtrAddr
	return p
}

// IFTOverhead runs a compute-heavy benign workload with and without
// tracking and returns the relative cost overhead, charging each tag
// operation tagCostFrac of an instruction's cost. Hardware IFT proposals
// put this at a few percent; a software-only shadow-memory implementation
// is several instructions per instruction, which callers model by raising
// tagCostFrac.
func IFTOverhead(bufLen int, tagCostFrac float64) float64 {
	s := BuildOverflowVictim(bufLen)
	payload := s.BenignPayload(bufLen)
	base := s.Run(payload, false, false)
	ift := s.Run(payload, true, false)
	baseCost := float64(base.Cycles)
	iftCost := float64(ift.Cycles) + tagCostFrac*float64(ift.TagOps)
	return iftCost/baseCost - 1
}

// TimingChannel models a secret-dependent execution-time side channel: a
// naive comparator that early-exits on the first mismatching word leaks the
// match length through latency. LeakedWords returns how many secret words
// an attacker recovers with the given number of timing probes per position.
type TimingChannel struct {
	// Secret is the guarded value.
	Secret []int64
	// ConstantTime selects the mitigated comparator.
	ConstantTime bool
}

// CompareCycles returns the cycle count of comparing guess against the
// secret: the side channel is that (unmitigated) cost grows with the
// matching prefix length.
func (tc TimingChannel) CompareCycles(guess []int64) int {
	if tc.ConstantTime {
		return 2 * len(tc.Secret) // fixed cost regardless of data
	}
	cycles := 0
	for i := range tc.Secret {
		cycles += 2
		if i >= len(guess) || guess[i] != tc.Secret[i] {
			return cycles // early exit leaks position
		}
	}
	return cycles + 1 // success path sets a flag: full match is visible too
}

// RecoverSecret mounts the classic prefix-extension timing attack with the
// given alphabet, returning how many words it recovered correctly. Against
// the constant-time comparator it recovers nothing better than chance.
func (tc TimingChannel) RecoverSecret(alphabet []int64) int {
	guess := make([]int64, 0, len(tc.Secret))
	for pos := 0; pos < len(tc.Secret); pos++ {
		bestSym := alphabet[0]
		bestCycles := -1
		for _, sym := range alphabet {
			trial := append(append([]int64{}, guess...), sym)
			c := tc.CompareCycles(trial)
			if c > bestCycles {
				bestCycles, bestSym = c, sym
			}
		}
		guess = append(guess, bestSym)
	}
	correct := 0
	for i := range guess {
		if guess[i] == tc.Secret[i] {
			correct++
		} else {
			break // prefix attack stops being meaningful after a miss
		}
	}
	return correct
}

// ChannelCapacityBits returns the information (bits) a single timing
// observation reveals in the unmitigated comparator: log2 of the number of
// distinguishable latencies.
func (tc TimingChannel) ChannelCapacityBits() float64 {
	if tc.ConstantTime {
		return 0
	}
	return math.Log2(float64(len(tc.Secret) + 1))
}
