package security

import (
	"testing"
	"testing/quick"
)

func TestBenignRunWorks(t *testing.T) {
	s := BuildOverflowVictim(8)
	res := s.Run(s.BenignPayload(8), false, false)
	if res.Err != nil {
		t.Fatalf("benign run failed: %v", res.Err)
	}
	if res.Hijacked {
		t.Fatal("benign input must not hijack")
	}
	if res.Detected {
		t.Fatal("nothing to detect without IFT")
	}
}

func TestBenignRunCleanUnderIFT(t *testing.T) {
	s := BuildOverflowVictim(8)
	res := s.Run(s.BenignPayload(8), true, true)
	if res.Err != nil {
		t.Fatalf("benign run under enforcement failed: %v", res.Err)
	}
	if res.Detected {
		t.Fatal("false positive on benign input")
	}
}

func TestExploitHijacksWithoutIFT(t *testing.T) {
	s := BuildOverflowVictim(8)
	res := s.Run(s.ExploitPayload(), false, false)
	if !res.Hijacked {
		t.Fatal("exploit should leak the secret without IFT")
	}
}

func TestExploitDetectedWithIFT(t *testing.T) {
	s := BuildOverflowVictim(8)
	res := s.Run(s.ExploitPayload(), true, false)
	if !res.Detected {
		t.Fatal("IFT should flag the tainted jump")
	}
}

func TestExploitBlockedWithEnforcement(t *testing.T) {
	s := BuildOverflowVictim(8)
	res := s.Run(s.ExploitPayload(), true, true)
	if res.Hijacked {
		t.Fatal("enforcement should stop the hijack")
	}
	if !res.Detected {
		t.Fatal("violation should be recorded")
	}
	if res.Err == nil {
		t.Fatal("enforcement should abort with a violation error")
	}
}

// Property: exploits are detected for any buffer length; benign inputs are
// never flagged.
func TestQuickOverflowDetection(t *testing.T) {
	f := func(lenRaw uint8) bool {
		bufLen := int(lenRaw)%16 + 2
		s := BuildOverflowVictim(bufLen)
		if s.Run(s.ExploitPayload(), true, true).Hijacked {
			return false
		}
		benign := s.Run(s.BenignPayload(bufLen), true, true)
		return !benign.Detected && benign.Err == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIFTOverheadModest(t *testing.T) {
	// Hardware-assisted tags (5% per tag op) should cost well under 50%.
	hw := IFTOverhead(32, 0.05)
	if hw <= 0 || hw > 0.5 {
		t.Fatalf("hardware IFT overhead = %v, want (0, 0.5]", hw)
	}
	// Software shadow memory (300% per tag op) should cost much more.
	sw := IFTOverhead(32, 3.0)
	if sw < 2*hw {
		t.Fatalf("software IFT (%v) should dwarf hardware (%v)", sw, hw)
	}
}

func TestTimingAttackRecoversSecret(t *testing.T) {
	secret := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	alphabet := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	tc := TimingChannel{Secret: secret}
	if got := tc.RecoverSecret(alphabet); got != len(secret) {
		t.Fatalf("timing attack recovered %d/%d words", got, len(secret))
	}
}

func TestConstantTimeDefeatsAttack(t *testing.T) {
	secret := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	alphabet := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	tc := TimingChannel{Secret: secret, ConstantTime: true}
	if got := tc.RecoverSecret(alphabet); got > 1 {
		t.Fatalf("constant-time comparator leaked %d words", got)
	}
	if tc.ChannelCapacityBits() != 0 {
		t.Fatal("constant-time capacity should be 0")
	}
	leaky := TimingChannel{Secret: secret}
	if leaky.ChannelCapacityBits() <= 0 {
		t.Fatal("leaky comparator capacity should be positive")
	}
}

func TestCompareCyclesShapes(t *testing.T) {
	tc := TimingChannel{Secret: []int64{1, 2, 3}}
	if tc.CompareCycles([]int64{9}) >= tc.CompareCycles([]int64{1, 9}) {
		t.Fatal("longer matching prefix should take longer")
	}
	ct := TimingChannel{Secret: []int64{1, 2, 3}, ConstantTime: true}
	if ct.CompareCycles([]int64{9}) != ct.CompareCycles([]int64{1, 2, 3}) {
		t.Fatal("constant-time cost must not vary")
	}
}
