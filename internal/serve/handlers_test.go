package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
)

func newTestServer(t *testing.T) (*Engine, *httptest.Server) {
	t.Helper()
	e := newTestEngine(func(id string) (core.Result, error) {
		return fakeResult(id), nil
	})
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return e, srv
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, b.String()
}

func TestHealthz(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
}

func TestExperimentsListing(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/experiments")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("experiments: %d", resp.StatusCode)
	}
	var list []ExperimentInfo
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("experiments JSON: %v", err)
	}
	if len(list) != len(core.Registry()) {
		t.Fatalf("experiments: got %d want %d", len(list), len(core.Registry()))
	}
}

func TestRunEndpointJSON(t *testing.T) {
	e, srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/run/X7")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %q", resp.StatusCode, body)
	}
	var env runEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("run JSON: %v", err)
	}
	if env.ID != "X7" || env.CacheHit || env.Report == "" {
		t.Fatalf("run envelope: %+v", env)
	}
	resp2, body2 := get(t, srv.URL+"/run/X7")
	var env2 runEnvelope
	if err := json.Unmarshal([]byte(body2), &env2); err != nil {
		t.Fatalf("run JSON (2nd): %v %d", err, resp2.StatusCode)
	}
	if !env2.CacheHit {
		t.Fatal("second request should be served from cache")
	}
	if e.Executions() != 1 {
		t.Fatalf("executions: got %d want 1", e.Executions())
	}
}

func TestRunEndpointTextAndCSV(t *testing.T) {
	_, srv := newTestServer(t)
	_, text := get(t, srv.URL+"/run/X1?format=text")
	if !strings.Contains(text, "result for X1") || !strings.Contains(text, "finding for X1") {
		t.Fatalf("text format: %q", text)
	}
	_, csv := get(t, srv.URL+"/run/X1?format=csv")
	if !strings.HasPrefix(csv, "metric,value") {
		t.Fatalf("csv format: %q", csv)
	}
	resp, _ := get(t, srv.URL+"/run/X1?format=yaml")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format: got %d want 400", resp.StatusCode)
	}
}

func TestRunEndpointUnknownID(t *testing.T) {
	e := NewEngine(Config{Workers: 1})
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	defer e.Close()
	resp, body := get(t, srv.URL+"/run/NOPE")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: got %d (%q) want 404", resp.StatusCode, body)
	}
}

func TestRunEndpointInternalError(t *testing.T) {
	e := newTestEngine(func(id string) (core.Result, error) {
		return core.Result{}, errors.New("backend exploded")
	})
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	defer e.Close()
	resp, body := get(t, srv.URL+"/run/X1")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("runner failure: got %d (%q) want 500", resp.StatusCode, body)
	}
	if !strings.Contains(body, "backend exploded") {
		t.Fatalf("error body: %q", body)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, srv := newTestServer(t)
	get(t, srv.URL+"/run/X1")
	get(t, srv.URL+"/run/X1")
	resp, body := get(t, srv.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var m Metrics
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if m.Requests != 2 || m.CacheHits != 1 || m.Executions != 1 {
		t.Fatalf("stats: %+v", m)
	}
	if m.AllLatency.Count != 2 || m.AllLatency.P99 <= 0 {
		t.Fatalf("latency snapshot: %+v", m.AllLatency)
	}
	if m.Cache.Shards != 4 || m.Cache.Entries != 1 {
		t.Fatalf("cache stats: %+v", m.Cache)
	}
}

// The binary transport: the body is the memoized codec payload verbatim
// (decodable into the same Result JSON would describe) and the envelope
// fields ride in X-Arch21-* response headers.
func TestRunEndpointBinaryFormat(t *testing.T) {
	_, srv := newTestServer(t)
	// Warm the entry, then fetch it as bin: the hit must be flagged in
	// the header and the body must decode to the memoized result.
	if resp, _ := get(t, srv.URL+"/run/X1?format=bin"); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold bin GET: %d", resp.StatusCode)
	}
	resp, body := get(t, srv.URL+"/run/X1?format=bin")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm bin GET: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/octet-stream" {
		t.Fatalf("Content-Type = %q", got)
	}
	if resp.Header.Get("X-Arch21-Cache-Hit") != "1" {
		t.Fatal("warm bin GET not flagged as cache hit")
	}
	if got := resp.Header.Get("X-Arch21-Key"); got != "X1" {
		t.Fatalf("key header = %q, want X1", got)
	}
	res, err := core.DecodeResult([]byte(body))
	if err != nil {
		t.Fatalf("bin body does not decode: %v", err)
	}
	if res.Render() != fakeResult("X1").Render() {
		t.Fatal("bin body decodes to a different result")
	}
}

func TestRunEndpointBinaryParamsHeader(t *testing.T) {
	_, srv := newTestServer(t)
	resp, _ := get(t, srv.URL+"/run/E7?format=bin&param=bces=512")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bin GET with params: %d", resp.StatusCode)
	}
	params, err := core.ParseParams(resp.Header.Values("X-Arch21-Param"))
	if err != nil {
		t.Fatalf("param headers do not parse: %v", err)
	}
	if params["bces"] != 512 {
		t.Fatalf("params from headers = %v, want bces=512 present", params)
	}
	if key := resp.Header.Get("X-Arch21-Key"); !strings.Contains(key, "bces=512") {
		t.Fatalf("key header %q does not carry the resolved assignment", key)
	}
}

func TestRunEndpointRejectsUnknownFormat(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/run/X1?format=yaml")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(body, "format must be") {
		t.Fatalf("unknown-format error body: %s", body)
	}
}
