package serve

// The engine's multi-get surface: ServeEncodedBatch serves many
// (experiment, assignment, class) items in one call — warm hits inline
// off the slab, misses dispatched concurrently through the same
// singleflight + admission path single requests take — and the POST
// /batch handler exposes it over the varint frame contract in
// internal/httpapi. Per-item accounting is identical to ServeEncoded,
// so the per-class conservation law (hits + deduped + sheds +
// executions == requests) holds whether a request arrived alone or in
// a frame of 64.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/httpapi"
)

// BatchItem is one request in a ServeEncodedBatch call.
type BatchItem struct {
	// ID is the experiment to serve.
	ID string
	// Key, when non-empty, is the pre-derived engine cache key for
	// (ID, Params), with Params already schema-resolved. Only in-process
	// callers that performed the canonical resolution themselves (the
	// router's batched data plane) may set it: the engine trusts the
	// pair as exactly what resolveKey would return and serves the warm
	// path from it without re-resolving. Frames arriving over the wire
	// never carry it — the handler leaves it empty and the engine
	// resolves per item as usual.
	Key string
	// Params is the parameter assignment (nil for defaults).
	Params core.Params
	// Class is the QoS class the item is served and accounted under
	// (per item, not per batch: a coalesced flush can mix classes).
	Class admit.Class
}

// BatchOutcome is one item's result: exactly one of RawResponse (Err ==
// nil) or Err is meaningful. RawResponse.Raw follows the same slab
// aliasing contract as ServeEncoded.
type BatchOutcome struct {
	RawResponse RawResponse
	Err         error
}

// batchMissParallel bounds concurrent miss dispatches per batch call:
// the scheduler's worker pool already bounds cold compute, this only
// caps how many goroutines one frame can occupy at once.
const batchMissParallel = 8

// ServeEncodedBatch serves every item and returns outcomes in item
// order. Warm hits are served inline (one slab read each, no goroutine);
// misses run concurrently — bounded by batchMissParallel — through
// serveMissRaw, so a batch of cold points still deduplicates against
// concurrent single requests and sheds under the same admission policy.
// One item's failure never fails its siblings. The context carries the
// caller's tenant, deadline, and cancellation; each item's class comes
// from the item itself.
func (e *Engine) ServeEncodedBatch(ctx context.Context, items []BatchItem) []BatchOutcome {
	return e.ServeEncodedBatchInto(ctx, items, nil)
}

// ServeEncodedBatchInto is ServeEncodedBatch writing outcomes into a
// caller-supplied buffer (reused when its capacity suffices, grown
// otherwise) — the router's flush loop serves frame after frame through
// one scratch slice instead of allocating outcomes per flush. The
// returned slice is valid until the caller's next reuse of buf.
func (e *Engine) ServeEncodedBatchInto(ctx context.Context, items []BatchItem, buf []BatchOutcome) []BatchOutcome {
	if ctx == nil {
		ctx = context.Background()
	}
	var out []BatchOutcome
	if cap(buf) >= len(items) {
		out = buf[:len(items)]
		clear(out)
	} else {
		out = make([]BatchOutcome, len(items))
	}
	var missIdx []int
	tb := e.tenantBook(ctx)
	// One clock read serves the whole warm scan: items in one frame
	// share an arrival time, and a slab read is microseconds — per-item
	// Now calls were measurable on the flush path, the precision is not.
	t0 := time.Now()
	for i := range items {
		it := &items[i]
		key, resolved := it.Key, it.Params
		if key == "" {
			var err error
			key, resolved, err = e.resolveKey(it.ID, it.Params)
			if err != nil {
				out[i].Err = err
				continue
			}
		}
		cc := &e.classes[it.Class]
		cc.requests.Add(1)
		if tb != nil {
			tb.requests.Add(1)
		}
		if raw, ok := e.cache.Get(key); ok {
			cc.hits.Add(1)
			if tb != nil {
				tb.hits.Add(1)
			}
			lat := time.Since(t0)
			e.observe(it.Class, true, lat)
			out[i].RawResponse = RawResponse{ID: it.ID, Params: resolved, Key: key,
				Class: it.Class, Raw: raw, CacheHit: true, Latency: lat}
			continue
		}
		// Stash the resolved key/params for the miss pass below.
		out[i].RawResponse = RawResponse{Key: key, Params: resolved}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 {
		return out
	}
	sem := make(chan struct{}, batchMissParallel)
	var wg sync.WaitGroup
	for _, i := range missIdx {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			it := &items[i]
			// serveMissRaw reads the class from the context for its
			// accounting; it must match the class counted above.
			ictx := ctx
			if admit.ClassFrom(ctx) != it.Class {
				ictx = admit.WithClass(ctx, it.Class)
			}
			rr, err := e.serveMissRaw(ictx, it.ID, out[i].RawResponse.Key,
				out[i].RawResponse.Params, time.Now())
			if err != nil {
				out[i] = BatchOutcome{Err: err}
				return
			}
			out[i].RawResponse = rr
		}(i)
	}
	wg.Wait()
	return out
}

// batchErrStatus maps one item's serving error onto the HTTP status its
// outcome word carries — the same taxonomy writeRunError applies to a
// single /run request, so a batched caller can branch identically.
func batchErrStatus(err error) int {
	var shed *admit.ShedError
	switch {
	case errors.As(err, &shed):
		if shed.Deadline {
			return http.StatusTooManyRequests
		}
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownExperiment):
		return http.StatusNotFound
	case errors.Is(err, ErrBadParams):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// handleBatch is POST /batch: decode the request frame, serve every
// entry through ServeEncodedBatch, answer with the response frame. The
// whole-request error paths (unreadable body, bad frame, bad QoS
// headers) use the shared JSON envelope like every other endpoint;
// per-entry failures ride inside the frame as outcome words so one bad
// entry cannot fail its siblings.
func (e *Engine) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, httpapi.MaxBatchBytes))
	if err != nil {
		httpapi.WriteError(w, http.StatusRequestEntityTooLarge, httpapi.CodePayloadTooLarge,
			"batch body exceeds the cap or could not be read")
		return
	}
	entries, err := httpapi.DecodeBatchRequest(body)
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
		return
	}
	ctx, cancel, err := RequestContext(r)
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
		return
	}
	defer cancel()
	results := make([]httpapi.BatchResult, len(entries))
	items := make([]BatchItem, 0, len(entries))
	served := make([]int, 0, len(entries)) // results index per items index
	for i, en := range entries {
		p, perr := core.ParseParams(en.Params)
		if perr != nil {
			results[i] = httpapi.BatchResult{Status: http.StatusBadRequest, Msg: perr.Error()}
			continue
		}
		items = append(items, BatchItem{ID: en.ID, Params: p, Class: en.Class})
		served = append(served, i)
	}
	for j, o := range e.ServeEncodedBatch(ctx, items) {
		i := served[j]
		if o.Err != nil {
			results[i] = httpapi.BatchResult{Status: batchErrStatus(o.Err), Msg: o.Err.Error()}
			continue
		}
		rr := o.RawResponse
		results[i] = httpapi.BatchResult{OK: true, CacheHit: rr.CacheHit, Shared: rr.Shared,
			Key: rr.Key, Payload: rr.Raw}
	}
	buf := httpapi.GetBuffer()
	frame := httpapi.AppendBatchResponse((*buf)[:0], results)
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(frame)
	*buf = frame
	httpapi.PutBuffer(buf)
}
