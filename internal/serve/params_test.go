package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// newParamTestEngine injects a RunnerWith that counts executions and
// returns a findings-only result describing the assignment it ran under.
// IDs must be registered (resolution consults the registry's schemas).
func newParamTestEngine(execs *atomic.Int64) *Engine {
	return NewEngine(Config{
		Shards:  4,
		Workers: 2,
		RunnerWith: func(_ context.Context, id string, p core.Params) (core.Result, error) {
			execs.Add(1)
			f := id
			for _, name := range p.SortedNames() {
				f += " " + name + "=" + core.FormatParamValue(p[name])
			}
			return core.Result{Findings: []string{f}}, nil
		},
	})
}

// Distinct grid points memoize independently; repeats of the same point
// cost one execution.
func TestServeWithMemoizesPerPoint(t *testing.T) {
	var execs atomic.Int64
	e := newParamTestEngine(&execs)
	defer e.Close()

	a, err := e.ServeWith(context.Background(), "E7", core.Params{"bces": 512})
	if err != nil {
		t.Fatalf("ServeWith: %v", err)
	}
	if a.Key != "E7?bces=512" {
		t.Fatalf("key = %q", a.Key)
	}
	if a.Params["f"] != 0.975 {
		t.Fatalf("defaults not resolved: %v", a.Params)
	}
	b, err := e.ServeWith(context.Background(), "E7", core.Params{"bces": 1024})
	if err != nil {
		t.Fatalf("ServeWith: %v", err)
	}
	if b.CacheHit {
		t.Fatal("distinct point must not hit the first point's entry")
	}
	again, err := e.ServeWith(context.Background(), "E7", core.Params{"bces": 512})
	if err != nil {
		t.Fatalf("ServeWith: %v", err)
	}
	if !again.CacheHit {
		t.Fatal("repeat of a memoized point must hit")
	}
	if again.Result.Render() != a.Result.Render() {
		t.Fatal("memoized point differs from cold point")
	}
	if got := execs.Load(); got != 2 {
		t.Fatalf("executions = %d, want 2 (one per unique point)", got)
	}
}

// An explicit all-defaults assignment shares the bare-ID cache entry with
// the zero-param path.
func TestServeWithDefaultsSharesBareIDEntry(t *testing.T) {
	var execs atomic.Int64
	e := newParamTestEngine(&execs)
	defer e.Close()

	if _, err := e.Serve("E1"); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	r, err := e.ServeWith(context.Background(), "E1", core.Params{"gens": 6})
	if err != nil {
		t.Fatalf("ServeWith: %v", err)
	}
	if !r.CacheHit || r.Key != "E1" {
		t.Fatalf("explicit defaults should hit the bare-ID entry: %+v", r)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
}

func TestServeWithRejectsBadParams(t *testing.T) {
	var execs atomic.Int64
	e := newParamTestEngine(&execs)
	defer e.Close()

	if _, err := e.ServeWith(context.Background(), "E1", core.Params{"bogus": 1}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("unknown param: got %v, want ErrBadParams", err)
	}
	if _, err := e.ServeWith(context.Background(), "E1", core.Params{"gens": 99}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("out of range: got %v, want ErrBadParams", err)
	}
	if _, err := e.ServeWith(context.Background(), "nope", core.Params{"x": 1}); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("unknown id: got %v, want ErrUnknownExperiment", err)
	}
	if got := execs.Load(); got != 0 {
		t.Fatalf("rejected requests must not execute, got %d", got)
	}
}

// Findings-only results (what a custom runner or a sweep point may
// produce) survive the memoization round trip through the cache.
func TestServeWithMemoizesFindingsOnlyResult(t *testing.T) {
	var execs atomic.Int64
	e := newParamTestEngine(&execs)
	defer e.Close()

	cold, err := e.ServeWith(context.Background(), "E20", core.Params{"n": 64})
	if err != nil {
		t.Fatalf("ServeWith: %v", err)
	}
	if cold.Result.Table != nil || cold.Result.Figure != nil {
		t.Fatalf("fixture should be findings-only: %+v", cold.Result)
	}
	hit, err := e.ServeWith(context.Background(), "E20", core.Params{"n": 64})
	if err != nil {
		t.Fatalf("ServeWith: %v", err)
	}
	if !hit.CacheHit {
		t.Fatal("findings-only result was not memoized")
	}
	if len(hit.Result.Findings) != 1 || hit.Result.Findings[0] != cold.Result.Findings[0] {
		t.Fatalf("findings lost through the cache: %+v", hit.Result)
	}
}
