package serve

// Tests for the engine's multi-get surface: per-class and per-tenant
// conservation through ServeEncodedBatch (batched accounting must be
// indistinguishable from single-request accounting), per-entry error
// isolation, and the POST /batch frame round trip over HTTP.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/httpapi"
)

// Conservation through the batched path: frames of mixed classes,
// repeated keys (hits + dedup), and per-entry errors, issued
// concurrently. At quiescence every class's books must balance exactly
// as they do for single requests, and error entries must not be
// counted as requests (they fail validation before admission).
func TestServeEncodedBatchConservation(t *testing.T) {
	e := NewEngine(Config{Shards: 4, Workers: 2, RunnerWith: slowRunner(time.Millisecond),
		Tenants: []string{"t0", "t1", "t2"}})
	defer e.Close()

	const goroutines = 16
	const frames = 8
	var wg sync.WaitGroup
	var badEntries atomic.Int64
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f := 0; f < frames; f++ {
				items := make([]BatchItem, 0, 8)
				for i := 0; i < 7; i++ {
					class := admit.Interactive
					if (g+i)%2 == 0 {
						class = admit.Batch
					}
					items = append(items, BatchItem{
						ID:    fmt.Sprintf("K%d", (g+f+i)%5),
						Class: class,
					})
				}
				// One invalid entry per frame: params on an unknown ID
				// fail resolution before the request is counted.
				items = append(items, BatchItem{ID: "NOPE", Params: core.Params{"x": 1}})
				ctx := admit.WithTenant(context.Background(), fmt.Sprintf("t%d", g%3))
				for i, out := range e.ServeEncodedBatch(ctx, items) {
					if i == len(items)-1 {
						if out.Err == nil {
							t.Error("invalid entry served without error")
						}
						badEntries.Add(1)
						continue
					}
					if out.Err != nil {
						t.Errorf("entry %d: %v", i, out.Err)
						continue
					}
					if _, err := out.RawResponse.Result(); err != nil {
						t.Errorf("entry %d: bad payload: %v", i, err)
					}
				}
			}
		}()
	}
	wg.Wait()

	m := e.Metrics()
	var total int64
	for _, class := range admit.Classes() {
		cm := m.Classes[class.String()]
		if sum := cm.CacheHits + cm.Deduped + cm.Sheds + cm.Executions; sum != cm.Requests {
			t.Errorf("%s: hits(%d)+deduped(%d)+sheds(%d)+executions(%d)=%d != requests(%d)",
				class, cm.CacheHits, cm.Deduped, cm.Sheds, cm.Executions, sum, cm.Requests)
		}
		total += cm.Requests
	}
	if want := int64(goroutines * frames * 7); total != want {
		t.Fatalf("total requests %d, want %d (invalid entries must not be counted; %d rejected)",
			total, want, badEntries.Load())
	}
	// Tenant books saw every valid request too.
	var tenant int64
	for _, tm := range m.Tenants {
		tenant += tm.Requests
	}
	if tenant != total {
		t.Fatalf("tenant books recorded %d requests, want %d", tenant, total)
	}
}

// POST /batch over HTTP: one frame of mixed entries round-trips with
// per-entry outcomes (a bad entry answers inside the frame, not as a
// whole-request error), and a second identical frame is all cache hits.
func TestBatchHandlerRoundTrip(t *testing.T) {
	e := NewEngine(Config{Shards: 4, Workers: 2})
	defer e.Close()
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	entries := []httpapi.BatchEntry{
		{ID: "E7", Class: admit.Interactive},
		{ID: "E7", Class: admit.Batch, Params: []string{"f=0.95", "bces=64"}},
		{ID: "E1", Class: admit.Batch},
		{ID: "E7", Params: []string{"not-an-assignment"}}, // 400 inside the frame
		{ID: "NOPE", Class: admit.Interactive},            // 404 inside the frame
	}
	post := func() []httpapi.BatchResult {
		t.Helper()
		frame := httpapi.AppendBatchRequest(nil, entries)
		resp, err := http.Post(srv.URL+"/v1/batch", "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("POST /v1/batch: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/batch: HTTP %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("reading frame: %v", err)
		}
		results, err := httpapi.DecodeBatchResponse(body)
		if err != nil {
			t.Fatalf("DecodeBatchResponse: %v", err)
		}
		if len(results) != len(entries) {
			t.Fatalf("got %d results, want %d", len(results), len(entries))
		}
		return results
	}

	first := post()
	for i := 0; i < 3; i++ {
		r := first[i]
		if !r.OK {
			t.Fatalf("entry %d: HTTP %d: %s", i, r.Status, r.Msg)
		}
		if r.Key == "" {
			t.Fatalf("entry %d: no cache key", i)
		}
		res, err := core.DecodeResult(r.Payload)
		if err != nil {
			t.Fatalf("entry %d: bad payload: %v", i, err)
		}
		if res.Render() == "" {
			t.Fatalf("entry %d: empty result", i)
		}
	}
	if r := first[3]; r.OK || r.Status != http.StatusBadRequest {
		t.Fatalf("bad-param entry: %+v, want status 400", r)
	}
	if r := first[4]; r.OK || r.Status != http.StatusNotFound {
		t.Fatalf("unknown-ID entry: %+v, want status 404", r)
	}

	second := post()
	for i := 0; i < 3; i++ {
		if !second[i].OK || !second[i].CacheHit {
			t.Fatalf("repeat entry %d not a cache hit: %+v", i, second[i])
		}
	}

	// A frame that is not a frame answers with the JSON envelope, not a
	// panic or a silent 200.
	resp, err := http.Post(srv.URL+"/v1/batch", "application/octet-stream",
		bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatalf("POST junk: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk body: HTTP %d, want 400", resp.StatusCode)
	}
}
