package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
)

// ErrUnknownExperiment is returned (wrapped) by Serve when the ID is not
// registered, so servers can distinguish a missing resource from an
// internal failure.
var ErrUnknownExperiment = errors.New("serve: unknown experiment")

// ErrBadParams wraps parameter-resolution failures (unknown name, value
// out of range) so servers can report them as client errors.
var ErrBadParams = errors.New("serve: invalid parameters")

// Config parameterizes an Engine.
type Config struct {
	// Shards is the cache shard count (rounded up to a power of two;
	// default 16).
	Shards int
	// TTL is the cache entry lifetime (default 0: entries never expire —
	// experiments are deterministic, so staleness is impossible; a TTL
	// only bounds memory).
	TTL time.Duration
	// CacheBytes bounds the tier-1 slab cache's total arena footprint
	// (default 0: unbounded — dead bytes are compacted but live entries
	// are never evicted). When set, CachePolicy picks the survivors.
	CacheBytes int64
	// CachePolicy selects the eviction policy for a bounded cache
	// (default EvictLRU; EvictCost keeps frequently-hit entries over
	// recent ones).
	CachePolicy EvictionPolicy
	// Workers bounds concurrent cold experiment runs (default 4).
	Workers int
	// Queue is the per-class scheduler queue depth (default 16*Workers).
	// A full interactive queue sheds (fail fast) — the default is sized
	// so shedding means sustained overload, not a modest burst of
	// distinct cold keys — while a full batch queue backpressures
	// submitters.
	Queue int
	// Policy is the scheduling discipline (default admit.StrictPriority:
	// interactive ahead of batch plus the token-bucket batch throttle).
	// admit.SharedFIFO reproduces the old single-FIFO pool — the no-QoS
	// baseline that lets batch pressure invert interactive latency.
	Policy admit.Policy
	// BatchRate throttles batch admissions to this rate (tokens/s; 0 =
	// unthrottled). Tunable live via SetBatchRate — the knob the qos
	// feedback controller turns to hold the interactive p99 at its SLO.
	BatchRate float64
	// BatchBurst is the token bucket depth (default max(1, Workers)).
	BatchBurst float64
	// SampleCap is the latency reservoir capacity per outcome class
	// (default 4096).
	SampleCap int
	// Runner executes one experiment by ID at its default parameters.
	// Defaults to the core registry; injectable for tests.
	Runner func(id string) (core.Result, error)
	// RunnerWith executes one experiment under a resolved parameter
	// assignment, honoring ctx cancellation. Defaults to the core
	// registry's RunWith (or to Runner, ignoring params and ctx, when
	// only Runner is injected); injectable for tests. Note that injecting
	// a runner does not replace parameter resolution: ServeWith still
	// resolves non-empty assignments against the core registry's schema
	// for the ID, so a runner-only ID (one not registered in core) serves
	// default (nil-params) requests fine but fails with
	// ErrUnknownExperiment as soon as params are passed.
	RunnerWith func(ctx context.Context, id string, p core.Params) (core.Result, error)
	// Tenants declares the per-tenant accounting vocabulary. When
	// non-empty, the engine keeps per-tenant books (requests, cache
	// hits, sheds) and registers per-tenant /metrics families; requests
	// tagged with an unlisted tenant — or none — fold into the "other"
	// bucket, so metric cardinality is operator config, never
	// request-derived. A bad vocabulary (duplicates, empty names, more
	// than obs.MaxBoundedLabelValues entries, a literal "other") panics
	// at construction, like a bad metric registration.
	Tenants []string
	// SnapshotPath, when set, enables the tier-2 disk cache: NewEngine
	// loads the snapshot file into the in-memory tier (a warm start —
	// entries that fail to decode as Results are skipped), SaveSnapshot
	// rewrites it, and Invalidate/Reset rewrite or remove it so the disk
	// tier stays invalidation-coherent with the memory tier. A missing or
	// corrupt file is never fatal.
	SnapshotPath string
}

// classCounters is one request class's slice of the engine's books. The
// per-class conservation law — hits + deduped + sheds + executions ==
// requests — holds for every class at quiescence: each admitted request
// lands in exactly one bucket of its own class (a shed follower of a
// shared flight counts as deduped; the leader owns the shed).
type classCounters struct {
	requests   atomic.Int64
	hits       atomic.Int64
	deduped    atomic.Int64
	executions atomic.Int64
	sheds      atomic.Int64

	hitLat  *stats.LatencyRecorder
	coldLat *stats.LatencyRecorder
	allLat  *stats.LatencyRecorder
	// winLat is the class's current *window* recorder, swapped out by
	// TakeClassWindow: the live signal a feedback controller needs. The
	// lifetime reservoirs above freeze once mature (replacement
	// probability cap/n), so they must never drive control decisions.
	winLat atomic.Pointer[stats.LatencyRecorder]
	// hitHist and coldHist are the class's cumulative fixed-bucket
	// latency histograms — what GET /metrics exposes. Scrapes read these
	// (and the atomics above) only, never winLat, so a scrape can never
	// consume the controller's window.
	hitHist  *stats.AtomicHistogram
	coldHist *stats.AtomicHistogram
}

// tenantCounters is one tenant's slice of the engine's books. Unlike the
// class books there is no per-tenant conservation law: a tenant's
// deduped/executed requests are accounted under its class; the tenant
// plane answers "who is driving the traffic and who is being shed".
type tenantCounters struct {
	requests atomic.Int64
	hits     atomic.Int64
	sheds    atomic.Int64
}

// Engine serves experiment results concurrently: cache first, then
// singleflight-deduplicated execution on the class-based admission
// scheduler (internal/admit), with per-request, per-class latency
// recorded so the engine can report its own tail — split by class, which
// is what proves batch pressure is not moving interactive p99.
type Engine struct {
	cache *Cache
	fg    flightGroup
	sched *admit.Scheduler
	run   func(ctx context.Context, id string, p core.Params) (core.Result, error)

	// snapMu serializes tier-2 snapshot writes (SaveSnapshot, the
	// invalidation-coherence rewrites) so concurrent savers cannot
	// interleave rename order with stale dumps.
	snapMu        sync.Mutex
	snapPath      string
	snapLoaded    atomic.Int64
	snapSkipped   atomic.Int64
	snapSaves     atomic.Int64
	snapSaveFails atomic.Int64
	snapLastSave  atomic.Int64 // unix nanos

	classes   [2]classCounters
	sampleCap int

	// tenants/tenantBooks are the per-tenant accounting plane: nil/empty
	// unless Config.Tenants was set. Books are indexed by the bounded
	// vocabulary's slots (declared tenants, then the overflow bucket).
	tenants     *obs.BoundedLabels
	tenantBooks []tenantCounters

	hitLat  *stats.LatencyRecorder
	coldLat *stats.LatencyRecorder
	allLat  *stats.LatencyRecorder

	started time.Time

	// events records control-plane decisions (sheds here; controller
	// retunes and /control applications are recorded by their owners into
	// the same ring). Always non-nil after NewEngine.
	events *obs.Events

	// obsOnce/obsReg lazily build the /metrics registry (it closes over
	// the engine and never changes after first use).
	obsOnce sync.Once
	obsReg  *obs.Registry

	// statsMu/statsVal/statsAt memoize Metrics() for the /stats handler:
	// a full snapshot walks every reservoir (sort per percentile), so a
	// scrape storm would burn CPU the serving path needs. ~250ms of
	// staleness is invisible to an operator dashboard.
	statsMu  sync.Mutex
	statsVal Metrics
	statsAt  time.Time

	// sloMu/sloHook is the live-SLO actuator POST /control drives when a
	// feedback controller is attached (cmd/arch21d registers the
	// supervisor's SetSLO here).
	sloMu   sync.Mutex
	sloHook func(slo time.Duration) error
}

// Response is one served result.
type Response struct {
	// ID is the experiment ID served.
	ID string
	// Params is the resolved parameter assignment the result was
	// computed under (nil for zero-param requests).
	Params core.Params
	// Key is the cache key the result is memoized under (the bare ID
	// for default assignments).
	Key string
	// Class is the request class the engine served (and accounted) the
	// request under.
	Class admit.Class
	// Result is the decoded experiment output.
	Result core.Result
	// CacheHit reports whether the result came straight from the cache.
	CacheHit bool
	// Shared reports whether this request piggybacked on another
	// caller's in-flight execution (singleflight).
	Shared bool
	// Latency is the request's wall time inside the engine.
	Latency time.Duration
}

// RawResponse is one served result in its encoded (wire) form — the
// zero-copy variant of Response. Raw is the core.Result codec bytes
// exactly as memoized; on a cache hit it aliases slab memory (see the
// Cache aliasing contract), so callers must consume it before issuing
// any write for the same key and must never modify it. Entries enter the
// cache only as Encode output or as snapshot payloads validated by
// DecodeResult at load, so Raw always decodes.
type RawResponse struct {
	// ID, Params, Key, Class mirror Response.
	ID     string
	Params core.Params
	Key    string
	Class  admit.Class
	// Raw is the encoded core.Result payload.
	Raw []byte
	// CacheHit and Shared mirror Response.
	CacheHit bool
	Shared   bool
	// Latency is the request's wall time inside the engine.
	Latency time.Duration
}

// Result decodes the raw payload (allocating — the convenience path, not
// the zero-copy one).
func (r RawResponse) Result() (core.Result, error) {
	return core.DecodeResult(r.Raw)
}

// runRegistry is the default RunnerWith: execute a registered experiment
// under a resolved assignment (nil means defaults), honoring ctx.
func runRegistry(ctx context.Context, id string, p core.Params) (core.Result, error) {
	e, ok := core.ByID(id)
	if !ok {
		return core.Result{}, fmt.Errorf("%w %q", ErrUnknownExperiment, id)
	}
	res, _, err := e.RunWith(ctx, p)
	return res, err
}

// NewEngine builds and starts an engine.
func NewEngine(cfg Config) *Engine {
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 16 * cfg.Workers
	}
	if cfg.SampleCap <= 0 {
		cfg.SampleCap = 4096
	}
	run := cfg.RunnerWith
	if run == nil {
		if cfg.Runner != nil {
			runner := cfg.Runner
			run = func(_ context.Context, id string, _ core.Params) (core.Result, error) {
				return runner(id)
			}
		} else {
			run = runRegistry
		}
	}
	e := &Engine{
		cache: NewCacheSized(cfg.Shards, cfg.TTL, cfg.CacheBytes, cfg.CachePolicy),
		sched: admit.NewScheduler(admit.Config{
			Workers:    cfg.Workers,
			Queue:      cfg.Queue,
			Policy:     cfg.Policy,
			BatchRate:  cfg.BatchRate,
			BatchBurst: cfg.BatchBurst,
		}),
		run:      run,
		snapPath: cfg.SnapshotPath,
		hitLat:   stats.NewLatencyRecorder(cfg.SampleCap, 1),
		coldLat:  stats.NewLatencyRecorder(cfg.SampleCap, 2),
		allLat:   stats.NewLatencyRecorder(cfg.SampleCap, 3),
		started:  time.Now(),
		events:   obs.NewEvents(0),
	}
	e.sampleCap = cfg.SampleCap
	for i := range e.classes {
		c := &e.classes[i]
		c.hitLat = stats.NewLatencyRecorder(cfg.SampleCap, uint64(10+3*i))
		c.coldLat = stats.NewLatencyRecorder(cfg.SampleCap, uint64(11+3*i))
		c.allLat = stats.NewLatencyRecorder(cfg.SampleCap, uint64(12+3*i))
		c.winLat.Store(stats.NewLatencyRecorder(cfg.SampleCap, uint64(20+i)))
		c.hitHist = stats.NewAtomicHistogram(nil)
		c.coldHist = stats.NewAtomicHistogram(nil)
	}
	if len(cfg.Tenants) > 0 {
		e.tenants = obs.NewBoundedLabels(cfg.Tenants, "other")
		e.tenantBooks = make([]tenantCounters, e.tenants.Len())
	}
	if e.snapPath != "" {
		e.loadSnapshot()
	}
	return e
}

// tenantBook returns the per-tenant counter slot for the context's
// tenant (unknown and untagged requests share the overflow slot), nil
// when per-tenant accounting is not configured.
func (e *Engine) tenantBook(ctx context.Context) *tenantCounters {
	if e.tenants == nil {
		return nil
	}
	return &e.tenantBooks[e.tenants.Index(admit.TenantFrom(ctx))]
}

// loadSnapshot warm-starts the in-memory tier from the tier-2 file.
// Entries whose payload does not decode as a Result are skipped (they
// would be dropped at first Get anyway); a corrupt file contributes its
// readable prefix. Never fatal.
func (e *Engine) loadSnapshot() {
	kvs, err := ReadSnapshotFile(e.snapPath)
	_ = err // corruption already yielded the loadable prefix
	for _, kv := range kvs {
		if _, derr := core.DecodeResult(kv.Val); derr != nil {
			e.snapSkipped.Add(1)
			continue
		}
		// Preserve the entry's original insertion time: a TTL bounds an
		// entry's total life, and a restart must not renew it.
		e.cache.SetStamped(kv.Key, kv.Val, kv.AddedUnixNano)
		e.snapLoaded.Add(1)
	}
}

// SaveSnapshot writes the in-memory tier to the tier-2 file (atomic
// replace). It is a no-op without a configured SnapshotPath.
func (e *Engine) SaveSnapshot() error {
	if e.snapPath == "" {
		return nil
	}
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	if err := WriteSnapshotFile(e.snapPath, e.cache.Dump()); err != nil {
		e.snapSaveFails.Add(1)
		return err
	}
	e.snapSaves.Add(1)
	e.snapLastSave.Store(time.Now().UnixNano())
	return nil
}

// dropOrSaveSnapshot keeps the tier-2 file coherent after a deletion:
// rewrite it from the post-delete memory tier, and if that fails (disk
// full), remove the file outright — a restart must start cold rather
// than resurrect entries that were dropped on purpose. Every failed
// maintenance op counts in SnapshotStats.SaveFails; if even the remove
// fails (directory unwritable), the counter is the only signal left, so
// operators should alert on it.
func (e *Engine) dropOrSaveSnapshot() {
	if e.snapPath == "" {
		return
	}
	if err := e.SaveSnapshot(); err != nil {
		e.snapMu.Lock()
		if rerr := os.Remove(e.snapPath); rerr != nil && !os.IsNotExist(rerr) {
			e.snapSaveFails.Add(1)
		}
		e.snapMu.Unlock()
	}
}

// Serve returns the result for one experiment ID at its default
// parameters and the interactive class: from the cache when memoized,
// otherwise executed once (no matter how many callers arrive
// concurrently) through the admission scheduler and memoized on the way
// out.
func (e *Engine) Serve(id string) (Response, error) {
	return e.ServeWith(context.Background(), id, nil)
}

// ServeWith serves one experiment under a parameter assignment (nil or
// empty means defaults). The assignment is resolved and validated against
// the experiment's declared schema and folded into the cache key, so each
// distinct grid point is memoized — and singleflight-deduplicated —
// independently, while explicit-default assignments share the bare-ID
// entry with Serve.
//
// The context carries the request's QoS envelope: its class
// (admit.WithClass; untagged requests are interactive), its deadline
// (deadline-aware admission sheds a cold request whose projected queue
// wait already exceeds it), and its cancellation (a canceled request
// stops the underlying experiment at its next iteration boundary — cache
// hits are served regardless, since they cost microseconds).
func (e *Engine) ServeWith(ctx context.Context, id string, p core.Params) (Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	t0 := time.Now()
	class := admit.ClassFrom(ctx)

	key, resolved, err := e.resolveKey(id, p)
	if err != nil {
		return Response{}, err
	}
	// Requests are counted once validation has passed, so the per-class
	// conservation law (hits+deduped+sheds+executions == requests) holds
	// over everything that was actually admitted to the serving path.
	cc := &e.classes[class]
	cc.requests.Add(1)
	tb := e.tenantBook(ctx)
	if tb != nil {
		tb.requests.Add(1)
	}

	if raw, ok := e.cache.Get(key); ok {
		res, err := core.DecodeResult(raw)
		if err != nil {
			// A corrupt entry is unservable; drop it and fall through
			// to a fresh execution.
			e.cache.Delete(key)
		} else {
			cc.hits.Add(1)
			if tb != nil {
				tb.hits.Add(1)
			}
			lat := time.Since(t0)
			e.observe(class, true, lat)
			return Response{ID: id, Params: resolved, Key: key, Class: class,
				Result: res, CacheHit: true, Latency: lat}, nil
		}
	}

	rr, err := e.serveMissRaw(ctx, id, key, resolved, t0)
	if err != nil {
		return Response{}, err
	}
	res, err := core.DecodeResult(rr.Raw)
	if err != nil {
		return Response{}, err
	}
	return Response{ID: rr.ID, Params: rr.Params, Key: rr.Key, Class: rr.Class,
		Result: res, CacheHit: rr.CacheHit, Shared: rr.Shared, Latency: rr.Latency}, nil
}

// ServeEncoded is ServeWith without the decode: the warm path returns
// the memoized codec bytes straight from the slab (copy-on-read is the
// caller's choice — the HTTP layer copies exactly once, into the
// response writer). Semantics, accounting, and QoS envelope handling
// are identical to ServeWith; only the Result materialization is
// skipped. See RawResponse for the aliasing rules on the returned
// bytes.
func (e *Engine) ServeEncoded(ctx context.Context, id string, p core.Params) (RawResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	t0 := time.Now()
	class := admit.ClassFrom(ctx)

	key, resolved, err := e.resolveKey(id, p)
	if err != nil {
		return RawResponse{}, err
	}
	cc := &e.classes[class]
	cc.requests.Add(1)
	tb := e.tenantBook(ctx)
	if tb != nil {
		tb.requests.Add(1)
	}

	if raw, ok := e.cache.Get(key); ok {
		cc.hits.Add(1)
		if tb != nil {
			tb.hits.Add(1)
		}
		lat := time.Since(t0)
		e.observe(class, true, lat)
		return RawResponse{ID: id, Params: resolved, Key: key, Class: class,
			Raw: raw, CacheHit: true, Latency: lat}, nil
	}
	return e.serveMissRaw(ctx, id, key, resolved, t0)
}

// resolveKey maps (id, params) to the cache key: the bare ID for
// zero-param requests, the experiment's canonical grid-point key after
// schema resolution otherwise.
func (e *Engine) resolveKey(id string, p core.Params) (string, core.Params, error) {
	if len(p) == 0 {
		return id, nil, nil
	}
	exp, ok := core.ByID(id)
	if !ok {
		return "", nil, fmt.Errorf("%w %q", ErrUnknownExperiment, id)
	}
	resolved, err := exp.ResolveParams(p)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadParams, err)
	}
	return exp.CacheKey(resolved), resolved, nil
}

// serveMissRaw is the path after a cache miss: singleflight-deduplicated
// execution through the admission scheduler, memoizing on the way out,
// returning the encoded payload. Exactly one per-class counter bucket is
// incremented per caller: hit (late leader), deduped (follower, whatever
// the outcome), execution (leader whose task ran, even to an error), or
// shed (leader rejected at admission or canceled before start).
func (e *Engine) serveMissRaw(ctx context.Context, id, key string, p core.Params, t0 time.Time) (RawResponse, error) {
	class := admit.ClassFrom(ctx)
	cc := &e.classes[class]
	tb := e.tenantBook(ctx)
	var leaderHit, executed bool
	raw, err, shared := e.fg.Do(key, func() ([]byte, error) {
		// A caller can become flight leader just after the previous
		// leader memoized and left (it missed the cache before the Set
		// landed). Re-check here so an already-memoized experiment is
		// never re-executed.
		if raw, ok := e.cache.Get(key); ok {
			leaderHit = true
			return raw, nil
		}
		return e.sched.Run(ctx, func() ([]byte, error) {
			executed = true
			cc.executions.Add(1)
			res, err := e.run(ctx, id, p)
			if err != nil {
				return nil, err
			}
			enc := res.Encode()
			e.cache.Set(key, enc)
			return enc, nil
		})
	})
	if shared {
		cc.deduped.Add(1)
	} else if err != nil && !executed && !leaderHit {
		// The leader was turned away before its task ran: a queue-full or
		// deadline shed, a cancellation while queued, or a closed
		// scheduler. All are sheds — admitted requests that did no work.
		cc.sheds.Add(1)
		if tb != nil {
			tb.sheds.Add(1)
		}
		reason := "canceled"
		var shedErr *admit.ShedError
		data := map[string]float64{}
		if errors.As(err, &shedErr) {
			reason = "queue"
			if shedErr.Deadline {
				reason = "deadline"
			}
			data["retry_after_seconds"] = shedErr.RetryAfter.Seconds()
		}
		e.events.Record(obs.EventShed,
			map[string]string{"class": class.String(), "reason": reason}, data)
	}
	if err != nil {
		return RawResponse{}, err
	}
	lat := time.Since(t0)
	if leaderHit && !shared {
		cc.hits.Add(1)
		if tb != nil {
			tb.hits.Add(1)
		}
		e.observe(class, true, lat)
		return RawResponse{ID: id, Params: p, Key: key, Class: class, Raw: raw,
			CacheHit: true, Latency: lat}, nil
	}
	e.observe(class, false, lat)
	return RawResponse{ID: id, Params: p, Key: key, Class: class, Raw: raw,
		Shared: shared, Latency: lat}, nil
}

func (e *Engine) observe(class admit.Class, hit bool, lat time.Duration) {
	s := lat.Seconds()
	cc := &e.classes[class]
	if hit {
		e.hitLat.Observe(s)
		cc.hitLat.Observe(s)
		cc.hitHist.Observe(s)
	} else {
		e.coldLat.Observe(s)
		cc.coldLat.Observe(s)
		cc.coldHist.Observe(s)
	}
	e.allLat.Observe(s)
	cc.allLat.Observe(s)
	cc.winLat.Load().Observe(s)
}

// TakeClassWindow returns the class's latency snapshot over the window
// since the previous TakeClassWindow call and starts a fresh window.
// This is the signal the SLO feedback controller must read: the
// lifetime reservoirs in Metrics barely move once mature (a new
// observation replaces a slot with probability cap/n), so a controller
// fed from them would neither see a fresh violation nor a recovery. An
// observation racing the swap may land in the retired window and be
// dropped from both — harmless for a control signal.
func (e *Engine) TakeClassWindow(class admit.Class) stats.LatencySnapshot {
	cc := &e.classes[class]
	fresh := stats.NewLatencyRecorder(e.sampleCap, uint64(30+int(class)))
	return cc.winLat.Swap(fresh).Snapshot()
}

// SetBatchRate retunes the batch token-bucket rate live (<= 0 removes
// the throttle) — the qos feedback controller's actuator.
func (e *Engine) SetBatchRate(rate float64) { e.sched.SetBatchRate(rate) }

// BatchRate returns the scheduler's current batch token-bucket rate.
func (e *Engine) BatchRate() float64 { return e.sched.BatchRate() }

// ClassMetrics is one request class's slice of the engine's books: the
// conservation counters (hits + deduped + sheds + executions == requests
// at quiescence) plus the class's own latency distributions.
type ClassMetrics struct {
	Requests   int64 `json:"requests"`
	CacheHits  int64 `json:"cache_hits"`
	Deduped    int64 `json:"deduped"`
	Executions int64 `json:"executions"`
	// Sheds counts requests rejected at admission: full interactive
	// queue, projected wait past the request deadline, or cancellation
	// before the work started.
	Sheds int64 `json:"sheds"`
	// QueueDepth is the class's current scheduler queue depth (a gauge).
	QueueDepth int `json:"queue_depth"`
	// HitLatency, ColdLatency, AllLatency are the class's latency
	// snapshots (seconds).
	HitLatency  stats.LatencySnapshot `json:"hit_latency"`
	ColdLatency stats.LatencySnapshot `json:"cold_latency"`
	AllLatency  stats.LatencySnapshot `json:"all_latency"`
}

// TenantMetrics is one tenant's slice of the engine's books (see
// tenantCounters for what the tenant plane does and does not promise).
type TenantMetrics struct {
	Requests  int64 `json:"requests"`
	CacheHits int64 `json:"cache_hits"`
	Sheds     int64 `json:"sheds"`
}

// Metrics is a point-in-time engine health snapshot.
type Metrics struct {
	// UptimeSeconds is time since NewEngine.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts validated Serve calls across classes; CacheHits
	// those answered from cache; Deduped those that piggybacked on an
	// in-flight execution; Executions the underlying experiment runs
	// actually performed; Sheds requests rejected at admission.
	Requests   int64 `json:"requests"`
	CacheHits  int64 `json:"cache_hits"`
	Deduped    int64 `json:"deduped"`
	Executions int64 `json:"executions"`
	Sheds      int64 `json:"sheds"`
	// Workers is the scheduler's concurrency bound.
	Workers int `json:"workers"`
	// Cache aggregates shard counters.
	Cache CacheStats `json:"cache"`
	// HitLatency, ColdLatency, AllLatency are cross-class latency
	// snapshots (seconds).
	HitLatency  stats.LatencySnapshot `json:"hit_latency"`
	ColdLatency stats.LatencySnapshot `json:"cold_latency"`
	AllLatency  stats.LatencySnapshot `json:"all_latency"`
	// Classes splits the books by request class ("interactive",
	// "batch") — the view that proves batch pressure is not moving
	// interactive tail latency.
	Classes map[string]ClassMetrics `json:"classes"`
	// Tenants splits request/hit/shed counts by tenant when per-tenant
	// accounting is configured (Config.Tenants); the "other" key
	// aggregates unlisted and untagged traffic. Absent otherwise.
	Tenants map[string]TenantMetrics `json:"tenants,omitempty"`
	// Scheduler is the admission scheduler's own snapshot: policy,
	// queue depths, token bucket state, per-class service EWMAs.
	Scheduler admit.Stats `json:"scheduler"`
	// Snapshot reports the tier-2 disk cache (zero value when disabled).
	Snapshot SnapshotStats `json:"snapshot"`
}

// SnapshotStats reports the tier-2 disk cache's activity.
type SnapshotStats struct {
	// Enabled reports whether a SnapshotPath is configured.
	Enabled bool `json:"enabled"`
	// Loaded counts entries warm-started into the memory tier at boot;
	// Skipped counts boot entries dropped because their payload did not
	// decode as a Result.
	Loaded  int64 `json:"loaded"`
	Skipped int64 `json:"skipped"`
	// Saves counts snapshot writes; SaveFails counts failed ones (after
	// a failed coherence rewrite the file is removed so a restart starts
	// cold instead of resurrecting dropped entries); LastSaveUnixNano
	// stamps the latest success.
	Saves            int64 `json:"saves"`
	SaveFails        int64 `json:"save_fails"`
	LastSaveUnixNano int64 `json:"last_save_unix_nano,omitempty"`
}

// Metrics returns current counters and latency snapshots.
func (e *Engine) Metrics() Metrics {
	sched := e.sched.Stats()
	m := Metrics{
		UptimeSeconds: time.Since(e.started).Seconds(),
		Workers:       sched.Workers,
		Cache:         e.cache.Stats(),
		HitLatency:    e.hitLat.Snapshot(),
		ColdLatency:   e.coldLat.Snapshot(),
		AllLatency:    e.allLat.Snapshot(),
		Classes:       make(map[string]ClassMetrics, len(e.classes)),
		Scheduler:     sched,
		Snapshot: SnapshotStats{
			Enabled:          e.snapPath != "",
			Loaded:           e.snapLoaded.Load(),
			Skipped:          e.snapSkipped.Load(),
			Saves:            e.snapSaves.Load(),
			SaveFails:        e.snapSaveFails.Load(),
			LastSaveUnixNano: e.snapLastSave.Load(),
		},
	}
	for _, class := range admit.Classes() {
		cc := &e.classes[class]
		cm := ClassMetrics{
			Requests:    cc.requests.Load(),
			CacheHits:   cc.hits.Load(),
			Deduped:     cc.deduped.Load(),
			Executions:  cc.executions.Load(),
			Sheds:       cc.sheds.Load(),
			QueueDepth:  sched.Classes[class.String()].Queued,
			HitLatency:  cc.hitLat.Snapshot(),
			ColdLatency: cc.coldLat.Snapshot(),
			AllLatency:  cc.allLat.Snapshot(),
		}
		m.Classes[class.String()] = cm
		m.Requests += cm.Requests
		m.CacheHits += cm.CacheHits
		m.Deduped += cm.Deduped
		m.Executions += cm.Executions
		m.Sheds += cm.Sheds
	}
	if e.tenants != nil {
		m.Tenants = make(map[string]TenantMetrics, e.tenants.Len())
		for i := range e.tenantBooks {
			tb := &e.tenantBooks[i]
			m.Tenants[e.tenants.Value(i)] = TenantMetrics{
				Requests:  tb.requests.Load(),
				CacheHits: tb.hits.Load(),
				Sheds:     tb.sheds.Load(),
			}
		}
	}
	return m
}

// Executions returns how many underlying experiment runs have happened
// (the number singleflight and the cache exist to minimize).
func (e *Engine) Executions() int64 {
	var n int64
	for i := range e.classes {
		n += e.classes[i].executions.Load()
	}
	return n
}

// Invalidate drops an experiment's memoized results: the bare-ID entry
// and every parameterized variant (keys "id?...") — from both tiers: the
// tier-2 snapshot is rewritten from the post-delete memory tier, so a
// restart cannot resurrect invalidated entries. It reports whether any
// entry was present.
func (e *Engine) Invalidate(id string) bool {
	n := e.cache.DeletePrefix(id + "?")
	present := e.cache.Delete(id) || n > 0
	if present {
		e.dropOrSaveSnapshot()
	}
	return present
}

// Reset drops every memoized result from both tiers (the tier-2 snapshot
// is rewritten empty — or removed if the rewrite fails — so a restart
// starts cold).
func (e *Engine) Reset() {
	e.cache.Clear()
	e.dropOrSaveSnapshot()
}

// Close shuts down the scheduler, draining queued work. Serve must not
// be called after Close.
func (e *Engine) Close() { e.sched.Close() }
