package serve

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// ErrUnknownExperiment is returned (wrapped) by Serve when the ID is not
// registered, so servers can distinguish a missing resource from an
// internal failure.
var ErrUnknownExperiment = errors.New("serve: unknown experiment")

// ErrBadParams wraps parameter-resolution failures (unknown name, value
// out of range) so servers can report them as client errors.
var ErrBadParams = errors.New("serve: invalid parameters")

// Config parameterizes an Engine.
type Config struct {
	// Shards is the cache shard count (rounded up to a power of two;
	// default 16).
	Shards int
	// TTL is the cache entry lifetime (default 0: entries never expire —
	// experiments are deterministic, so staleness is impossible; a TTL
	// only bounds memory).
	TTL time.Duration
	// Workers bounds concurrent cold experiment runs (default 4).
	Workers int
	// Queue is the worker-pool queue depth (default 2*Workers).
	Queue int
	// SampleCap is the latency reservoir capacity per outcome class
	// (default 4096).
	SampleCap int
	// Runner executes one experiment by ID at its default parameters.
	// Defaults to the core registry; injectable for tests.
	Runner func(id string) (core.Result, error)
	// RunnerWith executes one experiment under a resolved parameter
	// assignment. Defaults to the core registry's RunWith (or to Runner,
	// ignoring params, when only Runner is injected); injectable for
	// tests. Note that injecting a runner does not replace parameter
	// resolution: ServeWith still resolves non-empty assignments against
	// the core registry's schema for the ID, so a runner-only ID (one not
	// registered in core) serves default (nil-params) requests fine but
	// fails with ErrUnknownExperiment as soon as params are passed.
	RunnerWith func(id string, p core.Params) (core.Result, error)
	// SnapshotPath, when set, enables the tier-2 disk cache: NewEngine
	// loads the snapshot file into the in-memory tier (a warm start —
	// entries that fail to decode as Results are skipped), SaveSnapshot
	// rewrites it, and Invalidate/Reset rewrite or remove it so the disk
	// tier stays invalidation-coherent with the memory tier. A missing or
	// corrupt file is never fatal.
	SnapshotPath string
}

// Engine serves experiment results concurrently: cache first, then
// singleflight-deduplicated execution on a bounded worker pool, with
// per-request latency recorded so the engine can report its own tail.
type Engine struct {
	cache *Cache
	fg    flightGroup
	pool  *Pool
	run   func(id string, p core.Params) (core.Result, error)

	// snapMu serializes tier-2 snapshot writes (SaveSnapshot, the
	// invalidation-coherence rewrites) so concurrent savers cannot
	// interleave rename order with stale dumps.
	snapMu        sync.Mutex
	snapPath      string
	snapLoaded    atomic.Int64
	snapSkipped   atomic.Int64
	snapSaves     atomic.Int64
	snapSaveFails atomic.Int64
	snapLastSave  atomic.Int64 // unix nanos

	requests   atomic.Int64
	hits       atomic.Int64
	deduped    atomic.Int64
	executions atomic.Int64

	hitLat  *stats.LatencyRecorder
	coldLat *stats.LatencyRecorder
	allLat  *stats.LatencyRecorder

	started time.Time
}

// Response is one served result.
type Response struct {
	// ID is the experiment ID served.
	ID string
	// Params is the resolved parameter assignment the result was
	// computed under (nil for zero-param requests).
	Params core.Params
	// Key is the cache key the result is memoized under (the bare ID
	// for default assignments).
	Key string
	// Result is the decoded experiment output.
	Result core.Result
	// CacheHit reports whether the result came straight from the cache.
	CacheHit bool
	// Shared reports whether this request piggybacked on another
	// caller's in-flight execution (singleflight).
	Shared bool
	// Latency is the request's wall time inside the engine.
	Latency time.Duration
}

// runRegistry is the default RunnerWith: execute a registered experiment
// under a resolved assignment (nil means defaults).
func runRegistry(id string, p core.Params) (core.Result, error) {
	e, ok := core.ByID(id)
	if !ok {
		return core.Result{}, fmt.Errorf("%w %q", ErrUnknownExperiment, id)
	}
	res, _, err := e.RunWith(p)
	return res, err
}

// NewEngine builds and starts an engine.
func NewEngine(cfg Config) *Engine {
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 2 * cfg.Workers
	}
	if cfg.SampleCap <= 0 {
		cfg.SampleCap = 4096
	}
	run := cfg.RunnerWith
	if run == nil {
		if cfg.Runner != nil {
			runner := cfg.Runner
			run = func(id string, _ core.Params) (core.Result, error) { return runner(id) }
		} else {
			run = runRegistry
		}
	}
	e := &Engine{
		cache:    NewCache(cfg.Shards, cfg.TTL),
		pool:     NewPool(cfg.Workers, cfg.Queue),
		run:      run,
		snapPath: cfg.SnapshotPath,
		hitLat:   stats.NewLatencyRecorder(cfg.SampleCap, 1),
		coldLat:  stats.NewLatencyRecorder(cfg.SampleCap, 2),
		allLat:   stats.NewLatencyRecorder(cfg.SampleCap, 3),
		started:  time.Now(),
	}
	if e.snapPath != "" {
		e.loadSnapshot()
	}
	return e
}

// loadSnapshot warm-starts the in-memory tier from the tier-2 file.
// Entries whose payload does not decode as a Result are skipped (they
// would be dropped at first Get anyway); a corrupt file contributes its
// readable prefix. Never fatal.
func (e *Engine) loadSnapshot() {
	kvs, err := ReadSnapshotFile(e.snapPath)
	_ = err // corruption already yielded the loadable prefix
	for _, kv := range kvs {
		if _, derr := core.DecodeResult(kv.Val); derr != nil {
			e.snapSkipped.Add(1)
			continue
		}
		// Preserve the entry's original insertion time: a TTL bounds an
		// entry's total life, and a restart must not renew it.
		e.cache.SetStamped(kv.Key, kv.Val, kv.AddedUnixNano)
		e.snapLoaded.Add(1)
	}
}

// SaveSnapshot writes the in-memory tier to the tier-2 file (atomic
// replace). It is a no-op without a configured SnapshotPath.
func (e *Engine) SaveSnapshot() error {
	if e.snapPath == "" {
		return nil
	}
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	if err := WriteSnapshotFile(e.snapPath, e.cache.Dump()); err != nil {
		e.snapSaveFails.Add(1)
		return err
	}
	e.snapSaves.Add(1)
	e.snapLastSave.Store(time.Now().UnixNano())
	return nil
}

// dropOrSaveSnapshot keeps the tier-2 file coherent after a deletion:
// rewrite it from the post-delete memory tier, and if that fails (disk
// full), remove the file outright — a restart must start cold rather
// than resurrect entries that were dropped on purpose. Every failed
// maintenance op counts in SnapshotStats.SaveFails; if even the remove
// fails (directory unwritable), the counter is the only signal left, so
// operators should alert on it.
func (e *Engine) dropOrSaveSnapshot() {
	if e.snapPath == "" {
		return
	}
	if err := e.SaveSnapshot(); err != nil {
		e.snapMu.Lock()
		if rerr := os.Remove(e.snapPath); rerr != nil && !os.IsNotExist(rerr) {
			e.snapSaveFails.Add(1)
		}
		e.snapMu.Unlock()
	}
}

// Serve returns the result for one experiment ID at its default
// parameters: from the cache when memoized, otherwise executed once (no
// matter how many callers arrive concurrently) on the bounded pool and
// memoized on the way out.
func (e *Engine) Serve(id string) (Response, error) {
	return e.ServeWith(id, nil)
}

// ServeWith serves one experiment under a parameter assignment (nil or
// empty means defaults). The assignment is resolved and validated against
// the experiment's declared schema and folded into the cache key, so each
// distinct grid point is memoized — and singleflight-deduplicated —
// independently, while explicit-default assignments share the bare-ID
// entry with Serve.
func (e *Engine) ServeWith(id string, p core.Params) (Response, error) {
	t0 := time.Now()
	e.requests.Add(1)

	key := id
	var resolved core.Params
	if len(p) > 0 {
		exp, ok := core.ByID(id)
		if !ok {
			return Response{}, fmt.Errorf("%w %q", ErrUnknownExperiment, id)
		}
		var err error
		if resolved, err = exp.ResolveParams(p); err != nil {
			return Response{}, fmt.Errorf("%w: %v", ErrBadParams, err)
		}
		key = exp.CacheKey(resolved)
	}

	if raw, ok := e.cache.Get(key); ok {
		res, err := core.DecodeResult(raw)
		if err != nil {
			// A corrupt entry is unservable; drop it and fall through
			// to a fresh execution.
			e.cache.Delete(key)
		} else {
			e.hits.Add(1)
			lat := time.Since(t0)
			e.observe(e.hitLat, lat)
			return Response{ID: id, Params: resolved, Key: key,
				Result: res, CacheHit: true, Latency: lat}, nil
		}
	}

	return e.serveMiss(id, key, resolved, t0)
}

// serveMiss is ServeWith's path after a cache miss: singleflight-
// deduplicated execution on the bounded pool, memoizing on the way out.
func (e *Engine) serveMiss(id, key string, p core.Params, t0 time.Time) (Response, error) {
	var leaderHit bool
	raw, err, shared := e.fg.Do(key, func() ([]byte, error) {
		// A caller can become flight leader just after the previous
		// leader memoized and left (it missed the cache before the Set
		// landed). Re-check here so an already-memoized experiment is
		// never re-executed.
		if raw, ok := e.cache.Get(key); ok {
			leaderHit = true
			return raw, nil
		}
		return e.pool.Run(func() ([]byte, error) {
			e.executions.Add(1)
			res, err := e.run(id, p)
			if err != nil {
				return nil, err
			}
			enc := res.Encode()
			e.cache.Set(key, enc)
			return enc, nil
		})
	})
	if err != nil {
		return Response{}, err
	}
	if shared {
		e.deduped.Add(1)
	}
	res, err := core.DecodeResult(raw)
	if err != nil {
		return Response{}, err
	}
	lat := time.Since(t0)
	if leaderHit && !shared {
		e.hits.Add(1)
		e.observe(e.hitLat, lat)
		return Response{ID: id, Params: p, Key: key, Result: res,
			CacheHit: true, Latency: lat}, nil
	}
	e.observe(e.coldLat, lat)
	return Response{ID: id, Params: p, Key: key, Result: res,
		Shared: shared, Latency: lat}, nil
}

func (e *Engine) observe(class *stats.LatencyRecorder, lat time.Duration) {
	class.Observe(lat.Seconds())
	e.allLat.Observe(lat.Seconds())
}

// Metrics is a point-in-time engine health snapshot.
type Metrics struct {
	// UptimeSeconds is time since NewEngine.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts Serve calls; CacheHits those answered from cache;
	// Deduped those that piggybacked on an in-flight execution;
	// Executions the underlying experiment runs actually performed.
	Requests   int64 `json:"requests"`
	CacheHits  int64 `json:"cache_hits"`
	Deduped    int64 `json:"deduped"`
	Executions int64 `json:"executions"`
	// Workers is the pool's concurrency bound.
	Workers int `json:"workers"`
	// Cache aggregates shard counters.
	Cache CacheStats `json:"cache"`
	// HitLatency, ColdLatency, AllLatency are per-class latency
	// snapshots (seconds).
	HitLatency  stats.LatencySnapshot `json:"hit_latency"`
	ColdLatency stats.LatencySnapshot `json:"cold_latency"`
	AllLatency  stats.LatencySnapshot `json:"all_latency"`
	// Snapshot reports the tier-2 disk cache (zero value when disabled).
	Snapshot SnapshotStats `json:"snapshot"`
}

// SnapshotStats reports the tier-2 disk cache's activity.
type SnapshotStats struct {
	// Enabled reports whether a SnapshotPath is configured.
	Enabled bool `json:"enabled"`
	// Loaded counts entries warm-started into the memory tier at boot;
	// Skipped counts boot entries dropped because their payload did not
	// decode as a Result.
	Loaded  int64 `json:"loaded"`
	Skipped int64 `json:"skipped"`
	// Saves counts snapshot writes; SaveFails counts failed ones (after
	// a failed coherence rewrite the file is removed so a restart starts
	// cold instead of resurrecting dropped entries); LastSaveUnixNano
	// stamps the latest success.
	Saves            int64 `json:"saves"`
	SaveFails        int64 `json:"save_fails"`
	LastSaveUnixNano int64 `json:"last_save_unix_nano,omitempty"`
}

// Metrics returns current counters and latency snapshots.
func (e *Engine) Metrics() Metrics {
	return Metrics{
		UptimeSeconds: time.Since(e.started).Seconds(),
		Requests:      e.requests.Load(),
		CacheHits:     e.hits.Load(),
		Deduped:       e.deduped.Load(),
		Executions:    e.executions.Load(),
		Workers:       e.pool.Workers(),
		Cache:         e.cache.Stats(),
		HitLatency:    e.hitLat.Snapshot(),
		ColdLatency:   e.coldLat.Snapshot(),
		AllLatency:    e.allLat.Snapshot(),
		Snapshot: SnapshotStats{
			Enabled:          e.snapPath != "",
			Loaded:           e.snapLoaded.Load(),
			Skipped:          e.snapSkipped.Load(),
			Saves:            e.snapSaves.Load(),
			SaveFails:        e.snapSaveFails.Load(),
			LastSaveUnixNano: e.snapLastSave.Load(),
		},
	}
}

// Executions returns how many underlying experiment runs have happened
// (the number singleflight and the cache exist to minimize).
func (e *Engine) Executions() int64 { return e.executions.Load() }

// Invalidate drops an experiment's memoized results: the bare-ID entry
// and every parameterized variant (keys "id?...") — from both tiers: the
// tier-2 snapshot is rewritten from the post-delete memory tier, so a
// restart cannot resurrect invalidated entries. It reports whether any
// entry was present.
func (e *Engine) Invalidate(id string) bool {
	n := e.cache.DeletePrefix(id + "?")
	present := e.cache.Delete(id) || n > 0
	if present {
		e.dropOrSaveSnapshot()
	}
	return present
}

// Reset drops every memoized result from both tiers (the tier-2 snapshot
// is rewritten empty — or removed if the rewrite fails — so a restart
// starts cold).
func (e *Engine) Reset() {
	e.cache.Clear()
	e.dropOrSaveSnapshot()
}

// Close shuts down the worker pool. Serve must not be called after Close.
func (e *Engine) Close() { e.pool.Close() }
