package serve

// Tier-2 snapshot tests: codec round-trips, corrupt/truncated files are
// skipped rather than fatal, invalidation coherence across tiers, and
// race tests driving concurrent snapshot writes against serve traffic
// and Invalidate while the hits+misses==gets conservation law must keep
// holding.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/report"
)

func snapResult(id string) core.Result {
	tb := report.NewTable("result for "+id, "metric", "value")
	tb.AddRow("answer", "42")
	return core.Result{Table: tb, Findings: []string{"finding for " + id}}
}

func newSnapEngine(path string, runs *atomic.Int64) *Engine {
	return NewEngine(Config{Shards: 4, Workers: 2, SnapshotPath: path,
		Runner: func(id string) (core.Result, error) {
			if runs != nil {
				runs.Add(1)
			}
			return snapResult(id), nil
		}})
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	kvs := []KV{
		{Key: "E1", Val: snapResult("E1").Encode(), AddedUnixNano: 1234567890},
		{Key: "E7?bces=64&f=0.99", Val: snapResult("E7").Encode(), AddedUnixNano: -5},
		{Key: "empty", Val: []byte{}},
	}
	got, err := DecodeSnapshot(EncodeSnapshot(kvs))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(kvs) {
		t.Fatalf("round trip lost entries: %d vs %d", len(got), len(kvs))
	}
	for i := range kvs {
		if got[i].Key != kvs[i].Key || string(got[i].Val) != string(kvs[i].Val) ||
			got[i].AddedUnixNano != kvs[i].AddedUnixNano {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, got[i], kvs[i])
		}
	}
	// Empty snapshot round-trips too.
	if got, err := DecodeSnapshot(EncodeSnapshot(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v %v", got, err)
	}
}

func TestSnapshotWarmStartServesHits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	var coldRuns atomic.Int64
	e := newSnapEngine(path, &coldRuns)
	for i := 0; i < 5; i++ {
		if _, err := e.Serve(fmt.Sprintf("X%d", i)); err != nil {
			t.Fatalf("Serve: %v", err)
		}
	}
	if err := e.SaveSnapshot(); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	e.Close()

	var warmRuns atomic.Int64
	e2 := newSnapEngine(path, &warmRuns)
	defer e2.Close()
	if m := e2.Metrics(); m.Snapshot.Loaded != 5 {
		t.Fatalf("warm start loaded %d entries, want 5", m.Snapshot.Loaded)
	}
	for i := 0; i < 5; i++ {
		resp, err := e2.Serve(fmt.Sprintf("X%d", i))
		if err != nil {
			t.Fatalf("Serve after restart: %v", err)
		}
		if !resp.CacheHit {
			t.Fatalf("X%d should be a tier-2 warm hit", i)
		}
		if resp.Result.Render() != snapResult(fmt.Sprintf("X%d", i)).Render() {
			t.Fatal("warm-started result differs")
		}
	}
	if warmRuns.Load() != 0 {
		t.Fatalf("restart re-executed %d experiments", warmRuns.Load())
	}
	if m := e2.Metrics(); m.CacheHits != 5 {
		t.Fatalf("stats: cache_hits = %d, want 5", m.CacheHits)
	}
}

func TestSnapshotCorruptAndTruncatedAreSkippedNotFatal(t *testing.T) {
	dir := t.TempDir()

	// Garbage file: nothing loads, engine still works.
	garbage := filepath.Join(dir, "garbage.snap")
	if err := os.WriteFile(garbage, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := newSnapEngine(garbage, nil)
	if m := e.Metrics(); m.Snapshot.Loaded != 0 {
		t.Fatalf("garbage snapshot loaded %d entries", m.Snapshot.Loaded)
	}
	if _, err := e.Serve("X1"); err != nil {
		t.Fatalf("engine with garbage snapshot cannot serve: %v", err)
	}
	e.Close()

	// Truncated file: the readable prefix loads, the rest is skipped.
	full := EncodeSnapshot([]KV{
		{Key: "A", Val: snapResult("A").Encode()},
		{Key: "B", Val: snapResult("B").Encode()},
		{Key: "C", Val: snapResult("C").Encode()},
	})
	trunc := filepath.Join(dir, "trunc.snap")
	if err := os.WriteFile(trunc, full[:len(full)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int64
	e2 := newSnapEngine(trunc, &runs)
	defer e2.Close()
	m := e2.Metrics()
	if m.Snapshot.Loaded == 0 || m.Snapshot.Loaded >= 3 {
		t.Fatalf("truncated snapshot should load a strict prefix, loaded %d", m.Snapshot.Loaded)
	}
	if resp, err := e2.Serve("A"); err != nil || !resp.CacheHit {
		t.Fatalf("prefix entry A should warm-hit: %v %+v", err, resp)
	}

	// An entry whose payload is not a decodable Result is skipped at load.
	bad := filepath.Join(dir, "bad-entry.snap")
	enc := EncodeSnapshot([]KV{
		{Key: "good", Val: snapResult("good").Encode()},
		{Key: "bad", Val: []byte{0xff, 0xfe, 0xfd}},
	})
	if err := os.WriteFile(bad, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	e3 := newSnapEngine(bad, nil)
	defer e3.Close()
	if m := e3.Metrics(); m.Snapshot.Loaded != 1 || m.Snapshot.Skipped != 1 {
		t.Fatalf("bad-entry snapshot: loaded=%d skipped=%d, want 1/1",
			m.Snapshot.Loaded, m.Snapshot.Skipped)
	}
}

func TestSnapshotInvalidationCoherence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	e := newSnapEngine(path, nil)
	if _, err := e.Serve("X1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Serve("X2"); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	// Invalidate X1: both tiers must forget it — a restart cannot
	// resurrect the invalidated entry from disk.
	if !e.Invalidate("X1") {
		t.Fatal("Invalidate should report the entry was present")
	}
	e.Close()

	var runs atomic.Int64
	e2 := newSnapEngine(path, &runs)
	defer e2.Close()
	if resp, err := e2.Serve("X2"); err != nil || !resp.CacheHit {
		t.Fatalf("X2 should survive as a warm hit: %v %+v", err, resp)
	}
	resp, err := e2.Serve("X1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatal("invalidated X1 resurrected from the tier-2 snapshot")
	}
	if runs.Load() != 1 {
		t.Fatalf("X1 should re-execute exactly once, ran %d", runs.Load())
	}
}

func TestSnapshotResetCoherence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	e := newSnapEngine(path, nil)
	if _, err := e.Serve("X1"); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	e.Close()

	e2 := newSnapEngine(path, nil)
	defer e2.Close()
	if m := e2.Metrics(); m.Snapshot.Loaded != 0 {
		t.Fatalf("reset engine's snapshot warm-loaded %d entries, want 0", m.Snapshot.Loaded)
	}
}

// A warm start must preserve entry age: with a TTL configured, an entry
// snapshot at age A and restored after the TTL has lapsed is expired on
// first access, not granted a fresh lease.
func TestSnapshotPreservesTTLAgeAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	var runs atomic.Int64
	mk := func() *Engine {
		return NewEngine(Config{Shards: 4, Workers: 2, TTL: 50 * time.Millisecond,
			SnapshotPath: path,
			Runner: func(id string) (core.Result, error) {
				runs.Add(1)
				return snapResult(id), nil
			}})
	}
	e := mk()
	if _, err := e.Serve("X1"); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	e.Close()

	time.Sleep(80 * time.Millisecond) // TTL lapses while "down"
	e2 := mk()
	defer e2.Close()
	if m := e2.Metrics(); m.Snapshot.Loaded != 1 {
		t.Fatalf("warm start loaded %d entries, want 1", m.Snapshot.Loaded)
	}
	resp, err := e2.Serve("X1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatal("entry older than its TTL was served as a hit after restart — restart renewed the lease")
	}
	if runs.Load() != 2 {
		t.Fatalf("expired warm entry should re-execute, ran %d", runs.Load())
	}
}

// A failing snapshot write must be surfaced (error + SaveFails counter),
// and an invalidation whose coherence rewrite fails must still succeed
// in-memory — with the disk tier dropped rather than left stale.
func TestSnapshotSaveFailureIsCountedAndCoherent(t *testing.T) {
	dir := t.TempDir()
	// The snapshot's parent "directory" is a plain file, so every write
	// (and the fallback remove of a nonexistent snapshot) fails.
	parent := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(parent, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := newSnapEngine(filepath.Join(parent, "cache.snap"), nil)
	defer e.Close()
	if _, err := e.Serve("X1"); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSnapshot(); err == nil {
		t.Fatal("save into a non-directory should error")
	}
	if !e.Invalidate("X1") {
		t.Fatal("Invalidate must still drop the memory tier when the disk tier is unwritable")
	}
	m := e.Metrics()
	if m.Snapshot.SaveFails < 2 {
		t.Fatalf("save failures not counted: %+v", m.Snapshot)
	}
	if m.Snapshot.Saves != 0 {
		t.Fatalf("failed saves must not count as saves: %+v", m.Snapshot)
	}
}

// The two-tier race: serve traffic, snapshot saves, and Invalidate all
// run concurrently; afterwards the cache conservation law hits+misses ==
// gets must still hold, and the snapshot file must be a clean decode.
func TestSnapshotConcurrencyPreservesConservationLaw(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	e := newSnapEngine(path, nil)
	defer e.Close()

	const (
		goroutines = 8
		iters      = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch {
				case g == 0 && i%10 == 0:
					if err := e.SaveSnapshot(); err != nil {
						t.Errorf("SaveSnapshot: %v", err)
						return
					}
				case g == 1 && i%25 == 0:
					e.Invalidate(fmt.Sprintf("K%d", i%7))
				default:
					if _, err := e.Serve(fmt.Sprintf("K%d", i%7)); err != nil {
						t.Errorf("Serve: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// The engine-level conservation law must survive snapshot writes and
	// invalidations racing with traffic: every request is classified into
	// exactly one of hit, deduped, or execution.
	m := e.Metrics()
	if m.Requests == 0 || m.Cache.Hits+m.Cache.Misses == 0 {
		t.Fatal("no traffic measured")
	}
	if m.CacheHits+m.Deduped+m.Executions != m.Requests {
		t.Fatalf("conservation broke under two-tier concurrency: hits %d + deduped %d + executions %d != requests %d",
			m.CacheHits, m.Deduped, m.Executions, m.Requests)
	}
	kvs, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatalf("snapshot after concurrent writes must decode cleanly: %v", err)
	}
	for _, kv := range kvs {
		if _, err := core.DecodeResult(kv.Val); err != nil {
			t.Fatalf("snapshot entry %q holds a corrupt payload: %v", kv.Key, err)
		}
	}
}

// The conservation law across a restart: gets issued against a
// warm-started engine still classify 1:1 into hits and misses.
func TestSnapshotRestartConservationLaw(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	e := newSnapEngine(path, nil)
	for i := 0; i < 4; i++ {
		if _, err := e.Serve(fmt.Sprintf("K%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	e.Close()

	e2 := newSnapEngine(path, nil)
	defer e2.Close()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				// K0..K3 warm-hit, K4..K7 miss then hit.
				if _, err := e2.Serve(fmt.Sprintf("K%d", i%8)); err != nil {
					t.Errorf("Serve: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	m := e2.Metrics()
	gets := m.Cache.Hits + m.Cache.Misses
	if gets == 0 {
		t.Fatal("no gets recorded")
	}
	// Engine-level accounting must agree with cache-level accounting:
	// requests that hit (tier-1, warm-started or not) plus executions
	// equals total requests (singleflight sharers excepted — they issue
	// no get of their own once deduplicated, so compare via hit counts).
	if m.CacheHits == 0 {
		t.Fatal("warm-started entries produced no hits")
	}
	if m.CacheHits+m.Deduped+m.Executions != m.Requests {
		t.Fatalf("request conservation broke: hits %d + deduped %d + executions %d != requests %d",
			m.CacheHits, m.Deduped, m.Executions, m.Requests)
	}
}
