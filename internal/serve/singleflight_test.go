package serve

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// A panicking flight fn used to wedge the group permanently: the
// flightCall stayed in the map with its WaitGroup never Done, so every
// later Do for the key blocked forever. The panic must instead become an
// error shared with concurrent waiters, and the key must be immediately
// usable again.
func TestFlightGroupPanicUnwedges(t *testing.T) {
	var g flightGroup
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	errs := make([]error, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errs[0], _ = g.Do("k", func() ([]byte, error) {
			close(leaderIn)
			<-release
			panic("experiment exploded")
		})
	}()
	<-leaderIn
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err, shared := g.Do("k", func() ([]byte, error) {
				t.Error("waiter executed its own fn while a flight was up")
				return nil, nil
			})
			if !shared {
				t.Errorf("waiter %d: shared = false, want true", i)
			}
			errs[i] = err
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the waiters block on the flight
	close(release)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiters still blocked after leader panic: flight wedged")
	}
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "panic") {
			t.Fatalf("caller %d: err = %v, want panic-converted error", i, err)
		}
	}

	// The key must not be poisoned: a fresh Do runs its fn normally.
	val, err, shared := g.Do("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || shared || string(val) != "ok" {
		t.Fatalf("Do after panic = %q, %v, shared=%v; want fresh successful run", val, err, shared)
	}
}

// A panicking experiment run, end to end: the engine must surface an
// error to the caller (and to concurrent deduplicated callers), keep the
// per-class books conserved, and keep serving the ID afterwards — no
// wedged flight, no crashed worker pool.
func TestEnginePanickingRunRegression(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	entered := make(chan struct{})
	release := make(chan struct{})
	e := NewEngine(Config{Shards: 4, Workers: 2, Runner: func(id string) (core.Result, error) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			close(entered)
			<-release // hold the flight open until every caller has joined
			panic("bad experiment state")
		}
		return fakeResult(id), nil
	}})
	defer e.Close()

	const callers = 4
	errCh := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			_, err := e.Serve("E9-panic")
			errCh <- err
		}()
	}
	<-entered
	time.Sleep(20 * time.Millisecond) // let the followers block on the flight
	close(release)
	got := 0
	for got < callers {
		select {
		case err := <-errCh:
			if err == nil || !strings.Contains(err.Error(), "panic") {
				t.Fatalf("Serve during panicking run: err = %v, want panic-converted error", err)
			}
			got++
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/%d callers returned: engine wedged on panicking run", got, callers)
		}
	}

	// The flight and the worker pool must both still be alive.
	r, err := e.Serve("E9-panic")
	if err != nil {
		t.Fatalf("Serve after panicking run: %v", err)
	}
	if r.CacheHit {
		t.Fatal("retry after failed run should execute, not hit")
	}
	if r2, err := e.Serve("E9-panic"); err != nil || !r2.CacheHit {
		t.Fatalf("memoization after recovery: hit=%v err=%v", r2.CacheHit, err)
	}

	m := e.Metrics()
	for class, pc := range m.Classes {
		if pc.Requests != pc.CacheHits+pc.Deduped+pc.Sheds+pc.Executions {
			t.Fatalf("class %s books not conserved after panic: %+v", class, pc)
		}
	}
}

// Unrelated keys must keep flowing while a flight for another key is
// stuck in a slow (here: panicking) run.
func TestFlightGroupPanicIsolatedPerKey(t *testing.T) {
	var g flightGroup
	_, err, _ := g.Do("boom", func() ([]byte, error) { panic(errors.New("wrapped")) })
	if err == nil {
		t.Fatal("panic not converted to error")
	}
	if val, err, _ := g.Do("calm", func() ([]byte, error) { return []byte("v"), nil }); err != nil || string(val) != "v" {
		t.Fatalf("unrelated key after panic: %q, %v", val, err)
	}
}
