package serve

import (
	"context"
	"errors"
	"net/http"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/httpapi"
)

// HTTP API (every route is also served under the /v1/ prefix — the
// documented, versioned surface; the bare paths stay as legacy aliases):
//
//	GET /v1/healthz              liveness probe
//	GET /v1/experiments          registered experiments: claims + param schemas
//	GET /v1/run/{id}             serve one experiment (JSON envelope)
//	GET /v1/run/{id}?param=n=v   override declared parameters (repeatable)
//	GET /v1/run/{id}?format=text rendered ASCII report
//	GET /v1/run/{id}?format=csv  table/figure as CSV
//	POST /v1/batch               multi-get: varint-framed batch of requests in,
//	                             varint-framed per-entry outcomes + payloads out
//	GET /v1/stats                engine metrics: counters, cache, per-class p50/p99
//	GET /v1/metrics              Prometheus text exposition (promlint-clean)
//	GET /v1/events?since=N       structured control-plane events after cursor N
//	POST /v1/control             live retune: {"batch_rate":..,"slo_ms":..,"policy":".."}
//
// Every error path answers with the shared JSON envelope
// {"error":{"code","message","retry_after_ms"}} (internal/httpapi).
//
// Every response is served through the engine, so hits, dedup, sheds, and
// latency percentiles in /stats reflect real traffic. The sweep package
// adds POST /sweep (parameter-grid fan-out, NDJSON streaming) on top of
// the same engine; cmd/arch21d mounts both.
//
// QoS envelope: requests carry their class in the X-Arch21-Class header
// ("interactive", the default, or "batch") and an optional remaining
// deadline budget in X-Arch21-Deadline-MS — both propagated by the
// routing front-end so a replica honors the hop-decremented budget the
// caller has left. The engine's admission scheduler may shed instead of
// serve: a full interactive queue answers 503, a deadline no projected
// queue wait can meet answers 429, both with a Retry-After hint; a run
// canceled mid-flight by its deadline answers 504.

// ParamInfo is one declared parameter in an /experiments row.
type ParamInfo struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind"`
	Default float64 `json:"default"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Step    float64 `json:"step,omitempty"`
	Doc     string  `json:"doc,omitempty"`
}

// ExperimentInfo is one /experiments row. Exported so the routing
// front-end (internal/router) serves the byte-identical envelope a
// replica would.
type ExperimentInfo struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Claim  string      `json:"claim"`
	Params []ParamInfo `json:"params,omitempty"`
}

// ExperimentInfos renders the whole registry in /experiments wire form.
func ExperimentInfos() []ExperimentInfo {
	var list []ExperimentInfo
	for _, ex := range core.Registry() {
		list = append(list, ExperimentInfo{
			ID:     ex.ID,
			Title:  ex.Title,
			Claim:  ex.PaperClaim,
			Params: ParamInfos(ex.Params),
		})
	}
	return list
}

// ParamInfos converts a declared schema to its wire form.
func ParamInfos(specs []core.ParamSpec) []ParamInfo {
	var out []ParamInfo
	for _, s := range specs {
		out = append(out, ParamInfo{
			Name:    s.Name,
			Kind:    s.Kind.String(),
			Default: s.Default,
			Min:     s.Min,
			Max:     s.Max,
			Step:    s.Step,
			Doc:     s.Doc,
		})
	}
	return out
}

// runEnvelope is the /run/{id} JSON response.
type runEnvelope struct {
	ID        string      `json:"id"`
	Params    core.Params `json:"params,omitempty"`
	Key       string      `json:"key,omitempty"`
	Class     string      `json:"class"`
	CacheHit  bool        `json:"cache_hit"`
	Shared    bool        `json:"shared"`
	LatencyMS float64     `json:"latency_ms"`
	Headline  *float64    `json:"headline,omitempty"`
	Findings  []string    `json:"findings,omitempty"`
	Report    string      `json:"report"`
}

// RequestContext derives a request's QoS context from its headers —
// kept as a package-level name for the engine's callers, with the shared
// implementation (one header contract for every face of the API) in
// internal/httpapi. The returned cancel must be called when the request
// finishes.
func RequestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	return httpapi.RequestContext(r)
}

// WriteShedHeaders maps an admission error onto the HTTP response: 503
// queue_full for a full queue, 429 deadline_unmeetable for a deadline
// the projected wait cannot meet — both with a Retry-After hint (whole
// seconds, minimum 1) — and 504 deadline_exceeded for a request whose
// own deadline expired in flight, all in the shared envelope. It reports
// whether err was a QoS outcome it handled.
func WriteShedHeaders(w http.ResponseWriter, err error) bool {
	return httpapi.WriteQoSError(w, err)
}

// Handler returns the engine's HTTP API, every route mounted under /v1
// with the unversioned path kept as a legacy alias.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	httpapi.MountFunc(mux, "GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	httpapi.MountFunc(mux, "GET /experiments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ExperimentInfos())
	})
	httpapi.MountFunc(mux, "GET /run/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		params, err := core.ParseParams(r.URL.Query()["param"])
		if err != nil {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
			return
		}
		format := r.URL.Query().Get("format")
		switch format {
		case "", "json", "text", "csv", "bin":
		default:
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest,
				"format must be json, text, csv, or bin")
			return
		}
		ctx, cancel, err := RequestContext(r)
		if err != nil {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
			return
		}
		defer cancel()
		if format == "bin" {
			// The zero-copy transport: serve the memoized codec bytes as
			// the body (a warm hit is one slab read, no decode/re-encode;
			// the write below is the single copy-on-read) with the JSON
			// envelope's fields carried in response headers.
			rr, err := e.ServeEncoded(ctx, id, params)
			if err != nil {
				writeRunError(w, err)
				return
			}
			h := w.Header()
			h.Set("Content-Type", "application/octet-stream")
			h.Set(httpapi.HeaderKey, rr.Key)
			h.Set(admit.HeaderClass, rr.Class.String())
			if rr.CacheHit {
				h.Set(httpapi.HeaderCacheHit, "1")
			}
			if rr.Shared {
				h.Set(httpapi.HeaderShared, "1")
			}
			for _, a := range rr.Params.Assignments() {
				h.Add(httpapi.HeaderParam, a)
			}
			_, _ = w.Write(rr.Raw)
			return
		}
		resp, err := e.ServeWith(ctx, id, params)
		if err != nil {
			writeRunError(w, err)
			return
		}
		switch format {
		case "", "json":
			writeJSON(w, http.StatusOK, runEnvelope{
				ID:        resp.ID,
				Params:    resp.Params,
				Key:       resp.Key,
				Class:     resp.Class.String(),
				CacheHit:  resp.CacheHit,
				Shared:    resp.Shared,
				LatencyMS: resp.Latency.Seconds() * 1e3,
				Headline:  resp.Result.Headline,
				Findings:  resp.Result.Findings,
				Report:    resp.Result.Render(),
			})
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(resp.Result.Render()))
		case "csv":
			w.Header().Set("Content-Type", "text/csv; charset=utf-8")
			switch {
			case resp.Result.Table != nil:
				_, _ = w.Write([]byte(resp.Result.Table.CSV()))
			case resp.Result.Figure != nil:
				_, _ = w.Write([]byte(resp.Result.Figure.CSV()))
			}
		}
	})
	// POST /batch: the multi-get wire surface (varint frames in and out,
	// per-entry outcome words, payloads served zero-copy from the slab).
	httpapi.MountFunc(mux, "POST /batch", e.handleBatch)
	httpapi.MountFunc(mux, "GET /stats", func(w http.ResponseWriter, r *http.Request) {
		// Memoized (StatsTTL): a dashboard poller must not pay — or make
		// the serving path pay — a full reservoir walk per request.
		writeJSON(w, http.StatusOK, e.MetricsCached())
	})
	httpapi.Mount(mux, "GET /metrics", e.MetricsRegistry().Handler())
	httpapi.Mount(mux, "GET /events", e.Events().Handler())
	httpapi.Mount(mux, "POST /control", e.ControlHandler())
	return mux
}

// writeRunError maps a /run serving error onto the wire: QoS sheds get
// their dedicated statuses (503/429/504 + Retry-After), unknown IDs 404,
// bad params 400, everything else 500 — all in the shared envelope.
func writeRunError(w http.ResponseWriter, err error) {
	if WriteShedHeaders(w, err) {
		return
	}
	status, code := http.StatusInternalServerError, httpapi.CodeInternal
	switch {
	case errors.Is(err, ErrUnknownExperiment):
		status, code = http.StatusNotFound, httpapi.CodeNotFound
	case errors.Is(err, ErrBadParams):
		status, code = http.StatusBadRequest, httpapi.CodeBadRequest
	}
	httpapi.WriteError(w, status, code, err.Error())
}

// WriteJSON writes v as an indented JSON response — kept as a
// package-level name for the engine's callers; the shared encoder both
// faces of the API use lives in internal/httpapi.
func WriteJSON(w http.ResponseWriter, status int, v interface{}) {
	httpapi.WriteJSON(w, status, v)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) { WriteJSON(w, status, v) }
