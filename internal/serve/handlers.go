package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/core"
)

// HTTP API:
//
//	GET /healthz              liveness probe
//	GET /experiments          registered experiments with their claims
//	GET /run/{id}             serve one experiment (JSON envelope)
//	GET /run/{id}?format=text rendered ASCII report
//	GET /run/{id}?format=csv  table/figure as CSV
//	GET /stats                engine metrics: counters, cache, p50/p99
//
// Every response is served through the engine, so hits, dedup, and
// latency percentiles in /stats reflect real traffic.

// experimentInfo is one /experiments row.
type experimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Claim string `json:"claim"`
}

// runEnvelope is the /run/{id} JSON response.
type runEnvelope struct {
	ID        string   `json:"id"`
	CacheHit  bool     `json:"cache_hit"`
	Shared    bool     `json:"shared"`
	LatencyMS float64  `json:"latency_ms"`
	Findings  []string `json:"findings,omitempty"`
	Report    string   `json:"report"`
}

// Handler returns the engine's HTTP API.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /experiments", func(w http.ResponseWriter, r *http.Request) {
		var list []experimentInfo
		for _, ex := range core.Registry() {
			list = append(list, experimentInfo{ID: ex.ID, Title: ex.Title, Claim: ex.PaperClaim})
		}
		writeJSON(w, http.StatusOK, list)
	})
	mux.HandleFunc("GET /run/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		resp, err := e.Serve(id)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrUnknownExperiment) {
				status = http.StatusNotFound
			}
			writeJSON(w, status, map[string]string{"error": err.Error()})
			return
		}
		switch r.URL.Query().Get("format") {
		case "", "json":
			writeJSON(w, http.StatusOK, runEnvelope{
				ID:        resp.ID,
				CacheHit:  resp.CacheHit,
				Shared:    resp.Shared,
				LatencyMS: resp.Latency.Seconds() * 1e3,
				Findings:  resp.Result.Findings,
				Report:    resp.Result.Render(),
			})
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(resp.Result.Render()))
		case "csv":
			w.Header().Set("Content-Type", "text/csv; charset=utf-8")
			switch {
			case resp.Result.Table != nil:
				_, _ = w.Write([]byte(resp.Result.Table.CSV()))
			case resp.Result.Figure != nil:
				_, _ = w.Write([]byte(resp.Result.Figure.CSV()))
			}
		default:
			writeJSON(w, http.StatusBadRequest,
				map[string]string{"error": "format must be json, text, or csv"})
		}
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Metrics())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
