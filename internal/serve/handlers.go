package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/core"
)

// HTTP API:
//
//	GET /healthz              liveness probe
//	GET /experiments          registered experiments: claims + param schemas
//	GET /run/{id}             serve one experiment (JSON envelope)
//	GET /run/{id}?param=n=v   override declared parameters (repeatable)
//	GET /run/{id}?format=text rendered ASCII report
//	GET /run/{id}?format=csv  table/figure as CSV
//	GET /stats                engine metrics: counters, cache, p50/p99
//
// Every response is served through the engine, so hits, dedup, and
// latency percentiles in /stats reflect real traffic. The sweep package
// adds POST /sweep (parameter-grid fan-out, NDJSON streaming) on top of
// the same engine; cmd/arch21d mounts both.

// ParamInfo is one declared parameter in an /experiments row.
type ParamInfo struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind"`
	Default float64 `json:"default"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Step    float64 `json:"step,omitempty"`
	Doc     string  `json:"doc,omitempty"`
}

// ExperimentInfo is one /experiments row. Exported so the routing
// front-end (internal/router) serves the byte-identical envelope a
// replica would.
type ExperimentInfo struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Claim  string      `json:"claim"`
	Params []ParamInfo `json:"params,omitempty"`
}

// ExperimentInfos renders the whole registry in /experiments wire form.
func ExperimentInfos() []ExperimentInfo {
	var list []ExperimentInfo
	for _, ex := range core.Registry() {
		list = append(list, ExperimentInfo{
			ID:     ex.ID,
			Title:  ex.Title,
			Claim:  ex.PaperClaim,
			Params: ParamInfos(ex.Params),
		})
	}
	return list
}

// ParamInfos converts a declared schema to its wire form.
func ParamInfos(specs []core.ParamSpec) []ParamInfo {
	var out []ParamInfo
	for _, s := range specs {
		out = append(out, ParamInfo{
			Name:    s.Name,
			Kind:    s.Kind.String(),
			Default: s.Default,
			Min:     s.Min,
			Max:     s.Max,
			Step:    s.Step,
			Doc:     s.Doc,
		})
	}
	return out
}

// runEnvelope is the /run/{id} JSON response.
type runEnvelope struct {
	ID        string      `json:"id"`
	Params    core.Params `json:"params,omitempty"`
	Key       string      `json:"key,omitempty"`
	CacheHit  bool        `json:"cache_hit"`
	Shared    bool        `json:"shared"`
	LatencyMS float64     `json:"latency_ms"`
	Headline  *float64    `json:"headline,omitempty"`
	Findings  []string    `json:"findings,omitempty"`
	Report    string      `json:"report"`
}

// Handler returns the engine's HTTP API.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /experiments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ExperimentInfos())
	})
	mux.HandleFunc("GET /run/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		params, err := core.ParseParams(r.URL.Query()["param"])
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		resp, err := e.ServeWith(id, params)
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, ErrUnknownExperiment):
				status = http.StatusNotFound
			case errors.Is(err, ErrBadParams):
				status = http.StatusBadRequest
			}
			writeJSON(w, status, map[string]string{"error": err.Error()})
			return
		}
		switch r.URL.Query().Get("format") {
		case "", "json":
			writeJSON(w, http.StatusOK, runEnvelope{
				ID:        resp.ID,
				Params:    resp.Params,
				Key:       resp.Key,
				CacheHit:  resp.CacheHit,
				Shared:    resp.Shared,
				LatencyMS: resp.Latency.Seconds() * 1e3,
				Headline:  resp.Result.Headline,
				Findings:  resp.Result.Findings,
				Report:    resp.Result.Render(),
			})
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(resp.Result.Render()))
		case "csv":
			w.Header().Set("Content-Type", "text/csv; charset=utf-8")
			switch {
			case resp.Result.Table != nil:
				_, _ = w.Write([]byte(resp.Result.Table.CSV()))
			case resp.Result.Figure != nil:
				_, _ = w.Write([]byte(resp.Result.Figure.CSV()))
			}
		default:
			writeJSON(w, http.StatusBadRequest,
				map[string]string{"error": "format must be json, text, or csv"})
		}
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Metrics())
	})
	return mux
}

// WriteJSON writes v as an indented JSON response — shared by the
// engine's handlers and the routing front-end so both faces of the API
// encode identically.
func WriteJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) { WriteJSON(w, status, v) }
