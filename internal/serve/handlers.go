package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
)

// HTTP API:
//
//	GET /healthz              liveness probe
//	GET /experiments          registered experiments: claims + param schemas
//	GET /run/{id}             serve one experiment (JSON envelope)
//	GET /run/{id}?param=n=v   override declared parameters (repeatable)
//	GET /run/{id}?format=text rendered ASCII report
//	GET /run/{id}?format=csv  table/figure as CSV
//	GET /stats                engine metrics: counters, cache, per-class p50/p99
//	GET /metrics              Prometheus text exposition (promlint-clean)
//	GET /events?since=N       structured control-plane events after cursor N
//	POST /control             live retune: {"batch_rate":..,"slo_ms":..,"policy":".."}
//
// Every response is served through the engine, so hits, dedup, sheds, and
// latency percentiles in /stats reflect real traffic. The sweep package
// adds POST /sweep (parameter-grid fan-out, NDJSON streaming) on top of
// the same engine; cmd/arch21d mounts both.
//
// QoS envelope: requests carry their class in the X-Arch21-Class header
// ("interactive", the default, or "batch") and an optional remaining
// deadline budget in X-Arch21-Deadline-MS — both propagated by the
// routing front-end so a replica honors the hop-decremented budget the
// caller has left. The engine's admission scheduler may shed instead of
// serve: a full interactive queue answers 503, a deadline no projected
// queue wait can meet answers 429, both with a Retry-After hint; a run
// canceled mid-flight by its deadline answers 504.

// ParamInfo is one declared parameter in an /experiments row.
type ParamInfo struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind"`
	Default float64 `json:"default"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Step    float64 `json:"step,omitempty"`
	Doc     string  `json:"doc,omitempty"`
}

// ExperimentInfo is one /experiments row. Exported so the routing
// front-end (internal/router) serves the byte-identical envelope a
// replica would.
type ExperimentInfo struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Claim  string      `json:"claim"`
	Params []ParamInfo `json:"params,omitempty"`
}

// ExperimentInfos renders the whole registry in /experiments wire form.
func ExperimentInfos() []ExperimentInfo {
	var list []ExperimentInfo
	for _, ex := range core.Registry() {
		list = append(list, ExperimentInfo{
			ID:     ex.ID,
			Title:  ex.Title,
			Claim:  ex.PaperClaim,
			Params: ParamInfos(ex.Params),
		})
	}
	return list
}

// ParamInfos converts a declared schema to its wire form.
func ParamInfos(specs []core.ParamSpec) []ParamInfo {
	var out []ParamInfo
	for _, s := range specs {
		out = append(out, ParamInfo{
			Name:    s.Name,
			Kind:    s.Kind.String(),
			Default: s.Default,
			Min:     s.Min,
			Max:     s.Max,
			Step:    s.Step,
			Doc:     s.Doc,
		})
	}
	return out
}

// runEnvelope is the /run/{id} JSON response.
type runEnvelope struct {
	ID        string      `json:"id"`
	Params    core.Params `json:"params,omitempty"`
	Key       string      `json:"key,omitempty"`
	Class     string      `json:"class"`
	CacheHit  bool        `json:"cache_hit"`
	Shared    bool        `json:"shared"`
	LatencyMS float64     `json:"latency_ms"`
	Headline  *float64    `json:"headline,omitempty"`
	Findings  []string    `json:"findings,omitempty"`
	Report    string      `json:"report"`
}

// RequestContext derives a request's QoS context from its headers: the
// class from X-Arch21-Class, the tenant identity from X-Arch21-Tenant
// (free-form here; the engine's bounded books fold unknown tenants into
// "other"), and the remaining deadline budget from X-Arch21-Deadline-MS,
// layered onto the request's own cancellation.
// Shared by the engine's handlers and the routing front-end so both
// faces of the API speak the same header contract. The returned cancel
// must be called when the request finishes.
func RequestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	class, err := admit.ParseClass(r.Header.Get(admit.HeaderClass))
	if err != nil {
		return nil, nil, err
	}
	ctx := admit.WithClass(r.Context(), class)
	tenant, err := admit.ParseTenant(r.Header.Get(admit.HeaderTenant))
	if err != nil {
		return nil, nil, err
	}
	ctx = admit.WithTenant(ctx, tenant)
	if h := r.Header.Get(admit.HeaderDeadlineMS); h != "" {
		ms, err := strconv.ParseFloat(h, 64)
		if err != nil || math.IsNaN(ms) || math.IsInf(ms, 0) || ms <= 0 {
			return nil, nil, fmt.Errorf("serve: bad %s header %q (want a positive millisecond budget)",
				admit.HeaderDeadlineMS, h)
		}
		ctx, cancel := context.WithTimeout(ctx, time.Duration(ms*float64(time.Millisecond)))
		return ctx, cancel, nil
	}
	return ctx, func() {}, nil
}

// WriteShedHeaders maps an admission error onto the HTTP response: 503
// for a full queue, 429 for a deadline the projected wait cannot meet —
// both with a Retry-After hint (whole seconds, minimum 1) — and 504 for
// a request whose own deadline expired in flight. It reports whether err
// was a QoS outcome it handled.
func WriteShedHeaders(w http.ResponseWriter, err error) bool {
	var shed *admit.ShedError
	switch {
	case errors.As(err, &shed):
		secs := int(math.Ceil(shed.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		status := http.StatusServiceUnavailable
		if shed.Deadline {
			status = http.StatusTooManyRequests
		}
		WriteJSON(w, status, map[string]string{"error": err.Error()})
		return true
	case errors.Is(err, context.DeadlineExceeded):
		WriteJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
		return true
	case errors.Is(err, context.Canceled):
		// The client is gone; the status is a formality.
		WriteJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return true
	}
	return false
}

// Handler returns the engine's HTTP API.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /experiments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ExperimentInfos())
	})
	mux.HandleFunc("GET /run/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		params, err := core.ParseParams(r.URL.Query()["param"])
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		ctx, cancel, err := RequestContext(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		defer cancel()
		resp, err := e.ServeWith(ctx, id, params)
		if err != nil {
			if WriteShedHeaders(w, err) {
				return
			}
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, ErrUnknownExperiment):
				status = http.StatusNotFound
			case errors.Is(err, ErrBadParams):
				status = http.StatusBadRequest
			}
			writeJSON(w, status, map[string]string{"error": err.Error()})
			return
		}
		switch r.URL.Query().Get("format") {
		case "", "json":
			writeJSON(w, http.StatusOK, runEnvelope{
				ID:        resp.ID,
				Params:    resp.Params,
				Key:       resp.Key,
				Class:     resp.Class.String(),
				CacheHit:  resp.CacheHit,
				Shared:    resp.Shared,
				LatencyMS: resp.Latency.Seconds() * 1e3,
				Headline:  resp.Result.Headline,
				Findings:  resp.Result.Findings,
				Report:    resp.Result.Render(),
			})
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(resp.Result.Render()))
		case "csv":
			w.Header().Set("Content-Type", "text/csv; charset=utf-8")
			switch {
			case resp.Result.Table != nil:
				_, _ = w.Write([]byte(resp.Result.Table.CSV()))
			case resp.Result.Figure != nil:
				_, _ = w.Write([]byte(resp.Result.Figure.CSV()))
			}
		default:
			writeJSON(w, http.StatusBadRequest,
				map[string]string{"error": "format must be json, text, or csv"})
		}
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		// Memoized (StatsTTL): a dashboard poller must not pay — or make
		// the serving path pay — a full reservoir walk per request.
		writeJSON(w, http.StatusOK, e.MetricsCached())
	})
	mux.Handle("GET /metrics", e.MetricsRegistry().Handler())
	mux.Handle("GET /events", e.Events().Handler())
	mux.Handle("POST /control", e.ControlHandler())
	return mux
}

// WriteJSON writes v as an indented JSON response — shared by the
// engine's handlers and the routing front-end so both faces of the API
// encode identically.
func WriteJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) { WriteJSON(w, status, v) }
