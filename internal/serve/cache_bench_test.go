package serve

// Comparative cache benchmarks: the slab cache against the legacy
// map-of-varint-blobs implementation it replaced, behind one small
// interface built from function thunks (the directcache benches idiom —
// SNIPPETS.md Snippet 1) so both run the identical driver. Every
// benchmark reports allocations: the slab's whole claim is near-zero
// allocs on the warm path, and the comparison is what keeps the claim
// honest.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
)

type benchCache interface {
	get(key string) ([]byte, bool)
	set(key string, val []byte)
}

type getFunc func(key string) ([]byte, bool)
type setFunc func(key string, val []byte)

func (f getFunc) get(key string) ([]byte, bool) { return f(key) }
func (f setFunc) set(key string, val []byte)    { f(key, val) }

func newSlabBench(shards int) benchCache {
	c := NewCache(shards, 0)
	return &struct {
		getFunc
		setFunc
	}{c.Get, c.Set}
}

func newLegacyBench(shards int) benchCache {
	c := newLegacyCache(shards, 0)
	return &struct {
		getFunc
		setFunc
	}{c.Get, c.Set}
}

// benchImpls enumerates the contenders once; every comparative benchmark
// ranges over it so the two implementations always run the same driver.
var benchImpls = []struct {
	name string
	make func(shards int) benchCache
}{
	{"slab", newSlabBench},
	{"legacy", newLegacyBench},
}

const benchEntries = 4096

func benchKeys() []string {
	keys := make([]string, benchEntries)
	for i := range keys {
		keys[i] = fmt.Sprintf("E7?bces=%d&n=%d", i%512, i)
	}
	return keys
}

func benchVal() []byte {
	val := make([]byte, 256)
	for i := range val {
		val[i] = byte(i)
	}
	return val
}

// The warm read path — the serving tier's dominant operation. The slab
// must be alloc-free here; the legacy cache pays a decode per hit.
func BenchmarkCacheGetHot(b *testing.B) {
	for _, impl := range benchImpls {
		b.Run(impl.name, func(b *testing.B) {
			c := impl.make(16)
			keys := benchKeys()
			val := benchVal()
			for _, k := range keys {
				c.set(k, val)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := c.get(keys[i%benchEntries]); !ok {
					b.Fatal("miss on warmed key")
				}
			}
		})
	}
}

// Parallel warm reads across shards — the contention profile a loaded
// engine sees.
func BenchmarkCacheGetHotParallel(b *testing.B) {
	for _, impl := range benchImpls {
		b.Run(impl.name, func(b *testing.B) {
			c := impl.make(16)
			keys := benchKeys()
			val := benchVal()
			for _, k := range keys {
				c.set(k, val)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					c.get(keys[i%benchEntries])
					i++
				}
			})
		})
	}
}

// Fresh inserts (distinct keys) — the cold-path write cost.
func BenchmarkCacheSetFresh(b *testing.B) {
	for _, impl := range benchImpls {
		b.Run(impl.name, func(b *testing.B) {
			c := impl.make(16)
			val := benchVal()
			keys := make([]string, 0, 1<<16)
			for i := 0; i < 1<<16; i++ {
				keys = append(keys, fmt.Sprintf("E7?bces=%d&n=%d", i%512, i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.set(keys[i%len(keys)], val)
			}
		})
	}
}

// Same-key overwrites — where the slab's in-place update (fits-in-
// capacity) against the legacy re-encode shows up.
func BenchmarkCacheSetOverwrite(b *testing.B) {
	for _, impl := range benchImpls {
		b.Run(impl.name, func(b *testing.B) {
			c := impl.make(16)
			val := benchVal()
			c.set("E7?bces=256", val)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.set("E7?bces=256", val)
			}
		})
	}
}

// Mixed 90/10 read/write at steady state.
func BenchmarkCacheMixed(b *testing.B) {
	for _, impl := range benchImpls {
		b.Run(impl.name, func(b *testing.B) {
			c := impl.make(16)
			keys := benchKeys()
			val := benchVal()
			for _, k := range keys {
				c.set(k, val)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := keys[i%benchEntries]
				if i%10 == 9 {
					c.set(k, val)
				} else {
					c.get(k)
				}
			}
		})
	}
}

// The engine's warm path end to end, both materializations: ServeEncoded
// (the zero-copy path the HTTP layer and the load generator drive) and
// ServeWith (the decode path in-process callers get). The gap between
// the two is the decode cost the tentpole removed from the hot path.
func BenchmarkEngineWarmHit(b *testing.B) {
	e := NewEngine(Config{Shards: 16, Workers: 2, Runner: func(id string) (core.Result, error) {
		return fakeResult(id), nil
	}})
	defer e.Close()
	ctx := context.Background()
	if _, err := e.Serve("X1"); err != nil {
		b.Fatal(err)
	}
	b.Run("encoded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rr, err := e.ServeEncoded(ctx, "X1", nil)
			if err != nil || !rr.CacheHit {
				b.Fatalf("warm ServeEncoded: hit=%v err=%v", rr.CacheHit, err)
			}
		}
	})
	b.Run("decoded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := e.ServeWith(ctx, "X1", nil)
			if err != nil || !r.CacheHit {
				b.Fatalf("warm ServeWith: hit=%v err=%v", r.CacheHit, err)
			}
		}
	})
}
