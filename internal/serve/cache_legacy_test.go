package serve

// The pre-slab tier-1 cache: a sharded map[string][]byte of heap-allocated
// varint blobs. It is kept test-side as the comparative-benchmark baseline
// (see cache_bench_test.go) and as the owner of the cacheEntry codec the
// snapshot format was originally derived from — the codec round-trip test
// pins that historical layout.

import (
	"encoding/binary"
	"sort"
	"strings"
	"sync"
	"time"
)

// legacyCache is the old map-based Cache, API-compatible where the
// comparative benchmarks need it.
type legacyCache struct {
	shards []legacyShard
	mask   uint64
	ttl    time.Duration
	now    func() time.Time
}

type legacyShard struct {
	mu      sync.Mutex
	entries map[string][]byte
	hits    uint64
	misses  uint64
	expired uint64
}

func newLegacyCache(shards int, ttl time.Duration) *legacyCache {
	if shards > maxCacheShards {
		shards = maxCacheShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &legacyCache{
		shards: make([]legacyShard, n),
		mask:   uint64(n - 1),
		ttl:    ttl,
		now:    time.Now,
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string][]byte)
	}
	return c
}

func (c *legacyCache) shard(key string) *legacyShard {
	return &c.shards[fnv1a(key)&c.mask]
}

// cacheEntry is the decoded form of a legacy stored entry.
type cacheEntry struct {
	addedUnixNano int64
	ttlNanos      int64
	hits          int64
	val           []byte
}

// encode serializes the entry: the fixed 8-byte little-endian hit word
// (shared with the slab layout as entryHitsLen), then timestamp, TTL,
// and value length as varints, then the value.
func (e cacheEntry) encode() []byte {
	buf := make([]byte, entryHitsLen, entryHitsLen+3*binary.MaxVarintLen64+len(e.val))
	binary.LittleEndian.PutUint64(buf, uint64(e.hits))
	var tmp [binary.MaxVarintLen64]byte
	put := func(v int64) {
		n := binary.PutVarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(e.addedUnixNano)
	put(e.ttlNanos)
	put(int64(len(e.val)))
	buf = append(buf, e.val...)
	return buf
}

// decodeEntry parses an encoded entry; ok is false on corruption. The
// returned val aliases buf.
func decodeEntry(buf []byte) (e cacheEntry, ok bool) {
	if len(buf) < entryHitsLen {
		return e, false
	}
	e.hits = int64(binary.LittleEndian.Uint64(buf))
	off := entryHitsLen
	get := func() (int64, bool) {
		v, n := binary.Varint(buf[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	var valLen int64
	var good bool
	if e.addedUnixNano, good = get(); !good {
		return e, false
	}
	if e.ttlNanos, good = get(); !good {
		return e, false
	}
	if valLen, good = get(); !good {
		return e, false
	}
	if valLen < 0 || valLen != int64(len(buf)-off) {
		return e, false
	}
	e.val = buf[off:]
	return e, true
}

func (c *legacyCache) Get(key string) ([]byte, bool) {
	s := c.shard(key)
	now := c.now().UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	e, good := decodeEntry(raw)
	if !good {
		delete(s.entries, key)
		s.misses++
		return nil, false
	}
	if e.ttlNanos > 0 && now-e.addedUnixNano > e.ttlNanos {
		delete(s.entries, key)
		s.expired++
		s.misses++
		return nil, false
	}
	binary.LittleEndian.PutUint64(raw, uint64(e.hits+1))
	s.hits++
	return e.val, true
}

func (c *legacyCache) Set(key string, val []byte) {
	c.SetStamped(key, val, c.now().UnixNano())
}

func (c *legacyCache) SetStamped(key string, val []byte, addedUnixNano int64) {
	e := cacheEntry{
		addedUnixNano: addedUnixNano,
		ttlNanos:      int64(c.ttl),
		val:           val,
	}
	s := c.shard(key)
	s.mu.Lock()
	s.entries[key] = e.encode()
	s.mu.Unlock()
}

func (c *legacyCache) Hits(key string) int64 {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, ok := s.entries[key]
	if !ok {
		return 0
	}
	e, good := decodeEntry(raw)
	if !good {
		return 0
	}
	return e.hits
}

func (c *legacyCache) Delete(key string) bool {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	delete(s.entries, key)
	return ok
}

func (c *legacyCache) DeletePrefix(prefix string) int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key := range s.entries {
			if strings.HasPrefix(key, prefix) {
				delete(s.entries, key)
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

func (c *legacyCache) Dump() []KV {
	now := c.now().UnixNano()
	var out []KV
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key, raw := range s.entries {
			e, good := decodeEntry(raw)
			if !good {
				continue
			}
			if e.ttlNanos > 0 && now-e.addedUnixNano > e.ttlNanos {
				continue
			}
			val := make([]byte, len(e.val))
			copy(val, e.val)
			out = append(out, KV{Key: key, Val: val, AddedUnixNano: e.addedUnixNano})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func (c *legacyCache) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[string][]byte)
		s.mu.Unlock()
	}
}

func (c *legacyCache) Stats() CacheStats {
	st := CacheStats{Shards: len(c.shards)}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		st.Hits += s.hits
		st.Misses += s.misses
		st.Expired += s.expired
		s.mu.Unlock()
	}
	return st
}
