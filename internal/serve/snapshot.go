package serve

// Tier-2 cache: a disk snapshot of the tier-1 in-memory cache, written
// with the same varint framing the result codec uses. An engine
// configured with a SnapshotPath loads the snapshot on boot (warm start:
// previously computed results serve as cache hits across restarts) and
// rewrites it on SaveSnapshot, Invalidate, and Reset, so the disk tier
// can never resurrect an entry the in-memory tier dropped on purpose. A
// corrupt or truncated snapshot is not fatal: the readable prefix loads,
// the rest is skipped, and the next save rewrites the file whole.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// snapshotMagic heads every snapshot file; the trailing byte is the
// format version.
var snapshotMagic = []byte("a21snap\x01")

// ErrSnapshotCorrupt marks a snapshot whose payload could not be fully
// parsed. LoadSnapshot still returns whatever prefix decoded cleanly.
var ErrSnapshotCorrupt = errors.New("serve: corrupt snapshot")

// EncodeSnapshot serializes cache entries: magic, uvarint count, then
// per entry a length-prefixed key, a length-prefixed payload, and the
// entry's insertion timestamp (varint unix nanos — preserved so TTLs
// span restarts).
func EncodeSnapshot(kvs []KV) []byte {
	buf := append([]byte(nil), snapshotMagic...)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(uint64(len(kvs)))
	for _, kv := range kvs {
		put(uint64(len(kv.Key)))
		buf = append(buf, kv.Key...)
		put(uint64(len(kv.Val)))
		buf = append(buf, kv.Val...)
		n := binary.PutVarint(tmp[:], kv.AddedUnixNano)
		buf = append(buf, tmp[:n]...)
	}
	return buf
}

// DecodeSnapshot parses a snapshot payload. On corruption it returns the
// entries decoded before the bad byte together with an
// ErrSnapshotCorrupt-wrapped error — callers load the prefix and move on.
func DecodeSnapshot(buf []byte) ([]KV, error) {
	if len(buf) < len(snapshotMagic) || string(buf[:len(snapshotMagic)]) != string(snapshotMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	off := len(snapshotMagic)
	uvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	chunk := func() ([]byte, bool) {
		n, ok := uvarint()
		if !ok || n > uint64(len(buf)-off) {
			return nil, false
		}
		c := buf[off : off+int(n)]
		off += int(n)
		return c, true
	}
	count, ok := uvarint()
	if !ok {
		return nil, fmt.Errorf("%w: bad entry count", ErrSnapshotCorrupt)
	}
	var kvs []KV
	for i := uint64(0); i < count; i++ {
		key, ok := chunk()
		if !ok {
			return kvs, fmt.Errorf("%w: truncated at entry %d of %d", ErrSnapshotCorrupt, i, count)
		}
		val, ok := chunk()
		if !ok {
			return kvs, fmt.Errorf("%w: truncated at entry %d of %d", ErrSnapshotCorrupt, i, count)
		}
		added, n := binary.Varint(buf[off:])
		if n <= 0 {
			return kvs, fmt.Errorf("%w: truncated at entry %d of %d", ErrSnapshotCorrupt, i, count)
		}
		off += n
		kvs = append(kvs, KV{Key: string(key), Val: append([]byte(nil), val...), AddedUnixNano: added})
	}
	if off != len(buf) {
		return kvs, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, len(buf)-off)
	}
	return kvs, nil
}

// WriteSnapshotFile writes entries atomically (temp file + rename), so a
// crash mid-write leaves the previous snapshot intact rather than a torn
// one.
func WriteSnapshotFile(path string, kvs []KV) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(EncodeSnapshot(kvs)); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	return os.Rename(tmp.Name(), path)
}

// ReadSnapshotFile loads a snapshot file. A missing file is (nil, nil) —
// a cold start, not an error. A corrupt file returns the loadable prefix
// plus an ErrSnapshotCorrupt-wrapped error.
func ReadSnapshotFile(path string) ([]KV, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot: %w", err)
	}
	return DecodeSnapshot(raw)
}
