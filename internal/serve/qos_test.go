package serve

// QoS tests for the class-based engine: per-class conservation law under
// concurrent mixed-class traffic, shed accounting, deadline-aware
// admission surfacing as 429/503 + Retry-After over HTTP, and the
// header contract (X-Arch21-Class, X-Arch21-Deadline-MS).

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
)

// slowRunner sleeps for d per execution, honoring ctx.
func slowRunner(d time.Duration) func(context.Context, string, core.Params) (core.Result, error) {
	return func(ctx context.Context, id string, _ core.Params) (core.Result, error) {
		select {
		case <-ctx.Done():
			return core.Result{}, ctx.Err()
		case <-time.After(d):
		}
		return fakeResult(id), nil
	}
}

// The per-class conservation law: for each class, at quiescence,
// hits + deduped + sheds + executions == requests. Hammered concurrently
// with mixed classes, tight queues (so interactive sheds really happen),
// per-caller deadlines (so deadline sheds happen), and repeated keys (so
// hits and singleflight dedup happen). Run under -race in CI.
func TestEngineClassConservationLaw(t *testing.T) {
	e := NewEngine(Config{
		Shards: 4, Workers: 2, Queue: 2,
		RunnerWith: slowRunner(2 * time.Millisecond),
	})
	defer e.Close()

	const goroutines = 64
	const perG = 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ctx := context.Background()
				if g%2 == 0 {
					ctx = admit.WithClass(ctx, admit.Batch)
				}
				if g%5 == 0 {
					// Tight deadlines provoke deadline sheds and mid-run
					// cancellations.
					c, cancel := context.WithTimeout(ctx, time.Duration(1+g%4)*time.Millisecond)
					defer cancel()
					ctx = c
				}
				// A small key space mixes cold runs, hits, and dedup.
				id := fmt.Sprintf("K%d", (g+i)%6)
				_, _ = e.ServeWith(ctx, id, nil)
			}
		}()
	}
	wg.Wait()

	m := e.Metrics()
	var total int64
	for _, class := range admit.Classes() {
		cm := m.Classes[class.String()]
		sum := cm.CacheHits + cm.Deduped + cm.Sheds + cm.Executions
		if sum != cm.Requests {
			t.Errorf("%s: hits(%d)+deduped(%d)+sheds(%d)+executions(%d)=%d != requests(%d)",
				class, cm.CacheHits, cm.Deduped, cm.Sheds, cm.Executions, sum, cm.Requests)
		}
		total += cm.Requests
	}
	if want := int64(goroutines * perG); total != want {
		t.Fatalf("total requests %d, want %d", total, want)
	}
	// The aggregate view must equal the class sums.
	if m.Requests != total || m.CacheHits+m.Deduped+m.Sheds+m.Executions != total {
		t.Fatalf("aggregate books unbalanced: %+v", m)
	}
}

// A full interactive queue sheds with ShedError while batch backpressures.
func TestEngineInteractiveShedsBatchBackpressures(t *testing.T) {
	release := make(chan struct{})
	var releaseOnce sync.Once
	unpin := func() { releaseOnce.Do(func() { close(release) }) }
	pinned := make(chan struct{})
	e := NewEngine(Config{
		Shards: 2, Workers: 1, Queue: 1,
		RunnerWith: func(ctx context.Context, id string, _ core.Params) (core.Result, error) {
			if id == "PIN" {
				close(pinned)
			}
			select {
			case <-ctx.Done():
				return core.Result{}, ctx.Err()
			case <-release:
			}
			return fakeResult(id), nil
		},
	})
	defer e.Close()
	defer unpin() // LIFO: a failing assertion must not leave Close waiting on the pinned runner

	// Pin the worker, then fill the interactive queue (distinct keys so
	// singleflight cannot collapse them). Q1 must only be submitted once
	// PIN is *running* — while PIN is still queued it occupies the one
	// queue slot and Q1 would be shed instead of queued.
	go e.Serve("PIN")
	<-pinned
	go e.Serve("Q1")
	waitFor(t, func() bool {
		return e.Metrics().Classes[admit.Interactive.String()].QueueDepth >= 1
	})

	_, err := e.Serve("SHED-ME")
	if !errors.Is(err, admit.ErrShed) {
		t.Fatalf("interactive over full queue = %v, want a shed", err)
	}
	m := e.Metrics().Classes[admit.Interactive.String()]
	if m.Sheds != 1 {
		t.Fatalf("interactive sheds = %d, want 1", m.Sheds)
	}

	// Batch over its full queue blocks instead (backpressure), and
	// completes once the worker frees.
	bctx := admit.WithClass(context.Background(), admit.Batch)
	go e.ServeWith(bctx, "B1", nil)
	waitFor(t, func() bool {
		return e.Metrics().Classes[admit.Batch.String()].QueueDepth >= 1
	})
	done := make(chan error, 1)
	go func() {
		_, err := e.ServeWith(bctx, "B2", nil)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("batch over full queue returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	unpin()
	if err := <-done; err != nil {
		t.Fatalf("backpressured batch request: %v", err)
	}
}

// Queue-full and deadline sheds surface over HTTP as 503 and 429, both
// with a Retry-After hint; the class and deadline ride the request
// headers end to end.
func TestHandlerShedStatusAndRetryAfter(t *testing.T) {
	release := make(chan struct{})
	pinned := make(chan struct{})
	e := NewEngine(Config{
		Shards: 2, Workers: 1, Queue: 1,
		RunnerWith: func(ctx context.Context, id string, _ core.Params) (core.Result, error) {
			if id == "FAST" {
				return fakeResult(id), nil
			}
			if id == "PIN" {
				close(pinned)
			}
			select {
			case <-ctx.Done():
				return core.Result{}, ctx.Err()
			case <-release:
			}
			return fakeResult(id), nil
		},
	})
	defer e.Close()
	defer close(release) // LIFO: release the pinned runner before Close drains
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	get := func(path string, hdr map[string]string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Fast-path checks first, while a worker is still free. Bad class
	// header: 400.
	if resp := get("/run/FAST", map[string]string{admit.HeaderClass: "bulk"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad class header status = %d, want 400", resp.StatusCode)
	}
	// Bad deadline header: 400.
	if resp := get("/run/FAST", map[string]string{admit.HeaderDeadlineMS: "NaN"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad deadline header status = %d, want 400", resp.StatusCode)
	}
	// A labeled batch request is served and accounted as batch.
	if resp := get("/run/FAST", map[string]string{admit.HeaderClass: "batch"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch-labeled request status = %d, want 200", resp.StatusCode)
	}
	if got := e.Metrics().Classes[admit.Batch.String()].Requests; got < 1 {
		t.Fatalf("batch-labeled request not accounted under batch class (requests=%d)", got)
	}

	// Now pin the worker, then fill the interactive queue (Q1 only once
	// PIN is running — a still-queued PIN would occupy the one slot and
	// shed Q1 instead).
	go e.Serve("PIN")
	<-pinned
	go e.Serve("Q1")
	waitFor(t, func() bool {
		return e.Metrics().Classes[admit.Interactive.String()].QueueDepth >= 1
	})

	// Queue-full interactive shed: 503 + Retry-After.
	resp := get("/run/SHED", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queue-full shed status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 shed carries no Retry-After")
	}

	// Deadline-doomed request: a microscopic budget against a pinned
	// worker either sheds at admission (429 + Retry-After) or expires in
	// flight (504).
	resp = get("/run/DL", map[string]string{
		admit.HeaderClass:      "batch",
		admit.HeaderDeadlineMS: "0.01",
	})
	if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline-doomed request status = %d, want 429 (projected shed) or 504 (expired in flight)", resp.StatusCode)
	}
	if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 shed carries no Retry-After")
	}
}

// Cache hits are served even under a canceled context — they cost
// microseconds and the result is already paid for — while cold runs are
// canceled.
func TestEngineHitsServeUnderCanceledContext(t *testing.T) {
	e := newTestEngine(func(id string) (core.Result, error) { return fakeResult(id), nil })
	defer e.Close()
	if _, err := e.Serve("X1"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := e.ServeWith(ctx, "X1", nil)
	if err != nil || !r.CacheHit {
		t.Fatalf("hit under canceled ctx = (%+v, %v), want served hit", r, err)
	}
	if _, err := e.ServeWith(ctx, "COLD", nil); err == nil {
		t.Fatal("cold run under canceled ctx should fail")
	}
}

// SetBatchRate reaches the live scheduler.
func TestEngineSetBatchRate(t *testing.T) {
	e := NewEngine(Config{Workers: 1, BatchRate: 10})
	defer e.Close()
	if got := e.BatchRate(); got != 10 {
		t.Fatalf("BatchRate = %v, want 10", got)
	}
	e.SetBatchRate(3)
	if got := e.BatchRate(); got != 3 {
		t.Fatalf("BatchRate after SetBatchRate = %v, want 3", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TakeClassWindow returns per-window snapshots and resets between calls —
// the live signal the SLO controller steers on (the lifetime reservoirs
// freeze once mature).
func TestEngineTakeClassWindow(t *testing.T) {
	e := newTestEngine(func(id string) (core.Result, error) { return fakeResult(id), nil })
	defer e.Close()
	for i := 0; i < 5; i++ {
		if _, err := e.Serve(fmt.Sprintf("W%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	win := e.TakeClassWindow(admit.Interactive)
	if win.Count != 5 {
		t.Fatalf("first window count = %d, want 5", win.Count)
	}
	if win.P99 <= 0 {
		t.Fatal("window has no p99")
	}
	// The window resets: with no further traffic the next take is empty.
	if win := e.TakeClassWindow(admit.Interactive); win.Count != 0 {
		t.Fatalf("fresh window count = %d, want 0", win.Count)
	}
	// New traffic lands in the new window only.
	if _, err := e.Serve("W0"); err != nil { // a hit now
		t.Fatal(err)
	}
	if win := e.TakeClassWindow(admit.Interactive); win.Count != 1 {
		t.Fatalf("window after one request = %d, want 1", win.Count)
	}
	// The batch window is independent.
	if win := e.TakeClassWindow(admit.Batch); win.Count != 0 {
		t.Fatalf("batch window = %d, want 0", win.Count)
	}
}

// WriteShedHeaders maps every QoS outcome; non-QoS errors are left for
// the caller.
func TestWriteShedHeadersMapping(t *testing.T) {
	cases := []struct {
		err        error
		wantStatus int
		retryAfter bool
	}{
		{&admit.ShedError{Class: admit.Interactive, RetryAfter: 1500 * time.Millisecond}, http.StatusServiceUnavailable, true},
		{&admit.ShedError{Class: admit.Batch, Deadline: true}, http.StatusTooManyRequests, true},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, false},
		{context.Canceled, http.StatusServiceUnavailable, false},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		if !WriteShedHeaders(rec, c.err) {
			t.Fatalf("WriteShedHeaders(%v) = false", c.err)
		}
		if rec.Code != c.wantStatus {
			t.Fatalf("WriteShedHeaders(%v) status = %d, want %d", c.err, rec.Code, c.wantStatus)
		}
		if c.retryAfter && rec.Header().Get("Retry-After") == "" {
			t.Fatalf("WriteShedHeaders(%v): no Retry-After", c.err)
		}
	}
	rec := httptest.NewRecorder()
	if WriteShedHeaders(rec, errors.New("boom")) {
		t.Fatal("WriteShedHeaders claimed a non-QoS error")
	}
	if WriteShedHeaders(httptest.NewRecorder(), ErrUnknownExperiment) {
		t.Fatal("WriteShedHeaders claimed ErrUnknownExperiment")
	}
}
