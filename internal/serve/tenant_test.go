package serve

// Per-tenant accounting plane: the engine's bounded tenant books and
// their /metrics families. The cardinality contract under test: label
// values come from the configured vocabulary plus "other" — never from
// request headers — so a hostile client cannot mint metric series.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/obs"
)

func newTenantEngine(tenants ...string) *Engine {
	return NewEngine(Config{
		Shards:  4,
		Workers: 2,
		Tenants: tenants,
		Runner:  func(id string) (core.Result, error) { return fakeResult(id), nil },
	})
}

func serveAs(t *testing.T, e *Engine, tenant, id string) {
	t.Helper()
	ctx := admit.WithTenant(context.Background(), tenant)
	if _, err := e.ServeWith(ctx, id, core.Params{}); err != nil {
		t.Fatalf("serve %s as %q: %v", id, tenant, err)
	}
}

func TestTenantBooksAccountByDeclaredIdentity(t *testing.T) {
	e := newTenantEngine("alpha", "beta")
	defer e.Close()

	serveAs(t, e, "alpha", "X1")   // cold
	serveAs(t, e, "alpha", "X1")   // hit
	serveAs(t, e, "beta", "X1")    // hit
	serveAs(t, e, "mallory", "X2") // unlisted -> other
	serveAs(t, e, "", "X2")        // untagged -> other

	m := e.Metrics()
	if len(m.Tenants) != 3 {
		t.Fatalf("tenant books %v, want alpha/beta/other", m.Tenants)
	}
	alpha, beta, other := m.Tenants["alpha"], m.Tenants["beta"], m.Tenants["other"]
	if alpha.Requests != 2 || alpha.CacheHits != 1 {
		t.Fatalf("alpha book = %+v, want 2 requests / 1 hit", alpha)
	}
	if beta.Requests != 1 || beta.CacheHits != 1 {
		t.Fatalf("beta book = %+v, want 1 request / 1 hit", beta)
	}
	if other.Requests != 2 || other.CacheHits != 1 {
		t.Fatalf("other book = %+v, want the unlisted and untagged requests", other)
	}
}

// A shed lands in the shedding tenant's book: wedge the single worker
// and fill the depth-1 interactive queue, then the next cold request is
// refused at admission and must be accounted to its tenant.
func TestTenantBooksCountSheds(t *testing.T) {
	release := make(chan struct{})
	e := NewEngine(Config{
		Shards:  4,
		Workers: 1,
		Queue:   1,
		Tenants: []string{"alpha"},
		RunnerWith: func(ctx context.Context, id string, _ core.Params) (core.Result, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return core.Result{}, ctx.Err()
			}
			return fakeResult(id), nil
		},
	})
	defer e.Close()
	defer close(release)

	ctx := admit.WithTenant(context.Background(), "alpha")
	// Wedge the worker, then fill the queue, asynchronously.
	for _, id := range []string{"W1", "W2"} {
		id := id
		go func() { _, _ = e.ServeWith(ctx, id, core.Params{}) }()
	}
	// Wait until both occupy the scheduler (one running, one queued).
	deadline := time.Now().Add(2 * time.Second)
	for e.Metrics().Tenants["alpha"].Requests < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	var shed *admit.ShedError
	sawShed := false
	for i := 0; i < 50 && !sawShed; i++ {
		_, err := e.ServeWith(ctx, "S1", core.Params{})
		if err == nil {
			t.Fatal("over-capacity request served while the worker is wedged")
		}
		sawShed = errors.As(err, &shed)
	}
	if !sawShed {
		t.Fatal("never observed a shed with a wedged worker and a full queue")
	}
	if got := e.Metrics().Tenants["alpha"].Sheds; got < 1 {
		t.Fatalf("alpha sheds = %d, want >= 1", got)
	}
}

func TestTenantMetricsExpositionBounded(t *testing.T) {
	e := newTenantEngine("alpha", "beta")
	defer e.Close()
	h := e.Handler()

	serveAs(t, e, "alpha", "X1")
	serveAs(t, e, "mallory", "X2")

	body := scrape(t, h)
	if problems := obs.Lint(strings.NewReader(body)); len(problems) > 0 {
		t.Fatalf("/metrics with tenant families is not promlint-clean:\n  %s",
			strings.Join(problems, "\n  "))
	}
	for _, want := range []string{
		"# TYPE arch21_tenants gauge",
		"arch21_tenants 3",
		"# TYPE arch21_tenant_requests_total counter",
		`arch21_tenant_requests_total{tenant="alpha"} 1`,
		`arch21_tenant_requests_total{tenant="other"} 1`,
		`arch21_tenant_cache_hits_total{tenant="alpha"}`,
		`arch21_tenant_sheds_total{tenant="beta"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// The hostile identity must not mint a label value: cardinality is
	// config-bounded, the request header only selects within it.
	if strings.Contains(body, "mallory") {
		t.Fatal(`unlisted tenant identity leaked into /metrics label values`)
	}
}

// Without a vocabulary there is no tenant plane: no books, no families.
func TestNoTenantVocabularyNoTenantPlane(t *testing.T) {
	e := newTestEngine(func(id string) (core.Result, error) { return fakeResult(id), nil })
	defer e.Close()
	serveAs(t, e, "alpha", "X1")
	if m := e.Metrics(); m.Tenants != nil {
		t.Fatalf("tenant books without a vocabulary: %+v", m.Tenants)
	}
	if body := scrape(t, e.Handler()); strings.Contains(body, "arch21_tenant") {
		t.Fatal("tenant metric families registered without a vocabulary")
	}
}

// A bad vocabulary is an operator config error and must fail loudly at
// construction, exactly like a malformed metric registration.
func TestBadTenantVocabularyPanics(t *testing.T) {
	for _, bad := range [][]string{
		{"alpha", "alpha"}, // duplicate
		{"other"},          // collides with the overflow bucket
		{""},               // empty identity
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEngine(Tenants: %q) did not panic", bad)
				}
			}()
			NewEngine(Config{Workers: 1, Tenants: bad,
				Runner: func(id string) (core.Result, error) { return fakeResult(id), nil }}).Close()
		}()
	}
}
