package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/obs"
)

// scrape runs one GET /metrics through the engine's full handler and
// returns the body.
func scrape(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics Content-Type = %q", ct)
	}
	return rec.Body.String()
}

// TestMetricsExpositionClean drives mixed-class traffic (including sheds)
// through the engine and validates the resulting /metrics scrape the way
// promlint would: naming, metadata, histogram shape.
func TestMetricsExpositionClean(t *testing.T) {
	e := newTestEngine(func(id string) (core.Result, error) { return fakeResult(id), nil })
	defer e.Close()
	h := e.Handler()

	for i := 0; i < 8; i++ {
		ctx := admit.WithClass(context.Background(), admit.Interactive)
		if i%2 == 1 {
			ctx = admit.WithClass(context.Background(), admit.Batch)
		}
		if _, err := e.ServeWith(ctx, fmt.Sprintf("X%d", i%3), core.Params{}); err != nil {
			t.Fatalf("serve: %v", err)
		}
	}

	body := scrape(t, h)
	if problems := obs.Lint(strings.NewReader(body)); len(problems) > 0 {
		t.Fatalf("/metrics is not promlint-clean:\n  %s", strings.Join(problems, "\n  "))
	}

	// Table-driven spot checks on families the dashboards depend on: each
	// must carry HELP and TYPE metadata and at least one sample of the
	// declared shape.
	cases := []struct {
		family string
		typ    string
		sample string // substring of an expected sample line
	}{
		{"arch21_requests_total", "counter", `arch21_requests_total{class="interactive"}`},
		{"arch21_requests_total", "counter", `arch21_requests_total{class="batch"}`},
		{"arch21_cache_hits_total", "counter", `arch21_cache_hits_total{class="interactive"}`},
		{"arch21_executions_total", "counter", `arch21_executions_total{class=`},
		{"arch21_sheds_total", "counter", `arch21_sheds_total{class=`},
		{"arch21_request_duration_seconds", "histogram",
			`arch21_request_duration_seconds_bucket{class="interactive",outcome="cold",le="+Inf"}`},
		{"arch21_request_duration_seconds", "histogram",
			`arch21_request_duration_seconds_sum{class="interactive",outcome="hit"}`},
		{"arch21_queue_depth", "gauge", `arch21_queue_depth{class=`},
		{"arch21_workers", "gauge", "arch21_workers "},
		{"arch21_batch_rate", "gauge", "arch21_batch_rate "},
		{"arch21_cache_entries", "gauge", "arch21_cache_entries "},
		{"arch21_events_total", "counter", "arch21_events_total "},
		{"arch21_uptime_seconds", "gauge", "arch21_uptime_seconds "},
	}
	for _, tc := range cases {
		t.Run(tc.family, func(t *testing.T) {
			if !strings.Contains(body, "# HELP "+tc.family+" ") {
				t.Errorf("missing HELP for %s", tc.family)
			}
			if !strings.Contains(body, fmt.Sprintf("# TYPE %s %s", tc.family, tc.typ)) {
				t.Errorf("missing TYPE %s %s", tc.family, tc.typ)
			}
			if !strings.Contains(body, tc.sample) {
				t.Errorf("missing sample %q", tc.sample)
			}
		})
	}

	// Bucket series must be cumulative and terminate in le="+Inf" — walk
	// the interactive/cold series explicitly (the traffic above filled it).
	var last float64 = -1
	sawInf := false
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, `arch21_request_duration_seconds_bucket{class="interactive",outcome="cold",`) {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("non-cumulative bucket series at %q (%g < %g)", line, v, last)
		}
		last = v
		sawInf = strings.Contains(line, `le="+Inf"`)
	}
	if !sawInf {
		t.Fatal(`interactive/cold bucket series does not end in le="+Inf"`)
	}
}

// TestMetricsScrapeDoesNotConsumeWindow is the regression gate for the
// scrape-isolation invariant: /metrics must never drain the controller's
// TakeClassWindow reservoir, no matter how many scrapes land between
// controller ticks.
func TestMetricsScrapeDoesNotConsumeWindow(t *testing.T) {
	e := newTestEngine(func(id string) (core.Result, error) { return fakeResult(id), nil })
	defer e.Close()
	h := e.Handler()

	const n = 12
	for i := 0; i < n; i++ {
		if _, err := e.Serve(fmt.Sprintf("W%d", i)); err != nil {
			t.Fatalf("serve: %v", err)
		}
	}
	for i := 0; i < 25; i++ {
		scrape(t, h)
	}
	win := e.TakeClassWindow(admit.Interactive)
	if win.Count != n {
		t.Fatalf("controller window after 25 scrapes: Count=%d want %d (scrapes consumed the window)", win.Count, n)
	}
	// And the window, once taken by the controller, is actually fresh.
	if again := e.TakeClassWindow(admit.Interactive); again.Count != 0 {
		t.Fatalf("second TakeClassWindow: Count=%d want 0", again.Count)
	}
}

func TestApplyControl(t *testing.T) {
	e := newTestEngine(func(id string) (core.Result, error) { return fakeResult(id), nil })
	defer e.Close()

	rate := 64.0
	ack, err := e.ApplyControl(ControlRequest{BatchRate: &rate})
	if err != nil {
		t.Fatalf("ApplyControl(batch_rate): %v", err)
	}
	if got := e.BatchRate(); got != 64 {
		t.Fatalf("BatchRate after control: %g want 64", got)
	}
	if ack.Applied["batch_rate"] != "64" {
		t.Fatalf("ack: %+v", ack)
	}

	pol := "shared-fifo"
	if _, err := e.ApplyControl(ControlRequest{Policy: &pol}); err != nil {
		t.Fatalf("ApplyControl(policy): %v", err)
	}
	if got := e.sched.Policy(); got != admit.SharedFIFO {
		t.Fatalf("policy after control: %v", got)
	}

	// slo_ms without a controller attached must be rejected...
	ms := 50.0
	if _, err := e.ApplyControl(ControlRequest{SLOMS: &ms}); err == nil {
		t.Fatal("slo_ms with no controller attached should fail")
	}
	// ...and must reach the hook once one is registered.
	var gotSLO time.Duration
	e.OnSLOChange(func(slo time.Duration) error { gotSLO = slo; return nil })
	if _, err := e.ApplyControl(ControlRequest{SLOMS: &ms}); err != nil {
		t.Fatalf("ApplyControl(slo_ms): %v", err)
	}
	if gotSLO != 50*time.Millisecond {
		t.Fatalf("SLO hook got %v want 50ms", gotSLO)
	}

	for name, req := range map[string]ControlRequest{
		"empty":          {},
		"negative rate":  {BatchRate: ptr(-1.0)},
		"NaN rate":       {BatchRate: ptr(nan())},
		"zero slo":       {SLOMS: ptr(0.0)},
		"unknown policy": {Policy: ptrS("lifo")},
	} {
		if _, err := e.ApplyControl(req); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	// A request with one bad knob must apply nothing (validate-all-first).
	bad := ControlRequest{BatchRate: ptr(128.0), Policy: ptrS("bogus")}
	if _, err := e.ApplyControl(bad); err == nil {
		t.Fatal("mixed good/bad request should fail whole")
	}
	if got := e.BatchRate(); got != 64 {
		t.Fatalf("failed control mutated batch rate to %g", got)
	}

	// Each successful control decision lands in the event ring.
	var controls int
	for _, ev := range e.Events().Since(0) {
		if ev.Type == obs.EventControl {
			controls++
		}
	}
	if controls != 3 {
		t.Fatalf("control events recorded: %d want 3", controls)
	}
}

func ptr(f float64) *float64 { return &f }
func ptrS(s string) *string  { return &s }
func nan() (f float64)       { f = 0; f /= f; return } //nolint: deliberate NaN

func TestControlHandlerHTTP(t *testing.T) {
	e := newTestEngine(func(id string) (core.Result, error) { return fakeResult(id), nil })
	defer e.Close()
	h := e.Handler()

	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/control", strings.NewReader(body))
		h.ServeHTTP(rec, req)
		return rec
	}

	rec := post(`{"batch_rate": 32}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /control: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	var ack ControlAck
	if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil {
		t.Fatalf("bad ack: %v", err)
	}
	if ack.Applied["batch_rate"] != "32" || e.BatchRate() != 32 {
		t.Fatalf("ack %+v, rate %g", ack, e.BatchRate())
	}

	if rec := post(`{"batch_rate": 32, "bogus": 1}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown field: HTTP %d want 400", rec.Code)
	}
	if rec := post(`{}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty body: HTTP %d want 400", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/control", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /control: HTTP %d want 405", rec.Code)
	}
}

// TestStatsMemoized pins the /stats memoization contract: within StatsTTL
// the handler serves the cached snapshot, while Metrics() stays live.
func TestStatsMemoized(t *testing.T) {
	e := newTestEngine(func(id string) (core.Result, error) { return fakeResult(id), nil })
	defer e.Close()

	if _, err := e.Serve("S1"); err != nil {
		t.Fatal(err)
	}
	first := e.MetricsCached()
	if first.Requests != 1 {
		t.Fatalf("first cached snapshot: %+v", first)
	}
	if _, err := e.Serve("S2"); err != nil {
		t.Fatal(err)
	}
	if again := e.MetricsCached(); again.Requests != 1 {
		t.Fatalf("snapshot within TTL should be memoized: Requests=%d want 1", again.Requests)
	}
	if live := e.Metrics(); live.Requests != 2 {
		t.Fatalf("Metrics() must stay live: Requests=%d want 2", live.Requests)
	}
}

// TestConcurrentScrapeServeControl exercises every observability surface
// at once — serving, /metrics scrapes, /stats, /events, and live control
// retunes — and relies on the -race CI lane to flag unsynchronized state.
func TestConcurrentScrapeServeControl(t *testing.T) {
	e := newTestEngine(func(id string) (core.Result, error) { return fakeResult(id), nil })
	defer e.Close()
	h := e.Handler()

	const iters = 40
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				class := admit.Interactive
				if i%2 == 0 {
					class = admit.Batch
				}
				ctx := admit.WithClass(context.Background(), class)
				_, _ = e.ServeWith(ctx, fmt.Sprintf("C%d-%d", g, i%5), core.Params{})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
			rec = httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
			rec = httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/events?since=0", nil))
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			rate := float64(100 + i)
			pol := "strict-priority"
			if i%2 == 0 {
				pol = "shared-fifo"
			}
			if _, err := e.ApplyControl(ControlRequest{BatchRate: &rate, Policy: &pol}); err != nil {
				t.Errorf("ApplyControl: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if problems := obs.Lint(strings.NewReader(scrape(t, h))); len(problems) > 0 {
		t.Fatalf("post-race scrape not clean:\n  %s", strings.Join(problems, "\n  "))
	}
}

// The memoization satellite's before/after numbers: a full reservoir walk
// per call vs the cached snapshot.
func BenchmarkEngineMetrics(b *testing.B) {
	e := benchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Metrics()
	}
}

func BenchmarkEngineMetricsCached(b *testing.B) {
	e := benchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.MetricsCached()
	}
}

func BenchmarkEngineMetricsScrape(b *testing.B) {
	e := benchEngine(b)
	reg := e.MetricsRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := reg.WriteText(&sb); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEngine(b *testing.B) *Engine {
	b.Helper()
	e := newTestEngine(func(id string) (core.Result, error) { return fakeResult(id), nil })
	b.Cleanup(e.Close)
	for i := 0; i < 512; i++ {
		if _, err := e.Serve(fmt.Sprintf("B%d", i%64)); err != nil {
			b.Fatal(err)
		}
	}
	return e
}
