package serve

// The engine's observability plane: the Prometheus /metrics registry, the
// structured event log, the memoized /stats snapshot, and the live
// POST /control channel. Everything /metrics exposes is collected at
// scrape time from atomics and cumulative histograms — never from the
// controller's TakeClassWindow reservoirs — so scraping, no matter how
// aggressive, cannot perturb the QoS feedback signal.

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/admit"
	"repro/internal/httpapi"
	"repro/internal/obs"
)

// StatsTTL bounds the staleness of the memoized /stats snapshot. A full
// Metrics() walks every latency reservoir (a sort per percentile), so an
// aggressive dashboard poller would burn CPU the serving path needs;
// 250ms of staleness is invisible to an operator.
const StatsTTL = 250 * time.Millisecond

// Events returns the engine's control-plane event ring (never nil).
func (e *Engine) Events() *obs.Events { return e.events }

// OnSLOChange registers the actuator POST /control drives for slo_ms:
// cmd/arch21d hooks the QoS supervisor's SetSLO here. A nil fn detaches
// (control requests carrying slo_ms are then rejected).
func (e *Engine) OnSLOChange(fn func(slo time.Duration) error) {
	e.sloMu.Lock()
	e.sloHook = fn
	e.sloMu.Unlock()
}

// SetPolicy switches the admission discipline live.
func (e *Engine) SetPolicy(p admit.Policy) { e.sched.SetPolicy(p) }

// MetricsCached returns Metrics() memoized for StatsTTL — what the
// /stats handler serves. Live tests keep calling Metrics() directly.
func (e *Engine) MetricsCached() Metrics {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	if !e.statsAt.IsZero() && time.Since(e.statsAt) < StatsTTL {
		return e.statsVal
	}
	e.statsVal = e.Metrics()
	e.statsAt = time.Now()
	return e.statsVal
}

// MetricsRegistry returns the engine's /metrics registry, built once.
// Every collector reads atomics or cumulative histograms, so a scrape
// costs microseconds and touches nothing a controller depends on.
func (e *Engine) MetricsRegistry() *obs.Registry {
	e.obsOnce.Do(func() { e.obsReg = e.buildRegistry() })
	return e.obsReg
}

// classCounterVec renders one per-class counter family from a field
// selector.
func (e *Engine) classCounterVec(get func(*classCounters) int64) func() []obs.Sample {
	return func() []obs.Sample {
		out := make([]obs.Sample, 0, len(e.classes))
		for _, class := range admit.Classes() {
			out = append(out, obs.Sample{
				Values: []string{class.String()},
				Value:  float64(get(&e.classes[class])),
			})
		}
		return out
	}
}

func (e *Engine) buildRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Gauge("arch21_uptime_seconds", "Seconds since the engine started.",
		func() float64 { return time.Since(e.started).Seconds() })
	r.CounterVec("arch21_requests_total", "Validated requests by class.", []string{"class"},
		e.classCounterVec(func(c *classCounters) int64 { return c.requests.Load() }))
	r.CounterVec("arch21_cache_hits_total", "Requests answered from cache, by class.", []string{"class"},
		e.classCounterVec(func(c *classCounters) int64 { return c.hits.Load() }))
	r.CounterVec("arch21_deduped_total", "Requests that piggybacked on an in-flight execution, by class.", []string{"class"},
		e.classCounterVec(func(c *classCounters) int64 { return c.deduped.Load() }))
	r.CounterVec("arch21_executions_total", "Underlying experiment executions, by class.", []string{"class"},
		e.classCounterVec(func(c *classCounters) int64 { return c.executions.Load() }))
	r.CounterVec("arch21_sheds_total", "Requests rejected at admission, by class.", []string{"class"},
		e.classCounterVec(func(c *classCounters) int64 { return c.sheds.Load() }))
	r.Histogram("arch21_request_duration_seconds",
		"Request latency by class and outcome (hit: served from cache; cold: executed or deduplicated).",
		[]string{"class", "outcome"}, func() []obs.HistSample {
			out := make([]obs.HistSample, 0, 2*len(e.classes))
			for _, class := range admit.Classes() {
				cc := &e.classes[class]
				hit := cc.hitHist.Snapshot()
				cold := cc.coldHist.Snapshot()
				out = append(out,
					obs.HistSample{Values: []string{class.String(), "hit"},
						Bounds: hit.Bounds, CumCounts: hit.CumCounts, Count: hit.Count, Sum: hit.Sum},
					obs.HistSample{Values: []string{class.String(), "cold"},
						Bounds: cold.Bounds, CumCounts: cold.CumCounts, Count: cold.Count, Sum: cold.Sum})
			}
			return out
		})
	r.GaugeVec("arch21_queue_depth", "Current scheduler queue depth by class.", []string{"class"},
		func() []obs.Sample {
			st := e.sched.Stats()
			out := make([]obs.Sample, 0, len(st.Classes))
			for _, class := range admit.Classes() {
				out = append(out, obs.Sample{Values: []string{class.String()},
					Value: float64(st.Classes[class.String()].Queued)})
			}
			return out
		})
	r.Gauge("arch21_workers", "Scheduler concurrency bound.",
		func() float64 { return float64(e.sched.Workers()) })
	r.Gauge("arch21_workers_busy", "Workers currently running a task.",
		func() float64 { return float64(e.sched.Stats().Running) })
	r.Gauge("arch21_batch_rate", "Batch token-bucket rate in tokens per second (0 means unthrottled).",
		func() float64 { return e.sched.BatchRate() })
	r.Gauge("arch21_batch_tokens", "Batch token-bucket fill.",
		func() float64 { return e.sched.Stats().BatchTokens })
	r.Gauge("arch21_cache_entries", "Live cache entries across shards.",
		func() float64 { return float64(e.cache.Stats().Entries) })
	r.Counter("arch21_cache_lookup_hits_total", "Cache lookups that found a live entry.",
		func() float64 { return float64(e.cache.Stats().Hits) })
	r.Counter("arch21_cache_lookup_misses_total", "Cache lookups that found nothing servable.",
		func() float64 { return float64(e.cache.Stats().Misses) })
	r.Counter("arch21_cache_expired_total", "Cache entries dropped by TTL expiry.",
		func() float64 { return float64(e.cache.Stats().Expired) })
	r.Gauge("arch21_cache_bytes", "Resident slab-arena bytes across shards (headers plus payloads, dead space included until compaction).",
		func() float64 { return float64(e.cache.Stats().Bytes) })
	r.Counter("arch21_cache_evicted_total", "Live cache entries evicted by the byte-budget reclaimer (distinct from TTL expiry).",
		func() float64 { return float64(e.cache.Stats().Evicted) })
	r.Gauge("arch21_snapshot_enabled", "Whether the tier-2 disk cache is configured (0 or 1).",
		func() float64 {
			if e.snapPath != "" {
				return 1
			}
			return 0
		})
	r.Counter("arch21_snapshot_loaded_total", "Entries warm-started from the tier-2 snapshot at boot.",
		func() float64 { return float64(e.snapLoaded.Load()) })
	r.Counter("arch21_snapshot_saves_total", "Tier-2 snapshot writes.",
		func() float64 { return float64(e.snapSaves.Load()) })
	r.Counter("arch21_snapshot_save_failures_total", "Failed tier-2 snapshot writes (alert on this).",
		func() float64 { return float64(e.snapSaveFails.Load()) })
	r.Counter("arch21_events_total", "Control-plane events recorded (the ring retains the newest).",
		func() float64 { return float64(e.events.Total()) })
	// The per-tenant plane exists only when a tenant vocabulary was
	// configured: label values come from Config.Tenants plus the "other"
	// fold (obs.BoundedLabels), never from request data, so series
	// cardinality is bounded by operator config.
	if e.tenants != nil {
		r.Gauge("arch21_tenants", "Configured tenant vocabulary size, including the \"other\" overflow bucket.",
			func() float64 { return float64(e.tenants.Len()) })
		r.CounterVec("arch21_tenant_requests_total", "Validated requests by tenant (unlisted and untagged tenants fold into \"other\").", []string{"tenant"},
			e.tenantCounterVec(func(t *tenantCounters) int64 { return t.requests.Load() }))
		r.CounterVec("arch21_tenant_cache_hits_total", "Requests answered from cache, by tenant.", []string{"tenant"},
			e.tenantCounterVec(func(t *tenantCounters) int64 { return t.hits.Load() }))
		r.CounterVec("arch21_tenant_sheds_total", "Requests rejected at admission, by tenant.", []string{"tenant"},
			e.tenantCounterVec(func(t *tenantCounters) int64 { return t.sheds.Load() }))
	}
	return r
}

// tenantCounterVec renders one per-tenant counter family from a field
// selector over the bounded tenant vocabulary.
func (e *Engine) tenantCounterVec(get func(*tenantCounters) int64) func() []obs.Sample {
	return func() []obs.Sample {
		out := make([]obs.Sample, 0, len(e.tenantBooks))
		for i := range e.tenantBooks {
			out = append(out, obs.Sample{
				Values: []string{e.tenants.Value(i)},
				Value:  float64(get(&e.tenantBooks[i])),
			})
		}
		return out
	}
}

// ControlRequest is the POST /control body: each knob is optional, only
// the ones present are applied, atomically per knob (there is no
// cross-knob transaction). The same body fans out verbatim from the
// routing front-end to every replica.
type ControlRequest struct {
	// BatchRate retunes the batch token bucket (tokens/s; 0 removes the
	// throttle).
	BatchRate *float64 `json:"batch_rate,omitempty"`
	// SLOMS retunes the feedback controller's p99 target in milliseconds.
	// Rejected when no controller is attached.
	SLOMS *float64 `json:"slo_ms,omitempty"`
	// Policy switches the admission discipline ("strict-priority" or
	// "shared-fifo").
	Policy *string `json:"policy,omitempty"`
}

// Empty reports whether the request carries no knob at all.
func (c ControlRequest) Empty() bool {
	return c.BatchRate == nil && c.SLOMS == nil && c.Policy == nil
}

// ControlAck reports what one replica applied, keyed by knob name.
type ControlAck struct {
	Applied map[string]string `json:"applied"`
}

// ApplyControl validates and applies a control request and records one
// EventControl into the ring. All-or-nothing: validation of every
// present knob happens before any is applied.
func (e *Engine) ApplyControl(req ControlRequest) (ControlAck, error) {
	if req.Empty() {
		return ControlAck{}, fmt.Errorf("serve: control request carries no knob (want batch_rate, slo_ms, or policy)")
	}
	var pol admit.Policy
	if req.Policy != nil {
		var err error
		if pol, err = admit.ParsePolicy(*req.Policy); err != nil {
			return ControlAck{}, err
		}
	}
	if req.BatchRate != nil {
		if r := *req.BatchRate; math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			return ControlAck{}, fmt.Errorf("serve: bad batch_rate %v (want a finite rate >= 0)", *req.BatchRate)
		}
	}
	var sloHook func(time.Duration) error
	if req.SLOMS != nil {
		if ms := *req.SLOMS; math.IsNaN(ms) || math.IsInf(ms, 0) || ms <= 0 {
			return ControlAck{}, fmt.Errorf("serve: bad slo_ms %v (want a positive millisecond target)", *req.SLOMS)
		}
		e.sloMu.Lock()
		sloHook = e.sloHook
		e.sloMu.Unlock()
		if sloHook == nil {
			return ControlAck{}, fmt.Errorf("serve: no live controller attached; slo_ms cannot be retuned (start with -lc-slo)")
		}
	}

	ack := ControlAck{Applied: map[string]string{}}
	labels := map[string]string{}
	if req.BatchRate != nil {
		e.SetBatchRate(*req.BatchRate)
		v := strconv.FormatFloat(*req.BatchRate, 'g', -1, 64)
		ack.Applied["batch_rate"] = v
		labels["batch_rate"] = v
	}
	if req.Policy != nil {
		e.SetPolicy(pol)
		ack.Applied["policy"] = pol.String()
		labels["policy"] = pol.String()
	}
	if req.SLOMS != nil {
		if err := sloHook(time.Duration(*req.SLOMS * float64(time.Millisecond))); err != nil {
			return ControlAck{}, err
		}
		v := strconv.FormatFloat(*req.SLOMS, 'g', -1, 64)
		ack.Applied["slo_ms"] = v
		labels["slo_ms"] = v
	}
	e.events.Record(obs.EventControl, labels, nil)
	return ack, nil
}

// ControlHandler serves POST /control: a ControlRequest body, applied
// live, answered with the ControlAck.
func (e *Engine) ControlHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpapi.WriteError(w, http.StatusMethodNotAllowed, httpapi.CodeMethodNotAllowed, "method not allowed")
			return
		}
		var req ControlRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, "bad control body: "+err.Error())
			return
		}
		ack, err := e.ApplyControl(req)
		if err != nil {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
			return
		}
		WriteJSON(w, http.StatusOK, ack)
	})
}
