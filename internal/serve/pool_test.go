package serve

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4, 8)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.Submit(func() { n.Add(1); wg.Done() }); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Fatalf("tasks run: got %d want 100", n.Load())
	}
	p.Close()
	if err := p.Submit(func() {}); err != ErrPoolClosed {
		t.Fatalf("Submit after Close: got %v want ErrPoolClosed", err)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers, 64)
	defer p.Close()
	var cur, peak atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		err := p.Submit(func() {
			defer wg.Done()
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			<-gate
			cur.Add(-1)
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	close(gate)
	wg.Wait()
	if peak.Load() > workers {
		t.Fatalf("peak concurrency %d exceeded %d workers", peak.Load(), workers)
	}
}

func TestPoolRunReturnsValues(t *testing.T) {
	p := NewPool(2, 2)
	defer p.Close()
	v, err := p.Run(func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(v) != "ok" {
		t.Fatalf("Run: got (%q, %v)", v, err)
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(1, 0)
	p.Close()
	p.Close()
}

// Regression test for the head-of-line Submit bug: the original Submit
// held the pool mutex across its blocking channel send, so one submitter
// parked on a full queue serialized every other submitter — and wedged
// Close — behind it. With the fix, concurrent submitters on a full queue
// block independently (no lock held), and Close releases all of them
// with ErrPoolClosed immediately, even while the workers are still
// stalled on the task that filled the queue.
func TestPoolFullQueueDoesNotStallUnrelatedSubmitters(t *testing.T) {
	p := NewPool(1, 1)
	gate := make(chan struct{})
	running := make(chan struct{})
	if err := p.Submit(func() { close(running); <-gate }); err != nil {
		t.Fatalf("Submit worker-pinning task: %v", err)
	}
	<-running
	if err := p.Submit(func() {}); err != nil { // fills the 1-slot queue
		t.Fatalf("Submit queue-filling task: %v", err)
	}

	// Two submitters park on the full queue concurrently.
	errs := make(chan error, 2)
	var started sync.WaitGroup
	for i := 0; i < 2; i++ {
		started.Add(1)
		go func() {
			started.Done()
			errs <- p.Submit(func() {})
		}()
	}
	started.Wait()
	select {
	case err := <-errs:
		t.Fatalf("Submit on a full queue returned early: %v", err)
	default:
	}

	// Close must not wait behind the blocked submitters (the old code
	// deadlocked here until the worker drained): both get ErrPoolClosed
	// promptly, while the worker is still pinned.
	closed := make(chan struct{})
	go func() { p.Close(); close(closed) }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != ErrPoolClosed {
			t.Fatalf("blocked submitter got %v, want ErrPoolClosed", err)
		}
	}
	select {
	case <-closed:
		t.Fatal("Close returned while a worker task was still running")
	default:
	}
	close(gate) // release the worker; Close drains the queued task and returns
	<-closed
}

func TestPoolWorkersAccessorAndClamps(t *testing.T) {
	p := NewPool(0, -1) // clamps to 1 worker, 0 queue
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("Workers = %d, want 1 (clamped)", p.Workers())
	}
	if _, err := p.Run(func() ([]byte, error) { return []byte("x"), nil }); err != nil {
		t.Fatal(err)
	}
}
