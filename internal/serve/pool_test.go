package serve

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4, 8)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.Submit(func() { n.Add(1); wg.Done() }); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Fatalf("tasks run: got %d want 100", n.Load())
	}
	p.Close()
	if err := p.Submit(func() {}); err != ErrPoolClosed {
		t.Fatalf("Submit after Close: got %v want ErrPoolClosed", err)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers, 64)
	defer p.Close()
	var cur, peak atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		err := p.Submit(func() {
			defer wg.Done()
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			<-gate
			cur.Add(-1)
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	close(gate)
	wg.Wait()
	if peak.Load() > workers {
		t.Fatalf("peak concurrency %d exceeded %d workers", peak.Load(), workers)
	}
}

func TestPoolRunReturnsValues(t *testing.T) {
	p := NewPool(2, 2)
	defer p.Close()
	v, err := p.Run(func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(v) != "ok" {
		t.Fatalf("Run: got (%q, %v)", v, err)
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(1, 0)
	p.Close()
	p.Close()
}
