package serve

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// The shard-rounding loop used to spin forever for adversarial counts:
// rounding 1<<62+1 up overflows n to negative/zero and `n <<= 1` never
// reaches the target. The clamp bounds the loop before it starts.
func TestShardCountClampsAdversarialValues(t *testing.T) {
	cases := []struct {
		in   int
		want int
	}{
		{maxCacheShards, maxCacheShards},
		{maxCacheShards + 1, maxCacheShards},
		{math.MaxInt, maxCacheShards},
		{math.MaxInt/2 + 2, maxCacheShards}, // > any power of two representable
		{1 << 62, maxCacheShards},
	}
	for _, tc := range cases {
		done := make(chan *Cache, 1)
		go func() { done <- NewCache(tc.in, 0) }()
		select {
		case c := <-done:
			if got := c.Stats().Shards; got != tc.want {
				t.Errorf("NewCache(%d): %d shards, want %d", tc.in, got, tc.want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("NewCache(%d) hung (rounding overflow)", tc.in)
		}
	}
}

// A Set whose payload fits the entry's capacity must overwrite in place:
// same slab footprint, hit counter reset, no new bytes consumed.
func TestSlabInPlaceUpdate(t *testing.T) {
	c := NewCache(1, 0)
	c.Set("k", []byte("12345678"))
	for i := 0; i < 3; i++ {
		c.Get("k")
	}
	if got := c.Hits("k"); got != 3 {
		t.Fatalf("hits = %d, want 3", got)
	}
	before := c.Stats().Bytes
	c.Set("k", []byte("1234")) // shorter: fits capacity
	if got := c.Stats().Bytes; got != before {
		t.Fatalf("in-place update changed slab bytes: %d -> %d", before, got)
	}
	if got := c.Hits("k"); got != 0 {
		t.Fatalf("in-place update kept hits = %d, want reset to 0", got)
	}
	if v, ok := c.Get("k"); !ok || string(v) != "1234" {
		t.Fatalf("Get after in-place update = %q, %v", v, ok)
	}
	// Growing past capacity relocates but must still round-trip.
	big := make([]byte, 100)
	for i := range big {
		big[i] = byte(i)
	}
	c.Set("k", big)
	v, ok := c.Get("k")
	if !ok || len(v) != len(big) || v[99] != 99 {
		t.Fatalf("Get after relocating update = %d bytes, %v", len(v), ok)
	}
	if got := c.Stats().Entries; got != 1 {
		t.Fatalf("entries = %d, want 1 after overwrites", got)
	}
}

// Payloads larger than a standard segment get dedicated arenas and
// round-trip intact.
func TestSlabOversizeEntries(t *testing.T) {
	c := NewCache(1, 0)
	big := make([]byte, 3*segmentSize)
	for i := range big {
		big[i] = byte(i * 31)
	}
	c.Set("big", big)
	c.Set("small", []byte("s"))
	v, ok := c.Get("big")
	if !ok || len(v) != len(big) {
		t.Fatalf("oversize Get = %d bytes, %v", len(v), ok)
	}
	for i := 0; i < len(big); i += 4097 {
		if v[i] != big[i] {
			t.Fatalf("oversize payload corrupt at %d", i)
		}
	}
	if v, ok := c.Get("small"); !ok || string(v) != "s" {
		t.Fatalf("small Get alongside oversize = %q, %v", v, ok)
	}
}

// A bounded cache must stay within (about) its byte budget under
// sustained insertion, evicting old entries rather than failing, and
// every surviving entry must still read back correctly.
func TestSlabBoundedEviction(t *testing.T) {
	for _, policy := range []EvictionPolicy{EvictLRU, EvictCost} {
		t.Run(policy.String(), func(t *testing.T) {
			const budget = 4 * segmentSize
			c := NewCacheSized(1, 0, budget, policy)
			val := make([]byte, 1024)
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("key-%05d", i)
				copy(val, key)
				c.Set(key, val)
			}
			st := c.Stats()
			if st.Evicted == 0 {
				t.Fatalf("no evictions after writing %d x 1KiB into %d budget", 2000, budget)
			}
			if st.Bytes > budget+segmentSize {
				t.Fatalf("slab bytes %d exceed budget %d by more than one segment", st.Bytes, budget)
			}
			found := 0
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("key-%05d", i)
				if v, ok := c.Get(key); ok {
					found++
					if string(v[:len(key)]) != key {
						t.Fatalf("surviving entry %s corrupt: %q", key, v[:len(key)])
					}
				}
			}
			if found == 0 || found == 2000 {
				t.Fatalf("survivors = %d, want some but not all", found)
			}
		})
	}
}

// Under LRU, a hot entry that keeps getting touched must outlive cold
// neighbors inserted at the same time.
func TestSlabLRUKeepsHotEntry(t *testing.T) {
	c := NewCacheSized(1, 0, 2*segmentSize, EvictLRU)
	val := make([]byte, 512)
	c.Set("hot", val)
	for i := 0; i < 5000; i++ {
		c.Set(fmt.Sprintf("cold-%05d", i), val)
		c.Get("hot") // refresh the CLOCK bit every round
	}
	if _, ok := c.Get("hot"); !ok {
		t.Fatalf("hot entry evicted despite constant access")
	}
}

// Cost-aware eviction keeps entries with recorded hits over never-hit
// ones. Hit counts halve on every survival sweep, so the entry must keep
// earning hits to stay — a one-time burst ages out by design.
func TestSlabCostPolicyKeepsHitEntries(t *testing.T) {
	c := NewCacheSized(1, 0, 2*segmentSize, EvictCost)
	val := make([]byte, 512)
	c.Set("earned", val)
	for i := 0; i < 5000; i++ {
		c.Set(fmt.Sprintf("oneshot-%05d", i), val)
		if i%32 == 0 {
			c.Get("earned") // keeps hits > 0 across halving sweeps
		}
	}
	if _, ok := c.Get("earned"); !ok {
		t.Fatalf("frequently-hit entry evicted under cost policy")
	}
	st := c.Stats()
	if st.Evicted == 0 {
		t.Fatal("expected one-shot entries to be evicted")
	}
}

// An unbounded cache must compact dead bytes (from deletes and
// relocating overwrites) instead of growing forever.
func TestSlabUnboundedCompaction(t *testing.T) {
	c := NewCache(1, 0)
	val := make([]byte, 1024)
	// Churn: insert then delete, repeatedly. Live set stays tiny; slab
	// bytes must stay bounded (compaction reclaims dead segments).
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("churn-%05d", i)
		c.Set(key, val)
		if i >= 8 {
			c.Delete(fmt.Sprintf("churn-%05d", i-8))
		}
	}
	st := c.Stats()
	if st.Evicted != 0 {
		t.Fatalf("unbounded cache evicted %d live entries", st.Evicted)
	}
	// 3000 KiB written; the live tail is 8 KiB. Anything under a dozen
	// segments proves compaction ran.
	if st.Bytes > 12*segmentSize {
		t.Fatalf("slab bytes %d: compaction not reclaiming dead segments", st.Bytes)
	}
	for i := 2993; i < 3000; i++ {
		if _, ok := c.Get(fmt.Sprintf("churn-%05d", i)); !ok {
			t.Fatalf("live tail entry churn-%05d lost in compaction", i)
		}
	}
}

// Aliases returned by Get before a reclamation must stay readable after
// it (reclaimed segments are dropped to the GC, never reused).
func TestSlabAliasSurvivesReclamation(t *testing.T) {
	c := NewCacheSized(1, 0, 2*segmentSize, EvictLRU)
	c.Set("pinned", []byte("stable-bytes"))
	alias, ok := c.Get("pinned")
	if !ok {
		t.Fatal("pinned entry missing")
	}
	val := make([]byte, 1024)
	for i := 0; i < 5000; i++ {
		c.Set(fmt.Sprintf("filler-%05d", i), val)
	}
	if string(alias) != "stable-bytes" {
		t.Fatalf("alias corrupted after reclamation: %q", alias)
	}
}

// Dump / SetStamped round-trip across cache generations — the snapshot
// path the engine's tier-2 warm start depends on.
func TestSlabDumpRoundTripIntoFreshCache(t *testing.T) {
	src := NewCache(4, time.Hour)
	base := time.Now().Add(-30 * time.Minute).UnixNano()
	for i := 0; i < 100; i++ {
		src.SetStamped(fmt.Sprintf("snap-%03d", i), []byte(fmt.Sprintf("val-%03d", i)), base+int64(i))
	}
	dump := src.Dump()
	if len(dump) != 100 {
		t.Fatalf("dump = %d entries, want 100", len(dump))
	}
	dst := NewCache(4, time.Hour)
	for _, kv := range dump {
		dst.SetStamped(kv.Key, kv.Val, kv.AddedUnixNano)
	}
	redump := dst.Dump()
	if len(redump) != 100 {
		t.Fatalf("re-dump = %d entries, want 100", len(redump))
	}
	for i, kv := range redump {
		if kv.Key != dump[i].Key || string(kv.Val) != string(dump[i].Val) || kv.AddedUnixNano != dump[i].AddedUnixNano {
			t.Fatalf("entry %d drifted across round-trip: %+v vs %+v", i, kv, dump[i])
		}
	}
}

// Clear must release every arena and still serve fresh inserts.
func TestSlabClearReleasesArenas(t *testing.T) {
	c := NewCache(2, 0)
	val := make([]byte, 1024)
	for i := 0; i < 500; i++ {
		c.Set(fmt.Sprintf("k-%03d", i), val)
	}
	if c.Stats().Bytes == 0 {
		t.Fatal("no slab bytes before Clear")
	}
	c.Clear()
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after Clear: entries=%d bytes=%d, want 0/0", st.Entries, st.Bytes)
	}
	c.Set("fresh", []byte("v"))
	if v, ok := c.Get("fresh"); !ok || string(v) != "v" {
		t.Fatalf("Get after Clear = %q, %v", v, ok)
	}
}

// DeletePrefix coherence carries over: prefix kills must hit slab
// entries across shards and report an exact count.
func TestSlabDeletePrefixAcrossSegments(t *testing.T) {
	c := NewCache(8, 0)
	val := make([]byte, 700)
	for i := 0; i < 400; i++ {
		c.Set(fmt.Sprintf("E9?n=%03d", i), val)
		c.Set(fmt.Sprintf("E7?n=%03d", i), val)
	}
	if n := c.DeletePrefix("E9?"); n != 400 {
		t.Fatalf("DeletePrefix = %d, want 400", n)
	}
	if _, ok := c.Get("E9?n=123"); ok {
		t.Fatal("prefix-deleted entry still readable")
	}
	if _, ok := c.Get("E7?n=123"); !ok {
		t.Fatal("unrelated prefix deleted")
	}
	if got := c.Stats().Entries; got != 400 {
		t.Fatalf("entries = %d, want 400", got)
	}
}
