package serve

import (
	"fmt"
	"sync"
)

// flightGroup deduplicates concurrent calls by key: while one execution for
// a key is in flight, later callers for the same key block and share its
// result instead of launching their own (Dean's thundering-herd collapse,
// in the small). The zero value is ready to use.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

// Do runs fn once per key among concurrent callers. shared reports whether
// the caller received another caller's execution.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	// Cleanup must run even when fn panics: without it the flightCall
	// would stay in the map with its WaitGroup never Done, wedging every
	// later request for the key forever. The panic is converted to an
	// error shared with the waiters, and the leader returns it instead
	// of unwinding past the cleanup.
	defer func() {
		if r := recover(); r != nil {
			c.err = fmt.Errorf("serve: singleflight: panic in flight for %q: %v", key, r)
			c.val = nil
			val, err = nil, c.err
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		c.wg.Done()
	}()

	c.val, c.err = fn()
	return c.val, c.err, false
}
