package serve

import "sync"

// flightGroup deduplicates concurrent calls by key: while one execution for
// a key is in flight, later callers for the same key block and share its
// result instead of launching their own (Dean's thundering-herd collapse,
// in the small). The zero value is ready to use.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

// Do runs fn once per key among concurrent callers. shared reports whether
// the caller received another caller's execution.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()

	return c.val, c.err, false
}
