package serve

import (
	"errors"
	"sync"
)

// Pool is a bounded worker pool: at most Workers tasks execute at once and
// excess submissions queue. It bounds the compute an engine will spend on
// concurrent cold runs — the admission-control half of tail-predictable
// serving (unbounded concurrency is how p99 dies).
type Pool struct {
	tasks   chan func()
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	workers int
}

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("serve: pool closed")

// NewPool starts a pool with n workers (minimum 1) and a queue of depth
// queue (minimum 0).
func NewPool(n, queue int) *Pool {
	if n < 1 {
		n = 1
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{tasks: make(chan func(), queue), workers: n}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// Submit enqueues a task, blocking while the queue is full. It returns
// ErrPoolClosed after Close.
func (p *Pool) Submit(task func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	// Holding the lock across the send keeps Close's channel close from
	// racing an in-flight Submit. Queue-full blocking therefore also
	// briefly blocks other submitters — acceptable for this engine, where
	// queue depth is sized to the worker count.
	defer p.mu.Unlock()
	p.tasks <- task
	return nil
}

// Run executes task on the pool and waits for it, returning its result.
func (p *Pool) Run(task func() ([]byte, error)) ([]byte, error) {
	done := make(chan struct{})
	var val []byte
	var err error
	if serr := p.Submit(func() {
		val, err = task()
		close(done)
	}); serr != nil {
		return nil, serr
	}
	<-done
	return val, err
}

// Close stops accepting tasks and waits for queued ones to drain.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}
