package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a bounded worker pool: at most Workers tasks execute at once and
// excess submissions queue. It was the engine's original admission control
// — a single FIFO shared by all callers — and survives as a standalone
// utility now that the engine schedules through internal/admit's
// class-based scheduler (which supersedes it for serving: the FIFO is
// exactly the discipline that lets a 4096-point sweep starve interactive
// traffic).
type Pool struct {
	tasks   chan func()
	quit    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once
	workers int
	// inflight counts Submit calls between entry and return, so Close
	// can wait out a submitter whose send races the shutdown drain — a
	// task whose Submit returned nil is never dropped.
	inflight atomic.Int64
}

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("serve: pool closed")

// NewPool starts a pool with n workers (minimum 1) and a queue of depth
// queue (minimum 0).
func NewPool(n, queue int) *Pool {
	if n < 1 {
		n = 1
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{tasks: make(chan func(), queue), quit: make(chan struct{}), workers: n}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		// Prefer queued work so Close drains the queue before exiting.
		select {
		case task := <-p.tasks:
			task()
			continue
		default:
		}
		select {
		case task := <-p.tasks:
			task()
		case <-p.quit:
			// Drain whatever is still queued (including a send that won
			// its race against Close), then exit.
			for {
				select {
				case task := <-p.tasks:
					task()
				default:
					return
				}
			}
		}
	}
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// Submit enqueues a task, blocking while the queue is full. It returns
// ErrPoolClosed after Close — including to submitters already blocked on
// a full queue when Close lands.
//
// Submit holds no lock while blocked: a submitter waiting out a full
// queue cannot stall unrelated submitters or Close. (The original
// implementation held the pool mutex across the channel send, so one
// blocked Submit serialized every other submitter — and wedged Close —
// behind the queue's head of line.)
func (p *Pool) Submit(task func()) error {
	p.inflight.Add(1)
	defer p.inflight.Add(-1)
	// After Close, quit is the only ready case here, so a late Submit
	// deterministically errors without ever reaching the send below.
	select {
	case <-p.quit:
		return ErrPoolClosed
	default:
	}
	select {
	case p.tasks <- task:
		return nil
	case <-p.quit:
		return ErrPoolClosed
	}
}

// Run executes task on the pool and waits for it, returning its result.
func (p *Pool) Run(task func() ([]byte, error)) ([]byte, error) {
	done := make(chan struct{})
	var val []byte
	var err error
	if serr := p.Submit(func() {
		val, err = task()
		close(done)
	}); serr != nil {
		return nil, serr
	}
	<-done
	return val, err
}

// Close stops accepting tasks and waits for queued ones to drain. It is
// idempotent and never blocks behind a full queue's blocked submitters
// (they are released with ErrPoolClosed instead).
func (p *Pool) Close() {
	p.once.Do(func() { close(p.quit) })
	p.wg.Wait()
	// A Submit racing Close can win its buffered send just as the
	// workers exit. Drain until no submitter is still mid-Submit AND the
	// queue is empty, so a task whose Submit returned nil is never
	// silently dropped (every parked submitter resolves promptly now
	// that quit is closed: it either errors out or its send is received
	// here).
	for {
		select {
		case task := <-p.tasks:
			task()
			continue
		default:
		}
		if p.inflight.Load() == 0 {
			// One last drain: a send may have landed between the empty
			// probe above and the inflight read.
			select {
			case task := <-p.tasks:
				task()
				continue
			default:
				return
			}
		}
		time.Sleep(50 * time.Microsecond)
	}
}
