package serve

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCacheSetGetRoundTrip(t *testing.T) {
	c := NewCache(8, 0)
	c.Set("k1", []byte("hello"))
	v, ok := c.Get("k1")
	if !ok || !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("Get k1: got (%q, %v)", v, ok)
	}
	if _, ok := c.Get("absent"); ok {
		t.Fatal("Get absent: expected miss")
	}
	c.Set("k1", []byte("overwritten"))
	v, _ = c.Get("k1")
	if !bytes.Equal(v, []byte("overwritten")) {
		t.Fatalf("overwrite: got %q", v)
	}
	c.Set("empty", nil)
	v, ok = c.Get("empty")
	if !ok || len(v) != 0 {
		t.Fatalf("empty value: got (%q, %v)", v, ok)
	}
}

func TestCacheShardCountRoundsUp(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32},
	} {
		c := NewCache(tc.ask, 0)
		if got := c.Stats().Shards; got != tc.want {
			t.Fatalf("NewCache(%d): got %d shards, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := NewCache(4, time.Second)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	c.Set("k", []byte("v"))
	if _, ok := c.Get("k"); !ok {
		t.Fatal("fresh entry should hit")
	}
	now = now.Add(999 * time.Millisecond)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry inside TTL should hit")
	}
	now = now.Add(2 * time.Millisecond)
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry past TTL should miss")
	}
	st := c.Stats()
	if st.Expired != 1 {
		t.Fatalf("expired counter: got %d want 1", st.Expired)
	}
	if st.Entries != 0 {
		t.Fatalf("expired entry should be evicted, have %d entries", st.Entries)
	}
}

func TestCacheZeroTTLNeverExpires(t *testing.T) {
	c := NewCache(1, 0)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	c.Set("k", []byte("v"))
	now = now.Add(100 * 365 * 24 * time.Hour)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("zero-TTL entry must never expire")
	}
}

func TestCacheHitCounters(t *testing.T) {
	c := NewCache(4, 0)
	c.Set("k", []byte("v"))
	if h := c.Hits("k"); h != 0 {
		t.Fatalf("fresh entry hits: got %d want 0", h)
	}
	for i := 0; i < 5; i++ {
		c.Get("k")
	}
	if h := c.Hits("k"); h != 5 {
		t.Fatalf("entry hits: got %d want 5", h)
	}
	if h := c.Hits("absent"); h != 0 {
		t.Fatalf("absent entry hits: got %d want 0", h)
	}
	st := c.Stats()
	if st.Hits != 5 || st.Misses != 0 {
		t.Fatalf("stats: got hits=%d misses=%d", st.Hits, st.Misses)
	}
}

func TestCacheEntryCodecRoundTrip(t *testing.T) {
	for _, e := range []cacheEntry{
		{},
		{addedUnixNano: 123456789, ttlNanos: int64(time.Hour), hits: 42, val: []byte("payload")},
		{addedUnixNano: -5, hits: 1 << 40, val: make([]byte, 10000)},
	} {
		got, ok := decodeEntry(e.encode())
		if !ok {
			t.Fatalf("decodeEntry failed for %+v", e)
		}
		if got.addedUnixNano != e.addedUnixNano || got.ttlNanos != e.ttlNanos ||
			got.hits != e.hits || !bytes.Equal(got.val, e.val) {
			t.Fatalf("round trip: got %+v want %+v", got, e)
		}
	}
	if _, ok := decodeEntry(nil); ok {
		t.Fatal("decodeEntry(nil) should fail")
	}
	enc := cacheEntry{hits: 3, val: []byte("abc")}.encode()
	if _, ok := decodeEntry(enc[:len(enc)-1]); ok {
		t.Fatal("truncated entry should fail")
	}
}

func TestCacheDeleteAndClear(t *testing.T) {
	c := NewCache(4, 0)
	for i := 0; i < 20; i++ {
		c.Set(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if st := c.Stats(); st.Entries != 20 {
		t.Fatalf("entries: got %d want 20", st.Entries)
	}
	if !c.Delete("k3") || c.Delete("k3") {
		t.Fatal("Delete should report presence exactly once")
	}
	c.Clear()
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("entries after Clear: got %d want 0", st.Entries)
	}
}

func TestCacheKeysSpreadAcrossShards(t *testing.T) {
	c := NewCache(16, 0)
	touched := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		touched[fnv1a(fmt.Sprintf("key-%d", i))&c.mask] = true
	}
	if len(touched) < 16 {
		t.Fatalf("1000 keys hit only %d/16 shards", len(touched))
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(8, 0)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%37)
				if i%3 == 0 {
					c.Set(key, []byte{byte(w), byte(i)})
				} else {
					c.Get(key)
				}
				if i%100 == 0 {
					c.Stats()
				}
			}
		}()
	}
	wg.Wait()
}

// TestCacheStatsConservedUnderConcurrency drives concurrent Gets (over a
// mix of present and absent keys, interleaved with Sets) and asserts the
// aggregated counters conserve the fundamental identity: every Get is
// exactly one hit or one miss, so Stats().Hits + Stats().Misses equals the
// number of Get calls issued — no outcome double-counted or lost across
// shards.
func TestCacheStatsConservedUnderConcurrency(t *testing.T) {
	c := NewCache(8, 0)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("k%d", (w*perWorker+i)%64)
				switch i % 4 {
				case 0:
					c.Set(key, []byte("v"))
				default:
					c.Get(key)
				}
			}
		}()
	}
	wg.Wait()
	gets := uint64(workers * perWorker * 3 / 4)
	st := c.Stats()
	if st.Hits+st.Misses != gets {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d gets",
			st.Hits, st.Misses, st.Hits+st.Misses, gets)
	}
	if st.Expired != 0 {
		t.Fatalf("expired = %d with zero TTL, want 0", st.Expired)
	}
	if st.Entries == 0 || st.Entries > 64 {
		t.Fatalf("entries = %d, want (0, 64]", st.Entries)
	}
	if st.Shards != 8 {
		t.Fatalf("shards = %d, want 8", st.Shards)
	}
}

// Expired entries must count as both an expiry and a miss, preserving the
// hits+misses == gets identity.
func TestCacheStatsExpiryCountsAsMiss(t *testing.T) {
	c := NewCache(1, 10*time.Millisecond)
	now := time.Unix(0, 0)
	c.now = func() time.Time { return now }
	c.Set("k", []byte("v"))
	now = now.Add(time.Hour)
	if _, ok := c.Get("k"); ok {
		t.Fatal("expired entry served")
	}
	st := c.Stats()
	if st.Expired != 1 || st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("expiry counters wrong: %+v", st)
	}
}
