// Package serve is the toolkit's concurrent experiment-serving engine: a
// sharded memoizing result cache, a singleflight layer that collapses
// thundering herds, a bounded worker pool, and HTTP handlers — the paper's
// warehouse-scale serving concerns (memory/storage wall, tail
// predictability, cross-layer co-design) applied to the toolkit itself.
// Parameterized requests (ServeWith) fold the resolved assignment into
// the cache key, so every distinct design point memoizes and
// deduplicates independently — the substrate the sweep package fans
// grids out over. cmd/arch21d exposes the engine over HTTP.
package serve

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Cache is a sharded, memoizing byte cache backed by slab segments. Keys
// hash to one of N power-of-two shards, each guarded by its own mutex so
// concurrent readers on different shards never contend.
//
// Inside a shard, entries live packed inside fixed-size []byte segment
// arenas, located through an open-addressed index of two scalar []uint64
// slices — no per-entry Go object anywhere, so the GC scans O(segments)
// pointers no matter how many millions of entries are cached (the
// paper's memory-wall argument applied to the serving tier itself).
// Entry headers are fixed-width, so the per-entry hit counter is bumped
// in place on Get and a Set whose new payload fits the entry's value
// capacity overwrites in place with no index churn and no allocation.
//
// Aliasing contract: Get returns a slice aliasing slab memory. It is
// stable across Gets (only the fixed header words mutate afterwards) and
// across segment reclamation (reclaimed segments are dropped to the GC,
// never reused, so outstanding aliases stay intact), but a Set of the
// same key may overwrite the bytes in place — callers must consume the
// slice before writing the same key, and must never modify it. The
// engine's singleflight layer guarantees it never Sets a live key it is
// concurrently reading.
type Cache struct {
	shards []cacheShard
	mask   uint64
	ttl    time.Duration
	// maxShardBytes bounds each shard's segment bytes (0 = unbounded:
	// segments are only compacted, never evicted).
	maxShardBytes int64
	policy        EvictionPolicy
	// now is the clock; replaceable in tests (cf. freecache's custom
	// timer).
	now func() time.Time
}

// EvictionPolicy selects which live entries survive segment reclamation
// when a bounded cache is out of space.
type EvictionPolicy uint8

const (
	// EvictLRU approximates least-recently-used with a CLOCK
	// (second-chance) bit: an entry touched since the previous sweep is
	// re-appended with its bit cleared; an untouched one is evicted.
	EvictLRU EvictionPolicy = iota
	// EvictCost is cost-aware: an entry with any recorded hits survives
	// (its count is halved as it ages), so frequently re-derived results
	// outlive one-shot ones regardless of recency.
	EvictCost
)

// String names the policy for stats and logs.
func (p EvictionPolicy) String() string {
	if p == EvictCost {
		return "cost"
	}
	return "lru"
}

// ParseEvictionPolicy resolves a policy name ("lru", "cost") — the
// -cache-policy flag's parser.
func ParseEvictionPolicy(s string) (EvictionPolicy, error) {
	switch s {
	case "lru":
		return EvictLRU, nil
	case "cost":
		return EvictCost, nil
	}
	return EvictLRU, fmt.Errorf("serve: unknown eviction policy %q (want lru or cost)", s)
}

const (
	// segmentSize is the standard slab arena size; entries larger than a
	// segment get a dedicated arena of their exact size.
	segmentSize = 64 << 10

	// entryHitsLen is the fixed little-endian hit-counter word at offset
	// 0 of every entry, bumped in place by Get.
	entryHitsLen = 8
	// entryHdrLen is the fixed entry header: hits u64, added i64, ttl
	// i64, keyLen u32, valLen u32, valCap u32, state u32. Everything is
	// fixed-width so in-place mutation never moves a byte after it.
	entryHdrLen = 40

	offAdded  = 8
	offTTL    = 16
	offKeyLen = 24
	offValLen = 28
	offValCap = 32
	offState  = 36

	stateLive     = 1 << 0
	stateAccessed = 1 << 1 // the CLOCK second-chance bit

	// idxEmpty/idxTombstone are the index-slot sentinels; a live slot
	// stores the key hash with idxMark set (so it can never collide with
	// a sentinel).
	idxEmpty     = 0
	idxTombstone = 1
	idxMark      = uint64(1) << 63

	// maxCacheShards clamps the requested shard count: the rounding loop
	// would otherwise overflow into an infinite loop for adversarial
	// values (1<<63 rounds to 0, then n<<=1 sticks at 0 forever), and a
	// shard per key is pure overhead anyway.
	maxCacheShards = 1 << 14
)

// segment is one append-only slab arena. Reclaimed segments are dropped
// whole to the GC (never pooled or rewritten), which is what makes
// Get-returned aliases memory-safe across reclamation.
type segment struct {
	buf  []byte
	used int
	live int // bytes occupied by live entries
	seq  uint64
}

type cacheShard struct {
	mu sync.Mutex

	// segs is oldest-first; appends go to the last segment. segBase is
	// segs[0]'s sequence number — index refs address segments by
	// sequence so reclamation (which shifts the slice) never invalidates
	// them.
	segs    []*segment
	segBase uint64

	// The open-addressed index: idxHash holds idxEmpty, idxTombstone, or
	// hash|idxMark; idxRef packs the entry's location as seq<<32|offset.
	// Linear probing; tombstones keep probe chains intact and are purged
	// on rehash.
	idxHash []uint64
	idxRef  []uint64
	idxMask uint64
	idxLive int // live slots (== live entries)
	idxUsed int // live + tombstoned slots

	bytes int64 // total allocated segment bytes
	dead  int64 // bytes occupied by dead (deleted/superseded) entries

	hits    uint64
	misses  uint64
	expired uint64
	evicted uint64
}

// CacheStats aggregates shard counters. JSON tags let servers expose the
// stats directly.
type CacheStats struct {
	// Entries is the number of live (possibly expired but uncollected)
	// entries.
	Entries int `json:"entries"`
	// Hits and Misses count Get outcomes; Expired counts entries
	// dropped because their TTL lapsed.
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Expired uint64 `json:"expired"`
	// Evicted counts live entries dropped by capacity pressure (always 0
	// for an unbounded cache).
	Evicted uint64 `json:"evicted"`
	// Bytes is the total slab arena footprint across shards (allocated,
	// not just occupied).
	Bytes int64 `json:"bytes"`
	// Shards is the shard count.
	Shards int `json:"shards"`
}

// NewCache builds an unbounded cache with at least the requested number
// of shards (rounded up to a power of two, minimum 1, clamped to
// maxCacheShards) and the given TTL. A zero or negative TTL means
// entries never expire.
func NewCache(shards int, ttl time.Duration) *Cache {
	return NewCacheSized(shards, ttl, 0, EvictLRU)
}

// NewCacheSized is NewCache with a byte budget and an eviction policy:
// maxBytes bounds the total slab footprint (approximately — the budget
// is split per shard and enforced at segment granularity), with policy
// choosing which entries survive reclamation. maxBytes <= 0 means
// unbounded (segments are compacted when dead bytes accumulate, never
// evicted).
func NewCacheSized(shards int, ttl time.Duration, maxBytes int64, policy EvictionPolicy) *Cache {
	if shards > maxCacheShards {
		shards = maxCacheShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache{
		shards: make([]cacheShard, n),
		mask:   uint64(n - 1),
		ttl:    ttl,
		policy: policy,
		now:    time.Now,
	}
	if maxBytes > 0 {
		per := maxBytes / int64(n)
		if per < segmentSize {
			per = segmentSize
		}
		c.maxShardBytes = per
	}
	return c
}

// fnv1a hashes a key (inline FNV-1a, no allocation).
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// entrySize is an entry's full slab footprint.
func entrySize(keyLen, valCap int) int { return entryHdrLen + keyLen + valCap }

// valCapFor rounds a payload length up to the entry's value capacity:
// 8-byte aligned so a re-encoded result that grew by a few bytes still
// overwrites in place.
func valCapFor(n int) int { return (n + 7) &^ 7 }

func ref(seq uint64, off int) uint64 { return (seq&0xffffffff)<<32 | uint64(uint32(off)) }

// at resolves an index ref to its segment and entry offset. Sequence
// arithmetic is mod 2^32, so refs stay valid across any realistic number
// of reclamations.
func (s *cacheShard) at(r uint64) (*segment, int) {
	idx := int(uint32(r>>32) - uint32(s.segBase))
	return s.segs[idx], int(uint32(r))
}

// find returns the index slot of key's live entry, or -1.
func (s *cacheShard) find(h uint64, key string) int {
	if len(s.idxHash) == 0 {
		return -1
	}
	mark := h | idxMark
	i := h & s.idxMask
	for {
		switch v := s.idxHash[i]; {
		case v == idxEmpty:
			return -1
		case v == mark:
			seg, off := s.at(s.idxRef[i])
			b := seg.buf[off:]
			kl := int(binary.LittleEndian.Uint32(b[offKeyLen:]))
			if string(b[entryHdrLen:entryHdrLen+kl]) == key {
				return int(i)
			}
		}
		i = (i + 1) & s.idxMask
	}
}

// findRef returns the slot whose stored ref equals want (used during
// reclamation, where the entry's old location is the identity).
func (s *cacheShard) findRef(h uint64, want uint64) int {
	mark := h | idxMark
	i := h & s.idxMask
	for {
		switch v := s.idxHash[i]; {
		case v == idxEmpty:
			return -1
		case v == mark && s.idxRef[i] == want:
			return int(i)
		}
		i = (i + 1) & s.idxMask
	}
}

// insert adds a slot for a key known to be absent.
func (s *cacheShard) insert(h, r uint64) {
	if len(s.idxHash) == 0 {
		s.idxHash = make([]uint64, 64)
		s.idxRef = make([]uint64, 64)
		s.idxMask = 63
	} else if 4*(s.idxUsed+1) >= 3*len(s.idxHash) {
		s.rehash()
	}
	mark := h | idxMark
	i := h & s.idxMask
	for {
		v := s.idxHash[i]
		if v == idxEmpty || v == idxTombstone {
			if v == idxEmpty {
				s.idxUsed++
			}
			s.idxHash[i] = mark
			s.idxRef[i] = r
			s.idxLive++
			return
		}
		i = (i + 1) & s.idxMask
	}
}

// rehash grows the index (or just purges tombstones when mostly dead).
// Probe positions depend only on the hash's low bits, which the stored
// mark preserves, so slots reinsert without re-reading keys.
func (s *cacheShard) rehash() {
	n := len(s.idxHash)
	if 2*s.idxLive >= n {
		n *= 2
	}
	oldH, oldR := s.idxHash, s.idxRef
	s.idxHash = make([]uint64, n)
	s.idxRef = make([]uint64, n)
	s.idxMask = uint64(n - 1)
	s.idxUsed, s.idxLive = 0, 0
	for j, v := range oldH {
		if v == idxEmpty || v == idxTombstone {
			continue
		}
		i := v & s.idxMask
		for s.idxHash[i] != idxEmpty {
			i = (i + 1) & s.idxMask
		}
		s.idxHash[i] = v
		s.idxRef[i] = oldR[j]
		s.idxUsed++
		s.idxLive++
	}
}

// killSlot tombstones a slot and marks its entry dead in the slab.
func (s *cacheShard) killSlot(slot int) {
	seg, off := s.at(s.idxRef[slot])
	b := seg.buf[off:]
	kl := int(binary.LittleEndian.Uint32(b[offKeyLen:]))
	vc := int(binary.LittleEndian.Uint32(b[offValCap:]))
	size := entrySize(kl, vc)
	st := binary.LittleEndian.Uint32(b[offState:])
	binary.LittleEndian.PutUint32(b[offState:], st&^stateLive)
	seg.live -= size
	s.dead += int64(size)
	s.idxHash[slot] = idxTombstone
	s.idxLive--
}

// head returns a segment with room for size bytes, allocating a fresh
// arena when the current head is full. When allowReclaim is set (the
// normal Set path), a bounded shard first reclaims oldest segments until
// the new arena fits its budget, and an unbounded shard compacts once a
// full segment's worth of dead bytes has accumulated.
func (s *cacheShard) head(c *Cache, size int, allowReclaim bool) *segment {
	if n := len(s.segs); n > 0 {
		if seg := s.segs[n-1]; seg.used+size <= len(seg.buf) {
			return seg
		}
	}
	segSize := segmentSize
	if size > segSize {
		segSize = size
	}
	if allowReclaim {
		if c.maxShardBytes > 0 {
			// Second chance first; if a sweep frees nothing (everything
			// survived), force the next one so the loop always makes
			// progress.
			force := false
			for s.bytes+int64(segSize) > c.maxShardBytes && len(s.segs) > 0 {
				before := s.bytes
				s.reclaimOldest(c, force)
				if s.bytes >= before {
					force = true
				}
			}
		} else if s.dead >= segmentSize && len(s.segs) > 0 {
			s.reclaimOldest(c, false)
		}
		if n := len(s.segs); n > 0 {
			if seg := s.segs[n-1]; seg.used+size <= len(seg.buf) {
				return seg
			}
		}
	}
	seg := &segment{buf: make([]byte, segSize), seq: s.segBase + uint64(len(s.segs))}
	s.segs = append(s.segs, seg)
	s.bytes += int64(segSize)
	return seg
}

// reclaimOldest drops the oldest segment, re-appending the live entries
// the eviction policy spares (all of them in unbounded/compaction mode;
// none under force) and tombstoning the rest. The segment's buffer is
// released to the GC untouched, so previously returned aliases into it
// stay valid.
func (s *cacheShard) reclaimOldest(c *Cache, force bool) {
	seg := s.segs[0]
	copy(s.segs, s.segs[1:])
	s.segs[len(s.segs)-1] = nil
	s.segs = s.segs[:len(s.segs)-1]
	s.segBase++
	s.bytes -= int64(len(seg.buf))
	var deadHere int64
	for off := 0; off+entryHdrLen <= seg.used; {
		b := seg.buf[off:]
		kl := int(binary.LittleEndian.Uint32(b[offKeyLen:]))
		vc := int(binary.LittleEndian.Uint32(b[offValCap:]))
		size := entrySize(kl, vc)
		st := binary.LittleEndian.Uint32(b[offState:])
		if st&stateLive == 0 {
			deadHere += int64(size)
			off += size
			continue
		}
		h := fnv1a(string(b[entryHdrLen : entryHdrLen+kl]))
		slot := s.findRef(h, ref(seg.seq, off))
		survive := true
		if force {
			survive = false
		} else if c.maxShardBytes > 0 {
			switch c.policy {
			case EvictCost:
				survive = binary.LittleEndian.Uint64(b) > 0
			default: // EvictLRU
				survive = st&stateAccessed != 0
			}
		}
		if survive {
			dst := s.head(c, size, false)
			noff := dst.used
			copy(dst.buf[noff:noff+size], seg.buf[off:off+size])
			nb := dst.buf[noff:]
			// Age the survivor so it must earn its next reprieve.
			if c.policy == EvictCost {
				binary.LittleEndian.PutUint64(nb, binary.LittleEndian.Uint64(nb)/2)
			}
			binary.LittleEndian.PutUint32(nb[offState:],
				binary.LittleEndian.Uint32(nb[offState:])&^stateAccessed)
			dst.used += size
			dst.live += size
			s.idxRef[slot] = ref(dst.seq, noff)
		} else {
			s.idxHash[slot] = idxTombstone
			s.idxLive--
			s.evicted++
		}
		off += size
	}
	s.dead -= deadHere
}

// append writes a fresh entry into the slab and indexes it.
func (s *cacheShard) append(c *Cache, h uint64, key string, val []byte, added int64) {
	vc := valCapFor(len(val))
	size := entrySize(len(key), vc)
	seg := s.head(c, size, true)
	off := seg.used
	b := seg.buf[off : off+size]
	binary.LittleEndian.PutUint64(b, 0)
	binary.LittleEndian.PutUint64(b[offAdded:], uint64(added))
	binary.LittleEndian.PutUint64(b[offTTL:], uint64(c.ttl))
	binary.LittleEndian.PutUint32(b[offKeyLen:], uint32(len(key)))
	binary.LittleEndian.PutUint32(b[offValLen:], uint32(len(val)))
	binary.LittleEndian.PutUint32(b[offValCap:], uint32(vc))
	binary.LittleEndian.PutUint32(b[offState:], stateLive)
	copy(b[entryHdrLen:], key)
	copy(b[entryHdrLen+len(key):], val)
	seg.used += size
	seg.live += size
	s.insert(h, ref(seg.seq, off))
}

// Get returns the cached payload for key, bumping the entry's hit counter
// and CLOCK bit in place. Expired entries are evicted lazily on access.
// The returned slice aliases slab memory — see the Cache aliasing
// contract.
func (c *Cache) Get(key string) ([]byte, bool) {
	h := fnv1a(key)
	s := &c.shards[h&c.mask]
	now := c.now().UnixNano()
	s.mu.Lock()
	slot := s.find(h, key)
	if slot < 0 {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	seg, off := s.at(s.idxRef[slot])
	b := seg.buf[off:]
	if ttl := int64(binary.LittleEndian.Uint64(b[offTTL:])); ttl > 0 {
		if added := int64(binary.LittleEndian.Uint64(b[offAdded:])); now-added > ttl {
			s.killSlot(slot)
			s.expired++
			s.misses++
			s.mu.Unlock()
			return nil, false
		}
	}
	binary.LittleEndian.PutUint64(b, binary.LittleEndian.Uint64(b)+1)
	binary.LittleEndian.PutUint32(b[offState:],
		binary.LittleEndian.Uint32(b[offState:])|stateAccessed)
	s.hits++
	kl := int(binary.LittleEndian.Uint32(b[offKeyLen:]))
	vl := int(binary.LittleEndian.Uint32(b[offValLen:]))
	lo := off + entryHdrLen + kl
	val := seg.buf[lo : lo+vl : lo+vl]
	s.mu.Unlock()
	return val, true
}

// Set stores a payload under key with the cache's TTL.
func (c *Cache) Set(key string, val []byte) {
	c.SetStamped(key, val, c.now().UnixNano())
}

// SetStamped stores a payload with an explicit insertion time — how a
// tier-2 warm start preserves entry age so a configured TTL keeps its
// meaning across restarts. When the key's live entry has capacity for
// the new payload, the entry is overwritten in place (hit counter reset,
// no index churn, no allocation); otherwise the old entry is tombstoned
// and a fresh one appended.
func (c *Cache) SetStamped(key string, val []byte, addedUnixNano int64) {
	h := fnv1a(key)
	s := &c.shards[h&c.mask]
	s.mu.Lock()
	if slot := s.find(h, key); slot >= 0 {
		seg, off := s.at(s.idxRef[slot])
		b := seg.buf[off:]
		if vc := int(binary.LittleEndian.Uint32(b[offValCap:])); len(val) <= vc {
			binary.LittleEndian.PutUint64(b, 0)
			binary.LittleEndian.PutUint64(b[offAdded:], uint64(addedUnixNano))
			binary.LittleEndian.PutUint64(b[offTTL:], uint64(c.ttl))
			binary.LittleEndian.PutUint32(b[offValLen:], uint32(len(val)))
			binary.LittleEndian.PutUint32(b[offState:], stateLive)
			kl := int(binary.LittleEndian.Uint32(b[offKeyLen:]))
			copy(b[entryHdrLen+kl:], val)
			s.mu.Unlock()
			return
		}
		s.killSlot(slot)
	}
	s.append(c, h, key, val, addedUnixNano)
	s.mu.Unlock()
}

// Hits returns the hit counter for key's entry (0 if absent), without
// counting as an access.
func (c *Cache) Hits(key string) int64 {
	h := fnv1a(key)
	s := &c.shards[h&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	slot := s.find(h, key)
	if slot < 0 {
		return 0
	}
	seg, off := s.at(s.idxRef[slot])
	return int64(binary.LittleEndian.Uint64(seg.buf[off:]))
}

// Delete removes key. It reports whether an entry was present.
func (c *Cache) Delete(key string) bool {
	h := fnv1a(key)
	s := &c.shards[h&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	slot := s.find(h, key)
	if slot < 0 {
		return false
	}
	s.killSlot(slot)
	return true
}

// DeletePrefix removes every entry whose key starts with prefix and
// returns how many were removed. It walks all shards, so it is an
// administrative operation, not a hot-path one.
func (c *Cache) DeletePrefix(prefix string) int {
	pfx := []byte(prefix)
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for slot, v := range s.idxHash {
			if v == idxEmpty || v == idxTombstone {
				continue
			}
			seg, off := s.at(s.idxRef[slot])
			b := seg.buf[off:]
			kl := int(binary.LittleEndian.Uint32(b[offKeyLen:]))
			if bytes.HasPrefix(b[entryHdrLen:entryHdrLen+kl], pfx) {
				s.killSlot(slot)
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// KV is one cache entry's key, payload, and insertion time, as returned
// by Dump. The timestamp rides into tier-2 snapshots so a warm-started
// entry keeps its age — a TTL bounds an entry's total life, not its life
// since the latest restart.
type KV struct {
	Key           string
	Val           []byte
	AddedUnixNano int64
}

// Dump copies every live entry's key and payload (shard by shard, each
// under its own lock — a consistent-enough point-in-time view for
// snapshotting; entries are sorted by key so dumps are deterministic).
// Expired-but-uncollected entries are skipped. The returned values are
// copies and safe to retain.
func (c *Cache) Dump() []KV {
	now := c.now().UnixNano()
	var out []KV
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for slot, v := range s.idxHash {
			if v == idxEmpty || v == idxTombstone {
				continue
			}
			seg, off := s.at(s.idxRef[slot])
			b := seg.buf[off:]
			added := int64(binary.LittleEndian.Uint64(b[offAdded:]))
			if ttl := int64(binary.LittleEndian.Uint64(b[offTTL:])); ttl > 0 && now-added > ttl {
				continue
			}
			kl := int(binary.LittleEndian.Uint32(b[offKeyLen:]))
			vl := int(binary.LittleEndian.Uint32(b[offValLen:]))
			val := make([]byte, vl)
			copy(val, b[entryHdrLen+kl:entryHdrLen+kl+vl])
			out = append(out, KV{
				Key:           string(b[entryHdrLen : entryHdrLen+kl]),
				Val:           val,
				AddedUnixNano: added,
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Clear drops every entry and arena (counters are preserved).
func (c *Cache) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.segBase += uint64(len(s.segs))
		s.segs = nil
		s.idxHash, s.idxRef, s.idxMask = nil, nil, 0
		s.idxLive, s.idxUsed = 0, 0
		s.bytes, s.dead = 0, 0
		s.mu.Unlock()
	}
}

// Stats aggregates counters across shards.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{Shards: len(c.shards)}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.idxLive
		st.Hits += s.hits
		st.Misses += s.misses
		st.Expired += s.expired
		st.Evicted += s.evicted
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
