// Package serve is the toolkit's concurrent experiment-serving engine: a
// sharded memoizing result cache, a singleflight layer that collapses
// thundering herds, a bounded worker pool, and HTTP handlers — the paper's
// warehouse-scale serving concerns (memory/storage wall, tail
// predictability, cross-layer co-design) applied to the toolkit itself.
// Parameterized requests (ServeWith) fold the resolved assignment into
// the cache key, so every distinct design point memoizes and
// deduplicates independently — the substrate the sweep package fans
// grids out over. cmd/arch21d exposes the engine over HTTP.
package serve

import (
	"encoding/binary"
	"sort"
	"strings"
	"sync"
	"time"
)

// Cache is a sharded, memoizing byte cache. Keys hash to one of N
// power-of-two shards, each guarded by its own mutex so concurrent readers
// on different shards never contend. Entries carry an insertion timestamp,
// a TTL, and a per-entry hit counter, serialized with the same varint
// framing the result codec uses.
type Cache struct {
	shards []cacheShard
	mask   uint64
	ttl    time.Duration
	// now is the clock; replaceable in tests (cf. freecache's custom
	// timer).
	now func() time.Time
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string][]byte
	hits    uint64
	misses  uint64
	expired uint64
}

// CacheStats aggregates shard counters. JSON tags let servers expose the
// stats directly.
type CacheStats struct {
	// Entries is the number of live (possibly expired but uncollected)
	// entries.
	Entries int `json:"entries"`
	// Hits and Misses count Get outcomes; Expired counts entries
	// dropped because their TTL lapsed.
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Expired uint64 `json:"expired"`
	// Shards is the shard count.
	Shards int `json:"shards"`
}

// NewCache builds a cache with at least the requested number of shards
// (rounded up to a power of two, minimum 1) and the given TTL. A zero or
// negative TTL means entries never expire.
func NewCache(shards int, ttl time.Duration) *Cache {
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache{
		shards: make([]cacheShard, n),
		mask:   uint64(n - 1),
		ttl:    ttl,
		now:    time.Now,
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string][]byte)
	}
	return c
}

// fnv1a hashes a key (inline FNV-1a, no allocation).
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[fnv1a(key)&c.mask]
}

// cacheEntry is the decoded form of a stored entry.
type cacheEntry struct {
	// addedUnixNano is the insertion time.
	addedUnixNano int64
	// ttlNanos is the entry lifetime (0 = immortal).
	ttlNanos int64
	// hits counts successful Gets of this entry.
	hits int64
	// val is the cached payload.
	val []byte
}

// Encoded entry layout: the hit counter is a fixed 8-byte little-endian
// word so Get can bump it in place (no realloc, no copy on the hot path);
// the timestamp, TTL, and value length follow as varints, then the value.
const entryHitsLen = 8

// encode serializes the entry.
func (e cacheEntry) encode() []byte {
	buf := make([]byte, entryHitsLen, entryHitsLen+3*binary.MaxVarintLen64+len(e.val))
	binary.LittleEndian.PutUint64(buf, uint64(e.hits))
	var tmp [binary.MaxVarintLen64]byte
	put := func(v int64) {
		n := binary.PutVarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(e.addedUnixNano)
	put(e.ttlNanos)
	put(int64(len(e.val)))
	buf = append(buf, e.val...)
	return buf
}

// decodeEntry parses an encoded entry; ok is false on corruption. The
// returned val aliases buf.
func decodeEntry(buf []byte) (e cacheEntry, ok bool) {
	if len(buf) < entryHitsLen {
		return e, false
	}
	e.hits = int64(binary.LittleEndian.Uint64(buf))
	off := entryHitsLen
	get := func() (int64, bool) {
		v, n := binary.Varint(buf[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	var valLen int64
	var good bool
	if e.addedUnixNano, good = get(); !good {
		return e, false
	}
	if e.ttlNanos, good = get(); !good {
		return e, false
	}
	if valLen, good = get(); !good {
		return e, false
	}
	if valLen < 0 || valLen != int64(len(buf)-off) {
		return e, false
	}
	e.val = buf[off:]
	return e, true
}

// Get returns the cached payload for key, bumping the entry's hit counter
// in place. Expired entries are evicted lazily on access. The returned
// slice aliases cache-owned memory and must not be modified.
func (c *Cache) Get(key string) ([]byte, bool) {
	s := c.shard(key)
	now := c.now().UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	e, good := decodeEntry(raw)
	if !good {
		delete(s.entries, key)
		s.misses++
		return nil, false
	}
	if e.ttlNanos > 0 && now-e.addedUnixNano > e.ttlNanos {
		delete(s.entries, key)
		s.expired++
		s.misses++
		return nil, false
	}
	// Only the fixed hit-counter word is ever mutated after insertion, so
	// previously returned val slices stay stable.
	binary.LittleEndian.PutUint64(raw, uint64(e.hits+1))
	s.hits++
	return e.val, true
}

// Set stores a payload under key with the cache's TTL.
func (c *Cache) Set(key string, val []byte) {
	c.SetStamped(key, val, c.now().UnixNano())
}

// SetStamped stores a payload with an explicit insertion time — how a
// tier-2 warm start preserves entry age so a configured TTL keeps its
// meaning across restarts.
func (c *Cache) SetStamped(key string, val []byte, addedUnixNano int64) {
	e := cacheEntry{
		addedUnixNano: addedUnixNano,
		ttlNanos:      int64(c.ttl),
		val:           val,
	}
	s := c.shard(key)
	s.mu.Lock()
	s.entries[key] = e.encode()
	s.mu.Unlock()
}

// Hits returns the hit counter for key's entry (0 if absent), without
// counting as an access.
func (c *Cache) Hits(key string) int64 {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, ok := s.entries[key]
	if !ok {
		return 0
	}
	e, good := decodeEntry(raw)
	if !good {
		return 0
	}
	return e.hits
}

// Delete removes key. It reports whether an entry was present.
func (c *Cache) Delete(key string) bool {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	delete(s.entries, key)
	return ok
}

// DeletePrefix removes every entry whose key starts with prefix and
// returns how many were removed. It walks all shards, so it is an
// administrative operation, not a hot-path one.
func (c *Cache) DeletePrefix(prefix string) int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key := range s.entries {
			if strings.HasPrefix(key, prefix) {
				delete(s.entries, key)
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// KV is one cache entry's key, payload, and insertion time, as returned
// by Dump. The timestamp rides into tier-2 snapshots so a warm-started
// entry keeps its age — a TTL bounds an entry's total life, not its life
// since the latest restart.
type KV struct {
	Key           string
	Val           []byte
	AddedUnixNano int64
}

// Dump copies every live entry's key and payload (shard by shard, each
// under its own lock — a consistent-enough point-in-time view for
// snapshotting; entries are sorted by key so dumps are deterministic).
// Expired-but-uncollected entries are skipped. The returned values are
// copies and safe to retain.
func (c *Cache) Dump() []KV {
	now := c.now().UnixNano()
	var out []KV
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key, raw := range s.entries {
			e, good := decodeEntry(raw)
			if !good {
				continue
			}
			if e.ttlNanos > 0 && now-e.addedUnixNano > e.ttlNanos {
				continue
			}
			val := make([]byte, len(e.val))
			copy(val, e.val)
			out = append(out, KV{Key: key, Val: val, AddedUnixNano: e.addedUnixNano})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Clear drops every entry (counters are preserved).
func (c *Cache) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[string][]byte)
		s.mu.Unlock()
	}
}

// Stats aggregates counters across shards.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{Shards: len(c.shards)}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		st.Hits += s.hits
		st.Misses += s.misses
		st.Expired += s.expired
		s.mu.Unlock()
	}
	return st
}
