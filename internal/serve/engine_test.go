package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/report"
)

// fakeResult builds a small deterministic result for a given ID.
func fakeResult(id string) core.Result {
	t := report.NewTable("result for "+id, "metric", "value")
	t.AddRow("answer", "42")
	return core.Result{Table: t, Findings: []string{"finding for " + id}}
}

func newTestEngine(runner func(string) (core.Result, error)) *Engine {
	return NewEngine(Config{Shards: 4, Workers: 2, Runner: runner})
}

func TestEngineServeAndMemoize(t *testing.T) {
	var runs int
	e := newTestEngine(func(id string) (core.Result, error) {
		runs++
		return fakeResult(id), nil
	})
	defer e.Close()

	r1, err := e.Serve("X1")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if r1.CacheHit || r1.Shared {
		t.Fatalf("first serve should be cold: %+v", r1)
	}
	r2, err := e.Serve("X1")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if !r2.CacheHit {
		t.Fatal("second serve should be a cache hit")
	}
	if runs != 1 {
		t.Fatalf("runner executions: got %d want 1", runs)
	}
	if r1.Result.Render() != r2.Result.Render() {
		t.Fatal("memoized result differs from cold result")
	}
	m := e.Metrics()
	if m.Requests != 2 || m.CacheHits != 1 || m.Executions != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.HitLatency.Count != 1 || m.ColdLatency.Count != 1 || m.AllLatency.Count != 2 {
		t.Fatalf("latency counts: hit=%d cold=%d all=%d",
			m.HitLatency.Count, m.ColdLatency.Count, m.AllLatency.Count)
	}
}

func TestEngineUnknownExperiment(t *testing.T) {
	e := NewEngine(Config{Workers: 1})
	defer e.Close()
	if _, err := e.Serve("NOPE"); err == nil {
		t.Fatal("Serve of unknown ID should fail")
	}
}

func TestEngineErrorsNotMemoized(t *testing.T) {
	var runs int
	e := newTestEngine(func(id string) (core.Result, error) {
		runs++
		if runs == 1 {
			return core.Result{}, errors.New("transient")
		}
		return fakeResult(id), nil
	})
	defer e.Close()
	if _, err := e.Serve("X1"); err == nil {
		t.Fatal("first serve should surface the runner error")
	}
	r, err := e.Serve("X1")
	if err != nil {
		t.Fatalf("second serve should retry and succeed: %v", err)
	}
	if r.CacheHit {
		t.Fatal("a failed run must not be memoized")
	}
	if runs != 2 {
		t.Fatalf("runner executions: got %d want 2", runs)
	}
}

// TestEngineSingleflight is the acceptance check: M simultaneous requests
// to the same experiment ID trigger exactly one underlying execution.
func TestEngineSingleflight(t *testing.T) {
	const m = 32
	release := make(chan struct{})
	e := newTestEngine(func(id string) (core.Result, error) {
		<-release
		return fakeResult(id), nil
	})
	defer e.Close()

	var started, done sync.WaitGroup
	responses := make([]Response, m)
	errs := make([]error, m)
	for i := 0; i < m; i++ {
		i := i
		started.Add(1)
		done.Add(1)
		go func() {
			started.Done()
			defer done.Done()
			responses[i], errs[i] = e.Serve("HOT")
		}()
	}
	started.Wait()
	// Give every goroutine time to pass the (empty) cache and park in
	// singleflight before the one real execution is allowed to finish.
	time.Sleep(50 * time.Millisecond)
	close(release)
	done.Wait()

	if got := e.Executions(); got != 1 {
		t.Fatalf("executions: got %d want 1 for %d simultaneous requests", got, m)
	}
	want := responses[0].Result.Render()
	for i := range responses {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if responses[i].Result.Render() != want {
			t.Fatalf("request %d got a different result", i)
		}
	}
	me := e.Metrics()
	// Every request but the executing one either shared the in-flight
	// call or (if it lost the race entirely) hit the fresh cache entry.
	if me.Deduped+me.CacheHits != m-1 {
		t.Fatalf("deduped=%d + hits=%d, want %d", me.Deduped, me.CacheHits, m-1)
	}
}

func TestEngineConcurrentDistinctIDs(t *testing.T) {
	var mu sync.Mutex
	runs := map[string]int{}
	e := NewEngine(Config{Shards: 8, Workers: 4, Runner: func(id string) (core.Result, error) {
		mu.Lock()
		runs[id]++
		mu.Unlock()
		return fakeResult(id), nil
	}})
	defer e.Close()

	const ids, per = 10, 20
	var wg sync.WaitGroup
	for i := 0; i < ids; i++ {
		id := fmt.Sprintf("E%d", i)
		for j := 0; j < per; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := e.Serve(id); err != nil {
					t.Errorf("Serve(%s): %v", id, err)
				}
			}()
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for id, n := range runs {
		if n != 1 {
			t.Fatalf("experiment %s executed %d times, want 1", id, n)
		}
	}
	if len(runs) != ids {
		t.Fatalf("distinct executions: got %d want %d", len(runs), ids)
	}
}

// TestEngineLateLeaderServedFromCache covers the miss -> singleflight race:
// a caller that misses the cache but becomes flight leader only after the
// previous leader memoized must be answered from the cache, not re-execute.
func TestEngineLateLeaderServedFromCache(t *testing.T) {
	var runs int
	e := newTestEngine(func(id string) (core.Result, error) {
		runs++
		return fakeResult(id), nil
	})
	defer e.Close()
	if _, err := e.Serve("X1"); err != nil {
		t.Fatal(err)
	}
	// Simulate the stale miss: the entry exists, but this caller enters
	// the miss path as a fresh flight leader (exactly what happens when
	// the first leader's Set lands between Serve's cache probe and
	// fg.Do).
	r, err := e.serveMissRaw(context.Background(), "X1", "X1", nil, time.Now())
	if err != nil {
		t.Fatalf("serveMissRaw: %v", err)
	}
	if !r.CacheHit {
		t.Fatal("late leader must be answered from the cache")
	}
	if runs != 1 {
		t.Fatalf("runner executions: got %d want 1 (late leader re-executed)", runs)
	}
	m := e.Metrics()
	if m.CacheHits != 1 {
		t.Fatalf("late-leader serve must count as a hit: %+v", m)
	}
}

func TestEngineRecoversFromCorruptCacheEntry(t *testing.T) {
	var runs int
	e := newTestEngine(func(id string) (core.Result, error) {
		runs++
		return fakeResult(id), nil
	})
	defer e.Close()
	e.cache.Set("X1", []byte("not a result payload"))
	r, err := e.Serve("X1")
	if err != nil {
		t.Fatalf("Serve over corrupt entry: %v", err)
	}
	if r.CacheHit {
		t.Fatal("corrupt entry must not count as a hit")
	}
	if runs != 1 {
		t.Fatalf("runner executions: got %d want 1", runs)
	}
	r2, _ := e.Serve("X1")
	if !r2.CacheHit {
		t.Fatal("re-execution should repopulate the cache")
	}
}

func TestEngineInvalidateAndReset(t *testing.T) {
	var runs int
	e := newTestEngine(func(id string) (core.Result, error) {
		runs++
		return fakeResult(id), nil
	})
	defer e.Close()
	e.Serve("A")
	e.Serve("B")
	if !e.Invalidate("A") || e.Invalidate("A") {
		t.Fatal("Invalidate should report presence exactly once")
	}
	e.Serve("A")
	if runs != 3 {
		t.Fatalf("runs after invalidate: got %d want 3", runs)
	}
	e.Reset()
	e.Serve("B")
	if runs != 4 {
		t.Fatalf("runs after reset: got %d want 4", runs)
	}
}

// Invalidate must drop an experiment's parameterized cache entries too —
// ServeWith folds assignments into keys like "E7?bces=512", which a bare
// Delete(id) would leave stale — without crossing experiment boundaries
// (E1 must not invalidate E11).
func TestEngineInvalidateCoversParameterizedEntries(t *testing.T) {
	e := newTestEngine(func(id string) (core.Result, error) {
		return fakeResult(id), nil
	})
	defer e.Close()
	if _, err := e.ServeWith(context.Background(), "E7", core.Params{"bces": 512}); err != nil {
		t.Fatal(err)
	}
	e.Serve("E7")
	e.Serve("E11")
	if !e.Invalidate("E7") {
		t.Fatal("Invalidate found nothing")
	}
	if r, _ := e.ServeWith(context.Background(), "E7", core.Params{"bces": 512}); r.CacheHit {
		t.Fatal("parameterized E7 entry survived Invalidate")
	}
	if r, _ := e.Serve("E7"); r.CacheHit {
		t.Fatal("bare E7 entry survived Invalidate")
	}
	if r, _ := e.Serve("E11"); !r.CacheHit {
		t.Fatal("Invalidate(E7) must not touch other experiments")
	}
	e.Invalidate("E1")
	if r, _ := e.Serve("E11"); !r.CacheHit {
		t.Fatal("Invalidate(E1) crossed the experiment-ID boundary into E11")
	}
}

// TestEngineServesRealRegistry smoke-tests the default runner against one
// real (cheap) experiment from the core registry.
func TestEngineServesRealRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment; skipped in -short")
	}
	reg := core.Registry()
	if len(reg) == 0 {
		t.Skip("no experiments registered")
	}
	id := reg[0].ID
	e := NewEngine(Config{Workers: 2})
	defer e.Close()
	r, err := e.Serve(id)
	if err != nil {
		t.Fatalf("Serve(%s): %v", id, err)
	}
	if r.Result.Render() == "" {
		t.Fatalf("Serve(%s) produced empty output", id)
	}
	r2, err := e.Serve(id)
	if err != nil || !r2.CacheHit {
		t.Fatalf("second Serve(%s): err=%v hit=%v", id, err, r2.CacheHit)
	}
	if r2.Result.Render() != r.Result.Render() {
		t.Fatalf("memoized %s differs from cold run", id)
	}
}
